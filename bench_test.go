package spillopt

// Benchmark harness regenerating every table and figure of the paper's
// evaluation section:
//
//   BenchmarkFigure5/<name>  — dynamic spill overhead per benchmark and
//                              strategy (the Figure 5 bar chart data),
//                              reported as opt/sw/base metrics.
//   BenchmarkTable1          — overhead ratios vs entry/exit placement
//                              (Table 1), reported as percentages.
//   BenchmarkTable2/<name>   — incremental placement time of
//                              shrink-wrapping vs the hierarchical
//                              algorithm (Table 2).
//   BenchmarkFigure2*        — the worked example's placement passes.
//
// Absolute times differ from the paper's 2006 workstation, but the
// shapes — who wins, by what factor — are the reproduction targets.
// See EXPERIMENTS.md for recorded paper-vs-measured values.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func BenchmarkFigure5(b *testing.B) {
	for _, p := range workload.SPECInt2000() {
		b.Run(p.Name, func(b *testing.B) {
			var r *bench.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Run(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Overhead[bench.Optimized]), "optimized")
			b.ReportMetric(float64(r.Overhead[bench.Shrinkwrap]), "shrinkwrap")
			b.ReportMetric(float64(r.Overhead[bench.Baseline]), "baseline")
		})
	}
}

func BenchmarkTable1(b *testing.B) {
	var results []*bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		results, err = bench.RunAll(workload.SPECInt2000())
		if err != nil {
			b.Fatal(err)
		}
	}
	var so, ss float64
	for _, r := range results {
		so += r.Ratio(bench.Optimized)
		ss += r.Ratio(bench.Shrinkwrap)
	}
	n := float64(len(results))
	b.ReportMetric(so/n, "opt-pct") // paper: 84.8
	b.ReportMetric(ss/n, "sw-pct")  // paper: 99.3
}

func BenchmarkTable2(b *testing.B) {
	for _, p := range workload.SPECInt2000() {
		b.Run(p.Name, func(b *testing.B) {
			var r *bench.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = bench.Run(p)
				if err != nil {
					b.Fatal(err)
				}
			}
			sw := float64(r.PlacementTime[bench.Shrinkwrap].Nanoseconds())
			opt := float64(r.PlacementTime[bench.Optimized].Nanoseconds())
			b.ReportMetric(sw, "sw-ns")
			b.ReportMetric(opt, "opt-ns")
			if sw > 0 {
				b.ReportMetric(opt/sw, "ratio") // paper average: 5.44
			}
		})
	}
}

// BenchmarkFigure2Hierarchical times the paper's algorithm on the
// worked example (PST + seed + traversal).
func BenchmarkFigure2Hierarchical(b *testing.B) {
	fig := workload.NewFigure2()
	f := fig.Func
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := pst.Build(f)
		if err != nil {
			b.Fatal(err)
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		final, _, err := core.Hierarchical(f, t, seed, core.JumpEdgeModel{})
		if err != nil {
			b.Fatal(err)
		}
		if core.TotalCost(core.JumpEdgeModel{}, final) != 200 {
			b.Fatal("wrong result")
		}
	}
}

// BenchmarkFigure2Shrinkwrap times Chow's technique on the same CFG,
// for the Table 2 style comparison at micro scale.
func BenchmarkFigure2Shrinkwrap(b *testing.B) {
	fig := workload.NewFigure2()
	f := fig.Func
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := shrinkwrap.Compute(f, shrinkwrap.Original)
		if core.TotalCost(core.ExecCountModel{}, sets) != 250 {
			b.Fatal("wrong result")
		}
	}
}

// BenchmarkPSTBuild times program structure tree construction alone on
// the largest generated program (gcc), the algorithm's main substrate.
func BenchmarkPSTBuild(b *testing.B) {
	var p workload.BenchParams
	for _, q := range workload.SPECInt2000() {
		if q.Name == "gcc" {
			p = q
		}
	}
	prog := workload.Generate(p)
	funcs := prog.FuncsInOrder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			if _, err := pst.Build(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEndToEnd times the whole public-API pipeline on the
// quickstart program.
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := ParseProgram(demoSrc)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Profile(50); err != nil {
			b.Fatal(err)
		}
		if err := p.Allocate(); err != nil {
			b.Fatal(err)
		}
		if err := p.Place(HierarchicalJump); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Run(50); err != nil {
			b.Fatal(err)
		}
	}
}
