package spillopt

// End-to-end tests over the checked-in example programs: every
// strategy compiles them, the results match the unplaced reference,
// and the hierarchical placement is never more expensive. The sweep
// test feeds every testdata/*.ir file — the hand-written examples and
// the minimized generator samples alike — through the differential
// oracle, so dropping a new .ir file into testdata/ is all it takes
// to put a program under the full invariant battery.

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/irgen"
)

// oracleArgs extracts a program's "# oracle args: N" header comment;
// programs without one run with 40.
func oracleArgs(t *testing.T, src string) []int64 {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "# oracle args:")
		if !ok {
			continue
		}
		var args []int64
		for _, f := range strings.Fields(rest) {
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				t.Fatalf("bad oracle args comment %q: %v", line, err)
			}
			args = append(args, n)
		}
		return args
	}
	return []int64{40}
}

// TestTestdataOracle sweeps every checked-in .ir program through the
// differential strategy-equivalence oracle, running each with the
// arguments its "# oracle args: N" header documents (default 40).
func TestTestdataOracle(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("expected the 2 hand-written and >=6 generated programs, found %d files", len(files))
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			r := irgen.CheckSource(string(b), irgen.Options{Args: oracleArgs(t, string(b))})
			for _, v := range r.Violations {
				t.Errorf("%v", v)
			}
			if r.Instrs == 0 {
				t.Error("program executed no instructions")
			}
		})
	}
}

func loadTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// gcdRef computes the expected result of testdata/gcd.ir.
func gcdRef(n int64) int64 {
	gcd := func(a, b int64) int64 {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	heap := int64(0)
	_ = heap
	var sum int64
	for i := int64(1); i <= n; i++ {
		g := gcd(i, 24)
		sum += g
		if g == 12 {
			sum += sum // report returns the stored running sum
		}
	}
	return sum
}

func TestGCDProgram(t *testing.T) {
	src := loadTestdata(t, "gcd.ir")
	var overheads []int64
	var ref int64
	for i, s := range []Strategy{EntryExit, Shrinkwrap, HierarchicalJump} {
		p, err := ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Profile(60); err != nil {
			t.Fatal(err)
		}
		if err := p.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := p.Place(s); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(60)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if i == 0 {
			ref = res.Value
		} else if res.Value != ref {
			t.Errorf("%v computes %d, want %d", s, res.Value, ref)
		}
		overheads = append(overheads, res.Overhead)
	}
	if want := gcdRef(60); ref != want {
		t.Errorf("gcd program computes %d, want %d", ref, want)
	}
	if overheads[2] > overheads[0] || overheads[2] > overheads[1] {
		t.Errorf("hierarchical overhead %v not minimal", overheads)
	}
}

func TestCollatzProgram(t *testing.T) {
	src := loadTestdata(t, "collatz.ir")
	steps := func(n int64) int64 {
		var c int64
		for n > 1 {
			if n&1 == 1 {
				n = 3*n + 1
			} else {
				n >>= 1
			}
			c++
		}
		return c
	}
	var want int64
	for i := int64(1); i <= 40; i++ {
		want += steps(i)
	}
	for _, s := range []Strategy{EntryExit, HierarchicalJump, HierarchicalExec} {
		p, err := ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Profile(40); err != nil {
			t.Fatal(err)
		}
		if err := p.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := p.Place(s); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(40)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Value != want {
			t.Errorf("%v: collatz computes %d, want %d", s, res.Value, want)
		}
	}
}
