package spillopt

// PlacementCost agreement tests: the modeled jump-edge cost must not
// drift from what the measurement harness actually observes.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/strategy"
)

// TestStrategyEnumsAligned pins the facade's Strategy constants to
// internal/strategy's: Place converts by numeric cast.
func TestStrategyEnumsAligned(t *testing.T) {
	pairs := map[Strategy]strategy.Strategy{
		EntryExit:        strategy.EntryExit,
		Shrinkwrap:       strategy.Shrinkwrap,
		ShrinkwrapSeed:   strategy.ShrinkwrapSeed,
		HierarchicalExec: strategy.HierarchicalExec,
		HierarchicalJump: strategy.HierarchicalJump,
	}
	for pub, internal := range pairs {
		if computeStrategy(pub) != internal {
			t.Errorf("spillopt.%v maps to strategy.%v", pub, computeStrategy(pub))
		}
		if pub.String() != internal.String() {
			t.Errorf("name drift: %q vs %q", pub, internal)
		}
	}
}

// placementArgs profiles and allocates src, returning the facade
// program ready for PlacementCost queries.
func allocated(t *testing.T, src string, arg int64) *Program {
	t.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Profile(arg); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlacementCostMatchesMeasurement: for the entry/exit strategy
// (no jump blocks, so the jump-edge model has no approximation to
// make) the summed per-function PlacementCost equals the measured
// dynamic save/restore overhead exactly — on the hand-written demo
// and on generated programs.
func TestPlacementCostMatchesMeasurement(t *testing.T) {
	sources := map[string]string{"demo": demoSrc}
	for _, seed := range []uint64{11, 23, 77} {
		sources[itoa(seed)] = irtext.Print(irgen.Generate(seed, irgen.Default()))
	}
	for name, src := range sources {
		p := allocated(t, src, 40)
		var modeled int64
		for _, fn := range p.Functions() {
			c, err := p.PlacementCost(fn, EntryExit)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, fn, err)
			}
			modeled += c
		}
		placed := p.Clone()
		if err := placed.Place(EntryExit); err != nil {
			t.Fatal(err)
		}
		res, err := placed.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		measured := res.Saves + res.Restores + res.JumpBlockJumps
		if modeled != measured {
			t.Errorf("%s: modeled entry/exit cost %d != measured %d", name, modeled, measured)
		}
	}
}

// TestPlacementCostMatchesBench: the facade's modeled cost agrees
// with what internal/bench measures for the same program and
// strategy (bench profiles and runs with argument 0).
func TestPlacementCostMatchesBench(t *testing.T) {
	src := irtext.Print(irgen.Generate(11, irgen.Default()))
	res, err := bench.RunEntry(bench.Entry{
		Name: "gen11",
		Gen: func() *ir.Program {
			prog, err := irtext.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			return prog
		},
	}, bench.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[bench.Baseline]
	measured := st.Saves + st.Restores + st.JumpBlockJmps

	p := allocated(t, src, 0)
	var modeled int64
	var hier int64
	for _, fn := range p.Functions() {
		c, err := p.PlacementCost(fn, EntryExit)
		if err != nil {
			t.Fatal(err)
		}
		modeled += c
		h, err := p.PlacementCost(fn, HierarchicalJump)
		if err != nil {
			t.Fatal(err)
		}
		hier += h
	}
	if modeled != measured {
		t.Errorf("modeled entry/exit cost %d != bench-measured %d", modeled, measured)
	}
	if hier > modeled {
		t.Errorf("hierarchical-jump modeled cost %d exceeds entry/exit's %d", hier, modeled)
	}
}

// TestPlacementCostErrors: unknown functions and out-of-order use
// fail cleanly.
func TestPlacementCostErrors(t *testing.T) {
	p := allocated(t, demoSrc, 40)
	if _, err := p.PlacementCost("nosuch", EntryExit); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := p.PlacementCost("work", Strategy(99)); err == nil {
		t.Error("unknown strategy should error")
	}
	q, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.PlacementCost("nosuch", EntryExit); err == nil {
		t.Error("unknown function should error before allocation too")
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "seed0"
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "seed" + string(buf[i:])
}
