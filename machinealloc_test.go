package spillopt

import (
	"strings"
	"testing"
)

// TestParseAllocMode: the alloc-mode names every surface (CLI flags,
// the server's alloc option) resolves through.
func TestParseAllocMode(t *testing.T) {
	for _, name := range []string{"", "uniform"} {
		mach, err := ParseAllocMode(name)
		if err != nil || mach {
			t.Errorf("ParseAllocMode(%q) = %v, %v; want uniform", name, mach, err)
		}
	}
	mach, err := ParseAllocMode("machine")
	if err != nil || !mach {
		t.Errorf("ParseAllocMode(machine) = %v, %v; want machine", mach, err)
	}
	if _, err := ParseAllocMode("bogus"); err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Errorf("ParseAllocMode(bogus) = %v, want an error listing the modes", err)
	}
	if len(AllocModes()) != 2 {
		t.Errorf("AllocModes() = %v, want uniform and machine", AllocModes())
	}
}

// TestUseMachineAllocation: the mode must be requested before
// Allocate, the classic preset reproduces the uniform allocation byte
// for byte, and machine pricing on a skewed preset never changes the
// computed result.
func TestUseMachineAllocation(t *testing.T) {
	run := func(mach string, machineAlloc bool) (*Result, string) {
		t.Helper()
		p, err := ParseProgram(demoSrc)
		if err != nil {
			t.Fatal(err)
		}
		if mach != "" {
			if err := p.UseMachine(mach); err != nil {
				t.Fatal(err)
			}
		}
		if machineAlloc {
			if err := p.UseMachineAllocation(); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Profile(100); err != nil {
			t.Fatal(err)
		}
		if err := p.Allocate(); err != nil {
			t.Fatal(err)
		}
		text := p.Text()
		if err := p.Place(HierarchicalJump); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		return res, text
	}

	uni, uniText := run("classic", false)
	mach, machText := run("classic", true)
	if machText != uniText {
		t.Errorf("classic machine-priced allocation changed the program text")
	}
	if mach.Value != uni.Value || mach.Overhead != uni.Overhead {
		t.Errorf("classic machine alloc: value/overhead %d/%d, want %d/%d",
			mach.Value, mach.Overhead, uni.Value, uni.Overhead)
	}
	deep, _ := run("deep-pipeline", true)
	if deep.Value != uni.Value {
		t.Errorf("deep-pipeline machine alloc computes %d, want %d", deep.Value, uni.Value)
	}

	// Ordering: the mode shapes Allocate, so it cannot arrive after it.
	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Profile(100); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.UseMachineAllocation(); err == nil || !strings.Contains(err.Error(), "before Allocate") {
		t.Errorf("UseMachineAllocation after Allocate: err = %v, want ordering error", err)
	}
}
