package spillopt

// Tests for the concurrent facade: Clone must produce fully
// independent programs (no aliasing of blocks or instructions), and
// the parallel Allocate/Place paths must emit bit-identical code to
// the serial ones.

import (
	"testing"

	"repro/internal/irtext"
	"repro/internal/workload"
)

// TestClonePlacementIndependence clones one allocated program twice,
// applies a different strategy to each clone, and checks the clones
// share no IR structure: different placements, independent Run
// results, and no block or instruction pointers in common.
func TestClonePlacementIndependence(t *testing.T) {
	base, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Profile(100); err != nil {
		t.Fatal(err)
	}
	if err := base.Allocate(); err != nil {
		t.Fatal(err)
	}
	baseText := base.Text()

	a, b := base.Clone(), base.Clone()
	if err := a.Place(EntryExit); err != nil {
		t.Fatal(err)
	}
	if err := b.Place(HierarchicalJump); err != nil {
		t.Fatal(err)
	}
	if a.Text() == b.Text() {
		t.Error("different strategies produced identical programs")
	}
	if base.Text() != baseText {
		t.Error("placing on clones mutated the original program")
	}

	ra, err := a.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Value != rb.Value {
		t.Errorf("clones compute different values: %d vs %d", ra.Value, rb.Value)
	}
	if rb.Overhead > ra.Overhead {
		t.Errorf("hierarchical overhead %d > entry/exit %d on clone", rb.Overhead, ra.Overhead)
	}

	// No structural aliasing: every block and instruction pointer is
	// unique to its clone (and to the original).
	seen := map[any]string{}
	for label, prog := range map[string]*Program{"base": base, "a": a, "b": b} {
		for _, f := range prog.prog.FuncsInOrder() {
			for _, blk := range f.Blocks {
				if prev, ok := seen[blk]; ok {
					t.Fatalf("block %s.%s aliased between %s and %s", f.Name, blk.Name, prev, label)
				}
				seen[blk] = label
				for _, in := range blk.Instrs {
					if prev, ok := seen[in]; ok {
						t.Fatalf("instruction %v in %s aliased between %s and %s", in, f.Name, prev, label)
					}
					seen[in] = label
				}
			}
		}
	}
}

// TestParallelPipelineMatchesSerial compiles a multi-procedure
// workload program through Allocate and Place at several parallelism
// levels and demands bit-identical output text.
func TestParallelPipelineMatchesSerial(t *testing.T) {
	src := irtext.Print(workload.Generate(workload.SPECInt2000()[0])) // gzip: 9 procedures

	build := func(parallelism int, s Strategy) string {
		p, err := ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		p.Parallelism = parallelism
		if err := p.Profile(0); err != nil {
			t.Fatal(err)
		}
		if err := p.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := p.Place(s); err != nil {
			t.Fatal(err)
		}
		return p.Text()
	}

	for _, s := range []Strategy{EntryExit, Shrinkwrap, HierarchicalJump} {
		serial := build(1, s)
		for _, n := range []int{2, 8, 0} {
			if got := build(n, s); got != serial {
				t.Errorf("%v: parallelism %d produced different code than serial", s, n)
			}
		}
	}
}
