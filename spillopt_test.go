package spillopt

import (
	"strings"
	"testing"
)

// demoSrc has a hot path and a cold branch with a call; the value v2
// is live across the call and confined to the cold path, so the
// hierarchical placement can save/restore around the cold region only
// while entry/exit placement pays on every invocation.
const demoSrc = `
main main

func work(v0) {
entry:
	v1 = const 100
	store v1+0, v0
	v3 = const 240
	v4 = and v0, v3
	br v4, join, cold ; 0 0
cold:
	v5 = const 1
	v2 = add v0, v5
	v6 = call helper(v0)
	v7 = add v2, v6
	v8 = const 100
	store v8+0, v7
	jmp join ; 0
join:
	v9 = load v1+0
	ret v9
}

func helper(v0) {
entry:
	v1 = const 2
	v2 = mul v0, v1
	ret v2
}

func main(v0) {
entry:
	v1 = const 0
	v2 = const 0
	jmp loop ; 0
loop:
	v3 = call work(v1)
	v2 = add v2, v3
	v4 = const 1
	v1 = add v1, v4
	v5 = cmplt v1, v0
	br v5, loop, done ; 0 0
done:
	ret v2
}
`

func pipeline(t *testing.T, s Strategy) (*Program, *Result) {
	t.Helper()
	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Profile(100); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(s); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestPipelineAllStrategies(t *testing.T) {
	var ref int64
	results := map[Strategy]*Result{}
	for _, s := range []Strategy{EntryExit, Shrinkwrap, ShrinkwrapSeed, HierarchicalExec, HierarchicalJump} {
		_, res := pipeline(t, s)
		results[s] = res
		if ref == 0 {
			ref = res.Value
		} else if res.Value != ref {
			t.Errorf("%v computes %d, want %d", s, res.Value, ref)
		}
		if res.Overhead != res.Saves+res.Restores+res.SpillLoads+res.SpillStores+res.JumpBlockJumps {
			t.Errorf("%v: overhead breakdown inconsistent", s)
		}
	}
	// The hierarchical placements never exceed baseline or shrink-wrap.
	for _, s := range []Strategy{HierarchicalExec, HierarchicalJump} {
		if results[s].Overhead > results[EntryExit].Overhead {
			t.Errorf("%v overhead %d > entry/exit %d", s, results[s].Overhead, results[EntryExit].Overhead)
		}
		if results[s].Overhead > results[Shrinkwrap].Overhead {
			t.Errorf("%v overhead %d > shrinkwrap %d", s, results[s].Overhead, results[Shrinkwrap].Overhead)
		}
	}
	// The cold call pattern should give the hierarchical placement a
	// strict win over entry/exit here.
	if results[HierarchicalJump].Overhead >= results[EntryExit].Overhead {
		t.Errorf("expected a strict win: hierarchical %d vs entry/exit %d",
			results[HierarchicalJump].Overhead, results[EntryExit].Overhead)
	}
}

// TestAnalysisStatsAfterPipeline: the facade's analysis counters show
// the placement edit being absorbed incrementally — every Place edit is
// a recognized delta (DeltaFull stays 0), and the PST's split-graph
// dominator trees are computed no more often than the PST itself.
func TestAnalysisStatsAfterPipeline(t *testing.T) {
	p, _ := pipeline(t, HierarchicalJump)
	st := p.AnalysisStats()
	if st.DeltaFull != 0 {
		t.Errorf("placement fell back to %d full invalidations", st.DeltaFull)
	}
	if st.DeltaPatched == 0 {
		t.Error("no placement edit was patched incrementally")
	}
	if st.Misses == 0 {
		t.Error("no analysis handle was ever created")
	}
	if st.SplitDom > st.PST {
		t.Errorf("split-dom computed %d times for %d PST builds — memoization lost", st.SplitDom, st.PST)
	}
	if st.Liveness == 0 || st.PST == 0 {
		t.Errorf("placement built no analyses: %+v", st)
	}
}

func TestPipelineOrderEnforced(t *testing.T) {
	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Place(EntryExit); err == nil {
		t.Error("Place before Allocate should fail")
	}
	if err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Profile(10); err == nil {
		t.Error("Profile after Allocate should fail")
	}
	if err := p.Allocate(); err == nil {
		t.Error("double Allocate should fail")
	}
	if err := p.Place(EntryExit); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(EntryExit); err == nil {
		t.Error("double Place should fail")
	}
}

func TestPlacementCostComparison(t *testing.T) {
	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Profile(100); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	ee, err := p.PlacementCost("work", EntryExit)
	if err != nil {
		t.Fatal(err)
	}
	hj, err := p.PlacementCost("work", HierarchicalJump)
	if err != nil {
		t.Fatal(err)
	}
	if hj > ee {
		t.Errorf("hierarchical cost %d > entry/exit %d", hj, ee)
	}
	if _, err := p.PlacementCost("nosuch", EntryExit); err == nil {
		t.Error("unknown function should error")
	}
}

func TestTextRendersPlacement(t *testing.T) {
	p, _ := pipeline(t, EntryExit)
	text := p.Text()
	if !strings.Contains(text, "save ") || !strings.Contains(text, "restore ") {
		t.Errorf("placed program text missing save/restore:\n%s", text)
	}
}

func TestCloneIndependence(t *testing.T) {
	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Profile(100); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.Place(EntryExit); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(HierarchicalJump); err != nil {
		t.Fatal(err)
	}
	if p.Text() == c.Text() {
		t.Error("clones should diverge after different placements")
	}
}

func TestMachineInfo(t *testing.T) {
	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	mi := p.Machine()
	if mi.Registers != 24 || mi.CalleeSaved != 13 {
		t.Errorf("machine = %+v, want 24/13 (paper's PA-RISC)", mi)
	}
}

// TestUseMachine: retargeting to a machine cost preset prices
// Result.Cost with the preset's latencies, keeps measured counts
// identical to the default machine (the presets share one register
// file), and enforces the pipeline order.
func TestUseMachine(t *testing.T) {
	if len(Machines()) < 4 {
		t.Fatalf("Machines() = %v, want the preset catalog", Machines())
	}
	runOn := func(mach string) *Result {
		p, err := ParseProgram(demoSrc)
		if err != nil {
			t.Fatal(err)
		}
		if mach != "" {
			if err := p.UseMachine(mach); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Profile(100); err != nil {
			t.Fatal(err)
		}
		if err := p.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := p.Place(HierarchicalJump); err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		if mach != "" && p.Machine().Name != mach {
			t.Errorf("Machine().Name = %q, want %q", p.Machine().Name, mach)
		}
		return res
	}
	def := runOn("")
	if def.Cost != def.Overhead {
		t.Errorf("default machine cost %d != overhead %d (unit costs)", def.Cost, def.Overhead)
	}
	deep := runOn("deep-pipeline") // st2/ld3/j12
	if deep.Value != def.Value {
		t.Errorf("deep-pipeline computes %d, want %d", deep.Value, def.Value)
	}
	want := (deep.Saves+deep.SpillStores)*2 + (deep.Restores+deep.SpillLoads)*3 + deep.JumpBlockJumps*12
	if deep.Cost != want {
		t.Errorf("deep-pipeline cost %d, want %d from class counts", deep.Cost, want)
	}

	p, err := ParseProgram(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.UseMachine("warp-drive"); err == nil {
		t.Error("unknown preset should error")
	}
	if err := p.Profile(100); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.UseMachine("classic"); err == nil {
		t.Error("UseMachine after Allocate should error")
	}
}

func TestDotExports(t *testing.T) {
	p, _ := pipeline(t, HierarchicalJump)
	cfg, err := p.DotCFG("work")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg, "digraph \"work\"") {
		t.Errorf("DotCFG malformed: %s", cfg[:60])
	}
	pstDot, err := p.DotPST("work")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pstDot, "procedure (boundary") {
		t.Error("DotPST missing root region")
	}
	if _, err := p.DotCFG("nosuch"); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := p.DotPST("nosuch"); err == nil {
		t.Error("unknown function should error")
	}
}
