// Paperfigure walks through the paper's worked example (Figures 2-4):
// it builds the reconstructed Figure 2 control flow graph, shows the
// maximal SESE regions of the program structure tree, the initial
// save/restore sets from modified shrink-wrapping, and then replays
// the hierarchical algorithm's region-by-region decisions under both
// cost models, ending with the paper's final numbers (190 for the
// execution count model, 200 for the jump edge model).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func main() {
	fig := workload.NewFigure2()
	f := fig.Func

	fmt.Println("=== Figure 2: the motivating example ===")
	fmt.Printf("procedure with %d blocks, entry count %d\n", len(f.Blocks), f.EntryCount)
	fmt.Printf("callee-saved register %v allocated in blocks D, E, H, K, N\n\n", fig.Reg)

	ee := core.EntryExit(f)
	fmt.Printf("entry/exit placement cost: %d (paper: 200)\n",
		core.TotalCost(core.ExecCountModel{}, ee))

	sw := shrinkwrap.Compute(f, shrinkwrap.Original)
	fmt.Printf("Chow's shrink-wrapping cost: %d (paper: 250)\n",
		core.TotalCost(core.ExecCountModel{}, sw))
	for _, s := range sw {
		fmt.Printf("  %v\n", s)
	}

	fmt.Println("\n=== Figure 3: maximal SESE regions and initial sets ===")
	t, err := pst.Build(f)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range t.BottomUp() {
		fmt.Printf("  depth %d  %v  boundary cost %d\n",
			r.Depth, r, r.EntryWeight(f)+r.ExitWeight(f))
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	fmt.Println("\ninitial save/restore sets (modified shrink-wrapping):")
	for _, s := range seed {
		fmt.Printf("  exec cost %3d, jump cost %3d: %v\n",
			core.SetCost(core.ExecCountModel{}, s),
			core.SetCost(core.JumpEdgeModel{}, s), s)
	}

	for _, m := range []core.CostModel{core.ExecCountModel{}, core.JumpEdgeModel{}} {
		fmt.Printf("\n=== Figure 4: hierarchical placement, %s cost model ===\n", m.Name())
		final, decisions, err := core.Hierarchical(f, t, seed, m)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range decisions {
			verdict := "keep contained sets"
			if d.Replaced {
				verdict = "REPLACE with boundary set"
			}
			entry := "procedure"
			if d.Region.EntryEdge != nil {
				entry = d.Region.EntryEdge.From.Name + "->" + d.Region.EntryEdge.To.Name
			}
			fmt.Printf("  region(%s): contained %d vs boundary %d -> %s\n",
				entry, d.ContainedCost, d.BoundaryCost, verdict)
		}
		fmt.Printf("final sets (total cost %d):\n", core.TotalCost(m, final))
		for _, s := range final {
			fmt.Printf("  %v\n", s)
		}
	}
	fmt.Println("\npaper's results: 190 (execution count model), 200 (jump edge model)")
}
