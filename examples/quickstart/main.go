// Quickstart: compile a small program through the whole pipeline and
// compare the paper's hierarchical placement against entry/exit
// placement.
package main

import (
	"fmt"
	"log"

	"repro"
)

// The program calls a helper on a cold path only; the value v2 lives
// across the call, so the register allocator must use a callee-saved
// register for it — and someone has to place its save/restore code.
const src = `
main main

func work(v0) {
entry:
	v1 = const 100
	store v1+0, v0
	v3 = const 240
	v4 = and v0, v3
	br v4, join, cold ; 0 0
cold:
	v5 = const 1
	v2 = add v0, v5
	v6 = call helper(v0)
	v7 = add v2, v6
	v8 = const 100
	store v8+0, v7
	jmp join ; 0
join:
	v9 = load v1+0
	ret v9
}

func helper(v0) {
entry:
	v1 = const 2
	v2 = mul v0, v1
	ret v2
}

func main(v0) {
entry:
	v1 = const 0
	v2 = const 0
	jmp loop ; 0
loop:
	v3 = call work(v1)
	v2 = add v2, v3
	v4 = const 1
	v1 = add v1, v4
	v5 = cmplt v1, v0
	br v5, loop, done ; 0 0
done:
	ret v2
}
`

func main() {
	for _, strategy := range []spillopt.Strategy{spillopt.EntryExit, spillopt.HierarchicalJump} {
		prog, err := spillopt.ParseProgram(src)
		if err != nil {
			log.Fatal(err)
		}
		// 1. Profile: run once, recording edge execution counts.
		if err := prog.Profile(1000); err != nil {
			log.Fatal(err)
		}
		// 2. Allocate registers (Chaitin/Briggs graph coloring).
		if err := prog.Allocate(); err != nil {
			log.Fatal(err)
		}
		// 3. Place callee-saved save/restore code.
		if err := prog.Place(strategy); err != nil {
			log.Fatal(err)
		}
		// 4. Execute under convention checking and measure overhead.
		res, err := prog.Run(1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s result=%d  dynamic spill overhead=%d (saves %d, restores %d)\n",
			strategy, res.Value, res.Overhead, res.Saves, res.Restores)
	}
	fmt.Println("\nThe hierarchical placement saves/restores only around the cold call,")
	fmt.Println("so its overhead scales with the cold path count, not the call count.")
}
