// Jumpedges demonstrates the jump edge cost model and jump block
// insertion: a goto-heavy procedure (the gcc/crafty pattern from the
// paper) where a save/restore set's restore must live on a jump edge.
// Chow's original technique refuses to place code there and degrades
// toward entry/exit placement; the hierarchical algorithm pays for a
// jump block when it is worth it.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	// The paper's own example CFG contains exactly this situation: the
	// D-E web's second restore has to sit on the D->F jump edge.
	fig := workload.NewFigure2()
	f := fig.Func

	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	fmt.Println("modified shrink-wrapping may use jump edges:")
	for _, s := range seed {
		for _, l := range s.Locations() {
			if l.NeedsJumpBlock() {
				fmt.Printf("  %v needs a jump block (edge weight %d -> jump model adds %d)\n",
					l, l.Weight(), l.Weight())
			}
		}
	}

	t, err := pst.Build(f)
	if err != nil {
		log.Fatal(err)
	}
	final, _, err := core.Hierarchical(f, t, seed, core.ExecCountModel{})
	if err != nil {
		log.Fatal(err)
	}

	// Apply the exec-count placement: it keeps the D->F restore, so
	// Apply must create a jump block.
	clone := f.Clone()
	clone.UsedCalleeSaved = f.UsedCalleeSaved
	ct, err := pst.Build(clone)
	if err != nil {
		log.Fatal(err)
	}
	cseed := shrinkwrap.Compute(clone, shrinkwrap.Seed)
	cfinal, _, err := core.Hierarchical(clone, ct, cseed, core.ExecCountModel{})
	if err != nil {
		log.Fatal(err)
	}
	if len(cfinal) != len(final) {
		log.Fatal("clone placement diverged")
	}
	before := len(clone.Blocks)
	if err := core.Apply(clone, cfinal); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nApply created %d jump block(s):\n", len(clone.Blocks)-before)
	for _, b := range clone.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Flags&ir.FlagJumpBlock != 0 {
			fmt.Printf("  block %s (executes %d times):\n", b.Name, b.ExecCount())
			for _, in := range b.Instrs {
				fmt.Printf("    %v\n", in)
			}
		}
	}

	fmt.Printf("\nmodeled overhead: %d save/restore + jump instructions\n", core.DynamicOverhead(clone))
	bd := core.Breakdown(clone)
	fmt.Printf("breakdown: saves %d, restores %d, jump-block jumps %d\n",
		bd.Saves, bd.Restores, bd.JumpBlockJmps)

	// The figure CFG has no executable bodies beyond the allocation
	// markers, so give it a program harness and check the jump block
	// really executes the right number of times.
	prog := ir.NewProgram()
	prog.Add(clone)
	m := vm.New(prog, vm.Config{})
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none traced execution: %d instructions, %d overhead\n",
		m.Stats.Instrs, m.Stats.Overhead())
}
