// Pipeline runs one synthetic SPEC-like workload through the paper's
// full evaluation pipeline and prints where every number comes from:
// profile, allocation, placement per strategy, and measured overhead.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	var params workload.BenchParams
	for _, p := range workload.SPECInt2000() {
		if p.Name == "crafty" {
			params = p
		}
	}
	fmt.Printf("workload: %s (%d procedures + driver)\n", params.Name, params.Procs)
	fmt.Printf("traits: cold calls %.0f%%, live-across %.0f%%, outer loop %.0f%%\n\n",
		params.ColdCallProb*100, params.LiveAcrossProb*100, params.OuterLoopProb*100)

	r, err := bench.Run(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: %d procedures, %d instructions after allocation, %d spilled vregs\n",
		r.Procedures, r.Instrs, r.SpilledVregs)
	fmt.Printf("all strategies computed the same result: %d\n\n", r.ReturnValue)

	fmt.Printf("%-12s %10s %9s %14s\n", "strategy", "overhead", "ratio", "placement time")
	for _, s := range bench.Strategies {
		fmt.Printf("%-12s %10d %8.1f%% %14v\n",
			s, r.Overhead[s], r.Ratio(s), r.PlacementTime[s])
	}
	fmt.Println("\n(the paper's crafty row: optimized 44.0%, shrink-wrap 93.3%)")
}
