package pst

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/ir"
	"repro/internal/workload"
)

func findRegion(t *testing.T, p *PST, entryFrom, entryTo string) *Region {
	t.Helper()
	for _, r := range p.Regions {
		if r.EntryEdge != nil && r.EntryEdge.From.Name == entryFrom && r.EntryEdge.To.Name == entryTo {
			return r
		}
	}
	t.Fatalf("no region with entry edge %s->%s", entryFrom, entryTo)
	return nil
}

func TestDiamondRegions(t *testing.T) {
	f := cfgtest.MustBuild("diamond",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 30), cfgtest.E("A", "C", 70),
			cfgtest.E("B", "D", 30), cfgtest.E("C", "D", 70),
		})
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Regions) != 3 {
		t.Fatalf("regions = %d, want 3 (root + {B} + {C}):\n%v", len(p.Regions), p.Regions)
	}
	if p.Root == nil || !p.Root.IsRoot() || len(p.Root.Blocks) != 4 {
		t.Fatalf("bad root: %v", p.Root)
	}
	rb := findRegion(t, p, "A", "B")
	if cfgtest.Names(rb.Blocks) != "B" {
		t.Errorf("region(A->B) blocks = %q, want B", cfgtest.Names(rb.Blocks))
	}
	if rb.ExitEdge == nil || rb.ExitEdge.To.Name != "D" {
		t.Errorf("region(A->B) exit = %v", rb.ExitEdge)
	}
	if rb.Parent != p.Root {
		t.Error("region(A->B) should be child of root")
	}
	if rb.EntryWeight(f) != 30 || rb.ExitWeight(f) != 30 {
		t.Errorf("region(A->B) weights = %d/%d, want 30/30", rb.EntryWeight(f), rb.ExitWeight(f))
	}
}

func TestStraightLineCollapsesToRoot(t *testing.T) {
	f := cfgtest.MustBuild("line",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 5), cfgtest.E("B", "C", 5)})
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	// All edges have the same frequency, so maximality merges the
	// whole chain into the root region alone.
	if len(p.Regions) != 1 {
		t.Fatalf("regions = %d, want 1 (root only): %v", len(p.Regions), p.Regions)
	}
}

func TestLoopBodyNotSeparateRegion(t *testing.T) {
	// A -> B; B -> B, B -> C: the loop entry and exit edges run at the
	// same frequency as procedure entry, so only the root remains; the
	// self-loop forms no region.
	f := cfgtest.MustBuild("loop",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 10),
			cfgtest.E("B", "B", 90), cfgtest.E("B", "C", 10),
		})
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Regions) != 1 {
		t.Fatalf("regions = %d, want 1: %v", len(p.Regions), p.Regions)
	}
}

func TestLoopWithBodyRegion(t *testing.T) {
	// A -> H; H -> B -> H (loop); H -> X. The body block B is entered
	// from H and returns to H: edges H->B and B->H are cycle
	// equivalent, giving a region {B} nested in the root.
	f := cfgtest.MustBuild("loop2",
		[]string{"A", "H", "B", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "H", 10),
			cfgtest.E("H", "B", 90), cfgtest.E("B", "H", 90),
			cfgtest.E("H", "X", 10),
		})
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Regions) != 2 {
		t.Fatalf("regions = %d, want 2: %v", len(p.Regions), p.Regions)
	}
	r := findRegion(t, p, "H", "B")
	if cfgtest.Names(r.Blocks) != "B" {
		t.Errorf("loop body region = %q, want B", cfgtest.Names(r.Blocks))
	}
	if r.EntryWeight(f) != 90 || r.ExitWeight(f) != 90 {
		t.Errorf("loop body region weights %d/%d, want 90/90", r.EntryWeight(f), r.ExitWeight(f))
	}
}

func TestMultiExit(t *testing.T) {
	f := cfgtest.MustBuild("multi",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 40), cfgtest.E("A", "C", 60)})
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root == nil || len(p.Root.Blocks) != 3 {
		t.Fatalf("bad root: %v", p.Root)
	}
	// Root exit weight = sum over both exits.
	if w := p.Root.ExitWeight(f); w != 100 {
		t.Errorf("root exit weight = %d, want 100", w)
	}
	// Regions {B} and {C} have augmented exit boundaries: the region's
	// exit is the end of its specific exit block.
	rb := findRegion(t, p, "A", "B")
	if rb.ExitEdge != nil || rb.ExitBlock == nil || rb.ExitBlock.Name != "B" {
		t.Errorf("region(A->B) exit should be end-of-B, got %v", rb)
	}
	if rb.ExitWeight(f) != 40 {
		t.Errorf("region(A->B) exit weight = %d, want 40", rb.ExitWeight(f))
	}
}

func TestFigure2Regions(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Regions) != 6 {
		for _, r := range p.Regions {
			t.Logf("  %v", r)
		}
		t.Fatalf("regions = %d, want 6 (root, R1, R2, R3, {E}, {N})", len(p.Regions))
	}

	r1 := findRegion(t, p, "B", "C")
	r2 := findRegion(t, p, "A", "B")
	r3 := findRegion(t, p, "A", "J")
	re := findRegion(t, p, "D", "E")
	rn := findRegion(t, p, "M", "N")
	if got := cfgtest.Names(rn.Blocks); got != "N" {
		t.Errorf("{N} region blocks = %q, want N", got)
	}
	if rn.Parent != r3 {
		t.Errorf("{N}.Parent should be Region 3")
	}

	if got := cfgtest.Names(r1.Blocks); got != "C D E F" {
		t.Errorf("Region 1 blocks = %q, want 'C D E F'", got)
	}
	if got := cfgtest.Names(r2.Blocks); got != "B C D E F G H I" {
		t.Errorf("Region 2 blocks = %q", got)
	}
	if got := cfgtest.Names(r3.Blocks); got != "J K L M N O" {
		t.Errorf("Region 3 blocks = %q", got)
	}
	if got := cfgtest.Names(re.Blocks); got != "E" {
		t.Errorf("{E} region blocks = %q", got)
	}

	// Paper boundary costs: Region 1 = 100, Region 2 = 140,
	// Region 3 = 60, Region 4 (root) = 200.
	checkCost := func(name string, r *Region, want int64) {
		t.Helper()
		if got := r.EntryWeight(f) + r.ExitWeight(f); got != want {
			t.Errorf("%s boundary cost = %d, want %d", name, got, want)
		}
	}
	checkCost("Region 1", r1, 100)
	checkCost("Region 2", r2, 140)
	checkCost("Region 3", r3, 60)
	checkCost("Region 4", p.Root, 200)

	// Nesting: {E} in R1 in R2 in root; R3 in root.
	if re.Parent != r1 {
		t.Errorf("{E}.Parent = %v, want Region 1", re.Parent)
	}
	if r1.Parent != r2 {
		t.Errorf("R1.Parent = %v, want Region 2", r1.Parent)
	}
	if r2.Parent != p.Root || r3.Parent != p.Root {
		t.Error("R2 and R3 should be children of the root")
	}

	// Exit edges.
	if r1.ExitEdge == nil || r1.ExitEdge.From.Name != "F" || r1.ExitEdge.To.Name != "G" {
		t.Errorf("R1 exit = %v, want F->G", r1.ExitEdge)
	}
	if r2.ExitEdge == nil || r2.ExitEdge.From.Name != "I" {
		t.Errorf("R2 exit = %v, want I->P", r2.ExitEdge)
	}
	if r3.ExitEdge == nil || r3.ExitEdge.From.Name != "O" {
		t.Errorf("R3 exit = %v, want O->P", r3.ExitEdge)
	}
}

func TestBottomUpOrder(t *testing.T) {
	fig := workload.NewFigure2()
	p, err := Build(fig.Func)
	if err != nil {
		t.Fatal(err)
	}
	order := p.BottomUp()
	if len(order) != len(p.Regions) {
		t.Fatalf("BottomUp returned %d regions, want %d", len(order), len(p.Regions))
	}
	pos := make(map[*Region]int)
	for i, r := range order {
		pos[r] = i
	}
	for _, r := range p.Regions {
		for _, c := range r.Children {
			if pos[c] >= pos[r] {
				t.Errorf("child %v not before parent %v", c, r)
			}
		}
	}
	if order[len(order)-1] != p.Root {
		t.Error("root must come last")
	}
}

func TestSmallestContaining(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"E": "E",       // inside {E}
		"D": "C D E F", // inside Region 1
		"G": "B C D E F G H I",
		"K": "J K L M N O",
		"A": "", // root (all blocks)
	}
	for block, want := range cases {
		r := p.SmallestContaining(f.BlockByName(block))
		if want == "" {
			if !r.IsRoot() {
				t.Errorf("SmallestContaining(%s) = %v, want root", block, r)
			}
			continue
		}
		if got := cfgtest.Names(r.Blocks); got != want {
			t.Errorf("SmallestContaining(%s) = %q, want %q", block, got, want)
		}
	}
}

func TestContainsEdge(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	p, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	r1 := findRegion(t, p, "B", "C")
	df := f.BlockByName("D").SuccEdge(f.BlockByName("F"))
	if !r1.ContainsEdge(df) {
		t.Error("Region 1 should contain edge D->F")
	}
	// The region's own boundary edges are not contained.
	if r1.ContainsEdge(r1.EntryEdge) || r1.ContainsEdge(r1.ExitEdge) {
		t.Error("region must not contain its own boundary edges")
	}
	fg := f.BlockByName("F").SuccEdge(f.BlockByName("G"))
	r2 := findRegion(t, p, "A", "B")
	if !r2.ContainsEdge(fg) {
		t.Error("Region 2 should contain F->G (Region 1's exit edge)")
	}
}

func TestRegionWellFormed(t *testing.T) {
	// Structural invariants on every region of several graphs.
	graphs := []*ir.Func{
		workload.NewFigure2().Func,
		workload.NewFigure1(20, 80).Func,
		cfgtest.MustBuild("diamond",
			[]string{"A", "B", "C", "D"},
			[]cfgtest.Edge{
				cfgtest.E("A", "B", 30), cfgtest.E("A", "C", 70),
				cfgtest.E("B", "D", 30), cfgtest.E("C", "D", 70),
			}),
	}
	for _, f := range graphs {
		p, err := Build(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, r := range p.Regions {
			if r == p.Root {
				continue
			}
			// Entry edge crosses into the region; exit crosses out.
			if r.EntryEdge != nil {
				if r.ContainsBlock(r.EntryEdge.From) || !r.ContainsBlock(r.EntryEdge.To) {
					t.Errorf("%s: region %v entry edge does not cross boundary", f.Name, r)
				}
			}
			if r.ExitEdge != nil {
				if !r.ContainsBlock(r.ExitEdge.From) || r.ContainsBlock(r.ExitEdge.To) {
					t.Errorf("%s: region %v exit edge does not cross boundary", f.Name, r)
				}
			}
			// Parent strictly contains child.
			if r.Parent != nil {
				for _, b := range r.Blocks {
					if !r.Parent.ContainsBlock(b) {
						t.Errorf("%s: parent %v misses block %s of child %v", f.Name, r.Parent, b.Name, r)
					}
				}
				if len(r.Parent.Blocks) <= len(r.Blocks) {
					t.Errorf("%s: parent %v not larger than child %v", f.Name, r.Parent, r)
				}
			}
			// Interior SESE frequency conservation: entry and exit
			// boundary weights match.
			if r.EntryEdge != nil && r.ExitEdge != nil {
				if r.EntryWeight(f) != r.ExitWeight(f) {
					t.Errorf("%s: region %v entry weight %d != exit weight %d",
						f.Name, r, r.EntryWeight(f), r.ExitWeight(f))
				}
			}
		}
	}
}
