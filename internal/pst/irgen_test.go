package pst_test

// Property tests of PST construction over irgen's random programs —
// far wilder CFGs (rotated loops, diamond chains with skip edges,
// multi-exit procedures) than cfgtest.RandomStructured emits. The
// external test package breaks the import cycle: irgen's oracle
// imports pst.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/pst"
)

// regionSignature renders a region's identity independent of block
// layout order: boundary edges plus the sorted member-name set.
func regionSignature(r *pst.Region) string {
	names := make([]string, len(r.Blocks))
	for i, b := range r.Blocks {
		names[i] = b.Name
	}
	sort.Strings(names)
	entry := "proc-entry"
	if r.EntryEdge != nil {
		entry = r.EntryEdge.From.Name + "->" + r.EntryEdge.To.Name
	}
	exit := "proc-exit"
	switch {
	case r.ExitEdge != nil:
		exit = r.ExitEdge.From.Name + "->" + r.ExitEdge.To.Name
	case r.ExitBlock != nil:
		exit = "end-of-" + r.ExitBlock.Name
	}
	return fmt.Sprintf("[%s..%s]{%s}", entry, exit, strings.Join(names, " "))
}

func treeSignature(t *pst.PST) string {
	sigs := make([]string, len(t.Regions))
	for i, r := range t.Regions {
		parent := "-"
		if r.Parent != nil {
			parent = regionSignature(r.Parent)
		}
		sigs[i] = regionSignature(r) + "<" + parent
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "\n")
}

// TestPSTRegionsAreSESE: every non-root region of a generated CFG has
// exactly the entering and leaving edges its boundary encoding claims
// — a single entry edge (or none, for a procedure-entry boundary) and
// a single exit edge (or none, when the exit is the end of an exit
// block).
func TestPSTRegionsAreSESE(t *testing.T) {
	funcs := 0
	for seed := uint64(0); seed < 60; seed++ {
		prog := irgen.Generate(seed, irgen.Default())
		for _, f := range prog.FuncsInOrder() {
			tree, err := pst.Build(f)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, f.Name, err)
			}
			funcs++
			for _, r := range tree.Regions {
				if r.IsRoot() {
					continue
				}
				var entering, leaving []*ir.Edge
				for _, b := range r.Blocks {
					for _, e := range b.Preds {
						if !r.ContainsBlock(e.From) {
							entering = append(entering, e)
						}
					}
					for _, e := range b.Succs {
						if !r.ContainsBlock(e.To) {
							leaving = append(leaving, e)
						}
					}
				}
				switch {
				case r.EntryEdge != nil:
					if len(entering) != 1 || entering[0] != r.EntryEdge {
						t.Errorf("seed %d %s: region %v has %d entering edges, want exactly its entry edge",
							seed, f.Name, r, len(entering))
					}
				default:
					if len(entering) != 0 || !r.ContainsBlock(f.Entry) {
						t.Errorf("seed %d %s: proc-entry region %v has %d external entering edges",
							seed, f.Name, r, len(entering))
					}
				}
				switch {
				case r.ExitEdge != nil:
					if len(leaving) != 1 || leaving[0] != r.ExitEdge {
						t.Errorf("seed %d %s: region %v has %d leaving edges, want exactly its exit edge",
							seed, f.Name, r, len(leaving))
					}
				default:
					if len(leaving) != 0 {
						t.Errorf("seed %d %s: block-exit region %v has %d leaving edges, want 0",
							seed, f.Name, r, len(leaving))
					}
				}
			}
		}
	}
	if funcs == 0 {
		t.Fatal("no functions generated")
	}
}

// TestPSTCanonicalUnderLayoutPermutation: the PST depends only on the
// CFG's structure, so permuting the block layout (which changes edge
// kinds and IDs but no adjacency) must produce the identical tree.
func TestPSTCanonicalUnderLayoutPermutation(t *testing.T) {
	permuted := 0
	for seed := uint64(0); seed < 30; seed++ {
		prog := irgen.Generate(seed, irgen.Default())
		for _, f := range prog.FuncsInOrder() {
			if len(f.Blocks) < 4 {
				continue
			}
			ref, err := pst.Build(f)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, f.Name, err)
			}
			want := treeSignature(ref)
			rng := seed*31 + 17
			for trial := 0; trial < 3; trial++ {
				g := f.Clone()
				// Fisher-Yates over Blocks[1:]; the entry stays first so
				// the textual form and Verify's conventions hold.
				for i := len(g.Blocks) - 1; i > 1; i-- {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					j := 1 + int(rng%uint64(i))
					g.Blocks[i], g.Blocks[j] = g.Blocks[j], g.Blocks[i]
				}
				g.RenumberBlocks()
				g.ClassifyEdges()
				if err := ir.Verify(g); err != nil {
					t.Fatalf("seed %d %s: permuted clone invalid: %v", seed, f.Name, err)
				}
				tree, err := pst.Build(g)
				if err != nil {
					t.Fatalf("seed %d %s: permuted build: %v", seed, f.Name, err)
				}
				if got := treeSignature(tree); got != want {
					t.Fatalf("seed %d %s: PST differs under layout permutation\n-- layout order --\n%s\n-- permuted --\n%s",
						seed, f.Name, want, got)
				}
				permuted++
			}
		}
	}
	if permuted == 0 {
		t.Fatal("no permutations exercised")
	}
}
