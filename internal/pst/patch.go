package pst

import (
	"repro/internal/ir"
)

// EdgeSplit describes one CFG edge split for PST patching: the edge
// OldEdge (From->To) was removed and replaced by FromEdge
// (From->NewBlock) and ToEdge (NewBlock->To), where NewBlock is a new
// block with no other predecessors or successors.
type EdgeSplit struct {
	From, To, NewBlock *ir.Block
	OldEdge            *ir.Edge
	FromEdge, ToEdge   *ir.Edge
}

// Patch updates t — which must be the builder's last built tree — in
// place after edge-split-only edits, using the memoized pre-edit
// internals instead of rebuilding anything. oldID maps every
// pre-existing block to its pre-edit ID.
//
// Subdividing an edge leaves the cycle-equivalence classes intact (the
// two halves inherit the old edge's class and are equivalent to each
// other), so the region set changes in exactly two ways: a region
// whose boundary was the split edge gets the matching half as its new
// boundary, and a split edge that formed a class of its own turns into
// a fresh two-edge class — a new region spanning the blocks the old
// edge dominated and postdominated. Each inserted block joins region
// (a, b) iff a dominates and b postdominates it in the edited split
// graph, which reduces to pre-edit dominance queries against the split
// edge's endpoints. All queries run against the memoized split-graph
// dominator trees; the patch consumes the memo (the internals describe
// the pre-edit CFG), so the next Build or Patch after a further edit
// recomputes from scratch.
//
// Reports false without touching t when the memo cannot describe the
// edit (no memo, wrong tree, non-Maximal mode, unknown edges); the
// caller must then rebuild. A false return after mutation began (tree
// reassembly failure) leaves t unusable, so callers must always treat
// false as "invalidate and rebuild".
func (b *Builder) Patch(t *PST, oldID map[*ir.Block]int, splits []EdgeSplit) bool {
	if t == nil || !b.memoOK || b.mode != Maximal || t != b.lastTree || b.lastErr != nil {
		return false
	}
	if len(splits) == 0 {
		return true
	}
	m := b.memo

	// Aug-edge index lookups over the pre-edit graph.
	edgeIdx := make(map[*ir.Edge]int)
	exitIdx := make(map[*ir.Block]int)
	entryIdx := -1
	for i, e := range m.a.edges {
		switch {
		case e.real != nil:
			edgeIdx[e.real] = i
		case e.exitFrom != nil:
			exitIdx[e.exitFrom] = i
		case e.isEntry:
			entryIdx = i
		}
	}
	if entryIdx < 0 {
		return false
	}

	// Per-aug-edge class shape: how many non-close edges share the
	// class, and whether the virtual END->START edge is in it.
	classSize := make([]int, len(m.a.edges))
	classClose := make([]bool, len(m.a.edges))
	for _, cl := range m.classes {
		n, hasClose := 0, false
		for _, i := range cl {
			if m.a.edges[i].isClose {
				hasClose = true
			} else {
				n++
			}
		}
		for _, i := range cl {
			classSize[i] = n
			classClose[i] = hasClose
		}
	}

	oldNode := func(blk *ir.Block) *ir.Block {
		id, ok := oldID[blk]
		if !ok || id < 0 || id >= len(m.split.blockNode) {
			return nil
		}
		return m.split.blockNode[id]
	}

	// Validate every split against the memo before mutating anything.
	type splitInfo struct {
		s          EdgeSplit
		ie         int       // aug index of the split edge
		fromN, toN *ir.Block // pre-edit split-graph nodes of From / To
	}
	sis := make([]splitInfo, 0, len(splits))
	for _, s := range splits {
		ie, ok := edgeIdx[s.OldEdge]
		fn, tn := oldNode(s.From), oldNode(s.To)
		if !ok || fn == nil || tn == nil || s.NewBlock == nil || s.FromEdge == nil || s.ToEdge == nil {
			return false
		}
		sis = append(sis, splitInfo{s, ie, fn, tn})
	}

	// Record each region's boundary as pre-edit aug-edge indices; -1
	// encodes the root's virtual every-exit boundary.
	type bounds struct{ a, b int }
	rb := make(map[*Region]bounds, len(t.Regions)+len(sis))
	for _, r := range t.Regions {
		ba := entryIdx
		if r.EntryEdge != nil {
			i, ok := edgeIdx[r.EntryEdge]
			if !ok {
				return false
			}
			ba = i
		}
		bb := -1
		switch {
		case r.ExitEdge != nil:
			i, ok := edgeIdx[r.ExitEdge]
			if !ok {
				return false
			}
			bb = i
		case r.ExitBlock != nil:
			i, ok := exitIdx[r.ExitBlock]
			if !ok {
				return false
			}
			bb = i
		}
		rb[r] = bounds{ba, bb}
	}

	// Mutation starts here; the memo is consumed (its graphs describe
	// the pre-edit CFG and cannot serve a second edit).
	b.memoOK = false

	// 1. Re-index every region's membership to the post-edit block IDs
	// (the member pointers in Blocks are unchanged, their IDs are not).
	for _, r := range t.Regions {
		r.in = make(map[int]bool, len(r.Blocks)+len(sis))
		for _, blk := range r.Blocks {
			r.in[blk.ID] = true
		}
	}

	// 2. A split edge that formed a singleton class yields a fresh
	// maximal region bounded by the two new halves.
	for _, si := range sis {
		if classSize[si.ie] != 1 || classClose[si.ie] {
			continue
		}
		en := m.split.edgeNode[si.ie]
		r := &Region{EntryEdge: si.s.FromEdge, ExitEdge: si.s.ToEdge, in: make(map[int]bool)}
		for _, blk := range b.f.Blocks {
			n := oldNode(blk)
			if n == nil {
				continue // an inserted block; placed in step 4
			}
			if m.dom.Dominates(en, n) && m.pdom.Dominates(en, n) {
				r.in[blk.ID] = true
				r.Blocks = append(r.Blocks, blk)
			}
		}
		rb[r] = bounds{si.ie, si.ie}
		t.Regions = append(t.Regions, r)
	}

	// 3. Swap split boundary edges: the entry half replaces the edge
	// as an entry boundary, the exit half as an exit boundary.
	for _, r := range t.Regions {
		for _, si := range sis {
			if r.EntryEdge == si.s.OldEdge {
				r.EntryEdge = si.s.FromEdge
			}
			if r.ExitEdge == si.s.OldEdge {
				r.ExitEdge = si.s.ToEdge
			}
		}
	}

	// 4. Place each inserted block. Every path to it runs through its
	// From and every path from it through its To, so boundary a
	// dominates it iff a is the split edge itself or a dominated From,
	// and boundary b postdominates it iff b is the split edge or b
	// postdominated To.
	for _, si := range sis {
		for _, r := range t.Regions {
			bd := rb[r]
			condA := bd.a == si.ie || m.dom.Dominates(m.split.edgeNode[bd.a], si.fromN)
			condB := bd.b == -1 || bd.b == si.ie || m.pdom.Dominates(m.split.edgeNode[bd.b], si.toN)
			if condA && condB {
				r.in[si.s.NewBlock.ID] = true
				r.Blocks = append(r.Blocks, si.s.NewBlock)
			}
		}
	}

	// 5. Reassemble nesting, order, and depths over the new membership.
	root, err := assemble(b.f, t.Regions)
	if err != nil {
		return false
	}
	t.Root = root
	return true
}
