package pst

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Region is a maximal SESE region: the span between the dominating and
// postdominating edges of one cycle-equivalence class.
//
// Boundary encoding:
//   - interior region: EntryEdge and ExitEdge are real CFG edges
//   - EntryEdge == nil: the region's entry is procedure entry
//   - ExitEdge == nil, ExitBlock != nil: the exit is the end of that
//     specific exit block (the augmented exit->END edge)
//   - ExitEdge == nil, ExitBlock == nil: the exit is every procedure
//     exit (root region only)
type Region struct {
	EntryEdge *ir.Edge
	ExitEdge  *ir.Edge
	ExitBlock *ir.Block

	// Blocks contains the region body in layout order, including
	// blocks of nested regions.
	Blocks []*ir.Block

	Parent   *Region
	Children []*Region
	// Depth is 0 for the root, increasing inward.
	Depth int

	in map[int]bool // block IDs
}

// IsRoot reports whether the region is the whole procedure.
func (r *Region) IsRoot() bool { return r.Parent == nil }

// ContainsBlock reports whether b lies inside the region.
func (r *Region) ContainsBlock(b *ir.Block) bool { return r.in[b.ID] }

// ContainsEdge reports whether both endpoints of e lie inside the
// region (the region's own boundary edges are NOT contained).
func (r *Region) ContainsEdge(e *ir.Edge) bool {
	return r.in[e.From.ID] && r.in[e.To.ID]
}

// EntryWeight is the dynamic execution count of the region's entry
// boundary.
func (r *Region) EntryWeight(f *ir.Func) int64 {
	if r.EntryEdge != nil {
		return r.EntryEdge.Weight
	}
	return f.EntryCount
}

// ExitWeight is the dynamic execution count of the region's exit
// boundary (summed over all procedure exits for the root).
func (r *Region) ExitWeight(f *ir.Func) int64 {
	if r.ExitEdge != nil {
		return r.ExitEdge.Weight
	}
	if r.ExitBlock != nil {
		return r.ExitBlock.ExecCount()
	}
	var n int64
	for _, b := range f.Exits() {
		n += b.ExecCount()
	}
	return n
}

// String renders the region boundaries for diagnostics.
func (r *Region) String() string {
	entry := "proc-entry"
	if r.EntryEdge != nil {
		entry = r.EntryEdge.From.Name + "->" + r.EntryEdge.To.Name
	}
	exit := "proc-exit"
	switch {
	case r.ExitEdge != nil:
		exit = r.ExitEdge.From.Name + "->" + r.ExitEdge.To.Name
	case r.ExitBlock != nil:
		exit = "end-of-" + r.ExitBlock.Name
	}
	names := make([]string, len(r.Blocks))
	for i, b := range r.Blocks {
		names[i] = b.Name
	}
	return fmt.Sprintf("region[%s .. %s]{%s}", entry, exit, strings.Join(names, " "))
}

// PST is the Program Structure Tree of maximal SESE regions.
type PST struct {
	Func    *ir.Func
	Root    *Region
	Regions []*Region // all regions including the root
}

// Mode selects which SESE regions form the tree.
type Mode int

const (
	// Maximal regions (one per cycle-equivalence class, spanning its
	// dominating to its postdominating edge) are what the paper's
	// algorithm requires: region boundaries are exactly the points
	// where execution frequency can change.
	Maximal Mode = iota
	// Canonical regions are Johnson/Pearson/Pingali's original
	// smallest regions: one per consecutive edge pair of a class
	// chain. Provided for comparison; the hierarchical algorithm
	// produces equal-cost placements over either tree because all
	// edges of one class run at the same frequency, but the canonical
	// tree is larger. See the canonical-vs-maximal ablation tests.
	Canonical
)

// Build computes the PST of f over maximal SESE regions (what the
// paper's algorithm uses). The function must pass ir.Verify and have
// at least one exit block.
func Build(f *ir.Func) (*PST, error) { return BuildMode(f, Maximal) }

// BuildMode computes the PST with the chosen region mode.
func BuildMode(f *ir.Func, mode Mode) (*PST, error) {
	if err := ir.Verify(f); err != nil {
		return nil, fmt.Errorf("pst.Build: %w", err)
	}
	if len(f.Exits()) == 0 {
		return nil, fmt.Errorf("pst.Build(%s): function has no exit block", f.Name)
	}
	return buildWith(f, mode, computeInternals(f))
}

// internals holds the expensive intermediate structures of one PST
// construction: the augmented graph, the cycle-equivalence classes,
// and the edge-split graph with its dominator and postdominator trees.
// A Builder memoizes them across calls; they stay valid for as long as
// the CFG shape (blocks and edges) is unchanged.
type internals struct {
	a       *augGraph
	sigs    []sig
	classes [][]int
	split   *splitGraph
	dom     *cfg.DomTree
	pdom    *cfg.DomTree
}

func computeInternals(f *ir.Func) *internals {
	a := buildAug(f)
	sigs := cycleEquivalence(a)
	split := buildSplit(a)
	return &internals{
		a:       a,
		sigs:    sigs,
		classes: groupClasses(sigs),
		split:   split,
		dom:     cfg.Dominators(split.g),
		pdom:    cfg.Postdominators(split.g),
	}
}

// buildWith constructs the region tree from precomputed internals.
func buildWith(f *ir.Func, mode Mode, in *internals) (*PST, error) {
	a, split, dom, pdom := in.a, in.split, in.dom, in.pdom

	closeIdx := -1
	for i, e := range a.edges {
		if e.isClose {
			closeIdx = i
		}
	}

	var regions []*Region
	for _, class := range in.classes {
		// Drop the END->START edge from the chain; it orders last.
		hasClose := false
		edges := class[:0:0]
		for _, i := range class {
			if i == closeIdx {
				hasClose = true
				continue
			}
			edges = append(edges, i)
		}
		if len(edges) < 2 && !(hasClose && len(edges) >= 1) {
			continue
		}
		// Order the class chain by dominance of the split nodes.
		sort.Slice(edges, func(x, y int) bool {
			nx, ny := split.edgeNode[edges[x]], split.edgeNode[edges[y]]
			return dom.Level(nx) < dom.Level(ny)
		})
		// Verify the chain is totally ordered (defensive: theory says
		// it always is; a hash collision would break it).
		ok := true
		for i := 0; i+1 < len(edges); i++ {
			if !dom.Dominates(split.edgeNode[edges[i]], split.edgeNode[edges[i+1]]) {
				ok = false
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("pst.BuildMode(%s): cycle-equivalence class not chain-ordered (signature collision?)", f.Name)
		}

		// makeSpan builds the region between two chain positions; a to
		// index of -1 means the virtual end (all procedure exits).
		makeSpan := func(fromIdx, toIdx int) *Region {
			first := a.edges[fromIdx]
			r := &Region{in: make(map[int]bool)}
			if !first.isEntry {
				r.EntryEdge = first.real
			}
			var xn *ir.Block
			if toIdx >= 0 {
				last := a.edges[toIdx]
				if last.real != nil {
					r.ExitEdge = last.real
				} else {
					r.ExitBlock = last.exitFrom
				}
				xn = split.edgeNode[toIdx]
			}
			// Membership: block x is in region (a,b) iff node(a)
			// dominates x and node(b) postdominates x in the edge-split
			// graph.
			en := split.edgeNode[fromIdx]
			for _, b := range f.Blocks {
				nb := split.blockNode[b.ID]
				if !dom.Dominates(en, nb) {
					continue
				}
				if xn != nil && !pdom.Dominates(xn, nb) {
					continue
				}
				r.in[b.ID] = true
				r.Blocks = append(r.Blocks, b)
			}
			return r
		}
		add := func(r *Region) {
			if len(r.Blocks) > 0 {
				regions = append(regions, r)
			}
		}

		switch mode {
		case Maximal:
			if hasClose {
				add(makeSpan(edges[0], -1))
			} else {
				add(makeSpan(edges[0], edges[len(edges)-1]))
			}
		case Canonical:
			for i := 0; i+1 < len(edges); i++ {
				add(makeSpan(edges[i], edges[i+1]))
			}
			if hasClose {
				// The pair ending at the virtual close edge, plus the
				// whole-procedure root all canonical regions nest in.
				add(makeSpan(edges[len(edges)-1], -1))
				if len(edges) > 1 {
					add(makeSpan(edges[0], -1))
				}
			}
		}
	}

	root, err := assemble(f, regions)
	if err != nil {
		return nil, err
	}
	return &PST{Func: f, Root: root, Regions: regions}, nil
}

// assemble derives the nesting structure of a region set: it sorts the
// regions deterministically, links parents and children, finds the
// root, and sets depths. Build and the edge-split patch share it so a
// patched tree is structurally identical to a rebuilt one. Regions'
// Parent/Children links are reset and recomputed from membership.
func assemble(f *ir.Func, regions []*Region) (*Region, error) {
	for _, r := range regions {
		r.Parent = nil
		r.Children = nil
		sort.Slice(r.Blocks, func(i, j int) bool { return r.Blocks[i].ID < r.Blocks[j].ID })
	}
	// Nesting: parent = smallest region strictly containing the child.
	// The comparator is a total order (distinct regions with identical
	// block sets differ in their boundaries), so the final region order
	// does not depend on the order regions were discovered in.
	sort.Slice(regions, func(i, j int) bool {
		ri, rj := regions[i], regions[j]
		if len(ri.Blocks) != len(rj.Blocks) {
			return len(ri.Blocks) < len(rj.Blocks)
		}
		if ri.Blocks[0].ID != rj.Blocks[0].ID {
			return ri.Blocks[0].ID < rj.Blocks[0].ID
		}
		ki, kj := boundaryKey(ri), boundaryKey(rj)
		for x := range ki {
			if ki[x] != kj[x] {
				return ki[x] < kj[x]
			}
		}
		return false
	})
	var root *Region
	for i, r := range regions {
		for j := i + 1; j < len(regions); j++ {
			if containsAll(regions[j], r) {
				r.Parent = regions[j]
				regions[j].Children = append(regions[j].Children, r)
				break
			}
		}
		if r.Parent == nil && len(r.Blocks) == len(f.Blocks) {
			root = r
		}
	}
	if root == nil {
		// Should not happen: the class of START->entry always covers
		// every block. Guard anyway.
		return nil, fmt.Errorf("pst.BuildMode(%s): no root region found", f.Name)
	}
	// Any parentless non-root region hangs off the root (can occur if
	// its blocks equal the whole function but it is not the aug chain;
	// containsAll with equal sets attaches it above, so this is rare).
	for _, r := range regions {
		if r != root && r.Parent == nil {
			r.Parent = root
			root.Children = append(root.Children, r)
		}
	}
	for _, r := range regions {
		sort.Slice(r.Children, func(i, j int) bool {
			return r.Children[i].Blocks[0].ID < r.Children[j].Blocks[0].ID
		})
	}
	var setDepth func(r *Region, d int)
	setDepth = func(r *Region, d int) {
		r.Depth = d
		for _, c := range r.Children {
			setDepth(c, d+1)
		}
	}
	setDepth(root, 0)
	return root, nil
}

// boundaryKey encodes a region's boundary as a sortable tuple so the
// region sort has a total order even between regions with identical
// block sets.
func boundaryKey(r *Region) [4]int {
	k := [4]int{-1, -1, -1, -1}
	if r.EntryEdge != nil {
		k[0], k[1] = r.EntryEdge.From.ID, r.EntryEdge.To.ID
	}
	switch {
	case r.ExitEdge != nil:
		k[2], k[3] = r.ExitEdge.From.ID, r.ExitEdge.To.ID
	case r.ExitBlock != nil:
		k[2] = r.ExitBlock.ID
	}
	return k
}

// containsAll reports whether outer strictly contains inner: a
// superset of blocks and strictly larger.
func containsAll(outer, inner *Region) bool {
	if len(outer.Blocks) <= len(inner.Blocks) {
		return false
	}
	for id := range inner.in {
		if !outer.in[id] {
			return false
		}
	}
	return true
}

// BottomUp returns the regions in topological order for the paper's
// traversal: every region appears after all of its children (smallest
// regions first, root last).
func (t *PST) BottomUp() []*Region {
	var out []*Region
	var walk func(r *Region)
	walk = func(r *Region) {
		for _, c := range r.Children {
			walk(c)
		}
		out = append(out, r)
	}
	walk(t.Root)
	return out
}

// SmallestContaining returns the innermost region containing block b.
func (t *PST) SmallestContaining(b *ir.Block) *Region {
	r := t.Root
	for {
		next := r
		for _, c := range r.Children {
			if c.ContainsBlock(b) {
				next = c
				break
			}
		}
		if next == r {
			return r
		}
		r = next
	}
}
