// Package pst builds the Program Structure Tree of Johnson, Pearson
// and Pingali (PLDI'94): single-entry single-exit (SESE) regions found
// through cycle equivalence of control flow edges. Unlike JPP's
// canonical (smallest) regions, this package produces the *maximal*
// SESE regions the paper's hierarchical spill code placement requires:
// one region per cycle-equivalence class, spanning from the class's
// dominating edge to its postdominating edge.
package pst

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// augGraph is the CFG augmented with virtual START and END nodes and
// the END->START edge that makes the undirected graph 2-edge-connected
// (every edge lies on a cycle), as required for cycle equivalence.
type augGraph struct {
	f *ir.Func
	// Node numbering: 0..n-1 real blocks (by ID), n = START, n+1 = END.
	n     int
	start int
	end   int
	// edges[i] describes augmented edge i.
	edges []augEdge
	adj   [][]halfEdge // undirected adjacency: adj[node] = incident edges
}

type augEdge struct {
	from, to int
	real     *ir.Edge  // nil for augmented edges
	exitFrom *ir.Block // for exit->END edges, the exit block
	isEntry  bool      // START->entry
	isClose  bool      // END->START
}

type halfEdge struct {
	edge  int
	other int
}

func buildAug(f *ir.Func) *augGraph {
	n := len(f.Blocks)
	g := &augGraph{f: f, n: n, start: n, end: n + 1}
	add := func(e augEdge) {
		idx := len(g.edges)
		g.edges = append(g.edges, e)
		_ = idx
	}
	add(augEdge{from: g.start, to: f.Entry.ID, isEntry: true})
	for _, b := range f.Blocks {
		for _, e := range b.Succs {
			add(augEdge{from: e.From.ID, to: e.To.ID, real: e})
		}
		if b.IsExit() {
			add(augEdge{from: b.ID, to: g.end, exitFrom: b})
		}
	}
	add(augEdge{from: g.end, to: g.start, isClose: true})

	g.adj = make([][]halfEdge, n+2)
	for i, e := range g.edges {
		g.adj[e.from] = append(g.adj[e.from], halfEdge{edge: i, other: e.to})
		if e.from != e.to {
			g.adj[e.to] = append(g.adj[e.to], halfEdge{edge: i, other: e.from})
		}
	}
	return g
}

// xorshift is a tiny deterministic PRNG so cycle-equivalence class
// signatures are reproducible run to run.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	if v == 0 {
		v = 0x9e3779b97f4a7c15
	}
	*x = xorshift(v)
	return v
}

// sig is a 128-bit signature of the set of fundamental cycles an edge
// belongs to. Two edges are cycle equivalent iff they belong to the
// same set of fundamental cycles of any spanning tree, so equal sigs
// identify equivalence classes (collision probability ~2^-128).
type sig struct{ a, b uint64 }

func (s *sig) xor(t sig) { s.a ^= t.a; s.b ^= t.b }

// cycleEquivalence returns, for every augmented edge index, a class
// signature such that two edges are cycle equivalent iff their
// signatures are equal.
//
// Method: build an undirected DFS spanning tree. Each non-tree edge
// (backedge) defines a fundamental cycle consisting of itself plus the
// tree path between its endpoints. A tree edge's fundamental-cycle set
// is the set of backedges whose tree path crosses it, computed with
// the standard path-XOR subtree aggregation; a backedge's set is just
// itself. Self-loops form singleton classes.
func cycleEquivalence(g *augGraph) []sig {
	nNodes := g.n + 2
	nEdges := len(g.edges)

	parent := make([]int, nNodes)     // parent node in DFS tree
	parentEdge := make([]int, nNodes) // edge index to parent
	order := make([]int, 0, nNodes)   // DFS preorder of nodes
	state := make([]int, nNodes)      // 0 new, 1 open, 2 done
	for i := range parent {
		parent[i] = -1
		parentEdge[i] = -1
	}

	isTree := make([]bool, nEdges)
	isBack := make([]bool, nEdges)
	rng := xorshift(0x5eed1234abcd9876)
	hashes := make([]sig, nEdges)
	acc := make([]sig, nNodes)
	sigs := make([]sig, nEdges)
	used := make([]bool, nEdges)

	// Iterative DFS from START over the undirected multigraph.
	type frame struct{ node, idx int }
	stack := []frame{{g.start, 0}}
	state[g.start] = 1
	order = append(order, g.start)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.idx >= len(g.adj[fr.node]) {
			state[fr.node] = 2
			stack = stack[:len(stack)-1]
			continue
		}
		he := g.adj[fr.node][fr.idx]
		fr.idx++
		if used[he.edge] {
			continue
		}
		used[he.edge] = true
		e := g.edges[he.edge]
		if e.from == e.to {
			// Self-loop: unique singleton class.
			hashes[he.edge] = sig{rng.next(), rng.next()}
			sigs[he.edge] = hashes[he.edge]
			continue
		}
		w := he.other
		if state[w] == 0 {
			isTree[he.edge] = true
			parent[w] = fr.node
			parentEdge[w] = he.edge
			state[w] = 1
			order = append(order, w)
			stack = append(stack, frame{w, 0})
		} else {
			// Backedge (to an ancestor or finished node; in undirected
			// DFS all non-tree edges connect to ancestors).
			isBack[he.edge] = true
			h := sig{rng.next(), rng.next()}
			hashes[he.edge] = h
			sigs[he.edge] = h
			acc[e.from].xor(h)
			acc[e.to].xor(h)
		}
	}

	// Subtree XOR aggregation in reverse preorder (children first).
	sub := make([]sig, nNodes)
	for i := range sub {
		sub[i] = acc[i]
	}
	for i := len(order) - 1; i >= 1; i-- {
		v := order[i]
		p := parent[v]
		// Tree edge p-v carries the subtree XOR of v.
		sigs[parentEdge[v]] = sub[v]
		sub[p].xor(sub[v])
	}

	_ = isTree
	_ = isBack
	return sigs
}

// splitGraph builds the edge-split directed graph used to order edges
// of one class by dominance and to decide region membership: every
// augmented edge e: u->v (except END->START) becomes u -> node(e) -> v.
// It is represented as a bare ir.Func so the cfg dominator code can
// run on it.
type splitGraph struct {
	g *ir.Func
	// blockNode[b.ID] is the split-graph block for real block b.
	blockNode []*ir.Block
	// edgeNode[i] is the split-graph block for augmented edge i (nil
	// for END->START).
	edgeNode []*ir.Block
	startN   *ir.Block
	endN     *ir.Block
}

func buildSplit(a *augGraph) *splitGraph {
	s := &splitGraph{g: ir.NewFunc(a.f.Name + ".split")}
	s.startN = s.g.NewBlock("START")
	s.blockNode = make([]*ir.Block, a.n)
	for _, b := range a.f.Blocks {
		s.blockNode[b.ID] = s.g.NewBlock("n." + b.Name)
	}
	s.endN = s.g.NewBlock("END")
	// END is the unique exit of the split graph; give it a ret so
	// cfg.Postdominators can find it.
	s.endN.Append(&ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
	node := func(i int) *ir.Block {
		switch i {
		case a.start:
			return s.startN
		case a.end:
			return s.endN
		default:
			return s.blockNode[i]
		}
	}
	s.edgeNode = make([]*ir.Block, len(a.edges))
	for i, e := range a.edges {
		if e.isClose {
			continue
		}
		en := s.g.NewBlock(fmt.Sprintf("e%d", i))
		s.edgeNode[i] = en
		s.g.AddEdge(node(e.from), en, ir.Jump, 0)
		s.g.AddEdge(en, node(e.to), ir.Jump, 0)
	}
	s.g.RenumberBlocks()
	return s
}

// classes groups augmented edge indices by signature, deterministic
// order (by first edge index).
func groupClasses(sigs []sig) [][]int {
	bySig := make(map[sig][]int)
	var keys []sig
	for i, s := range sigs {
		if _, ok := bySig[s]; !ok {
			keys = append(keys, s)
		}
		bySig[s] = append(bySig[s], i)
	}
	sort.Slice(keys, func(i, j int) bool { return bySig[keys[i]][0] < bySig[keys[j]][0] })
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, bySig[k])
	}
	return out
}
