package pst

import (
	"fmt"

	"repro/internal/ir"
)

// Builder builds PSTs for one function while memoizing the expensive
// internals — the augmented graph, the cycle-equivalence classes, and
// above all the edge-split graph's dominator and postdominator trees —
// behind a pointer-exact snapshot of the CFG shape. Repeated builds
// over an unchanged CFG (for example after register allocation, which
// rewrites instructions but no edges) reuse the memoized tree instead
// of recomputing the split-graph dominators; a build after a CFG
// change recomputes everything and refreshes the snapshot.
//
// A Builder additionally knows how to patch its last tree in place
// after an edge-split-only edit (Patch), consuming the memo.
//
// Builders are not safe for concurrent use; the analysis layer guards
// one per function behind its Info lock.
type Builder struct {
	f    *ir.Func
	mode Mode

	memo   *internals
	memoOK bool
	snap   snapshot

	lastTree *PST
	lastErr  error

	splitDomBuilds int
	reuses         int
}

// snapshot is a pointer-exact fingerprint of the CFG shape the memo
// was computed for. Comparing pointers (not just counts) guarantees a
// stale memo can never be served for a structurally different graph
// that happens to have the same sizes.
type snapshot struct {
	entry  *ir.Block
	blocks []*ir.Block
	ids    []int
	succs  [][]*ir.Edge
	exits  []bool
}

// NewBuilder returns a builder for f over maximal SESE regions (the
// mode the paper's algorithm uses; Patch supports only this mode).
func NewBuilder(f *ir.Func) *Builder { return &Builder{f: f, mode: Maximal} }

// SplitDomBuilds returns how many times the builder computed the
// split-graph dominator and postdominator trees (one increment covers
// the pair). The analysis layer surfaces it next to its Counts hook.
func (b *Builder) SplitDomBuilds() int { return b.splitDomBuilds }

// Reuses returns how many Build calls were answered entirely from the
// memo (unchanged CFG shape).
func (b *Builder) Reuses() int { return b.reuses }

// Build returns the PST of the builder's function, reusing the
// memoized internals — and the memoized tree — when the CFG shape is
// pointer-identical to the last full build. Region boundary weights
// are read from the live edges at query time, so a memo hit stays
// correct across profile or instruction changes.
func (b *Builder) Build() (*PST, error) {
	if b.memoOK && b.snapValid() {
		b.reuses++
		return b.lastTree, b.lastErr
	}
	b.memoOK = false
	if err := ir.Verify(b.f); err != nil {
		return nil, fmt.Errorf("pst.Build: %w", err)
	}
	if len(b.f.Exits()) == 0 {
		return nil, fmt.Errorf("pst.Build(%s): function has no exit block", b.f.Name)
	}
	b.memo = computeInternals(b.f)
	b.splitDomBuilds++
	b.takeSnap()
	b.lastTree, b.lastErr = buildWith(b.f, b.mode, b.memo)
	b.memoOK = true
	return b.lastTree, b.lastErr
}

func (b *Builder) takeSnap() {
	f := b.f
	s := snapshot{
		entry:  f.Entry,
		blocks: append([]*ir.Block(nil), f.Blocks...),
		ids:    make([]int, len(f.Blocks)),
		succs:  make([][]*ir.Edge, len(f.Blocks)),
		exits:  make([]bool, len(f.Blocks)),
	}
	for i, blk := range f.Blocks {
		s.ids[i] = blk.ID
		s.succs[i] = append([]*ir.Edge(nil), blk.Succs...)
		s.exits[i] = blk.IsExit()
	}
	b.snap = s
}

func (b *Builder) snapValid() bool {
	f := b.f
	s := &b.snap
	if f.Entry != s.entry || len(f.Blocks) != len(s.blocks) {
		return false
	}
	for i, blk := range f.Blocks {
		if blk != s.blocks[i] || blk.ID != s.ids[i] || blk.IsExit() != s.exits[i] {
			return false
		}
		if len(blk.Succs) != len(s.succs[i]) {
			return false
		}
		for j, e := range blk.Succs {
			if e != s.succs[i][j] {
				return false
			}
		}
	}
	return true
}
