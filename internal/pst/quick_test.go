package pst

import (
	"testing"
	"testing/quick"

	"repro/internal/cfgtest"
	"repro/internal/ir"
)

// TestQuickPSTWellFormed: for random structured CFGs, the PST exists
// and satisfies its structural invariants.
func TestQuickPSTWellFormed(t *testing.T) {
	check := func(seed uint64) bool {
		f := cfgtest.RandomStructured(seed, 3)
		if err := ir.Verify(f); err != nil {
			t.Logf("seed %x: generator produced invalid CFG: %v", seed, err)
			return false
		}
		p, err := Build(f)
		if err != nil {
			t.Logf("seed %x: %v", seed, err)
			return false
		}
		return pstInvariants(t, f, p, seed)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCanonicalWellFormed: same invariants over canonical trees.
func TestQuickCanonicalWellFormed(t *testing.T) {
	check := func(seed uint64) bool {
		f := cfgtest.RandomStructured(seed, 3)
		p, err := BuildMode(f, Canonical)
		if err != nil {
			t.Logf("seed %x: %v", seed, err)
			return false
		}
		return pstInvariants(t, f, p, seed)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func pstInvariants(t *testing.T, f *ir.Func, p *PST, seed uint64) bool {
	t.Helper()
	ok := true
	fail := func(format string, args ...any) {
		t.Logf("seed %x: "+format, append([]any{seed}, args...)...)
		ok = false
	}
	if p.Root == nil || len(p.Root.Blocks) != len(f.Blocks) {
		fail("root missing or incomplete")
		return false
	}
	for _, r := range p.Regions {
		if r == p.Root {
			continue
		}
		if r.Parent == nil {
			fail("region %v unparented", r)
			continue
		}
		// Child blocks inside parent.
		for _, b := range r.Blocks {
			if !r.Parent.ContainsBlock(b) {
				fail("parent of %v misses %s", r, b.Name)
			}
		}
		// Boundary edges cross the boundary.
		if r.EntryEdge != nil &&
			(r.ContainsBlock(r.EntryEdge.From) || !r.ContainsBlock(r.EntryEdge.To)) {
			fail("region %v entry edge does not cross", r)
		}
		if r.ExitEdge != nil &&
			(!r.ContainsBlock(r.ExitEdge.From) || r.ContainsBlock(r.ExitEdge.To)) {
			fail("region %v exit edge does not cross", r)
		}
		// SESE frequency conservation.
		if r.EntryEdge != nil && r.ExitEdge != nil &&
			r.EntryWeight(f) != r.ExitWeight(f) {
			fail("region %v entry %d != exit %d", r, r.EntryWeight(f), r.ExitWeight(f))
		}
		// Single entry: no edge from outside other than the entry edge.
		for _, b := range r.Blocks {
			for _, e := range b.Preds {
				if !r.ContainsBlock(e.From) && e != r.EntryEdge && r.EntryEdge != nil {
					fail("region %v has second entering edge %v", r, e)
				}
			}
		}
	}
	// Bottom-up order: children strictly before parents.
	pos := map[*Region]int{}
	for i, r := range p.BottomUp() {
		pos[r] = i
	}
	for _, r := range p.Regions {
		if r.Parent != nil && pos[r] >= pos[r.Parent] {
			fail("bottom-up order violated at %v", r)
		}
	}
	return ok
}

// TestQuickSmallestContaining: the innermost region relation is
// consistent with containment for random CFGs.
func TestQuickSmallestContaining(t *testing.T) {
	check := func(seed uint64) bool {
		f := cfgtest.RandomStructured(seed, 2)
		p, err := Build(f)
		if err != nil {
			return false
		}
		for _, b := range f.Blocks {
			r := p.SmallestContaining(b)
			if !r.ContainsBlock(b) {
				return false
			}
			// No child of r contains b.
			for _, c := range r.Children {
				if c.ContainsBlock(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
