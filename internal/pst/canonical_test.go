package pst

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/workload"
)

func TestCanonicalStraightLine(t *testing.T) {
	// A -> B -> C: the class chain is START->A, A->B, B->C, C->END,
	// close. Canonical mode yields a region per consecutive pair plus
	// the root; maximal collapses everything into the root.
	f := cfgtest.MustBuild("line",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 5), cfgtest.E("B", "C", 5)})

	max, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	can, err := BuildMode(f, Canonical)
	if err != nil {
		t.Fatal(err)
	}
	if len(max.Regions) != 1 {
		t.Errorf("maximal regions = %d, want 1", len(max.Regions))
	}
	if len(can.Regions) <= len(max.Regions) {
		t.Errorf("canonical should have more regions: %d vs %d", len(can.Regions), len(max.Regions))
	}
	// Canonical pairs: (START->A, A->B) = {A}, (A->B, B->C) = {B},
	// (B->C, C->END) = {C}, (C->END, close) = {} dropped or {C}...,
	// plus the root. Expect the single-block regions to exist.
	found := map[string]bool{}
	for _, r := range can.Regions {
		if len(r.Blocks) == 1 {
			found[r.Blocks[0].Name] = true
		}
	}
	for _, n := range []string{"A", "B", "C"} {
		if !found[n] {
			t.Errorf("canonical mode missing single-block region {%s}", n)
		}
	}
	if can.Root == nil || len(can.Root.Blocks) != 3 {
		t.Error("canonical mode must still have a whole-procedure root")
	}
}

func TestCanonicalFigure2Superset(t *testing.T) {
	fig := workload.NewFigure2()
	max, err := Build(fig.Func)
	if err != nil {
		t.Fatal(err)
	}
	can, err := BuildMode(fig.Func, Canonical)
	if err != nil {
		t.Fatal(err)
	}
	if len(can.Regions) < len(max.Regions) {
		t.Errorf("canonical %d regions < maximal %d", len(can.Regions), len(max.Regions))
	}
	// Every maximal region's block set appears among canonical regions
	// or is recoverable as a union; at minimum the nested structure
	// stays well formed.
	checkTree(t, can)
	checkTree(t, max)
}

func checkTree(t *testing.T, p *PST) {
	t.Helper()
	for _, r := range p.Regions {
		if r == p.Root {
			continue
		}
		if r.Parent == nil {
			t.Errorf("region %v has no parent", r)
			continue
		}
		for _, b := range r.Blocks {
			if !r.Parent.ContainsBlock(b) {
				t.Errorf("parent of %v does not contain %s", r, b.Name)
			}
		}
	}
	order := p.BottomUp()
	if len(order) != len(p.Regions) || order[len(order)-1] != p.Root {
		t.Error("BottomUp malformed")
	}
}
