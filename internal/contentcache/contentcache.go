// Package contentcache is the bounded, content-addressed result store
// behind the placement service: a concurrency-safe LRU keyed on
// arbitrary comparable keys (in the service, content hashes of
// canonical IR plus the machine preset and strategy) with a dual
// entry-count and byte-budget eviction policy.
//
// The same eviction machinery bounds the lifetime of the shared
// analysis.Cache in long-running processes: an eviction callback lets
// the owner drop the evicted key's derived state (the server drops the
// evicted function's analysis handle), which closes the
// grows-monotonically leak the batch tools never hit.
package contentcache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Cache is a concurrency-safe LRU with an entry-count and a byte
// budget. A zero or negative budget disables that bound (but at least
// one bound should be set — an unbounded content cache is the leak
// this package exists to prevent).
type Cache[K comparable, V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	m          map[K]*list.Element
	hits       int64
	misses     int64
	evictions  int64
	onEvict    func(K, V)
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// New returns a cache bounded to maxEntries entries and maxBytes total
// entry size (either may be <= 0 for unbounded). onEvict, if non-nil,
// runs outside the cache lock for every evicted entry — eviction
// policy hook for derived per-key state (e.g. analysis.Cache.Drop).
func New[K comparable, V any](maxEntries int, maxBytes int64, onEvict func(K, V)) *Cache[K, V] {
	return &Cache[K, V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		m:          make(map[K]*list.Element),
		onEvict:    onEvict,
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores v under k with the given accounted size (clamped to a
// minimum of 1 so empty values still count against the entry budget),
// evicting least-recently-used entries until both budgets hold. An
// entry bigger than the whole byte budget is not stored at all.
// Putting an existing key updates it in place.
func (c *Cache[K, V]) Put(k K, v V, size int64) {
	if size < 1 {
		size = 1
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	var evicted []*entry[K, V]
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		e := el.Value.(*entry[K, V])
		c.bytes += size - e.size
		e.val, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.m[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v, size: size})
		c.bytes += size
	}
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry[K, V])
		c.ll.Remove(back)
		delete(c.m, e.key)
		c.bytes -= e.size
		c.evictions++
		evicted = append(evicted, e)
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, e := range evicted {
			c.onEvict(e.key, e.val)
		}
	}
}

// Len returns the number of live entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}
