package contentcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEntryBudget(t *testing.T) {
	var evicted []string
	c := New[string, int](2, 0, func(k string, v int) { evicted = append(evicted, k) })
	c.Put("a", 1, 1)
	c.Put("b", 2, 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// a is now most recently used, so inserting c evicts b.
	c.Put("c", 3, 1)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Error("a should have survived (recently used)")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Errorf("evicted = %v, want [b]", evicted)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", st)
	}
}

func TestByteBudget(t *testing.T) {
	c := New[int, string](0, 100, nil)
	for i := 0; i < 10; i++ {
		c.Put(i, "v", 30)
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Errorf("bytes = %d, exceeds budget 100", st.Bytes)
	}
	if st.Entries != 3 {
		t.Errorf("entries = %d, want 3 (3*30 <= 100 < 4*30)", st.Entries)
	}
	// Oldest keys are gone, newest survive.
	if _, ok := c.Get(0); ok {
		t.Error("key 0 should have been evicted")
	}
	if _, ok := c.Get(9); !ok {
		t.Error("key 9 should be cached")
	}

	// An entry over the whole budget is refused, not stored.
	c.Put(99, "huge", 1000)
	if _, ok := c.Get(99); ok {
		t.Error("over-budget entry must not be stored")
	}
}

func TestUpdateInPlace(t *testing.T) {
	c := New[string, int](4, 50, nil)
	c.Put("k", 1, 10)
	c.Put("k", 2, 40)
	if v, _ := c.Get("k"); v != 2 {
		t.Errorf("updated value = %d, want 2", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 40 {
		t.Errorf("stats after update = %+v, want 1 entry / 40 bytes", st)
	}
	// Zero-size entries still count at least 1 byte.
	c.Put("z", 3, 0)
	if st := c.Stats(); st.Bytes != 41 {
		t.Errorf("bytes with clamped size = %d, want 41", st.Bytes)
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New[string, int](8, 0, nil)
	c.Get("missing")
	c.Put("a", 1, 1)
	c.Get("a")
	c.Get("a")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestConcurrent(t *testing.T) {
	c := New[int, int](64, 0, func(int, int) {})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (w*31 + i) % 100
				c.Put(k, i, int64(i%7)+1)
				c.Get(k)
				c.Get(i % 100)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("len = %d, exceeds entry budget 64", c.Len())
	}
	// Accounted bytes must equal the sum over live entries; drain by
	// looking at stats consistency only (no iterator by design).
	if st := c.Stats(); st.Bytes < int64(st.Entries) {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

func TestEvictionOrderStress(t *testing.T) {
	var order []string
	c := New[string, struct{}](3, 0, func(k string, _ struct{}) { order = append(order, k) })
	for i := 0; i < 6; i++ {
		c.Put(fmt.Sprintf("k%d", i), struct{}{}, 1)
	}
	want := []string{"k0", "k1", "k2"}
	if len(order) != 3 {
		t.Fatalf("evictions = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("evictions = %v, want %v (oldest first)", order, want)
		}
	}
}
