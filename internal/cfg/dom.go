// Package cfg provides control flow graph analyses over ir.Func:
// dominators, postdominators, depth-first orders, natural loops, and
// reducibility — the structural facts consumed by the PST builder,
// the register allocator, and spill code placement.
package cfg

import (
	"repro/internal/ir"
)

// DomTree holds an (immediate-)dominator tree computed by the
// iterative Cooper-Harvey-Kennedy algorithm. It serves for both
// dominance (over the forward CFG) and postdominance (over the
// reverse CFG with a virtual exit).
type DomTree struct {
	// IDom[b.ID] is the immediate dominator of b, or nil for the root
	// and for nodes unreachable in the direction analyzed.
	IDom []*ir.Block
	// Children[b.ID] lists blocks immediately dominated by b.
	Children [][]*ir.Block
	root     *ir.Block
	// level[b.ID] is the depth of b in the dominator tree.
	level []int
	post  bool // true if this is a postdominator tree
}

// Dominators computes the dominator tree of f rooted at the entry.
func Dominators(f *ir.Func) *DomTree {
	order := ReversePostorder(f)
	return buildDomTree(f, f.Entry, order, false)
}

// Postdominators computes the postdominator tree of f. Functions with
// multiple exit blocks are handled by treating every exit as having an
// edge to a virtual exit; the virtual exit is represented by a nil
// immediate postdominator on the exits themselves (each exit is a root
// of its own subtree under the virtual exit). Blocks from which no
// exit is reachable (infinite loops) get nil as well.
func Postdominators(f *ir.Func) *DomTree {
	exits := f.Exits()
	if len(exits) == 1 {
		order := reversePostorderFrom(f, exits[0], true)
		return buildDomTreeDir(f, exits[0], order, true)
	}
	// Multiple or zero exits: compute with a virtual root. We run the
	// CHK iteration treating all exits as roots (idom fixed to nil).
	return buildMultiRootPostdom(f, exits)
}

// ReversePostorder returns the blocks of f in reverse postorder of a
// DFS from the entry over forward edges.
func ReversePostorder(f *ir.Func) []*ir.Block {
	return reversePostorderFrom(f, f.Entry, false)
}

// Postorder returns the blocks in postorder of a DFS from the entry.
func Postorder(f *ir.Func) []*ir.Block {
	rpo := ReversePostorder(f)
	out := make([]*ir.Block, len(rpo))
	for i, b := range rpo {
		out[len(rpo)-1-i] = b
	}
	return out
}

func reversePostorderFrom(f *ir.Func, root *ir.Block, reverse bool) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.ID] = true
		if reverse {
			for _, e := range b.Preds {
				if !seen[e.From.ID] {
					dfs(e.From)
				}
			}
		} else {
			for _, e := range b.Succs {
				if !seen[e.To.ID] {
					dfs(e.To)
				}
			}
		}
		post = append(post, b)
	}
	dfs(root)
	// Reverse in place.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

func buildDomTree(f *ir.Func, root *ir.Block, order []*ir.Block, post bool) *DomTree {
	return buildDomTreeDir(f, root, order, post)
}

// buildDomTreeDir runs the Cooper-Harvey-Kennedy iterative dominance
// algorithm over the given traversal order. If post is true, edges are
// walked in reverse (predecessors become successors).
func buildDomTreeDir(f *ir.Func, root *ir.Block, order []*ir.Block, post bool) *DomTree {
	n := len(f.Blocks)
	t := &DomTree{
		IDom:     make([]*ir.Block, n),
		Children: make([][]*ir.Block, n),
		root:     root,
		level:    make([]int, n),
		post:     post,
	}
	// rpoNum[b.ID] = position in order; lower = closer to root.
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b.ID] = i
	}
	t.IDom[root.ID] = root // temporarily self, per CHK
	intersect := func(b1, b2 *ir.Block) *ir.Block {
		for b1 != b2 {
			for rpoNum[b1.ID] > rpoNum[b2.ID] {
				b1 = t.IDom[b1.ID]
			}
			for rpoNum[b2.ID] > rpoNum[b1.ID] {
				b2 = t.IDom[b2.ID]
			}
		}
		return b1
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == root {
				continue
			}
			var newIDom *ir.Block
			preds := predsDir(b, post)
			for _, p := range preds {
				if rpoNum[p.ID] < 0 || t.IDom[p.ID] == nil {
					continue // unreachable or unprocessed
				}
				if newIDom == nil {
					newIDom = p
				} else {
					newIDom = intersect(p, newIDom)
				}
			}
			if newIDom != nil && t.IDom[b.ID] != newIDom {
				t.IDom[b.ID] = newIDom
				changed = true
			}
		}
	}
	t.IDom[root.ID] = nil
	t.finish(f)
	return t
}

// buildMultiRootPostdom handles postdominance with several (or zero)
// exit blocks by making each exit a root.
func buildMultiRootPostdom(f *ir.Func, exits []*ir.Block) *DomTree {
	n := len(f.Blocks)
	t := &DomTree{
		IDom:     make([]*ir.Block, n),
		Children: make([][]*ir.Block, n),
		level:    make([]int, n),
		post:     true,
	}
	if len(exits) == 0 {
		t.finish(f)
		return t
	}
	// Build a combined reverse-DFS order from all exits.
	seen := make([]bool, n)
	var postOrd []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.ID] = true
		for _, e := range b.Preds {
			if !seen[e.From.ID] {
				dfs(e.From)
			}
		}
		postOrd = append(postOrd, b)
	}
	for _, x := range exits {
		if !seen[x.ID] {
			dfs(x)
		}
	}
	order := make([]*ir.Block, len(postOrd))
	for i, b := range postOrd {
		order[len(postOrd)-1-i] = b
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b.ID] = i
	}
	isExit := make([]bool, n)
	for _, x := range exits {
		isExit[x.ID] = true
		t.IDom[x.ID] = x
	}
	intersect := func(b1, b2 *ir.Block) *ir.Block {
		for b1 != b2 {
			for rpoNum[b1.ID] > rpoNum[b2.ID] {
				nxt := t.IDom[b1.ID]
				if nxt == b1 {
					return nil // reached a root
				}
				b1 = nxt
			}
			for rpoNum[b2.ID] > rpoNum[b1.ID] {
				nxt := t.IDom[b2.ID]
				if nxt == b2 {
					return nil
				}
				b2 = nxt
			}
		}
		return b1
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if isExit[b.ID] {
				continue
			}
			var newIDom *ir.Block
			merged := false
			for _, e := range b.Succs {
				s := e.To
				if rpoNum[s.ID] < 0 || t.IDom[s.ID] == nil {
					continue
				}
				if newIDom == nil {
					newIDom = s
					continue
				}
				m := intersect(s, newIDom)
				if m == nil {
					// Successors postdominated by different exits:
					// only the virtual exit postdominates b.
					merged = true
					break
				}
				newIDom = m
			}
			if merged {
				if t.IDom[b.ID] != b {
					t.IDom[b.ID] = b // self marks "virtual exit is idom"
					changed = true
				}
				continue
			}
			if newIDom != nil && t.IDom[b.ID] != newIDom {
				t.IDom[b.ID] = newIDom
				changed = true
			}
		}
	}
	// Normalize: self-idom means immediate postdominator is the
	// virtual exit, which we encode as nil.
	for i := range t.IDom {
		if t.IDom[i] == f.Blocks[i] {
			t.IDom[i] = nil
		}
	}
	t.finish(f)
	return t
}

func predsDir(b *ir.Block, post bool) []*ir.Block {
	var out []*ir.Block
	if post {
		for _, e := range b.Succs {
			out = append(out, e.To)
		}
	} else {
		for _, e := range b.Preds {
			out = append(out, e.From)
		}
	}
	return out
}

// finish populates Children and level from IDom.
func (t *DomTree) finish(f *ir.Func) {
	for _, b := range f.Blocks {
		if d := t.IDom[b.ID]; d != nil {
			t.Children[d.ID] = append(t.Children[d.ID], b)
		}
	}
	// Levels via BFS from roots (blocks with nil idom).
	var queue []*ir.Block
	for _, b := range f.Blocks {
		if t.IDom[b.ID] == nil {
			t.level[b.ID] = 0
			queue = append(queue, b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, c := range t.Children[b.ID] {
			t.level[c.ID] = t.level[b.ID] + 1
			queue = append(queue, c)
		}
	}
}

// Dominates reports whether a dominates b (reflexively). For a
// postdominator tree this means "a postdominates b". Blocks whose
// chains terminate at different roots are unrelated.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = t.IDom[b.ID]
	}
	return false
}

// StrictlyDominates reports a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// Level returns b's depth in the tree (0 for roots).
func (t *DomTree) Level(b *ir.Block) int { return t.level[b.ID] }
