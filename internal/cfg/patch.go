package cfg

import (
	"repro/internal/ir"
)

// EdgeSplit describes one CFG edge split for analysis patching: the
// edge From->To was replaced by From->NewBlock->To, and NewBlock has
// no other predecessors or successors. Both From and To predate the
// edit; NewBlock is new.
type EdgeSplit struct {
	From, To, NewBlock *ir.Block
}

// PatchEdgeSplits updates a memoized dominator tree in place after the
// given edge splits (plus a block renumbering described by oldID, the
// pre-edit ID of every pre-existing block). It only supports forward
// dominator trees; reports false — leaving the tree unusable — when it
// cannot patch, in which case the caller must rebuild.
//
// Splitting an edge never changes dominance among pre-existing blocks
// except possibly at To, so the patch is:
//
//   - idom(NewBlock) = From (its only predecessor);
//   - idom(To) becomes NewBlock iff To is not the entry and every
//     other predecessor of To was dominated by To before the edit
//     (then every path to To runs through the split edge);
//   - every other immediate dominator is unchanged.
func (t *DomTree) PatchEdgeSplits(f *ir.Func, oldID map[*ir.Block]int, splits []EdgeSplit) bool {
	if t.post || t.root == nil {
		return false
	}
	n := len(f.Blocks)
	newFrom := make(map[*ir.Block]*ir.Block, len(splits))
	for _, s := range splits {
		newFrom[s.NewBlock] = s.From
	}

	// Re-index the immediate dominators from old IDs to new IDs. The
	// values are block pointers, so the pre-edit chains stay walkable.
	idom := make([]*ir.Block, n)
	for _, b := range f.Blocks {
		if _, isNew := newFrom[b]; isNew {
			continue
		}
		id, ok := oldID[b]
		if !ok || id < 0 || id >= len(t.IDom) {
			return false
		}
		idom[b.ID] = t.IDom[id]
	}

	// dominatesOld answers "did a dominate b before the edit" by
	// walking the carried-over chains. A new block stands exactly where
	// its From stood (every path to it runs through From).
	dominatesOld := func(a, b *ir.Block) bool {
		if from, ok := newFrom[b]; ok {
			b = from
		}
		for b != nil {
			if a == b {
				return true
			}
			b = idom[b.ID]
		}
		return false
	}

	// Decide the idom(To) promotions against the pre-edit relation
	// before mutating anything.
	var promote []EdgeSplit
	for _, s := range splits {
		if s.To == t.root {
			continue
		}
		all := true
		for _, pe := range s.To.Preds {
			p := pe.From
			if p == s.NewBlock {
				continue
			}
			if !dominatesOld(s.To, p) {
				all = false
				break
			}
		}
		if all {
			promote = append(promote, s)
		}
	}
	for _, s := range splits {
		idom[s.NewBlock.ID] = s.From
	}
	for _, s := range promote {
		idom[s.To.ID] = s.NewBlock
	}

	t.IDom = idom
	t.Children = make([][]*ir.Block, n)
	t.level = make([]int, n)
	t.finish(f)
	return true
}

// PatchEdgeSplits updates a memoized loop forest in place after the
// given edge splits plus renumbering (see DomTree.PatchEdgeSplits).
// Splitting an edge neither creates nor destroys natural loops and
// never changes the membership of pre-existing blocks; the inserted
// block joins loop L exactly when its successor To does as a non-header
// (the block sits on a path into To) or when To heads L and From lies
// in L (the split edge was the back edge, so the new block is now the
// back-edge source). Reports false when it cannot patch.
func (lf *LoopForest) PatchEdgeSplits(f *ir.Func, oldID map[*ir.Block]int, splits []EdgeSplit) bool {
	isNew := make(map[*ir.Block]bool, len(splits))
	for _, s := range splits {
		isNew[s.NewBlock] = true
	}
	for _, l := range lf.Loops {
		old := l.in
		l.in = make(map[int]bool, len(old)+len(splits))
		for _, b := range f.Blocks {
			if isNew[b] {
				continue
			}
			id, ok := oldID[b]
			if !ok {
				return false
			}
			if old[id] {
				l.in[b.ID] = true
			}
		}
	}
	for _, s := range splits {
		for _, l := range lf.Loops {
			if (l.in[s.To.ID] && s.To != l.Header) || (s.To == l.Header && l.in[s.From.ID]) {
				l.in[s.NewBlock.ID] = true
			}
		}
	}
	lf.assemble(f)
	return true
}
