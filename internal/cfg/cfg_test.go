package cfg

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/ir"
)

// diamond: A -> B,C -> D
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	return cfgtest.MustBuild("diamond",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 30), cfgtest.E("A", "C", 70),
			cfgtest.E("B", "D", 30), cfgtest.E("C", "D", 70),
		})
}

// loopFn: A -> B; B -> B (latch), B -> C
func loopFn(t *testing.T) *ir.Func {
	t.Helper()
	return cfgtest.MustBuild("loop",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 10),
			cfgtest.E("B", "B", 90), cfgtest.E("B", "C", 10),
		})
}

// nested: A -> H1; H1 -> H2, X; H2 -> B2; B2 -> H2, H1; X ret
func nested(t *testing.T) *ir.Func {
	t.Helper()
	return cfgtest.MustBuild("nested",
		[]string{"A", "H1", "H2", "B2", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "H1", 1),
			cfgtest.E("H1", "H2", 10), cfgtest.E("H1", "X", 1),
			cfgtest.E("H2", "B2", 100),
			cfgtest.E("B2", "H2", 90), cfgtest.E("B2", "H1", 10),
		})
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	dom := Dominators(f)
	get := f.BlockByName
	if dom.IDom[get("A").ID] != nil {
		t.Error("entry must have nil idom")
	}
	for _, n := range []string{"B", "C", "D"} {
		if dom.IDom[get(n).ID] != get("A") {
			t.Errorf("idom(%s) = %v, want A", n, dom.IDom[get(n).ID])
		}
	}
	if !dom.Dominates(get("A"), get("D")) {
		t.Error("A should dominate D")
	}
	if dom.Dominates(get("B"), get("D")) {
		t.Error("B should not dominate D")
	}
	if !dom.Dominates(get("B"), get("B")) {
		t.Error("dominance is reflexive")
	}
	if dom.StrictlyDominates(get("B"), get("B")) {
		t.Error("strict dominance is irreflexive")
	}
	if dom.Level(get("A")) != 0 || dom.Level(get("D")) != 1 {
		t.Errorf("levels: A=%d D=%d", dom.Level(get("A")), dom.Level(get("D")))
	}
}

func TestPostdominatorsDiamond(t *testing.T) {
	f := diamond(t)
	pdom := Postdominators(f)
	get := f.BlockByName
	for _, n := range []string{"A", "B", "C"} {
		if pdom.IDom[get(n).ID] != get("D") {
			t.Errorf("ipdom(%s) = %v, want D", n, pdom.IDom[get(n).ID])
		}
	}
	if !pdom.Dominates(get("D"), get("A")) {
		t.Error("D should postdominate A")
	}
	if pdom.Dominates(get("B"), get("A")) {
		t.Error("B should not postdominate A")
	}
}

func TestPostdominatorsMultiExit(t *testing.T) {
	// A -> B (ret), A -> C (ret): nothing postdominates A except A.
	f := cfgtest.MustBuild("multiexit",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 1), cfgtest.E("A", "C", 1)})
	pdom := Postdominators(f)
	get := f.BlockByName
	if pdom.IDom[get("A").ID] != nil {
		t.Errorf("ipdom(A) = %v, want virtual exit (nil)", pdom.IDom[get("A").ID])
	}
	if pdom.IDom[get("B").ID] != nil || pdom.IDom[get("C").ID] != nil {
		t.Error("exits should be roots under the virtual exit")
	}
	if pdom.Dominates(get("B"), get("A")) {
		t.Error("B should not postdominate A (C path escapes)")
	}
}

func TestPostdomChainMultiExit(t *testing.T) {
	// A -> B -> C(ret); B -> D(ret). B postdominates A.
	f := cfgtest.MustBuild("chain",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 5),
			cfgtest.E("B", "C", 2), cfgtest.E("B", "D", 3),
		})
	pdom := Postdominators(f)
	get := f.BlockByName
	if pdom.IDom[get("A").ID] != get("B") {
		t.Errorf("ipdom(A) = %v, want B", pdom.IDom[get("A").ID])
	}
	if !pdom.Dominates(get("B"), get("A")) {
		t.Error("B should postdominate A")
	}
}

func TestOrders(t *testing.T) {
	f := diamond(t)
	rpo := ReversePostorder(f)
	if len(rpo) != 4 || rpo[0] != f.Entry {
		t.Fatalf("rpo = %v", rpo)
	}
	pos := make(map[*ir.Block]int)
	for i, b := range rpo {
		pos[b] = i
	}
	// In RPO every forward (non-back) edge goes left to right.
	get := f.BlockByName
	if !(pos[get("A")] < pos[get("B")] && pos[get("A")] < pos[get("C")] && pos[get("B")] < pos[get("D")]) {
		t.Errorf("rpo order wrong: %v", pos)
	}
	po := Postorder(f)
	if po[len(po)-1] != f.Entry {
		t.Error("postorder should end at entry")
	}
}

func TestFindLoopsSimple(t *testing.T) {
	f := loopFn(t)
	dom := Dominators(f)
	lf := FindLoops(f, dom)
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(lf.Loops))
	}
	l := lf.Loops[0]
	if l.Header != f.BlockByName("B") {
		t.Errorf("header = %v", l.Header)
	}
	if got := cfgtest.Names(l.Blocks); got != "B" {
		t.Errorf("body = %q, want B", got)
	}
	if lf.DepthOf[f.BlockByName("B").ID] != 1 {
		t.Error("B depth should be 1")
	}
	if lf.DepthOf[f.BlockByName("A").ID] != 0 {
		t.Error("A depth should be 0")
	}
	if lf.InnermostOf[f.BlockByName("B").ID] != l {
		t.Error("InnermostOf(B) wrong")
	}
}

func TestFindLoopsNested(t *testing.T) {
	f := nested(t)
	dom := Dominators(f)
	lf := FindLoops(f, dom)
	if len(lf.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(lf.Loops))
	}
	var outer, inner *Loop
	for _, l := range lf.Loops {
		switch l.Header.Name {
		case "H1":
			outer = l
		case "H2":
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing expected loop headers")
	}
	if inner.Parent != outer {
		t.Errorf("inner.Parent = %v, want outer", inner.Parent)
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths: outer=%d inner=%d", outer.Depth, inner.Depth)
	}
	if got := cfgtest.Names(inner.Blocks); got != "B2 H2" {
		t.Errorf("inner body = %q, want 'B2 H2'", got)
	}
	if got := cfgtest.Names(outer.Blocks); got != "B2 H1 H2" {
		t.Errorf("outer body = %q, want 'B2 H1 H2'", got)
	}
	if lf.DepthOf[f.BlockByName("B2").ID] != 2 {
		t.Error("B2 depth should be 2")
	}
}

func TestReducibility(t *testing.T) {
	f := nested(t)
	dom := Dominators(f)
	if !IsReducible(f, dom) {
		t.Error("nested loops should be reducible")
	}
	// Irreducible: A -> B, A -> C, B -> C, C -> B, B -> X.
	g := cfgtest.MustBuild("irr",
		[]string{"A", "B", "C", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 1), cfgtest.E("A", "C", 1),
			cfgtest.E("B", "C", 1), cfgtest.E("C", "B", 1),
			cfgtest.E("B", "X", 1),
		})
	gdom := Dominators(g)
	if IsReducible(g, gdom) {
		t.Error("two-entry cycle should be irreducible")
	}
}

func TestLoopDoesNotLeakOutside(t *testing.T) {
	f := nested(t)
	dom := Dominators(f)
	lf := FindLoops(f, dom)
	for _, l := range lf.Loops {
		if l.Contains(f.BlockByName("X")) || l.Contains(f.BlockByName("A")) {
			t.Errorf("loop %v contains non-loop block", l.Header)
		}
	}
}
