package cfg

import (
	"sort"

	"repro/internal/ir"
)

// Loop is a natural loop: a back edge target (header) plus every block
// that can reach the back edge source without passing through the
// header. Loops sharing a header are merged.
type Loop struct {
	Header *ir.Block
	// Blocks contains the loop body including the header, sorted by ID.
	Blocks []*ir.Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Depth is 1 for outermost loops, increasing inward.
	Depth int
	in    map[int]bool
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *ir.Block) bool { return l.in[b.ID] }

// LoopForest holds all natural loops of a function plus a per-block
// nesting depth (0 = not in any loop).
type LoopForest struct {
	Loops []*Loop
	// DepthOf[b.ID] is the loop nesting depth of b.
	DepthOf []int
	// InnermostOf[b.ID] is the innermost loop containing b, or nil.
	InnermostOf []*Loop
}

// FindLoops detects natural loops using the dominator tree: an edge
// t->h is a back edge iff h dominates t. Irreducible cycles (whose
// entry does not dominate the cycle) are not reported as loops; this
// matches the classic natural-loop treatment in the compilers
// literature the paper builds on.
func FindLoops(f *ir.Func, dom *DomTree) *LoopForest {
	byHeader := make(map[*ir.Block]*Loop)
	for _, b := range f.Blocks {
		for _, e := range b.Succs {
			h := e.To
			if !dom.Dominates(h, b) {
				continue
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, in: map[int]bool{h.ID: true}}
				byHeader[h] = l
			}
			// Walk predecessors backward from the back edge source.
			var stack []*ir.Block
			if !l.in[b.ID] {
				l.in[b.ID] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, pe := range x.Preds {
					p := pe.From
					if !l.in[p.ID] {
						l.in[p.ID] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}

	lf := &LoopForest{}
	for _, l := range byHeader {
		lf.Loops = append(lf.Loops, l)
	}
	lf.assemble(f)
	return lf
}

// assemble (re)derives every ordered and nested field of the forest
// from the loops' membership maps: per-loop block lists, the
// deterministic loop order, the nesting, the depths, and the per-block
// arrays. FindLoops and the edge-split patch share it so a patched
// forest is structurally identical to a rebuilt one.
func (lf *LoopForest) assemble(f *ir.Func) {
	lf.DepthOf = make([]int, len(f.Blocks))
	lf.InnermostOf = make([]*Loop, len(f.Blocks))
	for _, l := range lf.Loops {
		l.Blocks = l.Blocks[:0]
		for id := range l.in {
			l.Blocks = append(l.Blocks, f.Blocks[id])
		}
		sort.Slice(l.Blocks, func(i, j int) bool { return l.Blocks[i].ID < l.Blocks[j].ID })
		l.Parent = nil
	}
	// Deterministic order: by header ID, ties by size (outer first).
	sort.Slice(lf.Loops, func(i, j int) bool {
		if lf.Loops[i].Header.ID != lf.Loops[j].Header.ID {
			return lf.Loops[i].Header.ID < lf.Loops[j].Header.ID
		}
		return len(lf.Loops[i].Blocks) > len(lf.Loops[j].Blocks)
	})

	// Nesting: loop A is parent of B if A != B and A contains B's
	// header and B's body is a subset of A's (containment of header is
	// sufficient for natural loops with distinct headers).
	for _, inner := range lf.Loops {
		var best *Loop
		for _, outer := range lf.Loops {
			if outer == inner || !outer.Contains(inner.Header) {
				continue
			}
			if len(outer.Blocks) <= len(inner.Blocks) {
				continue
			}
			if best == nil || len(outer.Blocks) < len(best.Blocks) {
				best = outer
			}
		}
		inner.Parent = best
	}
	for _, l := range lf.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Per-block depth = max depth of containing loops.
	for _, l := range lf.Loops {
		for _, b := range l.Blocks {
			if l.Depth > lf.DepthOf[b.ID] {
				lf.DepthOf[b.ID] = l.Depth
				lf.InnermostOf[b.ID] = l
			}
		}
	}
}

// IsReducible reports whether every cycle in the CFG has a back edge
// to a dominating header (i.e. every retreating edge is a back edge).
func IsReducible(f *ir.Func, dom *DomTree) bool {
	// DFS classification: an edge b->h is retreating if h is an
	// ancestor of b in the DFS stack.
	state := make([]int, len(f.Blocks)) // 0 unvisited, 1 on stack, 2 done
	reducible := true
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		state[b.ID] = 1
		for _, e := range b.Succs {
			s := e.To
			switch state[s.ID] {
			case 0:
				dfs(s)
			case 1:
				if !dom.Dominates(s, b) {
					reducible = false
				}
			}
		}
		state[b.ID] = 2
	}
	dfs(f.Entry)
	return reducible
}
