// Package irtext prints and parses a textual form of the IR, so test
// programs, examples and command-line tools can read and write
// procedures as files. The format round-trips everything the analyses
// need: block layout (which defines jump edges), edge profile weights,
// instruction flags, and function entry counts.
package irtext

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Print renders the whole program. A "main NAME" directive is emitted
// when the entry function is not the first function, so Parse(Print(p))
// preserves the entry point for any function order.
func Print(p *ir.Program) string {
	var b strings.Builder
	if p.Main != "" && len(p.Order) > 0 && p.Order[0] != p.Main {
		b.WriteString("main ")
		b.WriteString(p.Main)
		b.WriteString("\n\n")
	}
	for i, f := range p.FuncsInOrder() {
		if i > 0 {
			b.WriteString("\n")
		}
		PrintFunc(&b, f)
	}
	return b.String()
}

// PrintFunc renders one function.
func PrintFunc(b *strings.Builder, f *ir.Func) {
	fmt.Fprintf(b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(")")
	if f.EntryCount != 0 {
		fmt.Fprintf(b, " entry=%d", f.EntryCount)
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(b, "%s:\n", blk.Name)
		for _, in := range blk.Instrs {
			b.WriteString("\t")
			b.WriteString(instrString(blk, in))
			b.WriteString("\n")
		}
	}
	b.WriteString("}\n")
}

// instrString renders an instruction, adding edge weights to
// terminators and flag suffixes.
func instrString(blk *ir.Block, in *ir.Instr) string {
	s := in.String()
	switch in.Op {
	case ir.OpBr:
		wt, we := int64(0), int64(0)
		if e := blk.SuccEdge(in.Then); e != nil {
			wt = e.Weight
		}
		if e := blk.SuccEdge(in.Else); e != nil {
			we = e.Weight
		}
		s += fmt.Sprintf(" ; %d %d", wt, we)
	case ir.OpJmp:
		if e := blk.SuccEdge(in.Then); e != nil {
			s += fmt.Sprintf(" ; %d", e.Weight)
		}
	}
	if fl := flagSuffix(in.Flags); fl != "" {
		s += " " + fl
	}
	return s
}

func flagSuffix(fl ir.InstrFlags) string {
	var parts []string
	if fl&ir.FlagSpill != 0 {
		parts = append(parts, "!spill")
	}
	if fl&ir.FlagSaveRestore != 0 {
		parts = append(parts, "!sr")
	}
	if fl&ir.FlagJumpBlock != 0 {
		parts = append(parts, "!jb")
	}
	return strings.Join(parts, " ")
}
