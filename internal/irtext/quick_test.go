package irtext

import (
	"testing"
	"testing/quick"

	"repro/internal/cfgtest"
	"repro/internal/ir"
)

// TestQuickRoundTripRandomCFGs: printing and reparsing a random
// structured function reproduces the same text, block layout, edge
// weights and edge kinds.
func TestQuickRoundTripRandomCFGs(t *testing.T) {
	check := func(seed uint64) bool {
		f := cfgtest.RandomStructured(seed, 3)
		p := ir.NewProgram()
		p.Add(f)
		text := Print(p)
		q, err := Parse(text)
		if err != nil {
			t.Logf("seed %x: parse: %v", seed, err)
			return false
		}
		if Print(q) != text {
			t.Logf("seed %x: round trip not stable", seed)
			return false
		}
		g := q.Func(f.Name)
		if len(g.Blocks) != len(f.Blocks) {
			t.Logf("seed %x: block count %d != %d", seed, len(g.Blocks), len(f.Blocks))
			return false
		}
		for i, b := range f.Blocks {
			gb := g.Blocks[i]
			if gb.Name != b.Name || len(gb.Succs) != len(b.Succs) {
				t.Logf("seed %x: block %s mismatched", seed, b.Name)
				return false
			}
			for _, e := range b.Succs {
				ge := gb.SuccEdge(g.BlockByName(e.To.Name))
				if ge == nil || ge.Weight != e.Weight || ge.Kind != e.Kind {
					t.Logf("seed %x: edge %v mismatched", seed, e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
