package irtext

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/workload"
)

const fibSrc = `
# iterative fibonacci
func fib(v0) entry=1 {
entry:
	v1 = const 0
	v2 = const 1
	v3 = const 0
	jmp loop ; 1
loop:
	v4 = add v1, v2
	v1 = mov v2
	v2 = mov v4
	v5 = const 1
	v3 = add v3, v5
	v6 = cmplt v3, v0
	br v6, loop, exit ; 9 1
exit:
	ret v1
}
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vm.New(p, vm.Config{}).Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
	f := p.Func("fib")
	if f.EntryCount != 1 {
		t.Errorf("EntryCount = %d, want 1", f.EntryCount)
	}
	loop := f.BlockByName("loop")
	if e := loop.SuccEdge(loop); e == nil || e.Weight != 9 {
		t.Errorf("back edge weight wrong: %v", e)
	}
}

func TestRoundTrip(t *testing.T) {
	p1, err := Parse(fibSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(p1)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if Print(p2) != text {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, Print(p2))
	}
}

func TestRoundTripFigure2(t *testing.T) {
	fig := workload.NewFigure2()
	p := ir.NewProgram()
	p.Add(fig.Func)
	text := Print(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	f := q.Func("figure2")
	if f == nil {
		t.Fatal("figure2 missing after round trip")
	}
	if len(f.Blocks) != 16 {
		t.Errorf("blocks = %d, want 16", len(f.Blocks))
	}
	if f.EntryCount != 100 {
		t.Errorf("EntryCount = %d, want 100", f.EntryCount)
	}
	// Edge weights survive.
	df := f.BlockByName("D").SuccEdge(f.BlockByName("F"))
	if df == nil || df.Weight != 30 {
		t.Errorf("D->F = %v, want weight 30", df)
	}
	if df.Kind != ir.Jump {
		t.Errorf("D->F should classify as jump edge")
	}
	if Print(q) != text {
		t.Error("figure2 round trip not stable")
	}
}

func TestRoundTripFlagsAndMemOps(t *testing.T) {
	src := `
func f(v0) {
entry:
	spill.st 0, v0 !spill
	v1 = spill.ld 0 !spill
	save 0, r12 !sr
	r12 = const 5
	r12 = restore 0 !sr
	store v1+8, v0
	v2 = load v1+8
	v3 = call g(v2)
	jmp next ; 7 !jb
next:
	ret v3
}

func g(v0) {
entry:
	v1 = neg v0
	v2 = not v1
	nop
	ret v2
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Func("f")
	if f.SpillSlots != 1 || f.SaveSlots != 1 {
		t.Errorf("slots = %d/%d, want 1/1", f.SpillSlots, f.SaveSlots)
	}
	var flags []ir.InstrFlags
	for _, in := range f.Entry.Instrs {
		flags = append(flags, in.Flags)
	}
	if flags[0] != ir.FlagSpill || flags[1] != ir.FlagSpill {
		t.Error("spill flags lost")
	}
	if flags[2] != ir.FlagSaveRestore || flags[4] != ir.FlagSaveRestore {
		t.Error("save/restore flags lost")
	}
	if f.Entry.Terminator().Flags != ir.FlagJumpBlock {
		t.Error("jump block flag lost")
	}
	text := Print(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if Print(q) != text {
		t.Error("flags round trip not stable")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"bad op", "func f() {\nentry:\n\tfoo v1\n}"},
		{"bad reg", "func f() {\nentry:\n\tx9 = const 1\n}"},
		{"unknown target", "func f() {\nentry:\n\tjmp nowhere\n}"},
		{"label outside func", "entry:\n"},
		{"instr outside block", "func f() {\n\tret\n}"},
		{"nested func", "func f() {\nfunc g() {\n}"},
		{"unclosed func", "func f() {\nentry:\n\tret\n"},
		{"bad const", "func f() {\nentry:\n\tv0 = const abc\n}"},
		{"undefined callee", "func f() {\nentry:\n\tcall nope()\n\tret\n}"},
		{"duplicate block", "func f() {\nentry:\n\tret\nentry:\n\tret\n}"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestMainDirective(t *testing.T) {
	src := `
main g
func f() {
entry:
	ret
}
func g() {
entry:
	ret
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Main != "g" {
		t.Errorf("Main = %q, want g", p.Main)
	}
}

func TestPrintIsParseable(t *testing.T) {
	// A program printed after placement (with save/restore and jump
	// blocks) must still parse.
	src := strings.ReplaceAll(fibSrc, "# iterative fibonacci\n", "")
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(Print(p)); err != nil {
		t.Fatal(err)
	}
}
