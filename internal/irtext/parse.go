package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// Parse reads a program in the textual IR format. The first function
// is the program's main unless a "main NAME" directive appears.
func Parse(src string) (*ir.Program, error) {
	p := &parser{prog: ir.NewProgram()}
	if err := p.run(src); err != nil {
		return nil, err
	}
	if err := ir.VerifyProgram(p.prog); err != nil {
		return nil, fmt.Errorf("irtext: parsed program invalid: %w", err)
	}
	return p.prog, nil
}

type pendingEdge struct {
	from   *ir.Block
	target string
	weight int64
}

type parser struct {
	prog *ir.Program
	line int

	f       *ir.Func
	cur     *ir.Block
	pending []pendingEdge
	virtMax int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("irtext: line %d: "+format, append([]any{p.line}, args...)...)
}

func (p *parser) run(src string) error {
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		// Strip full-line comments that aren't terminator weights: the
		// '; ' annotations are handled inside instruction parsing, so
		// only '#' comments are stripped here.
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "main "):
			p.prog.Main = strings.TrimSpace(strings.TrimPrefix(line, "main "))
		case strings.HasPrefix(line, "func "):
			if err := p.startFunc(line); err != nil {
				return err
			}
		case line == "}":
			if err := p.endFunc(); err != nil {
				return err
			}
		case strings.HasSuffix(line, ":"):
			if p.f == nil {
				return p.errf("label outside function")
			}
			name := strings.TrimSuffix(line, ":")
			if p.f.BlockByName(name) != nil {
				return p.errf("duplicate block %q", name)
			}
			p.cur = p.f.NewBlock(name)
		default:
			if p.f == nil || p.cur == nil {
				return p.errf("instruction outside block")
			}
			if err := p.instr(line); err != nil {
				return err
			}
		}
	}
	if p.f != nil {
		return p.errf("unexpected end of input inside func %s", p.f.Name)
	}
	return nil
}

func (p *parser) startFunc(line string) error {
	if p.f != nil {
		return p.errf("nested func")
	}
	rest := strings.TrimPrefix(line, "func ")
	open := strings.Index(rest, "(")
	close_ := strings.Index(rest, ")")
	if open < 0 || close_ < open || !strings.HasSuffix(rest, "{") {
		return p.errf("malformed func header %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return p.errf("func missing name")
	}
	p.f = ir.NewFunc(name)
	p.virtMax = 0
	params := strings.TrimSpace(rest[open+1 : close_])
	if params != "" {
		for _, ps := range strings.Split(params, ",") {
			r, err := p.reg(strings.TrimSpace(ps))
			if err != nil {
				return err
			}
			p.f.Params = append(p.f.Params, r)
		}
	}
	tail := strings.TrimSpace(rest[close_+1 : len(rest)-1])
	if tail != "" {
		if !strings.HasPrefix(tail, "entry=") {
			return p.errf("unexpected func annotation %q", tail)
		}
		n, err := strconv.ParseInt(strings.TrimPrefix(tail, "entry="), 10, 64)
		if err != nil {
			return p.errf("bad entry count: %v", err)
		}
		p.f.EntryCount = n
	}
	return nil
}

func (p *parser) endFunc() error {
	if p.f == nil {
		return p.errf("unmatched }")
	}
	// Resolve pending edges now that all blocks exist.
	for _, pe := range p.pending {
		to := p.f.BlockByName(pe.target)
		if to == nil {
			return p.errf("func %s: branch to unknown block %q", p.f.Name, pe.target)
		}
		// Patch terminator targets.
		t := pe.from.Terminator()
		if t != nil {
			if t.Then != nil && t.Then.Name == pe.target && t.Then.Func == nil {
				t.Then = to
			}
			if t.Else != nil && t.Else.Name == pe.target && t.Else.Func == nil {
				t.Else = to
			}
		}
		p.f.AddEdge(pe.from, to, ir.Jump, pe.weight)
	}
	p.pending = nil
	p.f.NumVirt = p.virtMax
	p.f.RenumberBlocks()
	p.f.ClassifyEdges()
	p.prog.Add(p.f)
	p.f, p.cur = nil, nil
	return nil
}

// reg parses rN or vN or _.
func (p *parser) reg(s string) (ir.Reg, error) {
	if s == "_" {
		return ir.NoReg, nil
	}
	if len(s) < 2 {
		return ir.NoReg, p.errf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return ir.NoReg, p.errf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		if n >= int(ir.VirtBase) {
			return ir.NoReg, p.errf("physical register %q out of range", s)
		}
		return ir.Phys(n), nil
	case 'v':
		if n+1 > p.virtMax {
			p.virtMax = n + 1
		}
		return ir.Virt(n), nil
	}
	return ir.NoReg, p.errf("bad register %q", s)
}

var binOps = map[string]ir.Op{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul, "div": ir.OpDiv,
	"rem": ir.OpRem, "and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor,
	"shl": ir.OpShl, "shr": ir.OpShr,
	"cmpeq": ir.OpCmpEQ, "cmpne": ir.OpCmpNE, "cmplt": ir.OpCmpLT,
	"cmple": ir.OpCmpLE, "cmpgt": ir.OpCmpGT, "cmpge": ir.OpCmpGE,
}

// instr parses one instruction line.
func (p *parser) instr(line string) error {
	// Flags.
	var flags ir.InstrFlags
	for {
		switch {
		case strings.HasSuffix(line, "!spill"):
			flags |= ir.FlagSpill
			line = strings.TrimSpace(strings.TrimSuffix(line, "!spill"))
			continue
		case strings.HasSuffix(line, "!sr"):
			flags |= ir.FlagSaveRestore
			line = strings.TrimSpace(strings.TrimSuffix(line, "!sr"))
			continue
		case strings.HasSuffix(line, "!jb"):
			flags |= ir.FlagJumpBlock
			line = strings.TrimSpace(strings.TrimSuffix(line, "!jb"))
			continue
		}
		break
	}
	// Terminator weights after ';'.
	var weights []int64
	if i := strings.Index(line, ";"); i >= 0 {
		for _, ws := range strings.Fields(line[i+1:]) {
			w, err := strconv.ParseInt(ws, 10, 64)
			if err != nil {
				return p.errf("bad weight %q", ws)
			}
			weights = append(weights, w)
		}
		line = strings.TrimSpace(line[:i])
	}

	emit := func(in *ir.Instr) {
		in.Flags = flags
		p.cur.Append(in)
	}

	// Destination form: "X = rest".
	if eq := strings.Index(line, " = "); eq >= 0 {
		dstS := strings.TrimSpace(line[:eq])
		rest := strings.TrimSpace(line[eq+3:])
		dst, err := p.reg(dstS)
		if err != nil {
			return err
		}
		op, args := splitOp(rest)
		switch {
		case op == "const":
			n, err := strconv.ParseInt(args, 10, 64)
			if err != nil {
				return p.errf("bad const %q", args)
			}
			emit(&ir.Instr{Op: ir.OpConst, Dst: dst, Src1: ir.NoReg, Src2: ir.NoReg, Imm: n})
		case op == "mov":
			s, err := p.reg(args)
			if err != nil {
				return err
			}
			emit(&ir.Instr{Op: ir.OpMov, Dst: dst, Src1: s, Src2: ir.NoReg})
		case op == "neg" || op == "not":
			s, err := p.reg(args)
			if err != nil {
				return err
			}
			o := ir.OpNeg
			if op == "not" {
				o = ir.OpNot
			}
			emit(&ir.Instr{Op: o, Dst: dst, Src1: s, Src2: ir.NoReg})
		case op == "load":
			base, off, err := p.addr(args)
			if err != nil {
				return err
			}
			emit(&ir.Instr{Op: ir.OpLoad, Dst: dst, Src1: base, Src2: ir.NoReg, Imm: off})
		case op == "spill.ld":
			n, err := strconv.ParseInt(args, 10, 64)
			if err != nil {
				return p.errf("bad slot %q", args)
			}
			if int(n)+1 > p.f.SpillSlots {
				p.f.SpillSlots = int(n) + 1
			}
			emit(&ir.Instr{Op: ir.OpSpillLoad, Dst: dst, Src1: ir.NoReg, Src2: ir.NoReg, Imm: n})
		case op == "restore":
			n, err := strconv.ParseInt(args, 10, 64)
			if err != nil {
				return p.errf("bad slot %q", args)
			}
			if int(n)+1 > p.f.SaveSlots {
				p.f.SaveSlots = int(n) + 1
			}
			emit(&ir.Instr{Op: ir.OpRestore, Dst: dst, Src1: ir.NoReg, Src2: ir.NoReg, Imm: n})
		case op == "call":
			return p.call(dst, args, emit)
		default:
			o, ok := binOps[op]
			if !ok {
				return p.errf("unknown op %q", op)
			}
			parts := strings.Split(args, ",")
			if len(parts) != 2 {
				return p.errf("binary op needs 2 operands: %q", line)
			}
			a, err := p.reg(strings.TrimSpace(parts[0]))
			if err != nil {
				return err
			}
			b, err := p.reg(strings.TrimSpace(parts[1]))
			if err != nil {
				return err
			}
			emit(&ir.Instr{Op: o, Dst: dst, Src1: a, Src2: b})
		}
		return nil
	}

	op, args := splitOp(line)
	switch op {
	case "nop":
		emit(&ir.Instr{Op: ir.OpNop, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
	case "store":
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return p.errf("store needs addr, value: %q", line)
		}
		base, off, err := p.addr(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		v, err := p.reg(strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		emit(&ir.Instr{Op: ir.OpStore, Dst: ir.NoReg, Src1: base, Src2: v, Imm: off})
	case "spill.st", "save":
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return p.errf("%s needs slot, reg: %q", op, line)
		}
		n, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return p.errf("bad slot %q", parts[0])
		}
		r, err := p.reg(strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		o := ir.OpSpillStore
		if op == "save" {
			o = ir.OpSave
			if int(n)+1 > p.f.SaveSlots {
				p.f.SaveSlots = int(n) + 1
			}
		} else {
			if int(n)+1 > p.f.SpillSlots {
				p.f.SpillSlots = int(n) + 1
			}
		}
		emit(&ir.Instr{Op: o, Dst: ir.NoReg, Src1: r, Src2: ir.NoReg, Imm: n})
	case "call":
		return p.call(ir.NoReg, args, func(in *ir.Instr) {
			in.Flags = flags
			p.cur.Append(in)
		})
	case "ret":
		src := ir.NoReg
		if args != "" {
			r, err := p.reg(args)
			if err != nil {
				return err
			}
			src = r
		}
		emit(&ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Src1: src, Src2: ir.NoReg})
	case "jmp":
		if len(weights) > 1 {
			return p.errf("jmp takes one weight")
		}
		var w int64
		if len(weights) == 1 {
			w = weights[0]
		}
		// Target may be defined later; use a placeholder block header.
		ph := &ir.Block{Name: args}
		emit(&ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Then: ph})
		p.pending = append(p.pending, pendingEdge{from: p.cur, target: args, weight: w})
	case "br":
		parts := strings.Split(args, ",")
		if len(parts) != 3 {
			return p.errf("br needs cond, then, else: %q", line)
		}
		c, err := p.reg(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		tn := strings.TrimSpace(parts[1])
		en := strings.TrimSpace(parts[2])
		var wt, we int64
		if len(weights) >= 1 {
			wt = weights[0]
		}
		if len(weights) >= 2 {
			we = weights[1]
		}
		emit(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Src1: c, Src2: ir.NoReg,
			Then: &ir.Block{Name: tn}, Else: &ir.Block{Name: en}})
		p.pending = append(p.pending,
			pendingEdge{from: p.cur, target: tn, weight: wt},
			pendingEdge{from: p.cur, target: en, weight: we})
	default:
		return p.errf("unknown instruction %q", line)
	}
	return nil
}

// call parses "name(a, b, ...)".
func (p *parser) call(dst ir.Reg, args string, emit func(*ir.Instr)) error {
	open := strings.Index(args, "(")
	if open < 0 || !strings.HasSuffix(args, ")") {
		return p.errf("malformed call %q", args)
	}
	name := strings.TrimSpace(args[:open])
	in := &ir.Instr{Op: ir.OpCall, Dst: dst, Src1: ir.NoReg, Src2: ir.NoReg, Callee: name}
	argList := strings.TrimSpace(args[open+1 : len(args)-1])
	if argList != "" {
		for _, as := range strings.Split(argList, ",") {
			r, err := p.reg(strings.TrimSpace(as))
			if err != nil {
				return err
			}
			in.Args = append(in.Args, r)
		}
	}
	emit(in)
	return nil
}

// addr parses "reg+off" or "reg".
func (p *parser) addr(s string) (ir.Reg, int64, error) {
	if i := strings.Index(s, "+"); i >= 0 {
		r, err := p.reg(strings.TrimSpace(s[:i]))
		if err != nil {
			return ir.NoReg, 0, err
		}
		off, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil {
			return ir.NoReg, 0, p.errf("bad offset in %q", s)
		}
		return r, off, nil
	}
	r, err := p.reg(strings.TrimSpace(s))
	return r, 0, err
}

func splitOp(s string) (op, args string) {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}
