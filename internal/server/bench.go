package server

// bench.go runs the standing end-to-end service benchmark: an
// in-process spillserve instance driven by the loadgen sweep (cold
// submissions, cached resubmissions, function-reordered variants)
// over a generated corpus. It lives here rather than in internal/bench
// because the sweep needs the service itself, and internal/bench is
// imported by the root package's tests — which would close an import
// cycle through the server's dependency on the facade. The gate logic
// (bench.CompareServe) stays service-free on the other side.

import (
	"fmt"
	"net/http/httptest"
	"runtime"
	"time"

	"repro/internal/bench"
)

// benchSuite names the standing corpus; a record for any other corpus
// shape is not comparable.
const benchSuite = "irgen small corpus"

// benchAnalysisBudget is the standing benchmark's analysis-cache
// budget: far below the corpus's function population, so the sweep
// only passes if the eviction policy actually evicts.
const benchAnalysisBudget = 64

// Bench boots an in-process service and drives the full loadgen
// sweep: Distinct cold submissions, Distinct*Dups cached
// resubmissions, and Distinct reordered variants that must be
// assembled from the function-level cache.
func Bench(distinct, dups, workers int) (*bench.ServeBench, error) {
	s := New(Config{AnalysisBudget: benchAnalysisBudget})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	res, err := Loadgen(ts.Client(), ts.URL, LoadgenOptions{
		Distinct: distinct,
		Dups:     dups,
		Workers:  workers,
		Reorder:  true,
		Seed:     1,
	})
	if err != nil {
		return nil, fmt.Errorf("serve bench: %w", err)
	}
	return NewRecord(res), nil
}

// NewRecord maps a loadgen sweep result to the serialized
// BENCH_serve.json record, stamping host metadata.
func NewRecord(res *LoadgenResult) *bench.ServeBench {
	return &bench.ServeBench{
		Suite:          benchSuite,
		Distinct:       res.Distinct,
		Dups:           res.Dups,
		Workers:        res.Workers,
		Requests:       res.Requests,
		Functions:      res.Functions,
		GoVersion:      runtime.Version(),
		GOARCH:         runtime.GOARCH,
		Date:           time.Now().UTC().Format("2006-01-02"),
		ColdNsPerReq:   res.ColdNsPerReq,
		CachedNsPerReq: res.CachedNsPerReq,
		CachedSpeedup:  res.CachedSpeedup,
		ProgramHits:    res.ProgramHits,
		ProgramMisses:  res.ProgramMisses,
		FunctionHits:   res.FunctionHits,
		AnalysisBudget: res.AnalysisBudget,
		AnalysisLenMax: res.AnalysisLenMax,
		AnalysisDrops:  res.AnalysisDrops,
	}
}
