package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"strings"

	"repro/internal/ir"
	"repro/internal/irtext"
)

// programKey is the program-level content-cache key: a digest of the
// canonical IR text (irtext.Print of the parsed program, so comment
// and whitespace variants collapse) plus every request option that
// shapes the response bytes.
func programKey(canonical string, req *PlaceRequest) string {
	h := sha256.New()
	io.WriteString(h, canonical)
	h.Write([]byte{0})
	io.WriteString(h, req.Machine)
	h.Write([]byte{0})
	io.WriteString(h, req.Strategy)
	h.Write([]byte{0})
	io.WriteString(h, req.Alloc)
	h.Write([]byte{0})
	var buf [8]byte
	for _, a := range req.Args {
		binary.LittleEndian.PutUint64(buf[:], uint64(a))
		h.Write(buf[:])
	}
	flags := byte(0)
	if req.Run {
		flags |= 1
	}
	if req.Emit {
		flags |= 2
	}
	if req.Tier {
		flags |= 4
	}
	h.Write([]byte{0, flags})
	binary.LittleEndian.PutUint64(buf[:], uint64(req.Quantum))
	h.Write(buf[:])
	// The engine never changes response bytes (the engines are
	// parity-tested), but the key covers every request field so no two
	// distinct requests ever alias an entry.
	io.WriteString(h, req.Engine)
	return hex.EncodeToString(h.Sum(nil))
}

// funcHash digests one function's canonical text. It must be taken
// after Profile and before Allocate: PrintFunc round-trips the entry
// count and edge weights, so the digest covers exactly what placement
// depends on (body + profile), while allocation would bake
// machine-specific spill code into it.
func funcHash(f *ir.Func) string {
	var b strings.Builder
	irtext.PrintFunc(&b, f)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// funcKey is the function-level content-cache key: placement is a
// deterministic function of (profiled body, machine preset, strategy,
// allocation mode), so identical tuples can reuse one FunctionEntry
// across programs. The allocation mode is part of the key because it
// changes which webs spill before placement ever runs.
type funcKey struct {
	hash     string
	machine  string
	strategy string
	alloc    string
}
