package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/par"
)

// LoadgenOptions configures a loadgen sweep against a running
// service.
type LoadgenOptions struct {
	// Distinct is the number of distinct generated programs; Dups the
	// number of identical resubmissions of each.
	Distinct int
	// Dups is the cached-phase resubmission count per program.
	Dups int
	// Reorder adds one function-reordered variant per program: a
	// program-cache miss whose functions all hit the function cache.
	Reorder bool
	// Seed is the base irgen seed for the corpus.
	Seed uint64
	// Workers is the number of concurrent client workers.
	Workers int
	// Machine/Strategy/Args are passed through on every request.
	Machine  string
	Strategy string
	Args     []int64
}

func (o LoadgenOptions) withDefaults() LoadgenOptions {
	if o.Distinct <= 0 {
		o.Distinct = 100
	}
	if o.Dups <= 0 {
		o.Dups = 9
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Args == nil {
		o.Args = []int64{5}
	}
	return o
}

// LoadgenResult reports one sweep: request counts, per-phase wall
// times, and the service-side cache counter deltas each phase caused.
type LoadgenResult struct {
	Distinct  int `json:"distinct"`
	Dups      int `json:"dups"`
	Workers   int `json:"workers"`
	Requests  int `json:"requests"`
	Functions int `json:"functions"`

	// Phase wall times: cold = first submission of each distinct
	// program, cached = identical resubmissions, reorder = reordered
	// variants (0 when the phase is disabled).
	ColdNs    int64 `json:"cold_ns"`
	CachedNs  int64 `json:"cached_ns"`
	ReorderNs int64 `json:"reorder_ns"`

	ColdNsPerReq   float64 `json:"cold_ns_per_req"`
	CachedNsPerReq float64 `json:"cached_ns_per_req"`
	// CachedSpeedup is cold-per-request over cached-per-request.
	CachedSpeedup float64 `json:"cached_speedup"`

	// Service-side counter deltas, phase-bracketed via /metrics: with
	// a deduplicated corpus and no other clients they are exact —
	// ProgramHits (cached phase) = Distinct*Dups, FunctionHits
	// (reorder phase) = Functions.
	ProgramHits    int64 `json:"program_hits"`
	ProgramMisses  int64 `json:"program_misses"`
	FunctionHits   int64 `json:"function_hits"`
	AnalysisLenMax int   `json:"analysis_len_max"`
	AnalysisBudget int   `json:"analysis_budget"`
	AnalysisDrops  int   `json:"analysis_drops"`
}

// Loadgen generates a deduplicated corpus of irgen programs and
// drives baseURL through a cold phase (every program once), a cached
// phase (every program resubmitted Dups times), and optionally a
// reorder phase (every program with its function definitions
// reversed — a program-cache miss assembled from function-cache
// hits). Any non-200 fails the sweep.
func Loadgen(client *http.Client, baseURL string, opt LoadgenOptions) (*LoadgenResult, error) {
	opt = opt.withDefaults()
	texts, reordered, functions, err := corpus(opt)
	if err != nil {
		return nil, err
	}

	res := &LoadgenResult{
		Distinct:  opt.Distinct,
		Dups:      opt.Dups,
		Workers:   opt.Workers,
		Functions: functions,
	}
	submit := func(text string) error {
		body, err := json.Marshal(PlaceRequest{
			IR:       text,
			Machine:  opt.Machine,
			Strategy: opt.Strategy,
			Args:     opt.Args,
		})
		if err != nil {
			return err
		}
		resp, err := client.Post(baseURL+"/v1/place", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d: %s", resp.StatusCode, out)
		}
		return nil
	}
	phase := func(n int, pick func(i int) string) (int64, error) {
		start := time.Now()
		err := par.Do(n, opt.Workers, func(i int) error { return submit(pick(i)) })
		return time.Since(start).Nanoseconds(), err
	}

	s0, err := metricsSnapshot(client, baseURL)
	if err != nil {
		return nil, err
	}
	if res.ColdNs, err = phase(opt.Distinct, func(i int) string { return texts[i] }); err != nil {
		return nil, fmt.Errorf("cold phase: %w", err)
	}
	s1, err := metricsSnapshot(client, baseURL)
	if err != nil {
		return nil, err
	}
	if res.CachedNs, err = phase(opt.Distinct*opt.Dups, func(i int) string { return texts[i%opt.Distinct] }); err != nil {
		return nil, fmt.Errorf("cached phase: %w", err)
	}
	s2, err := metricsSnapshot(client, baseURL)
	if err != nil {
		return nil, err
	}
	if opt.Reorder {
		if res.ReorderNs, err = phase(opt.Distinct, func(i int) string { return reordered[i] }); err != nil {
			return nil, fmt.Errorf("reorder phase: %w", err)
		}
	}
	s3, err := metricsSnapshot(client, baseURL)
	if err != nil {
		return nil, err
	}

	res.Requests = opt.Distinct * (1 + opt.Dups)
	if opt.Reorder {
		res.Requests += opt.Distinct
	}
	res.ColdNsPerReq = float64(res.ColdNs) / float64(opt.Distinct)
	res.CachedNsPerReq = float64(res.CachedNs) / float64(opt.Distinct*opt.Dups)
	if res.CachedNsPerReq > 0 {
		res.CachedSpeedup = res.ColdNsPerReq / res.CachedNsPerReq
	}
	res.ProgramHits = s2.ProgramCache.Hits - s1.ProgramCache.Hits
	res.ProgramMisses = s3.ProgramCache.Misses - s0.ProgramCache.Misses
	res.FunctionHits = s3.FunctionCache.Hits - s2.FunctionCache.Hits
	res.AnalysisLenMax = s3.AnalysisCache.LenMax
	res.AnalysisBudget = s3.AnalysisCache.Budget
	res.AnalysisDrops = s3.AnalysisCache.Drops - s0.AnalysisCache.Drops
	return res, nil
}

// corpus builds Distinct unique canonical program texts (advancing
// the seed past any textual duplicates, so service-side counter
// expectations stay exact) plus their function-reversed variants, and
// counts the total functions.
func corpus(opt LoadgenOptions) (texts, reordered []string, functions int, err error) {
	seen := make(map[string]bool, opt.Distinct)
	seed := opt.Seed
	for len(texts) < opt.Distinct {
		prog := irgen.Generate(seed, irgen.Small())
		seed++
		text := irtext.Print(prog)
		if seen[text] {
			continue
		}
		seen[text] = true
		texts = append(texts, text)
		functions += len(prog.Order)
		reordered = append(reordered, irtext.Print(reverseFuncs(prog)))
	}
	return texts, reordered, functions, nil
}

// reverseFuncs reverses the program's function definition order in
// place: same semantics and per-function bodies, different canonical
// text. Print records the entry point explicitly, so moving main is
// safe.
func reverseFuncs(p *ir.Program) *ir.Program {
	for i, j := 0, len(p.Order)-1; i < j; i, j = i+1, j-1 {
		p.Order[i], p.Order[j] = p.Order[j], p.Order[i]
	}
	return p
}

func metricsSnapshot(client *http.Client, baseURL string) (*Snapshot, error) {
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	var sn Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return &sn, nil
}
