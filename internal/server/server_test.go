package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/irgen"
	"repro/internal/irtext"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, req PlaceRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// testProgram is a seeded generated program plus profiling args, the
// same corpus loadgen uses.
func testProgram(seed uint64) string {
	return irtext.Print(irgen.Generate(seed, irgen.Small()))
}

// TestPlaceMatchesDirectPipeline: the service's response must be
// byte-identical to the JSON assembled from a direct spillopt run of
// the same program — the service adds transport and caching, never
// different results.
func TestPlaceMatchesDirectPipeline(t *testing.T) {
	src := testProgram(3)
	args := []int64{5}

	// Direct pipeline, mirroring the server's response assembly.
	prog, err := spillopt.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.UseMachine("classic"); err != nil {
		t.Fatal(err)
	}
	if err := prog.Profile(args...); err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for _, f := range prog.IRFuncs() {
		hashes = append(hashes, funcHash(f))
	}
	if err := prog.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := prog.Place(spillopt.HierarchicalJump); err != nil {
		t.Fatal(err)
	}
	reports, err := prog.Report()
	if err != nil {
		t.Fatal(err)
	}
	want := &PlaceResponse{Machine: "classic", Strategy: "hierarchical-jump"}
	for i, r := range reports {
		want.Functions = append(want.Functions, FunctionEntry{Hash: hashes[i], FunctionReport: r})
		want.TotalOverhead += r.Overhead
		want.TotalCost += r.Cost
	}
	wantBody, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	resp, got := post(t, ts, PlaceRequest{IR: src, Args: args})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, wantBody) {
		t.Errorf("service response differs from direct pipeline:\n got %s\nwant %s", got, wantBody)
	}
	if c := resp.Header.Get("X-Cache"); c != cacheMiss {
		t.Errorf("first submission X-Cache = %q, want %q", c, cacheMiss)
	}

	// Identical resubmission: byte-identical and a program-cache hit.
	resp2, got2 := post(t, ts, PlaceRequest{IR: src, Args: args})
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(got, got2) {
		t.Errorf("resubmission differs: status %d", resp2.StatusCode)
	}
	if c := resp2.Header.Get("X-Cache"); c != cacheProgram {
		t.Errorf("resubmission X-Cache = %q, want %q", c, cacheProgram)
	}
}

// TestReorderedProgramHitsFunctionCache: reversing the definition
// order changes the canonical program (program-cache miss) but not
// the per-function bodies or weights, so the response is assembled
// entirely from function-cache hits — and agrees with the original's
// per-function reports.
func TestReorderedProgramHitsFunctionCache(t *testing.T) {
	src := testProgram(4)
	prog, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	reordered := irtext.Print(reverseFuncs(prog))
	if reordered == src {
		t.Fatal("reordering did not change the text")
	}

	s, ts := newTestServer(t, Config{})
	resp1, body1 := post(t, ts, PlaceRequest{IR: src, Args: []int64{5}})
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := post(t, ts, PlaceRequest{IR: reordered, Args: []int64{5}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, body2)
	}
	if c := resp2.Header.Get("X-Cache"); c != cacheFunction {
		t.Errorf("reordered submission X-Cache = %q, want %q", c, cacheFunction)
	}
	var r1, r2 PlaceResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.TotalCost != r2.TotalCost || len(r1.Functions) != len(r2.Functions) {
		t.Errorf("reordered totals differ: %d vs %d", r1.TotalCost, r2.TotalCost)
	}
	byName := map[string]FunctionEntry{}
	for _, e := range r1.Functions {
		byName[e.Function] = e
	}
	for _, e := range r2.Functions {
		if byName[e.Function] != e {
			t.Errorf("function %s entry differs across orderings", e.Function)
		}
	}
	if st := s.funcCache.Stats(); st.Hits != int64(len(r1.Functions)) {
		t.Errorf("function cache hits = %d, want %d", st.Hits, len(r1.Functions))
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		req    PlaceRequest
		status int
		substr string
	}{
		{"malformed ir", PlaceRequest{IR: "func main( {"}, 400, "error"},
		{"empty ir", PlaceRequest{}, 400, "empty ir"},
		{"unknown strategy", PlaceRequest{IR: testProgram(5), Strategy: "nonsense", Args: []int64{5}}, 400, "unknown strategy"},
		{"unknown machine", PlaceRequest{IR: testProgram(5), Machine: "vax", Args: []int64{5}}, 400, "error"},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		if !strings.Contains(string(body), tc.substr) {
			t.Errorf("%s: body %q missing %q", tc.name, body, tc.substr)
		}
	}

	// Not JSON at all.
	resp, err := ts.Client().Post(ts.URL+"/v1/place", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status %d, want 400", resp.StatusCode)
	}

	// Oversized body → 413 (dedicated server with a tight limit).
	_, tsSmall := newTestServer(t, Config{MaxBodyBytes: 256})
	big := PlaceRequest{IR: strings.Repeat("# padding\n", 64) + testProgram(5)}
	resp2, body2 := post(t, tsSmall, big)
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%s)", resp2.StatusCode, body2)
	}

	// A runaway program hits the step budget, not the CPU.
	_, ts2 := newTestServer(t, Config{MaxVMSteps: 100})
	resp3, body3 := post(t, ts2, PlaceRequest{IR: testProgram(5), Args: []int64{5}})
	if resp3.StatusCode != http.StatusBadRequest || !strings.Contains(string(body3), "step") {
		t.Errorf("step-limited program: status %d body %s, want 400 with step-limit error", resp3.StatusCode, body3)
	}
}

// TestBestStrategy: strategy=best prices all strategies, applies the
// cheapest, and reports every total.
func TestBestStrategy(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, PlaceRequest{IR: testProgram(6), Strategy: "best", Args: []int64{5}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r PlaceResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.StrategyCosts) != len(spillopt.Strategies()) {
		t.Fatalf("strategy_costs has %d entries, want %d", len(r.StrategyCosts), len(spillopt.Strategies()))
	}
	bestCost := r.StrategyCosts[r.Strategy]
	for name, c := range r.StrategyCosts {
		if c < bestCost {
			t.Errorf("chosen %s (%d) beaten by %s (%d)", r.Strategy, bestCost, name, c)
		}
	}
	sn := s.snapshot()
	if len(sn.StrategyWins) == 0 {
		t.Error("strategy=best recorded no per-function wins")
	}
}

// TestRunAndEmit: run/emit extras come back and bypass the
// function-level cache without disturbing determinism.
func TestRunAndEmit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts, PlaceRequest{IR: testProgram(7), Args: []int64{5}, Run: true, Emit: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r PlaceResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Run == nil || r.Run.Instrs == 0 {
		t.Error("run=true returned no measured result")
	}
	if r.Run != nil && r.Run.Overhead != r.TotalOverhead {
		// hierarchical-jump placements may use jump blocks whose
		// modeled and measured counts agree; assert agreement since
		// both derive from the same profile.
		t.Errorf("measured overhead %d != modeled %d", r.Run.Overhead, r.TotalOverhead)
	}
	if !strings.Contains(r.Text, "func") {
		t.Error("emit=true returned no program text")
	}
}

// TestTierPlacement: the tier option runs the tiered pipeline — the
// response carries a measured run and per-function reports of the
// final placement, a hostile program's tiny quantum forces a boundary
// (visible in the tier metrics), the tiered run's value matches the
// untiered one, and a resubmission is served from the program cache
// without re-running while still counting as a tier request.
func TestTierPlacement(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := irtext.Print(irgen.Generate(3, irgen.Hostile()))
	args := []int64{5}

	rf, bodyRef := post(t, ts, PlaceRequest{IR: src, Args: args, Run: true})
	if rf.StatusCode != http.StatusOK {
		t.Fatalf("untiered status %d: %s", rf.StatusCode, bodyRef)
	}
	var ref PlaceResponse
	if err := json.Unmarshal(bodyRef, &ref); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, ts, PlaceRequest{IR: src, Args: args, Tier: true, Quantum: 500})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tier status %d: %s", resp.StatusCode, body)
	}
	var r PlaceResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Run == nil || r.Run.Instrs == 0 {
		t.Fatal("tier=true returned no measured result")
	}
	if ref.Run == nil || r.Run.Value != ref.Run.Value {
		t.Errorf("tiered value %d, untiered %d", r.Run.Value, ref.Run.Value)
	}
	if len(r.Functions) == 0 {
		t.Error("tiered response carries no function reports")
	}
	sn := s.snapshot()
	if sn.Tier.Requests != 1 || sn.Tier.Runs != 1 {
		t.Errorf("tier counters %+v, want 1 request / 1 run", sn.Tier)
	}
	if sn.Tier.Boundaries != 1 || sn.Tier.Replaced == 0 {
		t.Errorf("quantum 500 on a hostile program must hit a boundary and re-place: %+v", sn.Tier)
	}

	resp2, body2 := post(t, ts, PlaceRequest{IR: src, Args: args, Tier: true, Quantum: 500})
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "program" {
		t.Fatalf("resubmission not a program-cache hit: %d %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached tiered response differs from the fresh one")
	}
	sn = s.snapshot()
	if sn.Tier.Requests != 2 || sn.Tier.Runs != 1 {
		t.Errorf("cached tier request must count as a request, not a run: %+v", sn.Tier)
	}

	// Quantum without tier is a client error.
	resp3, _ := post(t, ts, PlaceRequest{IR: src, Args: args, Quantum: 500})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("quantum without tier: status %d, want 400", resp3.StatusCode)
	}
}

// TestConcurrentSubmissions hammers one server from many goroutines
// (run under -race): mixed distinct and duplicate programs, every
// response 200, and every duplicate byte-identical.
func TestConcurrentSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{AnalysisBudget: 8})
	const clients, iters = 8, 6
	bodies := make([][][]byte, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bodies[c] = make([][]byte, iters)
			for i := 0; i < iters; i++ {
				seed := uint64(10 + (c+i)%4) // overlapping seeds across clients
				req, _ := json.Marshal(PlaceRequest{IR: testProgram(seed), Args: []int64{5}})
				resp, err := ts.Client().Post(ts.URL+"/v1/place", "application/json", bytes.NewReader(req))
				if err != nil {
					t.Error(err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, b)
					return
				}
				bodies[c][i] = b
			}
		}(c)
	}
	wg.Wait()
	// Same seed → same bytes, across all clients.
	bySeed := map[uint64][]byte{}
	for c := 0; c < clients; c++ {
		for i := 0; i < iters; i++ {
			seed := uint64(10 + (c+i)%4)
			if bodies[c][i] == nil {
				continue
			}
			if prev, ok := bySeed[seed]; ok && !bytes.Equal(prev, bodies[c][i]) {
				t.Errorf("seed %d: divergent responses under concurrency", seed)
			}
			bySeed[seed] = bodies[c][i]
		}
	}
	// The analysis cache stayed within budget plus in-flight slack.
	sn := s.snapshot()
	if sn.AnalysisCache.LenMax > sn.AnalysisCache.Budget+8*clients {
		t.Errorf("analysis cache LenMax %d exceeds budget %d + slack", sn.AnalysisCache.LenMax, sn.AnalysisCache.Budget)
	}
	if sn.AnalysisCache.Len > sn.AnalysisCache.Budget {
		t.Errorf("analysis cache Len %d exceeds budget %d at rest", sn.AnalysisCache.Len, sn.AnalysisCache.Budget)
	}
	if sn.AnalysisCache.Drops == 0 {
		t.Error("eviction policy never dropped an analysis handle")
	}
}

// TestAnalysisCacheBounded: with a tiny budget, a serial stream of
// distinct programs cannot grow the shared analysis cache — the LRU
// eviction policy drops handles as new functions retire.
func TestAnalysisCacheBounded(t *testing.T) {
	s, ts := newTestServer(t, Config{AnalysisBudget: 4})
	for seed := uint64(20); seed < 35; seed++ {
		resp, body := post(t, ts, PlaceRequest{IR: testProgram(seed), Args: []int64{5}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, body)
		}
		if got := s.ac.Len(); got > 4 {
			t.Fatalf("analysis cache Len %d exceeds budget 4 after serial request", got)
		}
	}
	if s.ac.Drops() == 0 {
		t.Error("no drops despite 15 distinct programs against budget 4")
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, hb)
	}
	var health struct {
		OK       bool     `json:"ok"`
		Findings []string `json:"findings"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || len(health.Findings) != 0 {
		t.Fatalf("healthz findings: %v", health.Findings)
	}

	sn, err := metricsSnapshot(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// The self-check went through the real caches: one program-cache
	// hit (the identical resubmission) and two misses minimum.
	if sn.ProgramCache.Hits == 0 || sn.ProgramCache.Misses == 0 {
		t.Errorf("healthz did not exercise the program cache: %+v", sn.ProgramCache)
	}
	if sn.AnalysisCache.Budget == 0 {
		t.Error("metrics reports no analysis budget")
	}
	// healthz runs place() directly, not through HTTP, so request
	// counters only reflect real requests.
	if sn.Requests.Total != 0 {
		t.Errorf("healthz polluted request counters: %+v", sn.Requests)
	}
}

// TestLoadgenSmoke drives the real loadgen against an in-process
// server at a small scale and checks the deterministic counter
// expectations the CI gate relies on.
func TestLoadgenSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	opt := LoadgenOptions{Distinct: 6, Dups: 3, Reorder: true, Workers: 4, Seed: 40}
	res, err := Loadgen(ts.Client(), ts.URL, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 6*(1+3)+6 {
		t.Errorf("requests = %d, want 30", res.Requests)
	}
	if res.ProgramHits != int64(6*3) {
		t.Errorf("program hits = %d, want %d (every cached-phase request)", res.ProgramHits, 6*3)
	}
	if res.FunctionHits != int64(res.Functions) {
		t.Errorf("function hits = %d, want %d (every reordered function)", res.FunctionHits, res.Functions)
	}
	if res.CachedSpeedup <= 1 {
		t.Errorf("cached speedup = %.2f, want > 1", res.CachedSpeedup)
	}
	if res.AnalysisLenMax > res.AnalysisBudget+8*opt.Workers {
		t.Errorf("analysis LenMax %d exceeds budget %d + slack", res.AnalysisLenMax, res.AnalysisBudget)
	}
}

// TestGracefulShutdownNoLeak: after serving concurrent traffic and a
// graceful Shutdown, no server goroutines remain.
func TestGracefulShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	url := fmt.Sprintf("http://%s/v1/place", ln.Addr())
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body, _ := json.Marshal(PlaceRequest{IR: testProgram(uint64(50 + c)), Args: []int64{5}})
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}(c)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	http.DefaultClient.CloseIdleConnections()

	// Goroutines take a moment to unwind; poll with a deadline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// TestPlaceEngines: run mode accepts every engine name, all engines
// report identical run results (they are parity-tested), unknown names
// get 400, and /metrics counts run-mode requests per engine.
func TestPlaceEngines(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := testProgram(7)

	var first []byte
	for _, engine := range spillopt.Engines() {
		resp, body := post(t, ts, PlaceRequest{IR: src, Args: []int64{5}, Run: true, Engine: engine})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("engine %q: status %d: %s", engine, resp.StatusCode, body)
		}
		var pr PlaceResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		if pr.Run == nil {
			t.Fatalf("engine %q: no run result", engine)
		}
		// Strip nothing: the whole response must match across engines,
		// run result included.
		if first == nil {
			first = body
		} else if !bytes.Equal(body, first) {
			t.Fatalf("engine %q response differs from first engine's:\n%s\nvs\n%s", engine, body, first)
		}
	}

	// The default is the bytecode engine: an engineless request hits
	// the same cache entry as an explicit engine=bytecode one.
	resp, _ := post(t, ts, PlaceRequest{IR: src, Args: []int64{5}, Run: true})
	if got := resp.Header.Get("X-Cache"); got != "program" {
		t.Errorf("engineless resubmission: X-Cache = %q, want program", got)
	}

	resp, body := post(t, ts, PlaceRequest{IR: src, Run: true, Engine: "jit"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown engine") {
		t.Fatalf("unknown engine: body %s", body)
	}

	sn := s.snapshot()
	want := map[string]int64{"bytecode": 2, "regcode": 1, "tree": 1}
	for engine, n := range want {
		if sn.EngineRuns[engine] != n {
			t.Errorf("engine_runs[%s] = %d, want %d (all: %v)", engine, sn.EngineRuns[engine], n, sn.EngineRuns)
		}
	}
}

// TestAllocOption: the alloc option selects machine-priced allocation,
// is validated before any cache work, and is part of the cache key —
// uniform and machine responses for one program never alias, while the
// default and an explicit "uniform" share one entry.
func TestAllocOption(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := testProgram(7)

	resp, body := post(t, ts, PlaceRequest{IR: src, Alloc: "bogus", Args: []int64{5}})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown alloc mode") {
		t.Fatalf("unknown alloc mode: status %d body %s", resp.StatusCode, body)
	}

	resp1, body1 := post(t, ts, PlaceRequest{IR: src, Args: []int64{5}})
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("default alloc: status %d: %s", resp1.StatusCode, body1)
	}
	// An explicit "uniform" is the default spelled out: same cache
	// entry, same bytes.
	resp2, body2 := post(t, ts, PlaceRequest{IR: src, Alloc: "uniform", Args: []int64{5}})
	if c := resp2.Header.Get("X-Cache"); c != cacheProgram {
		t.Errorf("explicit uniform X-Cache = %q, want %q", c, cacheProgram)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("explicit uniform response differs from default")
	}

	// Machine mode is a distinct key: a fresh pipeline run, then a hit
	// on resubmission, and still the same computed placement totals for
	// this spill-free program family or not — the response just has to
	// be deterministic.
	resp3, body3 := post(t, ts, PlaceRequest{IR: src, Alloc: "machine", Args: []int64{5}})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("machine alloc: status %d: %s", resp3.StatusCode, body3)
	}
	if c := resp3.Header.Get("X-Cache"); c != cacheMiss {
		t.Errorf("first machine-alloc submission X-Cache = %q, want %q", c, cacheMiss)
	}
	resp4, body4 := post(t, ts, PlaceRequest{IR: src, Alloc: "machine", Args: []int64{5}})
	if c := resp4.Header.Get("X-Cache"); c != cacheProgram {
		t.Errorf("machine-alloc resubmission X-Cache = %q, want %q", c, cacheProgram)
	}
	if !bytes.Equal(body3, body4) {
		t.Errorf("machine-alloc resubmission differs")
	}

	// Run mode: machine-priced allocation may move spill code but must
	// never change the computed value.
	var uni, mach PlaceResponse
	ru, bu := post(t, ts, PlaceRequest{IR: src, Args: []int64{5}, Run: true})
	rm, bm := post(t, ts, PlaceRequest{IR: src, Alloc: "machine", Args: []int64{5}, Run: true})
	if ru.StatusCode != http.StatusOK || rm.StatusCode != http.StatusOK {
		t.Fatalf("run statuses %d/%d: %s %s", ru.StatusCode, rm.StatusCode, bu, bm)
	}
	if err := json.Unmarshal(bu, &uni); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bm, &mach); err != nil {
		t.Fatal(err)
	}
	if uni.Run == nil || mach.Run == nil || uni.Run.Value != mach.Run.Value {
		t.Errorf("machine alloc changed the computed value: %+v vs %+v", uni.Run, mach.Run)
	}
}
