package server

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// benchServeSmall runs the real in-process sweep once at test scale.
func benchServeSmall(t *testing.T) *bench.ServeBench {
	t.Helper()
	b, err := Bench(8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServeGatePassesOnIdenticalSweep(t *testing.T) {
	b := benchServeSmall(t)
	// Speedup floors are host-dependent; the identity comparison is
	// about the deterministic counters, so clamp the ratio checks out
	// of the way for this case.
	if b.CachedSpeedup < 5 {
		t.Skipf("host too noisy for the 5x floor in a unit test (%.2fx)", b.CachedSpeedup)
	}
	if findings := bench.CompareServe(b, b, 15); len(findings) != 0 {
		t.Fatalf("identical sweep produced findings: %v", findings)
	}
}

func TestServeGateCountersAreDeterministic(t *testing.T) {
	b := benchServeSmall(t)
	if b.ProgramHits != int64(b.Distinct*b.Dups) {
		t.Errorf("program hits %d, want %d", b.ProgramHits, b.Distinct*b.Dups)
	}
	if b.FunctionHits != int64(b.Functions) {
		t.Errorf("function hits %d, want %d", b.FunctionHits, b.Functions)
	}
	if b.Requests != b.Distinct*(2+b.Dups) {
		t.Errorf("requests %d, want %d", b.Requests, b.Distinct*(2+b.Dups))
	}
}

func TestServeGateCatchesInjectedRegression(t *testing.T) {
	fresh := benchServeSmall(t)
	committed := *fresh
	bench.InjectServeRegression(fresh, 500)
	findings := bench.CompareServe(&committed, fresh, 15)
	if len(findings) == 0 {
		t.Fatal("gate passed an injected 500% regression")
	}
	found := false
	for _, f := range findings {
		if strings.Contains(f, "regressed") || strings.Contains(f, "floor") {
			found = true
		}
	}
	if !found {
		t.Errorf("no speedup finding in %v", findings)
	}
}

func TestServeGateCatchesBrokenCaching(t *testing.T) {
	b := benchServeSmall(t)
	committed := *b

	broken := *b
	broken.ProgramHits = 0
	if findings := bench.CompareServe(&committed, &broken, 15); !containsSubstr(findings, "program-level caching broke") {
		t.Errorf("zero program hits not flagged: %v", findings)
	}

	broken = *b
	broken.FunctionHits = 0
	if findings := bench.CompareServe(&committed, &broken, 15); !containsSubstr(findings, "function-level caching broke") {
		t.Errorf("zero function hits not flagged: %v", findings)
	}

	broken = *b
	broken.AnalysisLenMax = broken.AnalysisBudget * 100
	if findings := bench.CompareServe(&committed, &broken, 15); !containsSubstr(findings, "eviction policy stopped bounding") {
		t.Errorf("unbounded analysis cache not flagged: %v", findings)
	}

	broken = *b
	broken.AnalysisDrops = 0
	broken.Functions = broken.AnalysisBudget * 2
	broken.FunctionHits = int64(broken.Functions)
	if findings := bench.CompareServe(&committed, &broken, 15); !containsSubstr(findings, "eviction never ran") {
		t.Errorf("zero drops not flagged: %v", findings)
	}
}

func TestServeGateCatchesSuiteMismatch(t *testing.T) {
	b := benchServeSmall(t)
	committed := *b
	committed.Distinct++
	findings := bench.CompareServe(&committed, b, 15)
	if !containsSubstr(findings, "regenerate BENCH_serve.json") {
		t.Errorf("sweep-shape mismatch not flagged: %v", findings)
	}
}

func containsSubstr(findings []string, substr string) bool {
	for _, f := range findings {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}
