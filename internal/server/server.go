// Package server implements spill placement as a service: an
// HTTP/JSON front end over the spillopt pipeline. POST /v1/place
// accepts a textual-IR program, runs profile → allocate → place →
// report, and returns per-function placements with machine-priced
// overhead breakdowns. Results are content-cached at two levels
// (whole program and single function, see internal/contentcache), the
// shared analysis cache is bounded by an LRU eviction policy, and
// /metrics exposes every live counter. /healthz is a benchdiff-style
// self-check: it pushes a canned program through the real pipeline
// and reports invariant violations as findings.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"maps"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/contentcache"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/vm"
)

// Config sizes the service's limits and caches. Zero fields take the
// defaults documented on each field.
type Config struct {
	// MaxBodyBytes caps the request body; larger submissions get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds one /v1/place request end to end (503 on
	// expiry). Default 15s; negative disables.
	RequestTimeout time.Duration
	// MaxVMSteps bounds every VM execution (profiling and runs) so a
	// runaway submission costs bounded CPU. Default 1<<26; negative
	// uses the VM's own (much larger) default.
	MaxVMSteps int64
	// Parallelism is the per-request worker pool for per-function
	// work. Default 1: concurrent requests provide the parallelism,
	// and an oversubscribed pool per request would fight them.
	Parallelism int

	// ProgramCacheEntries/Bytes bound the program-level result cache
	// (canonical program → response bytes). Defaults 4096 / 256 MiB.
	ProgramCacheEntries int
	ProgramCacheBytes   int64
	// FunctionCacheEntries/Bytes bound the function-level report cache.
	// Defaults 65536 / 64 MiB.
	FunctionCacheEntries int
	FunctionCacheBytes   int64
	// AnalysisBudget bounds the shared analysis.Cache: an LRU over
	// function handles drops the least recently placed function's
	// analyses once more than this many are retained. Default 512.
	AnalysisBudget int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxVMSteps == 0 {
		c.MaxVMSteps = 1 << 26
	} else if c.MaxVMSteps < 0 {
		c.MaxVMSteps = 0
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.ProgramCacheEntries == 0 {
		c.ProgramCacheEntries = 4096
	}
	if c.ProgramCacheBytes == 0 {
		c.ProgramCacheBytes = 256 << 20
	}
	if c.FunctionCacheEntries == 0 {
		c.FunctionCacheEntries = 65536
	}
	if c.FunctionCacheBytes == 0 {
		c.FunctionCacheBytes = 64 << 20
	}
	if c.AnalysisBudget == 0 {
		c.AnalysisBudget = 512
	}
	return c
}

// PlaceRequest is the /v1/place request body.
type PlaceRequest struct {
	// IR is the program in the textual IR format (README syntax).
	IR string `json:"ir"`
	// Machine names a machine cost preset (default "classic", the
	// paper's unit-cost model; see spillopt.Machines).
	Machine string `json:"machine,omitempty"`
	// Strategy names a placement strategy (default "hierarchical-jump")
	// or "best": price every strategy's placement per function and
	// apply the cheapest overall.
	Strategy string `json:"strategy,omitempty"`
	// Alloc names the allocation spill-pricing mode (default "uniform",
	// the paper's unit-weight spill costs; "machine" prices each spill
	// candidate by the preset's store/load latencies). Allocation shapes
	// every placement downstream, so the mode is part of both cache
	// keys.
	Alloc string `json:"alloc,omitempty"`
	// Args are the profiling (and, with Run, execution) arguments.
	Args []int64 `json:"args,omitempty"`
	// Run additionally executes the placed program and reports the
	// measured result.
	Run bool `json:"run,omitempty"`
	// Engine names the VM engine executions use (default "bytecode";
	// "regcode" and "tree" are the alternatives). The engines are
	// parity-tested to identical results, so the option only changes
	// how fast run mode executes.
	Engine string `json:"engine,omitempty"`
	// Emit additionally returns the placed program's IR text.
	Emit bool `json:"emit,omitempty"`
	// Tier runs the tiered pipeline instead of profile-then-place: the
	// program is placed from static estimates, tier 0 executes under a
	// step quantum with edge profiling, and at the quantum boundary the
	// functions are re-aligned and re-placed from the measured weights
	// before tier 1 finishes the run. Implies Run (tiering is an
	// execution-time optimization; Args are the execution arguments),
	// and the response's function reports describe the final tier-1
	// placement.
	Tier bool `json:"tier,omitempty"`
	// Quantum overrides the tier-0 step quantum (Tier only; 0 means the
	// pipeline default).
	Quantum int64 `json:"quantum,omitempty"`
}

// FunctionEntry is one function's placement report plus the content
// hash the function-level cache keys on.
type FunctionEntry struct {
	Hash string `json:"hash"`
	spillopt.FunctionReport
}

// RunResult reports a measured execution of the placed program.
type RunResult struct {
	Value    int64 `json:"value"`
	Instrs   int64 `json:"instrs"`
	Overhead int64 `json:"overhead"`
	Cost     int64 `json:"cost"`
}

// PlaceResponse is the /v1/place success body.
type PlaceResponse struct {
	Machine  string `json:"machine"`
	Strategy string `json:"strategy"`
	// StrategyCosts (strategy=best only) is each strategy's modeled
	// total cost over all functions.
	StrategyCosts map[string]int64 `json:"strategy_costs,omitempty"`
	Functions     []FunctionEntry  `json:"functions"`
	TotalOverhead int64            `json:"total_overhead"`
	TotalCost     int64            `json:"total_cost"`
	Run           *RunResult       `json:"run,omitempty"`
	Text          string           `json:"text,omitempty"`
}

// Cache outcomes reported in the X-Cache response header. Bodies are
// byte-identical across outcomes, so caching never changes a result.
const (
	cacheMiss     = "miss"
	cacheProgram  = "program"
	cacheFunction = "function"
)

// Server is the service state: the two content caches, the bounded
// shared analysis cache, and the metrics. It has no background
// goroutines; lifecycle is the HTTP server's (see cmd/spillserve).
type Server struct {
	cfg Config

	// ac is shared across every request's pipeline; analysisLRU is the
	// eviction policy bounding it — each finished request registers its
	// functions, and evicted functions drop their analysis handles.
	ac          *analysis.Cache
	analysisLRU *contentcache.Cache[*ir.Func, struct{}]

	progCache *contentcache.Cache[string, []byte]
	funcCache *contentcache.Cache[funcKey, FunctionEntry]

	metrics *metrics

	// canned is the healthz self-check corpus: a seeded generated
	// program exercised through the real pipeline and caches.
	canned     string
	cannedArgs []int64
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, ac: analysis.NewCache(), metrics: newMetrics()}
	s.analysisLRU = contentcache.New(cfg.AnalysisBudget, 0, func(f *ir.Func, _ struct{}) { s.ac.Drop(f) })
	s.progCache = contentcache.New[string, []byte](cfg.ProgramCacheEntries, cfg.ProgramCacheBytes, nil)
	s.funcCache = contentcache.New[funcKey, FunctionEntry](cfg.FunctionCacheEntries, cfg.FunctionCacheBytes, nil)
	s.canned = irtext.Print(irgen.Generate(1, irgen.Small()))
	s.cannedArgs = []int64{5}
	return s
}

// Handler returns the service's routes: POST /v1/place, GET /metrics,
// GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	var place http.Handler = http.HandlerFunc(s.handlePlace)
	if s.cfg.RequestTimeout > 0 {
		place = http.TimeoutHandler(place, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	}
	mux.Handle("POST /v1/place", place)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.begin()
	status, fromCache := s.servePlace(w, r)
	s.metrics.done(status, fromCache, time.Since(start))
}

func (s *Server) servePlace(w http.ResponseWriter, r *http.Request) (status int, fromCache bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return http.StatusRequestEntityTooLarge, false
		}
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return http.StatusBadRequest, false
	}
	var req PlaceRequest
	if err := json.Unmarshal(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return http.StatusBadRequest, false
	}
	if strings.TrimSpace(req.IR) == "" {
		writeError(w, http.StatusBadRequest, "empty ir")
		return http.StatusBadRequest, false
	}
	o := s.place(&req)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", o.cache)
	w.WriteHeader(o.status)
	w.Write(o.body)
	return o.status, o.cache != cacheMiss
}

// placeOutcome is one placement's result, independent of HTTP
// plumbing so the healthz self-check can reuse the exact request path.
type placeOutcome struct {
	status int
	body   []byte
	cache  string
}

func fail(status int, err error) placeOutcome {
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	return placeOutcome{status: status, body: body, cache: cacheMiss}
}

// place runs one placement request through the caches and, on miss,
// the full pipeline. Response bodies are deterministic functions of
// the request, which is what makes content-addressed caching sound:
// a hit returns exactly the bytes a fresh run would produce.
func (s *Server) place(req *PlaceRequest) placeOutcome {
	if req.Machine == "" {
		req.Machine = "classic"
	}
	if req.Strategy == "" {
		req.Strategy = "hierarchical-jump"
	}
	if req.Alloc == "" {
		req.Alloc = "uniform"
	}
	allocMachine, err := spillopt.ParseAllocMode(req.Alloc)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	// Tiering is an execution-time optimization: it implies Run, and
	// the normalization happens before cache keying so {tier} and
	// {tier, run} alias one entry.
	engineGiven := req.Engine != ""
	if req.Tier {
		req.Run = true
	}
	if req.Engine == "" {
		req.Engine = "bytecode"
	}
	if _, err := vm.ParseEngine(req.Engine); err != nil {
		return fail(http.StatusBadRequest, err)
	}
	if !req.Tier && req.Quantum != 0 {
		return fail(http.StatusBadRequest, errors.New("quantum requires tier"))
	}
	if req.Run {
		// Counted at admission, not execution, so cache hits show up in
		// the per-engine totals too. Tiered runs without an explicit
		// engine execute on the tiered pipeline's native regcode.
		switch {
		case !engineGiven && req.Tier:
			s.metrics.engineRun("regcode")
		default:
			s.metrics.engineRun(req.Engine)
		}
	}
	if req.Tier {
		// Counted at admission too, so cached tiered responses still
		// show up in the tier totals.
		s.metrics.tierAdmitted()
	}
	best := req.Strategy == "best"
	var strat spillopt.Strategy
	if !best {
		var err error
		if strat, err = spillopt.ParseStrategy(req.Strategy); err != nil {
			return fail(http.StatusBadRequest, err)
		}
	}
	// Program-level cache, raw tier: keyed on the submitted text
	// verbatim, so an exact resubmission skips parsing entirely.
	rawKey := programKey(req.IR, req)
	if body, ok := s.progCache.Get(rawKey); ok {
		return placeOutcome{status: http.StatusOK, body: body, cache: cacheProgram}
	}

	prog, err := spillopt.ParseProgram(req.IR)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	if err := prog.UseMachine(req.Machine); err != nil {
		return fail(http.StatusBadRequest, err)
	}
	if allocMachine {
		// Validated above, so a failure here is ordering, not input.
		if err := prog.UseMachineAllocation(); err != nil {
			return fail(http.StatusInternalServerError, err)
		}
	}

	// Canonical tier: keyed on the re-printed text, so formatting
	// variants of the same program share one entry. For already
	// canonical submissions both tiers are one entry.
	pkey := programKey(prog.Text(), req)
	if pkey != rawKey {
		if body, ok := s.progCache.Get(pkey); ok {
			s.progCache.Put(rawKey, body, int64(len(body)))
			return placeOutcome{status: http.StatusOK, body: body, cache: cacheProgram}
		}
	}

	prog.UseAnalysisCache(s.ac)
	prog.Parallelism = s.cfg.Parallelism
	prog.MaxSteps = s.cfg.MaxVMSteps
	if engineGiven || !req.Tier {
		// Without an explicit engine, tiered runs stay on the tiered
		// pipeline's native regcode engine.
		if err := prog.UseEngine(req.Engine); err != nil {
			return fail(http.StatusBadRequest, err)
		}
	}
	if req.Tier {
		// The tiered pipeline starts from static estimates; the measured
		// profile arrives at the tier boundary during Run.
		if err := prog.UseTiering(req.Quantum); err != nil {
			return fail(http.StatusInternalServerError, err)
		}
	} else if err := prog.Profile(req.Args...); err != nil {
		return fail(http.StatusBadRequest, err)
	}

	// Function hashes are taken after Profile (the digest must cover
	// the edge weights placement optimizes) and before Allocate (which
	// rewrites the body). See funcHash.
	funcs := prog.IRFuncs()
	hashes := make([]string, len(funcs))
	for i, f := range funcs {
		hashes[i] = funcHash(f)
	}

	// Function-level cache: a program the service never saw can still
	// be assembled entirely from per-function results (same bodies and
	// weights under another definition order, a superset program, ...).
	// Run/emit/best responses carry whole-program state, so only plain
	// placements use this level.
	cacheable := !best && !req.Run && !req.Emit
	if cacheable {
		if entries, ok := s.lookupFunctions(hashes, req); ok {
			body, o := s.marshal(assemble(req, req.Strategy, entries, nil))
			if o.status != http.StatusOK {
				return o
			}
			s.putProgram(pkey, rawKey, body)
			return placeOutcome{status: http.StatusOK, body: body, cache: cacheFunction}
		}
	}

	// Full pipeline. However it exits, register the functions with the
	// eviction policy: any analysis handles created below stay bounded.
	defer func() {
		for _, f := range funcs {
			s.analysisLRU.Put(f, struct{}{}, 1)
		}
		s.metrics.placed(len(funcs), s.ac.Len())
	}()
	if err := prog.Allocate(); err != nil {
		return fail(http.StatusBadRequest, err)
	}
	stratName := req.Strategy
	var stratCosts map[string]int64
	if best {
		if stratName, stratCosts, err = s.pickBest(prog); err != nil {
			return fail(http.StatusBadRequest, err)
		}
		if strat, err = spillopt.ParseStrategy(stratName); err != nil {
			return fail(http.StatusInternalServerError, err)
		}
	}
	// Input-driven failures end at Allocate: placement or reporting
	// errors on an allocated program are pipeline invariant violations.
	// Under tiering Place only records the strategy; the placement
	// itself happens inside Run at the tier boundary, so Run must
	// precede Report for the reports to describe the final placement.
	if err := prog.Place(strat); err != nil {
		return fail(http.StatusInternalServerError, err)
	}
	var runRes *spillopt.Result
	if req.Run {
		res, err := prog.Run(req.Args...)
		if err != nil {
			return fail(http.StatusBadRequest, err)
		}
		runRes = res
	}
	if tr := prog.TierReport(); tr != nil {
		s.metrics.tierRun(tr.Boundary, tr.Replaced)
	}
	reports, err := prog.Report()
	if err != nil {
		return fail(http.StatusInternalServerError, err)
	}
	entries := make([]FunctionEntry, len(reports))
	for i, r := range reports {
		entries[i] = FunctionEntry{Hash: hashes[i], FunctionReport: r}
	}
	resp := assemble(req, stratName, entries, stratCosts)
	if runRes != nil {
		resp.Run = &RunResult{Value: runRes.Value, Instrs: runRes.Instrs, Overhead: runRes.Overhead, Cost: runRes.Cost}
	}
	if req.Emit {
		resp.Text = prog.Text()
	}
	body, o := s.marshal(resp)
	if o.status != http.StatusOK {
		return o
	}
	if cacheable {
		for i := range entries {
			s.funcCache.Put(funcKey{hashes[i], req.Machine, req.Strategy, req.Alloc}, entries[i], entrySize(&entries[i]))
		}
	}
	s.putProgram(pkey, rawKey, body)
	return placeOutcome{status: http.StatusOK, body: body, cache: cacheMiss}
}

// putProgram stores a response under its canonical program key and,
// when the submission wasn't already canonical, the raw-text key too.
func (s *Server) putProgram(pkey, rawKey string, body []byte) {
	s.progCache.Put(pkey, body, int64(len(body)))
	if rawKey != pkey {
		s.progCache.Put(rawKey, body, int64(len(body)))
	}
}

// pickBest prices every strategy's placement per function (without
// mutating the program) and returns the name with the lowest total,
// plus all totals. Per-function winners feed the strategy_wins
// metric; functions no strategy can improve (all costs zero) don't
// count as wins. Ties go to declaration order, matching the
// evaluation tools.
func (s *Server) pickBest(prog *spillopt.Program) (string, map[string]int64, error) {
	names := spillopt.Strategies()
	totals := make(map[string]int64, len(names))
	for _, fn := range prog.Functions() {
		bestName, bestCost, maxCost := "", int64(0), int64(0)
		for _, sn := range names {
			st, err := spillopt.ParseStrategy(sn)
			if err != nil {
				return "", nil, err
			}
			c, err := prog.PlacementCost(fn, st)
			if err != nil {
				return "", nil, fmt.Errorf("pricing %s under %s: %w", fn, sn, err)
			}
			totals[sn] += c
			if bestName == "" || c < bestCost {
				bestName, bestCost = sn, c
			}
			if c > maxCost {
				maxCost = c
			}
		}
		if maxCost > 0 {
			s.metrics.win(bestName)
		}
	}
	winner, winnerCost := "", int64(0)
	for _, sn := range names {
		if winner == "" || totals[sn] < winnerCost {
			winner, winnerCost = sn, totals[sn]
		}
	}
	return winner, totals, nil
}

func (s *Server) lookupFunctions(hashes []string, req *PlaceRequest) ([]FunctionEntry, bool) {
	entries := make([]FunctionEntry, len(hashes))
	for i, h := range hashes {
		e, ok := s.funcCache.Get(funcKey{hash: h, machine: req.Machine, strategy: req.Strategy, alloc: req.Alloc})
		if !ok {
			return nil, false
		}
		entries[i] = e
	}
	return entries, true
}

func assemble(req *PlaceRequest, stratName string, entries []FunctionEntry, costs map[string]int64) *PlaceResponse {
	resp := &PlaceResponse{
		Machine:       req.Machine,
		Strategy:      stratName,
		StrategyCosts: costs,
		Functions:     entries,
	}
	for i := range entries {
		resp.TotalOverhead += entries[i].Overhead
		resp.TotalCost += entries[i].Cost
	}
	return resp
}

func (s *Server) marshal(resp *PlaceResponse) ([]byte, placeOutcome) {
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fail(http.StatusInternalServerError, err)
	}
	return body, placeOutcome{status: http.StatusOK}
}

// entrySize approximates a FunctionEntry's in-memory footprint for
// the byte budget; exactness doesn't matter, monotonicity does.
func entrySize(e *FunctionEntry) int64 {
	return int64(len(e.Hash)+len(e.Function)) + 120
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot())
}

func (s *Server) snapshot() Snapshot {
	var sn Snapshot
	m := s.metrics
	m.mu.Lock()
	sn.UptimeSec = time.Since(m.start).Seconds()
	sn.Requests = m.requests
	sn.Latency.Cold = m.cold.snapshot()
	sn.Latency.Cached = m.cached.snapshot()
	sn.StrategyWins = maps.Clone(m.wins)
	sn.EngineRuns = maps.Clone(m.engineRuns)
	sn.Tier = m.tier
	sn.PlacedFunctions = m.placedFunctions
	lenMax := m.analysisLenMax
	m.mu.Unlock()
	sn.ProgramCache = s.progCache.Stats()
	sn.FunctionCache = s.funcCache.Stats()
	hits, misses := s.ac.Stats()
	sn.AnalysisCache = AnalysisCacheStats{
		Len:    s.ac.Len(),
		LenMax: lenMax,
		Budget: s.cfg.AnalysisBudget,
		Hits:   hits,
		Misses: misses,
		Drops:  s.ac.Drops(),
	}
	return sn
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	findings := s.SelfCheck()
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	if len(findings) > 0 {
		status = http.StatusInternalServerError
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		OK       bool     `json:"ok"`
		Findings []string `json:"findings,omitempty"`
	}{OK: len(findings) == 0, Findings: findings})
}

// SelfCheck is the healthz body: it submits a canned generated
// program through the real request path (pipeline and caches) and
// cross-checks service invariants, returning violations as findings —
// empty means healthy. The checks: the pipeline succeeds; identical
// resubmission is byte-identical and a program-cache hit; and the
// paper's core claim holds — the hierarchical placement's priced cost
// never exceeds the entry/exit baseline's.
func (s *Server) SelfCheck() []string {
	var findings []string
	hj := PlaceRequest{IR: s.canned, Strategy: "hierarchical-jump", Args: s.cannedArgs}
	o1 := s.place(&hj)
	hj2 := hj
	o2 := s.place(&hj2)
	switch {
	case o1.status != http.StatusOK:
		findings = append(findings, fmt.Sprintf("canned placement failed: status %d: %s", o1.status, o1.body))
	case o2.status != http.StatusOK:
		findings = append(findings, fmt.Sprintf("canned resubmission failed: status %d: %s", o2.status, o2.body))
	default:
		if !bytes.Equal(o1.body, o2.body) {
			findings = append(findings, "identical resubmission produced different bytes")
		}
		if o2.cache != cacheProgram {
			findings = append(findings, fmt.Sprintf("identical resubmission missed the program cache (%s)", o2.cache))
		}
	}
	ee := PlaceRequest{IR: s.canned, Strategy: "entry-exit", Args: s.cannedArgs}
	o3 := s.place(&ee)
	if o3.status != http.StatusOK {
		findings = append(findings, fmt.Sprintf("entry-exit baseline failed: status %d: %s", o3.status, o3.body))
	} else if o1.status == http.StatusOK {
		var rh, re PlaceResponse
		if err := json.Unmarshal(o1.body, &rh); err != nil {
			findings = append(findings, "hierarchical response does not decode: "+err.Error())
		} else if err := json.Unmarshal(o3.body, &re); err != nil {
			findings = append(findings, "entry-exit response does not decode: "+err.Error())
		} else if rh.TotalCost > re.TotalCost {
			findings = append(findings, fmt.Sprintf(
				"hierarchical cost %d exceeds entry-exit baseline %d", rh.TotalCost, re.TotalCost))
		}
	}
	return findings
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
