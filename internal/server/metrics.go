package server

import (
	"sync"
	"time"

	"repro/internal/contentcache"
)

// histBuckets is the number of exponential latency buckets: bucket i
// counts requests with latency <= 1µs<<i, so the range spans 1µs to
// ~131ms with one overflow bucket past the end.
const histBuckets = 18

// histogram is a fixed-bucket exponential latency histogram. It is
// not safe for concurrent use on its own; metrics serializes access.
type histogram struct {
	count    int64
	sumNs    int64
	buckets  [histBuckets]int64
	overflow int64
}

func (h *histogram) observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.count++
	h.sumNs += ns
	bound := int64(1000)
	for i := 0; i < histBuckets; i++ {
		if ns <= bound {
			h.buckets[i]++
			return
		}
		bound <<= 1
	}
	h.overflow++
}

// HistogramBucket is one latency bucket in a snapshot.
type HistogramBucket struct {
	LeNs  int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the serialized form of a latency histogram.
// Buckets with zero counts are elided; the overflow bucket (latency
// beyond the largest bound) reports LeNs -1.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	AvgNs   int64             `json:"avg_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, SumNs: h.sumNs}
	if h.count > 0 {
		s.AvgNs = h.sumNs / h.count
	}
	bound := int64(1000)
	for i := 0; i < histBuckets; i++ {
		if h.buckets[i] > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{LeNs: bound, Count: h.buckets[i]})
		}
		bound <<= 1
	}
	if h.overflow > 0 {
		s.Buckets = append(s.Buckets, HistogramBucket{LeNs: -1, Count: h.overflow})
	}
	return s
}

// RequestCounters counts requests by outcome.
type RequestCounters struct {
	Total      int64 `json:"total"`
	OK         int64 `json:"ok"`
	BadRequest int64 `json:"bad_request"`
	TooLarge   int64 `json:"too_large"`
	Errors     int64 `json:"errors"`
	InFlight   int64 `json:"in_flight"`
}

// AnalysisCacheStats reports the shared analysis cache and the
// eviction policy bounding it.
type AnalysisCacheStats struct {
	// Len is the number of per-function analysis handles currently
	// retained; LenMax its high-water mark over the process lifetime.
	// The eviction policy keeps Len within Budget plus the functions
	// of requests still in flight.
	Len    int `json:"len"`
	LenMax int `json:"len_max"`
	Budget int `json:"budget"`
	// Hits/Misses count per-function lookups inside the pipeline;
	// Drops counts handles removed by the eviction policy.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Drops  int `json:"drops"`
}

// Snapshot is the /metrics payload: every live counter of the
// service in one deterministic JSON document.
type Snapshot struct {
	UptimeSec     float64            `json:"uptime_sec"`
	Requests      RequestCounters    `json:"requests"`
	ProgramCache  contentcache.Stats `json:"program_cache"`
	FunctionCache contentcache.Stats `json:"function_cache"`
	AnalysisCache AnalysisCacheStats `json:"analysis_cache"`
	Latency       struct {
		Cold   HistogramSnapshot `json:"cold"`
		Cached HistogramSnapshot `json:"cached"`
	} `json:"latency"`
	// StrategyWins counts, per strategy, how many functions it won
	// (lowest modeled cost) across strategy=best placements.
	StrategyWins    map[string]int64 `json:"strategy_wins"`
	PlacedFunctions int64            `json:"placed_functions"`
	// EngineRuns counts run-mode requests per VM engine name, cache
	// hits included.
	EngineRuns map[string]int64 `json:"engine_runs"`
	// Tier counts the tiered pipeline's activity: admitted tier
	// requests (cache hits included), executed tiered runs, runs whose
	// tier-0 quantum expired (a boundary re-placement happened), and
	// functions re-placed at those boundaries.
	Tier TierCounters `json:"tier"`
}

// TierCounters are the tiered pipeline's service counters.
type TierCounters struct {
	Requests   int64 `json:"requests"`
	Runs       int64 `json:"runs"`
	Boundaries int64 `json:"boundaries"`
	Replaced   int64 `json:"replaced"`
}

// metrics is the server's mutable counter state.
type metrics struct {
	mu              sync.Mutex
	start           time.Time
	requests        RequestCounters
	cold, cached    histogram
	wins            map[string]int64
	engineRuns      map[string]int64
	tier            TierCounters
	analysisLenMax  int
	placedFunctions int64
}

func newMetrics() *metrics {
	return &metrics{
		start:      time.Now(),
		wins:       make(map[string]int64),
		engineRuns: make(map[string]int64),
	}
}

func (m *metrics) begin() {
	m.mu.Lock()
	m.requests.Total++
	m.requests.InFlight++
	m.mu.Unlock()
}

// done records a finished request: its HTTP status, whether it was
// served from a cache (program- or function-level), and its latency.
func (m *metrics) done(status int, fromCache bool, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests.InFlight--
	switch {
	case status >= 200 && status < 300:
		m.requests.OK++
		if fromCache {
			m.cached.observe(d)
		} else {
			m.cold.observe(d)
		}
	case status == 413:
		m.requests.TooLarge++
	case status >= 400 && status < 500:
		m.requests.BadRequest++
	default:
		m.requests.Errors++
	}
}

func (m *metrics) win(strategy string) {
	m.mu.Lock()
	m.wins[strategy]++
	m.mu.Unlock()
}

func (m *metrics) engineRun(engine string) {
	m.mu.Lock()
	m.engineRuns[engine]++
	m.mu.Unlock()
}

// tierAdmitted counts a tier request at admission, so cached tiered
// responses appear in the totals alongside executed ones.
func (m *metrics) tierAdmitted() {
	m.mu.Lock()
	m.tier.Requests++
	m.mu.Unlock()
}

// tierRun records an executed tiered run and its boundary outcome.
func (m *metrics) tierRun(boundary bool, replaced int) {
	m.mu.Lock()
	m.tier.Runs++
	if boundary {
		m.tier.Boundaries++
	}
	m.tier.Replaced += int64(replaced)
	m.mu.Unlock()
}

func (m *metrics) placed(functions int, analysisLen int) {
	m.mu.Lock()
	m.placedFunctions += int64(functions)
	if analysisLen > m.analysisLenMax {
		m.analysisLenMax = analysisLen
	}
	m.mu.Unlock()
}
