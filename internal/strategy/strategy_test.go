package strategy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/vm"
)

// buildDemo constructs a profiled, allocated two-function program with
// a cold call so every strategy has real work to do.
func buildDemo(t *testing.T) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()

	leaf := ir.NewBuilder("leaf", 1)
	leaf.Block("entry")
	two := leaf.Const(2)
	r := leaf.Bin(ir.OpMul, leaf.F.Params[0], two)
	leaf.Ret(r)
	prog.Add(leaf.Finish())

	bu := ir.NewBuilder("work", 1)
	bu.Block("entry")
	acc := bu.F.NewVirt()
	bu.Mov(acc, bu.F.Params[0])
	mask := bu.Const(240)
	c := bu.Bin(ir.OpAnd, acc, mask)
	cold := bu.F.NewBlock("cold")
	join := bu.F.NewBlock("join")
	bu.Br(c, join, cold, 0, 0)
	bu.SetCurrent(cold)
	one := bu.Const(1)
	live := bu.Bin(ir.OpAdd, acc, one)
	res := bu.F.NewVirt()
	bu.Call(res, "leaf", acc)
	bu.BinInto(ir.OpAdd, acc, res, live)
	bu.Jmp(join, 0)
	bu.SetCurrent(join)
	bu.Ret(acc)
	prog.Add(bu.Finish())

	main := ir.NewBuilder("main", 1)
	main.Block("entry")
	total := main.F.NewVirt()
	i := main.F.NewVirt()
	main.ConstInto(total, 0)
	main.ConstInto(i, 0)
	loop := main.F.NewBlock("loop")
	exit := main.F.NewBlock("exit")
	main.Jmp(loop, 0)
	main.SetCurrent(loop)
	r2 := main.F.NewVirt()
	main.Call(r2, "work", i)
	main.BinInto(ir.OpAdd, total, total, r2)
	one2 := main.Const(1)
	main.BinInto(ir.OpAdd, i, i, one2)
	c2 := main.Bin(ir.OpCmpLT, i, main.F.Params[0])
	main.Br(c2, loop, exit, 0, 0)
	main.SetCurrent(exit)
	main.Ret(total)
	prog.Add(main.Finish())
	prog.Main = "main"

	if err := ir.VerifyProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := profile.Collect(prog, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPlaceProgramAllStrategies(t *testing.T) {
	base := buildDemo(t)
	var ref int64
	for i, s := range All {
		clone := base.Clone()
		if err := PlaceProgram(clone, s, 1); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if err := ir.VerifyProgram(clone); err != nil {
			t.Fatalf("%v: placed program invalid: %v", s, err)
		}
		m := vm.New(clone, vm.Config{Machine: machine.PARISC()})
		v, err := m.Run(100)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if i == 0 {
			ref = v
		} else if v != ref {
			t.Errorf("%v computes %d, want %d", s, v, ref)
		}
	}
}

func TestComputeUnknownStrategy(t *testing.T) {
	base := buildDemo(t)
	if _, err := Compute(base.Func("work"), Strategy(99)); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestComputeWithModelOverride(t *testing.T) {
	base := buildDemo(t)
	f := base.Func("work")
	if len(f.UsedCalleeSaved) == 0 {
		t.Skip("work does not use callee-saved registers under this allocation")
	}
	real, err := Compute(f, HierarchicalExec)
	if err != nil {
		t.Fatal(err)
	}
	// A model that prefers hot locations must not beat the real model
	// under the real model's costing.
	broken, err := ComputeWithModel(f, HierarchicalExec, hotModel{})
	if err != nil {
		t.Fatal(err)
	}
	rc := core.TotalCost(core.ExecCountModel{}, real)
	bc := core.TotalCost(core.ExecCountModel{}, broken)
	if rc > bc {
		t.Errorf("real-model placement costs %d, broken-model %d; optimal placement beaten", rc, bc)
	}
}

// hotModel inverts the execution count model: cold locations look
// expensive, hot locations look free.
type hotModel struct{}

func (hotModel) LocationCost(k core.CostKind, l core.Location, seed bool) int64 {
	return 1 << 20 / (1 + l.Weight())
}
func (hotModel) Name() string { return "broken-hot" }

// TestModelFor: the machine-parameterized model selection — nil falls
// back to the paper's unit models, a machine description yields its
// MachineModel with the right jump-charging flavor, and non-
// hierarchical strategies consume no model on any machine.
func TestModelFor(t *testing.T) {
	d, err := machine.Preset("deep-pipeline")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All {
		if got, want := s.ModelFor(nil), s.Model(); got != want {
			t.Errorf("%s.ModelFor(nil) = %v, want Model() %v", s, got, want)
		}
		if !s.IsHierarchical() {
			if s.ModelFor(d) != nil {
				t.Errorf("%s.ModelFor(machine) should be nil", s)
			}
			continue
		}
		m, ok := s.ModelFor(d).(core.MachineModel)
		if !ok || m.Desc != d {
			t.Fatalf("%s.ModelFor = %v, want MachineModel on %s", s, s.ModelFor(d), d.Name)
		}
		if m.ChargeJumps != (s == HierarchicalJump) {
			t.Errorf("%s: ChargeJumps = %v", s, m.ChargeJumps)
		}
	}
}

// TestPlaceProgramForClassicIdentity: placing on the classic preset is
// byte-identical to placing on the default (nil) machine — the
// machine threading changes nothing on the paper's machine.
func TestPlaceProgramForClassicIdentity(t *testing.T) {
	classic, err := machine.Preset("classic")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All {
		a := buildDemo(t)
		b := a.Clone()
		if err := PlaceProgram(a, s, 1); err != nil {
			t.Fatal(err)
		}
		if err := PlaceProgramFor(b, s, classic, 1, nil); err != nil {
			t.Fatal(err)
		}
		va := vm.New(a, vm.Config{Machine: machine.PARISC()})
		vb := vm.New(b, vm.Config{Machine: classic})
		ra, err := va.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := vb.Run(100)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb || va.Stats.Overhead() != vb.Stats.Overhead() {
			t.Errorf("%s: classic placement diverges from default (val %d/%d, overhead %d/%d)",
				s, ra, rb, va.Stats.Overhead(), vb.Stats.Overhead())
		}
	}
}
