// Package strategy enumerates the callee-saved spill code placement
// techniques the reproduction compares and computes their save/restore
// sets. It is the single dispatch point shared by the public facade
// (spillopt), the evaluation harness (internal/bench), and the
// differential fuzzing oracle (internal/irgen): all three used to
// carry their own copy of this switch, and a strategy added or fixed
// in one place silently diverged from the others.
package strategy

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/shrinkwrap"
)

// Strategy selects a placement technique.
type Strategy int

const (
	// EntryExit saves at procedure entry and restores at every exit
	// (the paper's baseline).
	EntryExit Strategy = iota
	// Shrinkwrap is Chow's original technique: artificial data flow
	// keeps spill code off jump edges.
	Shrinkwrap
	// ShrinkwrapSeed is the paper's modified shrink-wrapping (spill
	// code may sit on jump edges), the hierarchical algorithm's seed.
	ShrinkwrapSeed
	// HierarchicalExec is the paper's algorithm under the execution
	// count cost model (provably optimal under that model).
	HierarchicalExec
	// HierarchicalJump is the paper's algorithm under the jump edge
	// cost model — the configuration the paper evaluates.
	HierarchicalJump
	numStrategies
)

// All lists every strategy in declaration order.
var All = []Strategy{EntryExit, Shrinkwrap, ShrinkwrapSeed, HierarchicalExec, HierarchicalJump}

// Count is the number of strategies.
const Count = int(numStrategies)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case EntryExit:
		return "entry-exit"
	case Shrinkwrap:
		return "shrinkwrap"
	case ShrinkwrapSeed:
		return "shrinkwrap-seed"
	case HierarchicalExec:
		return "hierarchical-exec"
	case HierarchicalJump:
		return "hierarchical-jump"
	}
	return "?"
}

// IsHierarchical reports whether the strategy runs the paper's
// hierarchical traversal (and therefore consumes a cost model).
func (s Strategy) IsHierarchical() bool {
	return s == HierarchicalExec || s == HierarchicalJump
}

// Model returns the cost model the strategy optimizes on the paper's
// machine (unit costs), or nil for the strategies that do not consume
// one.
func (s Strategy) Model() core.CostModel {
	switch s {
	case HierarchicalExec:
		return core.ExecCountModel{}
	case HierarchicalJump:
		return core.JumpEdgeModel{}
	}
	return nil
}

// ModelFor returns the cost model the strategy optimizes on machine d:
// the machine-priced execution count model for HierarchicalExec, the
// machine-priced jump edge model for HierarchicalJump, nil otherwise.
// A nil machine means the paper's unit-cost models (Model).
func (s Strategy) ModelFor(d *machine.Desc) core.CostModel {
	if d == nil {
		return s.Model()
	}
	switch s {
	case HierarchicalExec:
		return core.MachineModel{Desc: d}
	case HierarchicalJump:
		return core.MachineModel{Desc: d, ChargeJumps: true}
	}
	return nil
}

// Compute returns the strategy's save/restore sets for one allocated
// function, building every analysis from scratch. The function is not
// mutated. It is the thin uncached path; callers evaluating several
// strategies (or validating afterwards) should share an analysis.Info
// via ComputeCached or ComputeAll instead.
func Compute(f *ir.Func, s Strategy) ([]*core.Set, error) {
	return ComputeCachedWithModel(f, s, nil, nil)
}

// ComputeWithModel is Compute with the hierarchical strategies' cost
// model overridden when m is non-nil. The differential oracle uses the
// override to prove it can catch a broken model; every production
// caller passes nil and gets the paper's models.
func ComputeWithModel(f *ir.Func, s Strategy, m core.CostModel) ([]*core.Set, error) {
	return ComputeCachedWithModel(f, s, nil, m)
}

// ComputeCached is Compute over the shared analysis layer: liveness,
// dominators, loops, the PST, and the shrink-wrap seed are taken from
// info (built on first use) instead of being rebuilt per call.
func ComputeCached(f *ir.Func, s Strategy, info *analysis.Info) ([]*core.Set, error) {
	return ComputeCachedWithModel(f, s, info, nil)
}

// ComputeCachedWithModel is ComputeCached plus an optional cost model
// override for the hierarchical strategies. A nil info degrades to a
// throwaway analysis build, reproducing the uncached path.
func ComputeCachedWithModel(f *ir.Func, s Strategy, info *analysis.Info, m core.CostModel) ([]*core.Set, error) {
	return compute(f, s, info, nil, m)
}

// ComputeFor is Compute on machine d: the hierarchical strategies
// optimize d's cost surface and Chow's shrink-wrapping reads d's
// jump-edge rule. A nil machine means the paper's unit-cost machine.
func ComputeFor(f *ir.Func, s Strategy, d *machine.Desc) ([]*core.Set, error) {
	return compute(f, s, nil, d, nil)
}

// ComputeCachedFor is ComputeFor over the shared analysis layer. The
// memoized analyses are machine-independent (every machine sweeps over
// the same CFG, liveness, PST, and seed), so one info — and one
// program-level Cache — serves any number of machine descriptions.
func ComputeCachedFor(f *ir.Func, s Strategy, info *analysis.Info, d *machine.Desc) ([]*core.Set, error) {
	return compute(f, s, info, d, nil)
}

// compute is the single dispatch all Compute variants funnel through:
// cached analyses, an optional machine description, and an optional
// cost model override (the override wins over the machine's model for
// the hierarchical strategies; the differential oracle uses it to
// prove it can catch a broken model).
func compute(f *ir.Func, s Strategy, info *analysis.Info, d *machine.Desc, m core.CostModel) ([]*core.Set, error) {
	if info == nil {
		info = analysis.For(f)
	}
	switch s {
	case EntryExit:
		return core.EntryExit(f), nil
	case Shrinkwrap:
		return shrinkwrap.ComputeWith(f, shrinkwrap.Original, shrinkwrap.Inputs{
			Liveness: info.Liveness(),
			Loops:    info.Loops(),
			Busy:     info.BusyBlocks,
			Machine:  d,
		}), nil
	case ShrinkwrapSeed:
		// The memoized sets are shared with the hierarchical seeds, so
		// hand the caller its own top-level slice.
		return append([]*core.Set(nil), info.ShrinkwrapSeed()...), nil
	case HierarchicalExec, HierarchicalJump:
		t, err := info.PST()
		if err != nil {
			return nil, err
		}
		if m == nil {
			m = s.ModelFor(d)
		}
		sets, _, err := core.Hierarchical(f, t, info.ShrinkwrapSeed(), m)
		if err != nil {
			return nil, err
		}
		return sets, nil
	}
	return nil, fmt.Errorf("strategy: unknown strategy %d", int(s))
}

// ComputeAll returns every strategy's save/restore sets for one
// allocated function, indexed by Strategy, building each underlying
// analysis at most once: all five strategies share info's liveness,
// dominators, loops, PST, and shrink-wrap seed. The function is not
// mutated.
func ComputeAll(f *ir.Func, info *analysis.Info) ([Count][]*core.Set, error) {
	var out [Count][]*core.Set
	if info == nil {
		info = analysis.For(f)
	}
	for _, s := range All {
		sets, err := ComputeCached(f, s, info)
		if err != nil {
			return out, fmt.Errorf("%s: %w", s, err)
		}
		out[s] = sets
	}
	return out, nil
}

// Place computes the strategy's sets for f, validates them, and
// applies them (inserting save/restore code and jump blocks).
func Place(f *ir.Func, s Strategy) error {
	return PlaceCached(f, s, nil)
}

// PlaceCached is Place over the shared analysis layer: the placement
// computation and the validation reuse info's analyses, and info is
// invalidated after Apply mutates the function, so no caller can read
// stale results afterwards.
func PlaceCached(f *ir.Func, s Strategy, info *analysis.Info) error {
	return PlaceCachedFor(f, s, info, nil)
}

// PlaceCachedFor is PlaceCached on machine d (nil means the paper's
// unit-cost machine).
func PlaceCachedFor(f *ir.Func, s Strategy, info *analysis.Info, d *machine.Desc) error {
	if info == nil {
		info = analysis.For(f)
	}
	sets, err := ComputeCachedFor(f, s, info, d)
	if err != nil {
		return err
	}
	if err := core.ValidateSetsLive(f, sets, info.Liveness()); err != nil {
		return err
	}
	// Apply mutates f even on failure. The returned delta patches the
	// memoized analyses in place (falling back to full invalidation for
	// unrecognized edits — including the Full delta Apply reports on
	// failure), so no caller can read stale results afterwards.
	delta, err := core.ApplyWithDelta(f, sets)
	info.ApplyDelta(delta)
	return err
}

// PlaceProgram applies the strategy to every function of prog that
// uses callee-saved registers, fanning the independent per-function
// pipelines (PST build, seeding, traversal, validation, apply) across
// a bounded worker pool. parallelism <= 0 means GOMAXPROCS.
func PlaceProgram(prog *ir.Program, s Strategy, parallelism int) error {
	return PlaceProgramCached(prog, s, parallelism, nil)
}

// PlaceProgramCached is PlaceProgram over a shared analysis cache (nil
// degrades to unshared per-function builds). Each worker touches only
// its own function's Info, so a program-wide cache is safe to share
// across the pool.
func PlaceProgramCached(prog *ir.Program, s Strategy, parallelism int, cache *analysis.Cache) error {
	return PlaceProgramFor(prog, s, nil, parallelism, cache)
}

// PlaceProgramFor is PlaceProgramCached on machine d: the strategy
// optimizes (and shrink-wrapping consults) d's cost surface. A nil
// machine means the paper's unit-cost machine.
func PlaceProgramFor(prog *ir.Program, s Strategy, d *machine.Desc, parallelism int, cache *analysis.Cache) error {
	funcs := NeedsPlacement(prog)
	return par.Do(len(funcs), parallelism, func(i int) error {
		if err := PlaceCachedFor(funcs[i], s, cache.For(funcs[i]), d); err != nil {
			return fmt.Errorf("%s: %w", funcs[i].Name, err)
		}
		return nil
	})
}

// NeedsPlacement returns the functions whose allocation uses
// callee-saved registers, in program order — the functions placement
// must visit.
func NeedsPlacement(prog *ir.Program) []*ir.Func {
	var funcs []*ir.Func
	for _, f := range prog.FuncsInOrder() {
		if len(f.UsedCalleeSaved) != 0 {
			funcs = append(funcs, f)
		}
	}
	return funcs
}
