// Package strategy enumerates the callee-saved spill code placement
// techniques the reproduction compares and computes their save/restore
// sets. It is the single dispatch point shared by the public facade
// (spillopt), the evaluation harness (internal/bench), and the
// differential fuzzing oracle (internal/irgen): all three used to
// carry their own copy of this switch, and a strategy added or fixed
// in one place silently diverged from the others.
package strategy

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/par"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
)

// Strategy selects a placement technique.
type Strategy int

const (
	// EntryExit saves at procedure entry and restores at every exit
	// (the paper's baseline).
	EntryExit Strategy = iota
	// Shrinkwrap is Chow's original technique: artificial data flow
	// keeps spill code off jump edges.
	Shrinkwrap
	// ShrinkwrapSeed is the paper's modified shrink-wrapping (spill
	// code may sit on jump edges), the hierarchical algorithm's seed.
	ShrinkwrapSeed
	// HierarchicalExec is the paper's algorithm under the execution
	// count cost model (provably optimal under that model).
	HierarchicalExec
	// HierarchicalJump is the paper's algorithm under the jump edge
	// cost model — the configuration the paper evaluates.
	HierarchicalJump
	numStrategies
)

// All lists every strategy in declaration order.
var All = []Strategy{EntryExit, Shrinkwrap, ShrinkwrapSeed, HierarchicalExec, HierarchicalJump}

// Count is the number of strategies.
const Count = int(numStrategies)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case EntryExit:
		return "entry-exit"
	case Shrinkwrap:
		return "shrinkwrap"
	case ShrinkwrapSeed:
		return "shrinkwrap-seed"
	case HierarchicalExec:
		return "hierarchical-exec"
	case HierarchicalJump:
		return "hierarchical-jump"
	}
	return "?"
}

// IsHierarchical reports whether the strategy runs the paper's
// hierarchical traversal (and therefore consumes a cost model).
func (s Strategy) IsHierarchical() bool {
	return s == HierarchicalExec || s == HierarchicalJump
}

// Model returns the cost model the strategy optimizes, or nil for the
// strategies that do not consume one.
func (s Strategy) Model() core.CostModel {
	switch s {
	case HierarchicalExec:
		return core.ExecCountModel{}
	case HierarchicalJump:
		return core.JumpEdgeModel{}
	}
	return nil
}

// Compute returns the strategy's save/restore sets for one allocated
// function. The function is not mutated.
func Compute(f *ir.Func, s Strategy) ([]*core.Set, error) {
	return ComputeWithModel(f, s, nil)
}

// ComputeWithModel is Compute with the hierarchical strategies' cost
// model overridden when m is non-nil. The differential oracle uses the
// override to prove it can catch a broken model; every production
// caller passes nil and gets the paper's models.
func ComputeWithModel(f *ir.Func, s Strategy, m core.CostModel) ([]*core.Set, error) {
	switch s {
	case EntryExit:
		return core.EntryExit(f), nil
	case Shrinkwrap:
		return shrinkwrap.Compute(f, shrinkwrap.Original), nil
	case ShrinkwrapSeed:
		return shrinkwrap.Compute(f, shrinkwrap.Seed), nil
	case HierarchicalExec, HierarchicalJump:
		t, err := pst.Build(f)
		if err != nil {
			return nil, err
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		if m == nil {
			m = s.Model()
		}
		sets, _ := core.Hierarchical(f, t, seed, m)
		return sets, nil
	}
	return nil, fmt.Errorf("strategy: unknown strategy %d", int(s))
}

// Place computes the strategy's sets for f, validates them, and
// applies them (inserting save/restore code and jump blocks).
func Place(f *ir.Func, s Strategy) error {
	sets, err := Compute(f, s)
	if err != nil {
		return err
	}
	if err := core.ValidateSets(f, sets); err != nil {
		return err
	}
	return core.Apply(f, sets)
}

// PlaceProgram applies the strategy to every function of prog that
// uses callee-saved registers, fanning the independent per-function
// pipelines (PST build, seeding, traversal, validation, apply) across
// a bounded worker pool. parallelism <= 0 means GOMAXPROCS.
func PlaceProgram(prog *ir.Program, s Strategy, parallelism int) error {
	funcs := NeedsPlacement(prog)
	return par.Do(len(funcs), parallelism, func(i int) error {
		if err := Place(funcs[i], s); err != nil {
			return fmt.Errorf("%s: %w", funcs[i].Name, err)
		}
		return nil
	})
}

// NeedsPlacement returns the functions whose allocation uses
// callee-saved registers, in program order — the functions placement
// must visit.
func NeedsPlacement(prog *ir.Program) []*ir.Func {
	var funcs []*ir.Func
	for _, f := range prog.FuncsInOrder() {
		if len(f.UsedCalleeSaved) != 0 {
			funcs = append(funcs, f)
		}
	}
	return funcs
}
