package strategy

import (
	"testing"

	"repro/internal/ir"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/workload"
)

// setsKey renders sets deterministically for equality checks.
func setsKey(sets []*core.Set) string {
	out := ""
	for _, s := range sets {
		out += s.String() + "\n"
	}
	return out
}

// TestComputeAllSharesAnalyses pins the refactor's core guarantee:
// evaluating all five strategies through one analysis.Info builds
// liveness, dominators, loops, the PST, and the shrink-wrap seed at
// most once per function — and produces exactly the sets the
// independent per-strategy path computes.
func TestComputeAllSharesAnalyses(t *testing.T) {
	base := buildDemo(t)
	funcs := NeedsPlacement(base)
	if len(funcs) == 0 {
		t.Fatal("demo program has no function needing placement")
	}
	for _, f := range funcs {
		info := analysis.For(f)
		all, err := ComputeAll(f, info)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		c := info.Counts()
		if c.Liveness > 1 || c.Dom > 1 || c.Loops > 1 || c.PST > 1 || c.Seed > 1 {
			t.Errorf("%s: ComputeAll built an analysis more than once: %+v", f.Name, c)
		}
		for _, s := range All {
			independent, err := Compute(f, s)
			if err != nil {
				t.Fatalf("%s/%v: %v", f.Name, s, err)
			}
			if got, want := setsKey(all[s]), setsKey(independent); got != want {
				t.Errorf("%s/%v: cached sets differ from independent sets:\ncached:\n%swant:\n%s",
					f.Name, s, got, want)
			}
		}
	}
}

// TestComputeAllNilInfo: a nil info degrades to a throwaway build.
func TestComputeAllNilInfo(t *testing.T) {
	base := buildDemo(t)
	f := NeedsPlacement(base)[0]
	all, err := ComputeAll(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All {
		if len(all[s]) == 0 {
			t.Errorf("%v: no sets", s)
		}
	}
}

// TestHierarchicalErrorPropagates: the traversal's input errors
// surface through the strategy dispatch instead of being discarded
// (the sets, _ := bug).
func TestHierarchicalErrorPropagates(t *testing.T) {
	base := buildDemo(t)
	f := NeedsPlacement(base)[0]
	info := analysis.For(f)
	tree, err := info.PST()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.Hierarchical(f, tree, info.ShrinkwrapSeed(), nil); err == nil {
		t.Error("nil cost model should error")
	}
	if _, _, err := core.Hierarchical(f, nil, info.ShrinkwrapSeed(), core.ExecCountModel{}); err == nil {
		t.Error("nil PST should error")
	}
	other := base.Func("leaf")
	otherInfo := analysis.For(other)
	otherTree, err := otherInfo.PST()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.Hierarchical(f, otherTree, info.ShrinkwrapSeed(), core.ExecCountModel{}); err == nil {
		t.Error("PST of a different function should error")
	}
}

// benchFuncs builds the profiled, allocated SPEC stand-in suite and
// returns every placement-needing function — the complete per-function
// workload of the evaluation's compile side.
func benchFuncs(b *testing.B) []*ir.Func {
	b.Helper()
	var funcs []*ir.Func
	for _, params := range workload.SPECInt2000() {
		prog := workload.Generate(params)
		if _, err := profile.Collect(prog, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
			b.Fatal(err)
		}
		funcs = append(funcs, NeedsPlacement(prog)...)
	}
	if len(funcs) == 0 {
		b.Fatal("SPEC stand-in suite has no functions needing placement")
	}
	return funcs
}

// BenchmarkComputeEach measures the pre-refactor shape: five
// independent Compute calls per function, each rebuilding liveness,
// dominators, loops, PST, and the shrink-wrap seed from scratch.
func BenchmarkComputeEach(b *testing.B) {
	funcs := benchFuncs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			for _, s := range All {
				if _, err := Compute(f, s); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkComputeAll measures the shared-analysis path: one
// analysis.Info per function feeds all five strategies.
func BenchmarkComputeAll(b *testing.B) {
	funcs := benchFuncs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range funcs {
			if _, err := ComputeAll(f, analysis.For(f)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
