package core_test

// Property tests: the paper's guarantees checked over randomly
// generated programs (via the synthetic workload generator, which
// produces realistic profiled CFGs) and over the hierarchy of valid
// placements the paper proves sufficient.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/pst"
	"repro/internal/regalloc"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

// randomFuncs produces allocated, profiled functions from randomized
// workload parameters.
func randomFuncs(t *testing.T, n int) []*ir.Func {
	t.Helper()
	var out []*ir.Func
	seeds := []uint64{3, 17, 101, 999, 4242, 31337, 77777, 123456789,
		0xdead, 0xbeef, 0xcafe, 0xf00d, 0xabcdef, 0x13579, 0x24680, 0x424242}
	for i := 0; len(out) < n && i < len(seeds); i++ {
		p := workload.BenchParams{
			Name: "rand", Seed: seeds[i],
			Procs: 6, Segments: 3,
			LoopProb: 0.4, NestedLoopProb: 0.3, LoopTrip: 4,
			CallProb: 0.6, ColdCallProb: 0.5, ColdCallThresh: 40, WarmThresh: 128,
			LiveAcrossProb: 0.7, LoopGuardProb: 0.3, WebBranchProb: 0.4,
			OuterLoopProb: 0.5, InLoopCallFactor: 0.3, ExtraLiveProb: 0.4,
			StraightLen: 3, DriverIters: 20,
		}
		prog := workload.Generate(p)
		if _, err := profile.Collect(prog, 0); err != nil {
			t.Fatalf("seed %d: %v", seeds[i], err)
		}
		if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
			t.Fatalf("seed %d: %v", seeds[i], err)
		}
		for _, f := range prog.FuncsInOrder() {
			if len(f.UsedCalleeSaved) > 0 {
				out = append(out, f)
			}
		}
	}
	if len(out) < n {
		t.Fatalf("only %d functions generated", len(out))
	}
	return out[:n]
}

// TestPropertyAllStrategiesValid: every strategy's placement passes
// structural validation on every random function.
func TestPropertyAllStrategiesValid(t *testing.T) {
	for _, f := range randomFuncs(t, 25) {
		if err := core.ValidateSets(f, core.EntryExit(f)); err != nil {
			t.Errorf("%s entry/exit: %v", f.Name, err)
		}
		if err := core.ValidateSets(f, shrinkwrap.Compute(f, shrinkwrap.Original)); err != nil {
			t.Errorf("%s shrinkwrap: %v", f.Name, err)
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		if err := core.ValidateSets(f, seed); err != nil {
			t.Errorf("%s seed: %v", f.Name, err)
		}
		tr, err := pst.Build(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, m := range []core.CostModel{core.ExecCountModel{}, core.JumpEdgeModel{}} {
			final, _, err := core.Hierarchical(f, tr, seed, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.ValidateSets(f, final); err != nil {
				t.Errorf("%s hierarchical(%s): %v", f.Name, m.Name(), err)
			}
		}
	}
}

// TestPropertyNeverWorse: under the model it optimizes, the
// hierarchical placement never costs more than entry/exit or either
// shrink-wrapping variant.
func TestPropertyNeverWorse(t *testing.T) {
	for _, f := range randomFuncs(t, 25) {
		tr, err := pst.Build(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		for _, m := range []core.CostModel{core.ExecCountModel{}, core.JumpEdgeModel{}} {
			final, _, err := core.Hierarchical(f, tr, seed, m)
			if err != nil {
				t.Fatal(err)
			}
			opt := core.TotalCost(m, final)
			if ee := core.TotalCost(m, core.EntryExit(f)); opt > ee {
				t.Errorf("%s %s: hierarchical %d > entry/exit %d", f.Name, m.Name(), opt, ee)
			}
			if sc := core.TotalCost(m, seed); opt > sc {
				t.Errorf("%s %s: hierarchical %d > seed %d", f.Name, m.Name(), opt, sc)
			}
			sw := shrinkwrap.Compute(f, shrinkwrap.Original)
			if swc := core.TotalCost(m, sw); opt > swc {
				t.Errorf("%s %s: hierarchical %d > shrink-wrap %d", f.Name, m.Name(), opt, swc)
			}
		}
	}
}

// TestPropertyHierarchyOptimal: the paper proves region boundaries
// plus the seed locations form a sufficient location set under the
// execution count model. Exhaustively enumerate every placement in
// that space — each seed set either kept or hoisted to the boundary of
// any enclosing region — and confirm the algorithm's result is
// minimal.
func TestPropertyHierarchyOptimal(t *testing.T) {
	checked := 0
	for _, f := range randomFuncs(t, 25) {
		tr, err := pst.Build(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		if len(seed) == 0 || len(seed) > 6 {
			continue // keep the cross product tractable
		}
		m := core.ExecCountModel{}
		final, _, err := core.Hierarchical(f, tr, seed, m)
		if err != nil {
			t.Fatal(err)
		}
		got := core.TotalCost(m, final)

		best := exhaustiveBest(f, tr, seed, m)
		if got > best {
			t.Errorf("%s: hierarchical cost %d, exhaustive best %d", f.Name, got, best)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no tractable functions generated")
	}
}

// exhaustiveBest enumerates per-set choices (keep, or hoist to each
// enclosing region boundary), merging sets of the same register hoisted
// to the same region, and returns the minimum total cost.
func exhaustiveBest(f *ir.Func, tr *pst.PST, seed []*core.Set, m core.CostModel) int64 {
	// Options per set: nil = keep, or a region.
	options := make([][]*pst.Region, len(seed))
	for i, s := range seed {
		opts := []*pst.Region{nil}
		for _, r := range tr.BottomUp() {
			if containsSet(r, s) {
				opts = append(opts, r)
			}
		}
		options[i] = opts
	}
	best := int64(1) << 62
	idx := make([]int, len(seed))
	for {
		// Cost of this assignment.
		var cost int64
		type key struct {
			reg ir.Reg
			r   *pst.Region
		}
		seen := map[key]bool{}
		for i, s := range seed {
			r := options[i][idx[i]]
			if r == nil {
				cost += core.SetCost(m, s)
				continue
			}
			k := key{s.Reg, r}
			if seen[k] {
				continue // merged with another set at the same boundary
			}
			seen[k] = true
			saves, restores := core.BoundaryLocs(f, r)
			bs := &core.Set{Reg: s.Reg, Saves: saves, Restores: restores}
			cost += core.SetCost(m, bs)
		}
		if cost < best {
			best = cost
		}
		// Next assignment.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(options[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return best
		}
	}
}

func containsSet(r *pst.Region, s *core.Set) bool {
	if r.IsRoot() {
		return true
	}
	for _, l := range s.Locations() {
		switch l.Kind {
		case core.OnEdge:
			if !r.ContainsEdge(l.Edge) {
				return false
			}
		default:
			if !r.ContainsBlock(l.Block) {
				return false
			}
		}
	}
	return true
}

// TestPropertyModeledEqualsMeasured: after Apply, the modeled dynamic
// overhead (profile-weighted flagged instructions) must equal the
// placement cost structure — and stay consistent across clones.
func TestPropertyApplyPreservesCFG(t *testing.T) {
	for _, f := range randomFuncs(t, 15) {
		clone := f.Clone()
		clone.UsedCalleeSaved = f.UsedCalleeSaved
		tr, err := pst.Build(clone)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		seed := shrinkwrap.Compute(clone, shrinkwrap.Seed)
		final, _, err := core.Hierarchical(clone, tr, seed, core.JumpEdgeModel{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Apply(clone, final); err != nil {
			t.Fatalf("%s: apply: %v", f.Name, err)
		}
		if err := ir.Verify(clone); err != nil {
			t.Errorf("%s: post-apply verify: %v", f.Name, err)
		}
		// Every save has a matching restore count per register.
		saves := map[ir.Reg]int{}
		restores := map[ir.Reg]int{}
		for _, b := range clone.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpSave {
					saves[in.Src1]++
				}
				if in.Op == ir.OpRestore {
					restores[in.Dst]++
				}
			}
		}
		for r := range saves {
			if restores[r] == 0 {
				t.Errorf("%s: register %v saved but never restored", f.Name, r)
			}
		}
	}
}
