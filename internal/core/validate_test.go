package core_test

import (
	"strings"
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/workload"
)

// allocDiamond builds A -> B(allocated) | C; B -> D; C -> D(exit) with
// the register defined and used in B.
func allocDiamond(t *testing.T) (*ir.Func, ir.Reg) {
	t.Helper()
	f := cfgtest.MustBuild("vd",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 30), cfgtest.E("A", "C", 70),
			cfgtest.E("B", "D", 30), cfgtest.E("C", "D", 70),
		})
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")
	return f, reg
}

func TestValidateAcceptsCorrectPlacements(t *testing.T) {
	f, reg := allocDiamond(t)
	good := []*core.Set{{
		Reg:      reg,
		Saves:    []core.Location{core.HeadLoc(f.BlockByName("B"))},
		Restores: []core.Location{core.TailLoc(f.BlockByName("B"))},
	}}
	if err := core.ValidateSets(f, good); err != nil {
		t.Errorf("tight placement rejected: %v", err)
	}
	if err := core.ValidateSets(f, core.EntryExit(f)); err != nil {
		t.Errorf("entry/exit rejected: %v", err)
	}
}

func TestValidateCatchesMissingRestore(t *testing.T) {
	f, reg := allocDiamond(t)
	bad := []*core.Set{{
		Reg:   reg,
		Saves: []core.Location{core.HeadLoc(f.BlockByName("B"))},
	}}
	if err := core.ValidateSets(f, bad); err == nil {
		t.Error("missing restore not caught")
	}
}

func TestValidateCatchesMissingSave(t *testing.T) {
	f, reg := allocDiamond(t)
	bad := []*core.Set{{
		Reg:      reg,
		Restores: []core.Location{core.TailLoc(f.BlockByName("B"))},
	}}
	if err := core.ValidateSets(f, bad); err == nil {
		t.Error("restore of garbage slot / clobber without save not caught")
	}
}

func TestValidateCatchesNoPlacementAtAll(t *testing.T) {
	f, _ := allocDiamond(t)
	if err := core.ValidateSets(f, nil); err == nil {
		t.Error("clobbered register with no save/restore not caught")
	}
}

func TestValidateCatchesPartialPathCoverage(t *testing.T) {
	f, reg := allocDiamond(t)
	// Save only on the A->B path... at head of B is correct; instead
	// save at head of B but restore only at the exit that the C path
	// also reaches — restore at head of D would corrupt... Build a
	// placement that saves in B but restores at tail of C: the B path
	// reaches D without a restore.
	bad := []*core.Set{{
		Reg:      reg,
		Saves:    []core.Location{core.HeadLoc(f.BlockByName("B"))},
		Restores: []core.Location{core.TailLoc(f.BlockByName("C"))},
	}}
	if err := core.ValidateSets(f, bad); err == nil {
		t.Error("B-path exit without restore not caught")
	}
}

func TestValidateCatchesSaveAfterClobber(t *testing.T) {
	f, reg := allocDiamond(t)
	// Saving at the tail of B (after the clobbering def) stores the
	// variable's value, losing the original.
	bad := []*core.Set{{
		Reg:      reg,
		Saves:    []core.Location{core.TailLoc(f.BlockByName("B"))},
		Restores: []core.Location{core.TailLoc(f.BlockByName("D"))},
	}}
	if err := core.ValidateSets(f, bad); err == nil {
		t.Error("save after clobber not caught")
	}
}

func TestValidateCatchesRestoreCorruptingLiveValue(t *testing.T) {
	// Allocation spans D and E (defined in D, used in E); a restore
	// between them would overwrite the live variable. This is the
	// paper's "cannot be inserted into basic block D, because that
	// would corrupt the value of the register in basic block E".
	fig := workload.NewFigure2()
	f := fig.Func
	bad := []*core.Set{{
		Reg:      fig.Reg,
		Saves:    []core.Location{core.HeadLoc(f.BlockByName("D"))},
		Restores: []core.Location{core.TailLoc(f.BlockByName("D"))},
	}}
	err := core.ValidateSets(f, bad)
	if err == nil || !strings.Contains(err.Error(), "live") {
		t.Errorf("corrupting restore not caught properly: %v", err)
	}
	// Restore on the D->E edge is equally corrupting.
	de := f.BlockByName("D").SuccEdge(f.BlockByName("E"))
	bad2 := []*core.Set{{
		Reg:      fig.Reg,
		Saves:    []core.Location{core.HeadLoc(f.BlockByName("D"))},
		Restores: []core.Location{{Kind: core.OnEdge, Edge: de}},
	}}
	if err := core.ValidateSets(f, bad2); err == nil {
		t.Error("corrupting on-edge restore not caught")
	}
}

func TestValidateEdgePlacement(t *testing.T) {
	f, reg := allocDiamond(t)
	ab := f.BlockByName("A").SuccEdge(f.BlockByName("B"))
	bd := f.BlockByName("B").SuccEdge(f.BlockByName("D"))
	good := []*core.Set{{
		Reg:      reg,
		Saves:    []core.Location{{Kind: core.OnEdge, Edge: ab}},
		Restores: []core.Location{{Kind: core.OnEdge, Edge: bd}},
	}}
	if err := core.ValidateSets(f, good); err != nil {
		t.Errorf("on-edge placement rejected: %v", err)
	}
}

func TestValidateRestoreThenSaveAtOnePoint(t *testing.T) {
	// Two disjoint webs back to back: A -> B(alloc) -> C(alloc) -> D.
	// Placing web 1's restore and web 2's save both on the B->C edge
	// must validate (restores are applied before saves).
	f := cfgtest.MustBuild("seq",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 10), cfgtest.E("B", "C", 10), cfgtest.E("C", "D", 10),
		})
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")
	workload.AllocateGroup(f, reg, "C")
	bc := f.BlockByName("B").SuccEdge(f.BlockByName("C"))
	sets := []*core.Set{
		{Reg: reg,
			Saves:    []core.Location{core.HeadLoc(f.BlockByName("B"))},
			Restores: []core.Location{{Kind: core.OnEdge, Edge: bc}}},
		{Reg: reg,
			Saves:    []core.Location{{Kind: core.OnEdge, Edge: bc}},
			Restores: []core.Location{core.TailLoc(f.BlockByName("C"))}},
	}
	if err := core.ValidateSets(f, sets); err != nil {
		t.Errorf("back-to-back webs rejected: %v", err)
	}
}

func TestValidateMultipleRegisters(t *testing.T) {
	f := cfgtest.MustBuild("two",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 5), cfgtest.E("B", "C", 5)})
	r1, r2 := ir.Phys(11), ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{r1, r2}
	workload.AllocateGroup(f, r1, "A")
	workload.AllocateGroup(f, r2, "B")
	// Valid placement for r1 but nothing for r2: must fail, and the
	// error must name r2.
	sets := []*core.Set{{
		Reg:      r1,
		Saves:    []core.Location{core.HeadLoc(f.BlockByName("A"))},
		Restores: []core.Location{core.TailLoc(f.BlockByName("C"))},
	}}
	err := core.ValidateSets(f, sets)
	if err == nil || !strings.Contains(err.Error(), "r12") {
		t.Errorf("missing r12 placement not caught: %v", err)
	}
}
