package core

import (
	"fmt"

	"repro/internal/ir"
)

// TranslateSets remaps save/restore sets computed on src onto dst, a
// structural clone of src (same block layout order and per-block
// successor order, as ir.Func.Clone and a Print/Parse round trip both
// produce). It lets the evaluation pipelines compute every strategy's
// sets once on a shared base — building each analysis once — and then
// apply them to per-strategy clones, instead of redoing the full
// analysis stack per clone. The input sets are not modified.
func TranslateSets(sets []*Set, src, dst *ir.Func) ([]*Set, error) {
	if len(src.Blocks) != len(dst.Blocks) {
		return nil, fmt.Errorf("core.TranslateSets(%s): %d blocks in source, %d in destination",
			src.Name, len(src.Blocks), len(dst.Blocks))
	}
	pos := make(map[*ir.Block]int, len(src.Blocks))
	for i, b := range src.Blocks {
		pos[b] = i
		db := dst.Blocks[i]
		if db.Name != b.Name || len(db.Succs) != len(b.Succs) {
			return nil, fmt.Errorf("core.TranslateSets(%s): destination is not a structural clone at block %s",
				src.Name, b.Name)
		}
		for j, e := range b.Succs {
			if db.Succs[j].To.Name != e.To.Name {
				return nil, fmt.Errorf("core.TranslateSets(%s): destination successor order differs at block %s (edge %d: %s vs %s)",
					src.Name, b.Name, j, db.Succs[j].To.Name, e.To.Name)
			}
		}
	}
	mapLoc := func(l Location) (Location, error) {
		switch l.Kind {
		case BlockHead, BlockTail:
			i, ok := pos[l.Block]
			if !ok {
				return Location{}, fmt.Errorf("core.TranslateSets(%s): block %s is not in the source layout",
					src.Name, l.Block.Name)
			}
			l.Block = dst.Blocks[i]
			return l, nil
		default: // OnEdge
			i, ok := pos[l.Edge.From]
			if !ok {
				return Location{}, fmt.Errorf("core.TranslateSets(%s): edge source %s is not in the source layout",
					src.Name, l.Edge.From.Name)
			}
			for j, e := range src.Blocks[i].Succs {
				if e == l.Edge {
					l.Edge = dst.Blocks[i].Succs[j]
					return l, nil
				}
			}
			return Location{}, fmt.Errorf("core.TranslateSets(%s): edge %s->%s is not in the source CFG",
				src.Name, l.Edge.From.Name, l.Edge.To.Name)
		}
	}
	out := make([]*Set, len(sets))
	for si, s := range sets {
		ns := &Set{Reg: s.Reg, Seed: s.Seed}
		ns.Saves = make([]Location, len(s.Saves))
		for i, l := range s.Saves {
			nl, err := mapLoc(l)
			if err != nil {
				return nil, err
			}
			ns.Saves[i] = nl
		}
		ns.Restores = make([]Location, len(s.Restores))
		for i, l := range s.Restores {
			nl, err := mapLoc(l)
			if err != nil {
				return nil, err
			}
			ns.Restores[i] = nl
		}
		out[si] = ns
	}
	return out, nil
}
