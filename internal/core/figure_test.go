package core_test

// Tests in this file reproduce the paper's worked example (Figures
// 2-4) number for number: the shrink-wrap and entry/exit costs of
// Figure 2, the initial save/restore set costs of Figure 3, and the
// hierarchical algorithm's decisions and final placements under both
// cost models (Figure 4a and 4b).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func setsFor(sets []*core.Set, reg ir.Reg) []*core.Set {
	var out []*core.Set
	for _, s := range sets {
		if s.Reg == reg {
			out = append(out, s)
		}
	}
	return out
}

// locString canonicalizes a set's locations for comparison.
func hasLoc(locs []core.Location, want string) bool {
	for _, l := range locs {
		if l.String() == want {
			return true
		}
	}
	return false
}

func TestFigure2EntryExitCost200(t *testing.T) {
	fig := workload.NewFigure2()
	sets := core.EntryExit(fig.Func)
	if err := core.ValidateSets(fig.Func, sets); err != nil {
		t.Fatalf("entry/exit placement invalid: %v", err)
	}
	for _, m := range []core.CostModel{core.ExecCountModel{}, core.JumpEdgeModel{}} {
		if got := core.TotalCost(m, sets); got != 200 {
			t.Errorf("entry/exit cost under %s = %d, want 200", m.Name(), got)
		}
	}
}

func TestFigure2ShrinkwrapOriginalCost250(t *testing.T) {
	fig := workload.NewFigure2()
	sets := shrinkwrap.Compute(fig.Func, shrinkwrap.Original)
	if err := core.ValidateSets(fig.Func, sets); err != nil {
		t.Fatalf("shrink-wrap placement invalid: %v", err)
	}
	// Chow's original technique places saves before C, H, K, N and
	// restores after F, H, K, N (paper: C, G, K, N — the second
	// allocated block is labeled H in this reconstruction).
	if got := core.TotalCost(core.ExecCountModel{}, sets); got != 250 {
		for _, s := range sets {
			t.Logf("  %v (cost %d)", s, core.SetCost(core.ExecCountModel{}, s))
		}
		t.Fatalf("shrink-wrap original cost = %d, want 250", got)
	}
	// No location may require a jump block: that is the point of
	// Chow's artificial data flow.
	for _, s := range sets {
		for _, l := range s.Locations() {
			if l.NeedsJumpBlock() {
				t.Errorf("original shrink-wrap placed spill code needing a jump block at %v", l)
			}
		}
	}
	// The D-E web's save must have migrated to the head of C and its
	// restore to the tail of F.
	var web1 *core.Set
	for _, s := range sets {
		if hasLoc(s.Saves, "head(C)") {
			web1 = s
		}
	}
	if web1 == nil || !hasLoc(web1.Restores, "tail(F)") {
		t.Errorf("expected save head(C)/restore tail(F) set, got %v", sets)
	}
}

func TestFigure3InitialSets(t *testing.T) {
	fig := workload.NewFigure2()
	sets := shrinkwrap.Compute(fig.Func, shrinkwrap.Seed)
	if err := core.ValidateSets(fig.Func, sets); err != nil {
		t.Fatalf("seed placement invalid: %v", err)
	}
	if len(sets) != 4 {
		for _, s := range sets {
			t.Logf("  %v", s)
		}
		t.Fatalf("initial sets = %d, want 4", len(sets))
	}
	exec := core.ExecCountModel{}
	jump := core.JumpEdgeModel{}

	// Identify sets by their contents.
	byCost := map[string]*core.Set{}
	for _, s := range sets {
		switch {
		case hasLoc(s.Saves, "head(D)"):
			byCost["set1"] = s
		case hasLoc(s.Saves, "head(H)"):
			byCost["set2"] = s
		case hasLoc(s.Saves, "head(K)"):
			byCost["set3"] = s
		case hasLoc(s.Saves, "head(N)"):
			byCost["set4"] = s
		}
	}
	for _, name := range []string{"set1", "set2", "set3", "set4"} {
		if byCost[name] == nil {
			t.Fatalf("missing %s among %v", name, sets)
		}
	}

	// Paper: Set 1 = 80 (exec), 110 (jump: the D->F restore needs a
	// jump block costing the edge's 30); Sets 2-4 = 50 in both models.
	cases := []struct {
		name      string
		exec, jmp int64
	}{
		{"set1", 80, 110},
		{"set2", 50, 50},
		{"set3", 50, 50},
		{"set4", 50, 50},
	}
	for _, c := range cases {
		s := byCost[c.name]
		if got := core.SetCost(exec, s); got != c.exec {
			t.Errorf("%s exec cost = %d, want %d (%v)", c.name, got, c.exec, s)
		}
		if got := core.SetCost(jump, s); got != c.jmp {
			t.Errorf("%s jump cost = %d, want %d (%v)", c.name, got, c.jmp, s)
		}
	}

	// Set 1's structure: save head(D), restore tail(E), restore on the
	// D->F jump edge.
	s1 := byCost["set1"]
	if !hasLoc(s1.Restores, "tail(E)") || !hasLoc(s1.Restores, "edge(D->F)") {
		t.Errorf("set1 restores = %v, want tail(E) and edge(D->F)", s1.Restores)
	}
}

// runHSCP builds the PST, seeds with modified shrink-wrapping, and
// runs the hierarchical algorithm under the given model.
func runHSCP(t *testing.T, fig *workload.Figure2, m core.CostModel) ([]*core.Set, []core.RegionDecision) {
	t.Helper()
	p, err := pst.Build(fig.Func)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(fig.Func, shrinkwrap.Seed)
	final, dec, err := core.Hierarchical(fig.Func, p, seed, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSets(fig.Func, final); err != nil {
		t.Fatalf("hierarchical placement invalid under %s: %v", m.Name(), err)
	}
	return final, dec
}

func TestFigure4aExecCountPlacement(t *testing.T) {
	fig := workload.NewFigure2()
	final, dec := runHSCP(t, fig, core.ExecCountModel{})

	// Paper: final cost 190 = Set1 (80) + Set2 (50) + Set5 at Region 3
	// boundaries (60).
	if got := core.TotalCost(core.ExecCountModel{}, final); got != 190 {
		for _, s := range final {
			t.Logf("  %v (cost %d)", s, core.SetCost(core.ExecCountModel{}, s))
		}
		t.Fatalf("exec-count final cost = %d, want 190", got)
	}
	if len(final) != 3 {
		t.Fatalf("final sets = %d, want 3", len(final))
	}
	// Set 5 sits at Region 3's boundaries: save head(J), restore tail(O).
	found := false
	for _, s := range final {
		if hasLoc(s.Saves, "head(J)") && hasLoc(s.Restores, "tail(O)") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing Set 5 at Region 3 boundaries; final = %v", final)
	}

	// Region decisions from the paper: Region 1: 80 vs 100, keep;
	// Region 2: 130 vs 140, keep; Region 3: 100 vs 60, replace;
	// Region 4 (root): 190 vs 200, keep.
	checkDecision(t, dec, "B->C", 80, 100, false)
	checkDecision(t, dec, "A->B", 130, 140, false)
	checkDecision(t, dec, "A->J", 100, 60, true)
	checkDecision(t, dec, "root", 190, 200, false)
}

func TestFigure4bJumpEdgePlacement(t *testing.T) {
	fig := workload.NewFigure2()
	final, dec := runHSCP(t, fig, core.JumpEdgeModel{})

	// Paper: everything collapses to procedure entry/exit, cost 200.
	if got := core.TotalCost(core.JumpEdgeModel{}, final); got != 200 {
		for _, s := range final {
			t.Logf("  %v (cost %d)", s, core.SetCost(core.JumpEdgeModel{}, s))
		}
		t.Fatalf("jump-edge final cost = %d, want 200", got)
	}
	if len(final) != 1 {
		t.Fatalf("final sets = %d, want 1 (entry/exit)", len(final))
	}
	s := final[0]
	if !hasLoc(s.Saves, "head(A)") || !hasLoc(s.Restores, "tail(P)") {
		t.Errorf("final set should be procedure entry/exit, got %v", s)
	}

	// Paper's decisions: Region 1: 110 vs 100, replace (Set 6);
	// Region 2: 150 vs 140, replace (Set 7); Region 3: 100 vs 60,
	// replace (Set 5); root: 200 vs 200, replace (entry/exit).
	checkDecision(t, dec, "B->C", 110, 100, true)
	checkDecision(t, dec, "A->B", 150, 140, true)
	checkDecision(t, dec, "A->J", 100, 60, true)
	checkDecision(t, dec, "root", 200, 200, true)
}

// checkDecision finds the decision for the region identified by its
// entry edge ("From->To", or "root") and checks contained cost,
// boundary cost, and whether a replacement happened.
func checkDecision(t *testing.T, dec []core.RegionDecision, region string, contained, boundary int64, replaced bool) {
	t.Helper()
	for _, d := range dec {
		name := "root"
		if d.Region.EntryEdge != nil {
			name = d.Region.EntryEdge.From.Name + "->" + d.Region.EntryEdge.To.Name
		}
		if name != region {
			continue
		}
		if d.ContainedCost != contained || d.BoundaryCost != boundary || d.Replaced != replaced {
			t.Errorf("region %s decision = contained %d boundary %d replaced %v, want %d/%d/%v",
				region, d.ContainedCost, d.BoundaryCost, d.Replaced, contained, boundary, replaced)
		}
		return
	}
	t.Errorf("no decision recorded for region %s", region)
}

func TestFigure2NeverWorse(t *testing.T) {
	// The paper's guarantee: the hierarchical placement never has
	// greater dynamic overhead than shrink-wrapping or entry/exit.
	fig := workload.NewFigure2()
	for _, m := range []core.CostModel{core.ExecCountModel{}, core.JumpEdgeModel{}} {
		final, _ := runHSCP(t, fig, m)
		opt := core.TotalCost(m, final)
		ee := core.TotalCost(m, core.EntryExit(fig.Func))
		sw := core.TotalCost(m, shrinkwrap.Compute(fig.Func, shrinkwrap.Original))
		if opt > ee {
			t.Errorf("%s: optimized %d > entry/exit %d", m.Name(), opt, ee)
		}
		if opt > sw {
			t.Errorf("%s: optimized %d > shrink-wrap %d", m.Name(), opt, sw)
		}
	}
}

func TestFigure1ProfileSensitivity(t *testing.T) {
	// Chow's Figure 1: shrink-wrapping wins when the shaded blocks are
	// cold, loses when they are hot; the hierarchical algorithm picks
	// whichever is better in both cases.
	exec := core.ExecCountModel{}

	cold := workload.NewFigure1(10, 20) // avg 15 < 100
	swCold := core.TotalCost(exec, shrinkwrap.Compute(cold.Func, shrinkwrap.Original))
	eeCold := core.TotalCost(exec, core.EntryExit(cold.Func))
	if swCold >= eeCold {
		t.Errorf("cold blocks: shrink-wrap %d should beat entry/exit %d", swCold, eeCold)
	}

	hot := workload.NewFigure1(95, 90) // avg 92.5, 2*(95+90) > 200
	swHot := core.TotalCost(exec, shrinkwrap.Compute(hot.Func, shrinkwrap.Original))
	eeHot := core.TotalCost(exec, core.EntryExit(hot.Func))
	if swHot <= eeHot {
		t.Errorf("hot blocks: entry/exit %d should beat shrink-wrap %d", eeHot, swHot)
	}

	for _, fig := range []*workload.Figure1{cold, hot} {
		p, err := pst.Build(fig.Func)
		if err != nil {
			t.Fatal(err)
		}
		seed := shrinkwrap.Compute(fig.Func, shrinkwrap.Seed)
		final, _, err := core.Hierarchical(fig.Func, p, seed, exec)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ValidateSets(fig.Func, final); err != nil {
			t.Fatalf("invalid placement: %v", err)
		}
		opt := core.TotalCost(exec, final)
		sw := core.TotalCost(exec, shrinkwrap.Compute(fig.Func, shrinkwrap.Original))
		ee := core.TotalCost(exec, core.EntryExit(fig.Func))
		if opt > sw || opt > ee {
			t.Errorf("hierarchical %d worse than min(shrink-wrap %d, entry/exit %d)", opt, sw, ee)
		}
	}
}
