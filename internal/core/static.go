package core

import "fmt"

// StaticAwareModel extends the jump edge cost model with a static
// overhead term, an extension the paper scopes out ("static overhead
// reduction is not a goal of the algorithm presented in this paper").
// Each location pays its dynamic cost plus StaticWeight per inserted
// instruction (counting the jump instruction of a jump block). With
// StaticWeight 0 it coincides with JumpEdgeModel; as StaticWeight
// grows, placements with fewer instructions — ultimately entry/exit
// placement, the static minimum — win.
type StaticAwareModel struct {
	// StaticWeight is the cost charged per inserted instruction.
	StaticWeight int64
}

// LocationCost returns dynamic cost plus the static surcharge.
func (m StaticAwareModel) LocationCost(k CostKind, l Location, seed bool) int64 {
	c := (JumpEdgeModel{}).LocationCost(k, l, seed)
	c += m.StaticWeight
	if l.NeedsJumpBlock() {
		// The jump block's jump instruction is also a static cost; for
		// seed sets it is shared like its dynamic counterpart.
		if seed {
			c += m.StaticWeight / int64(l.sharers())
		} else {
			c += m.StaticWeight
		}
	}
	return c
}

// Name identifies the model.
func (m StaticAwareModel) Name() string {
	return fmt.Sprintf("static-aware(%d)", m.StaticWeight)
}

// StaticCount returns the number of instructions a placement inserts:
// one per save/restore location plus one jump per distinct jump-block
// edge. It is the quantity StaticAwareModel trades against dynamic
// overhead.
func StaticCount(sets []*Set) int64 {
	var n int64
	jumpEdges := map[string]bool{}
	for _, s := range sets {
		for _, l := range s.Locations() {
			n++
			if l.NeedsJumpBlock() {
				key := l.Edge.From.Name + "->" + l.Edge.To.Name
				if !jumpEdges[key] {
					jumpEdges[key] = true
					n++
				}
			}
		}
	}
	return n
}
