package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func TestApplyEntryExit(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func.Clone()
	f.UsedCalleeSaved = fig.Func.UsedCalleeSaved
	sets := core.EntryExit(f)
	if err := core.Apply(f, sets); err != nil {
		t.Fatal(err)
	}
	if f.SaveSlots != 1 {
		t.Errorf("SaveSlots = %d, want 1", f.SaveSlots)
	}
	// Save is the first instruction of the entry block.
	first := f.Entry.Instrs[0]
	if first.Op != ir.OpSave || first.Flags&ir.FlagSaveRestore == 0 {
		t.Errorf("entry head = %v, want flagged save", first)
	}
	// Restore just before the ret of P.
	p := f.BlockByName("P")
	rest := p.Instrs[len(p.Instrs)-2]
	if rest.Op != ir.OpRestore || rest.Dst != fig.Reg {
		t.Errorf("before ret = %v, want restore of %v", rest, fig.Reg)
	}
	if got := core.DynamicOverhead(f); got != 200 {
		t.Errorf("dynamic overhead = %d, want 200", got)
	}
	bd := core.Breakdown(f)
	if bd.Saves != 100 || bd.Restores != 100 || bd.JumpBlockJmps != 0 {
		t.Errorf("breakdown = %+v", bd)
	}
}

// TestApplyKeepsSaveSlotsExact: a stale, oversized SaveSlots from an
// earlier pipeline stage must be shrunk to exactly the slots the
// placed code references — VM frames are sized from it once per call.
func TestApplyKeepsSaveSlotsExact(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func.Clone()
	f.UsedCalleeSaved = fig.Func.UsedCalleeSaved
	f.SaveSlots = 17 // stale
	sets := core.EntryExit(f)
	if err := core.Apply(f, sets); err != nil {
		t.Fatal(err)
	}
	if f.SaveSlots != 1 {
		t.Errorf("SaveSlots = %d after Apply, want exactly 1", f.SaveSlots)
	}
}

func TestApplySeedCreatesJumpBlock(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func // seed placement computed on the original
	sets := shrinkwrap.Compute(f, shrinkwrap.Seed)

	clone := f.Clone()
	clone.UsedCalleeSaved = f.UsedCalleeSaved
	// Remap set locations onto the clone by rebuilding them there.
	csets := shrinkwrap.Compute(clone, shrinkwrap.Seed)
	if len(csets) != len(sets) {
		t.Fatalf("clone seed sets = %d, want %d", len(csets), len(sets))
	}
	nBefore := len(clone.Blocks)
	if err := core.Apply(clone, csets); err != nil {
		t.Fatal(err)
	}
	if len(clone.Blocks) != nBefore+1 {
		t.Fatalf("blocks after apply = %d, want %d (one jump block for D->F)",
			len(clone.Blocks), nBefore+1)
	}
	// Find the jump block: ends in a flagged jmp, contains a restore.
	var jb *ir.Block
	for _, b := range clone.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Flags&ir.FlagJumpBlock != 0 {
			jb = b
		}
	}
	if jb == nil {
		t.Fatal("no jump block created")
	}
	if jb.Instrs[0].Op != ir.OpRestore {
		t.Errorf("jump block body = %v, want restore first", jb.Instrs[0])
	}
	if jb.ExecCount() != 30 {
		t.Errorf("jump block exec count = %d, want 30 (D->F weight)", jb.ExecCount())
	}
	// Seed overhead: sets cost 230 exec + one 30-weight jump = 260.
	if got := core.DynamicOverhead(clone); got != 260 {
		t.Errorf("dynamic overhead = %d, want 260", got)
	}
	bd := core.Breakdown(clone)
	if bd.JumpBlockJmps != 30 {
		t.Errorf("jump block overhead = %d, want 30", bd.JumpBlockJmps)
	}
	if bd.Saves+bd.Restores != 230 {
		t.Errorf("save+restore overhead = %d, want 230", bd.Saves+bd.Restores)
	}
}

func TestApplyHierarchicalExecCount(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	p, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	final, _, err := core.Hierarchical(f, p, seed, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}

	clone := f.Clone()
	clone.UsedCalleeSaved = f.UsedCalleeSaved
	// Rebuild the same placement on the clone.
	pc, err := pst.Build(clone)
	if err != nil {
		t.Fatal(err)
	}
	cseed := shrinkwrap.Compute(clone, shrinkwrap.Seed)
	cfinal, _, err := core.Hierarchical(clone, pc, cseed, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfinal) != len(final) {
		t.Fatalf("clone placement differs")
	}
	if err := core.Apply(clone, cfinal); err != nil {
		t.Fatal(err)
	}
	// Exec-count model ignores the jump instruction that the D->F
	// restore needs, so realized overhead = 190 + 30 = 220.
	if got := core.DynamicOverhead(clone); got != 220 {
		t.Errorf("realized exec-count overhead = %d, want 220", got)
	}
}

func TestApplyFallThroughSplitNoJump(t *testing.T) {
	// A set placed on a fall-through critical edge splits the edge but
	// adds no jump overhead.
	bu := ir.NewBuilder("ft", 0)
	a := bu.Block("A")
	b := bu.F.NewBlock("B")
	c := bu.F.NewBlock("C")
	d := bu.F.NewBlock("D")
	bu.SetCurrent(a)
	cv := bu.Const(1)
	bu.Br(cv, c, b, 40, 60) // A->B fall-through (B next), A->C jump
	bu.SetCurrent(b)
	bu.Br(cv, d, c, 10, 50) // B->C fall-through, B->D jump
	bu.SetCurrent(c)
	bu.Jmp(d, 90)
	bu.SetCurrent(d)
	bu.Ret(ir.NoReg)
	f := bu.Finish()
	f.EntryCount = 100
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}

	// B->C is fall-through and critical (B has 2 succs, C has 2 preds).
	e := f.BlockByName("B").SuccEdge(f.BlockByName("C"))
	if e.Kind != ir.FallThrough {
		t.Fatalf("B->C kind = %v, want fall-through", e.Kind)
	}
	loc := core.EdgeLoc(e)
	if loc.Kind != core.OnEdge {
		t.Fatalf("B->C should stay OnEdge, got %v", loc)
	}
	sets := []*core.Set{{
		Reg:      reg,
		Saves:    []core.Location{core.HeadLoc(f.Entry)},
		Restores: []core.Location{loc, {Kind: core.OnEdge, Edge: f.BlockByName("B").SuccEdge(f.BlockByName("D"))}},
	}}
	// Not a semantically meaningful placement; Apply only cares about
	// mechanics.
	if err := core.Apply(f, sets); err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	// Two splits: one fall-through (no flagged jmp), one jump edge.
	var flagged, plain int
	for _, blk := range f.Blocks {
		if tm := blk.Terminator(); tm != nil && tm.Op == ir.OpJmp {
			if tm.Flags&ir.FlagJumpBlock != 0 {
				flagged++
			}
		}
	}
	for _, blk := range f.Blocks {
		if len(blk.Instrs) >= 2 && blk.Instrs[0].Op == ir.OpRestore {
			plain++
		}
	}
	if flagged != 1 {
		t.Errorf("flagged jump-block jumps = %d, want 1 (B->D only)", flagged)
	}
	bd := core.Breakdown(f)
	if bd.JumpBlockJmps != 10 {
		t.Errorf("jump overhead = %d, want 10 (B->D weight)", bd.JumpBlockJmps)
	}
	// The fall-through split block must sit directly after B in layout.
	bIdx := -1
	for i, blk := range f.Blocks {
		if blk.Name == "B" {
			bIdx = i
		}
	}
	next := f.Blocks[bIdx+1]
	if next.Instrs[0].Op != ir.OpRestore {
		t.Errorf("block after B = %s, want the fall-through split block", next.Name)
	}
	if next.SuccEdge(f.BlockByName("C")) == nil {
		t.Errorf("fall-through split block should lead to C")
	}
}

func TestApplySharedJumpBlock(t *testing.T) {
	// Two registers with spill code on the same jump edge share one
	// jump block and one jump instruction.
	bu := ir.NewBuilder("share", 0)
	a := bu.Block("A")
	b := bu.F.NewBlock("B")
	c := bu.F.NewBlock("C")
	d := bu.F.NewBlock("D")
	bu.SetCurrent(a)
	cv := bu.Const(1)
	bu.Br(cv, c, b, 40, 60)
	bu.SetCurrent(b)
	bu.Jmp(c, 60)
	bu.SetCurrent(c)
	bu.Jmp(d, 100)
	bu.SetCurrent(d)
	bu.Ret(ir.NoReg)
	f := bu.Finish()
	f.EntryCount = 100
	r1, r2 := ir.Phys(12), ir.Phys(13)
	f.UsedCalleeSaved = []ir.Reg{r1, r2}

	e := f.BlockByName("A").SuccEdge(f.BlockByName("C")) // jump, critical
	sets := []*core.Set{
		{Reg: r1, Saves: []core.Location{core.HeadLoc(a)}, Restores: []core.Location{{Kind: core.OnEdge, Edge: e}}},
		{Reg: r2, Saves: []core.Location{core.HeadLoc(a)}, Restores: []core.Location{{Kind: core.OnEdge, Edge: e}}},
	}
	nBefore := len(f.Blocks)
	if err := core.Apply(f, sets); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != nBefore+1 {
		t.Fatalf("want exactly one shared jump block, got %d new", len(f.Blocks)-nBefore)
	}
	if f.SaveSlots != 2 {
		t.Errorf("SaveSlots = %d, want 2", f.SaveSlots)
	}
	bd := core.Breakdown(f)
	if bd.JumpBlockJmps != 40 {
		t.Errorf("jump overhead = %d, want 40 (one jump, weight 40)", bd.JumpBlockJmps)
	}
	if bd.Restores != 80 {
		t.Errorf("restore overhead = %d, want 80 (two restores at 40)", bd.Restores)
	}
}
