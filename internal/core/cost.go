package core

import "repro/internal/ir"

// CostModel assigns a dynamic-overhead cost to save/restore locations.
// The paper defines two: the execution count model (optimal, but may
// place code on jump edges without accounting for the jump) and the
// jump edge model (charges the jump instruction a jump block needs).
type CostModel interface {
	// LocationCost returns the dynamic cost of placing one spill
	// instruction at l. seed selects the initial-set rule that shares
	// a jump instruction's cost among registers.
	LocationCost(l Location, seed bool) int64
	// Name identifies the model in reports.
	Name() string
}

// ExecCountModel is the paper's execution count cost model: each
// inserted instruction costs the execution count of its location. The
// hierarchical algorithm is provably optimal under this model.
type ExecCountModel struct{}

// LocationCost returns the location's execution count.
func (ExecCountModel) LocationCost(l Location, seed bool) int64 { return l.Weight() }

// Name returns "exec-count".
func (ExecCountModel) Name() string { return "exec-count" }

// JumpEdgeModel is the paper's jump edge cost model: a location that
// requires a jump block additionally pays the jump instruction's
// execution count. For initial (seed) sets the jump cost is divided
// among all callee-saved registers with spill locations on that edge;
// for sets created during the traversal each instruction is assigned
// the complete jump cost.
type JumpEdgeModel struct{}

// LocationCost returns the weight plus any jump-block surcharge.
func (JumpEdgeModel) LocationCost(l Location, seed bool) int64 {
	c := l.Weight()
	if l.NeedsJumpBlock() {
		if seed {
			c += l.Weight() / int64(l.sharers())
		} else {
			c += l.Weight()
		}
	}
	return c
}

// Name returns "jump-edge".
func (JumpEdgeModel) Name() string { return "jump-edge" }

// SetCost is the total cost of a set's locations under the model.
func SetCost(m CostModel, s *Set) int64 {
	var c int64
	for _, l := range s.Saves {
		c += m.LocationCost(l, s.Seed)
	}
	for _, l := range s.Restores {
		c += m.LocationCost(l, s.Seed)
	}
	return c
}

// TotalCost is the summed cost of several sets.
func TotalCost(m CostModel, sets []*Set) int64 {
	var c int64
	for _, s := range sets {
		c += SetCost(m, s)
	}
	return c
}

// AssignJumpSharers counts, for every edge carrying OnEdge locations
// across the given seed sets, how many distinct registers place spill
// code there, and stamps that count into each location. Call it once
// after seed construction, before costing with the jump edge model.
func AssignJumpSharers(sets []*Set) {
	count := make(map[*ir.Edge]map[ir.Reg]bool)
	for _, s := range sets {
		for _, l := range s.Locations() {
			if l.Kind != OnEdge {
				continue
			}
			m := count[l.Edge]
			if m == nil {
				m = make(map[ir.Reg]bool)
				count[l.Edge] = m
			}
			m[s.Reg] = true
		}
	}
	stamp := func(locs []Location) {
		for i := range locs {
			if locs[i].Kind == OnEdge {
				locs[i].JumpSharers = len(count[locs[i].Edge])
			}
		}
	}
	for _, s := range sets {
		stamp(s.Saves)
		stamp(s.Restores)
	}
}
