package core

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// CostKind distinguishes a save (spill store) from a restore (spill
// load) when pricing a location: machines charge memory reads and
// writes differently, so a model needs to know which instruction it is
// pricing, not just where the instruction goes.
type CostKind uint8

const (
	// SaveCost prices a callee-saved save (a memory write).
	SaveCost CostKind = iota
	// RestoreCost prices a callee-saved restore (a memory read).
	RestoreCost
)

// CostModel assigns a dynamic-overhead cost to save/restore locations.
// The paper defines two on its one hard-coded machine: the execution
// count model (optimal, but may place code on jump edges without
// accounting for the jump) and the jump edge model (charges the jump
// instruction a jump block needs). MachineModel generalizes both to an
// arbitrary machine.Desc cost surface.
type CostModel interface {
	// LocationCost returns the dynamic cost of placing one spill
	// instruction of kind k at l. seed selects the initial-set rule
	// that shares a jump instruction's cost among registers.
	LocationCost(k CostKind, l Location, seed bool) int64
	// Name identifies the model in reports.
	Name() string
}

// ExecCountModel is the paper's execution count cost model: each
// inserted instruction costs the execution count of its location. The
// hierarchical algorithm is provably optimal under this model.
type ExecCountModel struct{}

// LocationCost returns the location's execution count.
func (ExecCountModel) LocationCost(k CostKind, l Location, seed bool) int64 { return l.Weight() }

// Name returns "exec-count".
func (ExecCountModel) Name() string { return "exec-count" }

// JumpEdgeModel is the paper's jump edge cost model: a location that
// requires a jump block additionally pays the jump instruction's
// execution count. For initial (seed) sets the jump cost is divided
// among all callee-saved registers with spill locations on that edge;
// for sets created during the traversal each instruction is assigned
// the complete jump cost.
type JumpEdgeModel struct{}

// LocationCost returns the weight plus any jump-block surcharge.
func (JumpEdgeModel) LocationCost(k CostKind, l Location, seed bool) int64 {
	c := l.Weight()
	if l.NeedsJumpBlock() {
		if seed {
			c += l.Weight() / int64(l.sharers())
		} else {
			c += l.Weight()
		}
	}
	return c
}

// Name returns "jump-edge".
func (JumpEdgeModel) Name() string { return "jump-edge" }

// MachineModel prices locations with a machine description's cost
// surface: a save executes a spill store (Desc.Costs.StoreCost per
// execution), a restore a spill load (LoadCost), and — when ChargeJumps
// is set — a location that needs a jump block additionally pays the
// machine's taken-jump penalty (seed sets share it among the registers
// on the edge, exactly like JumpEdgeModel), while spill code split onto
// a fall-through critical edge pays the machine's (usually zero)
// fall-through penalty.
//
// On a machine with unit costs, MachineModel{d} prices exactly like
// ExecCountModel and MachineModel{d, ChargeJumps: true} exactly like
// JumpEdgeModel; the equivalence is pinned by tests.
type MachineModel struct {
	Desc *machine.Desc
	// ChargeJumps selects the jump-edge flavor of the model; without
	// it the model is the machine-priced execution count model.
	ChargeJumps bool
}

// LocationCost prices one spill instruction of kind k at l under the
// machine's cost surface.
func (m MachineModel) LocationCost(k CostKind, l Location, seed bool) int64 {
	c := m.Desc.Costs
	w := l.Weight()
	lat := c.StoreCost()
	if k == RestoreCost {
		lat = c.LoadCost()
	}
	cost := w * lat
	if !m.ChargeJumps {
		return cost
	}
	if l.NeedsJumpBlock() {
		j := w * c.JumpCost()
		if seed {
			j /= int64(l.sharers())
		}
		cost += j
	} else if l.Kind == OnEdge {
		cost += w * c.FallCost()
	}
	return cost
}

// Name identifies the model and its machine, e.g. "jump-edge@classic".
func (m MachineModel) Name() string {
	base := "exec-count"
	if m.ChargeJumps {
		base = "jump-edge"
	}
	if m.Desc.Name == "" {
		return base
	}
	return base + "@" + m.Desc.Name
}

// SetCost is the total cost of a set's locations under the model.
func SetCost(m CostModel, s *Set) int64 {
	var c int64
	for _, l := range s.Saves {
		c += m.LocationCost(SaveCost, l, s.Seed)
	}
	for _, l := range s.Restores {
		c += m.LocationCost(RestoreCost, l, s.Seed)
	}
	return c
}

// TotalCost is the summed cost of several sets.
func TotalCost(m CostModel, sets []*Set) int64 {
	var c int64
	for _, s := range sets {
		c += SetCost(m, s)
	}
	return c
}

// AssignJumpSharers counts, for every edge carrying OnEdge locations
// across the given seed sets, how many distinct registers place spill
// code there, and stamps that count into each location. Call it once
// after seed construction, before costing with the jump edge model.
func AssignJumpSharers(sets []*Set) {
	count := make(map[*ir.Edge]map[ir.Reg]bool)
	for _, s := range sets {
		for _, l := range s.Locations() {
			if l.Kind != OnEdge {
				continue
			}
			m := count[l.Edge]
			if m == nil {
				m = make(map[ir.Reg]bool)
				count[l.Edge] = m
			}
			m[s.Reg] = true
		}
	}
	stamp := func(locs []Location) {
		for i := range locs {
			if locs[i].Kind == OnEdge {
				locs[i].JumpSharers = len(count[locs[i].Edge])
			}
		}
	}
	for _, s := range sets {
		stamp(s.Saves)
		stamp(s.Restores)
	}
}
