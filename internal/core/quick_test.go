package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/cfgtest"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

// randomAllocated builds a random structured CFG and allocates a
// callee-saved register in a few random blocks (single-block webs).
func randomAllocated(seed uint64) *ir.Func {
	f := cfgtest.RandomStructured(seed, 3)
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	// Pick up to three non-entry blocks deterministically from the seed.
	s := seed
	picked := 0
	for i := 0; i < len(f.Blocks) && picked < 3; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		b := f.Blocks[int(s>>33)%len(f.Blocks)]
		if b == f.Entry || b.IsExit() {
			continue
		}
		workload.AllocateGroup(f, reg, b.Name)
		picked++
	}
	if picked == 0 {
		workload.AllocateGroup(f, reg, f.Blocks[len(f.Blocks)/2].Name)
	}
	return f
}

// TestQuickPlacementInvariants: on random CFGs with random allocation,
// every strategy validates and the hierarchical result is never worse,
// under both cost models.
func TestQuickPlacementInvariants(t *testing.T) {
	check := func(seed uint64) bool {
		f := randomAllocated(seed)
		tr, err := pst.Build(f)
		if err != nil {
			t.Logf("seed %x: pst: %v", seed, err)
			return false
		}
		seedSets := shrinkwrap.Compute(f, shrinkwrap.Seed)
		if err := core.ValidateSets(f, seedSets); err != nil {
			t.Logf("seed %x: seed invalid: %v", seed, err)
			return false
		}
		orig := shrinkwrap.Compute(f, shrinkwrap.Original)
		if err := core.ValidateSets(f, orig); err != nil {
			t.Logf("seed %x: original invalid: %v", seed, err)
			return false
		}
		for _, l := range locations(orig) {
			if l.NeedsJumpBlock() {
				t.Logf("seed %x: original shrink-wrap used a jump edge at %v", seed, l)
				return false
			}
		}
		ee := core.EntryExit(f)
		for _, m := range []core.CostModel{core.ExecCountModel{}, core.JumpEdgeModel{}} {
			final, _, err := core.Hierarchical(f, tr, seedSets, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := core.ValidateSets(f, final); err != nil {
				t.Logf("seed %x: hierarchical(%s) invalid: %v", seed, m.Name(), err)
				return false
			}
			opt := core.TotalCost(m, final)
			if opt > core.TotalCost(m, ee) || opt > core.TotalCost(m, orig) || opt > core.TotalCost(m, seedSets) {
				t.Logf("seed %x: %s not minimal among techniques", seed, m.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func locations(sets []*core.Set) []core.Location {
	var out []core.Location
	for _, s := range sets {
		out = append(out, s.Locations()...)
	}
	return out
}

// TestQuickApplyVerifies: applying the hierarchical placement to a
// random CFG always leaves a structurally valid function.
func TestQuickApplyVerifies(t *testing.T) {
	check := func(seed uint64) bool {
		f := randomAllocated(seed)
		tr, err := pst.Build(f)
		if err != nil {
			return false
		}
		seedSets := shrinkwrap.Compute(f, shrinkwrap.Seed)
		final, _, err := core.Hierarchical(f, tr, seedSets, core.JumpEdgeModel{})
		if err != nil {
			t.Fatal(err)
		}
		if err := core.Apply(f, final); err != nil {
			t.Logf("seed %x: apply: %v", seed, err)
			return false
		}
		if err := ir.Verify(f); err != nil {
			t.Logf("seed %x: verify: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
