package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/pst"
)

// BoundaryLocs returns the save location(s) at a region's entry and
// the restore location(s) at its exit. The root region's boundaries
// are procedure entry and every procedure exit.
func BoundaryLocs(f *ir.Func, r *pst.Region) (saves, restores []Location) {
	if r.EntryEdge != nil {
		saves = []Location{EdgeLoc(r.EntryEdge)}
	} else {
		saves = []Location{HeadLoc(f.Entry)}
	}
	switch {
	case r.ExitEdge != nil:
		restores = []Location{EdgeLoc(r.ExitEdge)}
	case r.ExitBlock != nil:
		restores = []Location{TailLoc(r.ExitBlock)}
	default:
		for _, x := range f.Exits() {
			restores = append(restores, TailLoc(x))
		}
	}
	return saves, restores
}

// boundaryCost is the cost of saving at the region entry and restoring
// at the region exit(s) for one register, under the model. Boundary
// sets are created by the algorithm, so the seed jump-sharing rule
// does not apply.
func boundaryCost(m CostModel, f *ir.Func, r *pst.Region) int64 {
	saves, restores := BoundaryLocs(f, r)
	var c int64
	for _, l := range saves {
		c += m.LocationCost(SaveCost, l, false)
	}
	for _, l := range restores {
		c += m.LocationCost(RestoreCost, l, false)
	}
	return c
}

// locContained reports whether a location lies inside region r. The
// region's own boundary edges are outside; in-block locations belong
// to the region of their block.
func locContained(r *pst.Region, l Location) bool {
	if l.Kind == OnEdge {
		return r.ContainsEdge(l.Edge)
	}
	return r.ContainsBlock(l.Block)
}

// setContained reports whether every location of the set lies inside
// region r. The root region contains every set.
func setContained(r *pst.Region, s *Set) bool {
	if r.IsRoot() {
		return true
	}
	for _, l := range s.Saves {
		if !locContained(r, l) {
			return false
		}
	}
	for _, l := range s.Restores {
		if !locContained(r, l) {
			return false
		}
	}
	return true
}

// RegionDecision records one step of the traversal, for reports and
// for reproducing the paper's worked example.
type RegionDecision struct {
	Region        *pst.Region
	Reg           ir.Reg
	ContainedCost int64
	BoundaryCost  int64
	Replaced      bool
}

// Hierarchical runs the paper's hierarchical spill code placement
// algorithm: traverse the PST bottom-up; at each maximal SESE region
// and for each callee-saved register, if the cost of saving/restoring
// at the region boundaries is less than or equal to the total cost of
// the save/restore sets contained in the region, replace them with a
// single set at the boundaries.
//
// It returns the final save/restore sets and the per-region decisions
// in traversal order. The input seed sets are not modified. It errors
// when handed unusable inputs — a nil cost model, a nil tree, or a
// tree built for a different function — instead of traversing with
// them; callers must propagate the error rather than apply a partial
// placement.
//
// Hierarchical keeps all working state local and only reads f, t, and
// seed, so concurrent calls over distinct functions (each with its own
// PST and seed) are safe — the parallel pipeline relies on this.
func Hierarchical(f *ir.Func, t *pst.PST, seed []*Set, m CostModel) ([]*Set, []RegionDecision, error) {
	switch {
	case m == nil:
		return nil, nil, fmt.Errorf("core.Hierarchical(%s): nil cost model", f.Name)
	case t == nil:
		return nil, nil, fmt.Errorf("core.Hierarchical(%s): nil PST", f.Name)
	case t.Func != f:
		return nil, nil, fmt.Errorf("core.Hierarchical(%s): PST was built for %s", f.Name, t.Func.Name)
	}
	live := make([]*Set, len(seed))
	copy(live, seed)
	var decisions []RegionDecision

	for _, r := range t.BottomUp() {
		for _, reg := range f.UsedCalleeSaved {
			var contained []*Set
			for _, s := range live {
				if s.Reg == reg && setContained(r, s) {
					contained = append(contained, s)
				}
			}
			if len(contained) == 0 {
				continue
			}
			cc := TotalCost(m, contained)
			bc := boundaryCost(m, f, r)
			replaced := bc <= cc
			decisions = append(decisions, RegionDecision{
				Region: r, Reg: reg,
				ContainedCost: cc, BoundaryCost: bc, Replaced: replaced,
			})
			if !replaced {
				continue
			}
			// Remove the contained sets and add one at the boundaries.
			next := live[:0:0]
			for _, s := range live {
				if !(s.Reg == reg && setContained(r, s)) {
					next = append(next, s)
				}
			}
			saves, restores := BoundaryLocs(f, r)
			next = append(next, &Set{Reg: reg, Saves: saves, Restores: restores})
			live = next
		}
	}
	return live, decisions, nil
}

// EntryExit returns the baseline placement: save every used
// callee-saved register at procedure entry, restore it at every exit.
func EntryExit(f *ir.Func) []*Set {
	var sets []*Set
	for _, reg := range f.UsedCalleeSaved {
		s := &Set{Reg: reg, Saves: []Location{HeadLoc(f.Entry)}}
		for _, x := range f.Exits() {
			s.Restores = append(s.Restores, TailLoc(x))
		}
		sets = append(sets, s)
	}
	return sets
}

// PlacementCost is the total dynamic overhead of a placement under a
// model (used for reporting; the VM measures the realized overhead).
func PlacementCost(m CostModel, sets []*Set) int64 { return TotalCost(m, sets) }
