package core

import (
	"errors"
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/machine"
)

// ValidateSets checks that a logical placement preserves the callee-
// saved convention along every execution path and never corrupts an
// allocated value:
//
//  1. Convention: simulating every path with a (register-holds-
//     original, slot-holds-original) state machine, every procedure
//     exit must be reached with the register holding its original
//     value, for every register that the allocation writes.
//  2. No corruption: a restore must not be placed at a point where the
//     register's allocated value is still live (that would overwrite
//     the variable), checked against real liveness of the register.
//
// It works on the placement description, before Apply mutates the
// function. All simulation state is local to the call, so concurrent
// validation of distinct functions is safe.
func ValidateSets(f *ir.Func, sets []*Set) error {
	return ValidateSetsLive(f, sets, dataflow.ComputeLiveness(f))
}

// ValidateSetsLive is ValidateSets over a caller-provided liveness
// solution for f, so callers holding one (the shared analysis layer)
// do not pay for a rebuild. lv must describe f's current shape.
func ValidateSetsLive(f *ir.Func, sets []*Set, lv *dataflow.Liveness) error {
	var errs []error
	for _, reg := range f.UsedCalleeSaved {
		var regSets []*Set
		for _, s := range sets {
			if s.Reg == reg {
				regSets = append(regSets, s)
			}
		}
		if err := validateReg(f, reg, regSets, lv); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

type pointOps struct {
	restores int // count of restore instructions at this point
	saves    int
}

// validateReg checks one register's placement.
func validateReg(f *ir.Func, reg ir.Reg, sets []*Set, lv *dataflow.Liveness) error {
	heads := make(map[*ir.Block]*pointOps)
	tails := make(map[*ir.Block]*pointOps)
	edges := make(map[*ir.Edge]*pointOps)
	get := func(m map[*ir.Block]*pointOps, b *ir.Block) *pointOps {
		p := m[b]
		if p == nil {
			p = &pointOps{}
			m[b] = p
		}
		return p
	}
	getE := func(e *ir.Edge) *pointOps {
		p := edges[e]
		if p == nil {
			p = &pointOps{}
			edges[e] = p
		}
		return p
	}
	for _, s := range sets {
		for _, l := range s.Saves {
			switch l.Kind {
			case BlockHead:
				get(heads, l.Block).saves++
			case BlockTail:
				get(tails, l.Block).saves++
			case OnEdge:
				getE(l.Edge).saves++
			}
		}
		for _, l := range s.Restores {
			switch l.Kind {
			case BlockHead:
				get(heads, l.Block).restores++
			case BlockTail:
				get(tails, l.Block).restores++
			case OnEdge:
				getE(l.Edge).restores++
			}
		}
	}

	// Corruption check: a restore where the register's value is live.
	ri := int(reg)
	for _, s := range sets {
		for _, l := range s.Restores {
			switch l.Kind {
			case BlockHead:
				if lv.In[l.Block.ID].Has(ri) {
					return fmt.Errorf("core: restore of %v at %v overwrites a live value", reg, l)
				}
			case BlockTail:
				if lv.Out[l.Block.ID].Has(ri) || terminatorUses(l.Block, reg) {
					return fmt.Errorf("core: restore of %v at %v overwrites a live value", reg, l)
				}
			case OnEdge:
				if lv.In[l.Edge.To.ID].Has(ri) {
					return fmt.Errorf("core: restore of %v at %v overwrites a live value", reg, l)
				}
			}
		}
	}

	// Clobber blocks: the allocation writes reg there.
	clobbers := make([]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Def() == reg && in.Op != ir.OpRestore {
				clobbers[b.ID] = true
			}
		}
	}

	// State: bit0 = register holds original, bit1 = slot holds
	// original. Entry state: register yes, slot no.
	type st uint8
	const (
		regOrig st = 1 << iota
		slotOrig
	)
	apply := func(s st, p *pointOps) st {
		if p == nil {
			return s
		}
		for i := 0; i < p.restores; i++ {
			if s&slotOrig != 0 {
				s |= regOrig
			} else {
				s &^= regOrig
			}
		}
		for i := 0; i < p.saves; i++ {
			if s&regOrig != 0 {
				s |= slotOrig
			} else {
				s &^= slotOrig
			}
		}
		return s
	}

	seen := make(map[[2]int]bool) // (block ID, state)
	type item struct {
		b *ir.Block
		s st
	}
	work := []item{{f.Entry, regOrig}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		key := [2]int{it.b.ID, int(it.s)}
		if seen[key] {
			continue
		}
		seen[key] = true

		s := apply(it.s, heads[it.b])
		if clobbers[it.b.ID] {
			s &^= regOrig
		}
		s = apply(s, tails[it.b])
		if it.b.IsExit() {
			if s&regOrig == 0 {
				return fmt.Errorf("core: register %v does not hold its original value at exit %s",
					reg, it.b.Name)
			}
			continue
		}
		for _, e := range it.b.Succs {
			work = append(work, item{e.To, apply(s, edges[e])})
		}
	}
	return nil
}

func terminatorUses(b *ir.Block, reg ir.Reg) bool {
	t := b.Terminator()
	if t == nil {
		return false
	}
	var buf [4]ir.Reg
	for _, u := range t.Uses(buf[:0]) {
		if u == reg {
			return true
		}
	}
	return false
}

// DynamicOverhead sums the dynamic execution counts of every
// compiler-inserted overhead instruction in f (allocator spill code,
// callee-saved saves/restores, and jump-block jumps), using the
// profile weights on the CFG. The VM measures the same quantity by
// execution; the two must agree when the profile matches the run.
func DynamicOverhead(f *ir.Func) int64 {
	var total int64
	for _, b := range f.Blocks {
		n := int64(0)
		for _, in := range b.Instrs {
			if in.IsOverhead() {
				n++
			}
		}
		if n > 0 {
			total += n * b.ExecCount()
		}
	}
	return total
}

// OverheadBreakdown splits DynamicOverhead by instruction class.
type OverheadBreakdown struct {
	SpillLoads    int64 // allocator spill reloads
	SpillStores   int64 // allocator spill stores
	Saves         int64 // callee-saved saves
	Restores      int64 // callee-saved restores
	JumpBlockJmps int64 // jumps added for jump blocks
}

// Total sums all categories.
func (o OverheadBreakdown) Total() int64 {
	return o.SpillLoads + o.SpillStores + o.Saves + o.Restores + o.JumpBlockJmps
}

// Cost prices the breakdown with a machine's cost surface: memory
// reads at the spill-load latency, memory writes at the spill-store
// latency, jump-block jumps at the taken-jump penalty. With unit costs
// it equals Total. The VM's Stats.WeightedOverhead measures the same
// quantity by execution; the two must agree when the profile matches
// the run.
func (o OverheadBreakdown) Cost(c machine.Costs) int64 {
	return c.Price(o.SpillLoads+o.Restores, o.SpillStores+o.Saves, o.JumpBlockJmps)
}

// Breakdown computes the per-class dynamic overhead of f.
func Breakdown(f *ir.Func) OverheadBreakdown {
	var o OverheadBreakdown
	for _, b := range f.Blocks {
		w := b.ExecCount()
		for _, in := range b.Instrs {
			switch {
			case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpSave:
				o.Saves += w
			case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpRestore:
				o.Restores += w
			case in.Flags&ir.FlagJumpBlock != 0:
				o.JumpBlockJmps += w
			case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillLoad:
				o.SpillLoads += w
			case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillStore:
				o.SpillStores += w
			}
		}
	}
	return o
}
