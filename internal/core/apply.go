package core

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Apply physically inserts the save/restore instructions described by
// sets into f, creating jump blocks where spill code must live on jump
// edges. Save slots are assigned per register and recorded in
// f.SaveSlots. The function is mutated; callers comparing strategies
// should Apply to clones.
//
// At any single program point restores are inserted before saves, so a
// point that ends one allocation web and begins another stays correct.
func Apply(f *ir.Func, sets []*Set) error {
	_, err := ApplyWithDelta(f, sets)
	return err
}

// ApplyWithDelta is Apply plus a structured edit log describing what
// changed: which blocks received in-block insertions, which edges were
// split (and with what new blocks and edges), which registers the
// inserted code touches, and the pre-edit block IDs. The returned
// delta is never nil; if Apply failed partway, delta.Full is set and
// the only safe reaction is full re-analysis.
func ApplyWithDelta(f *ir.Func, sets []*Set) (*Delta, error) {
	d := &Delta{Func: f, OldNumBlocks: len(f.Blocks), OldID: make(map[*ir.Block]int, len(f.Blocks))}
	for _, b := range f.Blocks {
		d.OldID[b] = b.ID
	}
	seen := make(map[ir.Reg]bool)
	for _, s := range sets {
		if !seen[s.Reg] {
			seen[s.Reg] = true
			d.Regs = append(d.Regs, s.Reg)
		}
	}
	sortRegs(d.Regs)
	if err := applyDelta(f, sets, d); err != nil {
		d.Full = true
		return d, err
	}
	return d, nil
}

// applyDelta is the body of Apply, recording the edit log into d.
func applyDelta(f *ir.Func, sets []*Set, d *Delta) error {
	slots := saveSlots(f, sets)

	type edgePlan struct {
		restores []ir.Reg
		saves    []ir.Reg
	}
	heads := make(map[*ir.Block]*edgePlan)
	tails := make(map[*ir.Block]*edgePlan)
	onEdge := make(map[*ir.Edge]*edgePlan)
	var edgeOrder []*ir.Edge

	plan := func(m map[*ir.Block]*edgePlan, b *ir.Block) *edgePlan {
		p := m[b]
		if p == nil {
			p = &edgePlan{}
			m[b] = p
		}
		return p
	}
	planEdge := func(e *ir.Edge) *edgePlan {
		p := onEdge[e]
		if p == nil {
			p = &edgePlan{}
			onEdge[e] = p
			edgeOrder = append(edgeOrder, e)
		}
		return p
	}

	for _, s := range sets {
		for _, l := range s.Saves {
			switch l.Kind {
			case BlockHead:
				p := plan(heads, l.Block)
				p.saves = append(p.saves, s.Reg)
			case BlockTail:
				p := plan(tails, l.Block)
				p.saves = append(p.saves, s.Reg)
			case OnEdge:
				p := planEdge(l.Edge)
				p.saves = append(p.saves, s.Reg)
			}
		}
		for _, l := range s.Restores {
			switch l.Kind {
			case BlockHead:
				p := plan(heads, l.Block)
				p.restores = append(p.restores, s.Reg)
			case BlockTail:
				p := plan(tails, l.Block)
				p.restores = append(p.restores, s.Reg)
			case OnEdge:
				p := planEdge(l.Edge)
				p.restores = append(p.restores, s.Reg)
			}
		}
	}

	saveInstr := func(r ir.Reg) *ir.Instr {
		return &ir.Instr{Op: ir.OpSave, Dst: ir.NoReg, Src1: r, Src2: ir.NoReg,
			Imm: int64(slots[r]), Flags: ir.FlagSaveRestore}
	}
	restoreInstr := func(r ir.Reg) *ir.Instr {
		return &ir.Instr{Op: ir.OpRestore, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg,
			Imm: int64(slots[r]), Flags: ir.FlagSaveRestore}
	}

	// Record in-block insertion sites in layout order (the maps are
	// unordered) so delta consumers see a deterministic log.
	for _, b := range f.Blocks {
		if heads[b] != nil {
			d.HeadBlocks = append(d.HeadBlocks, b)
		}
		if tails[b] != nil {
			d.TailBlocks = append(d.TailBlocks, b)
		}
	}

	// In-block insertions. Deterministic order: by register number.
	for b, p := range heads {
		sortRegs(p.restores)
		sortRegs(p.saves)
		// Insert at head: final order = restores then saves, so insert
		// saves first (each InsertAtHead prepends).
		for i := len(p.saves) - 1; i >= 0; i-- {
			b.InsertAtHead(saveInstr(p.saves[i]))
		}
		for i := len(p.restores) - 1; i >= 0; i-- {
			b.InsertAtHead(restoreInstr(p.restores[i]))
		}
	}
	for b, p := range tails {
		sortRegs(p.restores)
		sortRegs(p.saves)
		for _, r := range p.restores {
			b.InsertBeforeTerminator(restoreInstr(r))
		}
		for _, r := range p.saves {
			b.InsertBeforeTerminator(saveInstr(r))
		}
	}

	// Edge insertions: split each edge once, placing all spill code
	// for that edge in a single new block so at most one jump
	// instruction is added per edge.
	for i, e := range edgeOrder {
		p := onEdge[e]
		sortRegs(p.restores)
		sortRegs(p.saves)
		var body []*ir.Instr
		for _, r := range p.restores {
			body = append(body, restoreInstr(r))
		}
		for _, r := range p.saves {
			body = append(body, saveInstr(r))
		}
		split, err := splitEdge(f, e, fmt.Sprintf("jb%d", i), body)
		if err != nil {
			return err
		}
		d.Splits = append(d.Splits, split)
	}

	f.RenumberBlocks()

	// Exact frame sizing: after insertion the save area is exactly the
	// highest slot any save/restore references, plus one. A stale,
	// larger count from an earlier pipeline stage would make every
	// frame carry dead slots for the rest of the program's life.
	f.SaveSlots = f.MaxFrameSlot(ir.OpSave, ir.OpRestore) + 1

	return ir.Verify(f)
}

func sortRegs(rs []ir.Reg) {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
}

// saveSlots assigns a frame save slot to every register appearing in
// sets. Apply recomputes f.SaveSlots exactly after insertion.
func saveSlots(f *ir.Func, sets []*Set) map[ir.Reg]int {
	slots := make(map[ir.Reg]int)
	var regs []ir.Reg
	for _, s := range sets {
		if _, ok := slots[s.Reg]; !ok {
			slots[s.Reg] = 0
			regs = append(regs, s.Reg)
		}
	}
	sortRegs(regs)
	for i, r := range regs {
		slots[r] = i
	}
	return slots
}

// splitEdge replaces edge e with From -> nb -> To where nb holds body
// followed by a jump to To. For a fall-through edge the new block is
// laid out directly after From, keeping both halves fall-through and
// costing no extra jump at run time; for a jump edge the block is
// appended at the end of the layout and its trailing jump is flagged
// as jump-block overhead.
func splitEdge(f *ir.Func, e *ir.Edge, name string, body []*ir.Instr) (EdgeSplit, error) {
	from, to := e.From, e.To
	isJump := e.Kind == ir.Jump

	nb := &ir.Block{Name: name, Func: f}
	nb.Instrs = append(nb.Instrs, body...)
	j := &ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Then: to}
	if isJump {
		j.Flags = ir.FlagJumpBlock
	}
	nb.Instrs = append(nb.Instrs, j)

	// Layout.
	if isJump {
		f.Blocks = append(f.Blocks, nb)
	} else {
		idx := -1
		for i, b := range f.Blocks {
			if b == from {
				idx = i
				break
			}
		}
		if idx < 0 {
			return EdgeSplit{}, fmt.Errorf("core.splitEdge: block %s not in layout", from.Name)
		}
		f.Blocks = append(f.Blocks, nil)
		copy(f.Blocks[idx+2:], f.Blocks[idx+1:])
		f.Blocks[idx+1] = nb
	}

	// Retarget the terminator of From.
	t := from.Terminator()
	if t == nil {
		return EdgeSplit{}, fmt.Errorf("core.splitEdge: block %s has no terminator", from.Name)
	}
	switch t.Op {
	case ir.OpJmp:
		if t.Then != to {
			return EdgeSplit{}, fmt.Errorf("core.splitEdge: jmp in %s does not target %s", from.Name, to.Name)
		}
		t.Then = nb
	case ir.OpBr:
		switch {
		case t.Then == to:
			t.Then = nb
		case t.Else == to:
			t.Else = nb
		default:
			return EdgeSplit{}, fmt.Errorf("core.splitEdge: br in %s does not target %s", from.Name, to.Name)
		}
	default:
		return EdgeSplit{}, fmt.Errorf("core.splitEdge: block %s ends in %v", from.Name, t.Op)
	}

	// Rewire CFG edges.
	w, kind := e.Weight, e.Kind
	f.RemoveEdge(e)
	e1 := f.AddEdge(from, nb, kind, w)
	k2 := ir.Jump
	if !isJump {
		k2 = ir.FallThrough
	}
	e2 := f.AddEdge(nb, to, k2, w)
	return EdgeSplit{From: from, To: to, NewBlock: nb, OldEdge: e, FromEdge: e1, ToEdge: e2, WasJump: isJump}, nil
}
