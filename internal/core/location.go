// Package core implements the paper's contribution: save/restore
// locations and sets, the execution-count and jump-edge cost models,
// and the hierarchical spill code placement algorithm over the
// program structure tree, together with placement application (jump
// block insertion) and structural validation.
package core

import (
	"fmt"

	"repro/internal/ir"
)

// LocKind distinguishes where a save or restore instruction lives.
type LocKind uint8

const (
	// BlockHead places the instruction before all others in a block.
	// It covers every incoming edge and never needs a jump block.
	BlockHead LocKind = iota
	// BlockTail places the instruction just before the terminator.
	// It covers every outgoing edge and never needs a jump block.
	BlockTail
	// OnEdge places the instruction on one control flow edge. If the
	// edge is a jump edge, physically inserting the code requires a
	// jump block (an extra jump instruction at run time).
	OnEdge
)

// Location is one save or restore placement point.
type Location struct {
	Kind  LocKind
	Block *ir.Block // BlockHead/BlockTail
	Edge  *ir.Edge  // OnEdge

	// JumpSharers is the number of callee-saved registers sharing a
	// jump block on this edge at seed time. The jump-edge cost model
	// divides the jump instruction's cost among them for initial
	// (shrink-wrap determined) sets; sets created by the hierarchical
	// algorithm always use 1. Zero means 1.
	JumpSharers int
}

// EdgeLoc builds a location on edge e, normalized to the equivalent
// in-block form when one exists: if the target has a single
// predecessor the location is the target's head, else if the source
// has a single successor it is the source's tail, and only otherwise
// does the location stay on the edge itself.
func EdgeLoc(e *ir.Edge) Location {
	if len(e.To.Preds) == 1 {
		return Location{Kind: BlockHead, Block: e.To}
	}
	if len(e.From.Succs) == 1 {
		return Location{Kind: BlockTail, Block: e.From}
	}
	return Location{Kind: OnEdge, Edge: e}
}

// HeadLoc builds a location at the head of b.
func HeadLoc(b *ir.Block) Location { return Location{Kind: BlockHead, Block: b} }

// TailLoc builds a location at the tail of b (before its terminator).
func TailLoc(b *ir.Block) Location { return Location{Kind: BlockTail, Block: b} }

// Weight is the dynamic execution count of the location.
func (l Location) Weight() int64 {
	if l.Kind == OnEdge {
		return l.Edge.Weight
	}
	return l.Block.ExecCount()
}

// NeedsJumpBlock reports whether physically inserting code at this
// location requires a new jump block with a trailing jump instruction.
func (l Location) NeedsJumpBlock() bool {
	return l.Kind == OnEdge && l.Edge.Kind == ir.Jump
}

// sharers returns the jump-cost divisor (at least 1).
func (l Location) sharers() int {
	if l.JumpSharers < 1 {
		return 1
	}
	return l.JumpSharers
}

// String renders the location for diagnostics.
func (l Location) String() string {
	switch l.Kind {
	case BlockHead:
		return "head(" + l.Block.Name + ")"
	case BlockTail:
		return "tail(" + l.Block.Name + ")"
	default:
		return fmt.Sprintf("edge(%s->%s)", l.Edge.From.Name, l.Edge.To.Name)
	}
}

// samePoint reports whether two locations denote the same physical
// program point.
func (l Location) samePoint(o Location) bool {
	return l.Kind == o.Kind && l.Block == o.Block && l.Edge == o.Edge
}

// Set is a save/restore set: the save and restore locations for one
// callee-saved register that depend on each other for validity and
// are independent of every other set.
type Set struct {
	Reg      ir.Reg
	Saves    []Location
	Restores []Location
	// Seed marks sets produced by the initial shrink-wrapping
	// analysis; their jump costs are shared among registers.
	Seed bool
}

// Locations returns all locations of the set, saves first.
func (s *Set) Locations() []Location {
	out := make([]Location, 0, len(s.Saves)+len(s.Restores))
	out = append(out, s.Saves...)
	out = append(out, s.Restores...)
	return out
}

// String renders the set for diagnostics.
func (s *Set) String() string {
	str := fmt.Sprintf("set[%v] saves:", s.Reg)
	for _, l := range s.Saves {
		str += " " + l.String()
	}
	str += " restores:"
	for _, l := range s.Restores {
		str += " " + l.String()
	}
	return str
}
