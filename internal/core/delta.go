package core

import (
	"repro/internal/ir"
)

// EdgeSplit records one edge split performed by Apply: the edge
// From->To was replaced by From->NewBlock->To, with NewBlock holding
// the spill code (and a trailing jump) that had to live on the edge.
type EdgeSplit struct {
	// From and To are the original endpoints; both predate the edit.
	From, To *ir.Block
	// NewBlock is the inserted jump block.
	NewBlock *ir.Block
	// OldEdge is the removed From->To edge. It is detached from the
	// CFG and must be used for identity only (analyses that memoized
	// the pointer can recognize it).
	OldEdge *ir.Edge
	// FromEdge and ToEdge are the replacement edges From->NewBlock and
	// NewBlock->To.
	FromEdge, ToEdge *ir.Edge
	// WasJump reports whether the split edge was a jump edge (the new
	// block was appended at the end of the layout) rather than a
	// fall-through edge (the new block was laid out after From).
	WasJump bool
}

// Delta is the structured edit log of one Apply: which blocks received
// in-block save/restore insertions and which edges were split. Every
// edit Apply performs is one of those two shapes, so an analysis that
// can patch both can update itself in place instead of rebuilding
// (analysis.Info.ApplyDelta); any other mutation source must either
// describe itself the same way or set Full.
type Delta struct {
	// Func is the edited function.
	Func *ir.Func

	// Splits lists the edge splits in application order.
	Splits []EdgeSplit
	// HeadBlocks and TailBlocks list the pre-existing blocks that
	// received head/tail save-restore insertions (no CFG change).
	HeadBlocks []*ir.Block
	// TailBlocks: see HeadBlocks.
	TailBlocks []*ir.Block
	// Regs lists the callee-saved registers the inserted save/restore
	// instructions touch, ascending. Liveness of every other register
	// is unaffected by the edit.
	Regs []ir.Reg

	// OldID maps every block that existed before the edit to its
	// pre-edit ID. Apply renumbers blocks after inserting jump blocks,
	// so ID-indexed analysis arrays must be remapped through it.
	OldID map[*ir.Block]int
	// OldNumBlocks is the pre-edit block count.
	OldNumBlocks int

	// Full marks an edit the structured fields do not describe (a
	// mid-apply failure, or a mutation from another source). Consumers
	// must fall back to full invalidation.
	Full bool
}

// FullDelta returns a delta that carries no structure and forces
// consumers to fully invalidate — the honest description of an edit
// the log cannot express.
func FullDelta(f *ir.Func) *Delta {
	return &Delta{Func: f, Full: true}
}

// IsNewBlock reports whether b was inserted by this edit.
func (d *Delta) IsNewBlock(b *ir.Block) bool {
	for i := range d.Splits {
		if d.Splits[i].NewBlock == b {
			return true
		}
	}
	return false
}
