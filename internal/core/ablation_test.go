package core_test

// Ablations of design choices the paper calls out:
//
//   - maximal vs canonical SESE regions: the paper deviates from
//     Johnson/Pearson/Pingali by using maximal regions. Since every
//     edge of a cycle-equivalence class runs at the same frequency,
//     hoisting through the extra canonical boundaries cannot change
//     the final cost — only the amount of work. Verified here.
//   - one traversal iteration: the paper limits the algorithm to one
//     pass to avoid the imprecision of incremental jump-cost updates;
//     a second pass over the first pass's output must change nothing
//     under the execution count model (fixpoint).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func TestCanonicalEqualsMaximalCost(t *testing.T) {
	funcs := randomFuncs(t, 20)
	funcs = append(funcs, workload.NewFigure2().Func)
	m := core.ExecCountModel{}
	for _, f := range funcs {
		maxT, err := pst.Build(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		canT, err := pst.BuildMode(f, pst.Canonical)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		maxF, _, err := core.Hierarchical(f, maxT, seed, m)
		if err != nil {
			t.Fatal(err)
		}
		canF, _, err := core.Hierarchical(f, canT, seed, m)
		if err != nil {
			t.Fatal(err)
		}
		mc, cc := core.TotalCost(m, maxF), core.TotalCost(m, canF)
		if mc != cc {
			t.Errorf("%s: maximal-region cost %d != canonical-region cost %d", f.Name, mc, cc)
		}
		if err := core.ValidateSets(f, canF); err != nil {
			t.Errorf("%s canonical placement invalid: %v", f.Name, err)
		}
	}
}

func TestSecondPassIsFixpointExecModel(t *testing.T) {
	m := core.ExecCountModel{}
	for _, f := range randomFuncs(t, 20) {
		tr, err := pst.Build(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		once, _, err := core.Hierarchical(f, tr, seed, m)
		if err != nil {
			t.Fatal(err)
		}
		twice, _, err := core.Hierarchical(f, tr, once, m)
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := core.TotalCost(m, once), core.TotalCost(m, twice)
		if c2 != c1 {
			t.Errorf("%s: second pass changed cost %d -> %d (not a fixpoint)", f.Name, c1, c2)
		}
	}
}

func TestJumpModelSecondPassNeverWorse(t *testing.T) {
	// Under the jump edge model a second pass may differ (the paper
	// explains why one iteration is chosen), but it must never
	// increase the cost: every replacement is non-increasing.
	m := core.JumpEdgeModel{}
	for _, f := range randomFuncs(t, 20) {
		tr, err := pst.Build(f)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
		once, _, err := core.Hierarchical(f, tr, seed, m)
		if err != nil {
			t.Fatal(err)
		}
		twice, _, err := core.Hierarchical(f, tr, once, m)
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := core.TotalCost(m, once), core.TotalCost(m, twice)
		if c2 > c1 {
			t.Errorf("%s: second pass increased cost %d -> %d", f.Name, c1, c2)
		}
	}
}
