package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

// branchy builds a function with a two-way branch (so edge locations
// and successor order are meaningful) and one callee-saved register.
func branchy(t *testing.T) *ir.Func {
	t.Helper()
	b := ir.NewBuilder("f", 1)
	b.Block("entry")
	left := b.F.NewBlock("left")
	right := b.F.NewBlock("right")
	join := b.F.NewBlock("join")
	b.Br(b.F.Params[0], left, right, 3, 4)
	b.SetCurrent(left)
	b.Jmp(join, 3)
	b.SetCurrent(right)
	b.Jmp(join, 4)
	b.SetCurrent(join)
	b.Ret(b.F.Params[0])
	f := b.Finish()
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestTranslateSets: locations survive a Clone translation pointing at
// the equivalent dst blocks and edges.
func TestTranslateSets(t *testing.T) {
	f := branchy(t)
	entry := f.Entry
	sets := []*core.Set{{
		Reg:      ir.Reg(3),
		Saves:    []core.Location{core.HeadLoc(entry)},
		Restores: []core.Location{{Kind: core.OnEdge, Edge: entry.Succs[1], JumpSharers: 2}},
		Seed:     true,
	}}
	clone := f.Clone()
	got, err := core.TranslateSets(sets, f, clone)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Saves[0].Block != clone.Entry {
		t.Error("head location not remapped to the clone's entry")
	}
	r := got[0].Restores[0]
	if r.Edge != clone.Entry.Succs[1] {
		t.Error("edge location not remapped to the clone's matching edge")
	}
	if r.JumpSharers != 2 || !got[0].Seed {
		t.Error("JumpSharers/Seed not preserved")
	}
	if sets[0].Restores[0].Edge != entry.Succs[1] {
		t.Error("input sets mutated")
	}
}

// TestTranslateSetsRejectsNonClones: a destination that is not a
// structural clone — wrong block count, renamed block, or permuted
// successor order — must be rejected, never silently misplaced.
func TestTranslateSetsRejectsNonClones(t *testing.T) {
	f := branchy(t)
	sets := []*core.Set{{
		Reg:   ir.Reg(3),
		Saves: []core.Location{{Kind: core.OnEdge, Edge: f.Entry.Succs[0]}},
	}}

	short := f.Clone()
	short.Blocks = short.Blocks[:len(short.Blocks)-1]
	if _, err := core.TranslateSets(sets, f, short); err == nil {
		t.Error("block-count mismatch accepted")
	}

	renamed := f.Clone()
	renamed.Blocks[1].Name = "other"
	if _, err := core.TranslateSets(sets, f, renamed); err == nil {
		t.Error("renamed block accepted")
	}

	swapped := f.Clone()
	succs := swapped.Entry.Succs
	succs[0], succs[1] = succs[1], succs[0]
	if _, err := core.TranslateSets(sets, f, swapped); err == nil {
		t.Error("permuted successor order accepted — edge locations would be remapped to the wrong edges")
	}
}
