package core_test

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

// loopAlloc builds: A -> H; H -> B(allocated) -> H; H -> X(ret), a
// loop whose body clobbers the register 90 times per 10 entries.
func loopAlloc(t *testing.T) (*ir.Func, ir.Reg) {
	t.Helper()
	f := cfgtest.MustBuild("loopalloc",
		[]string{"A", "H", "B", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "H", 10),
			cfgtest.E("H", "B", 90), cfgtest.E("B", "H", 90),
			cfgtest.E("H", "X", 10),
		})
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")
	return f, reg
}

// TestLoopsHoistedWithoutArtificialDataflow checks the paper's claim
// that the hierarchical algorithm needs no loop masking: "a precise,
// minimum cost placement ... will be found in the control flow graph
// of the procedure, naturally avoiding placement of saves and restores
// within loops."
func TestLoopsHoistedWithoutArtificialDataflow(t *testing.T) {
	f, _ := loopAlloc(t)
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	// The seed places around the loop body's edges (cost 180).
	if got := core.TotalCost(core.ExecCountModel{}, seed); got != 180 {
		t.Fatalf("seed cost = %d, want 180", got)
	}
	final, _, err := core.Hierarchical(f, tr, seed, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSets(f, final); err != nil {
		t.Fatal(err)
	}
	// Hoisted out: entry/exit (20) beats everything touching the loop.
	if got := core.TotalCost(core.ExecCountModel{}, final); got != 20 {
		for _, s := range final {
			t.Logf("  %v", s)
		}
		t.Fatalf("hierarchical cost = %d, want 20 (hoisted out of the loop)", got)
	}
	// Nothing lands in the loop body.
	for _, s := range final {
		for _, l := range s.Locations() {
			if l.Kind != core.OnEdge && (l.Block.Name == "B" || l.Block.Name == "H") {
				t.Errorf("placement %v inside the loop", l)
			}
			if l.Kind == core.OnEdge &&
				(l.Edge.From.Name == "B" || l.Edge.To.Name == "B") {
				t.Errorf("placement %v on a loop-internal edge", l)
			}
		}
	}
}

// TestColdLoopStaysLocal: when the loop is cold relative to the entry,
// hoisting would be a loss and the placement must stay at the loop.
func TestColdLoopStaysLocal(t *testing.T) {
	// Entry runs 100x; the loop is entered twice and iterates twice.
	f := cfgtest.MustBuild("coldloop",
		[]string{"A", "M", "H", "B", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "M", 98), cfgtest.E("A", "H", 2),
			cfgtest.E("M", "X", 98),
			cfgtest.E("H", "B", 4), cfgtest.E("B", "H", 4),
			cfgtest.E("H", "X", 2),
		})
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")

	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	final, _, err := core.Hierarchical(f, tr, seed, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSets(f, final); err != nil {
		t.Fatal(err)
	}
	got := core.TotalCost(core.ExecCountModel{}, final)
	ee := core.TotalCost(core.ExecCountModel{}, core.EntryExit(f))
	if got >= ee {
		t.Errorf("cold loop placement cost %d should beat entry/exit %d", got, ee)
	}
	// The optimal here: save/restore around the loop-body edges (8)
	// or at the loop region boundary (4): the H->B/B->H pair costs 8,
	// boundary of the {B} region is H->B + B->H = 8 too; region around
	// the whole loop (A->H .. H->X) costs 4.
	if got != 4 {
		t.Errorf("cost = %d, want 4 (around the cold loop)", got)
	}
}

// TestChowVsHierarchicalOnHotLoop compares all three techniques on the
// hot-loop function: Chow's loop masking reaches the same answer as
// the hierarchical algorithm here, both beating the naive seed.
func TestChowVsHierarchicalOnHotLoop(t *testing.T) {
	f, _ := loopAlloc(t)
	m := core.ExecCountModel{}
	chow := core.TotalCost(m, shrinkwrap.Compute(f, shrinkwrap.Original))
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	hier, _, err := core.Hierarchical(f, tr, shrinkwrap.Compute(f, shrinkwrap.Seed), m)
	if err != nil {
		t.Fatal(err)
	}
	hc := core.TotalCost(m, hier)
	if chow != 20 || hc != 20 {
		t.Errorf("chow = %d, hierarchical = %d, want both 20", chow, hc)
	}
}

// TestApplyAndRunLoopFunction executes the placed loop function in the
// VM under convention checking, closing the loop between the static
// claim and real execution.
func TestApplyAndRunLoopFunction(t *testing.T) {
	f, _ := loopAlloc(t)
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	final, _, err := core.Hierarchical(f, tr, seed, core.JumpEdgeModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Apply(f, final); err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	// The function loops on a constant condition; bound the VM and
	// just confirm the placement instructions exist in the right
	// blocks (entry head save, pre-ret restore).
	if f.Entry.Instrs[0].Op != ir.OpSave {
		t.Errorf("entry head = %v, want save", f.Entry.Instrs[0])
	}
	x := f.BlockByName("X")
	if x.Instrs[len(x.Instrs)-2].Op != ir.OpRestore {
		t.Errorf("before ret = %v, want restore", x.Instrs[len(x.Instrs)-2])
	}
}
