package core_test

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func TestHierarchicalEmptySeed(t *testing.T) {
	f := cfgtest.MustBuild("empty",
		[]string{"A", "B"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 1)})
	f.UsedCalleeSaved = []ir.Reg{ir.Phys(11)}
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	final, dec, err := core.Hierarchical(f, tr, nil, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != 0 || len(dec) != 0 {
		t.Errorf("empty seed should stay empty: %v %v", final, dec)
	}
}

func TestHierarchicalSeedNotMutated(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	before := make([]string, len(seed))
	for i, s := range seed {
		before[i] = s.String()
	}
	core.Hierarchical(f, tr, seed, core.JumpEdgeModel{})
	for i, s := range seed {
		if s.String() != before[i] {
			t.Errorf("seed set %d mutated: %q -> %q", i, before[i], s.String())
		}
	}
}

func TestHierarchicalTwoRegistersIndependent(t *testing.T) {
	// Two registers with different webs on the figure CFG: r12 in the
	// cold interior (Region 3), r13 hot near the entry. Decisions for
	// one register must not disturb the other.
	fig := workload.NewFigure2()
	f := fig.Func
	r13 := ir.Phys(13)
	f.UsedCalleeSaved = append(f.UsedCalleeSaved, r13)
	workload.AllocateGroup(f, r13, "K")

	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	final, _, err := core.Hierarchical(f, tr, seed, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSets(f, final); err != nil {
		t.Fatalf("two-register placement invalid: %v", err)
	}
	// r12's result is the same as in the single-register test (190);
	// r13's web in K costs 50 and stays put (Region 3 boundary would
	// cost 60 for it alone).
	var c12, c13 int64
	for _, s := range final {
		c := core.SetCost(core.ExecCountModel{}, s)
		if s.Reg == fig.Reg {
			c12 += c
		} else {
			c13 += c
		}
	}
	if c12 != 190 {
		t.Errorf("r12 cost = %d, want 190 (unchanged by r13)", c12)
	}
	if c13 != 50 {
		t.Errorf("r13 cost = %d, want 50 (kept at its web)", c13)
	}
}

func TestHierarchicalZeroWeights(t *testing.T) {
	// All-zero profile: every placement costs 0, replacements happen
	// at every region (0 <= 0), and the result must still validate.
	f := cfgtest.MustBuild("zero",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 0), cfgtest.E("A", "C", 0),
			cfgtest.E("B", "D", 0), cfgtest.E("C", "D", 0),
		})
	f.EntryCount = 0
	reg := ir.Phys(11)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")

	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	final, _, err := core.Hierarchical(f, tr, seed, core.JumpEdgeModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSets(f, final); err != nil {
		t.Errorf("zero-weight placement invalid: %v", err)
	}
	if len(final) == 0 {
		t.Error("placement disappeared")
	}
}

func TestDecisionsRecordEveryConsideredRegion(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	_, dec, err := core.Hierarchical(f, tr, seed, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}
	// Regions with no contained sets ({E}) are skipped; the {N} leaf
	// region, R1, R2, R3 and the root each record one decision for the
	// single register.
	if len(dec) != 5 {
		for _, d := range dec {
			t.Logf("  %v %v %d/%d %v", d.Region, d.Reg, d.ContainedCost, d.BoundaryCost, d.Replaced)
		}
		t.Errorf("decisions = %d, want 5", len(dec))
	}
	for _, d := range dec {
		if d.Reg != fig.Reg {
			t.Errorf("decision for wrong register %v", d.Reg)
		}
	}
}

func TestEntryExitMultiExit(t *testing.T) {
	f := cfgtest.MustBuild("mx",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 40), cfgtest.E("A", "C", 60)})
	f.UsedCalleeSaved = []ir.Reg{ir.Phys(11), ir.Phys(12)}
	sets := core.EntryExit(f)
	if len(sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(sets))
	}
	for _, s := range sets {
		if len(s.Saves) != 1 || len(s.Restores) != 2 {
			t.Errorf("set %v: want 1 save, 2 restores", s)
		}
	}
	// Cost: save 100 + restores 40+60 per register.
	if got := core.TotalCost(core.ExecCountModel{}, sets); got != 400 {
		t.Errorf("cost = %d, want 400", got)
	}
}
