package core_test

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

// TestIrreducibleCFG: cycle equivalence is defined on arbitrary
// graphs, so the PST must handle irreducible control flow (a cycle
// with two entries), which structured-language tools often reject.
func TestIrreducibleCFG(t *testing.T) {
	f := cfgtest.MustBuild("irr",
		[]string{"A", "B", "C", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 30), cfgtest.E("A", "C", 70),
			cfgtest.E("B", "C", 40), cfgtest.E("C", "B", 50),
			cfgtest.E("B", "X", 40),
		})
	p, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root == nil || len(p.Root.Blocks) != 4 {
		t.Fatalf("bad root on irreducible CFG: %v", p.Root)
	}
	// The two-entry cycle admits no interior SESE region: B and C each
	// have multiple entries, so only the root remains.
	if len(p.Regions) != 1 {
		for _, r := range p.Regions {
			t.Logf("  %v", r)
		}
		t.Errorf("regions = %d, want 1 (root only)", len(p.Regions))
	}
}

// TestIrreduciblePlacement: the full placement stack still works on
// irreducible flow — the seed, Chow's original, entry/exit and the
// hierarchical algorithm all validate.
func TestIrreduciblePlacement(t *testing.T) {
	f := cfgtest.MustBuild("irr2",
		[]string{"A", "B", "C", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 30), cfgtest.E("A", "C", 70),
			cfgtest.E("B", "C", 40), cfgtest.E("C", "B", 50),
			cfgtest.E("B", "X", 40),
		})
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "C")

	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	if err := core.ValidateSets(f, seed); err != nil {
		t.Errorf("seed invalid on irreducible CFG: %v", err)
	}
	if err := core.ValidateSets(f, shrinkwrap.Compute(f, shrinkwrap.Original)); err != nil {
		t.Errorf("original invalid on irreducible CFG: %v", err)
	}
	final, _, err := core.Hierarchical(f, tr, seed, core.JumpEdgeModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSets(f, final); err != nil {
		t.Errorf("hierarchical invalid on irreducible CFG: %v", err)
	}
	opt := core.TotalCost(core.JumpEdgeModel{}, final)
	ee := core.TotalCost(core.JumpEdgeModel{}, core.EntryExit(f))
	if opt > ee {
		t.Errorf("hierarchical %d > entry/exit %d on irreducible CFG", opt, ee)
	}
}

// TestMultiExitEndToEnd: functions with several return blocks work
// through PST construction and placement; the root restores at every
// exit.
func TestMultiExitEndToEnd(t *testing.T) {
	f := cfgtest.MustBuild("mx",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 20), cfgtest.E("A", "C", 80),
			cfgtest.E("B", "D", 20),
			// C and D are both exits.
		})
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")

	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Root.ExitWeight(f); got != 100 {
		t.Errorf("root exit weight = %d, want 100 (both exits)", got)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	final, _, err := core.Hierarchical(f, tr, seed, core.ExecCountModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSets(f, final); err != nil {
		t.Fatal(err)
	}
	// The cold B web (cost 40) stays put rather than paying 100+100
	// at procedure boundaries.
	if got := core.TotalCost(core.ExecCountModel{}, final); got != 40 {
		t.Errorf("cost = %d, want 40", got)
	}
	if err := core.Apply(f, final); err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}
