package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func fig2Locs(t *testing.T) (*workload.Figure2, core.Location, core.Location, core.Location) {
	t.Helper()
	fig := workload.NewFigure2()
	f := fig.Func
	headD := core.HeadLoc(f.BlockByName("D"))
	tailE := core.TailLoc(f.BlockByName("E"))
	df := f.BlockByName("D").SuccEdge(f.BlockByName("F"))
	edgeDF := core.Location{Kind: core.OnEdge, Edge: df}
	return fig, headD, tailE, edgeDF
}

func TestLocationWeights(t *testing.T) {
	_, headD, tailE, edgeDF := fig2Locs(t)
	if headD.Weight() != 40 {
		t.Errorf("head(D) weight = %d, want 40", headD.Weight())
	}
	if tailE.Weight() != 10 {
		t.Errorf("tail(E) weight = %d, want 10", tailE.Weight())
	}
	if edgeDF.Weight() != 30 {
		t.Errorf("edge(D->F) weight = %d, want 30", edgeDF.Weight())
	}
	if headD.NeedsJumpBlock() || tailE.NeedsJumpBlock() {
		t.Error("in-block locations never need jump blocks")
	}
	if !edgeDF.NeedsJumpBlock() {
		t.Error("D->F is a critical jump edge: needs a jump block")
	}
}

func TestEdgeLocNormalization(t *testing.T) {
	fig, _, _, _ := fig2Locs(t)
	f := fig.Func
	// C->D: D has a single predecessor, so the location is head(D).
	cd := f.BlockByName("C").SuccEdge(f.BlockByName("D"))
	if got := core.EdgeLoc(cd); got.String() != "head(D)" {
		t.Errorf("EdgeLoc(C->D) = %v, want head(D)", got)
	}
	// E->F: E has a single successor, so tail(E).
	ef := f.BlockByName("E").SuccEdge(f.BlockByName("F"))
	if got := core.EdgeLoc(ef); got.String() != "tail(E)" {
		t.Errorf("EdgeLoc(E->F) = %v, want tail(E)", got)
	}
	// D->F: both endpoints branchy; stays on the edge.
	df := f.BlockByName("D").SuccEdge(f.BlockByName("F"))
	if got := core.EdgeLoc(df); got.Kind != core.OnEdge {
		t.Errorf("EdgeLoc(D->F) = %v, want OnEdge", got)
	}
}

func TestJumpEdgeModelSharing(t *testing.T) {
	_, _, _, edgeDF := fig2Locs(t)
	m := core.JumpEdgeModel{}

	// Unshared seed location: full jump surcharge.
	if got := m.LocationCost(core.SaveCost, edgeDF, true); got != 60 {
		t.Errorf("unshared seed cost = %d, want 60", got)
	}
	// Shared between two registers at seed time: half the surcharge.
	shared := edgeDF
	shared.JumpSharers = 2
	if got := m.LocationCost(core.SaveCost, shared, true); got != 45 {
		t.Errorf("shared seed cost = %d, want 45 (30 + 30/2)", got)
	}
	// Algorithm-created sets always pay the full jump cost.
	if got := m.LocationCost(core.RestoreCost, shared, false); got != 60 {
		t.Errorf("non-seed cost = %d, want 60 regardless of sharers", got)
	}
	// Exec model ignores jumps entirely.
	if got := (core.ExecCountModel{}).LocationCost(core.SaveCost, edgeDF, true); got != 30 {
		t.Errorf("exec model cost = %d, want 30", got)
	}
}

// TestMachineModelUnitEquivalence: on a unit-cost machine the
// machine-parameterized model prices every location exactly like the
// paper's two hard-coded models, for both cost kinds, seed and
// non-seed, shared and unshared — the refactor changes no number.
func TestMachineModelUnitEquivalence(t *testing.T) {
	_, headD, tailE, edgeDF := fig2Locs(t)
	classic, err := machine.Preset("classic")
	if err != nil {
		t.Fatal(err)
	}
	shared := edgeDF
	shared.JumpSharers = 3
	locs := []core.Location{headD, tailE, edgeDF, shared}
	exec := core.MachineModel{Desc: classic}
	jump := core.MachineModel{Desc: classic, ChargeJumps: true}
	for _, l := range locs {
		for _, k := range []core.CostKind{core.SaveCost, core.RestoreCost} {
			for _, seed := range []bool{false, true} {
				if got, want := exec.LocationCost(k, l, seed), (core.ExecCountModel{}).LocationCost(k, l, seed); got != want {
					t.Errorf("exec@classic cost of %v (k=%d seed=%v) = %d, want %d", l, k, seed, got, want)
				}
				if got, want := jump.LocationCost(k, l, seed), (core.JumpEdgeModel{}).LocationCost(k, l, seed); got != want {
					t.Errorf("jump@classic cost of %v (k=%d seed=%v) = %d, want %d", l, k, seed, got, want)
				}
			}
		}
	}
	if exec.Name() != "exec-count@classic" || jump.Name() != "jump-edge@classic" {
		t.Errorf("model names = %q, %q", exec.Name(), jump.Name())
	}
}

// TestMachineModelLatencies: a machine with distinct store/load
// latencies prices saves and restores differently, charges the taken-
// jump penalty on jump-block locations (shared among seed registers),
// and applies the dual-issue discount with round-up.
func TestMachineModelLatencies(t *testing.T) {
	_, headD, _, edgeDF := fig2Locs(t)
	d, err := machine.Preset("deep-pipeline") // st2/ld3/j12
	if err != nil {
		t.Fatal(err)
	}
	m := core.MachineModel{Desc: d, ChargeJumps: true}
	// head(D) weight 40: save 40*2, restore 40*3, no jump.
	if got := m.LocationCost(core.SaveCost, headD, false); got != 80 {
		t.Errorf("save cost = %d, want 80", got)
	}
	if got := m.LocationCost(core.RestoreCost, headD, false); got != 120 {
		t.Errorf("restore cost = %d, want 120", got)
	}
	// edge(D->F) weight 30, jump edge: save 30*2 + 30*12.
	if got := m.LocationCost(core.SaveCost, edgeDF, false); got != 60+360 {
		t.Errorf("jump-edge save cost = %d, want 420", got)
	}
	// Seed sharing divides only the jump term.
	shared := edgeDF
	shared.JumpSharers = 2
	if got := m.LocationCost(core.SaveCost, shared, true); got != 60+180 {
		t.Errorf("shared jump-edge save cost = %d, want 240", got)
	}
	// The exec flavor never charges the jump.
	me := core.MachineModel{Desc: d}
	if got := me.LocationCost(core.SaveCost, edgeDF, false); got != 60 {
		t.Errorf("exec flavor jump-edge cost = %d, want 60", got)
	}
	// Dual issue halves spill latency with round-up: st2 -> 1.
	di, err := machine.Preset("dual-issue")
	if err != nil {
		t.Fatal(err)
	}
	md := core.MachineModel{Desc: di, ChargeJumps: true}
	if got := md.LocationCost(core.SaveCost, headD, false); got != 40 {
		t.Errorf("dual-issue save cost = %d, want 40 (latency 2 paired to 1)", got)
	}
}

func TestAssignJumpSharers(t *testing.T) {
	fig, _, _, edgeDF := fig2Locs(t)
	_ = fig
	s1 := &core.Set{Reg: ir.Phys(12), Seed: true,
		Saves: []core.Location{edgeDF}, Restores: nil}
	s2 := &core.Set{Reg: ir.Phys(13), Seed: true,
		Saves: nil, Restores: []core.Location{edgeDF}}
	s3 := &core.Set{Reg: ir.Phys(12), Seed: true, // same reg as s1: counts once
		Saves: nil, Restores: []core.Location{edgeDF}}
	core.AssignJumpSharers([]*core.Set{s1, s2, s3})
	if s1.Saves[0].JumpSharers != 2 {
		t.Errorf("sharers = %d, want 2 (two distinct registers)", s1.Saves[0].JumpSharers)
	}
	if s2.Restores[0].JumpSharers != 2 || s3.Restores[0].JumpSharers != 2 {
		t.Error("sharers must be stamped on every location of the edge")
	}
}

func TestStaticAwareModel(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)

	// Weight 0 behaves exactly like the jump edge model.
	m0 := core.StaticAwareModel{StaticWeight: 0}
	f0, _, err := core.Hierarchical(f, tr, seed, m0)
	if err != nil {
		t.Fatal(err)
	}
	fj, _, err := core.Hierarchical(f, tr, seed, core.JumpEdgeModel{})
	if err != nil {
		t.Fatal(err)
	}
	if core.TotalCost(core.JumpEdgeModel{}, f0) != core.TotalCost(core.JumpEdgeModel{}, fj) {
		t.Error("StaticWeight 0 should match the jump edge model")
	}

	// A huge static weight drives the placement to the static minimum:
	// entry/exit (one save, one restore for the single-exit figure).
	mBig := core.StaticAwareModel{StaticWeight: 1 << 20}
	fb, _, err := core.Hierarchical(f, tr, seed, mBig)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.StaticCount(fb); got != 2 {
		t.Errorf("static count under huge weight = %d, want 2 (entry/exit)", got)
	}
	if err := core.ValidateSets(f, fb); err != nil {
		t.Errorf("static-heavy placement invalid: %v", err)
	}

	// Static counts: the seed uses 9 instructions (4 saves + 4
	// restores realized as 8 in-block instructions... counted per
	// location) plus the D->F jump.
	seedStatic := core.StaticCount(seed)
	eeStatic := core.StaticCount(core.EntryExit(f))
	if eeStatic != 2 {
		t.Errorf("entry/exit static count = %d, want 2", eeStatic)
	}
	if seedStatic <= eeStatic {
		t.Errorf("seed static count %d should exceed entry/exit %d", seedStatic, eeStatic)
	}
	if m0.Name() == "" || mBig.Name() == "" {
		t.Error("model names empty")
	}
}

func TestSetString(t *testing.T) {
	fig, headD, tailE, edgeDF := fig2Locs(t)
	s := &core.Set{Reg: fig.Reg, Saves: []core.Location{headD}, Restores: []core.Location{tailE, edgeDF}}
	str := s.String()
	for _, want := range []string{"r12", "head(D)", "tail(E)", "edge(D->F)"} {
		if !containsStr(str, want) {
			t.Errorf("Set.String() = %q missing %q", str, want)
		}
	}
	if n := len(s.Locations()); n != 3 {
		t.Errorf("Locations = %d, want 3", n)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
