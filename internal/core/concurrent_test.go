package core_test

// Concurrency contract: Hierarchical and ValidateSets keep all working
// state local, so distinct functions can be processed in parallel.
// This test hammers that contract — run with -race, it is the proof
// the parallel pipeline stands on. It also checks determinism: the
// concurrent placements match a serial reference exactly.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
)

// placeOne runs the full per-function placement pipeline and returns
// the chosen sets rendered to a comparable form. It must stay safe to
// call from any goroutine (t.Errorf is; t.Fatalf is not).
func placeOne(t *testing.T, f *ir.Func) []string {
	tree, err := pst.Build(f)
	if err != nil {
		t.Errorf("%s: pst: %v", f.Name, err)
		return nil
	}
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	sets, _, err := core.Hierarchical(f, tree, seed, core.JumpEdgeModel{})
	if err != nil {
		t.Errorf("%s: %v", f.Name, err)
		return nil
	}
	if err := core.ValidateSets(f, sets); err != nil {
		t.Errorf("%s: %v", f.Name, err)
	}
	var out []string
	for _, s := range sets {
		out = append(out, s.String())
	}
	return out
}

func TestHierarchicalConcurrentOverDistinctFuncs(t *testing.T) {
	funcs := randomFuncs(t, 12)
	serial := make([][]string, len(funcs))
	for i, f := range funcs {
		serial[i] = placeOne(t, f)
	}

	const rounds = 8
	var wg sync.WaitGroup
	got := make([][][]string, rounds)
	for r := 0; r < rounds; r++ {
		got[r] = make([][]string, len(funcs))
		for i, f := range funcs {
			wg.Add(1)
			go func(r, i int, f *ir.Func) {
				defer wg.Done()
				got[r][i] = placeOne(t, f)
			}(r, i, f)
		}
	}
	wg.Wait()

	for r := 0; r < rounds; r++ {
		for i := range funcs {
			if len(got[r][i]) != len(serial[i]) {
				t.Fatalf("round %d func %s: %d sets, want %d", r, funcs[i].Name, len(got[r][i]), len(serial[i]))
			}
			for j := range serial[i] {
				if got[r][i][j] != serial[i][j] {
					t.Errorf("round %d func %s set %d: %q != serial %q",
						r, funcs[i].Name, j, got[r][i][j], serial[i][j])
				}
			}
		}
	}
}
