// Package bench runs the paper's evaluation end to end: generate a
// benchmark program, profile it by execution, register-allocate it
// once, apply each callee-saved spill placement strategy to identical
// clones, execute each clone under convention checking, and report the
// measured dynamic spill overhead (Figure 5, Table 1) and incremental
// placement time (Table 2).
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Strategy names a callee-saved spill placement technique.
type Strategy int

const (
	// Baseline saves at procedure entry and restores at each exit.
	Baseline Strategy = iota
	// Shrinkwrap is Chow's original technique.
	Shrinkwrap
	// Optimized is the paper's hierarchical algorithm with the
	// jump-edge cost model (the configuration evaluated in the paper).
	Optimized
	// OptimizedExec is the hierarchical algorithm under the execution
	// count cost model, realized with jump blocks. The paper could not
	// evaluate this configuration ("spill instructions placed on jump
	// edges have no physical memory allocated to them" in GCC); this
	// reproduction can, so it is included as an ablation of the cost
	// model choice.
	OptimizedExec
	numStrategies
)

// Strategies lists all strategies in display order.
var Strategies = []Strategy{Baseline, Shrinkwrap, Optimized, OptimizedExec}

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case Shrinkwrap:
		return "Shrinkwrap"
	case Optimized:
		return "Optimized"
	case OptimizedExec:
		return "OptimizedExec"
	}
	return "?"
}

// technique maps the figure-label enum to the shared placement
// dispatch in internal/strategy.
func (s Strategy) technique() strategy.Strategy {
	switch s {
	case Shrinkwrap:
		return strategy.Shrinkwrap
	case Optimized:
		return strategy.HierarchicalJump
	case OptimizedExec:
		return strategy.HierarchicalExec
	}
	return strategy.EntryExit
}

// Result holds one benchmark's measurements.
type Result struct {
	Name string
	// Overhead is the measured dynamic spill overhead per strategy:
	// every spill load/store, callee-saved save/restore, and
	// jump-block jump executed.
	Overhead [numStrategies]int64
	// PlacementTime is the incremental compile time each strategy
	// added (Baseline's is the reference and is ~0).
	PlacementTime [numStrategies]time.Duration
	// ReturnValue is the program result, identical across strategies.
	ReturnValue int64
	// Stats holds the full VM execution counters per strategy
	// (deep-copied, so concurrent runs never share a Calls map).
	Stats [numStrategies]vm.Stats
	// Procedures and Instrs describe the allocated program.
	Procedures int
	Instrs     int
	// SpilledVregs counts allocator-spilled virtual registers.
	SpilledVregs int
	// ReplaceCold, ReplaceShared, and ReplaceIncremental time
	// re-placing the paper's configuration after its own placement edit
	// (summed over all functions): cold recomputes every analysis from
	// scratch, shared reads a fully warmed cache, and incremental
	// patches the warmed cache through core.Delta + ApplyDelta and
	// recomputes only the derived seed. Table 2's re-placement columns.
	ReplaceCold, ReplaceShared, ReplaceIncremental time.Duration
	// ReplaceRebuilds counts functions whose incremental re-placement
	// fell back to a full analysis rebuild; 0 in a healthy tree.
	ReplaceRebuilds int
}

// Ratio returns overhead(s) / overhead(Baseline) as a percentage.
func (r *Result) Ratio(s Strategy) float64 {
	if r.Overhead[Baseline] == 0 {
		return 100
	}
	return 100 * float64(r.Overhead[s]) / float64(r.Overhead[Baseline])
}

// Options tweaks the pipeline.
type Options struct {
	// Align runs the jump-alignment layout pass (internal/layout) on
	// every procedure after allocation, before placement — the
	// configuration the paper mentions as making the jump edge cost
	// model more accurate.
	Align bool
	// Parallelism bounds the worker pools of the concurrent stages:
	// benchmark sharding in RunAllWithOptions, the per-strategy VM
	// measurement fan-out, and per-function allocation and placement.
	// Only one level fans out at a time (benchmarks when there are
	// several, strategies/functions otherwise), so pools never
	// multiply. Zero or negative means GOMAXPROCS; 1 forces the fully
	// serial path. All measured counts are deterministic and
	// identical for any value. PlacementTime is wall-clock: placement
	// of one benchmark never runs concurrently with another strategy's
	// placement of the same benchmark, but concurrent benchmarks can
	// still contend — for paper-grade Table 2 timings use 1.
	Parallelism int
	// Engine selects the VM engine for the measurement runs (default
	// the bytecode engine; vm.EngineTree is the legacy differential
	// reference). Measured counts are engine-independent — the parity
	// tests prove it — only wall-clock time changes.
	Engine vm.Engine
	// Unshared disables the shared analysis cache: every strategy
	// rebuilds liveness, dominators, loops, PST, and the shrink-wrap
	// seed from scratch, reproducing the pre-sharing pipeline. Sets and
	// measured counts are identical either way (the identity tests
	// prove it); only PlacementTime changes. Kept as the A/B reference
	// for the analysis-layer speedup (spillbench -unshared).
	Unshared bool
	// Cache, when non-nil, is used as the shared analysis layer instead
	// of a fresh per-entry cache, so a caller running many entries (for
	// example spilltune's per-trial loop) can accumulate the sharing
	// counters across runs in one place. Ignored when Unshared is set.
	Cache *analysis.Cache
	// MachineAlloc prices the allocator's spill choices with the
	// machine's cost surface (regalloc.Options.MachineCosts). In
	// RunSweep it requires a single-machine sweep, because the
	// allocation then depends on the preset; RunCrossover compares it
	// against the uniform allocation preset by preset.
	MachineAlloc bool
}

// Entry is one measurable program: a name for the reports and a
// generator producing a fresh virtual-register program ready for
// profiling. The synthetic SPEC stand-ins and irgen's random scenario
// families both enter the harness this way.
type Entry struct {
	Name string
	Gen  func() *ir.Program
}

// EntryFor wraps a synthetic SPEC benchmark description as an Entry.
func EntryFor(p workload.BenchParams) Entry {
	return Entry{Name: p.Name, Gen: func() *ir.Program { return workload.Generate(p) }}
}

// GeneratedSuite returns n random scenario-family entries from the
// irgen generator, seeds base..base+n-1, so fuzz-grade program shapes
// can join the measured suite next to the SPEC stand-ins.
func GeneratedSuite(base uint64, n int) []Entry {
	if n < 0 {
		n = 0
	}
	out := make([]Entry, n)
	for i := range out {
		seed := base + uint64(i)
		out[i] = Entry{
			Name: "irgen-" + fmt.Sprint(seed),
			Gen:  func() *ir.Program { return irgen.Generate(seed, irgen.Default()) },
		}
	}
	return out
}

// Run executes the full pipeline for one benchmark description,
// serially (the zero-value Options would mean GOMAXPROCS).
func Run(p workload.BenchParams) (*Result, error) {
	return RunWithOptions(p, Options{Parallelism: 1})
}

// RunWithOptions executes the pipeline with tweaks.
func RunWithOptions(p workload.BenchParams, opts Options) (*Result, error) {
	return RunEntry(EntryFor(p), opts)
}

// RunEntry executes the pipeline for one entry: generate, profile,
// allocate once, place every strategy on identical clones, execute
// each clone under convention checking.
func RunEntry(e Entry, opts Options) (*Result, error) {
	prog := e.Gen()
	mach := machine.PARISC()

	// Profile by execution, then check flow conservation.
	if _, err := profile.CollectWithConfig(prog, vm.Config{Engine: opts.Engine}, 0); err != nil {
		return nil, fmt.Errorf("bench %s: profile: %w", e.Name, err)
	}
	if err := profile.Consistent(prog); err != nil {
		return nil, fmt.Errorf("bench %s: %w", e.Name, err)
	}

	// One register allocation shared by all strategies; functions are
	// independent, so allocation fans out per function.
	allocRes, err := regalloc.AllocateProgramOpts(prog, mach, opts.Parallelism, regalloc.Options{MachineCosts: opts.MachineAlloc})
	if err != nil {
		return nil, fmt.Errorf("bench %s: regalloc: %w", e.Name, err)
	}

	if opts.Align {
		for _, f := range prog.FuncsInOrder() {
			layout.Align(f)
		}
	}

	res := &Result{Name: e.Name, Procedures: len(prog.Funcs)}
	for _, f := range prog.FuncsInOrder() {
		res.Instrs += f.Instrs()
	}
	for _, ar := range allocRes {
		res.SpilledVregs += len(ar.Spilled)
	}

	// Placement is the timed stage (Table 2), so it runs serially
	// across strategies — two strategies' placements of the same
	// benchmark never compete for CPUs and pollute each other's
	// timings. Each strategy's placement may still fan out per
	// function. All strategies compute their sets on the shared
	// allocated program through one analysis cache — liveness,
	// dominators, loops, PST, and the shrink-wrap seed are built once
	// per function, by whichever strategy first needs them — and the
	// sets are then translated onto a per-strategy clone for the
	// mutation. Placement is cheap; the VM runs below dominate.
	clones := make([]*ir.Program, numStrategies)
	var cache *analysis.Cache // nil (no sharing) when opts.Unshared
	if !opts.Unshared {
		if cache = opts.Cache; cache == nil {
			cache = analysis.NewCache()
		}
	}
	funcs := strategy.NeedsPlacement(prog)
	for _, s := range Strategies {
		sets, elapsed, err := computeSets(funcs, s, opts.Parallelism, cache, nil)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %s: %w", e.Name, s, err)
		}
		res.PlacementTime[s] = elapsed
		clone := prog.Clone()
		if err := applySets(clone, funcs, sets, opts.Parallelism); err != nil {
			return nil, fmt.Errorf("bench %s: %s: %w", e.Name, s, err)
		}
		clones[s] = clone
	}

	// Re-placement timing (Table 2's incremental columns) runs on its
	// own clone, serially, after the timed placements above and before
	// the VM fan-out, so it never contends with either.
	coldNs, sharedNs, incNs, rebuilds, _, err := measureReplacement(prog.Clone())
	if err != nil {
		return nil, fmt.Errorf("bench %s: re-placement: %w", e.Name, err)
	}
	res.ReplaceCold = time.Duration(coldNs)
	res.ReplaceShared = time.Duration(sharedNs)
	res.ReplaceIncremental = time.Duration(incNs)
	res.ReplaceRebuilds = rebuilds

	// Every strategy executes on its own clone in its own VM, so the
	// four measurement runs fan out across the pool. Each slot is
	// written by exactly one worker; the cross-strategy return value
	// check runs after the barrier, in strategy order, so failures are
	// reported exactly as the serial loop would report them.
	var vals [numStrategies]int64
	err = par.Do(len(Strategies), opts.Parallelism, func(i int) error {
		s := Strategies[i]
		v := vm.New(clones[s], vm.Config{Machine: mach, Engine: opts.Engine})
		val, err := v.Run(0)
		if err != nil {
			return fmt.Errorf("bench %s: %s run: %w", e.Name, s, err)
		}
		vals[s] = val
		res.Overhead[s] = v.Stats.Overhead()
		res.Stats[s] = v.Stats.Snapshot()
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.ReturnValue = vals[Baseline]
	for _, s := range Strategies {
		if vals[s] != res.ReturnValue {
			return nil, fmt.Errorf("bench %s: %s computed %d, want %d", e.Name, s, vals[s], res.ReturnValue)
		}
	}
	return res, nil
}

// computeSets computes and validates one strategy's placement for
// every function in funcs (the shared allocated program), returning
// the per-function sets and the time spent computing them (the
// strategy's incremental compile time, Table 2). Procedures are
// independent, so they fan out across a bounded pool; the returned
// duration is the sum of per-procedure compute times, matching the
// serial accounting. Analyses shared through cache are charged to the
// first strategy that builds them, so the timing column keeps its
// incremental-compile-time meaning under sharing.
func computeSets(funcs []*ir.Func, s Strategy, parallelism int, cache *analysis.Cache, d *machine.Desc) ([][]*core.Set, time.Duration, error) {
	sets := make([][]*core.Set, len(funcs))
	var mu sync.Mutex
	var elapsed time.Duration
	err := par.Do(len(funcs), parallelism, func(i int) error {
		f := funcs[i]
		info := cache.For(f)
		start := time.Now()
		fs, err := strategy.ComputeCachedFor(f, s.technique(), info, d)
		if err != nil {
			return err
		}
		d := time.Since(start)
		mu.Lock()
		elapsed += d
		mu.Unlock()
		if err := core.ValidateSetsLive(f, fs, info.Liveness()); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		sets[i] = fs
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return sets, elapsed, nil
}

// measureReplacement measures the cost of re-placing the paper's
// configuration (HierarchicalJump) after its own placement edit, for
// every function of prog that needs placement. Per function it places
// once untimed through the delta path, then times three re-placements
// of the edited function:
//
//   - incremental: ApplyDelta patches the warmed analyses in place and
//     the compute rebuilds only the derived shrink-wrap seed;
//   - shared: a second compute over the now fully warmed handle (the
//     floor — pure hierarchical traversal);
//   - cold: a compute over a fresh handle, rebuilding liveness,
//     dominators, loops, the PST, and the seed from scratch.
//
// rebuilds counts functions whose incremental pass performed any full
// analysis rebuild (checked via analysis.Counts); a healthy tree
// reports 0. The sums feed Table 2 and the BENCH_analysis.json gate.
func measureReplacement(prog *ir.Program) (coldNs, sharedNs, incNs int64, rebuilds, funcs int, err error) {
	for _, f := range strategy.NeedsPlacement(prog) {
		info := analysis.For(f)
		sets, err := strategy.ComputeCached(f, strategy.HierarchicalJump, info)
		if err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("%s: %w", f.Name, err)
		}
		delta, err := core.ApplyWithDelta(f, sets)
		if err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("%s: %w", f.Name, err)
		}
		funcs++

		before := info.Counts()
		start := time.Now()
		info.ApplyDelta(delta)
		if _, err := strategy.ComputeCached(f, strategy.HierarchicalJump, info); err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("%s: incremental: %w", f.Name, err)
		}
		incNs += time.Since(start).Nanoseconds()
		after := info.Counts()
		if after.Liveness != before.Liveness || after.Dom != before.Dom ||
			after.Loops != before.Loops || after.PST != before.PST || after.SplitDom != before.SplitDom {
			rebuilds++
		}

		start = time.Now()
		if _, err := strategy.ComputeCached(f, strategy.HierarchicalJump, info); err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("%s: shared: %w", f.Name, err)
		}
		sharedNs += time.Since(start).Nanoseconds()

		start = time.Now()
		if _, err := strategy.ComputeCached(f, strategy.HierarchicalJump, analysis.For(f)); err != nil {
			return 0, 0, 0, 0, 0, fmt.Errorf("%s: cold: %w", f.Name, err)
		}
		coldNs += time.Since(start).Nanoseconds()
	}
	return coldNs, sharedNs, incNs, rebuilds, funcs, nil
}

// place computes, validates, and applies one strategy's placement to
// every procedure of prog in place, returning the compute time. The
// consistency tests use it to place a single program without the
// per-strategy clone-and-translate dance of RunEntry.
func place(prog *ir.Program, s Strategy, parallelism int) (time.Duration, error) {
	funcs := strategy.NeedsPlacement(prog)
	sets, elapsed, err := computeSets(funcs, s, parallelism, analysis.NewCache(), nil)
	if err != nil {
		return 0, err
	}
	err = par.Do(len(funcs), parallelism, func(i int) error {
		if err := core.Apply(funcs[i], sets[i]); err != nil {
			return fmt.Errorf("%s: %w", funcs[i].Name, err)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return elapsed, nil
}

// applySets translates the sets computed on the shared base onto the
// strategy's clone and applies them there.
func applySets(clone *ir.Program, funcs []*ir.Func, sets [][]*core.Set, parallelism int) error {
	return par.Do(len(funcs), parallelism, func(i int) error {
		f := funcs[i]
		cf := clone.Func(f.Name)
		cs, err := core.TranslateSets(sets[i], f, cf)
		if err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		if err := core.Apply(cf, cs); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		return nil
	})
}

// RunAll runs every benchmark in the suite serially. RunAllWithOptions
// is the sharded version; both produce identical results.
func RunAll(suite []workload.BenchParams) ([]*Result, error) {
	return RunAllWithOptions(suite, Options{Parallelism: 1})
}

// RunAllWithOptions shards the suite across a bounded pool of workers
// (Options.Parallelism; <= 0 means GOMAXPROCS). Workers pull
// benchmarks from a shared queue — so one heavyweight benchmark (gcc)
// does not serialize a whole static shard behind it — and write
// results back by suite position, so the result order and every
// measured count in it are byte-for-byte identical to the serial
// path; only wall-clock time changes. On error the lowest-positioned
// failure is returned, as in the serial loop. When several benchmarks
// run concurrently, each runs its inner stages serially; with a
// single benchmark (or parallelism 1) the inner stages get the pool
// instead.
func RunAllWithOptions(suite []workload.BenchParams, opts Options) ([]*Result, error) {
	entries := make([]Entry, len(suite))
	for i, p := range suite {
		entries[i] = EntryFor(p)
	}
	return RunEntries(entries, opts)
}

// RunEntries is RunAllWithOptions over arbitrary entries, e.g. a
// mixed suite of SPEC stand-ins and irgen scenario families.
func RunEntries(entries []Entry, opts Options) ([]*Result, error) {
	inner := opts
	if par.Limit(opts.Parallelism, len(entries)) > 1 {
		inner.Parallelism = 1
	}
	out := make([]*Result, len(entries))
	err := par.Do(len(entries), opts.Parallelism, func(i int) error {
		r, err := RunEntry(entries[i], inner)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
