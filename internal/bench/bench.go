// Package bench runs the paper's evaluation end to end: generate a
// benchmark program, profile it by execution, register-allocate it
// once, apply each callee-saved spill placement strategy to identical
// clones, execute each clone under convention checking, and report the
// measured dynamic spill overhead (Figure 5, Table 1) and incremental
// placement time (Table 2).
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/pst"
	"repro/internal/regalloc"
	"repro/internal/shrinkwrap"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Strategy names a callee-saved spill placement technique.
type Strategy int

const (
	// Baseline saves at procedure entry and restores at each exit.
	Baseline Strategy = iota
	// Shrinkwrap is Chow's original technique.
	Shrinkwrap
	// Optimized is the paper's hierarchical algorithm with the
	// jump-edge cost model (the configuration evaluated in the paper).
	Optimized
	// OptimizedExec is the hierarchical algorithm under the execution
	// count cost model, realized with jump blocks. The paper could not
	// evaluate this configuration ("spill instructions placed on jump
	// edges have no physical memory allocated to them" in GCC); this
	// reproduction can, so it is included as an ablation of the cost
	// model choice.
	OptimizedExec
	numStrategies
)

// Strategies lists all strategies in display order.
var Strategies = []Strategy{Baseline, Shrinkwrap, Optimized, OptimizedExec}

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "Baseline"
	case Shrinkwrap:
		return "Shrinkwrap"
	case Optimized:
		return "Optimized"
	case OptimizedExec:
		return "OptimizedExec"
	}
	return "?"
}

// Result holds one benchmark's measurements.
type Result struct {
	Name string
	// Overhead is the measured dynamic spill overhead per strategy:
	// every spill load/store, callee-saved save/restore, and
	// jump-block jump executed.
	Overhead [numStrategies]int64
	// PlacementTime is the incremental compile time each strategy
	// added (Baseline's is the reference and is ~0).
	PlacementTime [numStrategies]time.Duration
	// ReturnValue is the program result, identical across strategies.
	ReturnValue int64
	// Procedures and Instrs describe the allocated program.
	Procedures int
	Instrs     int
	// SpilledVregs counts allocator-spilled virtual registers.
	SpilledVregs int
}

// Ratio returns overhead(s) / overhead(Baseline) as a percentage.
func (r *Result) Ratio(s Strategy) float64 {
	if r.Overhead[Baseline] == 0 {
		return 100
	}
	return 100 * float64(r.Overhead[s]) / float64(r.Overhead[Baseline])
}

// Options tweaks the pipeline.
type Options struct {
	// Align runs the jump-alignment layout pass (internal/layout) on
	// every procedure after allocation, before placement — the
	// configuration the paper mentions as making the jump edge cost
	// model more accurate.
	Align bool
}

// Run executes the full pipeline for one benchmark description.
func Run(p workload.BenchParams) (*Result, error) { return RunWithOptions(p, Options{}) }

// RunWithOptions executes the pipeline with tweaks.
func RunWithOptions(p workload.BenchParams, opts Options) (*Result, error) {
	prog := workload.Generate(p)
	mach := machine.PARISC()

	// Profile by execution, then check flow conservation.
	if _, err := profile.Collect(prog, 0); err != nil {
		return nil, fmt.Errorf("bench %s: profile: %w", p.Name, err)
	}
	if err := profile.Consistent(prog); err != nil {
		return nil, fmt.Errorf("bench %s: %w", p.Name, err)
	}

	// One register allocation shared by all strategies.
	allocRes, err := regalloc.AllocateProgram(prog, mach)
	if err != nil {
		return nil, fmt.Errorf("bench %s: regalloc: %w", p.Name, err)
	}

	if opts.Align {
		for _, f := range prog.FuncsInOrder() {
			layout.Align(f)
		}
	}

	res := &Result{Name: p.Name, Procedures: len(prog.Funcs)}
	for _, f := range prog.FuncsInOrder() {
		res.Instrs += f.Instrs()
	}
	for _, ar := range allocRes {
		res.SpilledVregs += len(ar.Spilled)
	}

	first := true
	for _, s := range Strategies {
		clone := prog.Clone()
		elapsed, err := place(clone, s)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %s: %w", p.Name, s, err)
		}
		res.PlacementTime[s] = elapsed

		v := vm.New(clone, vm.Config{Machine: mach})
		val, err := v.Run(0)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %s run: %w", p.Name, s, err)
		}
		if first {
			res.ReturnValue = val
			first = false
		} else if val != res.ReturnValue {
			return nil, fmt.Errorf("bench %s: %s computed %d, want %d", p.Name, s, val, res.ReturnValue)
		}
		res.Overhead[s] = v.Stats.Overhead()
	}
	return res, nil
}

// place computes and applies one strategy's placement to every
// procedure that uses callee-saved registers, returning the time spent
// computing placements (the strategy's incremental compile time).
func place(prog *ir.Program, s Strategy) (time.Duration, error) {
	var elapsed time.Duration
	for _, f := range prog.FuncsInOrder() {
		if len(f.UsedCalleeSaved) == 0 {
			continue
		}
		var sets []*core.Set
		start := time.Now()
		switch s {
		case Baseline:
			sets = core.EntryExit(f)
		case Shrinkwrap:
			sets = shrinkwrap.Compute(f, shrinkwrap.Original)
		case Optimized, OptimizedExec:
			t, err := pst.Build(f)
			if err != nil {
				return 0, err
			}
			seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
			var m core.CostModel = core.JumpEdgeModel{}
			if s == OptimizedExec {
				m = core.ExecCountModel{}
			}
			sets, _ = core.Hierarchical(f, t, seed, m)
		}
		elapsed += time.Since(start)
		if err := core.ValidateSets(f, sets); err != nil {
			return 0, fmt.Errorf("%s: %w", f.Name, err)
		}
		if err := core.Apply(f, sets); err != nil {
			return 0, fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return elapsed, nil
}

// RunAll runs every benchmark in the suite.
func RunAll(suite []workload.BenchParams) ([]*Result, error) {
	var out []*Result
	for _, p := range suite {
		r, err := Run(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
