package bench

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

// smallCrossover runs a three-seed crossover comparison — enough to
// exercise every preset and both allocation modes without the standing
// suite's cost.
func smallCrossover(t *testing.T, parallelism int) *CrossoverRecord {
	t.Helper()
	rec, err := RunCrossover(CrossoverSuite(1, 3), machine.Presets(), Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestCrossoverDeterministic: the record is a deterministic function
// of the suite — same seeds, any parallelism, same bytes (the date
// field is stamped per run, so compare with it normalized).
func TestCrossoverDeterministic(t *testing.T) {
	a := smallCrossover(t, 1)
	b := smallCrossover(t, 4)
	a.Date, b.Date = "", ""
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("crossover record differs across parallelism:\n%s\nvs\n%s", aj, bj)
	}
}

// TestCrossoverGatePassesOnIdentical: self-comparison is clean as long
// as the record still demonstrates at least one flip.
func TestCrossoverGatePassesOnIdentical(t *testing.T) {
	rec := smallCrossover(t, 0)
	if rec.Flips < 1 {
		t.Fatalf("three-seed crossover suite shows no flips; family lost its reason to exist")
	}
	if findings := CompareCrossover(rec, rec, 15); len(findings) != 0 {
		t.Fatalf("self-comparison produced findings: %v", findings)
	}
}

// TestCrossoverGateCatchesInjected: a 20%% injected degradation must
// trip a 15%% gate — the CI self-test step relies on this.
func TestCrossoverGateCatchesInjected(t *testing.T) {
	committed := smallCrossover(t, 0)
	fresh := smallCrossover(t, 0)
	InjectCrossoverRegression(fresh, 20)
	if findings := CompareCrossover(committed, fresh, 15); len(findings) == 0 {
		t.Fatal("gate passed an injected 20% crossover regression")
	}
}

// TestCrossoverGateCatchesFlipLoss: a fresh run in which no benchmark
// flips its winner anymore is a finding even if every overhead is
// within tolerance — the suite exists to demonstrate machine
// dependence.
func TestCrossoverGateCatchesFlipLoss(t *testing.T) {
	committed := smallCrossover(t, 0)
	fresh := smallCrossover(t, 0)
	fresh.Flips = 0
	found := false
	for _, f := range CompareCrossover(committed, fresh, 15) {
		if strings.Contains(f, "flip") || strings.Contains(f, "machine dependence") {
			found = true
		}
	}
	if !found {
		t.Fatal("gate passed a crossover run with zero winner flips")
	}
}

// TestCrossoverGateCatchesSuiteMismatch: records over different suites
// cannot be compared; the finding must say so.
func TestCrossoverGateCatchesSuiteMismatch(t *testing.T) {
	committed := smallCrossover(t, 0)
	fresh := smallCrossover(t, 0)
	fresh.Benchmarks = append(fresh.Benchmarks, "crossover-99")
	findings := CompareCrossover(committed, fresh, 15)
	if len(findings) != 1 || !strings.Contains(findings[0], "suite") {
		t.Fatalf("want a single suite-mismatch finding, got %v", findings)
	}
}

// TestStandingCrossoverFlips: the standing configuration behind the
// committed BENCH_crossover.json must demonstrate at least one
// preset-dependent winner flip. (ISSUE 10 acceptance criterion.)
func TestStandingCrossoverFlips(t *testing.T) {
	if testing.Short() {
		t.Skip("standing crossover suite in -short mode")
	}
	rec, err := StandingCrossover(0)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Flips < 1 {
		t.Fatal("standing crossover suite shows no preset-dependent winner flip")
	}
	// Winner flips must be real disagreements between concrete presets,
	// visible in the rows themselves, not just the summary bit.
	for _, b := range rec.Benches {
		if !b.AllocFlip && !b.StrategyFlip {
			continue
		}
		distinct := map[string]bool{}
		for _, row := range b.Presets {
			distinct[row.WinnerAlloc+"/"+row.WinnerStrategy] = true
		}
		if len(distinct) < 2 {
			t.Errorf("%s: flip flagged but every preset agrees on the winner", b.Name)
		}
	}
}

// TestRunSweepRejectsMultiMachineMachineAlloc: machine-priced
// allocation is per-preset by definition, so a shared-allocation sweep
// across several presets must refuse it loudly.
func TestRunSweepRejectsMultiMachineMachineAlloc(t *testing.T) {
	_, err := RunSweep(CrossoverSuite(1, 1), machine.Presets(), Options{MachineAlloc: true})
	if err == nil || !strings.Contains(err.Error(), "single-machine") {
		t.Fatalf("multi-machine MachineAlloc sweep: err = %v, want single-machine refusal", err)
	}
}
