package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/pst"
	"repro/internal/regalloc"
	"repro/internal/shrinkwrap"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestEstimatedProfileExperiment quantifies the paper's claim that
// profile data is what enables minimum-cost placement: the pipeline is
// run with the hierarchical algorithm guided by (a) a real measured
// profile and (b) static loop-depth estimates, and both placements are
// then measured on the real execution. The estimated-profile placement
// must be valid and never beat the real-profile one; typically it
// gives up part of the win but stays at or below entry/exit cost is
// NOT guaranteed (estimates can mislead), which is exactly the paper's
// point — so only validity and the real-profile advantage are
// asserted, and the gap is logged.
func TestEstimatedProfileExperiment(t *testing.T) {
	var totReal, totEst, totBase int64
	for _, name := range []string{"gcc", "crafty", "gzip"} {
		var p workload.BenchParams
		for _, q := range workload.SPECInt2000() {
			if q.Name == name {
				p = q
			}
		}
		prog := workload.Generate(p)
		if _, err := profile.Collect(prog, 0); err != nil {
			t.Fatal(err)
		}
		mach := machine.PARISC()
		if _, err := regalloc.AllocateProgram(prog, mach); err != nil {
			t.Fatal(err)
		}

		measure := func(estimated bool) int64 {
			clone := prog.Clone()
			if estimated {
				// Overwrite the real profile with static estimates
				// before placement — drawn from the machine's
				// estimator parameters, like a compiler without a
				// profile would; the VM run below still measures real
				// dynamic overhead.
				profile.EstimateProgramMachine(clone, mach, nil)
			}
			for _, f := range clone.FuncsInOrder() {
				if len(f.UsedCalleeSaved) == 0 {
					continue
				}
				tr, err := pst.Build(f)
				if err != nil {
					t.Fatal(err)
				}
				seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
				sets, _, err := core.Hierarchical(f, tr, seed, core.JumpEdgeModel{})
				if err != nil {
					t.Fatal(err)
				}
				if err := core.ValidateSets(f, sets); err != nil {
					t.Fatalf("%s/%s estimated=%v: %v", name, f.Name, estimated, err)
				}
				if err := core.Apply(f, sets); err != nil {
					t.Fatal(err)
				}
			}
			if estimated {
				// Restore real weights so the measurement run's edge
				// bookkeeping (ExecCount of inserted blocks) reflects
				// reality... the VM counts executions directly, so no
				// restoration is needed; weights only guided placement.
				_ = clone
			}
			v := vm.New(clone, vm.Config{Machine: mach})
			if _, err := v.Run(0); err != nil {
				t.Fatal(err)
			}
			return v.Stats.Overhead()
		}

		baseline := func() int64 {
			clone := prog.Clone()
			if _, err := place(clone, Baseline, 1); err != nil {
				t.Fatal(err)
			}
			v := vm.New(clone, vm.Config{Machine: mach})
			if _, err := v.Run(0); err != nil {
				t.Fatal(err)
			}
			return v.Stats.Overhead()
		}()

		real := measure(false)
		est := measure(true)
		t.Logf("%-8s baseline=%6d  real-profile=%6d (%5.1f%%)  estimated=%6d (%5.1f%%)",
			name, baseline, real, 100*float64(real)/float64(baseline),
			est, 100*float64(est)/float64(baseline))
		if real > est {
			t.Errorf("%s: real-profile placement (%d) must not lose to estimated (%d)", name, real, est)
		}
		totReal += real
		totEst += est
		totBase += baseline
	}
	if totReal >= totBase {
		t.Errorf("real-profile hierarchical (%d) should beat baseline (%d) in aggregate", totReal, totBase)
	}
	t.Logf("aggregate: baseline %d, real %d, estimated %d", totBase, totReal, totEst)
}
