package bench

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func freshSweepRecord(t *testing.T) *SweepRecord {
	t.Helper()
	sw, err := RunSweep(sweepEntries(t), machine.Presets(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sw.Record("test suite")
}

// TestGatePassesOnIdenticalSweep: a fresh sweep compared against
// itself must produce no findings — the gate does not cry wolf on a
// healthy tree.
func TestGatePassesOnIdenticalSweep(t *testing.T) {
	rec := freshSweepRecord(t)
	if findings := CompareSweep(rec, rec, 15); len(findings) != 0 {
		t.Fatalf("self-comparison produced findings: %v", findings)
	}
}

// TestGateCatchesInjectedSweepRegression: inflating the fresh weighted
// overheads by 20%% must trip a 15%% gate on every machine — the CI
// job's self-test relies on this. (ISSUE 5 acceptance criterion.)
func TestGateCatchesInjectedSweepRegression(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	InjectSweepRegression(fresh, 20)
	findings := CompareSweep(committed, fresh, 15)
	if len(findings) == 0 {
		t.Fatal("gate passed an injected 20% regression")
	}
	// A 20% inflation with a 15% threshold must flag every machine
	// whose baseline overhead is non-trivial, not just one cell.
	if len(findings) < len(committed.Machines) {
		t.Errorf("only %d findings for %d machines: %v", len(findings), len(committed.Machines), findings)
	}
}

// TestGateCatchesStaleImprovement: a fresh sweep 20% *better* than the
// committed record is also a finding — a stale record would silently
// widen the regression budget for the next change.
func TestGateCatchesStaleImprovement(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	InjectSweepRegression(fresh, -20)
	findings := CompareSweep(committed, fresh, 15)
	if len(findings) == 0 {
		t.Fatal("gate passed a 20% improvement against a stale committed record")
	}
}

// TestGateCatchesSuiteMismatch: a committed record built from a
// different benchmark suite cannot gate anything; the finding must say
// so instead of reporting misleading per-strategy regressions.
func TestGateCatchesSuiteMismatch(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	fresh.Benchmarks = append(fresh.Benchmarks, "irgen-99")
	findings := CompareSweep(committed, fresh, 15)
	if len(findings) != 1 || !strings.Contains(findings[0], "suite") {
		t.Fatalf("want a single suite-mismatch finding, got %v", findings)
	}
}

// TestGateCatchesMissingMachine: a fresh sweep that silently dropped a
// preset is a finding, not a pass.
func TestGateCatchesMissingMachine(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	fresh.Machines = fresh.Machines[1:]
	if findings := CompareSweep(committed, fresh, 15); len(findings) == 0 {
		t.Fatal("gate passed a sweep missing a machine preset")
	}
}

// TestGateCatchesAnalysisRebuilds: build counters exceeding the
// function count mean per-machine rebuilds crept back in; the gate
// guards the sharing property itself.
func TestGateCatchesAnalysisRebuilds(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	fresh.Builds.Liveness = fresh.Functions*len(machine.Presets()) + 1
	if findings := CompareSweep(committed, fresh, 15); len(findings) == 0 {
		t.Fatal("gate passed a sweep with per-machine analysis rebuilds")
	}
}

func vmRecord(speedup float64, instrsPerRun int64) *VMBench {
	return &VMBench{
		Speedup: speedup,
		Engines: []EngineBench{
			{Engine: "bytecode", Runs: 3, Instrs: 3 * instrsPerRun},
			{Engine: "tree", Runs: 3, Instrs: 3 * instrsPerRun},
		},
	}
}

// TestGateVMSpeedupRatio: the VM gate trips on a speedup-ratio
// regression past the threshold and stays quiet within it. Ratios are
// host-independent, so the gate works on any CI runner.
func TestGateVMSpeedupRatio(t *testing.T) {
	committed := vmRecord(3.0, 1000)
	if findings := CompareVM(committed, vmRecord(2.9, 1000), 15); len(findings) != 0 {
		t.Errorf("3.3%% ratio drop tripped a 15%% gate: %v", findings)
	}
	if findings := CompareVM(committed, vmRecord(2.0, 1000), 15); len(findings) == 0 {
		t.Error("33% ratio drop passed a 15% gate")
	}
	fresh := vmRecord(3.0, 1000)
	InjectVMRegression(fresh, 20)
	if findings := CompareVM(committed, fresh, 15); len(findings) == 0 {
		t.Error("injected 20% VM regression passed a 15% gate")
	}
}

// TestGateVMInstrDrift: deterministic per-run instruction counts must
// match the committed record exactly; drift means a stale record or a
// miscounting engine.
func TestGateVMInstrDrift(t *testing.T) {
	committed := vmRecord(3.0, 1000)
	if findings := CompareVM(committed, vmRecord(3.0, 1001), 15); len(findings) == 0 {
		t.Error("instruction-count drift passed the gate")
	}
}
