package bench

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func freshSweepRecord(t *testing.T) *SweepRecord {
	t.Helper()
	sw, err := RunSweep(sweepEntries(t), machine.Presets(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sw.Record("test suite")
}

// TestGatePassesOnIdenticalSweep: a fresh sweep compared against
// itself must produce no findings — the gate does not cry wolf on a
// healthy tree.
func TestGatePassesOnIdenticalSweep(t *testing.T) {
	rec := freshSweepRecord(t)
	if findings := CompareSweep(rec, rec, 15); len(findings) != 0 {
		t.Fatalf("self-comparison produced findings: %v", findings)
	}
}

// TestGateCatchesInjectedSweepRegression: inflating the fresh weighted
// overheads by 20%% must trip a 15%% gate on every machine — the CI
// job's self-test relies on this. (ISSUE 5 acceptance criterion.)
func TestGateCatchesInjectedSweepRegression(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	InjectSweepRegression(fresh, 20)
	findings := CompareSweep(committed, fresh, 15)
	if len(findings) == 0 {
		t.Fatal("gate passed an injected 20% regression")
	}
	// A 20% inflation with a 15% threshold must flag every machine
	// whose baseline overhead is non-trivial, not just one cell.
	if len(findings) < len(committed.Machines) {
		t.Errorf("only %d findings for %d machines: %v", len(findings), len(committed.Machines), findings)
	}
}

// TestGateCatchesStaleImprovement: a fresh sweep 20% *better* than the
// committed record is also a finding — a stale record would silently
// widen the regression budget for the next change.
func TestGateCatchesStaleImprovement(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	InjectSweepRegression(fresh, -20)
	findings := CompareSweep(committed, fresh, 15)
	if len(findings) == 0 {
		t.Fatal("gate passed a 20% improvement against a stale committed record")
	}
}

// TestGateCatchesSuiteMismatch: a committed record built from a
// different benchmark suite cannot gate anything; the finding must say
// so instead of reporting misleading per-strategy regressions.
func TestGateCatchesSuiteMismatch(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	fresh.Benchmarks = append(fresh.Benchmarks, "irgen-99")
	findings := CompareSweep(committed, fresh, 15)
	if len(findings) != 1 || !strings.Contains(findings[0], "suite") {
		t.Fatalf("want a single suite-mismatch finding, got %v", findings)
	}
}

// TestGateCatchesMissingMachine: a fresh sweep that silently dropped a
// preset is a finding, not a pass.
func TestGateCatchesMissingMachine(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	fresh.Machines = fresh.Machines[1:]
	if findings := CompareSweep(committed, fresh, 15); len(findings) == 0 {
		t.Fatal("gate passed a sweep missing a machine preset")
	}
}

// TestGateCatchesAnalysisRebuilds: build counters exceeding the
// function count mean per-machine rebuilds crept back in; the gate
// guards the sharing property itself.
func TestGateCatchesAnalysisRebuilds(t *testing.T) {
	committed := freshSweepRecord(t)
	fresh := freshSweepRecord(t)
	fresh.Builds.Liveness = fresh.Functions*len(machine.Presets()) + 1
	if findings := CompareSweep(committed, fresh, 15); len(findings) == 0 {
		t.Fatal("gate passed a sweep with per-machine analysis rebuilds")
	}
}

func vmRecord(speedup float64, instrsPerRun int64) *VMBench {
	return &VMBench{
		Speedup: speedup,
		Engines: []EngineBench{
			{Engine: "bytecode", Runs: 3, Instrs: 3 * instrsPerRun},
			{Engine: "tree", Runs: 3, Instrs: 3 * instrsPerRun},
		},
	}
}

// TestGateVMSpeedupRatio: the VM gate trips on a speedup-ratio
// regression past the threshold and stays quiet within it. Ratios are
// host-independent, so the gate works on any CI runner.
func TestGateVMSpeedupRatio(t *testing.T) {
	committed := vmRecord(3.0, 1000)
	if findings := CompareVM(committed, vmRecord(2.9, 1000), 15); len(findings) != 0 {
		t.Errorf("3.3%% ratio drop tripped a 15%% gate: %v", findings)
	}
	if findings := CompareVM(committed, vmRecord(2.0, 1000), 15); len(findings) == 0 {
		t.Error("33% ratio drop passed a 15% gate")
	}
	fresh := vmRecord(3.0, 1000)
	InjectVMRegression(fresh, 20)
	if findings := CompareVM(committed, fresh, 15); len(findings) == 0 {
		t.Error("injected 20% VM regression passed a 15% gate")
	}
}

// vmRecord3 is a three-engine record as BenchVM now produces them:
// bytecode, regcode, and tree all run the same suite, so per-run
// instruction counts agree across engines in a healthy record.
func vmRecord3(speedup, regSpeedup float64, instrsPerRun int64) *VMBench {
	return &VMBench{
		Speedup:        speedup,
		RegcodeSpeedup: regSpeedup,
		Engines: []EngineBench{
			{Engine: "bytecode", Runs: 3, Instrs: 3 * instrsPerRun},
			{Engine: "regcode", Runs: 3, Instrs: 3 * instrsPerRun},
			{Engine: "tree", Runs: 3, Instrs: 3 * instrsPerRun},
		},
	}
}

// TestGateVMRegcodeRatio: the regcode-over-bytecode ratio is gated the
// same way as the bytecode-over-tree ratio — quiet within the
// threshold, a finding past it, and the injected self-test regression
// must degrade it enough to trip.
func TestGateVMRegcodeRatio(t *testing.T) {
	committed := vmRecord3(3.0, 2.0, 1000)
	if findings := CompareVM(committed, committed, 15); len(findings) != 0 {
		t.Errorf("self-comparison produced findings: %v", findings)
	}
	if findings := CompareVM(committed, vmRecord3(3.0, 1.9, 1000), 15); len(findings) != 0 {
		t.Errorf("5%% regcode ratio drop tripped a 15%% gate: %v", findings)
	}
	findings := CompareVM(committed, vmRecord3(3.0, 1.6, 1000), 15)
	if len(findings) == 0 {
		t.Error("20% regcode ratio drop passed a 15% gate")
	}
	for _, f := range findings {
		if !strings.Contains(f, "regcode speedup") {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	fresh := vmRecord3(3.0, 2.0, 1000)
	InjectVMRegression(fresh, 20)
	if findings := CompareVM(committed, fresh, 15); len(findings) == 0 {
		t.Error("injected 20% VM regression left the regcode ratio untripped")
	}
}

// TestGateVMRegcodeFloor: whatever the committed record says, a fresh
// regcode speedup below the absolute RegcodeSpeedupFloor is a finding
// — the engine exists to clear that bar.
func TestGateVMRegcodeFloor(t *testing.T) {
	committed := vmRecord3(3.0, 1.52, 1000)
	findings := CompareVM(committed, vmRecord3(3.0, 1.4, 1000), 15)
	found := false
	for _, f := range findings {
		if strings.Contains(f, "below the 1.5x floor") {
			found = true
		}
	}
	if !found {
		t.Errorf("regcode at 1.40x passed the %.1fx floor: %v", RegcodeSpeedupFloor, findings)
	}
	// Records from before the regcode engine existed carry no
	// RegcodeSpeedup at all; the floor must not fire on them.
	old := vmRecord(3.0, 1000)
	if findings := CompareVM(old, old, 15); len(findings) != 0 {
		t.Errorf("two-engine legacy record tripped the gate: %v", findings)
	}
}

// TestGateVMCrossEngineInstrs: within one fresh run every engine
// executes the same programs, so a per-run instruction count that
// differs from bytecode's means one of the engines miscounts.
func TestGateVMCrossEngineInstrs(t *testing.T) {
	committed := vmRecord3(3.0, 2.0, 1000)
	fresh := vmRecord3(3.0, 2.0, 1000)
	fresh.Engines[1].Instrs += 3
	findings := CompareVM(committed, fresh, 15)
	found := false
	for _, f := range findings {
		if strings.Contains(f, "an engine miscounts") {
			found = true
		}
	}
	if !found {
		t.Errorf("cross-engine instruction drift passed the gate: %v", findings)
	}
}

// workloadSuite trims the stand-in suite to two benchmarks so the
// end-to-end analysis benchmark stays fast under `go test`.
func workloadSuite(t *testing.T) []workload.BenchParams {
	t.Helper()
	var suite []workload.BenchParams
	for _, p := range workload.SPECInt2000() {
		if p.Name == "gzip" || p.Name == "mcf" {
			suite = append(suite, p)
		}
	}
	return suite
}

func analysisRecord(incSpeedup float64) *AnalysisBench {
	return &AnalysisBench{
		Benchmarks: []AnalysisRecord{
			{Benchmark: "gzip", Functions: 40, ColdNs: 40_000_000, SharedNs: 9_000_000, IncrementalNs: int64(40_000_000 / incSpeedup)},
		},
		ColdNs:             40_000_000,
		SharedNs:           9_000_000,
		IncrementalNs:      int64(40_000_000 / incSpeedup),
		SharedSpeedup:      40.0 / 9.0,
		IncrementalSpeedup: incSpeedup,
	}
}

// TestGateAnalysisSpeedup: the analysis gate trips when the incremental
// re-placement speedup regresses past the threshold or drops below the
// absolute 3x floor, and stays quiet on a healthy record.
func TestGateAnalysisSpeedup(t *testing.T) {
	committed := analysisRecord(8)
	if findings := CompareAnalysis(committed, analysisRecord(7.5), 15); len(findings) != 0 {
		t.Errorf("6%% ratio drop tripped a 15%% gate: %v", findings)
	}
	if findings := CompareAnalysis(committed, analysisRecord(5), 15); len(findings) == 0 {
		t.Error("37% ratio drop passed a 15% gate")
	}
	if findings := CompareAnalysis(committed, analysisRecord(2.5), 15); len(findings) == 0 {
		t.Error("speedup below the 3x floor passed the gate")
	}
	fresh := analysisRecord(8)
	InjectAnalysisRegression(fresh, 20)
	if findings := CompareAnalysis(committed, fresh, 15); len(findings) == 0 {
		t.Error("injected 20% analysis regression passed a 15% gate")
	}
}

// TestGateAnalysisRebuildFallbacks: any incremental re-placement that
// fell back to a full analysis rebuild is a finding — it means a
// placement edit shape the delta patchers stopped recognizing.
func TestGateAnalysisRebuildFallbacks(t *testing.T) {
	committed := analysisRecord(8)
	fresh := analysisRecord(8)
	fresh.Rebuilds = 1
	if findings := CompareAnalysis(committed, fresh, 15); len(findings) == 0 {
		t.Error("gate passed a record with full-rebuild fallbacks")
	}
}

// TestGateAnalysisSuiteDrift: a fresh record covering a benchmark or
// function population the committed record does not know is a finding.
func TestGateAnalysisSuiteDrift(t *testing.T) {
	committed := analysisRecord(8)
	fresh := analysisRecord(8)
	fresh.Benchmarks[0].Functions++
	if findings := CompareAnalysis(committed, fresh, 15); len(findings) == 0 {
		t.Error("gate passed a function-count drift")
	}
	fresh = analysisRecord(8)
	fresh.Benchmarks[0].Benchmark = "vpr"
	if findings := CompareAnalysis(committed, fresh, 15); len(findings) == 0 {
		t.Error("gate passed an unknown benchmark")
	}
}

// TestBenchAnalysisEndToEnd: the analysis benchmark itself runs over a
// small generated suite, measures a real incremental advantage, and
// records zero full-rebuild fallbacks — the live half of the acceptance
// criterion the JSON gate pins.
func TestBenchAnalysisEndToEnd(t *testing.T) {
	suite := workloadSuite(t)
	b, err := BenchAnalysis(suite, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rebuilds != 0 {
		t.Errorf("incremental re-placement fell back to %d full rebuilds", b.Rebuilds)
	}
	if b.IncrementalSpeedup <= 1 {
		t.Errorf("incremental re-placement slower than cold: %.2fx", b.IncrementalSpeedup)
	}
	if len(b.Benchmarks) != len(suite) {
		t.Errorf("record covers %d benchmarks, suite has %d", len(b.Benchmarks), len(suite))
	}
	if findings := CompareAnalysis(b, b, 15); b.IncrementalSpeedup >= 3 && len(findings) != 0 {
		t.Errorf("self-comparison produced findings: %v", findings)
	}
	if _, err := b.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestGateVMInstrDrift: deterministic per-run instruction counts must
// match the committed record exactly; drift means a stale record or a
// miscounting engine.
func TestGateVMInstrDrift(t *testing.T) {
	committed := vmRecord(3.0, 1000)
	if findings := CompareVM(committed, vmRecord(3.0, 1001), 15); len(findings) == 0 {
		t.Error("instruction-count drift passed the gate")
	}
}
