package bench

// crossover.go measures where machine presets disagree: the same
// crossover scenario programs (irgen.Crossover — register-pressure
// plateaus, cold diamonds feeding hot back edges, fall-through-split
// loop nests) are evaluated per preset under both allocation modes,
// uniform spill weights vs machine-priced spill weights, across every
// placement strategy. The record keeps, per benchmark and preset, the
// best strategy under each allocation mode and which combination wins
// — so a winner that flips between presets (a different strategy, or
// a different allocation mode) is a measured fact the CI gate can
// hold on to. Overheads are deterministic dynamic counts.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/machine"
)

// CrossoverSuite returns n crossover scenario entries, seeds
// base..base+n-1 — the irgen family built so the winning strategy or
// allocation mode depends on the machine preset.
func CrossoverSuite(base uint64, n int) []Entry {
	if n < 0 {
		n = 0
	}
	out := make([]Entry, n)
	for i := range out {
		seed := base + uint64(i)
		out[i] = Entry{
			Name: "crossover-" + fmt.Sprint(seed),
			Gen:  func() *ir.Program { return irgen.Generate(seed, irgen.Crossover()) },
		}
	}
	return out
}

// CrossoverStrategyCell is one strategy's measured weighted overhead
// under both allocation modes, for one (benchmark, preset) pair.
type CrossoverStrategyCell struct {
	Strategy string `json:"strategy"`
	Uniform  int64  `json:"uniform"`
	Machine  int64  `json:"machine"`
}

// CrossoverPresetRow is one preset's verdict on one benchmark.
type CrossoverPresetRow struct {
	Machine    string                  `json:"machine"`
	Strategies []CrossoverStrategyCell `json:"strategies"`
	// UniformBest/MachineBest are each allocation mode's best strategy
	// (lowest measured weighted overhead, ties to the simpler
	// technique) and its overhead.
	UniformBest     string `json:"uniform_best"`
	UniformOverhead int64  `json:"uniform_overhead"`
	MachineBest     string `json:"machine_best"`
	MachineOverhead int64  `json:"machine_overhead"`
	// WinnerAlloc and WinnerStrategy name the overall winner; an
	// overhead tie goes to the uniform allocation (the paper's mode).
	WinnerAlloc    string `json:"winner_alloc"`
	WinnerStrategy string `json:"winner_strategy"`
}

// CrossoverBench is one benchmark's preset-by-preset outcome.
type CrossoverBench struct {
	Name    string               `json:"name"`
	Presets []CrossoverPresetRow `json:"presets"`
	// StrategyFlip: the winning strategy differs between two presets.
	// AllocFlip: the winning allocation mode differs between two
	// presets.
	StrategyFlip bool `json:"strategy_flip"`
	AllocFlip    bool `json:"alloc_flip"`
}

// CrossoverRecord is the serialized BENCH_crossover.json shape. Every
// overhead is a deterministic dynamic count, so the CI gate compares
// them exactly up to its tolerance; Flips is the suite's reason to
// exist and the gate requires it to stay >= 1.
type CrossoverRecord struct {
	Suite      string           `json:"suite"`
	Benchmarks []string         `json:"benchmarks"`
	Machines   []string         `json:"machines"`
	GoVersion  string           `json:"go_version"`
	Date       string           `json:"date"`
	Flips      int              `json:"flips"`
	Benches    []CrossoverBench `json:"benches"`
}

// RunCrossover evaluates the entries under every preset in both
// allocation modes: one uniform multi-machine sweep (shared
// allocation, repriced per preset) plus one machine-priced
// single-preset sweep per machine. Each benchmark's return value must
// agree across every mode and preset — machine-priced allocation may
// move spills, never results.
func RunCrossover(entries []Entry, machines []*machine.Desc, opts Options) (*CrossoverRecord, error) {
	if len(machines) == 0 {
		machines = machine.Presets()
	}
	uopts := opts
	uopts.MachineAlloc = false
	uni, err := RunSweep(entries, machines, uopts)
	if err != nil {
		return nil, fmt.Errorf("crossover uniform sweep: %w", err)
	}
	per := make([]*Sweep, len(machines))
	for mi, d := range machines {
		mopts := opts
		mopts.MachineAlloc = true
		sw, err := RunSweep(entries, []*machine.Desc{d}, mopts)
		if err != nil {
			return nil, fmt.Errorf("crossover machine sweep @%s: %w", d.Name, err)
		}
		per[mi] = sw
	}

	rec := &CrossoverRecord{
		Suite:     "irgen crossover scenario families",
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
	}
	for _, d := range machines {
		rec.Machines = append(rec.Machines, d.Name)
	}
	for i, e := range entries {
		rec.Benchmarks = append(rec.Benchmarks, e.Name)
		b := CrossoverBench{Name: e.Name}
		for mi, d := range machines {
			u := uni.Results[i]
			m := per[mi].Results[i]
			if m.ReturnValue != u.ReturnValue {
				return nil, fmt.Errorf("crossover %s@%s: machine alloc computed %d, uniform %d",
					e.Name, d.Name, m.ReturnValue, u.ReturnValue)
			}
			row := CrossoverPresetRow{Machine: d.Name}
			ubest, mbest := u.Winner(mi), m.Winner(0)
			for _, s := range Strategies {
				row.Strategies = append(row.Strategies, CrossoverStrategyCell{
					Strategy: s.String(),
					Uniform:  u.Cells[mi][s].WeightedOverhead,
					Machine:  m.Cells[0][s].WeightedOverhead,
				})
			}
			row.UniformBest = ubest.String()
			row.UniformOverhead = u.Cells[mi][ubest].WeightedOverhead
			row.MachineBest = mbest.String()
			row.MachineOverhead = m.Cells[0][mbest].WeightedOverhead
			row.WinnerAlloc, row.WinnerStrategy = crossoverWinner(&row)
			b.Presets = append(b.Presets, row)
		}
		for _, row := range b.Presets[1:] {
			if row.WinnerStrategy != b.Presets[0].WinnerStrategy {
				b.StrategyFlip = true
			}
			if row.WinnerAlloc != b.Presets[0].WinnerAlloc {
				b.AllocFlip = true
			}
		}
		if b.StrategyFlip || b.AllocFlip {
			rec.Flips++
		}
		rec.Benches = append(rec.Benches, b)
	}
	return rec, nil
}

// crossoverWinner names the row's overall winner; ties go to the
// uniform allocation, the paper's mode.
func crossoverWinner(row *CrossoverPresetRow) (alloc, strategy string) {
	if row.MachineOverhead < row.UniformOverhead {
		return "machine", row.MachineBest
	}
	return "uniform", row.UniformBest
}

// JSON renders the record, indented, trailing newline included.
func (r *CrossoverRecord) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// StandingCrossover is the standing configuration of the committed
// BENCH_crossover.json: the first ten crossover seeds across every
// machine preset. cmd/spillbench -crossover writes it and
// cmd/benchdiff -crossover reproduces it for the CI gate.
func StandingCrossover(parallelism int) (*CrossoverRecord, error) {
	return RunCrossover(CrossoverSuite(1, 10), machine.Presets(), Options{Parallelism: parallelism})
}
