package bench

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// paperTable1 is the paper's Table 1: optimized/baseline and
// shrinkwrap/baseline percentages per benchmark.
var paperTable1 = map[string][2]float64{
	"gzip": {83.0, 102.6}, "vpr": {99.5, 100.0}, "gcc": {59.6, 93.9},
	"mcf": {100.0, 100.0}, "crafty": {44.0, 93.3}, "parser": {85.8, 99.0},
	"perlbmk": {89.7, 99.6}, "gap": {88.5, 95.4}, "vortex": {98.8, 100.0},
	"bzip2": {90.2, 100.5}, "twolf": {93.9, 108.0},
}

// TestTable1Shape checks that the reproduction matches the paper's
// Table 1 within tolerance: each benchmark's ratios within 8 points,
// the suite averages within 3 points, and the qualitative facts the
// paper calls out.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	results, err := RunAll(workload.SPECInt2000())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Result{}
	var sumOpt, sumSw, paperOpt, paperSw float64
	for _, r := range results {
		byName[r.Name] = r
		sumOpt += r.Ratio(Optimized)
		sumSw += r.Ratio(Shrinkwrap)
		paperOpt += paperTable1[r.Name][0]
		paperSw += paperTable1[r.Name][1]
	}

	const perBench = 8.0
	for name, want := range paperTable1 {
		r := byName[name]
		if r == nil {
			t.Fatalf("missing benchmark %s", name)
		}
		if d := math.Abs(r.Ratio(Optimized) - want[0]); d > perBench {
			t.Errorf("%s optimized ratio %.1f%%, paper %.1f%% (off by %.1f)",
				name, r.Ratio(Optimized), want[0], d)
		}
		if d := math.Abs(r.Ratio(Shrinkwrap) - want[1]); d > perBench {
			t.Errorf("%s shrinkwrap ratio %.1f%%, paper %.1f%% (off by %.1f)",
				name, r.Ratio(Shrinkwrap), want[1], d)
		}
	}

	n := float64(len(results))
	if d := math.Abs(sumOpt/n - paperOpt/n); d > 3 {
		t.Errorf("optimized average %.1f%%, paper %.1f%%", sumOpt/n, paperOpt/n)
	}
	if d := math.Abs(sumSw/n - paperSw/n); d > 3 {
		t.Errorf("shrinkwrap average %.1f%%, paper %.1f%%", sumSw/n, paperSw/n)
	}

	// Qualitative facts from the paper's discussion:
	// the biggest hierarchical wins are gcc and crafty;
	if byName["crafty"].Ratio(Optimized) > 60 || byName["gcc"].Ratio(Optimized) > 70 {
		t.Error("gcc and crafty should show the deepest optimized wins")
	}
	// mcf has almost no callee-saved spill overhead;
	if byName["mcf"].Overhead[Baseline] > 100 {
		t.Errorf("mcf overhead should be tiny, got %d", byName["mcf"].Overhead[Baseline])
	}
	// shrink-wrapping loses to entry/exit on twolf (its worst case);
	if byName["twolf"].Ratio(Shrinkwrap) <= 100 {
		t.Error("twolf shrink-wrap should exceed entry/exit placement")
	}
	// and the optimized placement never exceeds either technique.
	for _, r := range results {
		if r.Overhead[Optimized] > r.Overhead[Baseline] || r.Overhead[Optimized] > r.Overhead[Shrinkwrap] {
			t.Errorf("%s: never-worse guarantee violated", r.Name)
		}
	}
}

// TestReportsRender exercises the table/figure formatters.
func TestReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	results, err := RunAll(workload.SPECInt2000()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{Figure5(results), Table1(results), Table2(results)} {
		if len(s) < 50 {
			t.Errorf("report suspiciously short:\n%s", s)
		}
	}
}

// TestDeterministicRuns checks the whole pipeline is reproducible.
func TestDeterministicRuns(t *testing.T) {
	p := workload.SPECInt2000()[3] // mcf, the smallest
	r1, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overhead != r2.Overhead || r1.ReturnValue != r2.ReturnValue {
		t.Error("pipeline is not deterministic")
	}
}
