package bench

// sweep.go runs the evaluation across machine descriptions: every
// strategy placed and measured under every machine cost preset, all
// presets sharing one register allocation and one analysis cache per
// benchmark. The paper evaluates one hard-coded machine; the sweep
// shows where its claim — optimal placement beats shrink-wrapping and
// entry/exit placement — holds and where the winner crosses over as
// the jump:spill latency ratio moves.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/vm"
	"repro/internal/workload"
)

// SweepCell is one (benchmark, machine, strategy) measurement.
type SweepCell struct {
	// WeightedOverhead is the measured overhead priced with the
	// machine's cost surface (vm.Stats.WeightedOverhead).
	WeightedOverhead int64
	// Modeled is the placement's predicted cost under the machine's
	// jump-edge model, before Apply realizes it.
	Modeled int64
	// PlacementTime is the compute time of this strategy's sets under
	// this machine (analyses shared through the benchmark's cache are
	// charged to whichever machine/strategy builds them first).
	PlacementTime time.Duration
}

// SweepBench holds one benchmark's cells, indexed [machine][strategy].
type SweepBench struct {
	Name        string
	Cells       [][numStrategies]SweepCell
	ReturnValue int64
}

// Winner returns the benchmark's winning strategy under machine mi:
// the lowest measured weighted overhead, ties to the earlier strategy
// in declaration order (the simpler technique).
func (r *SweepBench) Winner(mi int) Strategy {
	w := Baseline
	for _, s := range Strategies {
		if r.Cells[mi][s].WeightedOverhead < r.Cells[mi][w].WeightedOverhead {
			w = s
		}
	}
	return w
}

// Sweep is the outcome of a multi-machine evaluation.
type Sweep struct {
	// Machines are the swept descriptions, in input order.
	Machines []*machine.Desc
	// Results has one entry per benchmark, in input order.
	Results []*SweepBench
	// Builds sums the analysis build counters across every benchmark's
	// cache: with Functions functions placed in total, each counter is
	// at most Functions no matter how many machines were swept — the
	// proof that machine descriptions share analyses instead of
	// rebuilding them.
	Builds analysis.Counts
	// Functions counts the functions placement visited, summed across
	// benchmarks.
	Functions int
}

// MachineTotal aggregates one machine's suite-wide numbers.
type MachineTotal struct {
	Machine   *machine.Desc
	Overhead  [numStrategies]int64
	Modeled   [numStrategies]int64
	Placement [numStrategies]time.Duration
	// Winner is the strategy with the lowest suite-total weighted
	// overhead on this machine (ties go to the earlier strategy in
	// declaration order, i.e. the simpler technique).
	Winner Strategy
}

// MachineTotals sums the per-benchmark cells into per-machine totals.
func (sw *Sweep) MachineTotals() []MachineTotal {
	out := make([]MachineTotal, len(sw.Machines))
	for mi, d := range sw.Machines {
		t := &out[mi]
		t.Machine = d
		for _, r := range sw.Results {
			for _, s := range Strategies {
				t.Overhead[s] += r.Cells[mi][s].WeightedOverhead
				t.Modeled[s] += r.Cells[mi][s].Modeled
				t.Placement[s] += r.Cells[mi][s].PlacementTime
			}
		}
		t.Winner = Baseline
		for _, s := range Strategies {
			if t.Overhead[s] < t.Overhead[t.Winner] {
				t.Winner = s
			}
		}
	}
	return out
}

// RunSweep evaluates every strategy under every machine description
// over the given entries. All machines must share one register file
// (machine.Presets do): each benchmark is generated, profiled, and
// register-allocated once, and every (machine, strategy) placement
// computes its sets through that benchmark's single analysis.Cache —
// liveness, dominators, loops, PST, and the shrink-wrap seed are built
// at most once per function for the whole sweep. Only the hierarchical
// traversals (which read the machine's cost model) and the measurement
// runs repeat per machine.
func RunSweep(entries []Entry, machines []*machine.Desc, opts Options) (*Sweep, error) {
	if len(machines) == 0 {
		machines = machine.Presets()
	}
	if !machine.SameRegisterFile(machines) {
		return nil, fmt.Errorf("bench: swept machines must share a register file")
	}
	if opts.MachineAlloc && len(machines) > 1 {
		// Machine-priced allocation specializes the allocation to one
		// cost surface, which breaks the sweep's shared-allocation
		// premise. RunCrossover sweeps one preset at a time instead.
		return nil, fmt.Errorf("bench: MachineAlloc requires a single-machine sweep")
	}
	sw := &Sweep{Machines: machines, Results: make([]*SweepBench, len(entries))}
	builds := make([]analysis.Counts, len(entries))
	funcs := make([]int, len(entries))
	inner := opts
	if par.Limit(opts.Parallelism, len(entries)) > 1 {
		inner.Parallelism = 1
	}
	err := par.Do(len(entries), opts.Parallelism, func(i int) error {
		r, b, nf, err := runSweepEntry(entries[i], machines, inner)
		if err != nil {
			return err
		}
		sw.Results[i], builds[i], funcs[i] = r, b, nf
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range entries {
		sw.Builds.Liveness += builds[i].Liveness
		sw.Builds.Dom += builds[i].Dom
		sw.Builds.Loops += builds[i].Loops
		sw.Builds.PST += builds[i].PST
		sw.Builds.Seed += builds[i].Seed
		sw.Builds.Busy += builds[i].Busy
		sw.Functions += funcs[i]
	}
	return sw, nil
}

// runSweepEntry runs one benchmark through the sweep: one generate/
// profile/allocate, then per (machine, strategy) placement on clones
// and a measurement run per clone.
func runSweepEntry(e Entry, machines []*machine.Desc, opts Options) (*SweepBench, analysis.Counts, int, error) {
	prog := e.Gen()
	if _, err := profile.CollectWithConfig(prog, vm.Config{Engine: opts.Engine}, 0); err != nil {
		return nil, analysis.Counts{}, 0, fmt.Errorf("sweep %s: profile: %w", e.Name, err)
	}
	if err := profile.Consistent(prog); err != nil {
		return nil, analysis.Counts{}, 0, fmt.Errorf("sweep %s: %w", e.Name, err)
	}
	if _, err := regalloc.AllocateProgramOpts(prog, machines[0], opts.Parallelism, regalloc.Options{MachineCosts: opts.MachineAlloc}); err != nil {
		return nil, analysis.Counts{}, 0, fmt.Errorf("sweep %s: regalloc: %w", e.Name, err)
	}

	res := &SweepBench{Name: e.Name, Cells: make([][numStrategies]SweepCell, len(machines))}
	cache := analysis.NewCache()
	funcs := strategy.NeedsPlacement(prog)

	// Placement stays serial across (machine, strategy) pairs so the
	// timing column keeps its Table 2 meaning; each placement may still
	// fan out per function. A strategy whose placement cannot depend on
	// the machine computes, applies, and executes once — its cells for
	// the other machines reprice the one measurement (pricing happens
	// after the fact, on the class counts), with the placement time
	// charged to the first machine and zero for the repriced ones.
	type run struct {
		mi    int // machine that owns the VM execution
		s     Strategy
		clone *ir.Program
		all   bool // result is repriced for every machine
	}
	var runs []run
	for mi, d := range machines {
		for _, s := range Strategies {
			if mi > 0 && !machineDependent(s, machines) {
				continue
			}
			sets, elapsed, err := computeSets(funcs, s, opts.Parallelism, cache, d)
			if err != nil {
				return nil, analysis.Counts{}, 0, fmt.Errorf("sweep %s: %s@%s: %w", e.Name, s, d.Name, err)
			}
			res.Cells[mi][s].PlacementTime = elapsed
			// The modeled cost prices the same sets with each machine's
			// jump-edge model, so it is filled for every machine the
			// placement serves.
			for pm, pd := range machines {
				if pm != mi && machineDependent(s, machines) {
					continue
				}
				model := core.MachineModel{Desc: pd, ChargeJumps: true}
				for _, fs := range sets {
					res.Cells[pm][s].Modeled += core.TotalCost(model, fs)
				}
			}
			clone := prog.Clone()
			if err := applySets(clone, funcs, sets, opts.Parallelism); err != nil {
				return nil, analysis.Counts{}, 0, fmt.Errorf("sweep %s: %s@%s: %w", e.Name, s, d.Name, err)
			}
			runs = append(runs, run{mi, s, clone, !machineDependent(s, machines)})
		}
	}

	// Measurement runs are independent (one clone, one VM each) and
	// fan out across the pool. The convention checker uses the shared
	// register file; only the pricing differs per machine.
	vals := make([]int64, len(runs))
	err := par.Do(len(runs), opts.Parallelism, func(i int) error {
		r := runs[i]
		v := vm.New(r.clone, vm.Config{Machine: machines[0], Engine: opts.Engine})
		val, err := v.Run(0)
		if err != nil {
			return fmt.Errorf("sweep %s: %s@%s run: %w", e.Name, r.s, machines[r.mi].Name, err)
		}
		vals[i] = val
		if r.all {
			for pm, pd := range machines {
				res.Cells[pm][r.s].WeightedOverhead = v.Stats.WeightedOverhead(pd.Costs)
			}
		} else {
			res.Cells[r.mi][r.s].WeightedOverhead = v.Stats.WeightedOverhead(machines[r.mi].Costs)
		}
		return nil
	})
	if err != nil {
		return nil, analysis.Counts{}, 0, err
	}
	res.ReturnValue = vals[0]
	for i, v := range vals {
		if v != res.ReturnValue {
			return nil, analysis.Counts{}, 0, fmt.Errorf("sweep %s: %s@%s computed %d, want %d",
				e.Name, runs[i].s, machines[runs[i].mi].Name, v, res.ReturnValue)
		}
	}
	return res, cache.Counts(), len(funcs), nil
}

// machineDependent reports whether the strategy's placement can differ
// across the swept machines. The hierarchical strategies optimize the
// machine's cost model; Chow's shrink-wrapping reads only the
// machine's jump-charging verdict, so it is machine-dependent only
// when the swept machines disagree on it; entry/exit placement never
// consults a machine.
func machineDependent(s Strategy, machines []*machine.Desc) bool {
	t := s.technique()
	if t.IsHierarchical() {
		return true
	}
	if t == strategy.Shrinkwrap {
		first := machines[0].Costs.JumpCost() > 0
		for _, d := range machines[1:] {
			if (d.Costs.JumpCost() > 0) != first {
				return true
			}
		}
	}
	return false
}

// SweepStrategyRecord is one (machine, strategy) suite total in the
// serialized record.
type SweepStrategyRecord struct {
	Name             string  `json:"name"`
	WeightedOverhead int64   `json:"weighted_overhead"`
	Modeled          int64   `json:"modeled"`
	PlacementNS      int64   `json:"placement_ns"`
	RatioVsBaseline  float64 `json:"ratio_vs_baseline"`
}

// SweepMachineRecord is one machine's suite totals.
type SweepMachineRecord struct {
	Name       string                `json:"name"`
	Costs      machine.Costs         `json:"costs"`
	SpillRatio float64               `json:"jump_spill_ratio"`
	Strategies []SweepStrategyRecord `json:"strategies"`
	Winner     string                `json:"winner"`
}

// SweepRecord is the serialized BENCH_machines.json shape. The
// weighted overheads and modeled costs are deterministic — the
// benchmark programs, profiles, allocations, and placements are all
// seeded — so the CI gate compares them against a fresh run with a
// small tolerance and any real change trips it; placement times are
// wall clock and informational only.
type SweepRecord struct {
	Suite      string               `json:"suite"`
	Benchmarks []string             `json:"benchmarks"`
	GoVersion  string               `json:"go_version"`
	Date       string               `json:"date"`
	Functions  int                  `json:"functions"`
	Builds     analysis.Counts      `json:"analysis_builds"`
	Machines   []SweepMachineRecord `json:"machines"`
	// BenchWinners records each benchmark's winning strategy per
	// preset and whether that winner flips anywhere across presets —
	// the per-benchmark view the suite totals above average away.
	BenchWinners []SweepBenchRecord `json:"benchmark_winners,omitempty"`
}

// SweepBenchRecord is one benchmark's per-preset winners.
type SweepBenchRecord struct {
	Name string `json:"name"`
	// Winners maps preset name to the winning strategy on this
	// benchmark (lowest measured weighted overhead, ties to the
	// simpler technique).
	Winners map[string]string `json:"winners"`
	// Flips is true when the winner is not the same strategy under
	// every preset.
	Flips bool `json:"winner_flips"`
}

// Record flattens the sweep into its serialized form.
func (sw *Sweep) Record(suiteName string) *SweepRecord {
	rec := &SweepRecord{
		Suite:     suiteName,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
		Functions: sw.Functions,
		Builds:    sw.Builds,
	}
	for _, r := range sw.Results {
		rec.Benchmarks = append(rec.Benchmarks, r.Name)
		br := SweepBenchRecord{Name: r.Name, Winners: make(map[string]string, len(sw.Machines))}
		first := r.Winner(0)
		for mi, d := range sw.Machines {
			w := r.Winner(mi)
			br.Winners[d.Name] = w.String()
			if w != first {
				br.Flips = true
			}
		}
		rec.BenchWinners = append(rec.BenchWinners, br)
	}
	for _, t := range sw.MachineTotals() {
		mr := SweepMachineRecord{
			Name:       t.Machine.Name,
			Costs:      t.Machine.Costs,
			SpillRatio: t.Machine.Costs.SpillRatio(),
			Winner:     t.Winner.String(),
		}
		for _, s := range Strategies {
			ratio := 100.0
			if t.Overhead[Baseline] != 0 {
				ratio = 100 * float64(t.Overhead[s]) / float64(t.Overhead[Baseline])
			}
			mr.Strategies = append(mr.Strategies, SweepStrategyRecord{
				Name:             s.String(),
				WeightedOverhead: t.Overhead[s],
				Modeled:          t.Modeled[s],
				PlacementNS:      t.Placement[s].Nanoseconds(),
				RatioVsBaseline:  ratio,
			})
		}
		rec.Machines = append(rec.Machines, mr)
	}
	return rec
}

// JSON renders the record, indented, trailing newline included.
func (r *SweepRecord) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// SweepSuite is the standing configuration of the committed
// BENCH_machines.json: the SPEC stand-in suite swept over every
// machine preset. cmd/spillbench writes it and cmd/benchdiff
// reproduces it for the CI regression gate.
func SweepSuite(parallelism int) (*SweepRecord, error) {
	var entries []Entry
	for _, p := range workload.SPECInt2000() {
		entries = append(entries, EntryFor(p))
	}
	sw, err := RunSweep(entries, machine.Presets(), Options{Parallelism: parallelism})
	if err != nil {
		return nil, err
	}
	return sw.Record("SPEC CPU2000 integer stand-ins"), nil
}
