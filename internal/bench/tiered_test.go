package bench

import (
	"strings"
	"testing"
)

// tieredSmall is the cut-down suite the unit tests measure: enough
// hostile programs for boundaries and a real gain, small enough to
// keep the test fast.
func tieredSmall(t *testing.T) *TieredBench {
	t.Helper()
	b, err := BenchTiered(HostileSuite(0, 4), 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBenchTiered: the static-vs-tiered comparison runs the hostile
// suite over every preset, tier boundaries fire, functions are
// re-placed, and on at least one preset the measured re-placement
// beats the static estimate by the gate's floor.
func TestBenchTiered(t *testing.T) {
	b := tieredSmall(t)
	if len(b.Machines) == 0 || len(b.Benchmarks) != 4 {
		t.Fatalf("unexpected record shape: %d machines, %d benchmarks", len(b.Machines), len(b.Benchmarks))
	}
	for _, m := range b.Machines {
		if m.StaticOverhead <= 0 || m.TieredOverhead <= 0 {
			t.Errorf("%s: degenerate overheads %d/%d", m.Machine, m.StaticOverhead, m.TieredOverhead)
		}
		if m.Boundaries == 0 {
			t.Errorf("%s: no tier boundaries at quantum %d", m.Machine, b.Quantum)
		}
		if m.Boundaries > 0 && m.Replaced == 0 {
			t.Errorf("%s: boundaries fired but no function was re-placed", m.Machine)
		}
	}
	if b.BestGain < TieredGainFloor {
		t.Errorf("best gain %.4f below the %.2f floor on the hostile suite", b.BestGain, TieredGainFloor)
	}
}

// TestBenchTieredDeterministic: overheads, gains, and boundary
// counters are pure dynamic counts — two runs agree exactly.
func TestBenchTieredDeterministic(t *testing.T) {
	a, b := tieredSmall(t), tieredSmall(t)
	for i := range a.Machines {
		am, bm := a.Machines[i], b.Machines[i]
		if am.StaticOverhead != bm.StaticOverhead || am.TieredOverhead != bm.TieredOverhead ||
			am.Boundaries != bm.Boundaries || am.Replaced != bm.Replaced {
			t.Errorf("%s: runs disagree: %+v vs %+v", am.Machine, am, bm)
		}
	}
}

// TestCompareTiered: self-comparison is clean; an injected regression
// trips the gate; suite or quantum drift is its own finding.
func TestCompareTiered(t *testing.T) {
	b := tieredSmall(t)
	if fs := CompareTiered(b, b, 2); len(fs) != 0 {
		t.Fatalf("self-comparison found: %v", fs)
	}

	hurt := *b
	hurt.Machines = append([]TieredMachineRow(nil), b.Machines...)
	InjectTieredRegression(&hurt, 25)
	fs := CompareTiered(b, &hurt, 2)
	if len(fs) == 0 {
		t.Fatal("injected 25%% tiered regression passed the gate")
	}
	sawOverhead := false
	for _, f := range fs {
		if strings.Contains(f, "tiered overhead") {
			sawOverhead = true
		}
	}
	if !sawOverhead {
		t.Errorf("regression findings miss the overhead drift: %v", fs)
	}

	skew := *b
	skew.Quantum = b.Quantum + 1
	fs = CompareTiered(b, &skew, 2)
	if len(fs) != 1 || !strings.Contains(fs[0], "regenerate BENCH_tiered.json") {
		t.Errorf("quantum drift not reported as a suite mismatch: %v", fs)
	}

	idle := *b
	idle.Machines = append([]TieredMachineRow(nil), b.Machines...)
	for i := range idle.Machines {
		idle.Machines[i].Boundaries = 0
	}
	fs = CompareTiered(b, &idle, 2)
	found := false
	for _, f := range fs {
		if strings.Contains(f, "tier boundary") {
			found = true
		}
	}
	if !found {
		t.Errorf("boundary-free run not flagged: %v", fs)
	}
}
