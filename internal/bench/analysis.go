package bench

// analysis.go measures the analysis layer itself: the cost of
// re-placing the paper's configuration on an edited function with cold
// analyses, with a fully shared (warm) cache, and incrementally via
// core.Delta + analysis.ApplyDelta. This is the analysis-layer
// trajectory record (BENCH_analysis.json): the delta path's speedup
// over cold re-analysis is what makes placement cheap enough to re-run
// inside an allocator loop, so the CI gate pins it.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/workload"
)

// AnalysisRecord is one benchmark's aggregate re-placement timings.
type AnalysisRecord struct {
	Benchmark     string `json:"benchmark"`
	Functions     int    `json:"functions"`
	ColdNs        int64  `json:"cold_ns"`
	SharedNs      int64  `json:"shared_ns"`
	IncrementalNs int64  `json:"incremental_ns"`
}

// AnalysisBench is the serialized BENCH_analysis.json shape.
type AnalysisBench struct {
	Suite      string           `json:"suite"`
	Benchmarks []AnalysisRecord `json:"benchmarks"`
	Reps       int              `json:"reps"`
	GoVersion  string           `json:"go_version"`
	GOARCH     string           `json:"goarch"`
	Date       string           `json:"date"`
	// Suite totals and the host-independent speedup ratios the gate
	// compares: cold over shared and cold over incremental.
	ColdNs             int64   `json:"cold_ns"`
	SharedNs           int64   `json:"shared_ns"`
	IncrementalNs      int64   `json:"incremental_ns"`
	SharedSpeedup      float64 `json:"shared_speedup"`
	IncrementalSpeedup float64 `json:"incremental_speedup"`
	// Rebuilds counts functions whose incremental re-placement fell
	// back to a full analysis rebuild; 0 in a healthy tree.
	Rebuilds int `json:"rebuilds"`
}

// JSON renders the record for the committed trajectory file.
func (b *AnalysisBench) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// BenchAnalysis prepares each suite benchmark (generate, profile,
// allocate) and measures re-placement timings with measureReplacement,
// reps times per benchmark, keeping each column's per-rep minimum: the
// timings are sub-millisecond per benchmark, so a single GC pause or
// scheduler stall in one rep would otherwise dominate the record.
func BenchAnalysis(suite []workload.BenchParams, reps int) (*AnalysisBench, error) {
	if reps <= 0 {
		reps = 3
	}
	mach := machine.PARISC()
	out := &AnalysisBench{
		Suite:     "SPEC CPU2000 integer stand-ins",
		Reps:      reps,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Date:      time.Now().UTC().Format("2006-01-02"),
	}
	for _, p := range suite {
		rec := AnalysisRecord{Benchmark: p.Name}
		for rep := 0; rep < reps; rep++ {
			prog := workload.Generate(p)
			if _, err := profile.Collect(prog, 0); err != nil {
				return nil, fmt.Errorf("benchanalysis %s: profile: %w", p.Name, err)
			}
			if _, err := regalloc.AllocateProgramParallel(prog, mach, 0); err != nil {
				return nil, fmt.Errorf("benchanalysis %s: regalloc: %w", p.Name, err)
			}
			coldNs, sharedNs, incNs, rebuilds, funcs, err := measureReplacement(prog)
			if err != nil {
				return nil, fmt.Errorf("benchanalysis %s: %w", p.Name, err)
			}
			rec.Functions = funcs
			if rep == 0 || coldNs < rec.ColdNs {
				rec.ColdNs = coldNs
			}
			if rep == 0 || sharedNs < rec.SharedNs {
				rec.SharedNs = sharedNs
			}
			if rep == 0 || incNs < rec.IncrementalNs {
				rec.IncrementalNs = incNs
			}
			out.Rebuilds += rebuilds
		}
		out.Benchmarks = append(out.Benchmarks, rec)
		out.ColdNs += rec.ColdNs
		out.SharedNs += rec.SharedNs
		out.IncrementalNs += rec.IncrementalNs
	}
	if out.SharedNs > 0 {
		out.SharedSpeedup = float64(out.ColdNs) / float64(out.SharedNs)
	}
	if out.IncrementalNs > 0 {
		out.IncrementalSpeedup = float64(out.ColdNs) / float64(out.IncrementalNs)
	}
	return out, nil
}
