package bench

// tiered.go measures what the tiered pipeline buys: the same
// estimator-hostile programs placed once with static estimates and
// once through the two-tier measured re-placement (internal/tier),
// full-run weighted overhead compared per machine preset. The suite is
// irgen's hostile family — data-dependent trip counts, constant-folded
// guards, skewed twin loops — precisely the shapes the static
// estimator prices wrong, so the measured profile has something real
// to recover. Overheads are deterministic dynamic counts; the wall
// times and instrs/s are recorded for the EXPERIMENTS.md narrative but
// never gated.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/tier"
	"repro/internal/vm"
)

// HostileSuite returns n estimator-hostile scenario entries, seeds
// base..base+n-1 — the irgen family built to make static estimates
// wrong, which is the workload the tiered pipeline exists for.
func HostileSuite(base uint64, n int) []Entry {
	if n < 0 {
		n = 0
	}
	out := make([]Entry, n)
	for i := range out {
		seed := base + uint64(i)
		out[i] = Entry{
			Name: "hostile-" + fmt.Sprint(seed),
			Gen:  func() *ir.Program { return irgen.Generate(seed, irgen.Hostile()) },
		}
	}
	return out
}

// TieredMachineRow is one machine preset's static-vs-measured
// comparison, summed over the suite.
type TieredMachineRow struct {
	Machine string `json:"machine"`
	// StaticOverhead is the full-run cost of the programs aligned and
	// placed with static-estimate weights — the weighted spill-code
	// overhead plus the measured control-flow cost (taken jumps at the
	// preset's jump penalty, fall-throughs at the fall cost). The cost
	// a one-shot compile pays.
	StaticOverhead int64 `json:"static_overhead"`
	// TieredOverhead is the same full-run cost for the tier-1
	// placements — the programs re-aligned and re-placed with the edge
	// profile tier 0 measured.
	TieredOverhead int64 `json:"tiered_overhead"`
	// Gain is StaticOverhead over TieredOverhead: how much overhead the
	// measured re-placement removes. Both terms are deterministic
	// dynamic counts, so Gain is exactly reproducible.
	Gain float64 `json:"gain"`
	// Boundaries counts suite programs whose tier-0 quantum expired
	// (the rest finished inside it and never re-placed).
	Boundaries int `json:"boundaries"`
	// Replaced is the total number of functions re-placed at tier
	// boundaries across the suite.
	Replaced int `json:"replaced"`
	// StaticNS / TieredNS are total wall times: the static arm's full
	// run, and the tiered arm end to end — tier 0, the boundary
	// recompile, and tier 1. Host-dependent, recorded, not gated.
	StaticNS int64 `json:"static_ns"`
	TieredNS int64 `json:"tiered_ns"`
	// InstrsPerSec is the tiered arm's end-to-end VM instruction
	// throughput, recompile included.
	InstrsPerSec float64 `json:"instrs_per_sec"`
}

// TieredBench is the serialized BENCH_tiered.json shape.
type TieredBench struct {
	Suite      string             `json:"suite"`
	Benchmarks []string           `json:"benchmarks"`
	Quantum    int64              `json:"quantum"`
	Reps       int                `json:"reps"`
	GoVersion  string             `json:"go_version"`
	GOARCH     string             `json:"goarch"`
	Date       string             `json:"date"`
	Machines   []TieredMachineRow `json:"machines"`
	// BestGain is the largest per-preset Gain — the headline number the
	// gate holds to the absolute TieredGainFloor.
	BestGain float64 `json:"best_gain"`
}

// BenchTiered runs the static-vs-tiered comparison over every machine
// preset. For each (preset, entry) pair both arms start from the same
// generated program under the same static estimate and allocation:
//
//	static arm: align + place with the estimated weights, run to
//	completion, price the overhead with the preset's costs;
//	tiered arm: tier.Run with the given quantum (tier 0 profiles under
//	regcode, the boundary re-aligns and re-places from measured
//	weights), then run the final tier-1 program to completion and
//	price it identically.
//
// Overheads accumulate once per entry; the timing loop repeats reps
// times and keeps the minimum wall time per arm, standard
// best-of-N noise suppression for the recorded (ungated) throughput.
func BenchTiered(entries []Entry, quantum int64, reps int) (*TieredBench, error) {
	if reps <= 0 {
		reps = 3
	}
	if quantum <= 0 {
		quantum = tier.DefaultQuantum
	}
	out := &TieredBench{
		Suite:     "irgen hostile scenario family",
		Quantum:   quantum,
		Reps:      reps,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Date:      time.Now().UTC().Format("2006-01-02"),
	}
	for _, e := range entries {
		out.Benchmarks = append(out.Benchmarks, e.Name)
	}
	for _, d := range machine.Presets() {
		row := TieredMachineRow{Machine: d.Name}
		var rowInstrs int64
		for _, e := range entries {
			var staticBest, tieredBest int64
			for r := 0; r < reps; r++ {
				prog := e.Gen()
				profile.EstimateProgramMachine(prog, d, nil)
				if _, err := regalloc.AllocateProgramParallel(prog, d, 0); err != nil {
					return nil, fmt.Errorf("benchtiered %s/%s: regalloc: %w", d.Name, e.Name, err)
				}

				// Static arm: the one-shot estimate-weighted pipeline.
				st := prog.Clone()
				for _, f := range st.FuncsInOrder() {
					layout.Align(f)
				}
				if err := strategy.PlaceProgramFor(st, strategy.HierarchicalJump, d, 0, nil); err != nil {
					return nil, fmt.Errorf("benchtiered %s/%s: static place: %w", d.Name, e.Name, err)
				}
				m := vm.New(st, vm.Config{Machine: d, Engine: vm.EngineRegcode, CollectEdges: true})
				start := time.Now()
				if _, err := m.Run(0); err != nil {
					return nil, fmt.Errorf("benchtiered %s/%s: static run: %w", d.Name, e.Name, err)
				}
				staticNS := time.Since(start).Nanoseconds()

				// Tiered arm, end to end: tier 0 under the quantum, the
				// boundary recompile, tier 1 to completion.
				start = time.Now()
				res, err := tier.Run(prog, tier.Config{
					Machine:  d,
					Strategy: strategy.HierarchicalJump,
					Quantum:  quantum,
					Engine:   vm.EngineRegcode,
				}, 0)
				if err != nil {
					return nil, fmt.Errorf("benchtiered %s/%s: tiered run: %w", d.Name, e.Name, err)
				}
				tieredNS := time.Since(start).Nanoseconds()

				// Price the final placement over a full fresh run, the
				// same way the static arm is priced.
				mf := vm.New(res.Final, vm.Config{Machine: d, Engine: vm.EngineRegcode, CollectEdges: true})
				if _, err := mf.Run(0); err != nil {
					return nil, fmt.Errorf("benchtiered %s/%s: final run: %w", d.Name, e.Name, err)
				}

				if r == 0 {
					row.StaticOverhead += m.Stats.WeightedOverhead(d.Costs) + layout.Cost(st, m.EdgeCount, d.Costs)
					row.TieredOverhead += mf.Stats.WeightedOverhead(d.Costs) + layout.Cost(res.Final, mf.EdgeCount, d.Costs)
					if res.Boundary {
						row.Boundaries++
					}
					row.Replaced += res.Replaced
					rowInstrs += res.Stats.Instrs
					staticBest, tieredBest = staticNS, tieredNS
				} else {
					if staticNS < staticBest {
						staticBest = staticNS
					}
					if tieredNS < tieredBest {
						tieredBest = tieredNS
					}
				}
			}
			row.StaticNS += staticBest
			row.TieredNS += tieredBest
		}
		if row.TieredOverhead > 0 {
			row.Gain = float64(row.StaticOverhead) / float64(row.TieredOverhead)
		}
		if row.TieredNS > 0 {
			row.InstrsPerSec = float64(rowInstrs) / (float64(row.TieredNS) / 1e9)
		}
		out.Machines = append(out.Machines, row)
		if row.Gain > out.BestGain {
			out.BestGain = row.Gain
		}
	}
	return out, nil
}

// JSON renders the record, indented, trailing newline included.
func (b *TieredBench) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
