package bench

// vmbench.go measures the measurement engine itself: the same
// profiled, allocated, hierarchically placed SPEC stand-in programs
// executed by every engine — the bytecode engine, the register-
// transfer regcode engine, and the legacy tree interpreter —
// reporting wall time and VM instruction throughput per engine. This
// is the perf trajectory record (BENCH_vm.json): every number the
// evaluation reports flows through these runs, so engine throughput is
// the ceiling on bench and fuzz throughput.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/vm"
	"repro/internal/workload"
)

// EngineBench is one engine's aggregate measurement over the suite.
type EngineBench struct {
	Engine       string  `json:"engine"`
	Runs         int     `json:"runs"`           // total VM executions
	WallNS       int64   `json:"wall_ns"`        // total wall time of those executions
	NSPerRun     float64 `json:"ns_per_run"`     // average per suite-program execution
	Instrs       int64   `json:"instrs"`         // total dynamic VM instructions
	InstrsPerSec float64 `json:"instrs_per_sec"` // VM instruction throughput
}

// BenchmarkEngineRow is one (benchmark, engine) cell of the suite:
// the per-benchmark breakdown behind the aggregate EngineBench rows,
// and the source of the EXPERIMENTS.md per-benchmark table.
type BenchmarkEngineRow struct {
	Benchmark    string  `json:"benchmark"`
	Engine       string  `json:"engine"`
	NSPerRun     float64 `json:"ns_per_run"`
	Instrs       int64   `json:"instrs"` // dynamic VM instructions, one run
	InstrsPerSec float64 `json:"instrs_per_sec"`
}

// VMBench is the serialized BENCH_vm.json shape.
type VMBench struct {
	Suite      string        `json:"suite"`
	Benchmarks []string      `json:"benchmarks"`
	Reps       int           `json:"reps"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	Date       string        `json:"date"`
	Engines    []EngineBench `json:"engines"`
	// PerBenchmark breaks the engine aggregates down by suite
	// benchmark, rows ordered benchmark-major in suite order.
	PerBenchmark []BenchmarkEngineRow `json:"per_benchmark,omitempty"`
	// Speedup is bytecode instruction throughput over the legacy tree
	// interpreter's.
	Speedup float64 `json:"speedup"`
	// RegcodeSpeedup is regcode instruction throughput over the
	// bytecode engine's — the ratio the regression gate holds to an
	// absolute floor.
	RegcodeSpeedup float64 `json:"regcode_speedup"`
}

// BenchVM prepares each suite benchmark once (generate, profile,
// allocate, place the paper's configuration) and then executes the
// placed program reps times per engine under the measurement
// configuration — convention checking on, a fresh VM per run, exactly
// as RunEntry measures — timing only the VM executions.
func BenchVM(suite []workload.BenchParams, reps int) (*VMBench, error) {
	if reps <= 0 {
		reps = 3
	}
	mach := machine.PARISC()
	out := &VMBench{
		Suite:     "SPEC CPU2000 integer stand-ins",
		Reps:      reps,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Date:      time.Now().UTC().Format("2006-01-02"),
	}

	type prepared struct {
		name string
		prog *ir.Program
	}
	var progs []prepared
	for _, p := range suite {
		prog := workload.Generate(p)
		if _, err := profile.Collect(prog, 0); err != nil {
			return nil, fmt.Errorf("benchvm %s: profile: %w", p.Name, err)
		}
		if _, err := regalloc.AllocateProgramParallel(prog, mach, 0); err != nil {
			return nil, fmt.Errorf("benchvm %s: regalloc: %w", p.Name, err)
		}
		if err := strategy.PlaceProgram(prog, strategy.HierarchicalJump, 0); err != nil {
			return nil, fmt.Errorf("benchvm %s: place: %w", p.Name, err)
		}
		progs = append(progs, prepared{p.Name, prog})
		out.Benchmarks = append(out.Benchmarks, p.Name)
	}

	// The engines alternate within every repetition, so host frequency
	// drift or background load during the measurement hits both engines
	// alike instead of skewing the ratio.
	engines := []vm.Engine{vm.EngineBytecode, vm.EngineRegcode, vm.EngineTree}
	ebs := make([]EngineBench, len(engines))
	for i, e := range engines {
		ebs[i].Engine = e.String()
	}
	for _, pr := range progs {
		rows := make([]BenchmarkEngineRow, len(engines))
		for r := 0; r < reps; r++ {
			for i, engine := range engines {
				m := vm.New(pr.prog, vm.Config{Machine: mach, Engine: engine})
				start := time.Now()
				if _, err := m.Run(0); err != nil {
					return nil, fmt.Errorf("benchvm %s [%v]: %w", pr.name, engine, err)
				}
				wall := time.Since(start).Nanoseconds()
				ebs[i].WallNS += wall
				ebs[i].Instrs += m.Stats.Instrs
				ebs[i].Runs++
				rows[i].NSPerRun += float64(wall)
				rows[i].Instrs = m.Stats.Instrs
			}
		}
		for i, engine := range engines {
			rows[i].Benchmark = pr.name
			rows[i].Engine = engine.String()
			rows[i].NSPerRun /= float64(reps)
			if rows[i].NSPerRun > 0 {
				rows[i].InstrsPerSec = float64(rows[i].Instrs) / (rows[i].NSPerRun / 1e9)
			}
		}
		out.PerBenchmark = append(out.PerBenchmark, rows...)
	}
	for i := range ebs {
		ebs[i].NSPerRun = float64(ebs[i].WallNS) / float64(ebs[i].Runs)
		if ebs[i].WallNS > 0 {
			ebs[i].InstrsPerSec = float64(ebs[i].Instrs) / (float64(ebs[i].WallNS) / 1e9)
		}
	}
	out.Engines = ebs
	bc := findEngine(out, "bytecode")
	if te := findEngine(out, "tree"); te != nil && te.InstrsPerSec > 0 {
		out.Speedup = bc.InstrsPerSec / te.InstrsPerSec
	}
	if re := findEngine(out, "regcode"); re != nil && bc.InstrsPerSec > 0 {
		out.RegcodeSpeedup = re.InstrsPerSec / bc.InstrsPerSec
	}
	return out, nil
}

// JSON renders the record, indented, trailing newline included.
func (b *VMBench) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
