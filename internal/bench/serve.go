package bench

// serve.go is the regression gate for the placement service's
// end-to-end benchmark: an in-process spillserve instance driven by
// the loadgen sweep (cold submissions, cached resubmissions,
// function-reordered variants) over a generated corpus. The sweep
// itself runs in internal/server (server.Bench — this package stays
// import-cycle-free of the service); the serialized record
// (BENCH_serve.json) is gated by cmd/benchdiff -serve: the
// cached-over-cold speedup is the service's reason to exist, and the
// cache counters are deterministic, so a drift in either is a
// regression (or a stale record).

import (
	"fmt"
)

// ServeBench is the serialized BENCH_serve.json shape.
type ServeBench struct {
	Suite     string `json:"suite"`
	Distinct  int    `json:"distinct"`
	Dups      int    `json:"dups"`
	Workers   int    `json:"workers"`
	Requests  int    `json:"requests"`
	Functions int    `json:"functions"`
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	Date      string `json:"date"`

	ColdNsPerReq   float64 `json:"cold_ns_per_req"`
	CachedNsPerReq float64 `json:"cached_ns_per_req"`
	// CachedSpeedup is cold-per-request over cached-per-request: how
	// much the content cache buys on identical resubmissions.
	CachedSpeedup float64 `json:"cached_speedup"`

	// Deterministic service-side counters (see CompareServe).
	ProgramHits   int64 `json:"program_hits"`
	ProgramMisses int64 `json:"program_misses"`
	FunctionHits  int64 `json:"function_hits"`

	// Eviction policy observability: the analysis cache's high-water
	// mark must stay within budget plus in-flight slack.
	AnalysisBudget int `json:"analysis_budget"`
	AnalysisLenMax int `json:"analysis_len_max"`
	AnalysisDrops  int `json:"analysis_drops"`
}

// CompareServe diffs a fresh service sweep against the committed
// record. Absolute latency depends on the host, so the gate compares
// host-independent quantities:
//
//   - cached resubmissions must run at least 5x faster than cold
//     submissions (the floor the content cache is built to clear);
//   - the cached-over-cold speedup must not regress more than
//     thresholdPct percent below the committed ratio (both phases run
//     on the same host in the same process, so host speed cancels);
//   - the cache counters are deterministic for a deduplicated corpus:
//     every cached-phase request is a program-cache hit
//     (Distinct*Dups) and every reordered function a function-cache
//     hit (Functions) — a drift means caching silently broke;
//   - the analysis cache's high-water mark must stay within its
//     budget plus in-flight slack, and the eviction policy must have
//     actually dropped handles (the budget sits far below the corpus's
//     function population by construction).
func CompareServe(committed, fresh *ServeBench, thresholdPct float64) []string {
	var findings []string
	if committed.Suite != fresh.Suite || committed.Distinct != fresh.Distinct ||
		committed.Dups != fresh.Dups || committed.Workers != fresh.Workers {
		findings = append(findings, fmt.Sprintf(
			"serve: committed record covers %s (distinct=%d dups=%d workers=%d), fresh sweep %s (distinct=%d dups=%d workers=%d) — regenerate BENCH_serve.json with the standing sweep",
			committed.Suite, committed.Distinct, committed.Dups, committed.Workers,
			fresh.Suite, fresh.Distinct, fresh.Dups, fresh.Workers))
		return findings
	}
	if fresh.CachedSpeedup < 5 {
		findings = append(findings, fmt.Sprintf(
			"serve: cached resubmissions only %.2fx faster than cold, below the 5x floor",
			fresh.CachedSpeedup))
	}
	if committed.CachedSpeedup > 0 {
		floor := committed.CachedSpeedup * (1 - thresholdPct/100)
		if fresh.CachedSpeedup < floor {
			findings = append(findings, fmt.Sprintf(
				"serve: cached speedup %.2fx regressed more than %.0f%% below committed %.2fx (floor %.2fx)",
				fresh.CachedSpeedup, thresholdPct, committed.CachedSpeedup, floor))
		}
	}
	if want := int64(fresh.Distinct * fresh.Dups); fresh.ProgramHits != want {
		findings = append(findings, fmt.Sprintf(
			"serve: %d program-cache hits for %d cached resubmissions — program-level caching broke",
			fresh.ProgramHits, want))
	}
	if fresh.FunctionHits != int64(fresh.Functions) {
		findings = append(findings, fmt.Sprintf(
			"serve: %d function-cache hits for %d reordered functions — function-level caching broke",
			fresh.FunctionHits, fresh.Functions))
	}
	if slack := fresh.AnalysisBudget + 8*fresh.Workers; fresh.AnalysisLenMax > slack {
		findings = append(findings, fmt.Sprintf(
			"serve: analysis cache high-water mark %d exceeds budget %d plus in-flight slack (%d) — the eviction policy stopped bounding it",
			fresh.AnalysisLenMax, fresh.AnalysisBudget, slack))
	}
	if fresh.Functions > fresh.AnalysisBudget && fresh.AnalysisDrops == 0 {
		findings = append(findings, fmt.Sprintf(
			"serve: %d functions against budget %d but zero analysis drops — eviction never ran",
			fresh.Functions, fresh.AnalysisBudget))
	}
	return findings
}

// InjectServeRegression artificially degrades a fresh service record
// by pct percent, for the gate's self-test.
func InjectServeRegression(b *ServeBench, pct float64) {
	b.CachedNsPerReq *= 1 + pct/100
	b.CachedSpeedup /= 1 + pct/100
}
