package bench

import (
	"testing"
)

// TestGeneratedSuite: irgen scenario families run through the full
// measurement pipeline like any SPEC stand-in, with the paper's
// ordering claims intact.
func TestGeneratedSuite(t *testing.T) {
	entries := GeneratedSuite(5, 3)
	results, err := RunEntries(entries, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Name != entries[i].Name {
			t.Errorf("result %d named %q, want %q", i, r.Name, entries[i].Name)
		}
		if r.Overhead[Optimized] > r.Overhead[Baseline] {
			t.Errorf("%s: Optimized overhead %d > Baseline %d", r.Name, r.Overhead[Optimized], r.Overhead[Baseline])
		}
		if r.Overhead[Optimized] > r.Overhead[Shrinkwrap] {
			t.Errorf("%s: Optimized overhead %d > Shrinkwrap %d", r.Name, r.Overhead[Optimized], r.Overhead[Shrinkwrap])
		}
	}
}

// TestGeneratedSuiteDeterministic: the same seeds measure identically
// across runs and parallelism levels.
func TestGeneratedSuiteDeterministic(t *testing.T) {
	a, err := RunEntries(GeneratedSuite(9, 2), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEntries(GeneratedSuite(9, 2), Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Overhead != b[i].Overhead || a[i].ReturnValue != b[i].ReturnValue {
			t.Errorf("%s: serial and sharded runs disagree: %v/%d vs %v/%d",
				a[i].Name, a[i].Overhead, a[i].ReturnValue, b[i].Overhead, b[i].ReturnValue)
		}
	}
}
