package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/vm"
	"repro/internal/workload"
)

// TestMeasuredEqualsModeled: the dynamic overhead the VM measures by
// execution must equal the modeled overhead (profile-weighted count of
// flagged instructions) when the profiling input matches the measured
// run — the cost models' numbers are real, not estimates.
func TestMeasuredEqualsModeled(t *testing.T) {
	for _, name := range []string{"mcf", "crafty", "gzip"} {
		var p workload.BenchParams
		for _, q := range workload.SPECInt2000() {
			if q.Name == name {
				p = q
			}
		}
		prog := workload.Generate(p)
		if _, err := profile.Collect(prog, 0); err != nil {
			t.Fatal(err)
		}
		mach := machine.PARISC()
		if _, err := regalloc.AllocateProgram(prog, mach); err != nil {
			t.Fatal(err)
		}
		for _, s := range Strategies {
			clone := prog.Clone()
			if _, err := place(clone, s, 1); err != nil {
				t.Fatalf("%s/%s: %v", name, s, err)
			}
			var modeled int64
			for _, f := range clone.FuncsInOrder() {
				modeled += core.DynamicOverhead(f)
			}
			v := vm.New(clone, vm.Config{Machine: mach})
			if _, err := v.Run(0); err != nil {
				t.Fatalf("%s/%s: %v", name, s, err)
			}
			if measured := v.Stats.Overhead(); measured != modeled {
				t.Errorf("%s/%s: measured overhead %d != modeled %d", name, s, measured, modeled)
			}
			// The same agreement must hold cycle for cycle under every
			// machine cost preset: the post-apply breakdown priced with
			// the preset on one side, the VM's weighted accounting on
			// the other. This pins model pricing and VM pricing to one
			// cost surface for every overhead class, not just a total.
			for _, d := range machine.Presets() {
				var wModeled int64
				for _, f := range clone.FuncsInOrder() {
					wModeled += core.Breakdown(f).Cost(d.Costs)
				}
				if wMeasured := v.Stats.WeightedOverhead(d.Costs); wMeasured != wModeled {
					t.Errorf("%s/%s@%s: weighted measured %d != modeled %d",
						name, s, d.Name, wMeasured, wModeled)
				}
			}
		}
	}
}

// TestNonOverheadInstrsIdentical: the three strategies must execute
// exactly the same program apart from the overhead instructions.
func TestNonOverheadInstrsIdentical(t *testing.T) {
	var p workload.BenchParams
	for _, q := range workload.SPECInt2000() {
		if q.Name == "parser" {
			p = q
		}
	}
	prog := workload.Generate(p)
	if _, err := profile.Collect(prog, 0); err != nil {
		t.Fatal(err)
	}
	mach := machine.PARISC()
	if _, err := regalloc.AllocateProgram(prog, mach); err != nil {
		t.Fatal(err)
	}
	base := int64(-1)
	for _, s := range Strategies {
		clone := prog.Clone()
		if _, err := place(clone, s, 1); err != nil {
			t.Fatal(err)
		}
		v := vm.New(clone, vm.Config{Machine: mach})
		if _, err := v.Run(0); err != nil {
			t.Fatal(err)
		}
		// Jump-block jumps replace no original instruction; all other
		// overhead is additive too, so the original program's dynamic
		// length is Instrs - Overhead.
		useful := v.Stats.Instrs - v.Stats.Overhead()
		if base < 0 {
			base = useful
		} else if useful != base {
			t.Errorf("%s executes %d useful instructions, want %d", s, useful, base)
		}
	}
}
