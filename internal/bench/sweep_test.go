package bench

import (
	"encoding/json"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func sweepEntries(t *testing.T) []Entry {
	t.Helper()
	var entries []Entry
	for _, p := range workload.SPECInt2000() {
		if p.Name == "gzip" || p.Name == "crafty" {
			entries = append(entries, EntryFor(p))
		}
	}
	entries = append(entries, GeneratedSuite(11, 2)...)
	return entries
}

// TestSweepSharesAnalyses: sweeping every machine preset must build
// each per-function analysis at most once — the build counters are the
// proof that machine descriptions reuse one analysis.Cache instead of
// rebuilding per preset. (ISSUE 5 acceptance criterion.)
func TestSweepSharesAnalyses(t *testing.T) {
	sw, err := RunSweep(sweepEntries(t), machine.Presets(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Functions == 0 {
		t.Fatal("sweep placed no functions; entries too tame")
	}
	b := sw.Builds
	for _, c := range []struct {
		name  string
		count int
	}{
		{"liveness", b.Liveness}, {"dom", b.Dom}, {"loops", b.Loops},
		{"pst", b.PST}, {"seed", b.Seed},
	} {
		if c.count > sw.Functions {
			t.Errorf("%s built %d times for %d functions across %d machines — per-machine rebuilds",
				c.name, c.count, sw.Functions, len(sw.Machines))
		}
	}
}

// TestSweepClassicMatchesRunEntry: under the classic (unit-cost)
// preset the sweep's weighted overheads must equal RunEntry's measured
// counts exactly — the machine parameterization changes nothing on the
// paper's machine.
func TestSweepClassicMatchesRunEntry(t *testing.T) {
	entries := sweepEntries(t)
	classic, err := machine.Preset("classic")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RunSweep(entries, []*machine.Desc{classic}, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		ref, err := RunEntry(e, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range Strategies {
			if got, want := sw.Results[i].Cells[0][s].WeightedOverhead, ref.Overhead[s]; got != want {
				t.Errorf("%s/%s: classic sweep overhead %d != RunEntry %d", e.Name, s, got, want)
			}
		}
		if sw.Results[i].ReturnValue != ref.ReturnValue {
			t.Errorf("%s: sweep value %d != RunEntry %d", e.Name, sw.Results[i].ReturnValue, ref.ReturnValue)
		}
	}
}

// TestSweepWinners: every machine total names a winner that really has
// the lowest weighted overhead, and the baseline never beats the
// paper's configuration on any preset (the claim's graceful
// degradation across latency ratios).
func TestSweepWinners(t *testing.T) {
	sw, err := RunSweep(sweepEntries(t), machine.Presets(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tot := range sw.MachineTotals() {
		for _, s := range Strategies {
			if tot.Overhead[s] < tot.Overhead[tot.Winner] {
				t.Errorf("%s: winner %s beaten by %s (%d < %d)",
					tot.Machine.Name, tot.Winner, s, tot.Overhead[s], tot.Overhead[tot.Winner])
			}
		}
		if tot.Overhead[Optimized] > tot.Overhead[Baseline] {
			t.Errorf("%s: Optimized weighted overhead %d exceeds Baseline %d",
				tot.Machine.Name, tot.Overhead[Optimized], tot.Overhead[Baseline])
		}
	}
}

// TestSweepRecordShape: the serialized record carries every machine,
// every strategy, the analysis build counters, and survives a JSON
// round trip.
func TestSweepRecordShape(t *testing.T) {
	sw, err := RunSweep(sweepEntries(t), machine.Presets(), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := sw.Record("test suite")
	if len(rec.Machines) != len(machine.Presets()) {
		t.Fatalf("record has %d machines, want %d", len(rec.Machines), len(machine.Presets()))
	}
	for _, m := range rec.Machines {
		if len(m.Strategies) != len(Strategies) {
			t.Errorf("%s: %d strategies in record, want %d", m.Name, len(m.Strategies), len(Strategies))
		}
		if m.Winner == "" || m.Winner == "?" {
			t.Errorf("%s: no winner recorded", m.Name)
		}
	}
	data, err := rec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SweepRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Functions != rec.Functions || len(back.Machines) != len(rec.Machines) {
		t.Error("record does not survive a JSON round trip")
	}
}

// TestSweepRejectsMixedRegisterFiles: machines with different register
// files cannot share one allocation; RunSweep must refuse.
func TestSweepRejectsMixedRegisterFiles(t *testing.T) {
	descs := []*machine.Desc{machine.PARISC(), machine.Small(6, 3)}
	if _, err := RunSweep(sweepEntries(t), descs, Options{Parallelism: 1}); err == nil {
		t.Fatal("sweep accepted machines with different register files")
	}
}
