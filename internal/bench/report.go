package bench

import (
	"fmt"
	"strings"

	"repro/internal/vm"
)

// Figure5 formats the total dynamic spill overhead chart data: one row
// per benchmark, one column per strategy, mirroring the paper's
// Figure 5.
func Figure5(results []*Result) string {
	var b strings.Builder
	b.WriteString("Figure 5: total dynamic spill code overhead (executed overhead instructions)\n\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %14s %14s\n", "benchmark", "Optimized", "Shrinkwrap", "Baseline", "Opt(exec)*")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %14d %14d %14d %14d\n",
			r.Name, r.Overhead[Optimized], r.Overhead[Shrinkwrap], r.Overhead[Baseline],
			r.Overhead[OptimizedExec])
	}
	b.WriteString("\n*Opt(exec): exec-count cost model realized with jump blocks — an ablation\n")
	b.WriteString(" the paper could not run (GCC cannot execute spill code on jump edges).\n")
	return b.String()
}

// Table1 formats the overhead ratios relative to entry/exit placement,
// mirroring the paper's Table 1 (paper averages: optimized 84.8%,
// shrink-wrap 99.3%).
func Table1(results []*Result) string {
	var b strings.Builder
	b.WriteString("Table 1: dynamic spill overhead relative to entry/exit placement\n\n")
	fmt.Fprintf(&b, "%-10s %22s %22s\n", "benchmark", "Optimized/Baseline", "Shrinkwrap/Baseline")
	var so, ss float64
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %21.1f%% %21.1f%%\n", r.Name, r.Ratio(Optimized), r.Ratio(Shrinkwrap))
		so += r.Ratio(Optimized)
		ss += r.Ratio(Shrinkwrap)
	}
	n := float64(len(results))
	fmt.Fprintf(&b, "%-10s %21.1f%% %21.1f%%\n", "Average", so/n, ss/n)
	return b.String()
}

// Table2 formats the incremental compile time of shrink-wrapping and
// the hierarchical algorithm relative to entry/exit placement,
// mirroring the paper's Table 2 (paper average ratio: 5.44).
func Table2(results []*Result) string {
	var b strings.Builder
	b.WriteString("Table 2: incremental placement time vs entry/exit placement\n\n")
	fmt.Fprintf(&b, "%-10s %18s %18s %8s\n", "benchmark", "Shrinkwrap", "Optimized", "Ratio")
	var sumSw, sumOpt float64
	var sumRatio float64
	n := 0
	for _, r := range results {
		sw := r.PlacementTime[Shrinkwrap].Seconds() * 1e3
		opt := r.PlacementTime[Optimized].Seconds() * 1e3
		ratio := 0.0
		if sw > 0 {
			ratio = opt / sw
			sumRatio += ratio
			n++
		}
		sumSw += sw
		sumOpt += opt
		fmt.Fprintf(&b, "%-10s %15.3fms %15.3fms %8.2f\n", r.Name, sw, opt, ratio)
	}
	avgRatio := 0.0
	if n > 0 {
		avgRatio = sumRatio / float64(n)
	}
	fmt.Fprintf(&b, "%-10s %15.3fms %15.3fms %8.2f\n", "Average",
		sumSw/float64(len(results)), sumOpt/float64(len(results)), avgRatio)

	// All-strategy placement total: the suite's whole compile-side
	// placement cost, the number the shared analysis layer shrinks
	// (per-strategy columns hide sharing, since whichever strategy
	// first needs an analysis is charged for building it).
	var total float64
	for _, r := range results {
		for _, s := range Strategies {
			total += r.PlacementTime[s].Seconds() * 1e3
		}
	}
	fmt.Fprintf(&b, "\nTotal placement compute time, all %d strategies: %.3fms\n", len(Strategies), total)

	// Re-placement: the cost of computing the optimized placement again
	// after a one-edge edit to an already-placed function — cold (fresh
	// analyses), shared (warm cache), and incremental (analyses patched
	// via core.Delta instead of rebuilt).
	b.WriteString("\nRe-placement after edit: cold vs shared vs incremental analyses\n\n")
	fmt.Fprintf(&b, "%-10s %15s %15s %15s %9s %9s\n",
		"benchmark", "Cold", "Shared", "Incremental", "Cold/Inc", "rebuilds")
	var sumCold, sumShared, sumInc float64
	rebuilds := 0
	for _, r := range results {
		cold := r.ReplaceCold.Seconds() * 1e3
		shared := r.ReplaceShared.Seconds() * 1e3
		inc := r.ReplaceIncremental.Seconds() * 1e3
		speedup := 0.0
		if inc > 0 {
			speedup = cold / inc
		}
		sumCold += cold
		sumShared += shared
		sumInc += inc
		rebuilds += r.ReplaceRebuilds
		fmt.Fprintf(&b, "%-10s %13.3fms %13.3fms %13.3fms %8.2fx %9d\n",
			r.Name, cold, shared, inc, speedup, r.ReplaceRebuilds)
	}
	totalSpeedup := 0.0
	if sumInc > 0 {
		totalSpeedup = sumCold / sumInc
	}
	fmt.Fprintf(&b, "%-10s %13.3fms %13.3fms %13.3fms %8.2fx %9d\n",
		"Total", sumCold, sumShared, sumInc, totalSpeedup, rebuilds)
	return b.String()
}

// SweepTables formats the multi-machine sweep: per machine, a Table
// 1/2-style section (weighted overhead per benchmark and strategy plus
// the placement-time totals), followed by the crossover report —
// which strategy wins under which jump:spill latency ratio.
func SweepTables(sw *Sweep) string {
	var b strings.Builder
	totals := sw.MachineTotals()
	for mi, t := range totals {
		d := t.Machine
		fmt.Fprintf(&b, "Machine %s (%s): weighted dynamic spill overhead\n\n", d.Name, d.Costs)
		fmt.Fprintf(&b, "%-10s %14s %14s %14s %14s %9s\n",
			"benchmark", "Optimized", "Shrinkwrap", "Baseline", "Opt(exec)", "Opt/Base")
		for _, r := range sw.Results {
			c := r.Cells[mi]
			ratio := 100.0
			if c[Baseline].WeightedOverhead != 0 {
				ratio = 100 * float64(c[Optimized].WeightedOverhead) / float64(c[Baseline].WeightedOverhead)
			}
			fmt.Fprintf(&b, "%-10s %14d %14d %14d %14d %8.1f%%\n",
				r.Name, c[Optimized].WeightedOverhead, c[Shrinkwrap].WeightedOverhead,
				c[Baseline].WeightedOverhead, c[OptimizedExec].WeightedOverhead, ratio)
		}
		totalRatio := 100.0
		if t.Overhead[Baseline] != 0 {
			totalRatio = 100 * float64(t.Overhead[Optimized]) / float64(t.Overhead[Baseline])
		}
		fmt.Fprintf(&b, "%-10s %14d %14d %14d %14d %8.1f%%\n",
			"Total", t.Overhead[Optimized], t.Overhead[Shrinkwrap],
			t.Overhead[Baseline], t.Overhead[OptimizedExec], totalRatio)
		fmt.Fprintf(&b, "placement time: shrinkwrap %.3fms, optimized %.3fms, all strategies %.3fms\n\n",
			t.Placement[Shrinkwrap].Seconds()*1e3, t.Placement[Optimized].Seconds()*1e3,
			(t.Placement[Baseline]+t.Placement[Shrinkwrap]+t.Placement[Optimized]+t.Placement[OptimizedExec]).Seconds()*1e3)
	}

	b.WriteString("Crossover: suite-total winner by machine (jump:spill = taken-jump penalty over mean spill latency)\n\n")
	fmt.Fprintf(&b, "%-14s %-14s %10s %-14s %12s\n", "machine", "costs", "jump:spill", "winner", "win vs base")
	for _, t := range totals {
		ratio := 100.0
		if t.Overhead[Baseline] != 0 {
			ratio = 100 * float64(t.Overhead[t.Winner]) / float64(t.Overhead[Baseline])
		}
		fmt.Fprintf(&b, "%-14s %-14s %10.2f %-14s %11.1f%%\n",
			t.Machine.Name, t.Machine.Costs.String(), t.Machine.Costs.SpillRatio(), t.Winner, ratio)
	}
	fmt.Fprintf(&b, "\nanalysis builds over %d machines, %d placed functions: liveness %d, dom %d, loops %d, pst %d, seed %d (each at most once per function)\n",
		len(sw.Machines), sw.Functions, sw.Builds.Liveness, sw.Builds.Dom, sw.Builds.Loops, sw.Builds.PST, sw.Builds.Seed)
	return b.String()
}

// SuiteStats merges every benchmark's VM execution counters into one
// suite-wide total per strategy. Merging is order-independent, so the
// totals are identical whether the results came from the serial loop
// or from concurrent shards.
func SuiteStats(results []*Result) [numStrategies]vm.Stats {
	var out [numStrategies]vm.Stats
	for s := range out {
		out[s].Calls = make(map[string]int64)
	}
	for _, r := range results {
		for _, s := range Strategies {
			out[s].Merge(&r.Stats[s])
		}
	}
	return out
}

// Totals formats the merged suite-wide execution counters: dynamic
// instructions, total spill overhead, and its breakdown per strategy.
func Totals(results []*Result) string {
	stats := SuiteStats(results)
	var b strings.Builder
	b.WriteString("Suite totals: merged dynamic counts across all benchmarks\n\n")
	fmt.Fprintf(&b, "%-14s %16s %14s %10s %10s %10s %10s %8s\n",
		"strategy", "instrs", "overhead", "saves", "restores", "spill.ld", "spill.st", "jumps")
	for _, s := range Strategies {
		st := &stats[s]
		fmt.Fprintf(&b, "%-14s %16d %14d %10d %10d %10d %10d %8d\n",
			s.String(), st.Instrs, st.Overhead(), st.Saves, st.Restores,
			st.SpillLoads, st.SpillStores, st.JumpBlockJmps)
	}
	return b.String()
}
