package bench

import (
	"testing"

	"repro/internal/workload"
)

func TestRunAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	results, err := RunAll(workload.SPECInt2000())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 11 {
		t.Fatalf("results = %d, want 11", len(results))
	}
	for _, r := range results {
		t.Logf("%-8s opt=%8d (%6.1f%%)  sw=%8d (%6.1f%%)  base=%8d  procs=%d instrs=%d spilled=%d",
			r.Name, r.Overhead[Optimized], r.Ratio(Optimized),
			r.Overhead[Shrinkwrap], r.Ratio(Shrinkwrap),
			r.Overhead[Baseline], r.Procedures, r.Instrs, r.SpilledVregs)
		// Paper's guarantee: optimized never exceeds either technique.
		if r.Overhead[Optimized] > r.Overhead[Baseline] {
			t.Errorf("%s: optimized %d > baseline %d", r.Name, r.Overhead[Optimized], r.Overhead[Baseline])
		}
		if r.Overhead[Optimized] > r.Overhead[Shrinkwrap] {
			t.Errorf("%s: optimized %d > shrinkwrap %d", r.Name, r.Overhead[Optimized], r.Overhead[Shrinkwrap])
		}
	}
}
