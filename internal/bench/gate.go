package bench

// gate.go is the benchmark-regression gate behind cmd/benchdiff: it
// compares a fresh run against the committed BENCH_vm.json /
// BENCH_machines.json records and reports findings the CI job fails
// on. The comparison logic lives here, not in the command, so the
// gate itself is under test — including the proof that an injected
// regression trips it.

import (
	"fmt"
)

// RegcodeSpeedupFloor is the absolute regcode-over-bytecode throughput
// ratio the gate enforces regardless of the committed record: the
// regcode engine exists to be at least this much faster.
const RegcodeSpeedupFloor = 1.5

// CompareVM diffs a fresh engine benchmark against the committed
// record. Absolute throughput depends on the host, so the gate
// compares host-independent quantities:
//
//   - the bytecode-over-tree speedup ratio must not regress by more
//     than thresholdPct percent (both engines run on the same host in
//     the same process, so the ratio cancels host speed);
//   - the regcode-over-bytecode speedup must not regress below the
//     committed ratio by more than thresholdPct percent, and must stay
//     above the absolute RegcodeSpeedupFloor the engine was built to
//     clear;
//   - per-run dynamic instruction counts must match the committed
//     record exactly — they are deterministic, and a drift means the
//     record is stale (or an engine miscounts) — and must agree across
//     the fresh run's engines, which execute the same programs.
func CompareVM(committed, fresh *VMBench, thresholdPct float64) []string {
	var findings []string
	if committed.Speedup > 0 {
		floor := committed.Speedup * (1 - thresholdPct/100)
		if fresh.Speedup < floor {
			findings = append(findings, fmt.Sprintf(
				"vm: bytecode speedup %.2fx regressed more than %.0f%% below committed %.2fx (floor %.2fx)",
				fresh.Speedup, thresholdPct, committed.Speedup, floor))
		}
	}
	if committed.RegcodeSpeedup > 0 {
		floor := committed.RegcodeSpeedup * (1 - thresholdPct/100)
		if fresh.RegcodeSpeedup < floor {
			findings = append(findings, fmt.Sprintf(
				"vm: regcode speedup %.2fx regressed more than %.0f%% below committed %.2fx (floor %.2fx)",
				fresh.RegcodeSpeedup, thresholdPct, committed.RegcodeSpeedup, floor))
		}
	}
	if fresh.RegcodeSpeedup > 0 && fresh.RegcodeSpeedup < RegcodeSpeedupFloor {
		findings = append(findings, fmt.Sprintf(
			"vm: regcode only %.2fx faster than bytecode, below the %.1fx floor",
			fresh.RegcodeSpeedup, RegcodeSpeedupFloor))
	}
	if be := findEngine(fresh, "bytecode"); be != nil && be.Runs > 0 {
		base := be.Instrs / int64(be.Runs)
		for _, fe := range fresh.Engines {
			if fe.Engine == "bytecode" || fe.Runs == 0 {
				continue
			}
			if fi := fe.Instrs / int64(fe.Runs); fi != base {
				findings = append(findings, fmt.Sprintf(
					"vm: %s executes %d instrs/run but bytecode executes %d on the same programs — an engine miscounts",
					fe.Engine, fi, base))
			}
		}
	}
	for _, ce := range committed.Engines {
		fe := findEngine(fresh, ce.Engine)
		if fe == nil {
			findings = append(findings, fmt.Sprintf("vm: engine %q missing from fresh run", ce.Engine))
			continue
		}
		if ce.Runs == 0 || fe.Runs == 0 {
			continue
		}
		if ci, fi := ce.Instrs/int64(ce.Runs), fe.Instrs/int64(fe.Runs); ci != fi {
			findings = append(findings, fmt.Sprintf(
				"vm: %s executes %d instrs/run, committed record says %d — regenerate BENCH_vm.json if the suite changed",
				ce.Engine, fi, ci))
		}
	}
	return findings
}

func findEngine(b *VMBench, name string) *EngineBench {
	for i := range b.Engines {
		if b.Engines[i].Engine == name {
			return &b.Engines[i]
		}
	}
	return nil
}

// CompareSweep diffs a fresh multi-machine sweep against the committed
// record. Weighted overheads and modeled costs are deterministic
// counts, so in a healthy tree fresh equals committed exactly; the
// threshold only grants slack for intentional small re-tunings, and it
// cuts both ways — a fresh number more than thresholdPct percent
// *better* than committed is also a finding, because a stale committed
// record would otherwise silently widen the regression budget for the
// next change. Missing machines or strategies, a different benchmark
// suite, and analysis build counters showing per-machine rebuilds are
// findings too.
func CompareSweep(committed, fresh *SweepRecord, thresholdPct float64) []string {
	var findings []string
	if !sameSuite(committed, fresh) {
		findings = append(findings, fmt.Sprintf(
			"machines: committed record covers suite %v (%d functions), fresh sweep %v (%d functions) — regenerate BENCH_machines.json with the standing suite",
			committed.Benchmarks, committed.Functions, fresh.Benchmarks, fresh.Functions))
		return findings
	}
	freshMachines := map[string]*SweepMachineRecord{}
	for i := range fresh.Machines {
		freshMachines[fresh.Machines[i].Name] = &fresh.Machines[i]
	}
	for _, cm := range committed.Machines {
		fm := freshMachines[cm.Name]
		if fm == nil {
			findings = append(findings, fmt.Sprintf("machines: preset %q missing from fresh sweep", cm.Name))
			continue
		}
		freshStrats := map[string]SweepStrategyRecord{}
		for _, fs := range fm.Strategies {
			freshStrats[fs.Name] = fs
		}
		for _, cs := range cm.Strategies {
			fs, ok := freshStrats[cs.Name]
			if !ok {
				findings = append(findings, fmt.Sprintf("machines: %s/%s missing from fresh sweep", cm.Name, cs.Name))
				continue
			}
			where := "machines: " + cm.Name + "/" + cs.Name
			findings = append(findings, compareCount(where, "weighted overhead", cs.WeightedOverhead, fs.WeightedOverhead, thresholdPct)...)
			findings = append(findings, compareCount(where, "modeled cost", cs.Modeled, fs.Modeled, thresholdPct)...)
		}
	}
	// Per-benchmark winners are deterministic; when the committed
	// record carries them (older records predate the field), the fresh
	// sweep must reproduce each benchmark's per-preset winner exactly.
	if len(committed.BenchWinners) > 0 && len(fresh.BenchWinners) == len(committed.BenchWinners) {
		for i, cb := range committed.BenchWinners {
			fb := fresh.BenchWinners[i]
			for preset, cw := range cb.Winners {
				if fw := fb.Winners[preset]; fw != cw {
					findings = append(findings, fmt.Sprintf(
						"machines: %s winner under %s moved from %s to %s — regenerate BENCH_machines.json if intentional",
						cb.Name, preset, cw, fw))
				}
			}
		}
	}
	// The sharing guarantee: a sweep over N machines must not build any
	// analysis more than once per function.
	if n := fresh.Functions; n > 0 {
		b := fresh.Builds
		for _, c := range []struct {
			name  string
			count int
		}{
			{"liveness", b.Liveness}, {"dom", b.Dom}, {"loops", b.Loops},
			{"pst", b.PST}, {"seed", b.Seed},
		} {
			if c.count > n {
				findings = append(findings, fmt.Sprintf(
					"machines: %s built %d times for %d functions — per-machine analysis rebuilds crept in",
					c.name, c.count, n))
			}
		}
	}
	return findings
}

// sameSuite reports whether two sweep records cover the same benchmark
// list and function population — the precondition for comparing their
// totals at all.
func sameSuite(a, b *SweepRecord) bool {
	if a.Functions != b.Functions || len(a.Benchmarks) != len(b.Benchmarks) {
		return false
	}
	for i := range a.Benchmarks {
		if a.Benchmarks[i] != b.Benchmarks[i] {
			return false
		}
	}
	return true
}

// compareCount flags a deterministic counter drifting past the
// threshold in either direction: up is a regression, down means the
// committed record is stale and must be regenerated before it quietly
// raises the regression ceiling.
func compareCount(where, what string, committed, fresh int64, thresholdPct float64) []string {
	switch {
	case float64(fresh) > float64(committed)*(1+thresholdPct/100):
		return []string{fmt.Sprintf("%s %s %d exceeds committed %d by more than %.0f%%",
			where, what, fresh, committed, thresholdPct)}
	case float64(fresh) < float64(committed)*(1-thresholdPct/100):
		return []string{fmt.Sprintf("%s %s %d improved more than %.0f%% below committed %d — regenerate the committed record",
			where, what, fresh, thresholdPct, committed)}
	}
	return nil
}

// CompareAnalysis diffs a fresh analysis-layer benchmark against the
// committed record. Absolute nanoseconds depend on the host, so the
// gate compares host-independent quantities:
//
//   - incremental re-placement must stay at least 3x faster than cold
//     re-placement (the floor the delta layer is built to clear);
//   - the cold-over-incremental speedup must not regress more than
//     thresholdPct percent below the committed ratio (both paths run
//     on the same host in the same process, so host speed cancels);
//   - no function's incremental re-placement may fall back to a full
//     rebuild — that means a placement edit the patchers stopped
//     recognizing.
func CompareAnalysis(committed, fresh *AnalysisBench, thresholdPct float64) []string {
	var findings []string
	if fresh.Rebuilds > 0 {
		findings = append(findings, fmt.Sprintf(
			"analysis: %d incremental re-placements fell back to full rebuilds — ApplyDelta stopped recognizing placement edits",
			fresh.Rebuilds))
	}
	if fresh.IncrementalSpeedup < 3 {
		findings = append(findings, fmt.Sprintf(
			"analysis: incremental re-placement only %.2fx faster than cold, below the 3x floor",
			fresh.IncrementalSpeedup))
	}
	if committed.IncrementalSpeedup > 0 {
		floor := committed.IncrementalSpeedup * (1 - thresholdPct/100)
		if fresh.IncrementalSpeedup < floor {
			findings = append(findings, fmt.Sprintf(
				"analysis: incremental speedup %.2fx regressed more than %.0f%% below committed %.2fx (floor %.2fx)",
				fresh.IncrementalSpeedup, thresholdPct, committed.IncrementalSpeedup, floor))
		}
	}
	cb := make(map[string]int, len(committed.Benchmarks))
	for _, r := range committed.Benchmarks {
		cb[r.Benchmark] = r.Functions
	}
	for _, r := range fresh.Benchmarks {
		if n, ok := cb[r.Benchmark]; !ok {
			findings = append(findings, fmt.Sprintf(
				"analysis: benchmark %q missing from committed record — regenerate BENCH_analysis.json", r.Benchmark))
		} else if n != r.Functions {
			findings = append(findings, fmt.Sprintf(
				"analysis: %s covers %d functions, committed record says %d — regenerate BENCH_analysis.json",
				r.Benchmark, r.Functions, n))
		}
	}
	return findings
}

// TieredGainFloor is the absolute static-over-tiered overhead ratio
// the gate requires the best machine preset to clear: on the hostile
// suite, measured re-placement must beat the static estimate by at
// least this much somewhere, or the tiered pipeline has stopped
// earning its keep.
const TieredGainFloor = 1.05

// CompareTiered diffs a fresh tiered benchmark against the committed
// BENCH_tiered.json. The overheads are deterministic dynamic
// instruction counts (wall times and throughput are recorded but never
// compared), so the gate checks:
//
//   - same suite and quantum — the precondition for comparing at all;
//   - per preset, static and tiered overheads within thresholdPct of
//     the committed record in either direction (drift up is a
//     regression, drift down a stale record silently widening the
//     budget);
//   - at least one preset's fresh gain clears the absolute
//     TieredGainFloor;
//   - tier boundaries still fire — a suite that finishes inside the
//     quantum measures nothing.
func CompareTiered(committed, fresh *TieredBench, thresholdPct float64) []string {
	var findings []string
	if committed.Quantum != fresh.Quantum || !sameStringList(committed.Benchmarks, fresh.Benchmarks) {
		findings = append(findings, fmt.Sprintf(
			"tiered: committed record covers %v at quantum %d, fresh run %v at quantum %d — regenerate BENCH_tiered.json with the standing suite",
			committed.Benchmarks, committed.Quantum, fresh.Benchmarks, fresh.Quantum))
		return findings
	}
	freshRows := map[string]*TieredMachineRow{}
	for i := range fresh.Machines {
		freshRows[fresh.Machines[i].Machine] = &fresh.Machines[i]
	}
	for _, cm := range committed.Machines {
		fm := freshRows[cm.Machine]
		if fm == nil {
			findings = append(findings, fmt.Sprintf("tiered: preset %q missing from fresh run", cm.Machine))
			continue
		}
		findings = append(findings, compareCount("tiered "+cm.Machine, "static overhead", cm.StaticOverhead, fm.StaticOverhead, thresholdPct)...)
		findings = append(findings, compareCount("tiered "+cm.Machine, "tiered overhead", cm.TieredOverhead, fm.TieredOverhead, thresholdPct)...)
	}
	if fresh.BestGain < TieredGainFloor {
		findings = append(findings, fmt.Sprintf(
			"tiered: best preset gain %.3fx is below the %.2fx floor — measured re-placement no longer beats the static estimate",
			fresh.BestGain, TieredGainFloor))
	}
	boundaries := 0
	for _, fm := range fresh.Machines {
		boundaries += fm.Boundaries
	}
	if boundaries == 0 {
		findings = append(findings,
			"tiered: no suite program hit a tier boundary — the quantum no longer exercises re-placement")
	}
	return findings
}

func sameStringList(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// InjectTieredRegression artificially inflates a fresh tiered record's
// tiered-arm overheads by pct percent, shrinking every gain below its
// true value, for the CI gate's self-test.
func InjectTieredRegression(b *TieredBench, pct float64) {
	b.BestGain = 0
	for i := range b.Machines {
		row := &b.Machines[i]
		row.TieredOverhead = int64(float64(row.TieredOverhead) * (1 + pct/100))
		if row.TieredOverhead > 0 {
			row.Gain = float64(row.StaticOverhead) / float64(row.TieredOverhead)
		}
		if row.Gain > b.BestGain {
			b.BestGain = row.Gain
		}
	}
}

// InjectAnalysisRegression artificially degrades a fresh analysis
// record by pct percent, for the gate's self-test.
func InjectAnalysisRegression(b *AnalysisBench, pct float64) {
	b.IncrementalNs = int64(float64(b.IncrementalNs) * (1 + pct/100))
	b.SharedNs = int64(float64(b.SharedNs) * (1 + pct/100))
	b.SharedSpeedup /= 1 + pct/100
	b.IncrementalSpeedup /= 1 + pct/100
}

// InjectVMRegression artificially degrades a fresh VM record by pct
// percent. The CI gate's self-test uses it to prove the gate trips on
// a regression instead of rubber-stamping everything.
func InjectVMRegression(b *VMBench, pct float64) {
	b.Speedup /= 1 + pct/100
	b.RegcodeSpeedup /= 1 + pct/100
	for i := range b.Engines {
		b.Engines[i].InstrsPerSec /= 1 + pct/100
	}
}

// InjectSweepRegression artificially inflates a fresh sweep's weighted
// overheads by pct percent, for the same self-test.
func InjectSweepRegression(r *SweepRecord, pct float64) {
	for mi := range r.Machines {
		for si := range r.Machines[mi].Strategies {
			s := &r.Machines[mi].Strategies[si]
			s.WeightedOverhead = int64(float64(s.WeightedOverhead) * (1 + pct/100))
		}
	}
}

// CompareCrossover diffs a fresh crossover run against the committed
// BENCH_crossover.json. Every overhead is a deterministic dynamic
// count, so the gate checks:
//
//   - same benchmark suite and preset list — the precondition for
//     comparing at all;
//   - per benchmark and preset, each allocation mode's best overhead
//     within thresholdPct of the committed record in either direction
//     (up is a regression, down a stale record);
//   - each (benchmark, preset) winner — allocation mode and strategy —
//     unchanged, since winners are deterministic;
//   - at least one fresh benchmark still flips its winner between two
//     presets: the measured crossover the suite exists to demonstrate.
func CompareCrossover(committed, fresh *CrossoverRecord, thresholdPct float64) []string {
	var findings []string
	if !sameStringList(committed.Benchmarks, fresh.Benchmarks) || !sameStringList(committed.Machines, fresh.Machines) {
		findings = append(findings, fmt.Sprintf(
			"crossover: committed record covers %v over %v, fresh run %v over %v — regenerate BENCH_crossover.json with the standing suite",
			committed.Benchmarks, committed.Machines, fresh.Benchmarks, fresh.Machines))
		return findings
	}
	for i, cb := range committed.Benches {
		if i >= len(fresh.Benches) {
			findings = append(findings, fmt.Sprintf("crossover: benchmark %q missing from fresh run", cb.Name))
			continue
		}
		fb := fresh.Benches[i]
		for j, cr := range cb.Presets {
			if j >= len(fb.Presets) {
				findings = append(findings, fmt.Sprintf("crossover: %s@%s missing from fresh run", cb.Name, cr.Machine))
				continue
			}
			fr := fb.Presets[j]
			where := "crossover: " + cb.Name + "@" + cr.Machine
			findings = append(findings, compareCount(where, "uniform-alloc best overhead", cr.UniformOverhead, fr.UniformOverhead, thresholdPct)...)
			findings = append(findings, compareCount(where, "machine-alloc best overhead", cr.MachineOverhead, fr.MachineOverhead, thresholdPct)...)
			if fr.WinnerAlloc != cr.WinnerAlloc || fr.WinnerStrategy != cr.WinnerStrategy {
				findings = append(findings, fmt.Sprintf(
					"%s winner moved from %s/%s to %s/%s — regenerate BENCH_crossover.json if intentional",
					where, cr.WinnerAlloc, cr.WinnerStrategy, fr.WinnerAlloc, fr.WinnerStrategy))
			}
		}
	}
	if fresh.Flips < 1 {
		findings = append(findings,
			"crossover: no benchmark flips its winning strategy or allocation mode across presets — the crossover family stopped demonstrating machine dependence")
	}
	return findings
}

// InjectCrossoverRegression artificially inflates a fresh crossover
// record's machine-alloc overheads by pct percent and recomputes the
// winners and flip count, for the CI gate's self-test: the inflated
// overheads drift past the threshold and the recomputed winners erase
// the allocation-mode flips.
func InjectCrossoverRegression(r *CrossoverRecord, pct float64) {
	r.Flips = 0
	for bi := range r.Benches {
		b := &r.Benches[bi]
		b.StrategyFlip, b.AllocFlip = false, false
		for pi := range b.Presets {
			row := &b.Presets[pi]
			row.MachineOverhead = int64(float64(row.MachineOverhead) * (1 + pct/100))
			for si := range row.Strategies {
				row.Strategies[si].Machine = int64(float64(row.Strategies[si].Machine) * (1 + pct/100))
			}
			row.WinnerAlloc, row.WinnerStrategy = crossoverWinner(row)
		}
		for _, row := range b.Presets[1:] {
			if row.WinnerStrategy != b.Presets[0].WinnerStrategy {
				b.StrategyFlip = true
			}
			if row.WinnerAlloc != b.Presets[0].WinnerAlloc {
				b.AllocFlip = true
			}
		}
		if b.StrategyFlip || b.AllocFlip {
			r.Flips++
		}
	}
}
