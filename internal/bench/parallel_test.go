package bench

// The sharded harness must be a pure wall-clock optimization: every
// measured count — per-benchmark overheads, return values, full VM
// stats, and the formatted reports built from them — must match the
// serial path bit for bit for any parallelism.

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// smallSuite returns the lighter benchmarks so the comparison runs
// quickly; determinism does not depend on program size.
func smallSuite() []workload.BenchParams {
	keep := map[string]bool{"gzip": true, "vpr": true, "mcf": true, "bzip2": true}
	var out []workload.BenchParams
	for _, p := range workload.SPECInt2000() {
		if keep[p.Name] {
			out = append(out, p)
		}
	}
	return out
}

func TestShardedRunAllMatchesSerial(t *testing.T) {
	suite := smallSuite()
	serial, err := RunAllWithOptions(suite, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 0} {
		sharded, err := RunAllWithOptions(suite, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(sharded) != len(serial) {
			t.Fatalf("parallelism %d: %d results, want %d", par, len(sharded), len(serial))
		}
		for i, r := range sharded {
			ref := serial[i]
			if r.Name != ref.Name {
				t.Fatalf("parallelism %d: result %d is %s, want %s (ordering broken)", par, i, r.Name, ref.Name)
			}
			if r.Overhead != ref.Overhead {
				t.Errorf("parallelism %d: %s overheads %v != serial %v", par, r.Name, r.Overhead, ref.Overhead)
			}
			if r.ReturnValue != ref.ReturnValue {
				t.Errorf("parallelism %d: %s value %d != serial %d", par, r.Name, r.ReturnValue, ref.ReturnValue)
			}
			for _, s := range Strategies {
				if !reflect.DeepEqual(r.Stats[s], ref.Stats[s]) {
					t.Errorf("parallelism %d: %s/%s stats diverge:\n%+v\nwant\n%+v", par, r.Name, s, r.Stats[s], ref.Stats[s])
				}
			}
		}
		// The user-facing reports must be byte-identical (Table2 is
		// excluded: it prints wall-clock timings).
		if got, want := Figure5(sharded), Figure5(serial); got != want {
			t.Errorf("parallelism %d: Figure5 diverges:\n%s\nwant\n%s", par, got, want)
		}
		if got, want := Table1(sharded), Table1(serial); got != want {
			t.Errorf("parallelism %d: Table1 diverges:\n%s\nwant\n%s", par, got, want)
		}
		if got, want := Totals(sharded), Totals(serial); got != want {
			t.Errorf("parallelism %d: Totals diverge:\n%s\nwant\n%s", par, got, want)
		}
	}
}

func TestSuiteStatsMergesCalls(t *testing.T) {
	suite := smallSuite()
	results, err := RunAllWithOptions(suite, Options{Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	merged := SuiteStats(results)
	for _, s := range Strategies {
		var instrs, overhead int64
		calls := map[string]int64{}
		for _, r := range results {
			instrs += r.Stats[s].Instrs
			overhead += r.Stats[s].Overhead()
			for name, n := range r.Stats[s].Calls {
				calls[name] += n
			}
		}
		if merged[s].Instrs != instrs {
			t.Errorf("%s: merged instrs %d, want %d", s, merged[s].Instrs, instrs)
		}
		if merged[s].Overhead() != overhead {
			t.Errorf("%s: merged overhead %d, want %d", s, merged[s].Overhead(), overhead)
		}
		if !reflect.DeepEqual(merged[s].Calls, calls) {
			t.Errorf("%s: merged calls %v, want %v", s, merged[s].Calls, calls)
		}
		// Every benchmark's main runs exactly once per strategy.
		if merged[s].Calls["main"] != int64(len(results)) {
			t.Errorf("%s: main called %d times, want %d", s, merged[s].Calls["main"], len(results))
		}
	}
}
