// Package regalloc implements a Chaitin/Briggs style graph-coloring
// register allocator over the toy IR, standing in for the allocator
// the paper substitutes into GCC. It builds an interference graph
// over virtual registers, simplifies with optimistic (Briggs) color
// assignment, spills by a profile-weighted cost/degree heuristic, and
// honors the machine's calling convention: virtual registers live
// across a call may only receive callee-saved registers.
//
// Callee-saved save/restore code is deliberately NOT inserted here:
// that is the post register allocation spill code placement problem
// the rest of the repository studies. The allocator records which
// callee-saved registers an allocation writes in Func.UsedCalleeSaved.
//
// Spill candidates are ranked by a cost/degree heuristic. The cost is
// uniform by default — every def and use occurrence weighs its block's
// execution count, as if spill stores and loads had equal latency —
// which reproduces the paper's allocator. Options.MachineCosts instead
// prices each candidate with the machine's cost surface: spilling a
// web executes one store per def and one load per use, so the priced
// cost is defWeight*StoreCost + useWeight*LoadCost (dual-issue
// discount included). The jump/split penalties of the machine never
// enter this ranking because allocator spill code is always inserted
// inside blocks, adjacent to the def or use it serves — it can never
// force a jump block or split a critical edge; those penalties belong
// to the callee-saved placement layer, whose jump-edge model prices
// them. On a unit-cost machine (the classic preset) the priced cost
// equals the uniform cost integer for integer, so classic machine
// pricing is byte-identical to the default allocator.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/par"
)

// Result reports what the allocator did to one function.
type Result struct {
	// Spilled lists virtual registers sent to stack slots, in the
	// order they were spilled.
	Spilled []ir.Reg
	// SpillWebs records the profile-weighted def/use shape of each
	// spilled web at the moment it was chosen, parallel to Spilled.
	// Spilling a web costs one store per weighted def and one load
	// per weighted use, so any machine's spill bill for this
	// allocation is sum(DefWeight*StoreCost + UseWeight*LoadCost).
	SpillWebs []SpillWeb
	// Iterations is the number of build-color rounds.
	Iterations int
	// UsedCalleeSaved mirrors Func.UsedCalleeSaved.
	UsedCalleeSaved []ir.Reg
}

// SpillWeb is the profile-weighted footprint of one spilled web.
type SpillWeb struct {
	Reg       ir.Reg
	DefWeight int64 // sum of block exec counts over the web's defs
	UseWeight int64 // sum of block exec counts over the web's uses
}

// Options tweaks the allocator's spill-choice heuristic.
type Options struct {
	// MachineCosts prices spill candidates with the machine's cost
	// surface (StoreCost per weighted def, LoadCost per weighted use)
	// instead of uniform unit weights. On a unit-cost machine this is
	// byte-identical to the uniform heuristic.
	MachineCosts bool
}

// pricer turns a node's weighted def/use counts into a spill cost.
// The uniform pricer (1,1) reproduces the classic def+use count.
type pricer struct {
	store, load int64
}

func newPricer(m *machine.Desc, opts Options) pricer {
	if opts.MachineCosts {
		return pricer{store: m.Costs.StoreCost(), load: m.Costs.LoadCost()}
	}
	return pricer{store: 1, load: 1}
}

func (p pricer) of(n *node) int64 {
	return n.defCost*p.store + n.useCost*p.load
}

// maxRounds bounds spill-and-retry iteration; each round strictly
// reduces live range lengths so this is never reached in practice.
const maxRounds = 32

// AllocateProgram allocates every function in the program, serially.
func AllocateProgram(p *ir.Program, m *machine.Desc) (map[string]*Result, error) {
	return AllocateProgramParallel(p, m, 1)
}

// AllocateProgramParallel allocates every function across a bounded
// worker pool. Functions are independent — Allocate reads and writes
// only its own *ir.Func — so the result is identical to the serial
// path for any parallelism (<= 0 means GOMAXPROCS).
func AllocateProgramParallel(p *ir.Program, m *machine.Desc, parallelism int) (map[string]*Result, error) {
	return AllocateProgramOpts(p, m, parallelism, Options{})
}

// AllocateProgramOpts is AllocateProgramParallel with explicit
// allocator options.
func AllocateProgramOpts(p *ir.Program, m *machine.Desc, parallelism int, opts Options) (map[string]*Result, error) {
	funcs := p.FuncsInOrder()
	results := make([]*Result, len(funcs))
	err := par.Do(len(funcs), parallelism, func(i int) error {
		r, err := AllocateOpts(funcs[i], m, opts)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Result, len(funcs))
	for i, f := range funcs {
		out[f.Name] = results[i]
	}
	return out, nil
}

// Allocate rewrites f in place, replacing every virtual register with
// a physical register and inserting spill code where needed.
func Allocate(f *ir.Func, m *machine.Desc) (*Result, error) {
	return AllocateOpts(f, m, Options{})
}

// AllocateOpts is Allocate with explicit allocator options.
func AllocateOpts(f *ir.Func, m *machine.Desc, opts Options) (*Result, error) {
	if len(f.Params) > len(m.ArgRegs) {
		return nil, fmt.Errorf("regalloc: %s has %d params, machine passes at most %d",
			f.Name, len(f.Params), len(m.ArgRegs))
	}
	precolor := make(map[ir.Reg]ir.Reg)
	lowerParams(f, m)
	lowerReturns(f, m, precolor)

	res := &Result{}
	noSpill := make(map[ir.Reg]bool) // spill temps must not respill
	for i, p := range f.Params {
		precolor[p] = m.ArgRegs[i]
	}

	pr := newPricer(m, opts)
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("regalloc: %s did not converge after %d rounds", f.Name, maxRounds)
		}
		res.Iterations++
		g := buildGraph(f, m, precolor)
		colors, spills := color(g, m, noSpill, pr)
		if len(spills) == 0 {
			rewrite(f, colors)
			res.UsedCalleeSaved = recordUsedCalleeSaved(f, m)
			exactSpillSlots(f)
			return res, nil
		}
		for _, v := range spills {
			n := g.nodes[v]
			res.Spilled = append(res.Spilled, v)
			res.SpillWebs = append(res.SpillWebs, SpillWeb{Reg: v, DefWeight: n.defCost, UseWeight: n.useCost})
			insertSpillCode(f, v, noSpill)
		}
	}
}

// lowerParams pins incoming parameters to the machine's argument
// registers: each param becomes a fresh virtual register that is
// immediately moved into the original parameter virtual at function
// entry, and the fresh virtual is precolored to the argument register.
// This keeps argument passing in caller-saved registers, as real
// conventions do.
func lowerParams(f *ir.Func, m *machine.Desc) {
	for i, old := range f.Params {
		nv := f.NewVirt()
		f.Params[i] = nv
		mv := &ir.Instr{Op: ir.OpMov, Dst: old, Src1: nv, Src2: ir.NoReg}
		// Insert moves in order after any previously inserted ones.
		f.Entry.InsertBefore(i, mv)
	}
}

// lowerReturns moves every returned value into the machine's return
// register through a fresh precolored virtual: `ret v` becomes
// `t = mov v; ret t` with t pinned to RetReg. Without this a return
// value could be allocated to a callee-saved register, which the exit
// restore would clobber.
func lowerReturns(f *ir.Func, m *machine.Desc, precolor map[ir.Reg]ir.Reg) {
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpRet || !t.Src1.IsValid() {
			continue
		}
		nv := f.NewVirt()
		precolor[nv] = m.RetReg
		mv := &ir.Instr{Op: ir.OpMov, Dst: nv, Src1: t.Src1, Src2: ir.NoReg}
		b.InsertBeforeTerminator(mv)
		t.Src1 = nv
	}
}

// node is one interference graph vertex.
type node struct {
	reg      ir.Reg
	adj      map[ir.Reg]bool
	degree   int
	defCost  int64 // profile-weighted def count
	useCost  int64 // profile-weighted use count
	crossing bool  // live across a call: callee-saved only
	forbid   map[ir.Reg]bool
	pre      ir.Reg // precolored register or NoReg
	removed  bool
}

type graph struct {
	nodes map[ir.Reg]*node
	order []ir.Reg // deterministic iteration order
}

func (g *graph) node(r ir.Reg) *node {
	n := g.nodes[r]
	if n == nil {
		n = &node{reg: r, adj: make(map[ir.Reg]bool), forbid: make(map[ir.Reg]bool), pre: ir.NoReg}
		g.nodes[r] = n
		g.order = append(g.order, r)
	}
	return n
}

func (g *graph) addEdge(a, b ir.Reg) {
	if a == b {
		return
	}
	na, nb := g.node(a), g.node(b)
	if !na.adj[b] {
		na.adj[b] = true
		na.degree++
		nb.adj[a] = true
		nb.degree++
	}
}

// buildGraph computes liveness and constructs the interference graph
// over virtual registers.
func buildGraph(f *ir.Func, m *machine.Desc, precolor map[ir.Reg]ir.Reg) *graph {
	lv := dataflow.ComputeLiveness(f)
	g := &graph{nodes: make(map[ir.Reg]*node)}

	// Ensure every referenced virtual register has a node.
	var buf []ir.Reg
	for _, b := range f.Blocks {
		w := b.ExecCount()
		if w == 0 {
			w = 1
		}
		for _, in := range b.Instrs {
			if d := in.Def(); d.IsVirt() {
				g.node(d).defCost += w
			}
			for _, u := range in.Uses(buf[:0]) {
				if u.IsVirt() {
					g.node(u).useCost += w
				}
			}
			buf = buf[:0]
		}
	}

	// Parameters are all simultaneously live at entry.
	for i := 0; i < len(f.Params); i++ {
		for j := i + 1; j < len(f.Params); j++ {
			g.addEdge(f.Params[i], f.Params[j])
		}
	}

	// Backward scan per block: def interferes with everything live
	// after it; calls make crossing virtuals callee-saved-only.
	for _, b := range f.Blocks {
		live := lv.Out[b.ID].Clone()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if d := in.Def(); d.IsVirt() {
				live.ForEach(func(ri int) {
					r := ir.Reg(ri)
					if r.IsVirt() && r != d {
						g.addEdge(d, r)
					}
				})
			}
			if d := in.Def(); d.IsValid() {
				live.Clear(int(d))
			}
			if in.Op == ir.OpCall {
				// Everything live across the call (after the def is
				// removed) must avoid caller-saved registers.
				live.ForEach(func(ri int) {
					r := ir.Reg(ri)
					if r.IsVirt() {
						g.node(r).crossing = true
					}
				})
			}
			for _, u := range in.Uses(buf[:0]) {
				if u.IsValid() {
					live.Set(int(u))
				}
			}
			buf = buf[:0]
		}
	}

	for v, p := range precolor {
		if n, ok := g.nodes[v]; ok {
			n.pre = p
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i] < g.order[j] })
	return g
}

// allowedCount returns how many colors a node could take in principle.
func allowedCount(n *node, m *machine.Desc) int {
	if n.pre != ir.NoReg {
		return 1
	}
	if n.crossing {
		return m.NumCalleeSaved()
	}
	return m.NumRegs
}

// color runs simplify/select with optimistic coloring. It returns the
// chosen colors, or the virtual registers to spill when coloring
// failed.
func color(g *graph, m *machine.Desc, noSpill map[ir.Reg]bool, pr pricer) (map[ir.Reg]ir.Reg, []ir.Reg) {
	// Simplify: repeatedly remove a node with degree < allowed; if
	// none qualifies, optimistically remove the cheapest (potential
	// spill).
	var stack []ir.Reg
	remaining := len(g.order)
	degree := make(map[ir.Reg]int, remaining)
	for _, r := range g.order {
		degree[r] = g.nodes[r].degree
	}
	removeNode := func(r ir.Reg) {
		n := g.nodes[r]
		n.removed = true
		for a := range n.adj {
			if !g.nodes[a].removed {
				degree[a]--
			}
		}
		stack = append(stack, r)
		remaining--
	}
	for remaining > 0 {
		found := false
		for _, r := range g.order {
			n := g.nodes[r]
			if n.removed {
				continue
			}
			if degree[r] < allowedCount(n, m) {
				removeNode(r)
				found = true
				break
			}
		}
		if found {
			continue
		}
		// Optimistic push of the best spill candidate: lowest
		// cost/degree ratio among spillable nodes.
		var best ir.Reg = ir.NoReg
		var bestScore float64
		for _, r := range g.order {
			n := g.nodes[r]
			if n.removed || noSpill[r] || n.pre != ir.NoReg {
				continue
			}
			d := degree[r]
			if d == 0 {
				d = 1
			}
			score := float64(pr.of(n)) / float64(d)
			if best == ir.NoReg || score < bestScore {
				best, bestScore = r, score
			}
		}
		if best == ir.NoReg {
			// Only unspillable nodes left; push any.
			for _, r := range g.order {
				if !g.nodes[r].removed {
					best = r
					break
				}
			}
		}
		removeNode(best)
	}

	// Select in reverse order.
	colors := make(map[ir.Reg]ir.Reg, len(stack))
	var spills []ir.Reg
	callerPref := m.CallerSaved()
	calleePref := m.CalleeSaved()
	for i := len(stack) - 1; i >= 0; i-- {
		r := stack[i]
		n := g.nodes[r]
		inUse := make(map[ir.Reg]bool)
		for a := range n.adj {
			if c, ok := colors[a]; ok {
				inUse[c] = true
			}
		}
		var choice ir.Reg = ir.NoReg
		if n.pre != ir.NoReg {
			if inUse[n.pre] {
				// A precolored conflict means a neighbor must spill,
				// not the precolored node.
				spills = append(spills, pickNeighborSpill(g, n, noSpill, pr))
				continue
			}
			choice = n.pre
		} else if n.crossing {
			for _, c := range calleePref {
				if !inUse[c] && !n.forbid[c] {
					choice = c
					break
				}
			}
		} else {
			// Prefer caller-saved (cheapest), then callee-saved.
			for _, c := range callerPref {
				if !inUse[c] && !n.forbid[c] {
					choice = c
					break
				}
			}
			if choice == ir.NoReg {
				for _, c := range calleePref {
					if !inUse[c] && !n.forbid[c] {
						choice = c
						break
					}
				}
			}
		}
		if choice == ir.NoReg {
			spills = append(spills, r)
			continue
		}
		colors[r] = choice
	}
	return colors, dedupRegs(spills)
}

// pickNeighborSpill selects the cheapest already-colored or pending
// neighbor of a precolored node to spill.
func pickNeighborSpill(g *graph, n *node, noSpill map[ir.Reg]bool, pr pricer) ir.Reg {
	var best ir.Reg = ir.NoReg
	var bestCost int64
	for a := range n.adj {
		na := g.nodes[a]
		if na.pre != ir.NoReg || noSpill[a] {
			continue
		}
		if c := pr.of(na); best == ir.NoReg || c < bestCost {
			best, bestCost = a, c
		}
	}
	if best == ir.NoReg {
		// Nothing reasonable; fall back to the precolored node itself
		// (will error upstream if it recurs).
		return n.reg
	}
	return best
}

func dedupRegs(rs []ir.Reg) []ir.Reg {
	seen := make(map[ir.Reg]bool, len(rs))
	out := rs[:0]
	for _, r := range rs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// exactSpillSlots resizes f.SpillSlots to exactly cover the spill
// slots the final code references, so the VM's fixed-size frames never
// carry dead slots (and can never need to grow mid-run).
func exactSpillSlots(f *ir.Func) {
	f.SpillSlots = f.MaxFrameSlot(ir.OpSpillLoad, ir.OpSpillStore) + 1
}

// insertSpillCode assigns v a stack slot and rewrites every use and
// def through fresh short-lived temporaries.
func insertSpillCode(f *ir.Func, v ir.Reg, noSpill map[ir.Reg]bool) {
	slot := int64(f.SpillSlots)
	f.SpillSlots++
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			usesV := false
			for _, u := range in.Uses(buf[:0]) {
				if u == v {
					usesV = true
				}
			}
			buf = buf[:0]
			if usesV {
				t := f.NewVirt()
				noSpill[t] = true
				ld := &ir.Instr{Op: ir.OpSpillLoad, Dst: t, Src1: ir.NoReg, Src2: ir.NoReg,
					Imm: slot, Flags: ir.FlagSpill}
				b.InsertBefore(i, ld)
				i++
				replaceUses(b.Instrs[i], v, t)
			}
			if in.Def() == v {
				t := f.NewVirt()
				noSpill[t] = true
				in.Dst = t
				st := &ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, Src1: t, Src2: ir.NoReg,
					Imm: slot, Flags: ir.FlagSpill}
				b.InsertBefore(i+1, st)
				i++
			}
		}
	}
	// Params cannot be spilled this way (they are precolored temps
	// moved at entry), and v should no longer appear anywhere.
}

func replaceUses(in *ir.Instr, from, to ir.Reg) {
	if in.Src1 == from {
		in.Src1 = to
	}
	if in.Src2 == from {
		in.Src2 = to
	}
	for i, a := range in.Args {
		if a == from {
			in.Args[i] = to
		}
	}
}

// rewrite replaces every virtual register with its color.
func rewrite(f *ir.Func, colors map[ir.Reg]ir.Reg) {
	sub := func(r ir.Reg) ir.Reg {
		if r.IsVirt() {
			if c, ok := colors[r]; ok {
				return c
			}
			// Dead virtual never live anywhere: any caller-saved reg
			// would do; keep it deterministic.
			return ir.Phys(0)
		}
		return r
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst.IsValid() {
				in.Dst = sub(in.Dst)
			}
			if in.Src1.IsValid() {
				in.Src1 = sub(in.Src1)
			}
			if in.Src2.IsValid() {
				in.Src2 = sub(in.Src2)
			}
			for i, a := range in.Args {
				if a.IsValid() {
					in.Args[i] = sub(a)
				}
			}
		}
	}
	for i, p := range f.Params {
		f.Params[i] = sub(p)
	}
	f.NumVirt = 0
}

// recordUsedCalleeSaved scans the allocated body for callee-saved
// registers that are written and records them on the function.
func recordUsedCalleeSaved(f *ir.Func, m *machine.Desc) []ir.Reg {
	used := make(map[ir.Reg]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d.IsPhys() && m.IsCalleeSaved(d) {
				used[d] = true
			}
		}
	}
	var out []ir.Reg
	for r := range used {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	f.UsedCalleeSaved = out
	return out
}
