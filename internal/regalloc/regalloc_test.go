package regalloc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/vm"
)

// buildCallProg builds:
//
//	leaf(x)   = x*2
//	helper(x) = (x+1) + leaf(x)   // x+1 lives across the call
//	main(x)   = helper(x) + 3
func buildCallProg() *ir.Program {
	p := ir.NewProgram()

	lb := ir.NewBuilder("leaf", 1)
	lb.Block("entry")
	two := lb.Const(2)
	r := lb.Bin(ir.OpMul, lb.F.Params[0], two)
	lb.Ret(r)
	p.Add(lb.Finish())

	hb := ir.NewBuilder("helper", 1)
	hb.Block("entry")
	one := hb.Const(1)
	a := hb.Bin(ir.OpAdd, hb.F.Params[0], one)
	b := hb.F.NewVirt()
	hb.Call(b, "leaf", hb.F.Params[0])
	s := hb.Bin(ir.OpAdd, a, b)
	hb.Ret(s)
	p.Add(hb.Finish())

	mb := ir.NewBuilder("main", 1)
	mb.Block("entry")
	h := mb.F.NewVirt()
	mb.Call(h, "helper", mb.F.Params[0])
	three := mb.Const(3)
	r2 := mb.Bin(ir.OpAdd, h, three)
	mb.Ret(r2)
	p.Add(mb.Finish())
	p.Main = "main"
	return p
}

func TestAllocateCallProgram(t *testing.T) {
	p := buildCallProg()
	m := machine.PARISC()

	// Reference semantics before allocation.
	ref, err := vm.New(p.Clone(), vm.Config{}).Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if ref != 10+1+20+3 {
		t.Fatalf("reference result = %d, want 34", ref)
	}

	if _, err := AllocateProgram(p, m); err != nil {
		t.Fatal(err)
	}
	// No virtual registers remain.
	for _, f := range p.FuncsInOrder() {
		if err := ir.Verify(f); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				var buf []ir.Reg
				for _, u := range in.Uses(buf) {
					if u.IsVirt() {
						t.Fatalf("%s: %v still uses virtual %v", f.Name, in, u)
					}
				}
				if d := in.Def(); d.IsValid() && d.IsVirt() {
					t.Fatalf("%s: %v still defines virtual %v", f.Name, in, d)
				}
			}
		}
	}

	// helper holds a value across the call: it must use a callee-saved
	// register.
	h := p.Func("helper")
	if len(h.UsedCalleeSaved) == 0 {
		t.Fatal("helper should use a callee-saved register for the value live across the call")
	}
	for _, r := range h.UsedCalleeSaved {
		if !m.IsCalleeSaved(r) {
			t.Errorf("UsedCalleeSaved contains caller-saved %v", r)
		}
	}

	// Without save/restore placement the convention-checking VM must
	// reject helper (it clobbers a callee-saved register).
	if _, err := vm.New(p.Clone(), vm.Config{Machine: m}).Run(10); err == nil {
		t.Fatal("expected convention violation before save/restore placement")
	}

	// With entry/exit placement the program runs and computes the
	// same result as before allocation.
	fixed := p.Clone()
	for _, f := range fixed.FuncsInOrder() {
		if len(f.UsedCalleeSaved) == 0 {
			continue
		}
		if err := core.Apply(f, core.EntryExit(f)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := vm.New(fixed, vm.Config{Machine: m}).Run(10)
	if err != nil {
		t.Fatalf("post-placement run: %v", err)
	}
	if got != ref {
		t.Fatalf("post-allocation result = %d, want %d", got, ref)
	}
}

func TestAllocateForcesSpills(t *testing.T) {
	// With only 3 registers, 6 simultaneously-live values must spill.
	bu := ir.NewBuilder("pressure", 1)
	bu.Block("entry")
	x := bu.F.Params[0]
	vals := make([]ir.Reg, 6)
	for i := range vals {
		c := bu.Const(int64(i + 1))
		vals[i] = bu.Bin(ir.OpAdd, x, c)
	}
	sum := vals[0]
	for _, v := range vals[1:] {
		sum = bu.Bin(ir.OpAdd, sum, v)
	}
	bu.Ret(sum)
	f := bu.Finish()
	p := ir.NewProgram()
	p.Add(f)

	ref, err := vm.New(p.Clone(), vm.Config{}).Run(100)
	if err != nil {
		t.Fatal(err)
	}

	m := machine.Small(3, 1)
	res, err := Allocate(f, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) == 0 {
		t.Fatal("expected spills with 3 registers and 6 live values")
	}
	if f.SpillSlots == 0 {
		t.Fatal("no spill slots assigned")
	}
	// Exact frame sizing: SpillSlots must cover exactly the slots the
	// final code references (VM frames are sized from it once per call).
	maxSlot := -1
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if (in.Op == ir.OpSpillLoad || in.Op == ir.OpSpillStore) && int(in.Imm) > maxSlot {
				maxSlot = int(in.Imm)
			}
		}
	}
	if f.SpillSlots != maxSlot+1 {
		t.Fatalf("SpillSlots = %d, want exactly %d (max referenced slot + 1)", f.SpillSlots, maxSlot+1)
	}
	spillCount := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Flags&ir.FlagSpill != 0 {
				spillCount++
			}
		}
	}
	if spillCount == 0 {
		t.Fatal("no spill instructions inserted")
	}
	// Under this much pressure the allocator legitimately reaches for
	// the callee-saved register; place its save/restore code before
	// running with convention checks.
	if len(f.UsedCalleeSaved) > 0 {
		if err := core.Apply(f, core.EntryExit(f)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := vm.New(p, vm.Config{Machine: m}).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("spilled result = %d, want %d", got, ref)
	}
}

func TestAllocateDiamondControlFlow(t *testing.T) {
	// abs-like function: interference across branches.
	bu := ir.NewBuilder("absish", 1)
	entry := bu.Block("entry")
	neg := bu.F.NewBlock("neg")
	pos := bu.F.NewBlock("pos")
	join := bu.F.NewBlock("join")

	bu.SetCurrent(entry)
	zero := bu.Const(0)
	c := bu.Bin(ir.OpCmpLT, bu.F.Params[0], zero)
	res := bu.F.NewVirt()
	bu.Br(c, neg, pos, 1, 1)

	bu.SetCurrent(neg)
	bu.BinInto(ir.OpSub, res, zero, bu.F.Params[0])
	bu.Jmp(join, 1)

	bu.SetCurrent(pos)
	bu.Mov(res, bu.F.Params[0])
	bu.Jmp(join, 1)

	bu.SetCurrent(join)
	bu.Ret(res)
	f := bu.Finish()
	p := ir.NewProgram()
	p.Add(f)

	for _, in := range []int64{-5, 7} {
		want := in
		if want < 0 {
			want = -want
		}
		q := p.Clone()
		m := machine.PARISC()
		if _, err := Allocate(q.Func("absish"), m); err != nil {
			t.Fatal(err)
		}
		got, err := vm.New(q, vm.Config{Machine: m}).Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("absish(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTooManyParams(t *testing.T) {
	bu := ir.NewBuilder("many", 6)
	bu.Block("entry")
	bu.Ret(bu.F.Params[0])
	f := bu.Finish()
	if _, err := Allocate(f, machine.PARISC()); err == nil {
		t.Fatal("expected error for 6 params with 4 arg registers")
	}
}

func TestDeterministicAllocation(t *testing.T) {
	build := func() *ir.Program { return buildCallProg() }
	p1, p2 := build(), build()
	m := machine.PARISC()
	if _, err := AllocateProgram(p1, m); err != nil {
		t.Fatal(err)
	}
	if _, err := AllocateProgram(p2, m); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Error("allocation is not deterministic")
	}
}
