// machine_test.go pins the machine-priced spill selection
// (Options.MachineCosts) to its two contracts: the classic preset is
// byte-identical to the uniform allocator, and skewed store:load
// presets pick spill sets that are no more expensive under their own
// pricing. It lives in an external test package because it drives the
// allocator through irgen, which itself imports regalloc.
package regalloc_test

import (
	"testing"

	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/regalloc"
)

// allocText generates seed under cfg, allocates it for m with opts,
// and returns the canonical text of the allocated program.
func allocText(t *testing.T, seed uint64, cfg irgen.Config, m *machine.Desc, opts regalloc.Options) string {
	t.Helper()
	p := irgen.Generate(seed, cfg)
	if _, err := regalloc.AllocateProgramOpts(p, m, 1, opts); err != nil {
		t.Fatalf("seed %d @%s: %v", seed, m.Name, err)
	}
	return irtext.Print(p)
}

// TestClassicMachinePricingByteIdentical: under the classic preset
// (unit store and load costs) machine pricing must reproduce the
// uniform allocator's output byte for byte — same scores, same
// tie-breaks, same spill code. This is the ISSUE 10 pin that keeps the
// paper-reproduction numbers untouched by the new mode.
func TestClassicMachinePricingByteIdentical(t *testing.T) {
	classic, err := machine.Preset("classic")
	if err != nil {
		t.Fatal(err)
	}
	families := []struct {
		name string
		cfg  irgen.Config
	}{
		{"default", irgen.Default()},
		{"crossover", irgen.Crossover()},
	}
	for _, fam := range families {
		for seed := uint64(0); seed < 20; seed++ {
			uni := allocText(t, seed, fam.cfg, classic, regalloc.Options{})
			mach := allocText(t, seed, fam.cfg, classic, regalloc.Options{MachineCosts: true})
			if uni != mach {
				t.Fatalf("%s seed %d: classic machine-priced allocation diverges from uniform", fam.name, seed)
			}
		}
	}
}

// TestSkewedPresetsDiverge: presets whose store:load ratio is not 1:1
// (deep-pipeline 2:3, slow-memory 8:10) must pick different spills
// than the uniform allocator on some crossover seeds — otherwise the
// mode is dead code — while every unit-ratio preset (classic,
// cheap-spill, dual-issue's effective 1:1, tight-loop) must stay
// byte-identical, because unit pricing reproduces the uniform score
// integer for integer.
func TestSkewedPresetsDiverge(t *testing.T) {
	diverged := map[string]int{}
	presets := machine.Presets()
	for seed := uint64(1); seed <= 60; seed++ {
		uni := allocText(t, seed, irgen.Crossover(), machine.PARISC(), regalloc.Options{})
		for _, d := range presets {
			mach := allocText(t, seed, irgen.Crossover(), d, regalloc.Options{MachineCosts: true})
			if mach != uni {
				diverged[d.Name]++
			}
		}
	}
	for _, name := range []string{"deep-pipeline", "slow-memory"} {
		if diverged[name] == 0 {
			t.Errorf("%s: machine pricing never changed an allocation across 60 crossover seeds", name)
		}
	}
	for _, name := range []string{"classic", "cheap-spill", "dual-issue", "tight-loop"} {
		if diverged[name] != 0 {
			t.Errorf("%s: unit-ratio preset diverged from uniform on %d seeds", name, diverged[name])
		}
	}
}

// spillBill prices a program's spilled webs under the given latencies:
// each spilled def executes one store and each use one load, weighted
// by the block execution counts the allocator recorded in SpillWebs.
func spillBill(res map[string]*regalloc.Result, store, load int64) int64 {
	var total int64
	for _, r := range res {
		for _, w := range r.SpillWebs {
			total += w.DefWeight*store + w.UseWeight*load
		}
	}
	return total
}

// TestMachinePricingCostMonotonic: per preset, the machine-priced
// allocator's aggregate spill bill over 100 crossover seeds — priced
// with that preset's own store/load latencies — must not exceed the
// uniform allocator's. Per-seed monotonicity is not guaranteed (the
// score divides by interference degree and a different first spill
// reshapes later rounds), but the mode must pay for itself in
// aggregate or it is mispricing.
func TestMachinePricingCostMonotonic(t *testing.T) {
	for _, d := range machine.Presets() {
		store, load := d.Costs.StoreCost(), d.Costs.LoadCost()
		var uniTotal, machTotal int64
		for seed := uint64(1); seed <= 100; seed++ {
			pu := irgen.Generate(seed, irgen.Crossover())
			ru, err := regalloc.AllocateProgramOpts(pu, d, 1, regalloc.Options{})
			if err != nil {
				t.Fatalf("seed %d @%s uniform: %v", seed, d.Name, err)
			}
			pm := irgen.Generate(seed, irgen.Crossover())
			rm, err := regalloc.AllocateProgramOpts(pm, d, 1, regalloc.Options{MachineCosts: true})
			if err != nil {
				t.Fatalf("seed %d @%s machine: %v", seed, d.Name, err)
			}
			uniTotal += spillBill(ru, store, load)
			machTotal += spillBill(rm, store, load)
		}
		if machTotal > uniTotal {
			t.Errorf("%s: machine-priced spill bill %d exceeds uniform %d", d.Name, machTotal, uniTotal)
		}
		if uniTotal == 0 {
			t.Errorf("%s: no spills across 100 crossover seeds; pressure family too tame", d.Name)
		}
	}
}

// TestMachineAllocParallelMatchesSerial: the worker-pool path must
// produce the same machine-priced allocation as the serial path (and,
// under -race, prove the pricer is race-free).
func TestMachineAllocParallelMatchesSerial(t *testing.T) {
	d, err := machine.Preset("deep-pipeline")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		opts := regalloc.Options{MachineCosts: true}
		p1 := irgen.Generate(seed, irgen.Crossover())
		if _, err := regalloc.AllocateProgramOpts(p1, d, 1, opts); err != nil {
			t.Fatal(err)
		}
		p4 := irgen.Generate(seed, irgen.Crossover())
		if _, err := regalloc.AllocateProgramOpts(p4, d, 4, opts); err != nil {
			t.Fatal(err)
		}
		if irtext.Print(p1) != irtext.Print(p4) {
			t.Fatalf("seed %d: parallel machine-priced allocation differs from serial", seed)
		}
	}
}
