package layout

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/pst"
	"repro/internal/regalloc"
	"repro/internal/shrinkwrap"
	"repro/internal/vm"
	"repro/internal/workload"
)

func TestAlignPutsHotEdgeFallThrough(t *testing.T) {
	// A branches: hot to C (a jump edge in the original layout), cold
	// to B. After alignment C should directly follow A.
	f := cfgtest.MustBuild("hot",
		[]string{"A", "B", "C", "D"},
		[]cfgtest.Edge{
			cfgtest.E("A", "C", 90), cfgtest.E("A", "B", 10),
			cfgtest.E("B", "D", 10), cfgtest.E("C", "D", 90),
		})
	before := JumpWeight(f)
	Align(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	after := JumpWeight(f)
	if after >= before {
		t.Errorf("jump weight %d -> %d, want a reduction", before, after)
	}
	ac := f.Entry.SuccEdge(f.BlockByName("C"))
	if ac.Kind != ir.FallThrough {
		t.Error("hot edge A->C should fall through after alignment")
	}
	if f.Blocks[0] != f.Entry {
		t.Error("entry must stay first")
	}
}

func TestAlignPreservesSemantics(t *testing.T) {
	// Run a real program before and after alignment: same result.
	var params workload.BenchParams
	for _, p := range workload.SPECInt2000() {
		if p.Name == "perlbmk" {
			params = p
		}
	}
	prog := workload.Generate(params)
	ref, err := vm.New(prog.Clone(), vm.Config{}).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := profile.Collect(prog, 0); err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.FuncsInOrder() {
		Align(f)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	got, err := vm.New(prog, vm.Config{}).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("aligned program computes %d, want %d", got, ref)
	}
}

func TestAlignReducesJumpWeightAggregate(t *testing.T) {
	// Over the whole suite the greedy chaining must cut the total
	// weight carried by jump edges.
	var before, after int64
	for _, p := range workload.SPECInt2000()[:4] {
		prog := workload.Generate(p)
		if _, err := profile.Collect(prog, 0); err != nil {
			t.Fatal(err)
		}
		for _, f := range prog.FuncsInOrder() {
			before += JumpWeight(f)
			Align(f)
			after += JumpWeight(f)
		}
	}
	if after >= before {
		t.Errorf("aggregate jump weight %d -> %d, want a reduction", before, after)
	}
	t.Logf("jump-edge weight reduced %d -> %d (%.1f%%)", before, after,
		100*float64(after)/float64(before))
}

// TestAlignmentNarrowsCostModelGap measures the paper's claim: with
// jump alignment performed, the jump edge cost model's results differ
// less from the execution count model's, because fewer placements sit
// on (expensive) jump edges.
func TestAlignmentNarrowsCostModelGap(t *testing.T) {
	gap := func(align bool) int64 {
		var total int64
		for _, p := range workload.SPECInt2000()[:4] {
			prog := workload.Generate(p)
			if _, err := profile.Collect(prog, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
				t.Fatal(err)
			}
			for _, f := range prog.FuncsInOrder() {
				if len(f.UsedCalleeSaved) == 0 {
					continue
				}
				if align {
					Align(f)
				}
				tr, err := pst.Build(f)
				if err != nil {
					t.Fatal(err)
				}
				seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
				jm := core.JumpEdgeModel{}
				finalJ, _, err := core.Hierarchical(f, tr, seed, jm)
				if err != nil {
					t.Fatal(err)
				}
				finalE, _, err := core.Hierarchical(f, tr, seed, core.ExecCountModel{})
				if err != nil {
					t.Fatal(err)
				}
				// Evaluate both results under the jump model: the gap is
				// how much the exec-model placement overpays for jumps.
				cj := core.TotalCost(jm, finalJ)
				ce := core.TotalCost(jm, finalE)
				if ce > cj {
					total += ce - cj
				}
			}
		}
		return total
	}
	before, after := gap(false), gap(true)
	if after > before {
		t.Errorf("cost model gap grew after alignment: %d -> %d", before, after)
	}
	t.Logf("jump/exec cost model gap: %d before alignment, %d after", before, after)
}

func TestAlignTinyFunctions(t *testing.T) {
	// One- and two-block functions are left untouched.
	f := cfgtest.MustBuild("tiny", []string{"A"}, nil)
	Align(f)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	g := cfgtest.MustBuild("two", []string{"A", "B"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 1)})
	Align(g)
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
}
