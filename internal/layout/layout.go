// Package layout implements jump alignment (branch alignment): a
// profile-guided reordering of basic blocks that places the hottest
// control flow edges on the fall-through path, in the style of
// McFarling/Hennessy and Pettis/Hansen chaining. The paper cites jump
// alignment as the reason its jump edge cost model is conservative —
// "if the execution count of jump edges is minimized, as would be the
// case in a procedure where jump alignment has been performed, the
// jump edge cost model more closely represents the real cost" — but
// leaves it out of scope. This package provides it as an extension so
// that claim can be measured (see the alignment tests and bench).
package layout

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Align reorders f's blocks greedily: edges are visited hottest first,
// and an edge u->v glues u's chain to v's chain when u is a chain tail
// and v a chain head. The entry block's chain is laid out first, then
// remaining chains by original position. Edge kinds are reclassified
// from the new layout; the CFG itself is untouched.
func Align(f *ir.Func) {
	n := len(f.Blocks)
	if n <= 2 {
		return
	}
	// Chain bookkeeping: chainOf[b] -> chain id; chains[id] is a block
	// sequence. Merging appends v's chain to u's.
	chainOf := make([]int, n)
	chains := make([][]*ir.Block, n)
	for i, b := range f.Blocks {
		chainOf[b.ID] = i
		chains[i] = []*ir.Block{b}
	}
	head := func(c int) *ir.Block { return chains[c][0] }
	tail := func(c int) *ir.Block { return chains[c][len(chains[c])-1] }

	edges := f.Edges()
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].Weight > edges[j].Weight })
	for _, e := range edges {
		cu, cv := chainOf[e.From.ID], chainOf[e.To.ID]
		if cu == cv {
			continue
		}
		// v must not be the entry block (entry stays a chain head at
		// position zero) and the junction must be tail-to-head.
		if e.To == f.Entry || tail(cu) != e.From || head(cv) != e.To {
			continue
		}
		chains[cu] = append(chains[cu], chains[cv]...)
		for _, b := range chains[cv] {
			chainOf[b.ID] = cu
		}
		chains[cv] = nil
	}

	// Emit: entry chain first, then the rest in original head order.
	var order []*ir.Block
	emit := func(c int) {
		order = append(order, chains[c]...)
		chains[c] = nil
	}
	emit(chainOf[f.Entry.ID])
	for i := range chains {
		if len(chains[i]) > 0 {
			emit(i)
		}
	}
	f.Blocks = order
	f.RenumberBlocks()
	f.ClassifyEdges()
}

// JumpWeight sums the execution counts of all jump edges — the
// quantity alignment minimizes.
func JumpWeight(f *ir.Func) int64 {
	var total int64
	for _, e := range f.Edges() {
		if e.Kind == ir.Jump {
			total += e.Weight
		}
	}
	return total
}

// FallWeight sums the execution counts of fall-through edges.
func FallWeight(f *ir.Func) int64 {
	var total int64
	for _, e := range f.Edges() {
		if e.Kind == ir.FallThrough {
			total += e.Weight
		}
	}
	return total
}

// Cost prices a measured edge profile under a machine's control-flow
// costs: every traversal of a jump edge at the taken-jump penalty,
// every fall-through traversal at the (usually free) fall-through
// cost. This is the quantity alignment minimizes, priced the same way
// the placement cost models price jump blocks, so layout and spill
// placement gains add on a common scale.
func Cost(p *ir.Program, counts map[*ir.Edge]int64, c machine.Costs) int64 {
	var total int64
	for _, f := range p.FuncsInOrder() {
		for _, b := range f.Blocks {
			for _, e := range b.Succs {
				switch e.Kind {
				case ir.Jump:
					total += counts[e] * c.JumpCost()
				case ir.FallThrough:
					total += counts[e] * c.FallCost()
				}
			}
		}
	}
	return total
}
