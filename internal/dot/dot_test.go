package dot

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
	"repro/internal/workload"
)

func TestCFGDot(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func

	// Apply a placement so overhead highlighting has something to show.
	seed := shrinkwrap.Compute(f, shrinkwrap.Seed)
	if err := core.Apply(f, seed); err != nil {
		t.Fatal(err)
	}
	out := CFG(f)
	for _, want := range []string{
		"digraph \"figure2\"",
		"\"A\" -> \"B\" [label=\"70\", style=solid]",
		"\"A\" -> \"J\" [label=\"30\", style=dashed]", // jump edge
		"fillcolor=lightyellow",                       // block with spill code
		"save 0, r12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CFG dot missing %q", want)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("unbalanced output")
	}
}

func TestPSTDot(t *testing.T) {
	fig := workload.NewFigure2()
	f := fig.Func
	tr, err := pst.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	out := PST(f, tr)
	for _, want := range []string{
		"procedure (boundary 200)",
		"B->C .. F->G (boundary 100)",
		"A->J .. O->P (boundary 60)",
		"subgraph cluster_",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("PST dot missing %q\n%s", want, out)
		}
	}
	// Every block appears exactly once inside the clusters.
	for _, b := range f.Blocks {
		if n := strings.Count(out, "\""+b.Name+"\";"); n != 1 {
			t.Errorf("block %s emitted %d times, want 1", b.Name, n)
		}
	}
}
