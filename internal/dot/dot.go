// Package dot renders control flow graphs and program structure trees
// in Graphviz DOT format, for inspecting placements and region
// structure (`spillopt -dot`, `irrun`-adjacent tooling, debugging).
package dot

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/pst"
)

// CFG renders the function's control flow graph. Jump edges are
// dashed; edge labels carry profile weights; blocks holding overhead
// instructions (spill code, saves/restores, jump-block jumps) are
// highlighted.
func CFG(f *ir.Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for _, blk := range f.Blocks {
		attrs := ""
		if hasOverhead(blk) {
			attrs = ", style=filled, fillcolor=lightyellow"
		}
		var label strings.Builder
		fmt.Fprintf(&label, "%s\\n", blk.Name)
		for _, in := range blk.Instrs {
			if in.IsOverhead() {
				fmt.Fprintf(&label, "%s\\l", in)
			}
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\"%s];\n", blk.Name, label.String(), attrs)
	}
	for _, e := range f.Edges() {
		style := "solid"
		if e.Kind == ir.Jump {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d\", style=%s];\n",
			e.From.Name, e.To.Name, e.Weight, style)
	}
	b.WriteString("}\n")
	return b.String()
}

func hasOverhead(b *ir.Block) bool {
	for _, in := range b.Instrs {
		if in.IsOverhead() {
			return true
		}
	}
	return false
}

// PST renders the program structure tree as nested clusters over the
// CFG nodes, showing region boundaries and their costs.
func PST(f *ir.Func, t *pst.PST) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", f.Name+".pst")
	b.WriteString("  compound=true;\n  node [shape=box, fontname=\"monospace\"];\n")
	emitted := make(map[*ir.Block]bool)
	var walk func(r *pst.Region, depth int)
	id := 0
	walk = func(r *pst.Region, depth int) {
		indent := strings.Repeat("  ", depth+1)
		id++
		fmt.Fprintf(&b, "%ssubgraph cluster_%d {\n", indent, id)
		fmt.Fprintf(&b, "%s  label=\"%s (boundary %d)\";\n", indent,
			regionLabel(r), r.EntryWeight(f)+r.ExitWeight(f))
		for _, c := range r.Children {
			walk(c, depth+1)
		}
		// Blocks belonging to r but to none of its children.
		for _, blk := range r.Blocks {
			inChild := false
			for _, c := range r.Children {
				if c.ContainsBlock(blk) {
					inChild = true
					break
				}
			}
			if !inChild && !emitted[blk] {
				emitted[blk] = true
				fmt.Fprintf(&b, "%s  %q;\n", indent, blk.Name)
			}
		}
		fmt.Fprintf(&b, "%s}\n", indent)
	}
	walk(t.Root, 0)
	for _, e := range f.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d\"];\n", e.From.Name, e.To.Name, e.Weight)
	}
	b.WriteString("}\n")
	return b.String()
}

func regionLabel(r *pst.Region) string {
	if r.IsRoot() {
		return "procedure"
	}
	entry := "entry"
	if r.EntryEdge != nil {
		entry = r.EntryEdge.From.Name + "->" + r.EntryEdge.To.Name
	}
	exit := "exit"
	switch {
	case r.ExitEdge != nil:
		exit = r.ExitEdge.From.Name + "->" + r.ExitEdge.To.Name
	case r.ExitBlock != nil:
		exit = "end-of-" + r.ExitBlock.Name
	}
	return entry + " .. " + exit
}
