package analysis_test

import (
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
)

// demoFunc returns a profiled, allocated function that uses
// callee-saved registers (so the seed sets are non-trivial).
func demoFunc(t *testing.T) *ir.Func {
	t.Helper()
	src := `
main main

func leaf(v0) {
entry:
	v1 = const 3
	v2 = mul v0, v1
	ret v2
}

func main(v0) {
entry:
	v1 = const 0
	v2 = const 0
	jmp loop ; 0
loop:
	v3 = call leaf(v2)
	v1 = add v1, v3
	v4 = const 1
	v2 = add v2, v4
	v5 = cmplt v2, v0
	br v5, loop, exit ; 0 0
exit:
	ret v1
}
`
	prog, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := profile.Collect(prog, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	if len(f.UsedCalleeSaved) == 0 {
		t.Fatal("main uses no callee-saved registers; demo program too small")
	}
	return f
}

// TestMemoization: repeated accessor calls return the identical result
// and build each analysis exactly once.
func TestMemoization(t *testing.T) {
	f := demoFunc(t)
	info := analysis.For(f)
	if info.Func() != f {
		t.Fatal("Func() does not return the analyzed function")
	}

	lv := info.Liveness()
	dom := info.Dom()
	loops := info.Loops()
	tree, err := info.PST()
	if err != nil {
		t.Fatal(err)
	}
	seed := info.ShrinkwrapSeed()
	busy := info.BusyBlocks(f.UsedCalleeSaved[0])

	if info.Liveness() != lv || info.Dom() != dom || info.Loops() != loops {
		t.Error("accessors returned fresh objects on second call")
	}
	if tree2, _ := info.PST(); tree2 != tree {
		t.Error("PST rebuilt on second call")
	}
	if seed2 := info.ShrinkwrapSeed(); len(seed2) != len(seed) || (len(seed) > 0 && seed2[0] != seed[0]) {
		t.Error("seed rebuilt on second call")
	}
	if busy2 := info.BusyBlocks(f.UsedCalleeSaved[0]); &busy2[0] != &busy[0] {
		t.Error("busy mask rebuilt on second call")
	}

	c := info.Counts()
	if c.Liveness != 1 || c.Dom != 1 || c.Loops != 1 || c.PST != 1 || c.Seed != 1 {
		t.Errorf("analyses built more than once: %+v", c)
	}
}

// TestInvalidate: after core.Apply mutates the function, Invalidate
// makes every accessor recompute against the new shape — stale results
// sized for the old block count are never served.
func TestInvalidate(t *testing.T) {
	f := demoFunc(t)
	info := analysis.For(f)

	lv1 := info.Liveness()
	if _, err := info.PST(); err != nil {
		t.Fatal(err)
	}
	seed := info.ShrinkwrapSeed()

	if err := core.Apply(f, seed); err != nil {
		t.Fatal(err)
	}
	info.Invalidate()

	lv2 := info.Liveness()
	if lv2 == lv1 {
		t.Error("stale liveness served after Invalidate")
	}
	if got, want := len(lv2.In), len(f.Blocks); got != want {
		t.Errorf("fresh liveness covers %d blocks, function has %d", got, want)
	}
	tree2, err := info.PST()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tree2.Root.Blocks), len(f.Blocks); got != want {
		t.Errorf("fresh PST root covers %d blocks, function has %d", got, want)
	}
	c := info.Counts()
	if c.Liveness != 2 || c.PST != 2 {
		t.Errorf("counts should be cumulative across invalidation: %+v", c)
	}
}

// TestConcurrentAccessors: many goroutines hitting one Info must agree
// on the memoized results (run under -race).
func TestConcurrentAccessors(t *testing.T) {
	f := demoFunc(t)
	info := analysis.For(f)
	var wg sync.WaitGroup
	results := make([]*struct {
		lv   any
		tree any
	}, 16)
	for i := range results {
		results[i] = &struct {
			lv   any
			tree any
		}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].lv = info.Liveness()
			tree, _ := info.PST()
			results[i].tree = tree
			info.ShrinkwrapSeed()
			info.Loops()
			info.BusyBlocks(f.UsedCalleeSaved[0])
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i].lv != results[0].lv || results[i].tree != results[0].tree {
			t.Fatal("goroutines observed different memoized results")
		}
	}
	c := info.Counts()
	if c.Liveness != 1 || c.PST != 1 || c.Seed != 1 {
		t.Errorf("concurrent access built analyses more than once: %+v", c)
	}
}

// TestCache: per-function identity, invalidation, and nil-cache
// degradation.
func TestCache(t *testing.T) {
	f := demoFunc(t)
	c := analysis.NewCache()
	if c.For(f) != c.For(f) {
		t.Error("cache returned distinct Infos for one function")
	}
	lv := c.For(f).Liveness()
	c.Invalidate(f)
	if c.For(f).Liveness() == lv {
		t.Error("cache served stale liveness after Invalidate")
	}
	lv = c.For(f).Liveness()
	c.InvalidateAll()
	if c.For(f).Liveness() == lv {
		t.Error("cache served stale liveness after InvalidateAll")
	}

	var nilCache *analysis.Cache
	if nilCache.For(f) == nil {
		t.Error("nil cache should degrade to a fresh Info")
	}
	if nilCache.For(f) == nilCache.For(f) {
		t.Error("nil cache must not memoize")
	}
	nilCache.Invalidate(f) // must not panic
	nilCache.InvalidateAll()
}

// TestDropShrinksLen pins the fix for the long-lived-process leak:
// Invalidate marks results stale but keeps the *ir.Func-keyed entry
// (and so the function) alive forever, while Drop/DropAll actually
// remove entries and Len() shrinks.
func TestDropShrinksLen(t *testing.T) {
	f := demoFunc(t)
	g := ir.NewFunc("g")
	c := analysis.NewCache()
	c.For(f).Liveness()
	c.For(g)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Invalidate never shrinks the cache — that is the leak.
	c.Invalidate(f)
	c.InvalidateAll()
	if c.Len() != 2 {
		t.Fatalf("Len after Invalidate/InvalidateAll = %d, want 2 (entries kept)", c.Len())
	}

	c.Drop(f)
	if c.Len() != 1 {
		t.Errorf("Len after Drop = %d, want 1", c.Len())
	}
	if c.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", c.Drops())
	}
	c.Drop(f) // dropping an absent entry is a no-op
	if c.Drops() != 1 {
		t.Errorf("Drops after double Drop = %d, want 1", c.Drops())
	}

	// A dropped function gets a fresh handle on next use.
	if c.For(f) == nil || c.Len() != 2 {
		t.Errorf("Len after re-For = %d, want 2", c.Len())
	}

	c.DropAll()
	if c.Len() != 0 {
		t.Errorf("Len after DropAll = %d, want 0", c.Len())
	}
	if c.Drops() != 3 {
		t.Errorf("Drops after DropAll = %d, want 3", c.Drops())
	}

	var nilCache *analysis.Cache
	nilCache.Drop(f) // must not panic
	nilCache.DropAll()
	if nilCache.Drops() != 0 {
		t.Error("nil cache Drops != 0")
	}
}
