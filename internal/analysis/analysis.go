// Package analysis is the shared per-function analysis layer of the
// placement pipeline. Every consumer of liveness, dominators, natural
// loops, the program structure tree, or the shrink-wrap seed sets —
// placement (internal/strategy, internal/shrinkwrap, internal/core),
// profiling (internal/profile), the facade (spillopt), the evaluation
// harness (internal/bench), and the differential oracle
// (internal/irgen) — obtains them through an Info handle instead of
// rebuilding them, so comparing all five strategies from one
// allocation builds each analysis at most once per function.
//
// Contract:
//
//   - Accessors are lazily memoized and safe for concurrent use on one
//     Info. Results are shared: callers must treat them as read-only.
//   - Results describe the function as it was when the accessor first
//     ran. Any pass that mutates the function (core.Apply, register
//     allocation) must call Invalidate before the next read, and must
//     not run concurrently with readers of the same function — the
//     same per-function isolation the parallel pipeline already
//     guarantees.
//   - A new analysis joins the layer by adding one memoized accessor
//     here and a line to Invalidate; every consumer then shares it.
package analysis

import (
	"sync"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/pst"
	"repro/internal/shrinkwrap"
)

// Counts reports how many times each underlying analysis has been
// built over the Info's lifetime (cumulative across invalidations).
// The tests use it to pin the "at most once per function" guarantee.
//
// SplitDom counts how often the PST builder computed the split-graph
// dominator/postdominator tree pair — the expensive core of a PST
// build, memoized across invalidations while the CFG shape is
// unchanged, so it can stay flat even when PST advances. DeltaPatched
// and DeltaFull count ApplyDelta outcomes: in-place patches versus
// falls back to full invalidation.
type Counts struct {
	Liveness, Dom, Loops, PST, Seed, Busy int

	SplitDom     int
	DeltaPatched int
	DeltaFull    int
}

// Info is a per-function handle over the memoized analyses.
type Info struct {
	f *ir.Func

	mu      sync.Mutex
	lv      *dataflow.Liveness
	dom     *cfg.DomTree
	loops   *cfg.LoopForest
	tree    *pst.PST
	treeOK  bool // tree+treeErr memoized
	treeErr error
	seed    []*core.Set
	seedOK  bool
	busy    map[ir.Reg][]bool
	counts  Counts

	// builder survives Invalidate: it revalidates itself against the
	// live CFG shape, so a PST rebuild after an invalidation that did
	// not change the CFG (e.g. register allocation) reuses the
	// memoized split-graph dominator trees instead of recomputing.
	builder *pst.Builder
}

// For returns a fresh handle for f with nothing memoized. Callers that
// want cross-call sharing should hold on to the Info (or use a Cache);
// a throwaway For(f) per call reproduces the unshared behavior.
func For(f *ir.Func) *Info { return &Info{f: f} }

// Func returns the function the handle analyzes.
func (i *Info) Func() *ir.Func { return i.f }

// Liveness returns the function's per-block live-in/out sets.
func (i *Info) Liveness() *dataflow.Liveness {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.livenessLocked()
}

func (i *Info) livenessLocked() *dataflow.Liveness {
	if i.lv == nil {
		i.counts.Liveness++
		i.lv = dataflow.ComputeLiveness(i.f)
	}
	return i.lv
}

// Dom returns the dominator tree rooted at the entry.
func (i *Info) Dom() *cfg.DomTree {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.domLocked()
}

func (i *Info) domLocked() *cfg.DomTree {
	if i.dom == nil {
		i.counts.Dom++
		i.dom = cfg.Dominators(i.f)
	}
	return i.dom
}

// Loops returns the natural loop forest.
func (i *Info) Loops() *cfg.LoopForest {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.loopsLocked()
}

func (i *Info) loopsLocked() *cfg.LoopForest {
	if i.loops == nil {
		i.counts.Loops++
		i.loops = cfg.FindLoops(i.f, i.domLocked())
	}
	return i.loops
}

// PST returns the program structure tree of maximal SESE regions. The
// build error, if any, is memoized too. Builds go through a retained
// pst.Builder, so the split-graph dominator trees are recomputed only
// when the CFG shape actually changed (Counts.SplitDom tracks this).
func (i *Info) PST() (*pst.PST, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.pstLocked()
}

func (i *Info) pstLocked() (*pst.PST, error) {
	if !i.treeOK {
		i.counts.PST++
		if i.builder == nil {
			i.builder = pst.NewBuilder(i.f)
		}
		i.tree, i.treeErr = i.builder.Build()
		i.counts.SplitDom = i.builder.SplitDomBuilds()
		i.treeOK = true
	}
	return i.tree, i.treeErr
}

// ShrinkwrapSeed returns the paper's modified shrink-wrapping seed
// sets (spill code may sit on jump edges), the hierarchical
// algorithm's starting point. The sets are shared — callers must not
// mutate them; core.Hierarchical and core.Apply never do.
func (i *Info) ShrinkwrapSeed() []*core.Set {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.seedOK {
		i.counts.Seed++
		i.seed = shrinkwrap.ComputeWith(i.f, shrinkwrap.Seed, shrinkwrap.Inputs{
			Liveness: i.livenessLocked(),
			Busy:     i.busyLocked,
		})
		i.seedOK = true
	}
	return i.seed
}

// BusyBlocks returns the blocks where reg is busy (referenced, or
// carrying a live allocated value) — the per-register mask both
// shrink-wrap modes grow their regions from. The slice is shared and
// read-only.
func (i *Info) BusyBlocks(reg ir.Reg) []bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.busyLocked(reg)
}

func (i *Info) busyLocked(reg ir.Reg) []bool {
	m, ok := i.busy[reg]
	if !ok {
		i.counts.Busy++
		if i.busy == nil {
			i.busy = make(map[ir.Reg][]bool)
		}
		m = shrinkwrap.BusyBlocks(i.f, reg, i.livenessLocked())
		i.busy[reg] = m
	}
	return m
}

// Invalidate drops every memoized result. Call it after any pass
// mutates the function (core.Apply, register allocation); the next
// accessor call recomputes against the new shape. Counts are
// cumulative and survive invalidation.
func (i *Info) Invalidate() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.invalidateLocked()
}

func (i *Info) invalidateLocked() {
	i.lv, i.dom, i.loops = nil, nil, nil
	i.tree, i.treeErr, i.treeOK = nil, nil, false
	i.seed, i.seedOK = nil, false
	i.busy = nil
	// i.builder is kept: it self-validates against the CFG shape, so a
	// stale memo can never be served, and an invalidation that did not
	// touch the CFG gets its PST back without a dominator recompute.
}

// Counts returns the cumulative build counters.
func (i *Info) Counts() Counts {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts
}
