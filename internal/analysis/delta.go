package analysis

import (
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/pst"
)

// ApplyDelta incrementally re-validates the memoized analyses after an
// edit described by d (normally the delta core.ApplyWithDelta returned
// for this function). Every analysis that was already built is patched
// in place — the liveness sets, the dominator tree, and the loop
// forest — and the PST is patched through the retained builder while
// its memo still describes the pre-edit CFG. The shrink-wrap seed and
// the busy masks are always dropped: they derive from the edited
// instructions and recompute lazily from the patched liveness, so no
// build counter they share with a cold run is saved, but no stale set
// is ever served either.
//
// ApplyDelta reports whether it recognized the edit. On any
// unrecognized shape — nil delta, d.Full, a delta for a different
// function, or a patcher rejecting the edit — it falls back to a full
// Invalidate and reports false; the handle is always safe to keep
// using. Counts.DeltaPatched and Counts.DeltaFull record the outcomes.
//
// Like Invalidate, ApplyDelta must not run concurrently with readers
// of the same function.
func (i *Info) ApplyDelta(d *core.Delta) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if d == nil || d.Full || d.Func != i.f {
		i.counts.DeltaFull++
		i.invalidateLocked()
		return false
	}
	f := i.f
	// With no edge splits the edit was purely in-block, so every block
	// must have kept its ID; anything else is an unrecognized shape.
	if len(d.Splits) == 0 {
		for _, b := range f.Blocks {
			if id, ok := d.OldID[b]; !ok || id != b.ID {
				i.counts.DeltaFull++
				i.invalidateLocked()
				return false
			}
		}
	}

	ok := true
	if i.lv != nil {
		newTo := make(map[*ir.Block]*ir.Block, len(d.Splits))
		for _, s := range d.Splits {
			newTo[s.NewBlock] = s.To
		}
		dirty := make([]*ir.Block, 0, len(d.HeadBlocks)+len(d.TailBlocks))
		dirty = append(dirty, d.HeadBlocks...)
		dirty = append(dirty, d.TailBlocks...)
		ok = i.lv.PatchApply(f, d.OldID, newTo, dirty, d.Regs)
	}
	if ok && (i.dom != nil || i.loops != nil) {
		splits := make([]cfg.EdgeSplit, len(d.Splits))
		for k, s := range d.Splits {
			splits[k] = cfg.EdgeSplit{From: s.From, To: s.To, NewBlock: s.NewBlock}
		}
		if i.dom != nil {
			ok = i.dom.PatchEdgeSplits(f, d.OldID, splits)
		}
		if ok && i.loops != nil {
			ok = i.loops.PatchEdgeSplits(f, d.OldID, splits)
		}
	}
	if !ok {
		i.counts.DeltaFull++
		i.invalidateLocked()
		return false
	}

	// The PST patch consumes the builder memo; when it cannot run
	// (memoized build error, already-consumed memo, rejected edit) only
	// the tree is dropped — the patched liveness/dom/loops stand, and
	// the next PST() rebuilds against the live CFG.
	if i.treeOK && len(d.Splits) > 0 {
		patched := false
		if i.treeErr == nil && i.tree != nil && i.builder != nil {
			splits := make([]pst.EdgeSplit, len(d.Splits))
			for k, s := range d.Splits {
				splits[k] = pst.EdgeSplit{
					From: s.From, To: s.To, NewBlock: s.NewBlock,
					OldEdge: s.OldEdge, FromEdge: s.FromEdge, ToEdge: s.ToEdge,
				}
			}
			patched = i.builder.Patch(i.tree, d.OldID, splits)
		}
		if !patched {
			i.tree, i.treeErr, i.treeOK = nil, nil, false
		}
	}

	i.seed, i.seedOK = nil, false
	i.busy = nil
	i.counts.DeltaPatched++
	return true
}
