package analysis_test

// Byte-identity suite for the delta path: after core.ApplyWithDelta +
// Info.ApplyDelta, every patched analysis — liveness, dominator tree,
// loop forest, PST, and the seed sets derived from them — must be
// structurally identical to a from-scratch recompute over the edited
// function, and the re-reads must perform zero full rebuilds (pinned
// via Counts). The corpus is every testdata/*.ir program plus irgen's
// random programs, whose CFGs are far wilder than the hand-written
// examples.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/pst"
	"repro/internal/regalloc"
	"repro/internal/strategy"
)

func sameBlockSlice(a, b []*ir.Block) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func compareLiveness(t *testing.T, tag string, got, want *dataflow.Liveness) {
	t.Helper()
	if len(got.In) != len(want.In) || len(got.Out) != len(want.Out) {
		t.Errorf("%s: patched liveness covers %d/%d blocks, from-scratch %d/%d",
			tag, len(got.In), len(got.Out), len(want.In), len(want.Out))
		return
	}
	for i := range got.In {
		if !got.In[i].Equal(want.In[i]) || !got.Out[i].Equal(want.Out[i]) {
			t.Errorf("%s: patched liveness differs from from-scratch at block %d", tag, i)
			return
		}
	}
}

func compareDom(t *testing.T, tag string, got, want *cfg.DomTree) {
	t.Helper()
	if len(got.IDom) != len(want.IDom) {
		t.Errorf("%s: patched dom tree covers %d blocks, from-scratch %d", tag, len(got.IDom), len(want.IDom))
		return
	}
	for i := range got.IDom {
		if got.IDom[i] != want.IDom[i] {
			t.Errorf("%s: patched idom of block %d differs from from-scratch", tag, i)
			return
		}
		if !sameBlockSlice(got.Children[i], want.Children[i]) {
			t.Errorf("%s: patched dom children of block %d differ from from-scratch", tag, i)
			return
		}
	}
}

func compareLoops(t *testing.T, tag string, got, want *cfg.LoopForest) {
	t.Helper()
	if len(got.Loops) != len(want.Loops) {
		t.Errorf("%s: patched forest has %d loops, from-scratch %d", tag, len(got.Loops), len(want.Loops))
		return
	}
	gi := make(map[*cfg.Loop]int, len(got.Loops))
	wi := make(map[*cfg.Loop]int, len(want.Loops))
	for i := range got.Loops {
		gi[got.Loops[i]] = i
		wi[want.Loops[i]] = i
	}
	parent := func(idx map[*cfg.Loop]int, l *cfg.Loop) int {
		if l == nil {
			return -1
		}
		return idx[l]
	}
	for i := range got.Loops {
		g, w := got.Loops[i], want.Loops[i]
		if g.Header != w.Header || g.Depth != w.Depth || !sameBlockSlice(g.Blocks, w.Blocks) ||
			parent(gi, g.Parent) != parent(wi, w.Parent) {
			t.Errorf("%s: patched loop %d differs from from-scratch (%s vs %s)", tag, i, g.Header.Name, w.Header.Name)
			return
		}
	}
	for i := range got.DepthOf {
		if got.DepthOf[i] != want.DepthOf[i] ||
			parent(gi, got.InnermostOf[i]) != parent(wi, want.InnermostOf[i]) {
			t.Errorf("%s: patched per-block loop data differs from from-scratch at block %d", tag, i)
			return
		}
	}
}

func comparePST(t *testing.T, tag string, got, want *pst.PST) {
	t.Helper()
	if len(got.Regions) != len(want.Regions) {
		t.Errorf("%s: patched PST has %d regions, from-scratch %d", tag, len(got.Regions), len(want.Regions))
		return
	}
	gi := make(map[*pst.Region]int, len(got.Regions))
	wi := make(map[*pst.Region]int, len(want.Regions))
	for i := range got.Regions {
		gi[got.Regions[i]] = i
		wi[want.Regions[i]] = i
	}
	idx := func(m map[*pst.Region]int, r *pst.Region) int {
		if r == nil {
			return -1
		}
		return m[r]
	}
	for i := range got.Regions {
		g, w := got.Regions[i], want.Regions[i]
		if g.EntryEdge != w.EntryEdge || g.ExitEdge != w.ExitEdge || g.ExitBlock != w.ExitBlock ||
			g.Depth != w.Depth || !sameBlockSlice(g.Blocks, w.Blocks) ||
			idx(gi, g.Parent) != idx(wi, w.Parent) || len(g.Children) != len(w.Children) {
			t.Errorf("%s: patched PST region %d differs from from-scratch (%v vs %v)", tag, i, g, w)
			return
		}
		for c := range g.Children {
			if idx(gi, g.Children[c]) != idx(wi, w.Children[c]) {
				t.Errorf("%s: patched PST region %d child order differs from from-scratch", tag, i)
				return
			}
		}
	}
	if idx(gi, got.Root) != idx(wi, want.Root) {
		t.Errorf("%s: patched PST root differs from from-scratch", tag)
	}
}

func compareSets(t *testing.T, tag string, got, want []*core.Set) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: seed from patched liveness has %d sets, from-scratch %d", tag, len(got), len(want))
		return
	}
	sameLocs := func(a, b []core.Location) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Reg != w.Reg || g.Seed != w.Seed || !sameLocs(g.Saves, w.Saves) || !sameLocs(g.Restores, w.Restores) {
			t.Errorf("%s: seed set %d (reg %v) from patched liveness differs from from-scratch", tag, i, g.Reg)
			return
		}
	}
}

// checkIdentityAfterSets applies sets to f through the delta path and
// checks every patched analysis against a from-scratch recompute. It
// reports how many edge splits the application performed.
func checkIdentityAfterSets(t *testing.T, tag string, f *ir.Func, sets []*core.Set) int {
	t.Helper()
	info := analysis.For(f)
	info.Liveness()
	info.Dom()
	info.Loops()
	if _, err := info.PST(); err != nil {
		t.Fatalf("%s: PST: %v", tag, err)
	}
	delta, err := core.ApplyWithDelta(f, sets)
	if err != nil {
		t.Fatalf("%s: apply: %v", tag, err)
	}
	before := info.Counts()
	if !info.ApplyDelta(delta) {
		t.Fatalf("%s: ApplyDelta rejected the delta of a successful Apply", tag)
	}

	lvP, domP, loopsP := info.Liveness(), info.Dom(), info.Loops()
	treeP, errP := info.PST()
	if errP != nil {
		t.Fatalf("%s: patched PST: %v", tag, errP)
	}
	after := info.Counts()
	if after.Liveness != before.Liveness || after.Dom != before.Dom ||
		after.Loops != before.Loops || after.PST != before.PST || after.SplitDom != before.SplitDom {
		t.Errorf("%s: reading after ApplyDelta performed full rebuilds: before %+v, after %+v", tag, before, after)
	}

	lvF := dataflow.ComputeLiveness(f)
	domF := cfg.Dominators(f)
	loopsF := cfg.FindLoops(f, domF)
	treeF, errF := pst.Build(f)
	if errF != nil {
		t.Fatalf("%s: from-scratch PST: %v", tag, errF)
	}
	compareLiveness(t, tag, lvP, lvF)
	compareDom(t, tag, domP, domF)
	compareLoops(t, tag, loopsP, loopsF)
	comparePST(t, tag, treeP, treeF)
	compareSets(t, tag, info.ShrinkwrapSeed(), analysis.For(f).ShrinkwrapSeed())
	return len(delta.Splits)
}

// checkDeltaIdentity computes s's sets for f over a warmed Info, then
// runs checkIdentityAfterSets.
func checkDeltaIdentity(t *testing.T, tag string, f *ir.Func, s strategy.Strategy) int {
	t.Helper()
	if len(f.UsedCalleeSaved) == 0 {
		return 0
	}
	sets, err := strategy.Compute(f, s)
	if err != nil {
		t.Fatalf("%s: compute %v: %v", tag, s, err)
	}
	return checkIdentityAfterSets(t, tag, f, sets)
}

// TestApplyDeltaByteIdentityTestdata runs the identity check over every
// checked-in .ir program.
func TestApplyDeltaByteIdentityTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	funcs := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// One fresh parse per strategy: placement mutates the program.
		for _, s := range []strategy.Strategy{strategy.HierarchicalJump, strategy.ShrinkwrapSeed} {
			prog, err := irtext.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := profile.Collect(prog, 40); err != nil {
				t.Fatalf("%s: profile: %v", path, err)
			}
			if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
				t.Fatalf("%s: allocate: %v", path, err)
			}
			for _, f := range prog.FuncsInOrder() {
				checkDeltaIdentity(t, fmt.Sprintf("%s/%s/%v", filepath.Base(path), f.Name, s), f, s)
				funcs++
			}
		}
	}
	if funcs == 0 {
		t.Error("no functions exercised")
	}
}

// TestApplyDeltaByteIdentityGenerated runs the identity check over 300
// generated programs (every function that uses callee-saved registers).
func TestApplyDeltaByteIdentityGenerated(t *testing.T) {
	funcs, splits := 0, 0
	for _, s := range []strategy.Strategy{strategy.HierarchicalJump, strategy.ShrinkwrapSeed} {
		for seed := uint64(0); seed < 300; seed++ {
			prog := irgen.Generate(seed, irgen.Default())
			if _, err := profile.Collect(prog, 40); err != nil {
				continue // a generated program the profiler rejects is not this test's concern
			}
			if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
				continue
			}
			for _, f := range prog.FuncsInOrder() {
				if len(f.UsedCalleeSaved) == 0 {
					continue
				}
				funcs++
				splits += checkDeltaIdentity(t, fmt.Sprintf("seed%d/%s/%v", seed, f.Name, s), f, s)
			}
		}
	}
	if funcs < 100 {
		t.Fatalf("only %d generated functions exercised; corpus too small", funcs)
	}
	if splits < 5 {
		t.Errorf("only %d edges split across the corpus; the delta path was barely exercised", splits)
	}
}

// TestApplyDeltaCraftedSplits forces the interesting delta shapes that
// real placements rarely produce — multiple simultaneous splits of
// critical jump edges, including a split back edge — by applying
// hand-built OnEdge sets. core.Apply only needs the locations to be
// structurally valid, which is all this identity check requires.
func TestApplyDeltaCraftedSplits(t *testing.T) {
	src := `
main main

func leaf(v0) {
entry:
	v1 = const 3
	v2 = mul v0, v1
	ret v2
}

func main(v0) {
entry:
	v1 = const 0
	v2 = const 0
	jmp loop ; 0
loop:
	v3 = call leaf(v2)
	v1 = add v1, v3
	v4 = const 1
	v2 = add v2, v4
	v5 = cmplt v2, v0
	br v5, join, side ; 0 0
side:
	v6 = add v1, v4
	br v5, join, out ; 0 0
join:
	v7 = cmplt v2, v0
	br v7, loop, out ; 0 0
out:
	ret v1
}
`
	prog, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := profile.Collect(prog, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	if len(f.UsedCalleeSaved) == 0 {
		t.Fatal("main uses no callee-saved registers; crafted program too small")
	}
	edge := func(from, to string) *ir.Edge {
		for _, b := range f.Blocks {
			if b.Name != from {
				continue
			}
			for _, e := range b.Succs {
				if e.To.Name == to {
					return e
				}
			}
		}
		t.Fatalf("edge %s->%s not found", from, to)
		return nil
	}
	onEdge := func(e *ir.Edge) core.Location {
		if e.Kind != ir.Jump {
			t.Fatalf("edge %s->%s is not a jump edge; crafted layout broken", e.From.Name, e.To.Name)
		}
		return core.Location{Kind: core.OnEdge, Edge: e}
	}
	// Three critical jump edges: loop->join and side->out (forward)
	// and join->loop (the loop's back edge).
	reg := f.UsedCalleeSaved[0]
	sets := []*core.Set{{
		Reg:      reg,
		Saves:    []core.Location{onEdge(edge("loop", "join"))},
		Restores: []core.Location{onEdge(edge("side", "out")), onEdge(edge("join", "loop"))},
	}}
	if n := checkIdentityAfterSets(t, "crafted", f, sets); n != 3 {
		t.Errorf("crafted sets split %d edges, want 3", n)
	}
}

// TestDeltaPlacementMatchesUnshared: concurrent sharded placement over
// a shared cache (the delta path) produces byte-identical placed IR to
// the unshared serial pipeline. Run under -race, this also pins the
// thread-safety of cache+delta sharing.
func TestDeltaPlacementMatchesUnshared(t *testing.T) {
	mk := func(seed uint64) *ir.Program {
		prog := irgen.Generate(seed, irgen.Default())
		if _, err := profile.Collect(prog, 40); err != nil {
			return nil
		}
		if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
			return nil
		}
		return prog
	}
	checked := 0
	for seed := uint64(0); seed < 25; seed++ {
		a, b := mk(seed), mk(seed)
		if a == nil || b == nil {
			continue
		}
		cache := analysis.NewCache()
		if err := strategy.PlaceProgramCached(a, strategy.HierarchicalJump, 4, cache); err != nil {
			t.Fatalf("seed %d: cached placement: %v", seed, err)
		}
		if err := strategy.PlaceProgram(b, strategy.HierarchicalJump, 1); err != nil {
			t.Fatalf("seed %d: unshared placement: %v", seed, err)
		}
		if irtext.Print(a) != irtext.Print(b) {
			t.Errorf("seed %d: cached+delta placement produced different IR than the unshared pipeline", seed)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no programs checked")
	}
}

// TestApplyDeltaFallback: unrecognized deltas — nil, Full, or for
// another function — must fall back to full invalidation (reported via
// Counts.DeltaFull) and never leave stale results behind.
func TestApplyDeltaFallback(t *testing.T) {
	f := demoFunc(t)
	info := analysis.For(f)
	lv := info.Liveness()
	info.Dom()
	if info.ApplyDelta(nil) {
		t.Error("nil delta must not be patched")
	}
	if info.Liveness() == lv {
		t.Error("stale liveness served after nil-delta fallback")
	}

	lv = info.Liveness()
	if info.ApplyDelta(core.FullDelta(f)) {
		t.Error("Full delta must not be patched")
	}
	if info.Liveness() == lv {
		t.Error("stale liveness served after Full-delta fallback")
	}

	g := f.Clone()
	lv = info.Liveness()
	if info.ApplyDelta(&core.Delta{Func: g}) {
		t.Error("delta for another function must not be patched")
	}
	if info.Liveness() == lv {
		t.Error("stale liveness served after wrong-function fallback")
	}

	c := info.Counts()
	if c.DeltaFull != 3 || c.DeltaPatched != 0 {
		t.Errorf("fallback counters wrong: %+v", c)
	}
}

// TestApplyDeltaUnrecognizedNoStaleServe: when an edit's delta is
// marked unrecognizable after the function already changed shape, the
// fallback must fully invalidate so the next reads match the new CFG.
func TestApplyDeltaUnrecognizedNoStaleServe(t *testing.T) {
	f := demoFunc(t)
	info := analysis.For(f)
	info.Liveness()
	if _, err := info.PST(); err != nil {
		t.Fatal(err)
	}
	seed := info.ShrinkwrapSeed()
	delta, err := core.ApplyWithDelta(f, seed)
	if err != nil {
		t.Fatal(err)
	}
	delta.Full = true // simulate an edit Apply could not describe
	if info.ApplyDelta(delta) {
		t.Fatal("Full delta accepted")
	}
	if got, want := len(info.Liveness().In), len(f.Blocks); got != want {
		t.Errorf("liveness covers %d blocks after fallback, function has %d", got, want)
	}
	tree, err := info.PST()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tree.Root.Blocks), len(f.Blocks); got != want {
		t.Errorf("PST root covers %d blocks after fallback, function has %d", got, want)
	}
}

// TestPSTBuilderReuseAcrossInvalidate: an invalidation that does not
// change the CFG shape (register allocation rewrites instructions, not
// edges) gets its PST back without recomputing the split-graph
// dominator trees.
func TestPSTBuilderReuseAcrossInvalidate(t *testing.T) {
	f := demoFunc(t)
	info := analysis.For(f)
	t1, err := info.PST()
	if err != nil {
		t.Fatal(err)
	}
	info.Invalidate()
	t2, err := info.PST()
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("PST rebuilt although the CFG shape is unchanged")
	}
	c := info.Counts()
	if c.PST != 2 || c.SplitDom != 1 {
		t.Errorf("want 2 PST serves from 1 split-dom build, got %+v", c)
	}
}

// TestCacheStats: the shared-cache hit/miss counters that spilltune
// reports.
func TestCacheStats(t *testing.T) {
	f := demoFunc(t)
	c := analysis.NewCache()
	c.For(f)
	c.For(f)
	c.For(f)
	if h, m := c.Stats(); h != 2 || m != 1 {
		t.Errorf("Stats() = %d hits, %d misses; want 2, 1", h, m)
	}
	var nilCache *analysis.Cache
	if h, m := nilCache.Stats(); h != 0 || m != 0 {
		t.Error("nil cache must report zero stats")
	}
}
