package analysis

import (
	"sync"

	"repro/internal/ir"
)

// Cache is a program-level store of per-function Infos, shared by the
// concurrent stages of the pipeline: the par.Do sharding hands each
// worker the same Cache, and workers obtain (and invalidate) the Info
// of the function they own. For is safe for concurrent use; the Infos
// it returns carry their own locking.
type Cache struct {
	mu           sync.Mutex
	m            map[*ir.Func]*Info
	hits, misses int
	drops        int
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: make(map[*ir.Func]*Info)} }

// For returns the memoized Info for f, creating it on first use. A nil
// Cache is valid and degrades to an unshared fresh Info per call, so
// optional-cache plumbing needs no branching at call sites.
func (c *Cache) For(f *ir.Func) *Info {
	if c == nil {
		return For(f)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	info := c.m[f]
	if info == nil {
		c.misses++
		info = For(f)
		c.m[f] = info
	} else {
		c.hits++
	}
	return info
}

// Stats returns how many For lookups found an existing Info (hits)
// versus created one (misses). Tools that share one cache across
// repeated runs report these to show the sharing actually happened.
func (c *Cache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Counts sums the cumulative build counters of every memoized Info.
// With F functions in the cache and no invalidations, the per-function
// counters (Liveness, Dom, Loops, PST, Seed) are each at most F no
// matter how many strategies, cost models, or machine descriptions
// consumed the cache — the multi-machine sweep records this as its
// proof of no per-machine rebuilds. Busy is per (function, register),
// so it may legitimately exceed F; the sharing checks exclude it.
func (c *Cache) Counts() Counts {
	if c == nil {
		return Counts{}
	}
	c.mu.Lock()
	infos := make([]*Info, 0, len(c.m))
	for _, info := range c.m {
		infos = append(infos, info)
	}
	c.mu.Unlock()
	var total Counts
	for _, info := range infos {
		n := info.Counts()
		total.Liveness += n.Liveness
		total.Dom += n.Dom
		total.Loops += n.Loops
		total.PST += n.PST
		total.Seed += n.Seed
		total.Busy += n.Busy
		total.SplitDom += n.SplitDom
		total.DeltaPatched += n.DeltaPatched
		total.DeltaFull += n.DeltaFull
	}
	return total
}

// Len returns the number of memoized per-function Infos.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Drop removes f's entry from the cache entirely, so f (and the
// analyses its Info pins) can be garbage collected. Invalidate marks
// results stale but keeps the map entry alive — the right call between
// pipeline stages over the same function, and a leak in a long-lived
// process that keeps seeing new functions. Eviction policies and
// program teardown use Drop; Drops counts the removals.
func (c *Cache) Drop(f *ir.Func) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[f]; ok {
		delete(c.m, f)
		c.drops++
	}
}

// DropAll removes every entry, e.g. when a batch tool is done with a
// program and tears it down.
func (c *Cache) DropAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drops += len(c.m)
	clear(c.m)
}

// Drops returns how many entries Drop and DropAll have removed.
func (c *Cache) Drops() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drops
}

// Invalidate drops the memoized results for f, if any.
func (c *Cache) Invalidate(f *ir.Func) {
	if c == nil {
		return
	}
	c.mu.Lock()
	info := c.m[f]
	c.mu.Unlock()
	if info != nil {
		info.Invalidate()
	}
}

// InvalidateAll drops the memoized results of every function, e.g.
// after a whole-program mutation like register allocation.
func (c *Cache) InvalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	infos := make([]*Info, 0, len(c.m))
	for _, info := range c.m {
		infos = append(infos, info)
	}
	c.mu.Unlock()
	for _, info := range infos {
		info.Invalidate()
	}
}
