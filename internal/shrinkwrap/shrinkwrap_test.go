package shrinkwrap

import (
	"testing"

	"repro/internal/cfgtest"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/workload"
)

// singleColdWeb: A -> B(allocated) | C; B -> C. The register is busy
// only in B.
func singleColdWeb(t *testing.T) (*ir.Func, ir.Reg) {
	t.Helper()
	f := cfgtest.MustBuild("cold",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 10), cfgtest.E("A", "C", 90),
			cfgtest.E("B", "C", 10),
		})
	reg := ir.Phys(11)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")
	return f, reg
}

func TestSeedPlacesAroundWeb(t *testing.T) {
	f, reg := singleColdWeb(t)
	sets := Compute(f, Seed)
	if len(sets) != 1 {
		t.Fatalf("sets = %d, want 1", len(sets))
	}
	s := sets[0]
	if s.Reg != reg || !s.Seed {
		t.Errorf("set misattributed: %v", s)
	}
	// B has a single in-edge and a single out-edge: head(B)/tail(B).
	if len(s.Saves) != 1 || s.Saves[0].String() != "head(B)" {
		t.Errorf("saves = %v, want head(B)", s.Saves)
	}
	if len(s.Restores) != 1 || s.Restores[0].String() != "tail(B)" {
		t.Errorf("restores = %v, want tail(B)", s.Restores)
	}
	if got := core.SetCost(core.ExecCountModel{}, s); got != 20 {
		t.Errorf("cost = %d, want 20", got)
	}
}

func TestOriginalEqualsSeedWithoutLoopsOrJumps(t *testing.T) {
	// No loops, and the web's boundaries normalize in-block, so the
	// original technique needs no artificial data flow here.
	f, _ := singleColdWeb(t)
	seed := Compute(f, Seed)
	orig := Compute(f, Original)
	if core.TotalCost(core.ExecCountModel{}, seed) != core.TotalCost(core.ExecCountModel{}, orig) {
		t.Errorf("seed %d != original %d on a clean web",
			core.TotalCost(core.ExecCountModel{}, seed),
			core.TotalCost(core.ExecCountModel{}, orig))
	}
}

func TestLoopMasking(t *testing.T) {
	// A -> H; H -> B -> H (back edge); H -> X. Allocation in B (the
	// loop body). The original technique must push the save/restore
	// outside the loop; the seed keeps them at the loop-body edges.
	f := cfgtest.MustBuild("loopalloc",
		[]string{"A", "H", "B", "X"},
		[]cfgtest.Edge{
			cfgtest.E("A", "H", 10),
			cfgtest.E("H", "B", 90), cfgtest.E("B", "H", 90),
			cfgtest.E("H", "X", 10),
		})
	reg := ir.Phys(11)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")

	seed := Compute(f, Seed)
	seedCost := core.TotalCost(core.ExecCountModel{}, seed)
	if seedCost != 180 {
		t.Errorf("seed cost = %d, want 180 (90 in + 90 out)", seedCost)
	}

	orig := Compute(f, Original)
	origCost := core.TotalCost(core.ExecCountModel{}, orig)
	// Masking makes H and B busy; the placement moves to the loop
	// boundary: save on A->H (head of H... H has two preds, A and B;
	// B is busy so only A->H is entering, realized as tail(A) since A
	// has a single successor... A->H is A's only edge) and restore on
	// H->X.
	if origCost != 20 {
		for _, s := range orig {
			t.Logf("  %v", s)
		}
		t.Errorf("original cost = %d, want 20 (outside the loop)", origCost)
	}
	// Nothing inside the loop.
	for _, s := range orig {
		for _, l := range s.Locations() {
			switch l.Kind {
			case core.BlockHead, core.BlockTail:
				if l.Block.Name == "B" {
					t.Errorf("original placed %v inside the loop", l)
				}
			}
		}
	}
}

func TestOriginalAvoidsJumpEdges(t *testing.T) {
	fig := workload.NewFigure2()
	sets := Compute(fig.Func, Original)
	for _, s := range sets {
		for _, l := range s.Locations() {
			if l.NeedsJumpBlock() {
				t.Errorf("original shrink-wrapping placed %v on a jump edge", l)
			}
		}
	}
	// The seed, in contrast, does use the D->F jump edge.
	seed := Compute(fig.Func, Seed)
	found := false
	for _, s := range seed {
		for _, l := range s.Locations() {
			if l.NeedsJumpBlock() {
				found = true
			}
		}
	}
	if !found {
		t.Error("seed should place the D->F restore on the jump edge")
	}
}

func TestMultiExitRestores(t *testing.T) {
	// A(allocated) -> B(ret) and A -> C(ret). A single restore at the
	// tail of A covers both exit paths; that is tighter than one
	// restore per exit and must validate.
	f := cfgtest.MustBuild("multi",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 40), cfgtest.E("A", "C", 60)})
	reg := ir.Phys(11)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "A")

	sets := Compute(f, Seed)
	if len(sets) != 1 {
		t.Fatalf("sets = %d, want 1", len(sets))
	}
	s := sets[0]
	if len(s.Saves) != 1 || s.Saves[0].String() != "head(A)" {
		t.Errorf("saves = %v", s.Saves)
	}
	if len(s.Restores) != 1 || s.Restores[0].String() != "tail(A)" {
		t.Errorf("restores = %v, want tail(A) covering both exits", s.Restores)
	}
	if err := core.ValidateSets(f, sets); err != nil {
		t.Errorf("placement invalid: %v", err)
	}

	// When the allocation extends into one exit block, that exit gets
	// its own in-block restore.
	g := cfgtest.MustBuild("multi2",
		[]string{"A", "B", "C"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 40), cfgtest.E("A", "C", 60)})
	g.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(g, reg, "A", "B")
	gsets := Compute(g, Seed)
	if err := core.ValidateSets(g, gsets); err != nil {
		t.Errorf("multi2 placement invalid: %v", err)
	}
	foundExitRestore := false
	for _, s := range gsets {
		for _, l := range s.Restores {
			if l.String() == "tail(B)" {
				foundExitRestore = true
			}
		}
	}
	if !foundExitRestore {
		t.Errorf("expected a restore at tail(B): %v", gsets)
	}
}

func TestDisjointWebsSeparateSets(t *testing.T) {
	// Two disjoint allocated regions for the same register form two
	// independent save/restore sets.
	f := cfgtest.MustBuild("twowebs",
		[]string{"A", "B", "C", "D", "E"},
		[]cfgtest.Edge{
			cfgtest.E("A", "B", 30), cfgtest.E("A", "C", 70),
			cfgtest.E("B", "C", 30),
			cfgtest.E("C", "D", 50), cfgtest.E("C", "E", 50),
			cfgtest.E("D", "E", 50),
		})
	reg := ir.Phys(11)
	f.UsedCalleeSaved = []ir.Reg{reg}
	workload.AllocateGroup(f, reg, "B")
	workload.AllocateGroup(f, reg, "D")

	sets := Compute(f, Seed)
	if len(sets) != 2 {
		t.Fatalf("sets = %d, want 2 (disjoint webs)", len(sets))
	}
	if err := core.ValidateSets(f, sets); err != nil {
		t.Errorf("placement invalid: %v", err)
	}
}

func TestNoUsageNoSets(t *testing.T) {
	f := cfgtest.MustBuild("clean",
		[]string{"A", "B"},
		[]cfgtest.Edge{cfgtest.E("A", "B", 1)})
	f.UsedCalleeSaved = []ir.Reg{ir.Phys(11)}
	sets := Compute(f, Seed)
	if len(sets) != 0 {
		t.Errorf("sets = %v, want none for an unused register", sets)
	}
}

func TestModeString(t *testing.T) {
	if Seed.String() != "shrinkwrap-seed" || Original.String() != "shrinkwrap-original" {
		t.Error("mode names wrong")
	}
}
