// Package shrinkwrap implements Chow's shrink-wrapping placement of
// callee-saved save/restore code (PLDI'88), in two modes:
//
//   - Original: Chow's published technique. Artificial data flow is
//     propagated through loop bodies so spill code never lands inside
//     a loop, and whenever the analysis would place spill code on a
//     jump edge, artificial data flow is propagated along that edge
//     and the analysis reiterated, so no spill code ever requires a
//     jump block.
//   - Seed: the paper's modified variant used to seed the hierarchical
//     algorithm: no artificial data flow at all; spill code may sit on
//     jump edges.
//
// Both modes return save/restore sets grouped web-style: one set per
// connected region of blocks where the register is busy (referenced,
// or carrying a live allocated value).
package shrinkwrap

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Mode selects the algorithm variant.
type Mode int

const (
	// Seed is the paper's modified shrink-wrapping (section 4).
	Seed Mode = iota
	// Original is Chow's technique with artificial data flow.
	Original
)

// String names the mode.
func (m Mode) String() string {
	if m == Original {
		return "shrinkwrap-original"
	}
	return "shrinkwrap-seed"
}

// Inputs optionally carries prebuilt analyses so a caller that already
// holds them (the shared analysis layer, internal/analysis) does not
// pay for a rebuild. Nil fields are computed on demand.
type Inputs struct {
	// Liveness is the function's liveness solution.
	Liveness *dataflow.Liveness
	// Loops is the natural loop forest (consumed by Original mode
	// only).
	Loops *cfg.LoopForest
	// Busy, if non-nil, supplies the per-register busy-block mask. The
	// returned slice is treated as read-only: Original mode copies it
	// before propagating artificial data flow.
	Busy func(ir.Reg) []bool
	// Machine, if non-nil, supplies the cost surface Original mode's
	// jump-edge rule reads: Chow reiterates with artificial data flow
	// precisely because a jump block costs a taken jump, so on a
	// machine whose cost surface prices that jump at zero the
	// reiteration is skipped and spill code may stay on jump edges.
	// Nil means the paper's machine (unit costs), which always
	// reiterates.
	Machine *machine.Desc
}

// Compute returns the save/restore sets for every register in
// f.UsedCalleeSaved under the chosen mode. Jump-cost sharers are
// stamped on the result (relevant to the jump-edge cost model).
func Compute(f *ir.Func, mode Mode) []*core.Set {
	return ComputeWith(f, mode, Inputs{})
}

// ComputeWith is Compute over caller-provided analyses.
func ComputeWith(f *ir.Func, mode Mode, in Inputs) []*core.Set {
	lv := in.Liveness
	if lv == nil {
		lv = dataflow.ComputeLiveness(f)
	}
	loops := in.Loops
	if mode == Original && loops == nil {
		dom := cfg.Dominators(f)
		loops = cfg.FindLoops(f, dom)
	}
	var sets []*core.Set
	for _, reg := range f.UsedCalleeSaved {
		var busy []bool
		owned := true
		if in.Busy != nil {
			busy = in.Busy(reg)
			owned = false
		} else {
			busy = BusyBlocks(f, reg, lv)
		}
		sets = append(sets, computeReg(f, reg, mode, busy, owned, loops, jumpsCost(in.Machine))...)
	}
	core.AssignJumpSharers(sets)
	return sets
}

// jumpsCost reports whether the machine charges anything for the jump
// a jump block adds (nil means the paper's unit-cost machine, which
// does).
func jumpsCost(d *machine.Desc) bool {
	return d == nil || d.Costs.JumpCost() > 0
}

// computeReg runs the analysis for one register. busy is the
// register's busy-block mask; owned reports whether computeReg may
// mutate it in place (Original mode propagates artificial data flow
// through it). avoidJumps carries the machine's verdict on whether a
// jump block costs anything; when it does not, Original mode skips the
// jump-edge reiteration.
func computeReg(f *ir.Func, reg ir.Reg, mode Mode, busy []bool, owned bool, loops *cfg.LoopForest, avoidJumps bool) []*core.Set {
	if mode == Original {
		if !owned {
			busy = append([]bool(nil), busy...)
		}
		for {
			maskLoops(f, busy, loops)
			sets := placeSets(f, reg, busy, mode)
			if !avoidJumps || !propagateJumpEdges(sets, busy) {
				return sets
			}
			// Artificial data flow was added; reiterate.
		}
	}
	return placeSets(f, reg, busy, mode)
}

// BusyBlocks marks blocks where the register is busy: it is referenced
// by an instruction, or the allocated value is live into the block
// (covering gap blocks between a definition and a later use).
func BusyBlocks(f *ir.Func, reg ir.Reg, lv *dataflow.Liveness) []bool {
	busy := make([]bool, len(f.Blocks))
	var buf []ir.Reg
	for _, b := range f.Blocks {
		if lv.In[b.ID].Has(int(reg)) {
			busy[b.ID] = true
			continue
		}
		for _, in := range b.Instrs {
			if in.Def() == reg {
				busy[b.ID] = true
				break
			}
			found := false
			for _, u := range in.Uses(buf[:0]) {
				if u == reg {
					found = true
					break
				}
			}
			if found {
				busy[b.ID] = true
				break
			}
		}
	}
	return busy
}

// maskLoops propagates artificial data flow through loop bodies: if
// any block of a natural loop is busy, every block of the loop becomes
// busy, so no save or restore is ever placed inside the loop. Nested
// loops are handled by iterating to a fixpoint.
func maskLoops(f *ir.Func, busy []bool, loops *cfg.LoopForest) {
	changed := true
	for changed {
		changed = false
		for _, l := range loops.Loops {
			any := false
			for _, b := range l.Blocks {
				if busy[b.ID] {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			for _, b := range l.Blocks {
				if !busy[b.ID] {
					busy[b.ID] = true
					changed = true
				}
			}
		}
	}
}

// propagateJumpEdges checks whether any location requires a jump block
// (spill code on a jump edge proper). If so, it propagates artificial
// data flow along those edges — a save's source block or a restore's
// target block becomes busy — and reports true so the caller
// reiterates the analysis.
func propagateJumpEdges(sets []*core.Set, busy []bool) bool {
	changed := false
	for _, s := range sets {
		for _, l := range s.Saves {
			if l.NeedsJumpBlock() && !busy[l.Edge.From.ID] {
				busy[l.Edge.From.ID] = true
				changed = true
			}
		}
		for _, l := range s.Restores {
			if l.NeedsJumpBlock() && !busy[l.Edge.To.ID] {
				busy[l.Edge.To.ID] = true
				changed = true
			}
		}
	}
	return changed
}

// placeSets computes, for each connected busy component, the save
// locations on edges entering it and restore locations on edges
// leaving it, normalized to block head/tail form where all edges of a
// block participate.
func placeSets(f *ir.Func, reg ir.Reg, busy []bool, mode Mode) []*core.Set {
	comp := components(f, busy)
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	sets := make([]*core.Set, nComp)
	for i := range sets {
		sets[i] = &core.Set{Reg: reg, Seed: mode == Seed}
	}

	for _, b := range f.Blocks {
		ci := comp[b.ID]
		if ci < 0 {
			continue
		}
		s := sets[ci]
		// Saves: edges entering the component.
		if len(b.Preds) == 0 {
			// Procedure entry is busy: save at its head.
			s.Saves = append(s.Saves, core.HeadLoc(b))
		} else {
			allOutside := true
			for _, e := range b.Preds {
				if comp[e.From.ID] == ci {
					allOutside = false
					break
				}
			}
			if allOutside {
				s.Saves = append(s.Saves, core.HeadLoc(b))
			} else {
				for _, e := range b.Preds {
					if comp[e.From.ID] != ci {
						s.Saves = append(s.Saves, core.EdgeLoc(e))
					}
				}
			}
		}
		// Restores: edges leaving the component, or procedure exit.
		if b.IsExit() {
			s.Restores = append(s.Restores, core.TailLoc(b))
			continue
		}
		allOutside := true
		anyOutside := false
		for _, e := range b.Succs {
			if comp[e.To.ID] == ci {
				allOutside = false
			} else {
				anyOutside = true
			}
		}
		if !anyOutside {
			continue
		}
		if allOutside {
			s.Restores = append(s.Restores, core.TailLoc(b))
		} else {
			for _, e := range b.Succs {
				if comp[e.To.ID] != ci {
					s.Restores = append(s.Restores, core.EdgeLoc(e))
				}
			}
		}
	}

	// Drop empty sets (no busy blocks) and order deterministically.
	out := sets[:0]
	for _, s := range sets {
		if len(s.Saves) > 0 || len(s.Restores) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return firstLocID(out[i]) < firstLocID(out[j]) })
	return out
}

func firstLocID(s *core.Set) int {
	min := 1 << 30
	for _, l := range s.Locations() {
		id := 0
		switch l.Kind {
		case core.BlockHead, core.BlockTail:
			id = l.Block.ID
		case core.OnEdge:
			id = l.Edge.To.ID
		}
		if id < min {
			min = id
		}
	}
	return min
}

// components labels each busy block with a component index (-1 for
// non-busy blocks). Two busy blocks connected by a CFG edge are in the
// same component.
func components(f *ir.Func, busy []bool) []int {
	comp := make([]int, len(f.Blocks))
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for _, b := range f.Blocks {
		if !busy[b.ID] || comp[b.ID] >= 0 {
			continue
		}
		// Flood fill.
		comp[b.ID] = next
		stack := []*ir.Block{b}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range x.Succs {
				if busy[e.To.ID] && comp[e.To.ID] < 0 {
					comp[e.To.ID] = next
					stack = append(stack, e.To)
				}
			}
			for _, e := range x.Preds {
				if busy[e.From.ID] && comp[e.From.ID] < 0 {
					comp[e.From.ID] = next
					stack = append(stack, e.From)
				}
			}
		}
		next++
	}
	return comp
}
