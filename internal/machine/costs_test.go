package machine

import "testing"

// TestZeroCostsAreUnit: a Desc built without explicit costs (every
// pre-existing constructor, machine.Small in tests) must price exactly
// like the paper's machine.
func TestZeroCostsAreUnit(t *testing.T) {
	var c Costs
	if c.StoreCost() != 1 || c.LoadCost() != 1 || c.JumpCost() != 1 || c.FallCost() != 0 {
		t.Errorf("zero Costs price st%d/ld%d/j%d/ft%d, want 1/1/1/0",
			c.StoreCost(), c.LoadCost(), c.JumpCost(), c.FallCost())
	}
	if u := UnitCosts(); u.StoreCost() != 1 || u.LoadCost() != 1 || u.JumpCost() != 1 {
		t.Error("UnitCosts is not unit")
	}
}

// TestExplicitZeroHonored: once any field is set, zeros elsewhere are
// literal — a machine may genuinely price jumps at zero.
func TestExplicitZeroHonored(t *testing.T) {
	c := Costs{SpillStore: 4, SpillLoad: 4}
	if c.JumpCost() != 0 {
		t.Errorf("explicit jump cost 0 priced as %d", c.JumpCost())
	}
	if c.StoreCost() != 4 || c.LoadCost() != 4 {
		t.Errorf("store/load = %d/%d, want 4/4", c.StoreCost(), c.LoadCost())
	}
}

// TestDualIssueRounding: pairing halves spill latency, rounding up.
func TestDualIssueRounding(t *testing.T) {
	c := Costs{SpillStore: 3, SpillLoad: 4, JumpTaken: 2, DualIssue: true}
	if c.StoreCost() != 2 {
		t.Errorf("paired store latency = %d, want 2 (ceil 3/2)", c.StoreCost())
	}
	if c.LoadCost() != 2 {
		t.Errorf("paired load latency = %d, want 2", c.LoadCost())
	}
	if c.JumpCost() != 2 {
		t.Error("dual issue must not discount the jump penalty")
	}
}

// TestPresets: every preset resolves by name, shares the PA-RISC
// register file, and the classic preset is the paper's machine.
func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) < 4 {
		t.Fatalf("%d presets, want at least 4", len(ps))
	}
	if !SameRegisterFile(ps) {
		t.Fatal("presets do not share one register file")
	}
	ref := PARISC()
	for _, d := range ps {
		got, err := Preset(d.Name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", d.Name, err)
		}
		if got.Name != d.Name || got.Costs != d.Costs {
			t.Errorf("Preset(%q) round-trip mismatch", d.Name)
		}
		if d.NumRegs != ref.NumRegs || d.CalleeSavedFrom != ref.CalleeSavedFrom {
			t.Errorf("%s: register file differs from PA-RISC", d.Name)
		}
	}
	classic := ps[0]
	if classic.Name != "classic" || classic.Costs != UnitCosts() {
		t.Errorf("first preset = %s %v, want classic with unit costs", classic.Name, classic.Costs)
	}
	if _, err := Preset("vliw-9000"); err == nil {
		t.Error("unknown preset did not error")
	}
}

// TestParsePresets: comma lists, "all", dedup, order, and errors.
func TestParsePresets(t *testing.T) {
	all, err := ParsePresets("all")
	if err != nil || len(all) != len(Presets()) {
		t.Fatalf("ParsePresets(all) = %d presets, err %v", len(all), err)
	}
	two, err := ParsePresets("deep-pipeline, classic ,classic")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "classic" || two[1].Name != "deep-pipeline" {
		t.Errorf("ParsePresets kept %v, want [classic deep-pipeline] in report order", names(two))
	}
	if _, err := ParsePresets("classic,nope"); err == nil {
		t.Error("unknown name in list did not error")
	}
}

func names(ds []*Desc) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// TestEstimateParamsDefault: unset estimator parameters fall back to
// the repository default; set ones are honored.
func TestEstimateParamsDefault(t *testing.T) {
	d := PARISC()
	if d.EstimateParams() != DefaultEstimate {
		t.Errorf("default estimate = %+v, want %+v", d.EstimateParams(), DefaultEstimate)
	}
	d.Estimate = EstimateParams{BaseScale: 7, LoopFactor: 3}
	if d.EstimateParams().BaseScale != 7 || d.EstimateParams().LoopFactor != 3 {
		t.Error("explicit estimate parameters not honored")
	}
}
