// Package machine describes the target processor model. The paper's
// experiments target a PA-RISC with 24 general purpose registers
// available for allocation, 13 of them callee-saved; the default
// description here matches those parameters.
package machine

import (
	"fmt"

	"repro/internal/ir"
)

// Desc describes a register file, calling convention, and cost
// surface.
type Desc struct {
	// Name identifies the machine in reports ("" for ad-hoc
	// descriptions like the test-only Small machines).
	Name string
	// Costs prices compiler-inserted overhead on this machine. The
	// zero value means the paper's unit costs; see Costs.
	Costs Costs
	// Estimate parameterizes static profile estimation for this
	// machine's compiler (profile.EstimateMachine). The zero value
	// means DefaultEstimate.
	Estimate EstimateParams
	// NumRegs is the number of allocatable general purpose registers.
	NumRegs int
	// CalleeSavedFrom is the first callee-saved register number;
	// registers [CalleeSavedFrom, NumRegs) are callee-saved and
	// registers [0, CalleeSavedFrom) are caller-saved.
	CalleeSavedFrom int
	// ArgRegs are the caller-saved registers used to pass arguments.
	ArgRegs []ir.Reg
	// RetReg is the caller-saved register holding a call's result.
	RetReg ir.Reg
}

// PARISC returns the paper's machine: 24 allocatable GPRs, 13 of them
// callee-saved (r11..r23), arguments in r0..r3, result in r0.
func PARISC() *Desc {
	d := &Desc{Name: "pa-risc", NumRegs: 24, CalleeSavedFrom: 11, RetReg: ir.Phys(0)}
	for i := 0; i < 4; i++ {
		d.ArgRegs = append(d.ArgRegs, ir.Phys(i))
	}
	return d
}

// Small returns a tiny machine useful for forcing spills in tests:
// n allocatable registers with the top k callee-saved, arguments in
// up to two caller-saved registers.
func Small(n, k int) *Desc {
	if k >= n {
		panic(fmt.Sprintf("machine.Small(%d,%d): need at least one caller-saved register", n, k))
	}
	d := &Desc{NumRegs: n, CalleeSavedFrom: n - k, RetReg: ir.Phys(0)}
	for i := 0; i < 2 && i < n-k; i++ {
		d.ArgRegs = append(d.ArgRegs, ir.Phys(i))
	}
	return d
}

// IsCalleeSaved reports whether r is a callee-saved register.
func (d *Desc) IsCalleeSaved(r ir.Reg) bool {
	return r.IsPhys() && r.PhysNum() >= d.CalleeSavedFrom && r.PhysNum() < d.NumRegs
}

// IsCallerSaved reports whether r is a caller-saved register.
func (d *Desc) IsCallerSaved(r ir.Reg) bool {
	return r.IsPhys() && r.PhysNum() < d.CalleeSavedFrom
}

// CalleeSaved returns the callee-saved registers in ascending order.
func (d *Desc) CalleeSaved() []ir.Reg {
	out := make([]ir.Reg, 0, d.NumRegs-d.CalleeSavedFrom)
	for i := d.CalleeSavedFrom; i < d.NumRegs; i++ {
		out = append(out, ir.Phys(i))
	}
	return out
}

// CallerSaved returns the caller-saved registers in ascending order.
func (d *Desc) CallerSaved() []ir.Reg {
	out := make([]ir.Reg, 0, d.CalleeSavedFrom)
	for i := 0; i < d.CalleeSavedFrom; i++ {
		out = append(out, ir.Phys(i))
	}
	return out
}

// NumCalleeSaved returns the count of callee-saved registers.
func (d *Desc) NumCalleeSaved() int { return d.NumRegs - d.CalleeSavedFrom }
