package machine

import (
	"testing"

	"repro/internal/ir"
)

func TestPARISC(t *testing.T) {
	d := PARISC()
	if d.NumRegs != 24 {
		t.Errorf("NumRegs = %d, want 24 (the paper's PA-RISC)", d.NumRegs)
	}
	if d.NumCalleeSaved() != 13 {
		t.Errorf("callee-saved = %d, want 13", d.NumCalleeSaved())
	}
	if len(d.CallerSaved())+len(d.CalleeSaved()) != d.NumRegs {
		t.Error("register classes must partition the register file")
	}
	for _, r := range d.CalleeSaved() {
		if !d.IsCalleeSaved(r) || d.IsCallerSaved(r) {
			t.Errorf("%v misclassified", r)
		}
	}
	for _, r := range d.CallerSaved() {
		if !d.IsCallerSaved(r) || d.IsCalleeSaved(r) {
			t.Errorf("%v misclassified", r)
		}
	}
	// Argument and return registers must be caller-saved: the callee
	// writes them before any save could run.
	if !d.IsCallerSaved(d.RetReg) {
		t.Error("return register must be caller-saved")
	}
	for _, r := range d.ArgRegs {
		if !d.IsCallerSaved(r) {
			t.Errorf("argument register %v must be caller-saved", r)
		}
	}
}

func TestSmall(t *testing.T) {
	d := Small(4, 2)
	if d.NumRegs != 4 || d.NumCalleeSaved() != 2 {
		t.Errorf("Small(4,2) = %d/%d", d.NumRegs, d.NumCalleeSaved())
	}
	if !d.IsCalleeSaved(ir.Phys(2)) || !d.IsCalleeSaved(ir.Phys(3)) {
		t.Error("top registers should be callee-saved")
	}
	if d.IsCalleeSaved(ir.Phys(1)) {
		t.Error("r1 should be caller-saved")
	}
	// Virtual registers are in no class.
	if d.IsCalleeSaved(ir.Virt(0)) || d.IsCallerSaved(ir.Virt(0)) {
		t.Error("virtual registers have no save class")
	}
}

func TestSmallPanicsWithoutCallerSaved(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Small(2,2) should panic: no caller-saved register left")
		}
	}()
	Small(2, 2)
}
