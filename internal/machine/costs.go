package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Costs parameterizes the machine's spill-cost surface: the latencies
// the placement cost models, the shrink-wrap jump-edge rule, and the
// VM's weighted overhead accounting all price overhead with. The paper
// hard-codes one machine (every overhead instruction costs 1 cycle);
// Costs generalizes that so the same placement pipeline can be swept
// across machine descriptions with different latency ratios.
//
// The zero value means "the paper's machine": every field unset prices
// exactly like UnitCosts, so a Desc built without explicit costs (e.g.
// machine.Small in tests) keeps the historical behavior. A Costs with
// any field set is taken literally, including explicit zeros.
type Costs struct {
	// SpillStore is the latency of a memory write inserted by the
	// compiler: a callee-saved save or an allocator spill store.
	SpillStore int64 `json:"spill_store"`
	// SpillLoad is the latency of a memory read inserted by the
	// compiler: a callee-saved restore or an allocator spill reload.
	SpillLoad int64 `json:"spill_load"`
	// JumpTaken is the penalty of the taken jump a jump block adds
	// when spill code must live on a jump edge.
	JumpTaken int64 `json:"jump_taken"`
	// FallThrough is the penalty charged by the cost models for spill
	// code split onto a fall-through (non-jump) critical edge. The VM
	// measures no extra instruction there — the block falls through in
	// layout — so this models second-order effects (alignment, icache
	// disruption) and is 0 on most machines.
	FallThrough int64 `json:"fall_through"`
	// DualIssue marks a machine whose load/store pipes can pair-issue
	// adjacent spill code: effective SpillStore/SpillLoad latency is
	// halved, rounding up.
	DualIssue bool `json:"dual_issue,omitempty"`
}

// UnitCosts is the paper's implicit cost surface: every executed
// overhead instruction costs 1, fall-through splits are free.
func UnitCosts() Costs {
	return Costs{SpillStore: 1, SpillLoad: 1, JumpTaken: 1}
}

// resolve maps the zero value to UnitCosts; any explicitly set Costs
// is returned unchanged.
func (c Costs) resolve() Costs {
	if c == (Costs{}) {
		return UnitCosts()
	}
	return c
}

// pair applies the dual-issue discount to a spill latency.
func (c Costs) pair(v int64) int64 {
	if c.DualIssue {
		return (v + 1) / 2
	}
	return v
}

// StoreCost is the effective latency of one executed save / spill
// store, dual-issue discount applied.
func (c Costs) StoreCost() int64 { c = c.resolve(); return c.pair(c.SpillStore) }

// LoadCost is the effective latency of one executed restore / spill
// reload, dual-issue discount applied.
func (c Costs) LoadCost() int64 { c = c.resolve(); return c.pair(c.SpillLoad) }

// JumpCost is the penalty of one executed jump-block jump.
func (c Costs) JumpCost() int64 { return c.resolve().JumpTaken }

// FallCost is the modeled penalty of splitting a fall-through edge.
func (c Costs) FallCost() int64 { return c.resolve().FallThrough }

// Price is the single pricing formula every layer shares: memory
// reads (spill loads, restores) at the spill-load latency, memory
// writes (spill stores, saves) at the spill-store latency, jump-block
// jumps at the taken-jump penalty. The placement models
// (core.MachineModel, core.OverheadBreakdown.Cost) and the VM's
// measured accounting (vm.Stats.WeightedOverhead) all go through it,
// so model-side and measured-side pricing cannot diverge.
func (c Costs) Price(reads, writes, jumps int64) int64 {
	return reads*c.LoadCost() + writes*c.StoreCost() + jumps*c.JumpCost()
}

// SpillRatio is JumpCost per average spill latency — the latency ratio
// the crossover report orders machines by: high ratios punish jump
// blocks (favoring placements that avoid them), low ratios punish
// memory traffic (favoring fewer executed saves/restores).
func (c Costs) SpillRatio() float64 {
	s := c.StoreCost() + c.LoadCost()
	if s == 0 {
		return 0
	}
	return float64(2*c.JumpCost()) / float64(s)
}

// String renders the cost surface compactly, e.g. "st2/ld3/j12".
func (c Costs) String() string {
	r := c.resolve()
	s := fmt.Sprintf("st%d/ld%d/j%d", r.SpillStore, r.SpillLoad, r.JumpTaken)
	if r.FallThrough != 0 {
		s += fmt.Sprintf("/ft%d", r.FallThrough)
	}
	if r.DualIssue {
		s += "/dual"
	}
	return s
}

// EstimateParams parameterizes the static profile estimator for a
// machine's compiler: with no real profile, functions are assumed
// entered BaseScale times and each loop level multiplies block
// frequency by LoopFactor. The zero value means DefaultEstimate.
type EstimateParams struct {
	BaseScale  int64 `json:"base_scale"`
	LoopFactor int64 `json:"loop_factor"`
}

// DefaultEstimate is the estimator setting the repository's
// estimate-vs-profile experiment uses.
var DefaultEstimate = EstimateParams{BaseScale: 100, LoopFactor: 8}

// EstimateParams returns the machine's static-estimation parameters,
// defaulting to DefaultEstimate when unset.
func (d *Desc) EstimateParams() EstimateParams {
	if d.Estimate == (EstimateParams{}) {
		return DefaultEstimate
	}
	return d.Estimate
}

// preset builds a named PA-RISC-register-file machine with the given
// cost surface. Presets differ only in costs: every preset shares the
// paper's register file, so one register allocation (and one analysis
// cache) serves a sweep across all of them.
func preset(name string, c Costs) *Desc {
	d := PARISC()
	d.Name = name
	d.Costs = c
	return d
}

// Presets returns the named machine descriptions the multi-machine
// sweeps evaluate, in a fixed report order:
//
//   - classic: the paper's machine — every overhead instruction costs
//     one cycle. The placement numbers under it reproduce the paper.
//   - deep-pipeline: long pipeline, expensive taken jumps (mispredict
//     flush) and moderately expensive memory ops.
//   - cheap-spill: fast store buffers make spill traffic cheap while
//     jumps stay costly — the regime that most favors placements that
//     trade extra saves/restores for fewer jump blocks.
//   - slow-memory: an embedded part with slow memory and cheap control
//     flow — the opposite regime, where every avoided save/restore
//     matters and jump blocks are nearly free.
//   - dual-issue: paired load/store pipes halve effective spill
//     latency (rounding up) under a moderate jump penalty.
//   - tight-loop: unit spill costs but a modeled fall-through split
//     penalty and a stiff jump penalty, for cores where any control
//     flow disruption hurts.
func Presets() []*Desc {
	return []*Desc{
		preset("classic", UnitCosts()),
		preset("deep-pipeline", Costs{SpillStore: 2, SpillLoad: 3, JumpTaken: 12}),
		preset("cheap-spill", Costs{SpillStore: 1, SpillLoad: 1, JumpTaken: 6}),
		preset("slow-memory", Costs{SpillStore: 8, SpillLoad: 10, JumpTaken: 2}),
		preset("dual-issue", Costs{SpillStore: 2, SpillLoad: 2, JumpTaken: 4, DualIssue: true}),
		preset("tight-loop", Costs{SpillStore: 1, SpillLoad: 1, JumpTaken: 8, FallThrough: 1}),
	}
}

// PresetNames returns the preset names in report order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, d := range ps {
		names[i] = d.Name
	}
	return names
}

// Preset returns the named machine description, or an error listing
// the valid names.
func Preset(name string) (*Desc, error) {
	for _, d := range Presets() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
}

// ParsePresets resolves a comma-separated preset list; "all" (or an
// empty string) selects every preset. Duplicates are collapsed,
// keeping report order.
func ParsePresets(list string) ([]*Desc, error) {
	if list == "" || list == "all" {
		return Presets(), nil
	}
	want := map[string]bool{}
	order := map[string]int{}
	for i, n := range PresetNames() {
		order[n] = i
	}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := order[name]; !ok {
			return nil, fmt.Errorf("machine: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
		}
		want[name] = true
	}
	var names []string
	for n := range want {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return order[names[i]] < order[names[j]] })
	out := make([]*Desc, 0, len(names))
	for _, n := range names {
		d, _ := Preset(n)
		out = append(out, d)
	}
	return out, nil
}

// SameRegisterFile reports whether every description shares one
// register file and calling convention — the precondition for sweeping
// several machines over a single register allocation. An empty list
// trivially qualifies.
func SameRegisterFile(descs []*Desc) bool {
	if len(descs) == 0 {
		return true
	}
	for _, d := range descs[1:] {
		if d.NumRegs != descs[0].NumRegs || d.CalleeSavedFrom != descs[0].CalleeSavedFrom {
			return false
		}
	}
	return true
}
