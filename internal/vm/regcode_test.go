package vm

// regcode_test.go pins the regcode engine's error paths to the tree
// interpreter's, byte for byte: the step-limit error with its
// function and block context, unknown-opcode rejection, and the
// compiler's out-of-range frame and register handling. The broad
// differential battery lives in parity_test.go; these tests target
// the compiled paths a random program rarely hits.

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// runBoth executes prog on the regcode engine and the tree reference
// with identical configs and returns both outcomes.
func runBoth(t *testing.T, prog *ir.Program, cfg Config, args ...int64) (reg, tree struct {
	val   int64
	err   string
	stats Stats
}) {
	t.Helper()
	run := func(e Engine) (int64, string, Stats) {
		c := cfg
		c.Engine = e
		m := New(prog, c)
		val, err := m.Run(args...)
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		return val, msg, m.Stats.Snapshot()
	}
	reg.val, reg.err, reg.stats = run(EngineRegcode)
	tree.val, tree.err, tree.stats = run(EngineTree)
	return reg, tree
}

// assertSame fails unless the two outcomes match on every observable.
func assertSame(t *testing.T, label string, reg, tree struct {
	val   int64
	err   string
	stats Stats
}) {
	t.Helper()
	if reg.err != tree.err {
		t.Fatalf("%s: error mismatch:\n  regcode: %q\n  tree   : %q", label, reg.err, tree.err)
	}
	if reg.err == "" && reg.val != tree.val {
		t.Fatalf("%s: value mismatch: regcode %d, tree %d", label, reg.val, tree.val)
	}
	if !reflect.DeepEqual(reg.stats, tree.stats) {
		t.Fatalf("%s: stats mismatch:\n  regcode: %+v\n  tree   : %+v", label, reg.stats, tree.stats)
	}
}

// TestRegcodeUnknownOpcode: an invalid opcode compiles to a trap that
// reports the tree engine's exact message and counts the faulting
// instruction as executed, wherever in a quantum it sits.
func TestRegcodeUnknownOpcode(t *testing.T) {
	bu := ir.NewBuilder("bad", 0)
	bu.Block("entry")
	bu.Const(1)
	bu.Emit(&ir.Instr{Op: ir.Op(200), Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
	bu.Ret(ir.NoReg)
	p := ir.NewProgram()
	p.Add(bu.Finish())

	reg, tree := runBoth(t, p, Config{})
	assertSame(t, "bad-op", reg, tree)
	if !strings.Contains(reg.err, "unknown opcode") || !strings.Contains(reg.err, "bad") {
		t.Fatalf("unknown-opcode error lacks context: %q", reg.err)
	}
	// At the exact budget boundary the trap loses to the step limit —
	// the trap would be the instruction past the budget.
	for _, lim := range []int64{1, 2, 3} {
		reg, tree := runBoth(t, p, Config{MaxSteps: lim})
		assertSame(t, "bad-op-budget", reg, tree)
	}
}

// TestRegcodeStepLimitContext: the step-limit error wraps ErrStepLimit
// and names the function and block where execution stopped, at every
// halt position through a loop with fused superinstructions — the
// quantum accounting must attribute the halt to the same instruction
// the tree engine charges.
func TestRegcodeStepLimitContext(t *testing.T) {
	// inner: a counted loop whose latch fuses (const; add; const; cmp;
	// br). main calls it, so halts land in both functions.
	ib := ir.NewBuilder("inner", 1)
	loop := ib.Block("loop")
	one := ib.Const(1)
	sum := ib.F.Params[0]
	ib.Emit(&ir.Instr{Op: ir.OpAdd, Dst: sum, Src1: sum, Src2: one})
	lim := ib.Const(100)
	cond := ib.F.NewVirt()
	ib.Emit(&ir.Instr{Op: ir.OpCmpLT, Dst: cond, Src1: sum, Src2: lim})
	exit := ib.F.NewBlock("exit")
	ib.Br(cond, loop, exit, 0, 0)
	ib.SetCurrent(exit)
	ib.Ret(sum)

	mb := ir.NewBuilder("main", 1)
	mb.Block("entry")
	r := mb.F.NewVirt()
	mb.Emit(&ir.Instr{Op: ir.OpCall, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg,
		Callee: "inner", Args: []ir.Reg{mb.F.Params[0]}})
	mb.Ret(r)

	p := ir.NewProgram()
	p.Add(mb.Finish())
	p.Add(ib.Finish())

	for lim := int64(1); lim <= 40; lim++ {
		reg, tree := runBoth(t, p, Config{MaxSteps: lim}, 0)
		assertSame(t, "halt", reg, tree)
		if reg.err == "" {
			continue
		}
		c := Config{MaxSteps: lim, Engine: EngineRegcode}
		_, err := New(p, c).Run(0)
		if !errors.Is(err, ErrStepLimit) {
			t.Fatalf("limit %d: error does not wrap ErrStepLimit: %v", lim, err)
		}
	}
}

// TestRegcodeOutOfRangeFrame: spill and save slots referenced past the
// function's declared counts grow the frame at compile time, and
// negative slot offsets fail identically to the other engines.
func TestRegcodeOutOfRangeFrame(t *testing.T) {
	bu := ir.NewBuilder("sp", 1)
	bu.Block("entry")
	// Slot 9 with zero declared slots: the verifier-grown frame must
	// hold it in every engine.
	bu.Emit(&ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, Src1: bu.F.Params[0],
		Src2: ir.NoReg, Imm: 9, Flags: ir.FlagSpill})
	v := bu.F.NewVirt()
	bu.Emit(&ir.Instr{Op: ir.OpSpillLoad, Dst: v, Src1: ir.NoReg, Src2: ir.NoReg,
		Imm: 9, Flags: ir.FlagSpill})
	bu.Emit(&ir.Instr{Op: ir.OpSave, Dst: ir.NoReg, Src1: v, Src2: ir.NoReg,
		Imm: 7, Flags: ir.FlagSaveRestore})
	w := bu.F.NewVirt()
	bu.Emit(&ir.Instr{Op: ir.OpRestore, Dst: w, Src1: ir.NoReg, Src2: ir.NoReg,
		Imm: 7, Flags: ir.FlagSaveRestore})
	bu.Ret(w)
	p := ir.NewProgram()
	p.Add(bu.Finish())

	reg, tree := runBoth(t, p, Config{}, 55)
	assertSame(t, "grown-slots", reg, tree)
	if reg.err != "" || reg.val != 55 {
		t.Fatalf("slot roundtrip = (%d, %q), want (55, no error)", reg.val, reg.err)
	}
	if reg.stats.SpillLoads != 1 || reg.stats.SpillStores != 1 || reg.stats.Saves != 1 || reg.stats.Restores != 1 {
		t.Fatalf("overhead counters: %+v", reg.stats)
	}
}

// TestRegcodeOutOfRegisterBank: physical registers past the machine's
// callee-saved range widen the bank's physical prefix, and writes to
// them survive into the global file across calls and returns — the
// copy-in/copy-out discipline is what the convention checker reads.
func TestRegcodeOutOfRegisterBank(t *testing.T) {
	mach := machine.PARISC()
	high := ir.Reg(60) // far beyond the machine's 24 registers

	cb := ir.NewBuilder("callee", 0)
	cb.Block("entry")
	k := cb.Const(17)
	cb.Emit(&ir.Instr{Op: ir.OpMov, Dst: high, Src1: k, Src2: ir.NoReg})
	cb.Ret(ir.NoReg)

	mb := ir.NewBuilder("main", 0)
	mb.Block("entry")
	mb.Emit(&ir.Instr{Op: ir.OpCall, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Callee: "callee"})
	r := mb.F.NewVirt()
	mb.Emit(&ir.Instr{Op: ir.OpMov, Dst: r, Src1: high, Src2: ir.NoReg})
	mb.Ret(r)

	p := ir.NewProgram()
	p.Add(mb.Finish())
	p.Add(cb.Finish())

	reg, tree := runBoth(t, p, Config{Machine: mach})
	assertSame(t, "high-phys", reg, tree)
	if reg.err != "" || reg.val != 17 {
		t.Fatalf("high-register write = (%d, %q), want (17, no error)", reg.val, reg.err)
	}
}

// TestRegcodeConventionViolation: a clobbered callee-saved register is
// reported with the tree engine's exact message, and the erroring
// frame's register file is what the checker saw.
func TestRegcodeConventionViolation(t *testing.T) {
	mach := machine.PARISC()
	cs := mach.CalleeSaved()[0]

	cb := ir.NewBuilder("clobber", 0)
	cb.Block("entry")
	k := cb.Const(99)
	cb.Emit(&ir.Instr{Op: ir.OpMov, Dst: cs, Src1: k, Src2: ir.NoReg})
	cb.Ret(ir.NoReg)

	mb := ir.NewBuilder("main", 0)
	mb.Block("entry")
	mb.Emit(&ir.Instr{Op: ir.OpCall, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Callee: "clobber"})
	mb.Ret(ir.NoReg)

	p := ir.NewProgram()
	p.Add(mb.Finish())
	p.Add(cb.Finish())

	reg, tree := runBoth(t, p, Config{Machine: mach})
	assertSame(t, "convention", reg, tree)
	if !strings.Contains(reg.err, "violated callee-saved convention") || !strings.Contains(reg.err, "clobber") {
		t.Fatalf("convention error lacks context: %q", reg.err)
	}
}

// countFormTwo compiles prog for the regcode engine and counts the
// fused const-feeding instructions whose form is 2 (const feeds both
// operands, so the register operand field holds -1).
func countFormTwo(prog *ir.Program) int {
	v := New(prog, Config{Engine: EngineRegcode})
	n := 0
	for _, fc := range v.rcode.funcs {
		for i := range fc.ins {
			in := &fc.ins[i]
			switch {
			case (in.op == rConstBin || in.op == rConstBinSpillSt || in.op == rConstBinSpillStOv) && in.t2 == 2:
				n++
			case in.op >= rConstCmpEQBr && in.op <= rConstCmpGEBr && in.c == 2:
				n++
			}
		}
	}
	return n
}

// TestRegcodeConstFormTwo: a const feeding BOTH operands of its fused
// consumer (form 2) stores -1 in the register-operand field, which the
// dispatch loop must never read. Covers all three fused shapes —
// const+binop, const+cmp+br, and const+binop+spill.st (plain and
// overhead-flagged) — in the quantum loop and, via the step-limit
// sweep, their careful-mode counterparts.
func TestRegcodeConstFormTwo(t *testing.T) {
	build := func(f func(bu *ir.Builder)) *ir.Program {
		bu := ir.NewBuilder("main", 0)
		bu.Block("entry")
		f(bu)
		p := ir.NewProgram()
		p.Add(bu.Finish())
		return p
	}

	progs := map[string]*ir.Program{
		// c = const 5; d = add c, c → rConstBin form 2, returns 10.
		"bin": build(func(bu *ir.Builder) {
			c := bu.Const(5)
			bu.Ret(bu.Bin(ir.OpAdd, c, c))
		}),
		// c = const 5; t = cmpeq c, c; br t → rConstCmpEQBr form 2.
		"cmp-br": build(func(bu *ir.Builder) {
			c := bu.Const(5)
			cond := bu.Bin(ir.OpCmpEQ, c, c)
			yes := bu.F.NewBlock("yes")
			no := bu.F.NewBlock("no")
			bu.Br(cond, yes, no, 0, 0)
			bu.SetCurrent(yes)
			one := bu.Const(1)
			bu.Ret(one)
			bu.SetCurrent(no)
			bu.Ret(ir.NoReg)
		}),
		// c = const 6; d = mul c, c; spill.st 3, d → rConstBinSpillSt
		// form 2, returns 36 through the slot.
		"bin-spillst": build(func(bu *ir.Builder) {
			c := bu.Const(6)
			d := bu.Bin(ir.OpMul, c, c)
			bu.Emit(&ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, Src1: d, Src2: ir.NoReg, Imm: 3})
			v := bu.F.NewVirt()
			bu.Emit(&ir.Instr{Op: ir.OpSpillLoad, Dst: v, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 3})
			bu.Ret(v)
		}),
		// Same shape with !sp overhead flags → rConstBinSpillStOv form 2.
		"bin-spillst-ov": build(func(bu *ir.Builder) {
			c := bu.Const(6)
			d := bu.Bin(ir.OpMul, c, c)
			bu.Emit(&ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, Src1: d, Src2: ir.NoReg, Imm: 3, Flags: ir.FlagSpill})
			v := bu.F.NewVirt()
			bu.Emit(&ir.Instr{Op: ir.OpSpillLoad, Dst: v, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 3, Flags: ir.FlagSpill})
			bu.Ret(v)
		}),
	}

	want := map[string]int64{"bin": 10, "cmp-br": 1, "bin-spillst": 36, "bin-spillst-ov": 36}
	for name, p := range progs {
		if n := countFormTwo(p); n == 0 {
			t.Fatalf("%s: no form-2 fused instruction compiled — the shape no longer exercises the fusion", name)
		}
		reg, tree := runBoth(t, p, Config{})
		assertSame(t, name, reg, tree)
		if reg.err != "" || reg.val != want[name] {
			t.Fatalf("%s = (%d, %q), want (%d, no error)", name, reg.val, reg.err, want[name])
		}
		// Every halt position, to drive the careful-mode counterparts.
		for lim := int64(1); lim <= 12; lim++ {
			reg, tree := runBoth(t, p, Config{MaxSteps: lim})
			assertSame(t, fmt.Sprintf("%s lim=%d", name, lim), reg, tree)
		}
	}
}

// TestRegcodeArenaRelease: frames come from the chunked arena with
// LIFO discipline — after any run, successful or erroring, the arena
// is fully released and a second run on the same VM reuses it.
func TestRegcodeArenaRelease(t *testing.T) {
	// Deep recursion: 64 live frames, then unwinding.
	fb := ir.NewBuilder("f", 1)
	entry := fb.Block("entry")
	rec := fb.F.NewBlock("rec")
	base := fb.F.NewBlock("base")
	fb.SetCurrent(entry)
	cond := fb.F.NewVirt()
	zero := fb.Const(0)
	fb.Emit(&ir.Instr{Op: ir.OpCmpGT, Dst: cond, Src1: fb.F.Params[0], Src2: zero})
	fb.Br(cond, rec, base, 0, 0)
	fb.SetCurrent(rec)
	one := fb.Const(1)
	next := fb.F.NewVirt()
	fb.Emit(&ir.Instr{Op: ir.OpSub, Dst: next, Src1: fb.F.Params[0], Src2: one})
	r := fb.F.NewVirt()
	fb.Emit(&ir.Instr{Op: ir.OpCall, Dst: r, Src1: ir.NoReg, Src2: ir.NoReg,
		Callee: "f", Args: []ir.Reg{next}})
	fb.Ret(r)
	fb.SetCurrent(base)
	fb.Ret(fb.F.Params[0])

	p := ir.NewProgram()
	p.Main = "f"
	p.Add(fb.Finish())

	m := New(p, Config{Engine: EngineRegcode})
	for i := 0; i < 2; i++ {
		if _, err := m.Run(64); err != nil {
			t.Fatal(err)
		}
		if m.arena.ci != 0 || m.arena.off != 0 {
			t.Fatalf("run %d: arena not released: ci=%d off=%d", i, m.arena.ci, m.arena.off)
		}
	}
	chunks := len(m.arena.chunks)

	// An erroring run (step limit deep in the recursion) must release
	// everything too, without growing the arena past the first run's
	// high-water mark.
	if _, err := m.Run(64); err != nil {
		t.Fatal(err)
	}
	me := New(p, Config{Engine: EngineRegcode, MaxSteps: 50})
	if _, err := me.Run(64); err == nil {
		t.Fatal("expected step limit error")
	}
	if me.arena.ci != 0 || me.arena.off != 0 {
		t.Fatalf("erroring run: arena not released: ci=%d off=%d", me.arena.ci, me.arena.off)
	}
	if got := len(m.arena.chunks); got != chunks {
		t.Fatalf("arena grew across identical runs: %d -> %d chunks", chunks, got)
	}
}
