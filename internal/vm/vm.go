// Package vm executes IR programs. It serves two roles in the
// reproduction: collecting edge profiles by execution (the paper's
// profile-guided inputs), and measuring true dynamic spill overhead of
// post-allocation code while enforcing the callee-saved register
// convention — a placement bug becomes a hard execution error, not a
// silently wrong count.
//
// Three engines implement the same observable semantics:
//
//   - EngineBytecode (the default) lowers each function once into a
//     flat, pre-decoded instruction array — branch targets resolved to
//     instruction indices, overhead classes precomputed, callees and
//     profiled edges resolved to dense indices — and executes it in a
//     tight dispatch loop with pooled, exactly-sized frames and dense
//     counters (see bytecode.go, exec.go).
//   - EngineRegcode lowers each function into register-transfer code:
//     physical registers, virtuals, and frame slots share one flat
//     per-invocation register bank so every operand access is a single
//     slice index, superinstruction fusion covers whole loop-header
//     shapes, step accounting is batched per straight-line quantum,
//     and frames come from a chunked arena instead of sync.Pool (see
//     regcode.go, regexec.go).
//   - EngineTree is the original tree-walking interpreter over
//     *ir.Block pointers (tree.go). It is kept as the differential
//     reference; the parity tests prove all engines agree exactly on
//     values, statistics, edge profiles, and error reporting.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Stats aggregates dynamic execution counts.
type Stats struct {
	Instrs int64 // all executed instructions
	Loads  int64 // memory reads: load, spill.ld, restore
	Stores int64 // memory writes: store, spill.st, save

	// Overhead counts executions of compiler-inserted instructions.
	SpillLoads    int64
	SpillStores   int64
	Saves         int64
	Restores      int64
	JumpBlockJmps int64

	// Calls counts procedure invocations by function name.
	Calls map[string]int64
}

// Overhead is the total dynamic spill code overhead: all spill loads
// and stores, callee-saved saves and restores, and jump-block jumps.
// It equals WeightedOverhead under the paper's unit costs.
func (s *Stats) Overhead() int64 {
	return s.SpillLoads + s.SpillStores + s.Saves + s.Restores + s.JumpBlockJmps
}

// WeightedOverhead prices the measured overhead classes with a
// machine's cost surface: memory reads (spill loads, restores) at the
// spill-load latency, memory writes (spill stores, saves) at the
// spill-store latency, and jump-block jumps at the taken-jump penalty.
// This is the same pricing the placement cost models use
// (core.MachineModel), so for a placement whose profile matches the
// run, model and machine agree cycle for cycle.
func (s *Stats) WeightedOverhead(c machine.Costs) int64 {
	return c.Price(s.SpillLoads+s.Restores, s.SpillStores+s.Saves, s.JumpBlockJmps)
}

// SaveRestoreCost prices only the callee-saved placement classes —
// saves, restores, and jump-block jumps — leaving out allocator spill
// traffic. This is the quantity the placement models predict, so it is
// what the oracle's model-vs-measured exactness check compares.
func (s *Stats) SaveRestoreCost(c machine.Costs) int64 {
	return c.Price(s.Restores, s.Saves, s.JumpBlockJmps)
}

// Snapshot deep-copies the stats. A plain struct copy would alias the
// Calls map between the copy and the still-running VM; Snapshot is the
// safe way to let counters outlive (or leave) their VM, e.g. when
// results are collected from concurrent runs.
func (s *Stats) Snapshot() Stats {
	out := *s
	out.Calls = make(map[string]int64, len(s.Calls))
	for name, n := range s.Calls {
		out.Calls[name] = n
	}
	return out
}

// Merge adds o's counters into s, summing the per-function call
// counts. Shard workers run isolated VMs and merge their stats into a
// suite-wide total afterward; merging in any order yields the same
// result.
func (s *Stats) Merge(o *Stats) {
	s.Instrs += o.Instrs
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.SpillLoads += o.SpillLoads
	s.SpillStores += o.SpillStores
	s.Saves += o.Saves
	s.Restores += o.Restores
	s.JumpBlockJmps += o.JumpBlockJmps
	if len(o.Calls) > 0 && s.Calls == nil {
		s.Calls = make(map[string]int64, len(o.Calls))
	}
	for name, n := range o.Calls {
		s.Calls[name] += n
	}
}

// DefaultMaxSteps is the execution budget a zero Config.MaxSteps
// selects. Exported so budget arithmetic outside the VM (the tiered
// pipeline splits one budget across two runs) agrees with the VM's
// own default.
const DefaultMaxSteps int64 = 1 << 28

// Engine selects an execution engine.
type Engine int

const (
	// EngineBytecode pre-decodes the program into flat instruction
	// arrays and runs a tight dispatch loop. The default.
	EngineBytecode Engine = iota
	// EngineTree is the legacy tree-walking interpreter, kept as the
	// differential reference for the compiled engines.
	EngineTree
	// EngineRegcode is the register-transfer engine: a unified
	// register bank per invocation, loop-header superinstructions,
	// quantum-batched step accounting, and arena-allocated frames.
	EngineRegcode
)

// String names the engine ("bytecode", "regcode", or "tree").
func (e Engine) String() string {
	switch e {
	case EngineTree:
		return "tree"
	case EngineRegcode:
		return "regcode"
	}
	return "bytecode"
}

// Engines lists every execution engine, for harnesses that sweep them.
var Engines = []Engine{EngineBytecode, EngineRegcode, EngineTree}

// ParseEngine maps an engine name back to the enum, for CLI flags.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "bytecode":
		return EngineBytecode, nil
	case "regcode":
		return EngineRegcode, nil
	case "tree":
		return EngineTree, nil
	}
	return 0, fmt.Errorf("vm: unknown engine %q (want bytecode, regcode, or tree)", s)
}

// Config controls a VM run.
type Config struct {
	// Machine enables callee-saved convention checking when non-nil:
	// a called procedure must return with every callee-saved register
	// holding the value it had at the call.
	Machine *machine.Desc
	// HeapWords is the size of the flat heap (default 1<<16).
	HeapWords int
	// MaxSteps bounds execution (default DefaultMaxSteps).
	MaxSteps int64
	// CollectEdges enables per-edge execution counting.
	CollectEdges bool
	// Engine selects the execution engine (default EngineBytecode).
	Engine Engine
}

// VM executes a program.
type VM struct {
	prog *ir.Program
	cfg  Config

	phys  [64]int64 // machine registers, global across calls
	heap  []int64
	steps int64

	// Compiled-engine state. The program is compiled once, at New;
	// mutate the program after that and the VM keeps executing the
	// shape it compiled — create a new VM instead.
	code       *bcProgram
	rcode      *rcProgram // regcode engine program
	arena      rcArena    // regcode engine frame arena
	callDense  []int64    // per-function call counts, flushed into Stats.Calls
	edgeDense  []int64    // per-edge traversal counts, flushed into EdgeCount
	csRegs     []ir.Reg   // the machine's callee-saved registers, precomputed
	csPhys     []int32    // their hardware numbers, for the snapshot loops
	csFrom     int        // callee-saved registers are the contiguous
	csTo       int        // range [csFrom, csTo) of the physical file
	snap       []int64    // convention-check snapshot stack, one segment per live call
	argScratch []int64    // call argument evaluation stack, one segment per live call

	Stats     Stats
	EdgeCount map[*ir.Edge]int64
}

// New prepares a VM for the program.
func New(prog *ir.Program, cfg Config) *VM {
	if cfg.HeapWords == 0 {
		cfg.HeapWords = 1 << 16
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	v := &VM{prog: prog, cfg: cfg}
	// The heap is only materialized for programs that can touch it;
	// a program with no load/store never observes the difference, and
	// the suites of register-resident benchmarks skip half a megabyte
	// of zeroed allocation per VM.
	if usesHeap(prog) {
		v.heap = make([]int64, cfg.HeapWords)
	}
	if cfg.Machine != nil {
		v.csRegs = cfg.Machine.CalleeSaved()
		for _, r := range v.csRegs {
			v.csPhys = append(v.csPhys, int32(r.PhysNum()))
		}
		v.csFrom = cfg.Machine.CalleeSavedFrom
		v.csTo = cfg.Machine.NumRegs
	}
	switch cfg.Engine {
	case EngineBytecode:
		v.code = compileProgram(prog)
	case EngineRegcode:
		v.rcode = compileRegProgram(prog, v.csTo)
	}
	v.Stats.Calls = make(map[string]int64)
	if cfg.CollectEdges {
		v.EdgeCount = make(map[*ir.Edge]int64)
	}
	return v
}

// Run executes the program's main function with the given arguments
// and returns its result.
func (v *VM) Run(args ...int64) (int64, error) {
	switch v.cfg.Engine {
	case EngineTree:
		return v.runTree(args)
	case EngineRegcode:
		return v.runRegcode(args)
	}
	return v.runBytecode(args)
}

// usesHeap reports whether any instruction can address the flat heap.
func usesHeap(p *ir.Program) bool {
	for _, f := range p.FuncsInOrder() {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpLoad || in.Op == ir.OpStore {
					return true
				}
			}
		}
	}
	return false
}

// ErrStepLimit is returned (wrapped with the function and block where
// execution stopped) when a run exceeds Config.MaxSteps.
//
// Halt accounting contract (all engines, pinned by TestStepLimitStats):
// at a step-limit halt Stats.Instrs equals Config.MaxSteps exactly —
// the instruction that would have exceeded the budget is not counted —
// and EdgeCount (when CollectEdges is on) reflects every edge traversal
// up to the halt. The tiered pipeline leans on this: tier 0 runs with
// MaxSteps set to the quantum, and the remaining tier-1 budget is
// simply the original budget minus tier 0's Stats.Instrs.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// IsStepLimit reports whether err is (or wraps) a step-limit halt.
// Engines wrap ErrStepLimit with the function and block where execution
// stopped; this is the test callers should use instead of matching the
// sentinel directly.
func IsStepLimit(err error) bool { return errors.Is(err, ErrStepLimit) }

// maxCallDepth bounds recursion; beyond it the VM reports a call depth
// error rather than exhausting the host stack.
const maxCallDepth = 512

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
