// Package vm interprets IR programs. It serves two roles in the
// reproduction: collecting edge profiles by execution (the paper's
// profile-guided inputs), and measuring true dynamic spill overhead of
// post-allocation code while enforcing the callee-saved register
// convention — a placement bug becomes a hard execution error, not a
// silently wrong count.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Stats aggregates dynamic execution counts.
type Stats struct {
	Instrs int64 // all executed instructions
	Loads  int64 // memory reads: load, spill.ld, restore
	Stores int64 // memory writes: store, spill.st, save

	// Overhead counts executions of compiler-inserted instructions.
	SpillLoads    int64
	SpillStores   int64
	Saves         int64
	Restores      int64
	JumpBlockJmps int64

	// Calls counts procedure invocations by function name.
	Calls map[string]int64
}

// Overhead is the total dynamic spill code overhead: all spill loads
// and stores, callee-saved saves and restores, and jump-block jumps.
func (s *Stats) Overhead() int64 {
	return s.SpillLoads + s.SpillStores + s.Saves + s.Restores + s.JumpBlockJmps
}

// Snapshot deep-copies the stats. A plain struct copy would alias the
// Calls map between the copy and the still-running VM; Snapshot is the
// safe way to let counters outlive (or leave) their VM, e.g. when
// results are collected from concurrent runs.
func (s *Stats) Snapshot() Stats {
	out := *s
	out.Calls = make(map[string]int64, len(s.Calls))
	for name, n := range s.Calls {
		out.Calls[name] = n
	}
	return out
}

// Merge adds o's counters into s, summing the per-function call
// counts. Shard workers run isolated VMs and merge their stats into a
// suite-wide total afterward; merging in any order yields the same
// result.
func (s *Stats) Merge(o *Stats) {
	s.Instrs += o.Instrs
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.SpillLoads += o.SpillLoads
	s.SpillStores += o.SpillStores
	s.Saves += o.Saves
	s.Restores += o.Restores
	s.JumpBlockJmps += o.JumpBlockJmps
	if len(o.Calls) > 0 && s.Calls == nil {
		s.Calls = make(map[string]int64, len(o.Calls))
	}
	for name, n := range o.Calls {
		s.Calls[name] += n
	}
}

// Config controls a VM run.
type Config struct {
	// Machine enables callee-saved convention checking when non-nil:
	// a called procedure must return with every callee-saved register
	// holding the value it had at the call.
	Machine *machine.Desc
	// HeapWords is the size of the flat heap (default 1<<16).
	HeapWords int
	// MaxSteps bounds execution (default 1<<28).
	MaxSteps int64
	// CollectEdges enables per-edge execution counting.
	CollectEdges bool
}

// VM executes a program.
type VM struct {
	prog *ir.Program
	cfg  Config

	phys  [64]int64 // machine registers, global across calls
	heap  []int64
	steps int64

	Stats     Stats
	EdgeCount map[*ir.Edge]int64
}

// New prepares a VM for the program.
func New(prog *ir.Program, cfg Config) *VM {
	if cfg.HeapWords == 0 {
		cfg.HeapWords = 1 << 16
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1 << 28
	}
	v := &VM{
		prog: prog,
		cfg:  cfg,
		heap: make([]int64, cfg.HeapWords),
	}
	v.Stats.Calls = make(map[string]int64)
	if cfg.CollectEdges {
		v.EdgeCount = make(map[*ir.Edge]int64)
	}
	return v
}

// Run executes the program's main function with the given arguments
// and returns its result.
func (v *VM) Run(args ...int64) (int64, error) {
	f := v.prog.Func(v.prog.Main)
	if f == nil {
		return 0, fmt.Errorf("vm: main function %q not found", v.prog.Main)
	}
	return v.call(f, args, 0)
}

// frame holds per-invocation state.
type frame struct {
	virt  []int64
	spill []int64
	save  []int64
}

var errHalt = errors.New("vm: step limit exceeded")

func (v *VM) call(f *ir.Func, args []int64, depth int) (int64, error) {
	if depth > 512 {
		return 0, fmt.Errorf("vm: call depth exceeded in %s", f.Name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("vm: %s called with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	v.Stats.Calls[f.Name]++

	fr := &frame{
		virt:  make([]int64, f.NumVirt),
		spill: make([]int64, f.SpillSlots),
		save:  make([]int64, f.SaveSlots),
	}
	for i, p := range f.Params {
		fr.set(v, p, args[i])
	}

	// Snapshot callee-saved registers for convention checking.
	var snapshot []int64
	if v.cfg.Machine != nil {
		for _, r := range v.cfg.Machine.CalleeSaved() {
			snapshot = append(snapshot, v.phys[r.PhysNum()])
		}
	}
	checkConvention := func() error {
		if v.cfg.Machine == nil {
			return nil
		}
		for i, r := range v.cfg.Machine.CalleeSaved() {
			if v.phys[r.PhysNum()] != snapshot[i] {
				return fmt.Errorf("vm: %s violated callee-saved convention: %v changed from %d to %d",
					f.Name, r, snapshot[i], v.phys[r.PhysNum()])
			}
		}
		return nil
	}

	b := f.Entry
	for {
		next, ret, retVal, err := v.execBlock(f, b, fr, depth)
		if err != nil {
			return 0, err
		}
		if ret {
			if err := checkConvention(); err != nil {
				return 0, err
			}
			return retVal, nil
		}
		if v.cfg.CollectEdges {
			if e := b.SuccEdge(next); e != nil {
				v.EdgeCount[e]++
			}
		}
		b = next
	}
}

// execBlock runs one basic block. It returns the successor block, or
// ret=true with the return value.
func (v *VM) execBlock(f *ir.Func, b *ir.Block, fr *frame, depth int) (next *ir.Block, ret bool, retVal int64, err error) {
	for _, in := range b.Instrs {
		v.steps++
		if v.steps > v.cfg.MaxSteps {
			return nil, false, 0, errHalt
		}
		v.Stats.Instrs++
		if in.Op.IsMemLoad() {
			v.Stats.Loads++
		}
		if in.Op.IsMemStore() {
			v.Stats.Stores++
		}
		switch {
		case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillLoad:
			v.Stats.SpillLoads++
		case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillStore:
			v.Stats.SpillStores++
		case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpSave:
			v.Stats.Saves++
		case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpRestore:
			v.Stats.Restores++
		case in.Flags&ir.FlagJumpBlock != 0:
			v.Stats.JumpBlockJmps++
		}

		switch in.Op {
		case ir.OpNop:
		case ir.OpConst:
			fr.set(v, in.Dst, in.Imm)
		case ir.OpMov:
			fr.set(v, in.Dst, fr.get(v, in.Src1))
		case ir.OpAdd:
			fr.set(v, in.Dst, fr.get(v, in.Src1)+fr.get(v, in.Src2))
		case ir.OpSub:
			fr.set(v, in.Dst, fr.get(v, in.Src1)-fr.get(v, in.Src2))
		case ir.OpMul:
			fr.set(v, in.Dst, fr.get(v, in.Src1)*fr.get(v, in.Src2))
		case ir.OpDiv:
			d := fr.get(v, in.Src2)
			if d == 0 {
				fr.set(v, in.Dst, 0)
			} else {
				fr.set(v, in.Dst, fr.get(v, in.Src1)/d)
			}
		case ir.OpRem:
			d := fr.get(v, in.Src2)
			if d == 0 {
				fr.set(v, in.Dst, 0)
			} else {
				fr.set(v, in.Dst, fr.get(v, in.Src1)%d)
			}
		case ir.OpAnd:
			fr.set(v, in.Dst, fr.get(v, in.Src1)&fr.get(v, in.Src2))
		case ir.OpOr:
			fr.set(v, in.Dst, fr.get(v, in.Src1)|fr.get(v, in.Src2))
		case ir.OpXor:
			fr.set(v, in.Dst, fr.get(v, in.Src1)^fr.get(v, in.Src2))
		case ir.OpShl:
			fr.set(v, in.Dst, fr.get(v, in.Src1)<<uint(fr.get(v, in.Src2)&63))
		case ir.OpShr:
			fr.set(v, in.Dst, fr.get(v, in.Src1)>>uint(fr.get(v, in.Src2)&63))
		case ir.OpNeg:
			fr.set(v, in.Dst, -fr.get(v, in.Src1))
		case ir.OpNot:
			fr.set(v, in.Dst, ^fr.get(v, in.Src1))
		case ir.OpCmpEQ:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) == fr.get(v, in.Src2)))
		case ir.OpCmpNE:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) != fr.get(v, in.Src2)))
		case ir.OpCmpLT:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) < fr.get(v, in.Src2)))
		case ir.OpCmpLE:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) <= fr.get(v, in.Src2)))
		case ir.OpCmpGT:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) > fr.get(v, in.Src2)))
		case ir.OpCmpGE:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) >= fr.get(v, in.Src2)))
		case ir.OpLoad:
			addr := fr.get(v, in.Src1) + in.Imm
			if addr < 0 || addr >= int64(len(v.heap)) {
				return nil, false, 0, fmt.Errorf("vm: %s: load out of bounds at %d", f.Name, addr)
			}
			fr.set(v, in.Dst, v.heap[addr])
		case ir.OpStore:
			addr := fr.get(v, in.Src1) + in.Imm
			if addr < 0 || addr >= int64(len(v.heap)) {
				return nil, false, 0, fmt.Errorf("vm: %s: store out of bounds at %d", f.Name, addr)
			}
			v.heap[addr] = fr.get(v, in.Src2)
		case ir.OpSpillLoad:
			fr.ensureSpill(int(in.Imm))
			fr.set(v, in.Dst, fr.spill[in.Imm])
		case ir.OpSpillStore:
			fr.ensureSpill(int(in.Imm))
			fr.spill[in.Imm] = fr.get(v, in.Src1)
		case ir.OpSave:
			fr.ensureSave(int(in.Imm))
			fr.save[in.Imm] = fr.get(v, in.Src1)
		case ir.OpRestore:
			fr.ensureSave(int(in.Imm))
			fr.set(v, in.Dst, fr.save[in.Imm])
		case ir.OpCall:
			callee := v.prog.Func(in.Callee)
			if callee == nil {
				return nil, false, 0, fmt.Errorf("vm: %s calls undefined %q", f.Name, in.Callee)
			}
			args := make([]int64, len(in.Args))
			for i, a := range in.Args {
				args[i] = fr.get(v, a)
			}
			r, err := v.call(callee, args, depth+1)
			if err != nil {
				return nil, false, 0, err
			}
			if in.Dst.IsValid() {
				fr.set(v, in.Dst, r)
			}
		case ir.OpRet:
			var rv int64
			if in.Src1.IsValid() {
				rv = fr.get(v, in.Src1)
			}
			return nil, true, rv, nil
		case ir.OpBr:
			if fr.get(v, in.Src1) != 0 {
				return in.Then, false, 0, nil
			}
			return in.Else, false, 0, nil
		case ir.OpJmp:
			return in.Then, false, 0, nil
		default:
			return nil, false, 0, fmt.Errorf("vm: %s: unknown opcode %v", f.Name, in.Op)
		}
	}
	return nil, false, 0, fmt.Errorf("vm: %s: block %s fell off the end", f.Name, b.Name)
}

func (fr *frame) get(v *VM, r ir.Reg) int64 {
	if r.IsPhys() {
		return v.phys[r.PhysNum()]
	}
	return fr.virt[r.VirtNum()]
}

func (fr *frame) set(v *VM, r ir.Reg, val int64) {
	if r.IsPhys() {
		v.phys[r.PhysNum()] = val
		return
	}
	fr.virt[r.VirtNum()] = val
}

func (fr *frame) ensureSpill(i int) {
	for len(fr.spill) <= i {
		fr.spill = append(fr.spill, 0)
	}
}

func (fr *frame) ensureSave(i int) {
	for len(fr.save) <= i {
		fr.save = append(fr.save, 0)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
