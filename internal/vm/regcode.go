package vm

// regcode.go lowers an *ir.Program into register-transfer code, the
// third engine's input (regexec.go). It goes beyond the stack-style
// bytecode compiler (bytecode.go) on four axes:
//
//   - Unified register bank. Each invocation executes against one flat
//     []int64 holding a copy of the referenced physical registers, the
//     virtual registers, the spill slots, and the save slots, in that
//     order. The compiler assigns every operand its direct bank index,
//     so the dispatch loop performs a single slice index per operand —
//     no phys-vs-frame branch, no slot rebasing at run time. The
//     physical prefix is copied in from the VM's global register file
//     at entry and copied back out at every exit (and around calls),
//     preserving the global-register semantics the other engines
//     implement directly.
//
//   - Loop-header superinstructions. On top of the pair fusions shared
//     with the bytecode engine (compare+branch, const+binop), the
//     compiler fuses whole loop-header shapes: the canonical 5-op loop
//     latch (const increment, in-place add, const bound, compare,
//     branch), const+compare+branch triples, and const+binop+spill.st
//     triples. Fused forms execute every constituent's architectural
//     effect literally, in order, through the bank, so aliased
//     operands behave exactly as in the unfused sequence.
//
//   - Quantum-batched step accounting. Instructions are grouped into
//     quanta — maximal straight-line runs ending at a terminator,
//     call, or trap. Each instruction carries the quantum's remaining
//     IR-instruction weight (rem) and each quantum head the total
//     (qlen); the dispatch loop charges a whole quantum against the
//     step budget on entry and touches no counter per instruction.
//     When a quantum cannot fully fit the remaining budget the loop
//     falls back to a per-instruction careful mode that reproduces the
//     tree interpreter's halt accounting exactly (regexec.go).
//
//   - Frames come from a chunked per-VM arena (regexec.go) instead of
//     sync.Pool, so steady-state execution allocates nothing.
//
// Malformed programs compile into the same trap instructions as the
// bytecode engine (bcBadOp, bcFellOff) and raise identical errors if —
// and only if — they execute.

import (
	"math"

	"repro/internal/ir"
)

// Regcode opcode space. Plain instructions reuse their ir.Op value;
// the compiled-only forms (traps, fusions) follow contiguously so the
// dispatch switch covers a dense range and compiles to a single jump
// table instead of a branch tree.
const (
	// Traps, mirroring bcBadOp/bcFellOff (the bytecode constants sit
	// at the top of the opcode byte, which would punch holes in the
	// jump table).
	rBadOp   ir.Op = ir.OpJmp + 1 + iota // unknown opcode (original in .a)
	rFellOff                             // block without terminator
	// Compare feeding the block's conditional branch (pair fusion):
	// dst/a/b from the compare, t1/t2 targets, ex = packed edges.
	rCmpEQBr
	rCmpNEBr
	rCmpLTBr
	rCmpLEBr
	rCmpGTBr
	rCmpGEBr
	// Constant materialized straight into a binary operation:
	// b = const register, imm = constant, dst/a from the binop,
	// t1 = inner opcode, t2 = operand form (0: a•K, 1: K•a, 2: K•K).
	rConstBin
	// const + compare + branch: the constant is materialized, the
	// compare consumes it per the form in .c (0: x•K, 1: K•x, 2: K•K),
	// and the branch dispatches on the result. dst = cmp result,
	// a = other operand, b = const register, imm = constant,
	// t1/t2 = targets, ex = packed edge indices.
	rConstCmpEQBr
	rConstCmpNEBr
	rConstCmpLTBr
	rConstCmpLEBr
	rConstCmpGTBr
	rConstCmpGEBr
	// The canonical 5-op loop latch:
	//	b = const K1; a = add a, b; c = const K2; dst = cmp a, c;
	//	br dst, t1, t2
	// imm packs K1 (high 32) and K2 (low 32), ex = packed edges.
	rLatchEQ
	rLatchNE
	rLatchLT
	rLatchLE
	rLatchGT
	rLatchGE
	// const + binop + spill.st: b = const imm; dst = t1<op,form t2> a;
	// bank[c] = dst. The Ov variant's store carries the spill flag and
	// bumps Stats.SpillStores when the third constituent executes.
	rConstBinSpillSt
	rConstBinSpillStOv
)

// rFusedCmpBr, fusedConstCmpBr, and fusedLatch map a compare opcode to
// its fused pair / triple / latch form.
func rFusedCmpBr(op ir.Op) ir.Op     { return rCmpEQBr + (op - ir.OpCmpEQ) }
func fusedConstCmpBr(op ir.Op) ir.Op { return rConstCmpEQBr + (op - ir.OpCmpEQ) }
func fusedLatch(op ir.Op) ir.Op      { return rLatchEQ + (op - ir.OpCmpEQ) }

// packI32 packs two int32-range constants into one imm, k1 high.
func packI32(k1, k2 int64) int64 {
	return int64(uint64(uint32(int32(k1)))<<32 | uint64(uint32(int32(k2))))
}

func fitsI32(k int64) bool { return k >= math.MinInt32 && k <= math.MaxInt32 }

// rinst is one pre-decoded register-transfer instruction. All register
// operands are direct bank indices (-1 = absent). Field meaning varies
// by op as documented on the opcode constants; for plain ops it
// mirrors binst with slot offsets pre-rebased into the bank.
//
// qlen/rem drive the quantum-batched step accounting: rem is the total
// IR-instruction weight strictly after this instruction within its
// quantum (for rolling the upfront charge back on a mid-quantum
// error), and qlen is the weight from this instruction through the
// quantum's end (the full quantum length when read at a quantum head —
// block starts and instructions following a call).
type rinst struct {
	op   ir.Op
	ov   uint8
	dst  int32
	a    int32
	b    int32
	c    int32
	t1   int32
	t2   int32
	qlen int32
	rem  int32
	imm  int64
	ex   int64
}

// rcFunc is one compiled function.
type rcFunc struct {
	name   string
	ins    []rinst
	entry  int32
	params []int32 // parameter bank indices
	calls  []bcCall

	// The bank layout: [0, physLen) is the physical-register prefix
	// copied in/out of the VM's global file; virtuals, spill slots,
	// and save slots follow. bankLen is the full frame size.
	physLen int
	bankLen int

	blockOf   []int32
	blockName []string
}

// block returns the name of the block containing instruction pc.
func (fc *rcFunc) block(pc int32) string {
	if int(pc) < len(fc.blockOf) {
		return fc.blockName[fc.blockOf[pc]]
	}
	return "?"
}

// rcProgram is a compiled program.
type rcProgram struct {
	funcs []*rcFunc
	main  int32
	edges []*ir.Edge // dense edge index -> CFG edge, for profiling
}

// edgeIndex assigns e a dense index shared across the compiled
// program, or -1 for a branch with no matching CFG edge.
func (c *rcProgram) edgeIndex(e *ir.Edge) int32 {
	if e == nil {
		return -1
	}
	c.edges = append(c.edges, e)
	return int32(len(c.edges)) - 1
}

// compileRegProgram lowers every function. physMin forces the physical
// prefix to cover at least [0, physMin) — the convention checker needs
// the whole callee-saved range resident in every bank, so the VM
// passes its csTo when a machine is configured.
func compileRegProgram(p *ir.Program, physMin int) *rcProgram {
	funcs := p.FuncsInOrder()
	c := &rcProgram{main: -1}
	index := make(map[string]int32, len(funcs))
	for i, f := range funcs {
		index[f.Name] = int32(i)
	}
	if mi, ok := index[p.Main]; ok {
		c.main = mi
	}
	for _, f := range funcs {
		c.funcs = append(c.funcs, c.compileRegFunc(f, index, physMin))
	}
	return c
}

func (c *rcProgram) compileRegFunc(f *ir.Func, index map[string]int32, physMin int) *rcFunc {
	fc := &rcFunc{name: f.Name}
	cap := f.Instrs() + len(f.Blocks)
	fc.ins = make([]rinst, 0, cap)
	fc.blockOf = make([]int32, 0, cap)

	// Pass 1: size the bank. The physical prefix covers exactly the
	// registers the function (or the convention checker) can touch;
	// virtual space covers only referenced virtuals; declared slot
	// counts are grown over out-of-range references, exactly as the
	// bytecode compiler does.
	physLen, virtSize := physMin, 0
	track := func(r ir.Reg) {
		if r.IsVirt() {
			if n := r.VirtNum() + 1; n > virtSize {
				virtSize = n
			}
		} else if r.IsPhys() {
			if n := r.PhysNum() + 1; n > physLen {
				physLen = n
			}
		}
	}
	for _, r := range f.Params {
		track(r)
	}
	spillSlots, saveSlots := f.SpillSlots, f.SaveSlots
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			track(in.Dst)
			track(in.Src1)
			track(in.Src2)
			for _, a := range in.Args {
				track(a)
			}
			switch in.Op {
			case ir.OpSpillLoad, ir.OpSpillStore:
				if n := int(in.Imm) + 1; n > spillSlots {
					spillSlots = n
				}
			case ir.OpSave, ir.OpRestore:
				if n := int(in.Imm) + 1; n > saveSlots {
					saveSlots = n
				}
			}
		}
	}
	spillBase := int64(physLen + virtSize)
	saveBase := spillBase + int64(spillSlots)
	fc.physLen = physLen
	fc.bankLen = physLen + virtSize + spillSlots + saveSlots

	// mr maps an IR register to its bank index.
	mr := func(r ir.Reg) int32 {
		switch {
		case r.IsPhys():
			return int32(r)
		case r.IsVirt():
			return int32(physLen + r.VirtNum())
		}
		return -1
	}
	for _, r := range f.Params {
		fc.params = append(fc.params, mr(r))
	}

	// Pass 2: emit, fusing greedily (longest pattern first). Branch
	// targets are patched after all block starts are known.
	start := make(map[*ir.Block]int32, len(f.Blocks))
	type patch struct {
		pc int32
		in *ir.Instr
		b  *ir.Block
	}
	var patches []patch
	for _, b := range f.Blocks {
		start[b] = int32(len(fc.ins))
		bi := int32(len(fc.blockName))
		fc.blockName = append(fc.blockName, b.Name)
		emit := func(d rinst) {
			fc.ins = append(fc.ins, d)
			fc.blockOf = append(fc.blockOf, bi)
		}
		plain := func(in *ir.Instr) bool {
			return ovClass(in) == ovNone && in.Dst.IsValid()
		}
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]

			// Loop latch: const; in-place add; const; cmp; br.
			if i+4 < len(b.Instrs) && in.Op == ir.OpConst && plain(in) && fitsI32(in.Imm) {
				add, c2, cmp, br := b.Instrs[i+1], b.Instrs[i+2], b.Instrs[i+3], b.Instrs[i+4]
				if add.Op == ir.OpAdd && plain(add) && add.Dst == add.Src1 && add.Src2 == in.Dst &&
					c2.Op == ir.OpConst && plain(c2) && fitsI32(c2.Imm) &&
					cmp.Op.IsCompare() && plain(cmp) && cmp.Src1 == add.Dst && cmp.Src2 == c2.Dst &&
					br.Op == ir.OpBr && ovClass(br) == ovNone && br.Src1 == cmp.Dst {
					patches = append(patches, patch{pc: int32(len(fc.ins)), in: br, b: b})
					emit(rinst{op: fusedLatch(cmp.Op),
						dst: mr(cmp.Dst), a: mr(add.Dst), b: mr(in.Dst), c: mr(c2.Dst),
						imm: packI32(in.Imm, c2.Imm)})
					i += 4
					continue
				}
			}

			// const + compare + branch.
			if i+2 < len(b.Instrs) && in.Op == ir.OpConst && plain(in) {
				cmp, br := b.Instrs[i+1], b.Instrs[i+2]
				if cmp.Op.IsCompare() && plain(cmp) &&
					br.Op == ir.OpBr && ovClass(br) == ovNone && br.Src1 == cmp.Dst {
					form, other := constForm(in.Dst, cmp.Src1, cmp.Src2)
					if form >= 0 {
						patches = append(patches, patch{pc: int32(len(fc.ins)), in: br, b: b})
						emit(rinst{op: fusedConstCmpBr(cmp.Op),
							dst: mr(cmp.Dst), a: mr(other), b: mr(in.Dst), c: form,
							imm: in.Imm})
						i += 2
						continue
					}
				}
			}

			// const + binop + spill.st.
			if i+2 < len(b.Instrs) && in.Op == ir.OpConst && plain(in) {
				bin, st := b.Instrs[i+1], b.Instrs[i+2]
				stOv := ovClass(st)
				if bin.Op.IsBinary() && plain(bin) &&
					st.Op == ir.OpSpillStore && (stOv == ovNone || stOv == ovSpillStore) &&
					st.Src1 == bin.Dst && st.Imm >= 0 && spillBase+st.Imm <= math.MaxInt32 {
					form, other := constForm(in.Dst, bin.Src1, bin.Src2)
					if form >= 0 {
						op := rConstBinSpillSt
						if stOv == ovSpillStore {
							op = rConstBinSpillStOv
						}
						emit(rinst{op: op,
							dst: mr(bin.Dst), a: mr(other), b: mr(in.Dst),
							c:  int32(spillBase + st.Imm),
							t1: int32(bin.Op), t2: form, imm: in.Imm})
						i += 2
						continue
					}
				}
			}

			// Pair fusions, shared with the bytecode engine.
			if ovClass(in) == ovNone && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if ovClass(next) == ovNone && in.Dst.IsValid() {
					if in.Op.IsCompare() && next.Op == ir.OpBr && next.Src1 == in.Dst {
						patches = append(patches, patch{pc: int32(len(fc.ins)), in: next, b: b})
						emit(rinst{op: rFusedCmpBr(in.Op),
							dst: mr(in.Dst), a: mr(in.Src1), b: mr(in.Src2)})
						i++
						continue
					}
					if in.Op == ir.OpConst && next.Op.IsBinary() && next.Dst.IsValid() {
						form, other := constForm(in.Dst, next.Src1, next.Src2)
						if form >= 0 {
							emit(rinst{op: rConstBin,
								dst: mr(next.Dst), a: mr(other), b: mr(in.Dst),
								imm: in.Imm, t1: int32(next.Op), t2: form})
							i++
							continue
						}
					}
				}
			}

			d := rinst{op: in.Op, ov: ovClass(in),
				dst: mr(in.Dst), a: mr(in.Src1), b: mr(in.Src2),
				imm: in.Imm, t1: -1, t2: -1}
			switch {
			case !in.Op.Valid():
				emit(rinst{op: rBadOp, a: int32(in.Op)})
				continue
			case in.Op == ir.OpSpillLoad || in.Op == ir.OpSpillStore:
				d.imm = spillBase + in.Imm
				if in.Imm < 0 {
					d.imm = -1 // panics on execution, like the other engines
				}
			case in.Op == ir.OpSave || in.Op == ir.OpRestore:
				d.imm = saveBase + in.Imm
				if in.Imm < 0 {
					d.imm = -1
				}
			case in.Op == ir.OpCall:
				args := make([]int32, len(in.Args))
				for i, a := range in.Args {
					args[i] = mr(a)
				}
				callee := int32(-1)
				if ci, ok := index[in.Callee]; ok {
					callee = ci
				}
				d.imm = int64(len(fc.calls))
				fc.calls = append(fc.calls, bcCall{callee: callee, name: in.Callee, args: args})
			case in.Op == ir.OpBr || in.Op == ir.OpJmp:
				patches = append(patches, patch{pc: int32(len(fc.ins)), in: in, b: b})
			}
			emit(d)
		}
		emit(rinst{op: rFellOff})
	}
	if len(fc.ins) == 0 || f.Entry == nil {
		fc.ins = append(fc.ins, rinst{op: rFellOff})
		fc.blockOf = append(fc.blockOf, int32(len(fc.blockName)))
		fc.blockName = append(fc.blockName, "?")
		fc.entry = int32(len(fc.ins)) - 1
	} else {
		fc.entry = start[f.Entry]
	}

	for _, pt := range patches {
		d := &fc.ins[pt.pc]
		switch pt.in.Op {
		case ir.OpBr:
			t1, ok1 := start[pt.in.Then]
			t2, ok2 := start[pt.in.Else]
			if !ok1 || !ok2 {
				*d = rinst{op: rBadOp, a: int32(pt.in.Op)}
				continue
			}
			d.t1, d.t2 = t1, t2
			d.ex = packEdges(c.edgeIndex(pt.b.SuccEdge(pt.in.Then)),
				c.edgeIndex(pt.b.SuccEdge(pt.in.Else)))
		case ir.OpJmp:
			t1, ok := start[pt.in.Then]
			if !ok {
				*d = rinst{op: rBadOp, a: int32(pt.in.Op)}
				continue
			}
			d.t1 = t1
			d.ex = int64(c.edgeIndex(pt.b.SuccEdge(pt.in.Then)))
		}
	}

	// Pass 3: segment into quanta and store the accounting weights.
	// Runs after patching because a patch can replace a fused branch
	// with a trap, changing its weight.
	for i := 0; i < len(fc.ins); {
		j := i
		var total int32
		for {
			total += rweight(fc.ins[j].op)
			if rquantumEnd(fc.ins[j].op) || j == len(fc.ins)-1 {
				break
			}
			j++
		}
		var cum int32
		for k := i; k <= j; k++ {
			w := rweight(fc.ins[k].op)
			cum += w
			fc.ins[k].rem = total - cum
			fc.ins[k].qlen = total - cum + w
		}
		i = j + 1
	}
	return fc
}

// constForm classifies how a const feeds a two-source consumer:
// 0 = other•const, 1 = const•other, 2 = const•const, -1 = no feed.
func constForm(cdst, src1, src2 ir.Reg) (int32, ir.Reg) {
	switch {
	case src1 == cdst && src2 == cdst:
		return 2, ir.NoReg
	case src2 == cdst:
		return 0, src1
	case src1 == cdst:
		return 1, src2
	}
	return -1, ir.NoReg
}

// rweight is an instruction's IR-instruction count for step
// accounting: fused forms charge every constituent, traps charge like
// the instruction they reproduce (rBadOp executes-then-errors, so 1;
// rFellOff is synthetic, so 0).
func rweight(op ir.Op) int32 {
	switch {
	case op == rFellOff:
		return 0
	case op >= rLatchEQ && op <= rLatchGE:
		return 5
	case op >= rConstCmpEQBr && op <= rConstCmpGEBr:
		return 3
	case op == rConstBinSpillSt || op == rConstBinSpillStOv:
		return 3
	case op >= rCmpEQBr && op <= rCmpGEBr:
		return 2
	case op == rConstBin:
		return 2
	}
	return 1
}

// rquantumEnd reports whether op terminates a straight-line quantum:
// anything that transfers control, flushes counters, or errors.
func rquantumEnd(op ir.Op) bool {
	switch op {
	case ir.OpCall, ir.OpRet, ir.OpBr, ir.OpJmp, rBadOp, rFellOff:
		return true
	}
	return (op >= rCmpEQBr && op <= rCmpGEBr) ||
		(op >= rConstCmpEQBr && op <= rConstCmpGEBr) ||
		(op >= rLatchEQ && op <= rLatchGE)
}
