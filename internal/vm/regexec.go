package vm

// regexec.go is the regcode engine's dispatch loop (see regcode.go for
// the compilation model). The hot loop charges the step budget once
// per straight-line quantum and performs zero per-instruction
// accounting; every operand access is a single index into the
// invocation's flat register bank. When a quantum might cross the
// remaining budget, execution switches to rcareful, a per-instruction
// interpreter that reproduces the tree engine's halt accounting
// exactly — entering it guarantees the run ends inside that quantum,
// so the careful path never needs call, return, or branch dispatch.
//
// The bank's physical prefix is a copy of the VM's global register
// file: copied in at entry, copied back out at returns and at every
// error raised in this frame, and exchanged around calls. Frames whose
// errors merely propagate from a callee do not copy out — the callee
// already left the authoritative values in v.phys.

import (
	"fmt"

	"repro/internal/ir"
)

// rcArena hands out frame banks from chunked backing arrays with
// LIFO mark/release, so steady-state execution allocates nothing.
// Handed-out banks are not zeroed; the caller initializes the physical
// prefix by copy and clears the rest.
type rcArena struct {
	chunks  [][]int64
	ci, off int
}

const rcChunkWords = 1 << 12

func (a *rcArena) alloc(n int) []int64 {
	for {
		if a.ci == len(a.chunks) {
			sz := rcChunkWords
			if n > sz {
				sz = n
			}
			a.chunks = append(a.chunks, make([]int64, sz))
		}
		if ch := a.chunks[a.ci]; a.off+n <= len(ch) {
			s := ch[a.off : a.off+n]
			a.off += n
			return s
		}
		a.ci, a.off = a.ci+1, 0
	}
}

func (a *rcArena) mark() (int, int)    { return a.ci, a.off }
func (a *rcArena) release(ci, off int) { a.ci, a.off = ci, off }

func (v *VM) runRegcode(args []int64) (int64, error) {
	c := v.rcode
	if c.main < 0 {
		return 0, fmt.Errorf("vm: main function %q not found", v.prog.Main)
	}
	if v.callDense == nil {
		v.callDense = make([]int64, len(c.funcs))
	}
	if v.cfg.CollectEdges && v.edgeDense == nil {
		v.edgeDense = make([]int64, len(c.edges))
	}
	val, err := v.rexec(c.main, args, 0)
	v.flushRegDense()
	return val, err
}

// flushRegDense mirrors flushDense for the regcode program's dense
// call and edge counters.
func (v *VM) flushRegDense() {
	c := v.rcode
	for i, n := range v.callDense {
		if n != 0 {
			v.Stats.Calls[c.funcs[i].name] += n
			v.callDense[i] = 0
		}
	}
	if v.edgeDense != nil {
		for i, n := range v.edgeDense {
			if n != 0 {
				v.EdgeCount[c.edges[i]] += n
				v.edgeDense[i] = 0
			}
		}
	}
}

// rleave releases an invocation's arena frame and convention snapshot.
func (v *VM) rleave(mc, moff, snapBase int) {
	v.arena.release(mc, moff)
	if snapBase >= 0 {
		v.snap = v.snap[:snapBase]
	}
}

// rbin evaluates a fused binary operation (bcConstBin's inner opcode
// space: every ir two-source ALU op including compares).
func rbin(op ir.Op, x, y int64) int64 {
	switch op {
	case ir.OpAdd:
		return x + y
	case ir.OpSub:
		return x - y
	case ir.OpMul:
		return x * y
	case ir.OpDiv:
		if y != 0 {
			return x / y
		}
	case ir.OpRem:
		if y != 0 {
			return x % y
		}
	case ir.OpAnd:
		return x & y
	case ir.OpOr:
		return x | y
	case ir.OpXor:
		return x ^ y
	case ir.OpShl:
		return x << uint(y&63)
	case ir.OpShr:
		return x >> uint(y&63)
	case ir.OpCmpEQ:
		return b2i(x == y)
	case ir.OpCmpNE:
		return b2i(x != y)
	case ir.OpCmpLT:
		return b2i(x < y)
	case ir.OpCmpLE:
		return b2i(x <= y)
	case ir.OpCmpGT:
		return b2i(x > y)
	case ir.OpCmpGE:
		return b2i(x >= y)
	}
	return 0
}

// rcmp evaluates the compare selected by a fused opcode's offset from
// its EQ variant.
func rcmp(rel ir.Op, x, y int64) int64 {
	switch rel {
	case 0:
		return b2i(x == y)
	case 1:
		return b2i(x != y)
	case 2:
		return b2i(x < y)
	case 3:
		return b2i(x <= y)
	case 4:
		return b2i(x > y)
	}
	return b2i(x >= y)
}

// constOperands resolves a const-feeding fused form to the operand
// pair: 0 = other•K, 1 = K•other, 2 = K•K. The other-operand register
// is read lazily because form 2 (const feeds both sources) has no
// other operand and the compiler stores -1 in the register field.
func constOperands(form int32, bank []int64, a int32, k int64) (int64, int64) {
	switch form {
	case 0:
		return bank[a], k
	case 1:
		return k, bank[a]
	}
	return k, k
}

// rexec runs one function invocation to completion.
func (v *VM) rexec(fi int32, args []int64, depth int) (int64, error) {
	c := v.rcode
	fc := c.funcs[fi]
	if depth > maxCallDepth {
		return 0, fmt.Errorf("vm: call depth exceeded in %s", fc.name)
	}
	if len(args) != len(fc.params) {
		return 0, fmt.Errorf("vm: %s called with %d args, want %d", fc.name, len(args), len(fc.params))
	}
	v.callDense[fi]++

	mc, moff := v.arena.mark()
	bank := v.arena.alloc(fc.bankLen)
	pl := fc.physLen
	copy(bank, v.phys[:pl])
	clear(bank[pl:])
	for i, p := range fc.params {
		bank[p] = args[i]
	}
	snapBase := -1
	if v.csPhys != nil {
		snapBase = len(v.snap)
		v.snap = append(v.snap, bank[v.csFrom:v.csTo]...)
	}

	ins := fc.ins
	edges := v.edgeDense
	heap := v.heap
	pc := int(fc.entry)

	var n, loads, stores int64 // flushed at calls, returns, and errors
	var cond int64             // fused compare-branch condition, see fusedBr
	budget := v.cfg.MaxSteps - v.steps
	if q := int64(ins[pc].qlen); n+q > budget {
		goto careful
	} else {
		n += q
	}

	for {
		in := &ins[pc]
		if in.ov != ovNone {
			switch in.ov {
			case ovSpillLoad:
				v.Stats.SpillLoads++
			case ovSpillStore:
				v.Stats.SpillStores++
			case ovSave:
				v.Stats.Saves++
			case ovRestore:
				v.Stats.Restores++
			case ovJumpBlock:
				v.Stats.JumpBlockJmps++
			}
		}

		switch in.op {
		case ir.OpNop:
		case ir.OpConst:
			bank[in.dst] = in.imm
		case ir.OpMov:
			bank[in.dst] = bank[in.a]
		case ir.OpAdd:
			bank[in.dst] = bank[in.a] + bank[in.b]
		case ir.OpSub:
			bank[in.dst] = bank[in.a] - bank[in.b]
		case ir.OpMul:
			bank[in.dst] = bank[in.a] * bank[in.b]
		case ir.OpDiv:
			if d := bank[in.b]; d == 0 {
				bank[in.dst] = 0
			} else {
				bank[in.dst] = bank[in.a] / d
			}
		case ir.OpRem:
			if d := bank[in.b]; d == 0 {
				bank[in.dst] = 0
			} else {
				bank[in.dst] = bank[in.a] % d
			}
		case ir.OpAnd:
			bank[in.dst] = bank[in.a] & bank[in.b]
		case ir.OpOr:
			bank[in.dst] = bank[in.a] | bank[in.b]
		case ir.OpXor:
			bank[in.dst] = bank[in.a] ^ bank[in.b]
		case ir.OpShl:
			bank[in.dst] = bank[in.a] << uint(bank[in.b]&63)
		case ir.OpShr:
			bank[in.dst] = bank[in.a] >> uint(bank[in.b]&63)
		case ir.OpNeg:
			bank[in.dst] = -bank[in.a]
		case ir.OpNot:
			bank[in.dst] = ^bank[in.a]
		case ir.OpCmpEQ:
			bank[in.dst] = b2i(bank[in.a] == bank[in.b])
		case ir.OpCmpNE:
			bank[in.dst] = b2i(bank[in.a] != bank[in.b])
		case ir.OpCmpLT:
			bank[in.dst] = b2i(bank[in.a] < bank[in.b])
		case ir.OpCmpLE:
			bank[in.dst] = b2i(bank[in.a] <= bank[in.b])
		case ir.OpCmpGT:
			bank[in.dst] = b2i(bank[in.a] > bank[in.b])
		case ir.OpCmpGE:
			bank[in.dst] = b2i(bank[in.a] >= bank[in.b])
		case ir.OpLoad:
			loads++
			addr := bank[in.a] + in.imm
			if addr < 0 || addr >= int64(len(heap)) {
				v.flushSeg(n-int64(in.rem), loads, stores)
				copy(v.phys[:pl], bank[:pl])
				v.rleave(mc, moff, snapBase)
				return 0, fmt.Errorf("vm: %s: load out of bounds at %d", fc.name, addr)
			}
			bank[in.dst] = heap[addr]
		case ir.OpStore:
			stores++
			addr := bank[in.a] + in.imm
			if addr < 0 || addr >= int64(len(heap)) {
				v.flushSeg(n-int64(in.rem), loads, stores)
				copy(v.phys[:pl], bank[:pl])
				v.rleave(mc, moff, snapBase)
				return 0, fmt.Errorf("vm: %s: store out of bounds at %d", fc.name, addr)
			}
			heap[addr] = bank[in.b]
		case ir.OpSpillLoad:
			loads++
			bank[in.dst] = bank[in.imm]
		case ir.OpSpillStore:
			stores++
			bank[in.imm] = bank[in.a]
		case ir.OpSave:
			stores++
			bank[in.imm] = bank[in.a]
		case ir.OpRestore:
			loads++
			bank[in.dst] = bank[in.imm]
		case ir.OpCall:
			cs := &fc.calls[in.imm]
			if cs.callee < 0 {
				v.flushSeg(n, loads, stores)
				copy(v.phys[:pl], bank[:pl])
				v.rleave(mc, moff, snapBase)
				return 0, fmt.Errorf("vm: %s calls undefined %q", fc.name, cs.name)
			}
			ab := len(v.argScratch)
			for _, a := range cs.args {
				v.argScratch = append(v.argScratch, bank[a])
			}
			v.flushSeg(n, loads, stores)
			n, loads, stores = 0, 0, 0
			copy(v.phys[:pl], bank[:pl])
			r, err := v.rexec(cs.callee, v.argScratch[ab:], depth+1)
			v.argScratch = v.argScratch[:ab]
			if err != nil {
				// The erroring frame copied the authoritative register
				// values out already; propagate without clobbering them.
				v.rleave(mc, moff, snapBase)
				return 0, err
			}
			copy(bank[:pl], v.phys[:pl])
			budget = v.cfg.MaxSteps - v.steps
			if in.dst >= 0 {
				bank[in.dst] = r
			}
			pc++
			if q := int64(ins[pc].qlen); n+q > budget {
				goto careful
			} else {
				n += q
			}
			continue
		case ir.OpRet:
			var rv int64
			if in.a >= 0 {
				rv = bank[in.a]
			}
			v.flushSeg(n, loads, stores)
			copy(v.phys[:pl], bank[:pl])
			if snapBase >= 0 {
				prev := v.snap[snapBase:]
				cur := v.phys[v.csFrom:v.csTo]
				for i := range cur {
					if cur[i] != prev[i] {
						err := fmt.Errorf("vm: %s violated callee-saved convention: %v changed from %d to %d",
							fc.name, v.csRegs[i], prev[i], cur[i])
						v.rleave(mc, moff, snapBase)
						return 0, err
					}
				}
			}
			v.rleave(mc, moff, snapBase)
			return rv, nil
		case ir.OpBr:
			if bank[in.a] != 0 {
				if edges != nil {
					if e := int32(uint32(in.ex >> 32)); e >= 0 {
						edges[e]++
					}
				}
				pc = int(in.t1)
			} else {
				if edges != nil {
					if e := int32(uint32(in.ex)); e >= 0 {
						edges[e]++
					}
				}
				pc = int(in.t2)
			}
			if q := int64(ins[pc].qlen); n+q > budget {
				goto careful
			} else {
				n += q
			}
			continue
		case ir.OpJmp:
			if edges != nil {
				if e := int32(in.ex); e >= 0 {
					edges[e]++
				}
			}
			pc = int(in.t1)
			if q := int64(ins[pc].qlen); n+q > budget {
				goto careful
			} else {
				n += q
			}
			continue
		case rCmpEQBr:
			cond = b2i(bank[in.a] == bank[in.b])
			goto fusedBr
		case rCmpNEBr:
			cond = b2i(bank[in.a] != bank[in.b])
			goto fusedBr
		case rCmpLTBr:
			cond = b2i(bank[in.a] < bank[in.b])
			goto fusedBr
		case rCmpLEBr:
			cond = b2i(bank[in.a] <= bank[in.b])
			goto fusedBr
		case rCmpGTBr:
			cond = b2i(bank[in.a] > bank[in.b])
			goto fusedBr
		case rCmpGEBr:
			cond = b2i(bank[in.a] >= bank[in.b])
			goto fusedBr
		case rConstBin, rConstBinSpillSt, rConstBinSpillStOv:
			bank[in.b] = in.imm
			x, y := constOperands(in.t2, bank, in.a, in.imm)
			var r int64
			switch ir.Op(in.t1) {
			case ir.OpAdd:
				r = x + y
			case ir.OpSub:
				r = x - y
			case ir.OpMul:
				r = x * y
			case ir.OpDiv:
				if y != 0 {
					r = x / y
				}
			case ir.OpRem:
				if y != 0 {
					r = x % y
				}
			case ir.OpAnd:
				r = x & y
			case ir.OpOr:
				r = x | y
			case ir.OpXor:
				r = x ^ y
			case ir.OpShl:
				r = x << uint(y&63)
			case ir.OpShr:
				r = x >> uint(y&63)
			case ir.OpCmpEQ:
				r = b2i(x == y)
			case ir.OpCmpNE:
				r = b2i(x != y)
			case ir.OpCmpLT:
				r = b2i(x < y)
			case ir.OpCmpLE:
				r = b2i(x <= y)
			case ir.OpCmpGT:
				r = b2i(x > y)
			case ir.OpCmpGE:
				r = b2i(x >= y)
			}
			bank[in.dst] = r
			if in.op != rConstBin {
				stores++
				if in.op == rConstBinSpillStOv {
					v.Stats.SpillStores++
				}
				bank[in.c] = r
			}
		case rConstCmpEQBr:
			bank[in.b] = in.imm
			x, y := constOperands(in.c, bank, in.a, in.imm)
			cond = b2i(x == y)
			goto fusedBr
		case rConstCmpNEBr:
			bank[in.b] = in.imm
			x, y := constOperands(in.c, bank, in.a, in.imm)
			cond = b2i(x != y)
			goto fusedBr
		case rConstCmpLTBr:
			bank[in.b] = in.imm
			x, y := constOperands(in.c, bank, in.a, in.imm)
			cond = b2i(x < y)
			goto fusedBr
		case rConstCmpLEBr:
			bank[in.b] = in.imm
			x, y := constOperands(in.c, bank, in.a, in.imm)
			cond = b2i(x <= y)
			goto fusedBr
		case rConstCmpGTBr:
			bank[in.b] = in.imm
			x, y := constOperands(in.c, bank, in.a, in.imm)
			cond = b2i(x > y)
			goto fusedBr
		case rConstCmpGEBr:
			bank[in.b] = in.imm
			x, y := constOperands(in.c, bank, in.a, in.imm)
			cond = b2i(x >= y)
			goto fusedBr
		case rLatchEQ:
			k1 := int64(int32(uint32(in.imm >> 32)))
			bank[in.b] = k1
			bank[in.a] += k1
			k2 := int64(int32(uint32(in.imm)))
			bank[in.c] = k2
			cond = b2i(bank[in.a] == k2)
			goto fusedBr
		case rLatchNE:
			k1 := int64(int32(uint32(in.imm >> 32)))
			bank[in.b] = k1
			bank[in.a] += k1
			k2 := int64(int32(uint32(in.imm)))
			bank[in.c] = k2
			cond = b2i(bank[in.a] != k2)
			goto fusedBr
		case rLatchLT:
			k1 := int64(int32(uint32(in.imm >> 32)))
			bank[in.b] = k1
			bank[in.a] += k1
			k2 := int64(int32(uint32(in.imm)))
			bank[in.c] = k2
			cond = b2i(bank[in.a] < k2)
			goto fusedBr
		case rLatchLE:
			k1 := int64(int32(uint32(in.imm >> 32)))
			bank[in.b] = k1
			bank[in.a] += k1
			k2 := int64(int32(uint32(in.imm)))
			bank[in.c] = k2
			cond = b2i(bank[in.a] <= k2)
			goto fusedBr
		case rLatchGT:
			k1 := int64(int32(uint32(in.imm >> 32)))
			bank[in.b] = k1
			bank[in.a] += k1
			k2 := int64(int32(uint32(in.imm)))
			bank[in.c] = k2
			cond = b2i(bank[in.a] > k2)
			goto fusedBr
		case rLatchGE:
			k1 := int64(int32(uint32(in.imm >> 32)))
			bank[in.b] = k1
			bank[in.a] += k1
			k2 := int64(int32(uint32(in.imm)))
			bank[in.c] = k2
			cond = b2i(bank[in.a] >= k2)
			goto fusedBr
		case rFellOff:
			// Synthetic: qlen never counted it, so n is already right.
			v.flushSeg(n, loads, stores)
			copy(v.phys[:pl], bank[:pl])
			v.rleave(mc, moff, snapBase)
			return 0, fmt.Errorf("vm: %s: block %s fell off the end", fc.name, fc.block(int32(pc)))
		default: // rBadOp and anything unexpected
			v.flushSeg(n, loads, stores)
			copy(v.phys[:pl], bank[:pl])
			v.rleave(mc, moff, snapBase)
			return 0, fmt.Errorf("vm: %s: unknown opcode %v", fc.name, ir.Op(in.a))
		}
		pc++
		continue

		// fusedBr finishes every fused compare-branch superinstruction:
		// store the condition, count the taken edge, branch, and charge
		// the target's quantum.
	fusedBr:
		bank[in.dst] = cond
		if cond != 0 {
			if edges != nil {
				if e := int32(uint32(in.ex >> 32)); e >= 0 {
					edges[e]++
				}
			}
			pc = int(in.t1)
		} else {
			if edges != nil {
				if e := int32(uint32(in.ex)); e >= 0 {
					edges[e]++
				}
			}
			pc = int(in.t2)
		}
		if q := int64(ins[pc].qlen); n+q > budget {
			goto careful
		} else {
			n += q
		}
	}

careful:
	val, err := v.rcareful(fc, bank, pc, n, loads, stores, budget)
	copy(v.phys[:pl], bank[:pl])
	v.rleave(mc, moff, snapBase)
	return val, err
}

// rcareful executes from a quantum head whose full length may not fit
// the remaining step budget, with the tree engine's per-instruction
// accounting. Entering it guarantees the run ends within this quantum:
// straight-line quanta admit no early exit, so the budget runs out (or
// an error fires) at or before the quantum-ending instruction — which
// is why the control-flow opcodes below are unreachable.
func (v *VM) rcareful(fc *rcFunc, bank []int64, pc int, n, loads, stores, budget int64) (int64, error) {
	ins := fc.ins
	heap := v.heap
	halt := func() (int64, error) {
		v.flushSeg(n, loads, stores)
		v.Stats.Instrs--
		return 0, haltErr(fc.name, fc.block(int32(pc)))
	}
	for {
		in := &ins[pc]
		n++
		if n > budget {
			if in.op == rFellOff {
				v.flushSeg(n-1, loads, stores)
				return 0, fmt.Errorf("vm: %s: block %s fell off the end", fc.name, fc.block(int32(pc)))
			}
			return halt()
		}
		if in.ov != ovNone {
			switch in.ov {
			case ovSpillLoad:
				v.Stats.SpillLoads++
			case ovSpillStore:
				v.Stats.SpillStores++
			case ovSave:
				v.Stats.Saves++
			case ovRestore:
				v.Stats.Restores++
			case ovJumpBlock:
				v.Stats.JumpBlockJmps++
			}
		}

		switch in.op {
		case ir.OpNop:
		case ir.OpConst:
			bank[in.dst] = in.imm
		case ir.OpMov:
			bank[in.dst] = bank[in.a]
		case ir.OpAdd:
			bank[in.dst] = bank[in.a] + bank[in.b]
		case ir.OpSub:
			bank[in.dst] = bank[in.a] - bank[in.b]
		case ir.OpMul:
			bank[in.dst] = bank[in.a] * bank[in.b]
		case ir.OpDiv:
			if d := bank[in.b]; d == 0 {
				bank[in.dst] = 0
			} else {
				bank[in.dst] = bank[in.a] / d
			}
		case ir.OpRem:
			if d := bank[in.b]; d == 0 {
				bank[in.dst] = 0
			} else {
				bank[in.dst] = bank[in.a] % d
			}
		case ir.OpAnd:
			bank[in.dst] = bank[in.a] & bank[in.b]
		case ir.OpOr:
			bank[in.dst] = bank[in.a] | bank[in.b]
		case ir.OpXor:
			bank[in.dst] = bank[in.a] ^ bank[in.b]
		case ir.OpShl:
			bank[in.dst] = bank[in.a] << uint(bank[in.b]&63)
		case ir.OpShr:
			bank[in.dst] = bank[in.a] >> uint(bank[in.b]&63)
		case ir.OpNeg:
			bank[in.dst] = -bank[in.a]
		case ir.OpNot:
			bank[in.dst] = ^bank[in.a]
		case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
			bank[in.dst] = rcmp(in.op-ir.OpCmpEQ, bank[in.a], bank[in.b])
		case ir.OpLoad:
			loads++
			addr := bank[in.a] + in.imm
			if addr < 0 || addr >= int64(len(heap)) {
				v.flushSeg(n, loads, stores)
				return 0, fmt.Errorf("vm: %s: load out of bounds at %d", fc.name, addr)
			}
			bank[in.dst] = heap[addr]
		case ir.OpStore:
			stores++
			addr := bank[in.a] + in.imm
			if addr < 0 || addr >= int64(len(heap)) {
				v.flushSeg(n, loads, stores)
				return 0, fmt.Errorf("vm: %s: store out of bounds at %d", fc.name, addr)
			}
			heap[addr] = bank[in.b]
		case ir.OpSpillLoad:
			loads++
			bank[in.dst] = bank[in.imm]
		case ir.OpSpillStore:
			stores++
			bank[in.imm] = bank[in.a]
		case ir.OpSave:
			stores++
			bank[in.imm] = bank[in.a]
		case ir.OpRestore:
			loads++
			bank[in.dst] = bank[in.imm]
		case rCmpEQBr, rCmpNEBr, rCmpLTBr, rCmpLEBr, rCmpGTBr, rCmpGEBr:
			bank[in.dst] = rcmp(in.op-rCmpEQBr, bank[in.a], bank[in.b])
			n++
			if n > budget {
				return halt()
			}
			panic("vm: regcode careful mode survived a fused branch")
		case rConstBin:
			bank[in.b] = in.imm
			n++
			if n > budget {
				return halt()
			}
			x, y := constOperands(in.t2, bank, in.a, in.imm)
			bank[in.dst] = rbin(ir.Op(in.t1), x, y)
		case rConstCmpEQBr, rConstCmpNEBr, rConstCmpLTBr, rConstCmpLEBr, rConstCmpGTBr, rConstCmpGEBr:
			bank[in.b] = in.imm
			n++
			if n > budget {
				return halt()
			}
			x, y := constOperands(in.c, bank, in.a, in.imm)
			bank[in.dst] = rcmp(in.op-rConstCmpEQBr, x, y)
			n++
			if n > budget {
				return halt()
			}
			panic("vm: regcode careful mode survived a fused branch")
		case rLatchEQ, rLatchNE, rLatchLT, rLatchLE, rLatchGT, rLatchGE:
			bank[in.b] = int64(int32(uint32(in.imm >> 32)))
			n++
			if n > budget {
				return halt()
			}
			bank[in.a] += bank[in.b]
			n++
			if n > budget {
				return halt()
			}
			bank[in.c] = int64(int32(uint32(in.imm)))
			n++
			if n > budget {
				return halt()
			}
			bank[in.dst] = rcmp(in.op-rLatchEQ, bank[in.a], bank[in.c])
			n++
			if n > budget {
				return halt()
			}
			panic("vm: regcode careful mode survived a fused branch")
		case rConstBinSpillSt, rConstBinSpillStOv:
			bank[in.b] = in.imm
			n++
			if n > budget {
				return halt()
			}
			x, y := constOperands(in.t2, bank, in.a, in.imm)
			res := rbin(ir.Op(in.t1), x, y)
			bank[in.dst] = res
			n++
			if n > budget {
				return halt()
			}
			stores++
			if in.op == rConstBinSpillStOv {
				v.Stats.SpillStores++
			}
			bank[in.c] = res
		case rFellOff:
			v.flushSeg(n-1, loads, stores)
			return 0, fmt.Errorf("vm: %s: block %s fell off the end", fc.name, fc.block(int32(pc)))
		case ir.OpCall, ir.OpRet, ir.OpBr, ir.OpJmp:
			panic("vm: regcode careful mode reached a quantum boundary")
		default: // rBadOp and anything unexpected
			v.flushSeg(n, loads, stores)
			return 0, fmt.Errorf("vm: %s: unknown opcode %v", fc.name, ir.Op(in.a))
		}
		pc++
	}
}
