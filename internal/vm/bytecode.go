package vm

// bytecode.go lowers an *ir.Program into the flat, pre-decoded form
// the default engine executes (exec.go). Each function is compiled
// exactly once, at the VM's first Run:
//
//   - every instruction becomes one fixed-size binst with its operand
//     registers as plain indices (phys < ir.VirtBase, virt rebased
//     above it) and its overhead class (spill load/store, save,
//     restore, jump-block jump) precomputed into a byte, so the
//     dispatch loop never re-tests flag bits;
//   - branch targets are resolved to instruction indices, and the CFG
//     edge each branch traverses is resolved to a dense edge index, so
//     edge profiling increments a slice instead of a map;
//   - callees are resolved to dense function indices, so calls never
//     look up the program's function map;
//   - spill and save slots are rebased to absolute offsets in a single
//     flat frame array sized exactly (virtuals, then spill slots, then
//     save slots), so frames come from a sync.Pool and never grow
//     mid-run.
//
// Malformed programs the tree interpreter only rejects when execution
// reaches the bad spot (undefined callees, unknown opcodes, blocks
// without terminators) compile into trap instructions that raise the
// identical error if — and only if — they execute.

import (
	"sync"

	"repro/internal/ir"
)

// Trap opcodes, outside the ir.Op space. They reproduce the tree
// interpreter's runtime errors for malformed programs lazily.
const (
	bcBadOp   ir.Op = 0xFD // unknown opcode (original op byte in .a)
	bcFellOff ir.Op = 0xFE // block without terminator
)

// Fused opcodes: adjacent instruction pairs combined into a single
// dispatch at compile time. Safe because branch targets are always
// block heads — control never enters the middle of a pair — and the
// executor still performs (and accounts) both instructions' effects,
// including halting between them when the step budget ends there.
const (
	// Compare feeding the block's conditional branch:
	// dst/a/b from the compare, t1/t2/imm (targets, edges) from the br.
	bcCmpEQBr ir.Op = 0xC0
	bcCmpNEBr ir.Op = 0xC1
	bcCmpLTBr ir.Op = 0xC2
	bcCmpLEBr ir.Op = 0xC3
	bcCmpGTBr ir.Op = 0xC4
	bcCmpGEBr ir.Op = 0xC5
	// Constant materialized straight into a binary operation:
	// b = const register, imm = constant, dst/a from the binop,
	// t1 = inner opcode, t2 = operand form (0: a•c, 1: c•a, 2: c•c).
	bcConstBin ir.Op = 0xC8
)

// fusedCmpBr maps a compare opcode to its fused compare-branch form.
func fusedCmpBr(op ir.Op) ir.Op {
	return bcCmpEQBr + ir.Op(op-ir.OpCmpEQ)
}

// Overhead classes, precomputed from (Op, Flags) with exactly the
// tree interpreter's attribution rules.
const (
	ovNone uint8 = iota
	ovSpillLoad
	ovSpillStore
	ovSave
	ovRestore
	ovJumpBlock
)

func ovClass(in *ir.Instr) uint8 {
	switch {
	case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillLoad:
		return ovSpillLoad
	case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillStore:
		return ovSpillStore
	case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpSave:
		return ovSave
	case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpRestore:
		return ovRestore
	case in.Flags&ir.FlagJumpBlock != 0:
		return ovJumpBlock
	}
	return ovNone
}

// binst is one pre-decoded instruction. Registers are stored as plain
// indices: [0, ir.VirtBase) addresses the global physical register
// file, values >= ir.VirtBase address the frame (rebased by VirtBase),
// and -1 means absent. Meaning of the remaining fields by op:
//
//	const            imm = constant
//	load/store       imm = address offset
//	spill.*/save/restore  imm = absolute frame offset (pre-rebased)
//	call             imm = index into the function's call table
//	br               t1/t2 = then/else instruction indices,
//	                 imm = packed then/else dense edge indices
//	jmp              t1 = target instruction index, imm = edge index
type binst struct {
	op  ir.Op
	ov  uint8
	dst int32
	a   int32
	b   int32
	t1  int32
	t2  int32
	imm int64
}

// packEdges packs two dense edge indices (-1 = edge absent) into an
// imm for OpBr: then-edge in the high half, else-edge in the low half.
func packEdges(e1, e2 int32) int64 {
	return int64(uint64(uint32(e1))<<32 | uint64(uint32(e2)))
}

// bcCall is one call site's side data.
type bcCall struct {
	callee int32  // dense function index, -1 if undefined
	name   string // callee name, for the undefined-function error
	args   []int32
}

// bcFunc is one compiled function.
type bcFunc struct {
	name   string
	ins    []binst
	entry  int32   // instruction index of the entry block
	params []int32 // parameter register indices
	calls  []bcCall

	// Frames are single flat arrays: virtuals at [0, numVirt), spill
	// slots at [numVirt, saveBase), save slots at [saveBase, frameLen).
	frameLen int
	pool     sync.Pool // of *[]int64, each exactly frameLen long

	// blockOf/blockName attribute an instruction index back to its
	// basic block, for error messages only.
	blockOf   []int32
	blockName []string
}

// block returns the name of the block containing instruction pc.
func (fc *bcFunc) block(pc int32) string {
	if int(pc) < len(fc.blockOf) {
		return fc.blockName[fc.blockOf[pc]]
	}
	return "?"
}

// bcProgram is a compiled program.
type bcProgram struct {
	funcs []*bcFunc
	main  int32      // dense index of the main function, -1 if absent
	edges []*ir.Edge // dense edge index -> CFG edge, for profiling
}

// compileProgram lowers every function. It never fails: malformed
// constructs become traps that error at execution time, matching the
// tree interpreter's lazy error discipline.
func compileProgram(p *ir.Program) *bcProgram {
	funcs := p.FuncsInOrder()
	c := &bcProgram{main: -1}
	index := make(map[string]int32, len(funcs))
	for i, f := range funcs {
		index[f.Name] = int32(i)
	}
	if mi, ok := index[p.Main]; ok {
		c.main = mi
	}
	for _, f := range funcs {
		c.funcs = append(c.funcs, c.compileFunc(f, index))
	}
	return c
}

func (c *bcProgram) compileFunc(f *ir.Func, index map[string]int32) *bcFunc {
	fc := &bcFunc{name: f.Name}
	// One extra slot per block for the fell-off-the-end trap.
	cap := f.Instrs() + len(f.Blocks)
	fc.ins = make([]binst, 0, cap)
	fc.blockOf = make([]int32, 0, cap)
	for _, r := range f.Params {
		fc.params = append(fc.params, int32(r))
	}

	// Size the frame exactly. Virtual space covers only the registers
	// the code actually references — after register allocation every
	// operand is physical and the virtual area collapses to nothing,
	// however high f.NumVirt grew during compilation. The declared
	// slot counts are trusted but grown over any out-of-range slot
	// reference (hand-built programs may reference slots they never
	// declared; the tree interpreter grew frames lazily for those), so
	// frames never grow mid-run.
	virtSize := 0
	track := func(r ir.Reg) {
		if r.IsVirt() && r.VirtNum()+1 > virtSize {
			virtSize = r.VirtNum() + 1
		}
	}
	for _, r := range f.Params {
		track(r)
	}
	spillSlots, saveSlots := f.SpillSlots, f.SaveSlots
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			track(in.Dst)
			track(in.Src1)
			track(in.Src2)
			for _, a := range in.Args {
				track(a)
			}
			switch in.Op {
			case ir.OpSpillLoad, ir.OpSpillStore:
				if n := int(in.Imm) + 1; n > spillSlots {
					spillSlots = n
				}
			case ir.OpSave, ir.OpRestore:
				if n := int(in.Imm) + 1; n > saveSlots {
					saveSlots = n
				}
			}
		}
	}
	spillBase := int64(virtSize)
	saveBase := spillBase + int64(spillSlots)
	fc.frameLen = virtSize + spillSlots + saveSlots
	frameLen := fc.frameLen
	fc.pool.New = func() any {
		s := make([]int64, frameLen)
		return &s
	}

	// Emit blocks in layout order, recording starts for target
	// resolution. Branches are patched after all starts are known.
	start := make(map[*ir.Block]int32, len(f.Blocks))
	type patch struct {
		pc int32
		in *ir.Instr
		b  *ir.Block
	}
	var patches []patch
	for _, b := range f.Blocks {
		start[b] = int32(len(fc.ins))
		bi := int32(len(fc.blockName))
		fc.blockName = append(fc.blockName, b.Name)
		emit := func(d binst) {
			fc.ins = append(fc.ins, d)
			fc.blockOf = append(fc.blockOf, bi)
		}
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			// Pair fusion: combine an instruction with its successor
			// into one dispatch when both are plain (no overhead
			// class) and the pair matches a fused form.
			if ovClass(in) == ovNone && i+1 < len(b.Instrs) {
				next := b.Instrs[i+1]
				if ovClass(next) == ovNone && in.Dst.IsValid() {
					if in.Op.IsCompare() && next.Op == ir.OpBr && next.Src1 == in.Dst {
						patches = append(patches, patch{pc: int32(len(fc.ins)), in: next, b: b})
						emit(binst{op: fusedCmpBr(in.Op),
							dst: int32(in.Dst), a: int32(in.Src1), b: int32(in.Src2)})
						i++
						continue
					}
					if in.Op == ir.OpConst && next.Op.IsBinary() && next.Dst.IsValid() {
						form, other := -1, ir.NoReg
						switch {
						case next.Src1 == in.Dst && next.Src2 == in.Dst:
							form = 2
						case next.Src2 == in.Dst:
							form, other = 0, next.Src1
						case next.Src1 == in.Dst:
							form, other = 1, next.Src2
						}
						if form >= 0 {
							emit(binst{op: bcConstBin,
								dst: int32(next.Dst), a: int32(other), b: int32(in.Dst),
								imm: in.Imm, t1: int32(next.Op), t2: int32(form)})
							i++
							continue
						}
					}
				}
			}
			d := binst{op: in.Op, ov: ovClass(in),
				dst: int32(in.Dst), a: int32(in.Src1), b: int32(in.Src2),
				imm: in.Imm, t1: -1, t2: -1}
			switch {
			case !in.Op.Valid():
				emit(binst{op: bcBadOp, a: int32(in.Op)})
				continue
			case in.Op == ir.OpSpillLoad || in.Op == ir.OpSpillStore:
				d.imm = spillBase + in.Imm
				if in.Imm < 0 {
					d.imm = -1 // panics on execution, like the tree engine
				}
			case in.Op == ir.OpSave || in.Op == ir.OpRestore:
				d.imm = saveBase + in.Imm
				if in.Imm < 0 {
					d.imm = -1
				}
			case in.Op == ir.OpCall:
				args := make([]int32, len(in.Args))
				for i, a := range in.Args {
					args[i] = int32(a)
				}
				callee := int32(-1)
				if ci, ok := index[in.Callee]; ok {
					callee = ci
				}
				d.imm = int64(len(fc.calls))
				fc.calls = append(fc.calls, bcCall{callee: callee, name: in.Callee, args: args})
			case in.Op == ir.OpBr || in.Op == ir.OpJmp:
				patches = append(patches, patch{pc: int32(len(fc.ins)), in: in, b: b})
			}
			emit(d)
		}
		// A block without a terminator runs off its end; the trap
		// reproduces the tree interpreter's error without counting an
		// extra executed instruction.
		emit(binst{op: bcFellOff})
	}
	if len(fc.ins) == 0 || f.Entry == nil {
		// No entry to run: executing the function immediately errors.
		fc.ins = append(fc.ins, binst{op: bcFellOff})
		fc.blockOf = append(fc.blockOf, int32(len(fc.blockName)))
		fc.blockName = append(fc.blockName, "?")
		fc.entry = int32(len(fc.ins)) - 1
	} else {
		fc.entry = start[f.Entry]
	}

	for _, pt := range patches {
		d := &fc.ins[pt.pc]
		switch pt.in.Op {
		case ir.OpBr:
			t1, ok1 := start[pt.in.Then]
			t2, ok2 := start[pt.in.Else]
			if !ok1 || !ok2 {
				// Target outside the function: the tree interpreter
				// crashes on this; trap with an error instead.
				*d = binst{op: bcBadOp, a: int32(pt.in.Op)}
				continue
			}
			d.t1, d.t2 = t1, t2
			d.imm = packEdges(c.edgeIndex(pt.b.SuccEdge(pt.in.Then)),
				c.edgeIndex(pt.b.SuccEdge(pt.in.Else)))
		case ir.OpJmp:
			t1, ok := start[pt.in.Then]
			if !ok {
				*d = binst{op: bcBadOp, a: int32(pt.in.Op)}
				continue
			}
			d.t1 = t1
			d.imm = int64(c.edgeIndex(pt.b.SuccEdge(pt.in.Then)))
		}
	}
	return fc
}

// edgeIndex assigns e a dense index shared across the whole compiled
// program, or -1 for a branch with no matching CFG edge (the tree
// interpreter silently skips counting those).
func (c *bcProgram) edgeIndex(e *ir.Edge) int32 {
	if e == nil {
		return -1
	}
	c.edges = append(c.edges, e)
	return int32(len(c.edges)) - 1
}
