package vm

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestNopAndSpillSlots(t *testing.T) {
	bu := ir.NewBuilder("sp", 1)
	bu.Block("entry")
	bu.Emit(&ir.Instr{Op: ir.OpNop, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
	bu.Emit(&ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, Src1: bu.F.Params[0],
		Src2: ir.NoReg, Imm: 2, Flags: ir.FlagSpill})
	v := bu.F.NewVirt()
	bu.Emit(&ir.Instr{Op: ir.OpSpillLoad, Dst: v, Src1: ir.NoReg, Src2: ir.NoReg,
		Imm: 2, Flags: ir.FlagSpill})
	bu.Ret(v)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	m := New(p, Config{})
	got, err := m.Run(77)
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("spill roundtrip = %d, want 77", got)
	}
	if m.Stats.SpillLoads != 1 || m.Stats.SpillStores != 1 {
		t.Errorf("spill counters = %d/%d", m.Stats.SpillLoads, m.Stats.SpillStores)
	}
	if m.Stats.Overhead() != 2 {
		t.Errorf("overhead = %d, want 2", m.Stats.Overhead())
	}
}

func TestWrongArity(t *testing.T) {
	bu := ir.NewBuilder("f", 2)
	bu.Block("entry")
	bu.Ret(bu.F.Params[0])
	p := ir.NewProgram()
	p.Add(bu.Finish())
	if _, err := New(p, Config{}).Run(1); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("arity error not reported: %v", err)
	}
}

func TestMissingMain(t *testing.T) {
	p := ir.NewProgram()
	p.Main = "ghost"
	if _, err := New(p, Config{}).Run(); err == nil {
		t.Error("missing main not reported")
	}
}

func TestUndefinedCallee(t *testing.T) {
	bu := ir.NewBuilder("f", 0)
	bu.Block("entry")
	bu.Call(ir.NoReg, "ghost")
	bu.Ret(ir.NoReg)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	if _, err := New(p, Config{}).Run(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined callee not reported: %v", err)
	}
}

func TestStoreOutOfBounds(t *testing.T) {
	bu := ir.NewBuilder("f", 0)
	bu.Block("entry")
	addr := bu.Const(-5)
	val := bu.Const(1)
	bu.Store(addr, 0, val)
	bu.Ret(ir.NoReg)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	if _, err := New(p, Config{}).Run(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("negative store address not caught: %v", err)
	}
}

func TestNestedCallsPreserveConvention(t *testing.T) {
	// leaf saves/restores correctly; mid calls leaf twice; convention
	// holds transitively.
	m := machine.PARISC()
	leaf := ir.NewBuilder("leaf", 1)
	leaf.Block("entry")
	leaf.Emit(&ir.Instr{Op: ir.OpSave, Dst: ir.NoReg, Src1: ir.Phys(11), Src2: ir.NoReg,
		Imm: 0, Flags: ir.FlagSaveRestore})
	leaf.Emit(&ir.Instr{Op: ir.OpConst, Dst: ir.Phys(11), Src1: ir.NoReg, Src2: ir.NoReg, Imm: 1})
	leaf.Emit(&ir.Instr{Op: ir.OpRestore, Dst: ir.Phys(11), Src1: ir.NoReg, Src2: ir.NoReg,
		Imm: 0, Flags: ir.FlagSaveRestore})
	leaf.Ret(leaf.F.Params[0])
	lf := leaf.Finish()
	lf.SaveSlots = 1

	mid := ir.NewBuilder("mid", 1)
	mid.Block("entry")
	r1 := mid.F.NewVirt()
	mid.Call(r1, "leaf", mid.F.Params[0])
	r2 := mid.F.NewVirt()
	mid.Call(r2, "leaf", r1)
	mid.Ret(r2)

	p := ir.NewProgram()
	p.Add(mid.Finish())
	p.Add(lf)
	p.Main = "mid"
	v := New(p, Config{Machine: m})
	got, err := v.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("result = %d, want 9", got)
	}
	if v.Stats.Saves != 2 || v.Stats.Restores != 2 {
		t.Errorf("save/restore = %d/%d, want 2/2", v.Stats.Saves, v.Stats.Restores)
	}
	if v.Stats.Calls["leaf"] != 2 {
		t.Errorf("leaf calls = %d", v.Stats.Calls["leaf"])
	}
}

func TestStatsLoadsIncludeAllClasses(t *testing.T) {
	bu := ir.NewBuilder("f", 0)
	bu.Block("entry")
	// One of each memory class.
	addr := bu.Const(10)
	bu.Store(addr, 0, addr)
	bu.Load(addr, 0)
	bu.Emit(&ir.Instr{Op: ir.OpSpillStore, Dst: ir.NoReg, Src1: addr, Src2: ir.NoReg, Imm: 0})
	v := bu.F.NewVirt()
	bu.Emit(&ir.Instr{Op: ir.OpSpillLoad, Dst: v, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 0})
	bu.Emit(&ir.Instr{Op: ir.OpSave, Dst: ir.NoReg, Src1: ir.Phys(11), Src2: ir.NoReg, Imm: 0})
	bu.Emit(&ir.Instr{Op: ir.OpRestore, Dst: ir.Phys(11), Src1: ir.NoReg, Src2: ir.NoReg, Imm: 0})
	bu.Ret(ir.NoReg)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	m := New(p, Config{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Loads != 3 || m.Stats.Stores != 3 {
		t.Errorf("loads/stores = %d/%d, want 3/3 (heap+spill+save classes)",
			m.Stats.Loads, m.Stats.Stores)
	}
	// Unflagged spill/save instructions are not overhead.
	if m.Stats.Overhead() != 0 {
		t.Errorf("unflagged instructions counted as overhead: %d", m.Stats.Overhead())
	}
}
