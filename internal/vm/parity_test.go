package vm_test

// Differential parity harness: the bytecode engine (the default), the
// register-transfer regcode engine, and the legacy tree-walking
// interpreter must agree exactly — return value, every Stats counter
// including the per-function call map, the per-edge execution counts,
// and error messages — on every checked-in testdata program and on
// hundreds of generated programs, raw and after every placement
// strategy, including step-limit halts.

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/vm"
)

// runEngine executes prog on one engine and returns everything
// observable about the run.
type runOutcome struct {
	val   int64
	err   string
	stats vm.Stats
	edges map[*ir.Edge]int64
}

func runEngine(prog *ir.Program, e vm.Engine, cfg vm.Config, args []int64) runOutcome {
	cfg.Engine = e
	m := vm.New(prog, cfg)
	val, err := m.Run(args...)
	out := runOutcome{val: val, stats: m.Stats.Snapshot(), edges: m.EdgeCount}
	if err != nil {
		out.err = err.Error()
	}
	return out
}

func assertParity(t *testing.T, label string, prog *ir.Program, cfg vm.Config, args []int64) {
	t.Helper()
	tr := runEngine(prog, vm.EngineTree, cfg, args)
	for _, e := range []vm.Engine{vm.EngineBytecode, vm.EngineRegcode} {
		got := runEngine(prog, e, cfg, args)
		if got.err != tr.err {
			t.Fatalf("%s: error mismatch:\n  %-8v: %q\n  tree    : %q", label, e, got.err, tr.err)
		}
		if got.err == "" && got.val != tr.val {
			t.Fatalf("%s: value mismatch: %v %d, tree %d", label, e, got.val, tr.val)
		}
		if !reflect.DeepEqual(got.stats, tr.stats) {
			t.Fatalf("%s: stats mismatch:\n  %-8v: %+v\n  tree    : %+v", label, e, got.stats, tr.stats)
		}
		if cfg.CollectEdges && !reflect.DeepEqual(got.edges, tr.edges) {
			t.Fatalf("%s: edge count mismatch:\n  %-8v: %v\n  tree    : %v", label, e, got.edges, tr.edges)
		}
	}
}

// checkProgram runs the full parity battery on one program: the raw
// program with edge collection, step-limit halts at several budgets,
// and — after profiling and register allocation — every placement
// strategy's placed clone under convention enforcement.
func checkProgram(t *testing.T, label string, prog *ir.Program, args []int64) {
	t.Helper()
	const maxSteps = 1 << 22

	raw := prog.Clone()
	assertParity(t, label+"/raw", raw, vm.Config{CollectEdges: true, MaxSteps: maxSteps}, args)
	for _, lim := range []int64{1, 13, 257} {
		assertParity(t, label+"/halt", prog.Clone(), vm.Config{CollectEdges: true, MaxSteps: lim}, args)
	}

	base := prog.Clone()
	if _, err := profile.CollectWithConfig(base, vm.Config{MaxSteps: maxSteps}, args...); err != nil {
		// Programs that fail to profile (e.g. nonterminating under the
		// cap) already exercised the halt parity above.
		return
	}
	mach := machine.PARISC()
	if _, err := regalloc.AllocateProgramParallel(base, mach, 1); err != nil {
		t.Fatalf("%s: alloc: %v", label, err)
	}
	for _, s := range strategy.All {
		clone := base.Clone()
		if err := strategy.PlaceProgram(clone, s, 1); err != nil {
			t.Fatalf("%s: place %v: %v", label, s, err)
		}
		assertParity(t, label+"/"+s.String(), clone,
			vm.Config{Machine: mach, CollectEdges: true, MaxSteps: maxSteps}, args)
	}
}

func TestEngineParityTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.ir"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := irtext.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var args []int64
		if f := prog.Func(prog.Main); f != nil && len(f.Params) > 0 {
			args = make([]int64, len(f.Params))
			for i := range args {
				args[i] = 40
			}
		}
		checkProgram(t, filepath.Base(path), prog, args)
	}
}

func TestEngineParityGenerated(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		cfg := irgen.Default()
		if seed%2 == 1 {
			cfg = irgen.Small()
		}
		prog := irgen.Generate(uint64(seed), cfg)
		checkProgram(t, "seed"+strconv.Itoa(seed), prog, []int64{int64(seed % 17)})
	}
}

// TestEngineParityErrorPaths pins the engines to identical errors on
// malformed programs the compiler turns into traps.
func TestEngineParityErrorPaths(t *testing.T) {
	// Undefined callee on an executed path.
	undef := ir.NewProgram()
	bu := ir.NewBuilder("main", 0)
	bu.Block("entry")
	bu.Call(ir.NoReg, "ghost")
	bu.Ret(ir.NoReg)
	undef.Add(bu.Finish())
	assertParity(t, "undefined-callee", undef, vm.Config{}, nil)

	// Undefined callee on a dead path must not error in either engine.
	dead := ir.NewProgram()
	db := ir.NewBuilder("main", 0)
	entry := db.Block("entry")
	deadB := db.F.NewBlock("dead")
	exit := db.F.NewBlock("exit")
	db.SetCurrent(entry)
	c := db.Const(0)
	db.Br(c, deadB, exit, 0, 1)
	db.SetCurrent(deadB)
	db.Call(ir.NoReg, "ghost")
	db.Jmp(exit, 0)
	db.SetCurrent(exit)
	db.Ret(ir.NoReg)
	dead.Add(db.Finish())
	assertParity(t, "dead-undefined-callee", dead, vm.Config{CollectEdges: true}, nil)

	// Wrong arity at the top-level call.
	assertParity(t, "bad-arity", dead, vm.Config{}, []int64{1, 2})

	// Out-of-bounds heap access.
	oob := ir.NewProgram()
	ob := ir.NewBuilder("main", 0)
	ob.Block("entry")
	addr := ob.Const(-7)
	ob.Load(addr, 0)
	ob.Ret(ir.NoReg)
	oob.Add(ob.Finish())
	assertParity(t, "oob-load", oob, vm.Config{}, nil)

	// Infinite recursion: call depth limit.
	rec := ir.NewProgram()
	rb := ir.NewBuilder("main", 0)
	rb.Block("entry")
	rb.Call(ir.NoReg, "main")
	rb.Ret(ir.NoReg)
	rec.Add(rb.Finish())
	assertParity(t, "call-depth", rec, vm.Config{}, nil)

	// Missing main.
	ghost := ir.NewProgram()
	ghost.Main = "ghost"
	assertParity(t, "missing-main", ghost, vm.Config{}, nil)

	// Block without a terminator, including the exact step-budget
	// boundary: falling off the end must beat the step limit there,
	// because the tree engine raises it without consuming a step.
	fell := ir.NewProgram()
	fb := ir.NewBuilder("main", 0)
	fb.Block("entry")
	fb.Const(1)
	fb.Const(2)
	fell.Add(fb.F)
	for _, lim := range []int64{1, 2, 3} {
		assertParity(t, "fell-off-end", fell, vm.Config{MaxSteps: lim}, nil)
	}
}

// TestStepLimitError pins the contextual step-limit error: it must
// wrap vm.ErrStepLimit and name the function and block where
// execution stopped, identically in both engines.
func TestStepLimitError(t *testing.T) {
	bu := ir.NewBuilder("spin", 0)
	loop := bu.Block("loop")
	bu.Jmp(loop, 0)
	p := ir.NewProgram()
	p.Add(bu.F)
	bu.F.RenumberBlocks()
	bu.F.ClassifyEdges()

	for _, e := range vm.Engines {
		_, err := vm.New(p, vm.Config{MaxSteps: 10, Engine: e}).Run()
		if err == nil {
			t.Fatalf("%v: expected step limit error", e)
		}
		if !strings.Contains(err.Error(), "spin") || !strings.Contains(err.Error(), "loop") {
			t.Errorf("%v: step limit error lacks context: %v", e, err)
		}
		if !errors.Is(err, vm.ErrStepLimit) {
			t.Errorf("%v: error does not wrap vm.ErrStepLimit: %v", e, err)
		}
	}
}
