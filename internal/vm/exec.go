package vm

// exec.go is the bytecode engine's dispatch loop. The heavy lifting
// happened at compile time (bytecode.go); here every instruction is a
// fixed-size struct fetched by index, every register access is a slice
// index, calls are dense-index lookups with pooled exactly-sized
// frames, and counters are local variables or dense slices flushed to
// the map-based Stats/EdgeCount API only at the Run boundary.

import (
	"fmt"

	"repro/internal/ir"
)

func (v *VM) runBytecode(args []int64) (int64, error) {
	c := v.code
	if c.main < 0 {
		return 0, fmt.Errorf("vm: main function %q not found", v.prog.Main)
	}
	if v.callDense == nil {
		v.callDense = make([]int64, len(c.funcs))
	}
	if v.cfg.CollectEdges && v.edgeDense == nil {
		v.edgeDense = make([]int64, len(c.edges))
	}
	val, err := v.exec(c.main, args, 0)
	v.flushDense()
	return val, err
}

// flushDense materializes the dense call and edge counters into the
// public map-based Stats.Calls and EdgeCount, preserving the legacy
// engine's observable shape (only invoked functions and traversed
// edges appear as keys), then resets them so repeated Runs accumulate.
func (v *VM) flushDense() {
	c := v.code
	for i, n := range v.callDense {
		if n != 0 {
			v.Stats.Calls[c.funcs[i].name] += n
			v.callDense[i] = 0
		}
	}
	if v.edgeDense != nil {
		for i, n := range v.edgeDense {
			if n != 0 {
				v.EdgeCount[c.edges[i]] += n
				v.edgeDense[i] = 0
			}
		}
	}
}

// get/set address the unified register space: indices below
// ir.VirtBase hit the global physical register file, the rest hit the
// current frame (virtuals, then spill slots, then save slots). The
// unsigned comparison both routes negative (absent) registers to the
// frame path — where they panic, as the tree engine does — and proves
// the physical index in-bounds, eliding the bounds check.
func (v *VM) get(fr []int64, r int32) int64 {
	if u := uint32(r); u < uint32(ir.VirtBase) {
		return v.phys[u]
	}
	return fr[r-int32(ir.VirtBase)]
}

func (v *VM) set(fr []int64, r int32, val int64) {
	if u := uint32(r); u < uint32(ir.VirtBase) {
		v.phys[u] = val
		return
	}
	fr[r-int32(ir.VirtBase)] = val
}

// flushSeg folds a dispatch segment's locally accumulated counters
// into the VM. Taking the counters by value (rather than closing over
// them) keeps them in registers inside the dispatch loop.
func (v *VM) flushSeg(n, loads, stores int64) {
	v.steps += n
	v.Stats.Instrs += n
	v.Stats.Loads += loads
	v.Stats.Stores += stores
}

// leaveFrame releases an invocation's pooled frame and its convention
// snapshot segment; every exec exit path runs it.
func (v *VM) leaveFrame(fc *bcFunc, frp *[]int64, snapBase int) {
	fc.pool.Put(frp)
	if snapBase >= 0 {
		v.snap = v.snap[:snapBase]
	}
}

// exec runs one function invocation to completion.
//
// Step accounting is batched: instructions executed since the last
// flush are counted in a local, compared against a precomputed budget,
// and folded into v.steps/v.Stats only at calls, returns, and errors.
// The fold points are chosen so every observable count — including
// which exact instruction exceeds the step limit, and the tree
// engine's quirk of counting the faulting instruction in steps but not
// in Stats.Instrs — matches the legacy interpreter.
func (v *VM) exec(fi int32, args []int64, depth int) (int64, error) {
	c := v.code
	fc := c.funcs[fi]
	if depth > maxCallDepth {
		return 0, fmt.Errorf("vm: call depth exceeded in %s", fc.name)
	}
	if len(args) != len(fc.params) {
		return 0, fmt.Errorf("vm: %s called with %d args, want %d", fc.name, len(args), len(fc.params))
	}
	v.callDense[fi]++

	frp := fc.pool.Get().(*[]int64)
	fr := *frp
	clear(fr)
	for i, p := range fc.params {
		v.set(fr, p, args[i])
	}

	// Convention checking: snapshot the callee-saved registers — a
	// contiguous range of the physical file — into the VM's snapshot
	// stack (one copied segment per live call, no allocation).
	snapBase := -1
	if v.csPhys != nil {
		snapBase = len(v.snap)
		v.snap = append(v.snap, v.phys[v.csFrom:v.csTo]...)
	}

	ins := fc.ins
	edges := v.edgeDense
	heap := v.heap
	pc := int(fc.entry)

	var n, loads, stores int64 // flushed at calls, returns, and errors
	budget := v.cfg.MaxSteps - v.steps

	for {
		in := &ins[pc]
		n++
		if n > budget {
			// The fell-off-the-end trap is synthetic — the tree engine
			// raises that error without consuming a step, so at an
			// exact budget boundary it must still win over the halt.
			if in.op == bcFellOff {
				v.flushSeg(n-1, loads, stores)
				v.leaveFrame(fc, frp, snapBase)
				return 0, fmt.Errorf("vm: %s: block %s fell off the end", fc.name, fc.block(int32(pc)))
			}
			// The halting instruction counts toward steps but was never
			// executed, so it stays out of Stats.Instrs.
			v.flushSeg(n, loads, stores)
			v.Stats.Instrs--
			v.leaveFrame(fc, frp, snapBase)
			return 0, haltErr(fc.name, fc.block(int32(pc)))
		}
		if in.ov != ovNone {
			switch in.ov {
			case ovSpillLoad:
				v.Stats.SpillLoads++
			case ovSpillStore:
				v.Stats.SpillStores++
			case ovSave:
				v.Stats.Saves++
			case ovRestore:
				v.Stats.Restores++
			case ovJumpBlock:
				v.Stats.JumpBlockJmps++
			}
		}

		switch in.op {
		case ir.OpNop:
		case ir.OpConst:
			v.set(fr, in.dst, in.imm)
		case ir.OpMov:
			v.set(fr, in.dst, v.get(fr, in.a))
		case ir.OpAdd:
			v.set(fr, in.dst, v.get(fr, in.a)+v.get(fr, in.b))
		case ir.OpSub:
			v.set(fr, in.dst, v.get(fr, in.a)-v.get(fr, in.b))
		case ir.OpMul:
			v.set(fr, in.dst, v.get(fr, in.a)*v.get(fr, in.b))
		case ir.OpDiv:
			d := v.get(fr, in.b)
			if d == 0 {
				v.set(fr, in.dst, 0)
			} else {
				v.set(fr, in.dst, v.get(fr, in.a)/d)
			}
		case ir.OpRem:
			d := v.get(fr, in.b)
			if d == 0 {
				v.set(fr, in.dst, 0)
			} else {
				v.set(fr, in.dst, v.get(fr, in.a)%d)
			}
		case ir.OpAnd:
			v.set(fr, in.dst, v.get(fr, in.a)&v.get(fr, in.b))
		case ir.OpOr:
			v.set(fr, in.dst, v.get(fr, in.a)|v.get(fr, in.b))
		case ir.OpXor:
			v.set(fr, in.dst, v.get(fr, in.a)^v.get(fr, in.b))
		case ir.OpShl:
			v.set(fr, in.dst, v.get(fr, in.a)<<uint(v.get(fr, in.b)&63))
		case ir.OpShr:
			v.set(fr, in.dst, v.get(fr, in.a)>>uint(v.get(fr, in.b)&63))
		case ir.OpNeg:
			v.set(fr, in.dst, -v.get(fr, in.a))
		case ir.OpNot:
			v.set(fr, in.dst, ^v.get(fr, in.a))
		case ir.OpCmpEQ:
			v.set(fr, in.dst, b2i(v.get(fr, in.a) == v.get(fr, in.b)))
		case ir.OpCmpNE:
			v.set(fr, in.dst, b2i(v.get(fr, in.a) != v.get(fr, in.b)))
		case ir.OpCmpLT:
			v.set(fr, in.dst, b2i(v.get(fr, in.a) < v.get(fr, in.b)))
		case ir.OpCmpLE:
			v.set(fr, in.dst, b2i(v.get(fr, in.a) <= v.get(fr, in.b)))
		case ir.OpCmpGT:
			v.set(fr, in.dst, b2i(v.get(fr, in.a) > v.get(fr, in.b)))
		case ir.OpCmpGE:
			v.set(fr, in.dst, b2i(v.get(fr, in.a) >= v.get(fr, in.b)))
		case ir.OpLoad:
			loads++
			addr := v.get(fr, in.a) + in.imm
			if addr < 0 || addr >= int64(len(heap)) {
				v.flushSeg(n, loads, stores)
				v.leaveFrame(fc, frp, snapBase)
				return 0, fmt.Errorf("vm: %s: load out of bounds at %d", fc.name, addr)
			}
			v.set(fr, in.dst, heap[addr])
		case ir.OpStore:
			stores++
			addr := v.get(fr, in.a) + in.imm
			if addr < 0 || addr >= int64(len(heap)) {
				v.flushSeg(n, loads, stores)
				v.leaveFrame(fc, frp, snapBase)
				return 0, fmt.Errorf("vm: %s: store out of bounds at %d", fc.name, addr)
			}
			heap[addr] = v.get(fr, in.b)
		case ir.OpSpillLoad:
			loads++
			v.set(fr, in.dst, fr[in.imm])
		case ir.OpSpillStore:
			stores++
			fr[in.imm] = v.get(fr, in.a)
		case ir.OpSave:
			stores++
			fr[in.imm] = v.get(fr, in.a)
		case ir.OpRestore:
			loads++
			v.set(fr, in.dst, fr[in.imm])
		case ir.OpCall:
			cs := &fc.calls[in.imm]
			if cs.callee < 0 {
				v.flushSeg(n, loads, stores)
				v.leaveFrame(fc, frp, snapBase)
				return 0, fmt.Errorf("vm: %s calls undefined %q", fc.name, cs.name)
			}
			// Evaluate arguments onto the VM's argument stack (one
			// segment per live call) before any parameter is written:
			// a callee parameter may alias a physical register a later
			// argument reads.
			ab := len(v.argScratch)
			for _, a := range cs.args {
				v.argScratch = append(v.argScratch, v.get(fr, a))
			}
			v.flushSeg(n, loads, stores)
			n, loads, stores = 0, 0, 0
			r, err := v.exec(cs.callee, v.argScratch[ab:], depth+1)
			v.argScratch = v.argScratch[:ab]
			if err != nil {
				v.leaveFrame(fc, frp, snapBase)
				return 0, err
			}
			budget = v.cfg.MaxSteps - v.steps
			if in.dst >= 0 {
				v.set(fr, in.dst, r)
			}
		case ir.OpRet:
			var rv int64
			if in.a >= 0 {
				rv = v.get(fr, in.a)
			}
			v.flushSeg(n, loads, stores)
			if snapBase >= 0 {
				prev := v.snap[snapBase:]
				cur := v.phys[v.csFrom:v.csTo]
				for i := range cur {
					if cur[i] != prev[i] {
						err := fmt.Errorf("vm: %s violated callee-saved convention: %v changed from %d to %d",
							fc.name, v.csRegs[i], prev[i], cur[i])
						v.leaveFrame(fc, frp, snapBase)
						return 0, err
					}
				}
			}
			v.leaveFrame(fc, frp, snapBase)
			return rv, nil
		case ir.OpBr:
			if v.get(fr, in.a) != 0 {
				if edges != nil {
					if e := int32(uint32(in.imm >> 32)); e >= 0 {
						edges[e]++
					}
				}
				pc = int(in.t1)
				continue
			}
			if edges != nil {
				if e := int32(uint32(in.imm)); e >= 0 {
					edges[e]++
				}
			}
			pc = int(in.t2)
			continue
		case ir.OpJmp:
			if edges != nil {
				if e := int32(in.imm); e >= 0 {
					edges[e]++
				}
			}
			pc = int(in.t1)
			continue
		case bcCmpEQBr, bcCmpNEBr, bcCmpLTBr, bcCmpLEBr, bcCmpGTBr, bcCmpGEBr:
			// Fused compare + conditional branch: two accounted steps,
			// one dispatch. The compare's effect lands before the
			// branch's budget check, so a budget that ends between the
			// two halts exactly where the tree engine would.
			x, y := v.get(fr, in.a), v.get(fr, in.b)
			var val int64
			switch in.op {
			case bcCmpEQBr:
				val = b2i(x == y)
			case bcCmpNEBr:
				val = b2i(x != y)
			case bcCmpLTBr:
				val = b2i(x < y)
			case bcCmpLEBr:
				val = b2i(x <= y)
			case bcCmpGTBr:
				val = b2i(x > y)
			default:
				val = b2i(x >= y)
			}
			v.set(fr, in.dst, val)
			n++
			if n > budget {
				v.flushSeg(n, loads, stores)
				v.Stats.Instrs--
				v.leaveFrame(fc, frp, snapBase)
				return 0, haltErr(fc.name, fc.block(int32(pc)))
			}
			if val != 0 {
				if edges != nil {
					if e := int32(uint32(in.imm >> 32)); e >= 0 {
						edges[e]++
					}
				}
				pc = int(in.t1)
				continue
			}
			if edges != nil {
				if e := int32(uint32(in.imm)); e >= 0 {
					edges[e]++
				}
			}
			pc = int(in.t2)
			continue
		case bcConstBin:
			// Fused constant + binary op: the constant register is
			// written first, then the operation consumes the immediate
			// directly.
			v.set(fr, in.b, in.imm)
			n++
			if n > budget {
				v.flushSeg(n, loads, stores)
				v.Stats.Instrs--
				v.leaveFrame(fc, frp, snapBase)
				return 0, haltErr(fc.name, fc.block(int32(pc)))
			}
			var x, y int64
			switch in.t2 {
			case 0:
				x, y = v.get(fr, in.a), in.imm
			case 1:
				x, y = in.imm, v.get(fr, in.a)
			default:
				x, y = in.imm, in.imm
			}
			var res int64
			switch ir.Op(in.t1) {
			case ir.OpAdd:
				res = x + y
			case ir.OpSub:
				res = x - y
			case ir.OpMul:
				res = x * y
			case ir.OpDiv:
				if y != 0 {
					res = x / y
				}
			case ir.OpRem:
				if y != 0 {
					res = x % y
				}
			case ir.OpAnd:
				res = x & y
			case ir.OpOr:
				res = x | y
			case ir.OpXor:
				res = x ^ y
			case ir.OpShl:
				res = x << uint(y&63)
			case ir.OpShr:
				res = x >> uint(y&63)
			case ir.OpCmpEQ:
				res = b2i(x == y)
			case ir.OpCmpNE:
				res = b2i(x != y)
			case ir.OpCmpLT:
				res = b2i(x < y)
			case ir.OpCmpLE:
				res = b2i(x <= y)
			case ir.OpCmpGT:
				res = b2i(x > y)
			case ir.OpCmpGE:
				res = b2i(x >= y)
			}
			v.set(fr, in.dst, res)
		case bcFellOff:
			// Falling off a block's end is an error, not an executed
			// instruction: take it back out of the segment.
			v.flushSeg(n-1, loads, stores)
			v.leaveFrame(fc, frp, snapBase)
			return 0, fmt.Errorf("vm: %s: block %s fell off the end", fc.name, fc.block(int32(pc)))
		default: // bcBadOp and anything unexpected
			v.flushSeg(n, loads, stores)
			v.leaveFrame(fc, frp, snapBase)
			return 0, fmt.Errorf("vm: %s: unknown opcode %v", fc.name, ir.Op(in.a))
		}
		pc++
	}
}
