package vm

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// fib builds an iterative fibonacci: fib(n).
func fib() *ir.Program {
	bu := ir.NewBuilder("fib", 1)
	entry := bu.Block("entry")
	loop := bu.F.NewBlock("loop")
	exit := bu.F.NewBlock("exit")

	n := bu.F.Params[0]
	bu.SetCurrent(entry)
	a := bu.F.NewVirt()
	b := bu.F.NewVirt()
	i := bu.F.NewVirt()
	bu.ConstInto(a, 0)
	bu.ConstInto(b, 1)
	bu.ConstInto(i, 0)
	bu.Jmp(loop, 0)

	bu.SetCurrent(loop)
	t := bu.Bin(ir.OpAdd, a, b)
	bu.Mov(a, b)
	bu.Mov(b, t)
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, i, i, one)
	c := bu.Bin(ir.OpCmpLT, i, n)
	bu.Br(c, loop, exit, 0, 0)

	bu.SetCurrent(exit)
	bu.Ret(a)

	p := ir.NewProgram()
	p.Add(bu.Finish())
	return p
}

func TestArithmeticAndLoop(t *testing.T) {
	p := fib()
	got, err := New(p, Config{}).Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

func TestAllOpcodes(t *testing.T) {
	cases := []struct {
		op   ir.Op
		a, b int64
		want int64
	}{
		{ir.OpAdd, 7, 3, 10},
		{ir.OpSub, 7, 3, 4},
		{ir.OpMul, 7, 3, 21},
		{ir.OpDiv, 7, 3, 2},
		{ir.OpDiv, 7, 0, 0},
		{ir.OpRem, 7, 3, 1},
		{ir.OpRem, 7, 0, 0},
		{ir.OpAnd, 6, 3, 2},
		{ir.OpOr, 6, 3, 7},
		{ir.OpXor, 6, 3, 5},
		{ir.OpShl, 3, 2, 12},
		{ir.OpShr, 12, 2, 3},
		{ir.OpCmpEQ, 4, 4, 1},
		{ir.OpCmpNE, 4, 4, 0},
		{ir.OpCmpLT, 3, 4, 1},
		{ir.OpCmpLE, 4, 4, 1},
		{ir.OpCmpGT, 4, 3, 1},
		{ir.OpCmpGE, 3, 4, 0},
	}
	for _, c := range cases {
		bu := ir.NewBuilder("f", 2)
		bu.Block("entry")
		r := bu.Bin(c.op, bu.F.Params[0], bu.F.Params[1])
		bu.Ret(r)
		p := ir.NewProgram()
		p.Add(bu.Finish())
		got, err := New(p, Config{}).Run(c.a, c.b)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestUnaryOps(t *testing.T) {
	bu := ir.NewBuilder("f", 1)
	bu.Block("entry")
	n := bu.F.NewVirt()
	bu.Emit(&ir.Instr{Op: ir.OpNeg, Dst: n, Src1: bu.F.Params[0], Src2: ir.NoReg})
	bu.Ret(n)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	got, err := New(p, Config{}).Run(9)
	if err != nil {
		t.Fatal(err)
	}
	if got != -9 {
		t.Errorf("neg(9) = %d, want -9", got)
	}
}

func TestHeapLoadStore(t *testing.T) {
	bu := ir.NewBuilder("f", 0)
	bu.Block("entry")
	addr := bu.Const(100)
	val := bu.Const(42)
	bu.Store(addr, 5, val)
	got := bu.Load(addr, 5)
	bu.Ret(got)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	v := New(p, Config{})
	r, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r != 42 {
		t.Errorf("heap roundtrip = %d, want 42", r)
	}
	if v.Stats.Loads != 1 || v.Stats.Stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 1/1", v.Stats.Loads, v.Stats.Stores)
	}
}

func TestHeapBounds(t *testing.T) {
	bu := ir.NewBuilder("f", 0)
	bu.Block("entry")
	addr := bu.Const(1 << 20)
	got := bu.Load(addr, 0)
	bu.Ret(got)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	if _, err := New(p, Config{}).Run(); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("expected bounds error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	bu := ir.NewBuilder("f", 0)
	loop := bu.Block("loop")
	bu.Jmp(loop, 0)
	p := ir.NewProgram()
	p.Add(bu.F)
	bu.F.RenumberBlocks()
	bu.F.ClassifyEdges()
	if _, err := New(p, Config{MaxSteps: 1000}).Run(); err == nil {
		t.Error("expected step limit error for infinite loop")
	}
}

// TestStepLimitStats pins the halt accounting contract documented on
// ErrStepLimit: in every engine, a step-limit halt leaves Stats.Instrs
// equal to Config.MaxSteps exactly, for any budget. The tiered
// pipeline's budget carry-over (tier-1 budget = budget − tier-0
// Instrs) is only exact because of this.
func TestStepLimitStats(t *testing.T) {
	p := fib()
	for _, e := range Engines {
		for _, budget := range []int64{1, 2, 7, 100, 1001} {
			m := New(p, Config{MaxSteps: budget, CollectEdges: true, Engine: e})
			_, err := m.Run(1 << 40)
			if !IsStepLimit(err) {
				t.Fatalf("%v budget %d: want step-limit halt, got %v", e, budget, err)
			}
			if m.Stats.Instrs != budget {
				t.Errorf("%v budget %d: Stats.Instrs = %d, want exactly the budget",
					e, budget, m.Stats.Instrs)
			}
		}
	}
}

func TestCallDepthLimit(t *testing.T) {
	bu := ir.NewBuilder("f", 0)
	bu.Block("entry")
	r := bu.F.NewVirt()
	bu.Call(r, "f")
	bu.Ret(r)
	p := ir.NewProgram()
	p.Add(bu.Finish())
	if _, err := New(p, Config{}).Run(); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected depth error, got %v", err)
	}
}

func TestConventionEnforcement(t *testing.T) {
	// clobber() writes r12 without saving it.
	m := machine.PARISC()
	cb := ir.NewBuilder("clobber", 0)
	cb.Block("entry")
	cb.Emit(&ir.Instr{Op: ir.OpConst, Dst: ir.Phys(12), Src1: ir.NoReg, Src2: ir.NoReg, Imm: 99})
	cb.Ret(ir.NoReg)

	mb := ir.NewBuilder("main", 0)
	mb.Block("entry")
	mb.Call(ir.NoReg, "clobber")
	mb.Ret(ir.NoReg)

	p := ir.NewProgram()
	p.Add(mb.Finish())
	p.Add(cb.Finish())
	p.Main = "main"

	if _, err := New(p, Config{Machine: m}).Run(); err == nil || !strings.Contains(err.Error(), "convention") {
		t.Fatalf("expected convention violation, got %v", err)
	}
	// Without enforcement it runs fine.
	if _, err := New(p, Config{}).Run(); err != nil {
		t.Fatalf("unexpected error without enforcement: %v", err)
	}
}

func TestConventionSatisfiedWithSaveRestore(t *testing.T) {
	m := machine.PARISC()
	cb := ir.NewBuilder("good", 0)
	cb.Block("entry")
	cb.Emit(&ir.Instr{Op: ir.OpSave, Dst: ir.NoReg, Src1: ir.Phys(12), Src2: ir.NoReg,
		Imm: 0, Flags: ir.FlagSaveRestore})
	cb.Emit(&ir.Instr{Op: ir.OpConst, Dst: ir.Phys(12), Src1: ir.NoReg, Src2: ir.NoReg, Imm: 99})
	cb.Emit(&ir.Instr{Op: ir.OpRestore, Dst: ir.Phys(12), Src1: ir.NoReg, Src2: ir.NoReg,
		Imm: 0, Flags: ir.FlagSaveRestore})
	cb.Ret(ir.NoReg)
	cb.F.SaveSlots = 1

	mb := ir.NewBuilder("main", 0)
	mb.Block("entry")
	mb.Call(ir.NoReg, "good")
	mb.Ret(ir.NoReg)

	p := ir.NewProgram()
	p.Add(mb.Finish())
	p.Add(cb.Finish())
	p.Main = "main"

	v := New(p, Config{Machine: m})
	if _, err := v.Run(); err != nil {
		t.Fatalf("save/restore should satisfy the convention: %v", err)
	}
	if v.Stats.Saves != 1 || v.Stats.Restores != 1 {
		t.Errorf("saves/restores = %d/%d, want 1/1", v.Stats.Saves, v.Stats.Restores)
	}
	if v.Stats.Overhead() != 2 {
		t.Errorf("overhead = %d, want 2", v.Stats.Overhead())
	}
}

func TestEdgeCollection(t *testing.T) {
	p := fib()
	v := New(p, Config{CollectEdges: true})
	if _, err := v.Run(10); err != nil {
		t.Fatal(err)
	}
	f := p.Func("fib")
	loop := f.BlockByName("loop")
	back := loop.SuccEdge(loop)
	if v.EdgeCount[back] != 9 {
		t.Errorf("back edge count = %d, want 9", v.EdgeCount[back])
	}
	exitE := loop.SuccEdge(f.BlockByName("exit"))
	if v.EdgeCount[exitE] != 1 {
		t.Errorf("exit edge count = %d, want 1", v.EdgeCount[exitE])
	}
	if v.Stats.Calls["fib"] != 1 {
		t.Errorf("fib calls = %d, want 1", v.Stats.Calls["fib"])
	}
}
