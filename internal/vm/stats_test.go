package vm

import (
	"testing"

	"repro/internal/machine"
)

func TestStatsSnapshotIsolatesCalls(t *testing.T) {
	s := Stats{Instrs: 10, Saves: 2, Calls: map[string]int64{"f": 3}}
	snap := s.Snapshot()
	s.Calls["f"] = 99
	s.Calls["g"] = 1
	if snap.Calls["f"] != 3 {
		t.Errorf("snapshot aliased Calls: f = %d, want 3", snap.Calls["f"])
	}
	if _, ok := snap.Calls["g"]; ok {
		t.Error("snapshot aliased Calls: g leaked in")
	}
	if snap.Instrs != 10 || snap.Saves != 2 {
		t.Errorf("snapshot dropped counters: %+v", snap)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Instrs: 5, Loads: 1, Stores: 2, SpillLoads: 3, SpillStores: 4,
		Saves: 5, Restores: 6, JumpBlockJmps: 7, Calls: map[string]int64{"f": 1, "g": 2}}
	b := Stats{Instrs: 10, Loads: 10, Stores: 10, SpillLoads: 10, SpillStores: 10,
		Saves: 10, Restores: 10, JumpBlockJmps: 10, Calls: map[string]int64{"g": 3, "h": 4}}
	a.Merge(&b)
	if a.Instrs != 15 || a.Loads != 11 || a.Stores != 12 {
		t.Errorf("merge counters wrong: %+v", a)
	}
	if a.Overhead() != (3+10)+(4+10)+(5+10)+(6+10)+(7+10) {
		t.Errorf("merged overhead = %d", a.Overhead())
	}
	if a.Calls["f"] != 1 || a.Calls["g"] != 5 || a.Calls["h"] != 4 {
		t.Errorf("merged calls wrong: %v", a.Calls)
	}
	// Merging into zero-value stats allocates the map.
	var z Stats
	z.Merge(&a)
	if z.Calls["g"] != 5 {
		t.Errorf("merge into zero value: %v", z.Calls)
	}
}

// TestWeightedOverhead: unit costs reproduce Overhead exactly; a
// machine with distinct latencies prices reads, writes, and jumps per
// class, and SaveRestoreCost excludes allocator spill traffic.
func TestWeightedOverhead(t *testing.T) {
	s := Stats{SpillLoads: 3, SpillStores: 4, Saves: 5, Restores: 6, JumpBlockJmps: 7}
	if got := s.WeightedOverhead(machine.UnitCosts()); got != s.Overhead() {
		t.Errorf("unit weighted overhead = %d, want Overhead() = %d", got, s.Overhead())
	}
	c := machine.Costs{SpillStore: 2, SpillLoad: 3, JumpTaken: 12}
	// reads (3+6)*3 + writes (4+5)*2 + jumps 7*12 = 27+18+84.
	if got := s.WeightedOverhead(c); got != 129 {
		t.Errorf("weighted overhead = %d, want 129", got)
	}
	// saves 5*2 + restores 6*3 + jumps 7*12 = 10+18+84.
	if got := s.SaveRestoreCost(c); got != 112 {
		t.Errorf("save/restore cost = %d, want 112", got)
	}
}
