package vm

import "testing"

func TestStatsSnapshotIsolatesCalls(t *testing.T) {
	s := Stats{Instrs: 10, Saves: 2, Calls: map[string]int64{"f": 3}}
	snap := s.Snapshot()
	s.Calls["f"] = 99
	s.Calls["g"] = 1
	if snap.Calls["f"] != 3 {
		t.Errorf("snapshot aliased Calls: f = %d, want 3", snap.Calls["f"])
	}
	if _, ok := snap.Calls["g"]; ok {
		t.Error("snapshot aliased Calls: g leaked in")
	}
	if snap.Instrs != 10 || snap.Saves != 2 {
		t.Errorf("snapshot dropped counters: %+v", snap)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Instrs: 5, Loads: 1, Stores: 2, SpillLoads: 3, SpillStores: 4,
		Saves: 5, Restores: 6, JumpBlockJmps: 7, Calls: map[string]int64{"f": 1, "g": 2}}
	b := Stats{Instrs: 10, Loads: 10, Stores: 10, SpillLoads: 10, SpillStores: 10,
		Saves: 10, Restores: 10, JumpBlockJmps: 10, Calls: map[string]int64{"g": 3, "h": 4}}
	a.Merge(&b)
	if a.Instrs != 15 || a.Loads != 11 || a.Stores != 12 {
		t.Errorf("merge counters wrong: %+v", a)
	}
	if a.Overhead() != (3+10)+(4+10)+(5+10)+(6+10)+(7+10) {
		t.Errorf("merged overhead = %d", a.Overhead())
	}
	if a.Calls["f"] != 1 || a.Calls["g"] != 5 || a.Calls["h"] != 4 {
		t.Errorf("merged calls wrong: %v", a.Calls)
	}
	// Merging into zero-value stats allocates the map.
	var z Stats
	z.Merge(&a)
	if z.Calls["g"] != 5 {
		t.Errorf("merge into zero value: %v", z.Calls)
	}
}
