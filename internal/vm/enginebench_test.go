package vm_test

// Engine throughput benchmarks: the same placed SPEC stand-in program
// executed by both engines under the measurement configuration
// (convention checking on, edge collection off — exactly what
// bench.RunEntry measures). CI runs these with -benchtime=1x as a
// smoke test; EXPERIMENTS.md records full runs.

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/vm"
	"repro/internal/workload"
)

// placedBench builds one profiled, allocated, hierarchically placed
// SPEC stand-in program — the exact artifact the evaluation measures.
func placedBench(b *testing.B, name string) *workloadProgram {
	b.Helper()
	for _, p := range workload.SPECInt2000() {
		if p.Name != name {
			continue
		}
		prog := workload.Generate(p)
		if _, err := profile.Collect(prog, 0); err != nil {
			b.Fatal(err)
		}
		mach := machine.PARISC()
		if _, err := regalloc.AllocateProgramParallel(prog, mach, 1); err != nil {
			b.Fatal(err)
		}
		if err := strategy.PlaceProgram(prog, strategy.HierarchicalJump, 1); err != nil {
			b.Fatal(err)
		}
		return &workloadProgram{prog: prog, mach: mach}
	}
	b.Fatalf("no SPEC stand-in named %q", name)
	return nil
}

type workloadProgram struct {
	prog *ir.Program
	mach *machine.Desc
}

func benchEngine(b *testing.B, e vm.Engine) {
	w := placedBench(b, "vortex")
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		m := vm.New(w.prog, vm.Config{Machine: w.mach, Engine: e})
		if _, err := m.Run(0); err != nil {
			b.Fatal(err)
		}
		instrs = m.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkEngineBytecode(b *testing.B) { benchEngine(b, vm.EngineBytecode) }

func BenchmarkEngineRegcode(b *testing.B) { benchEngine(b, vm.EngineRegcode) }

func BenchmarkEngineTree(b *testing.B) { benchEngine(b, vm.EngineTree) }

// BenchmarkEngineBytecodeProfiling measures the profiling
// configuration (edge collection on), the other hot path.
func BenchmarkEngineBytecodeProfiling(b *testing.B) {
	w := placedBench(b, "vortex")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vm.New(w.prog, vm.Config{CollectEdges: true, Engine: vm.EngineBytecode})
		if _, err := m.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRegcodeProfiling(b *testing.B) {
	w := placedBench(b, "vortex")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vm.New(w.prog, vm.Config{CollectEdges: true, Engine: vm.EngineRegcode})
		if _, err := m.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTreeProfiling(b *testing.B) {
	w := placedBench(b, "vortex")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vm.New(w.prog, vm.Config{CollectEdges: true, Engine: vm.EngineTree})
		if _, err := m.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
