package vm

// tree.go is the legacy tree-walking interpreter: it chases *ir.Block
// pointers, re-tests overhead flags on every instruction, and counts
// calls and edges through maps. It is retained as the differential
// reference for the bytecode engine (exec.go); the two must agree
// exactly on values, statistics, edge counts, and error reporting.

import (
	"fmt"

	"repro/internal/ir"
)

func (v *VM) runTree(args []int64) (int64, error) {
	f := v.prog.Func(v.prog.Main)
	if f == nil {
		return 0, fmt.Errorf("vm: main function %q not found", v.prog.Main)
	}
	return v.call(f, args, 0)
}

// frame holds per-invocation state.
type frame struct {
	virt  []int64
	spill []int64
	save  []int64
}

func (v *VM) call(f *ir.Func, args []int64, depth int) (int64, error) {
	if depth > maxCallDepth {
		return 0, fmt.Errorf("vm: call depth exceeded in %s", f.Name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("vm: %s called with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	v.Stats.Calls[f.Name]++

	fr := &frame{
		virt:  make([]int64, f.NumVirt),
		spill: make([]int64, f.SpillSlots),
		save:  make([]int64, f.SaveSlots),
	}
	for i, p := range f.Params {
		fr.set(v, p, args[i])
	}

	// Snapshot callee-saved registers for convention checking.
	var snapshot []int64
	if v.cfg.Machine != nil {
		for _, r := range v.cfg.Machine.CalleeSaved() {
			snapshot = append(snapshot, v.phys[r.PhysNum()])
		}
	}
	checkConvention := func() error {
		if v.cfg.Machine == nil {
			return nil
		}
		for i, r := range v.cfg.Machine.CalleeSaved() {
			if v.phys[r.PhysNum()] != snapshot[i] {
				return fmt.Errorf("vm: %s violated callee-saved convention: %v changed from %d to %d",
					f.Name, r, snapshot[i], v.phys[r.PhysNum()])
			}
		}
		return nil
	}

	b := f.Entry
	for {
		next, ret, retVal, err := v.execBlock(f, b, fr, depth)
		if err != nil {
			return 0, err
		}
		if ret {
			if err := checkConvention(); err != nil {
				return 0, err
			}
			return retVal, nil
		}
		if v.cfg.CollectEdges {
			if e := b.SuccEdge(next); e != nil {
				v.EdgeCount[e]++
			}
		}
		b = next
	}
}

// execBlock runs one basic block. It returns the successor block, or
// ret=true with the return value.
func (v *VM) execBlock(f *ir.Func, b *ir.Block, fr *frame, depth int) (next *ir.Block, ret bool, retVal int64, err error) {
	for _, in := range b.Instrs {
		v.steps++
		if v.steps > v.cfg.MaxSteps {
			return nil, false, 0, haltErr(f.Name, b.Name)
		}
		v.Stats.Instrs++
		if in.Op.IsMemLoad() {
			v.Stats.Loads++
		}
		if in.Op.IsMemStore() {
			v.Stats.Stores++
		}
		switch {
		case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillLoad:
			v.Stats.SpillLoads++
		case in.Flags&ir.FlagSpill != 0 && in.Op == ir.OpSpillStore:
			v.Stats.SpillStores++
		case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpSave:
			v.Stats.Saves++
		case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpRestore:
			v.Stats.Restores++
		case in.Flags&ir.FlagJumpBlock != 0:
			v.Stats.JumpBlockJmps++
		}

		switch in.Op {
		case ir.OpNop:
		case ir.OpConst:
			fr.set(v, in.Dst, in.Imm)
		case ir.OpMov:
			fr.set(v, in.Dst, fr.get(v, in.Src1))
		case ir.OpAdd:
			fr.set(v, in.Dst, fr.get(v, in.Src1)+fr.get(v, in.Src2))
		case ir.OpSub:
			fr.set(v, in.Dst, fr.get(v, in.Src1)-fr.get(v, in.Src2))
		case ir.OpMul:
			fr.set(v, in.Dst, fr.get(v, in.Src1)*fr.get(v, in.Src2))
		case ir.OpDiv:
			d := fr.get(v, in.Src2)
			if d == 0 {
				fr.set(v, in.Dst, 0)
			} else {
				fr.set(v, in.Dst, fr.get(v, in.Src1)/d)
			}
		case ir.OpRem:
			d := fr.get(v, in.Src2)
			if d == 0 {
				fr.set(v, in.Dst, 0)
			} else {
				fr.set(v, in.Dst, fr.get(v, in.Src1)%d)
			}
		case ir.OpAnd:
			fr.set(v, in.Dst, fr.get(v, in.Src1)&fr.get(v, in.Src2))
		case ir.OpOr:
			fr.set(v, in.Dst, fr.get(v, in.Src1)|fr.get(v, in.Src2))
		case ir.OpXor:
			fr.set(v, in.Dst, fr.get(v, in.Src1)^fr.get(v, in.Src2))
		case ir.OpShl:
			fr.set(v, in.Dst, fr.get(v, in.Src1)<<uint(fr.get(v, in.Src2)&63))
		case ir.OpShr:
			fr.set(v, in.Dst, fr.get(v, in.Src1)>>uint(fr.get(v, in.Src2)&63))
		case ir.OpNeg:
			fr.set(v, in.Dst, -fr.get(v, in.Src1))
		case ir.OpNot:
			fr.set(v, in.Dst, ^fr.get(v, in.Src1))
		case ir.OpCmpEQ:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) == fr.get(v, in.Src2)))
		case ir.OpCmpNE:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) != fr.get(v, in.Src2)))
		case ir.OpCmpLT:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) < fr.get(v, in.Src2)))
		case ir.OpCmpLE:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) <= fr.get(v, in.Src2)))
		case ir.OpCmpGT:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) > fr.get(v, in.Src2)))
		case ir.OpCmpGE:
			fr.set(v, in.Dst, b2i(fr.get(v, in.Src1) >= fr.get(v, in.Src2)))
		case ir.OpLoad:
			addr := fr.get(v, in.Src1) + in.Imm
			if addr < 0 || addr >= int64(len(v.heap)) {
				return nil, false, 0, fmt.Errorf("vm: %s: load out of bounds at %d", f.Name, addr)
			}
			fr.set(v, in.Dst, v.heap[addr])
		case ir.OpStore:
			addr := fr.get(v, in.Src1) + in.Imm
			if addr < 0 || addr >= int64(len(v.heap)) {
				return nil, false, 0, fmt.Errorf("vm: %s: store out of bounds at %d", f.Name, addr)
			}
			v.heap[addr] = fr.get(v, in.Src2)
		case ir.OpSpillLoad:
			fr.ensureSpill(int(in.Imm))
			fr.set(v, in.Dst, fr.spill[in.Imm])
		case ir.OpSpillStore:
			fr.ensureSpill(int(in.Imm))
			fr.spill[in.Imm] = fr.get(v, in.Src1)
		case ir.OpSave:
			fr.ensureSave(int(in.Imm))
			fr.save[in.Imm] = fr.get(v, in.Src1)
		case ir.OpRestore:
			fr.ensureSave(int(in.Imm))
			fr.set(v, in.Dst, fr.save[in.Imm])
		case ir.OpCall:
			callee := v.prog.Func(in.Callee)
			if callee == nil {
				return nil, false, 0, fmt.Errorf("vm: %s calls undefined %q", f.Name, in.Callee)
			}
			args := make([]int64, len(in.Args))
			for i, a := range in.Args {
				args[i] = fr.get(v, a)
			}
			r, err := v.call(callee, args, depth+1)
			if err != nil {
				return nil, false, 0, err
			}
			if in.Dst.IsValid() {
				fr.set(v, in.Dst, r)
			}
		case ir.OpRet:
			var rv int64
			if in.Src1.IsValid() {
				rv = fr.get(v, in.Src1)
			}
			return nil, true, rv, nil
		case ir.OpBr:
			if fr.get(v, in.Src1) != 0 {
				return in.Then, false, 0, nil
			}
			return in.Else, false, 0, nil
		case ir.OpJmp:
			return in.Then, false, 0, nil
		default:
			return nil, false, 0, fmt.Errorf("vm: %s: unknown opcode %v", f.Name, in.Op)
		}
	}
	return nil, false, 0, fmt.Errorf("vm: %s: block %s fell off the end", f.Name, b.Name)
}

// haltErr wraps ErrStepLimit with the function and block where
// execution stopped; both engines produce the identical message.
func haltErr(fn, block string) error {
	return fmt.Errorf("%w in %s at block %s", ErrStepLimit, fn, block)
}

func (fr *frame) get(v *VM, r ir.Reg) int64 {
	if r.IsPhys() {
		return v.phys[r.PhysNum()]
	}
	return fr.virt[r.VirtNum()]
}

func (fr *frame) set(v *VM, r ir.Reg, val int64) {
	if r.IsPhys() {
		v.phys[r.PhysNum()] = val
		return
	}
	fr.virt[r.VirtNum()] = val
}

func (fr *frame) ensureSpill(i int) {
	for len(fr.spill) <= i {
		fr.spill = append(fr.spill, 0)
	}
}

func (fr *frame) ensureSave(i int) {
	for len(fr.save) <= i {
		fr.save = append(fr.save, 0)
	}
}
