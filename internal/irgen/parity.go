package irgen

// parity.go cross-checks VM engines observation for observation: the
// tree interpreter is the reference, and any divergence — result
// value, error text, statistics counter, edge profile — is a
// violation. The native fuzz target (FuzzEngineParity) and the
// spillfuzz -parity sweep both drive these helpers.

import (
	"fmt"
	"reflect"

	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/tier"
	"repro/internal/vm"
)

// engineOutcome is everything observable about one engine's run.
type engineOutcome struct {
	val   int64
	err   string
	stats vm.Stats
	edges map[*ir.Edge]int64
}

func runOn(prog *ir.Program, e vm.Engine, cfg vm.Config, args []int64) engineOutcome {
	cfg.Engine = e
	m := vm.New(prog, cfg)
	val, err := m.Run(args...)
	o := engineOutcome{val: val, stats: m.Stats.Snapshot(), edges: m.EdgeCount}
	if err != nil {
		o.err = err.Error()
	}
	return o
}

// EngineParity runs prog on engine e and on the tree reference under
// cfg and returns mismatch descriptions — nil when the two agree on
// every observable.
func EngineParity(prog *ir.Program, e vm.Engine, cfg vm.Config, args []int64) []string {
	ref := runOn(prog, vm.EngineTree, cfg, args)
	got := runOn(prog, e, cfg, args)
	var ms []string
	if got.err != ref.err {
		ms = append(ms, fmt.Sprintf("%v error %q, tree %q", e, got.err, ref.err))
	}
	if got.err == "" && got.val != ref.val {
		ms = append(ms, fmt.Sprintf("%v value %d, tree %d", e, got.val, ref.val))
	}
	if !reflect.DeepEqual(got.stats, ref.stats) {
		ms = append(ms, fmt.Sprintf("%v stats %+v, tree %+v", e, got.stats, ref.stats))
	}
	if cfg.CollectEdges && !reflect.DeepEqual(got.edges, ref.edges) {
		ms = append(ms, fmt.Sprintf("%v edge counts diverge from tree", e))
	}
	return ms
}

// EngineParitySweep runs the per-seed parity battery for one engine:
// the raw program with edge collection under every given step budget
// (small budgets force mid-quantum halts), and — when the program
// profiles cleanly — the hierarchically placed program under
// callee-saved convention checking. The input program is not mutated.
func EngineParitySweep(prog *ir.Program, e vm.Engine, args []int64, budgets []int64) []string {
	var ms []string
	for _, b := range budgets {
		for _, m := range EngineParity(prog, e, vm.Config{CollectEdges: true, MaxSteps: b}, args) {
			ms = append(ms, fmt.Sprintf("budget %d: %s", b, m))
		}
	}
	placed := prog.Clone()
	if _, err := profile.CollectWithConfig(placed, vm.Config{MaxSteps: 1 << 22}, args...); err != nil {
		// Programs that fail to profile (e.g. nonterminating under the
		// cap) already exercised halt parity above.
		return ms
	}
	mach := machine.PARISC()
	if _, err := regalloc.AllocateProgramParallel(placed, mach, 1); err != nil {
		return append(ms, "alloc: "+err.Error())
	}
	if err := strategy.PlaceProgram(placed, strategy.HierarchicalJump, 1); err != nil {
		return append(ms, "place: "+err.Error())
	}
	for _, m := range EngineParity(placed, e, vm.Config{Machine: mach, CollectEdges: true, MaxSteps: 1 << 22}, args) {
		ms = append(ms, "placed: "+m)
	}
	return ms
}

// TierParitySweep cross-checks the tiered pipeline (internal/tier) on
// engine e against the tree reference. Both tiered runs — estimate,
// allocate, tier 0 under the quantum, measured re-align + re-place,
// tier 1 under the remaining budget — must agree on error text,
// value, every merged and per-tier statistics counter, the boundary
// counters, and, byte for byte, the final tier-1 program; the shared
// final program must then itself hold three-way engine parity (values,
// edge counts, step-limit halts) under edge collection. The input
// program is not mutated.
func TierParitySweep(prog *ir.Program, e vm.Engine, args []int64, quantum, budget int64) []string {
	ref, refErr, prepErr := tierOutcome(prog, vm.EngineTree, quantum, budget, args)
	if prepErr != nil {
		// Allocation failures are engine-independent; nothing to compare.
		return nil
	}
	got, gotErr, _ := tierOutcome(prog, e, quantum, budget, args)
	var ms []string
	if gotErr != refErr {
		ms = append(ms, fmt.Sprintf("tiered %v error %q, tree %q", e, gotErr, refErr))
	}
	if ref == nil || got == nil {
		if (ref == nil) != (got == nil) {
			ms = append(ms, fmt.Sprintf("tiered %v result presence diverges from tree", e))
		}
		return ms
	}
	if gotErr == "" && got.Value != ref.Value {
		ms = append(ms, fmt.Sprintf("tiered %v value %d, tree %d", e, got.Value, ref.Value))
	}
	if !reflect.DeepEqual(got.Stats, ref.Stats) {
		ms = append(ms, fmt.Sprintf("tiered %v stats %+v, tree %+v", e, got.Stats, ref.Stats))
	}
	if !reflect.DeepEqual(got.Tier0, ref.Tier0) || !reflect.DeepEqual(got.Tier1, ref.Tier1) {
		ms = append(ms, fmt.Sprintf("tiered %v per-tier stats diverge from tree", e))
	}
	if got.Boundary != ref.Boundary || got.Realigned != ref.Realigned || got.Replaced != ref.Replaced {
		ms = append(ms, fmt.Sprintf("tiered %v boundary %v/%d/%d, tree %v/%d/%d", e,
			got.Boundary, got.Realigned, got.Replaced, ref.Boundary, ref.Realigned, ref.Replaced))
	}
	if irtext.Print(got.Final) != irtext.Print(ref.Final) {
		ms = append(ms, fmt.Sprintf("tiered %v final program diverges from tree", e))
	}
	// The tier-1 program is Align-reordered and freshly re-placed;
	// every engine must still agree on it exactly.
	mach := machine.PARISC()
	for _, m := range EngineParity(ref.Final, e, vm.Config{Machine: mach, CollectEdges: true, MaxSteps: 1 << 22}, args) {
		ms = append(ms, "tier-1 program: "+m)
	}
	return ms
}

// tierOutcome runs the full tiered pipeline for one engine on a fresh
// clone. prepErr reports engine-independent pipeline failures
// (allocation); errStr is the tiered run's error text.
func tierOutcome(prog *ir.Program, e vm.Engine, quantum, budget int64, args []int64) (res *tier.Result, errStr string, prepErr error) {
	p := prog.Clone()
	mach := machine.PARISC()
	profile.EstimateProgramMachine(p, mach, nil)
	if _, err := regalloc.AllocateProgramParallel(p, mach, 1); err != nil {
		return nil, "", err
	}
	res, err := tier.Run(p, tier.Config{
		Machine:     mach,
		Strategy:    strategy.HierarchicalJump,
		Quantum:     quantum,
		MaxSteps:    budget,
		Parallelism: 1,
		Engine:      e,
	}, args...)
	if err != nil {
		errStr = err.Error()
	}
	return res, errStr, nil
}
