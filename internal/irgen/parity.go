package irgen

// parity.go cross-checks VM engines observation for observation: the
// tree interpreter is the reference, and any divergence — result
// value, error text, statistics counter, edge profile — is a
// violation. The native fuzz target (FuzzEngineParity) and the
// spillfuzz -parity sweep both drive these helpers.

import (
	"fmt"
	"reflect"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/vm"
)

// engineOutcome is everything observable about one engine's run.
type engineOutcome struct {
	val   int64
	err   string
	stats vm.Stats
	edges map[*ir.Edge]int64
}

func runOn(prog *ir.Program, e vm.Engine, cfg vm.Config, args []int64) engineOutcome {
	cfg.Engine = e
	m := vm.New(prog, cfg)
	val, err := m.Run(args...)
	o := engineOutcome{val: val, stats: m.Stats.Snapshot(), edges: m.EdgeCount}
	if err != nil {
		o.err = err.Error()
	}
	return o
}

// EngineParity runs prog on engine e and on the tree reference under
// cfg and returns mismatch descriptions — nil when the two agree on
// every observable.
func EngineParity(prog *ir.Program, e vm.Engine, cfg vm.Config, args []int64) []string {
	ref := runOn(prog, vm.EngineTree, cfg, args)
	got := runOn(prog, e, cfg, args)
	var ms []string
	if got.err != ref.err {
		ms = append(ms, fmt.Sprintf("%v error %q, tree %q", e, got.err, ref.err))
	}
	if got.err == "" && got.val != ref.val {
		ms = append(ms, fmt.Sprintf("%v value %d, tree %d", e, got.val, ref.val))
	}
	if !reflect.DeepEqual(got.stats, ref.stats) {
		ms = append(ms, fmt.Sprintf("%v stats %+v, tree %+v", e, got.stats, ref.stats))
	}
	if cfg.CollectEdges && !reflect.DeepEqual(got.edges, ref.edges) {
		ms = append(ms, fmt.Sprintf("%v edge counts diverge from tree", e))
	}
	return ms
}

// EngineParitySweep runs the per-seed parity battery for one engine:
// the raw program with edge collection under every given step budget
// (small budgets force mid-quantum halts), and — when the program
// profiles cleanly — the hierarchically placed program under
// callee-saved convention checking. The input program is not mutated.
func EngineParitySweep(prog *ir.Program, e vm.Engine, args []int64, budgets []int64) []string {
	var ms []string
	for _, b := range budgets {
		for _, m := range EngineParity(prog, e, vm.Config{CollectEdges: true, MaxSteps: b}, args) {
			ms = append(ms, fmt.Sprintf("budget %d: %s", b, m))
		}
	}
	placed := prog.Clone()
	if _, err := profile.CollectWithConfig(placed, vm.Config{MaxSteps: 1 << 22}, args...); err != nil {
		// Programs that fail to profile (e.g. nonterminating under the
		// cap) already exercised halt parity above.
		return ms
	}
	mach := machine.PARISC()
	if _, err := regalloc.AllocateProgramParallel(placed, mach, 1); err != nil {
		return append(ms, "alloc: "+err.Error())
	}
	if err := strategy.PlaceProgram(placed, strategy.HierarchicalJump, 1); err != nil {
		return append(ms, "place: "+err.Error())
	}
	for _, m := range EngineParity(placed, e, vm.Config{Machine: mach, CollectEdges: true, MaxSteps: 1 << 22}, args) {
		ms = append(ms, "placed: "+m)
	}
	return ms
}
