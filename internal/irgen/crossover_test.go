package irgen

import (
	"strings"
	"testing"

	"repro/internal/irtext"
)

// TestCrossoverOracleCleanSweep: the crossover family must pass the
// differential oracle — every strategy, every machine preset,
// model-vs-measured exactness — on a seed sweep. The oracle allocates
// uniformly (the paper's mode), so this also pins that the new
// generator shapes are semantically sound independent of machine
// pricing.
func TestCrossoverOracleCleanSweep(t *testing.T) {
	const n = 40
	interesting := 0
	for seed := uint64(0); seed < n; seed++ {
		prog := Generate(seed, Crossover())
		r := Check(prog, Options{Args: []int64{int64(seed % 7)}})
		if r.Failed() {
			t.Fatalf("seed %d: %d violations, first: %v", seed, len(r.Violations), r.Violations[0])
		}
		if r.CalleeSavedFuncs > 0 {
			interesting++
		}
	}
	if interesting < n/3 {
		t.Errorf("only %d/%d crossover seeds exercised callee-saved placement; family too tame", interesting, n)
	}
}

// TestCrossoverShapesAppear: across a seed range, each engineered
// scenario family must actually be emitted — the pressure plateau's
// dead redefinitions, the cold diamond's blocks, and the
// fall-through-split nest's blocks are all recognizable in the
// canonical text.
func TestCrossoverShapesAppear(t *testing.T) {
	var pressure, diamond, fallsplit int
	for seed := uint64(0); seed < 40; seed++ {
		text := irtext.Print(Generate(seed, Crossover()))
		// The diamond and nest announce themselves through their block
		// label prefixes; the pressure plateau through its unique
		// three-Mov dead-redefinition run (two consecutive movs to the
		// same register only occur there).
		if strings.Contains(text, "xc") && strings.Contains(text, "xm") {
			diamond++
		}
		if strings.Contains(text, "fw") && strings.Contains(text, "fl") {
			fallsplit++
		}
		if hasDeadRedefRun(text) {
			pressure++
		}
	}
	if pressure == 0 || diamond == 0 || fallsplit == 0 {
		t.Fatalf("scenario families missing across 40 seeds: pressure=%d diamond=%d fallsplit=%d",
			pressure, diamond, fallsplit)
	}
}

// hasDeadRedefRun reports whether two consecutive lines are identical
// mov instructions — the pressure plateau's dead-redefinition
// signature.
func hasDeadRedefRun(text string) bool {
	lines := strings.Split(text, "\n")
	for i := 1; i < len(lines); i++ {
		cur := strings.TrimSpace(lines[i])
		if cur != "" && strings.Contains(cur, "= mov ") && cur == strings.TrimSpace(lines[i-1]) {
			return true
		}
	}
	return false
}

// TestCrossoverDefaultSeedsUnchanged: the Config fields backing the
// crossover shapes default to zero probability, and a zero-probability
// branch must draw no randomness — Default() programs are
// byte-identical to what they were before the family existed, keeping
// every committed benchmark record valid.
func TestCrossoverDefaultSeedsUnchanged(t *testing.T) {
	cfg := Default()
	if cfg.PressureProb != 0 || cfg.ColdDiamondProb != 0 || cfg.FallSplitProb != 0 {
		t.Fatalf("Default() enables crossover shapes: %+v", cfg)
	}
	for seed := uint64(0); seed < 10; seed++ {
		a := irtext.Print(Generate(seed, Default()))
		b := irtext.Print(Generate(seed, Default()))
		if a != b {
			t.Fatalf("seed %d: Default() generation is not deterministic", seed)
		}
	}
}
