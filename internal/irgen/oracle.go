package irgen

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/vm"
)

// Options configures one differential check.
type Options struct {
	// Args are the program arguments, used for both the profiling run
	// and every measurement run (the cost-model exactness invariant
	// needs the two to see identical control flow). Defaults to {0}.
	Args []int64
	// Parallelism bounds the per-function fan-out of allocation.
	// Zero or negative means GOMAXPROCS.
	Parallelism int
	// MaxSteps bounds every VM run, so a non-terminating candidate
	// (the reducer creates them) fails fast. Zero means 1<<26.
	MaxSteps int64
	// ExecModel and JumpModel override the cost model driving the
	// HierarchicalExec / HierarchicalJump placements. The oracle
	// always *scores* with the paper's models, so a broken override
	// surfaces as an optimality violation — tests use this to prove
	// the harness can fail. Nil means the paper's models.
	ExecModel core.CostModel
	JumpModel core.CostModel
	// Engine selects the VM engine for the profiling and measurement
	// runs (default bytecode; the legacy tree interpreter is the
	// differential reference).
	Engine vm.Engine
	// Cache, when non-nil, is the shared analysis layer the check's
	// five strategies read instead of a private per-check cache. A
	// sweep driver (cmd/spillfuzz) passes one cache across every seed
	// so its hit/build counters prove sharing end to end.
	Cache *analysis.Cache
}

// Violation is one broken invariant.
type Violation struct {
	// Invariant names the broken property: "verify-input", "profile",
	// "alloc", "verify-placed", "flow-placed", "roundtrip", "run",
	// "value", "exec-optimal", "jump-vs-seed", "jump-vs-shrinkwrap",
	// "jump-vs-baseline", "exact-cost", "exact-cost-machine".
	Invariant string
	// Strategy is the placement the violation concerns (meaningful for
	// per-strategy invariants; EntryExit otherwise).
	Strategy strategy.Strategy
	// Detail describes the violation.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s[%s]: %s", v.Invariant, v.Strategy, v.Detail)
}

// Report is the outcome of one differential check.
type Report struct {
	Violations []Violation

	// Value is the program result under the baseline strategy.
	Value int64
	// Overhead is the measured dynamic spill overhead per strategy.
	Overhead [strategy.Count]int64
	// Instrs is the baseline run's dynamic instruction count.
	Instrs int64
	// CalleeSavedFuncs counts functions whose allocation uses
	// callee-saved registers — zero means the check was trivial.
	CalleeSavedFuncs int
}

// Failed reports whether any invariant broke.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

func (r *Report) violate(inv string, s strategy.Strategy, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Invariant: inv, Strategy: s, Detail: fmt.Sprintf(format, args...),
	})
}

// CheckSource parses src and runs the differential oracle on it.
func CheckSource(src string, opts Options) *Report {
	prog, err := irtext.Parse(src)
	if err != nil {
		r := &Report{}
		r.violate("verify-input", strategy.EntryExit, "parse: %v", err)
		return r
	}
	return Check(prog, opts)
}

// Check runs every placement strategy on clones sharing one register
// allocation and verifies the cross-strategy invariants:
//
//   - structural: ir.VerifyProgram and profile flow conservation hold
//     after placement, and the placed program survives a
//     Parse(Print(p)) round trip byte-identically;
//   - semantic: every strategy computes the same program result, and
//     no run violates the callee-saved convention (the VM enforces it);
//   - optimality: HierarchicalExec's placement costs no more than any
//     other strategy's under the execution count model (the paper's
//     optimality theorem), per function;
//   - seed dominance: HierarchicalJump's modeled jump-edge cost never
//     exceeds its seed's (the traversal only improves the seed);
//   - measurement: HierarchicalJump's measured overhead never exceeds
//     Shrinkwrap's or EntryExit's (the paper's headline claim);
//   - exactness: EntryExit's modeled jump-edge cost equals its
//     measured save/restore overhead (no jump blocks, so model and
//     machine must agree instruction for instruction) — and the same
//     agreement must hold cycle for cycle under every machine cost
//     preset, pricing the model with core.MachineModel and the
//     measured counts with the preset's cost surface.
//
// The input program is not mutated.
func Check(prog *ir.Program, opts Options) *Report {
	r := &Report{}
	if len(opts.Args) == 0 {
		opts.Args = []int64{0}
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 1 << 26
	}
	mach := machine.PARISC()

	base := prog.Clone()
	if err := ir.VerifyProgram(base); err != nil {
		r.violate("verify-input", strategy.EntryExit, "%v", err)
		return r
	}
	if !roundTrip(base) {
		r.violate("roundtrip", strategy.EntryExit, "unplaced program does not round-trip")
	}

	if _, err := profile.CollectWithConfig(base, vm.Config{MaxSteps: opts.MaxSteps, Engine: opts.Engine}, opts.Args...); err != nil {
		r.violate("profile", strategy.EntryExit, "%v", err)
		return r
	}
	if err := profile.Consistent(base); err != nil {
		r.violate("profile", strategy.EntryExit, "%v", err)
		return r
	}

	if _, err := regalloc.AllocateProgramParallel(base, mach, opts.Parallelism); err != nil {
		r.violate("alloc", strategy.EntryExit, "%v", err)
		return r
	}
	placed := strategy.NeedsPlacement(base)
	r.CalleeSavedFuncs = len(placed)

	// Per-strategy, per-function modeled costs under the paper's two
	// models, scored on the sets each strategy actually applies.
	execCost := make([]map[string]int64, strategy.Count)
	jumpCost := make([]map[string]int64, strategy.Count)
	var values [strategy.Count]int64
	var ran [strategy.Count]bool

	// EntryExit's modeled cost under every machine cost preset, summed
	// across functions: the per-preset exactness check compares it to
	// the measured counts priced with the same preset.
	presets := machine.Presets()
	presetModeled := make([]int64, len(presets))

	// All five strategies compute their sets on the shared allocated
	// base through one analysis cache — liveness, dominators, loops,
	// PST, and the shrink-wrap seed are built once per function instead
	// of once per strategy — then each strategy's sets are translated
	// onto its own clone for the mutation and the measurement run.
	cache := opts.Cache
	if cache == nil {
		cache = analysis.NewCache()
	}
	for _, s := range strategy.All {
		execCost[s] = make(map[string]int64, len(placed))
		jumpCost[s] = make(map[string]int64, len(placed))
		clone := base.Clone()
		ok := true
		for _, f := range placed {
			var override core.CostModel
			switch s {
			case strategy.HierarchicalExec:
				override = opts.ExecModel
			case strategy.HierarchicalJump:
				override = opts.JumpModel
			}
			info := cache.For(f)
			sets, err := strategy.ComputeCachedWithModel(f, s, info, override)
			if err != nil {
				r.violate("verify-placed", s, "%s: compute: %v", f.Name, err)
				ok = false
				break
			}
			execCost[s][f.Name] = core.TotalCost(core.ExecCountModel{}, sets)
			jumpCost[s][f.Name] = core.TotalCost(core.JumpEdgeModel{}, sets)
			if s == strategy.EntryExit {
				for pi, d := range presets {
					presetModeled[pi] += core.TotalCost(core.MachineModel{Desc: d, ChargeJumps: true}, sets)
				}
			}
			if err := core.ValidateSetsLive(f, sets, info.Liveness()); err != nil {
				r.violate("verify-placed", s, "%s: %v", f.Name, err)
				ok = false
				break
			}
			cf := clone.Func(f.Name)
			csets, err := core.TranslateSets(sets, f, cf)
			if err != nil {
				r.violate("verify-placed", s, "%s: translate: %v", f.Name, err)
				ok = false
				break
			}
			if err := core.Apply(cf, csets); err != nil {
				r.violate("verify-placed", s, "%s: apply: %v", f.Name, err)
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := ir.VerifyProgram(clone); err != nil {
			r.violate("verify-placed", s, "%v", err)
			continue
		}
		if err := profile.Consistent(clone); err != nil {
			r.violate("flow-placed", s, "%v", err)
		}
		if !roundTrip(clone) {
			r.violate("roundtrip", s, "placed program does not round-trip")
		}
		m := vm.New(clone, vm.Config{Machine: mach, MaxSteps: opts.MaxSteps, Engine: opts.Engine})
		v, err := m.Run(opts.Args...)
		if err != nil {
			r.violate("run", s, "%v", err)
			continue
		}
		values[s] = v
		ran[s] = true
		r.Overhead[s] = m.Stats.Overhead()
		if s == strategy.EntryExit {
			r.Value = v
			r.Instrs = m.Stats.Instrs

			// Exactness: entry/exit placement has no jump blocks, so
			// its modeled jump-edge cost is pure save/restore weight
			// and must equal the measured dynamic count.
			var modeled int64
			for _, c := range jumpCost[s] {
				modeled += c
			}
			measured := m.Stats.Saves + m.Stats.Restores + m.Stats.JumpBlockJmps
			if modeled != measured {
				r.violate("exact-cost", s, "modeled %d != measured %d", modeled, measured)
			}

			// The same exactness must hold under every machine cost
			// preset: the preset-priced model on one side, the measured
			// class counts priced with the preset's cost surface on the
			// other. A model and a machine that disagree on any latency
			// (or on the dual-issue rounding) diverge here.
			for pi, d := range presets {
				pm := m.Stats.SaveRestoreCost(d.Costs)
				if presetModeled[pi] != pm {
					r.violate("exact-cost-machine", s, "machine %s: modeled %d != measured %d",
						d.Name, presetModeled[pi], pm)
				}
			}
		}
	}

	// Cross-strategy invariants need the runs they compare.
	for _, s := range strategy.All {
		if s != strategy.EntryExit && ran[s] && ran[strategy.EntryExit] && values[s] != values[strategy.EntryExit] {
			r.violate("value", s, "computed %d, want %d", values[s], values[strategy.EntryExit])
		}
	}
	he, hj := strategy.HierarchicalExec, strategy.HierarchicalJump
	for _, f := range placed {
		for _, s := range strategy.All {
			if s == he {
				continue
			}
			if ec, ok := execCost[s][f.Name]; ok && execCost[he][f.Name] > ec {
				r.violate("exec-optimal", s, "%s: hierarchical-exec costs %d under exec model, %s costs %d",
					f.Name, execCost[he][f.Name], s, ec)
			}
		}
		if sc, ok := jumpCost[strategy.ShrinkwrapSeed][f.Name]; ok && jumpCost[hj][f.Name] > sc {
			r.violate("jump-vs-seed", hj, "%s: hierarchical-jump costs %d under jump model, seed costs %d",
				f.Name, jumpCost[hj][f.Name], sc)
		}
	}
	if ran[hj] && ran[strategy.Shrinkwrap] && r.Overhead[hj] > r.Overhead[strategy.Shrinkwrap] {
		r.violate("jump-vs-shrinkwrap", hj, "measured overhead %d > shrinkwrap's %d",
			r.Overhead[hj], r.Overhead[strategy.Shrinkwrap])
	}
	if ran[hj] && ran[strategy.EntryExit] && r.Overhead[hj] > r.Overhead[strategy.EntryExit] {
		r.violate("jump-vs-baseline", hj, "measured overhead %d > entry/exit's %d",
			r.Overhead[hj], r.Overhead[strategy.EntryExit])
	}
	return r
}

// roundTrip reports whether the program survives Print -> Parse ->
// Print byte-identically.
func roundTrip(prog *ir.Program) bool {
	s1 := irtext.Print(prog)
	p2, err := irtext.Parse(s1)
	if err != nil {
		return false
	}
	return irtext.Print(p2) == s1
}
