package irgen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/irtext"
)

func TestGenerateValid(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		prog := Generate(seed, Default())
		if err := ir.VerifyProgram(prog); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		if prog.Main != "main" || prog.Func("main") == nil {
			t.Fatalf("seed %d: main missing", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 1 << 40} {
		a := irtext.Print(Generate(seed, Default()))
		b := irtext.Print(Generate(seed, Default()))
		if a != b {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
	}
}

// TestGenerateCoversTraits: over a modest seed range the generator
// must produce every structural trait the paper's invariants depend
// on — otherwise the differential oracle is exercising a narrower
// space than ISSUE intends.
func TestGenerateCoversTraits(t *testing.T) {
	var multiExit, multiParam, rotated, coldCall, diamonds bool
	for seed := uint64(0); seed < 100; seed++ {
		prog := Generate(seed, Default())
		for _, f := range prog.FuncsInOrder() {
			if len(f.Exits()) > 1 {
				multiExit = true
			}
			if len(f.Params) > 1 {
				multiParam = true
			}
			for _, b := range f.Blocks {
				switch {
				case len(b.Name) > 3 && b.Name[:3] == "whl":
					rotated = true
				case len(b.Name) > 2 && b.Name[:2] == "cc":
					coldCall = true
				case len(b.Name) > 2 && b.Name[:2] == "dj":
					diamonds = true
				}
			}
		}
	}
	for name, ok := range map[string]bool{
		"multi-exit": multiExit, "multi-param": multiParam,
		"rotated-loop": rotated, "cold-call": coldCall, "diamond": diamonds,
	} {
		if !ok {
			t.Errorf("trait %s never generated in 100 seeds", name)
		}
	}
}

func TestGenerateRoundTrips(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		prog := Generate(seed, Default())
		s1 := irtext.Print(prog)
		p2, err := irtext.Parse(s1)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if s2 := irtext.Print(p2); s2 != s1 {
			t.Fatalf("seed %d: print not a fixpoint", seed)
		}
		if p2.Main != "main" {
			t.Fatalf("seed %d: main lost in round trip (got %q)", seed, p2.Main)
		}
	}
}
