package irgen

import (
	"repro/internal/ir"
)

// Hostile is the estimator-hostile configuration: programs whose
// measured edge profiles diverge sharply from the static estimator's
// uniform branch splits and uniform loop factor. It is the workload
// family the tiered pipeline (internal/tier) is evaluated on — if the
// estimator were right about these programs, measured re-placement
// could never win.
func Hostile() Config {
	c := Default()
	c.ConstGuardProb = 0.50
	c.SkewedLoopProb = 0.45
	c.SkewedTrip = 48
	c.DataTripProb = 0.35
	c.DriverIters = 5
	return c
}

// genSkewedLoops emits two structurally identical sibling counted
// loops whose trip counts differ by an order of magnitude (2 vs
// SkewedTrip, in random order). The static estimator assigns both the
// same loop factor; the measured profile knows which one carries the
// weight, which flips where alignment chains and where save/restore
// code belongs.
func (g *gen) genSkewedLoops() {
	hot := g.cfg.SkewedTrip
	if hot < 8 {
		hot = 48
	}
	trips := [2]int64{2, hot}
	if g.rng.intn(2) == 0 {
		trips[0], trips[1] = trips[1], trips[0]
	}
	for _, t := range trips {
		g.genFixedLoop(t)
	}
}

// genFixedLoop emits a bottom-tested counted loop with a body that
// combines straight arithmetic with a leaf call carrying a value live
// across it — the callee-saved pressure that makes placement care how
// hot the loop really is.
func (g *gen) genFixedLoop(trip int64) {
	bu := g.bu
	iv := bu.F.NewVirt()
	bu.ConstInto(iv, 0)
	header := g.block("sk")
	exit := g.block("sx")
	bu.Jmp(header, 0)
	bu.SetCurrent(header)
	g.inLoop++
	g.genStraight()
	g.callWithLiveWeb()
	g.inLoop--
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, iv, iv, one)
	tr := bu.Const(trip)
	c := bu.Bin(ir.OpCmpLT, iv, tr)
	bu.Br(c, header, exit, 0, 0)
	bu.SetCurrent(exit)
	bu.BinInto(ir.OpAdd, g.acc, g.acc, iv)
}

// genConstGuard emits a branch that is structurally a coin flip —
// the estimator splits it 50/50 — but compares two constants, so at
// run time it resolves the same way on every execution. The guarded
// arm holds a callee-saved-heavy call web: whether spill code belongs
// inside the arm or above it depends entirely on which way the guard
// actually goes.
func (g *gen) genConstGuard() {
	bu := g.bu
	lo := bu.Const(int64(g.rng.intn(50)))
	hi := bu.Const(int64(100 + g.rng.intn(150)))
	var c ir.Reg
	if g.rng.intn(2) == 0 {
		c = bu.Bin(ir.OpCmpLT, lo, hi) // constant true: the arm is hot
	} else {
		c = bu.Bin(ir.OpCmpLT, hi, lo) // constant false: the arm is dead
	}
	armB := g.block("hg")
	joinB := g.block("hj")
	bu.Br(c, armB, joinB, 0, 0)
	bu.SetCurrent(armB)
	g.genStraight()
	g.callWithLiveWeb()
	bu.Jmp(joinB, 0)
	bu.SetCurrent(joinB)
}

// genDataLoop emits a bottom-tested loop whose trip count is computed
// from the procedure's first parameter ((param & 31) + 2): bounded, so
// termination holds, but invisible to any static estimate — different
// program arguments genuinely change how hot the loop is.
func (g *gen) genDataLoop() {
	bu := g.bu
	mask := bu.Const(31)
	masked := bu.Bin(ir.OpAnd, bu.F.Params[0], mask)
	two := bu.Const(2)
	trip := bu.Bin(ir.OpAdd, masked, two)
	iv := bu.F.NewVirt()
	bu.ConstInto(iv, 0)
	header := g.block("dt")
	exit := g.block("dx")
	bu.Jmp(header, 0)
	bu.SetCurrent(header)
	g.inLoop++
	g.genStraight()
	g.inLoop--
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, iv, iv, one)
	c := bu.Bin(ir.OpCmpLT, iv, trip)
	bu.Br(c, header, exit, 0, 0)
	bu.SetCurrent(exit)
	bu.BinInto(ir.OpXor, g.acc, g.acc, iv)
}

// callWithLiveWeb emits a leaf-library call with a value computed
// before and used after it, forcing the web into a callee-saved
// register. Hostile shapes are only emitted in non-library procedures
// (genStructure gates on isLib), so a lower-indexed callee always
// exists.
func (g *gen) callWithLiveWeb() {
	bu := g.bu
	lib := g.index
	if lib > libProcs {
		lib = libProcs
	}
	callee := "p" + itoa(g.rng.intn(lib))
	three := bu.Const(3)
	live := bu.Bin(ir.OpMul, g.acc, three)
	r := bu.F.NewVirt()
	bu.Call(r, callee, g.acc)
	bu.BinInto(ir.OpAdd, g.acc, r, live)
}
