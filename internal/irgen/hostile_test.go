package irgen

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/profile"
)

// TestHostileOracleSweep: the estimator-hostile family passes the full
// differential oracle — every strategy agrees on semantics and the
// cost models hold — and keeps exercising callee-saved placement.
func TestHostileOracleSweep(t *testing.T) {
	n := uint64(40)
	interesting := 0
	for seed := uint64(0); seed < n; seed++ {
		prog := Generate(seed, Hostile())
		r := Check(prog, Options{Args: []int64{int64(seed % 7)}})
		if r.Failed() {
			t.Fatalf("seed %d: %d violations, first: %v", seed, len(r.Violations), r.Violations[0])
		}
		if r.CalleeSavedFuncs > 0 {
			interesting++
		}
	}
	if interesting < int(n)/3 {
		t.Errorf("only %d/%d hostile seeds exercised callee-saved placement", interesting, n)
	}
}

// TestHostileProfilesDivergeFromEstimates: the family exists to make
// static estimates wrong. Align one clone by the machine estimator's
// weights and another by a measured profile; for most seeds at least
// one function must come out with a different block order — otherwise
// the workload could never show a measured-over-static win.
func TestHostileProfilesDivergeFromEstimates(t *testing.T) {
	const n = 30
	diverged := 0
	for seed := uint64(0); seed < n; seed++ {
		est := Generate(seed, Hostile())
		meas := Generate(seed, Hostile())
		profile.EstimateProgramMachine(est, machine.PARISC(), nil)
		if _, err := profile.Collect(meas, int64(seed%7)); err != nil {
			t.Fatalf("seed %d: profile: %v", seed, err)
		}
		if alignOrdersDiffer(est, meas) {
			diverged++
		}
	}
	if diverged < n/2 {
		t.Errorf("only %d/%d hostile seeds diverge between estimated and measured alignment", diverged, n)
	}
}

// alignOrdersDiffer aligns both programs with their current weights
// and reports whether any function's block order differs.
func alignOrdersDiffer(a, b *ir.Program) bool {
	af, bf := a.FuncsInOrder(), b.FuncsInOrder()
	differ := false
	for i := range af {
		layout.Align(af[i])
		layout.Align(bf[i])
		for j := range af[i].Blocks {
			if af[i].Blocks[j].Name != bf[i].Blocks[j].Name {
				differ = true
			}
		}
	}
	return differ
}
