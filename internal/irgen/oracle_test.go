package irgen

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/strategy"
)

// TestOracleCleanSweep: the oracle passes a seed range with the real
// cost models — including the per-machine-preset model-vs-measured
// exactness checks that run inside Check — and at least some of those
// checks are non-trivial (callee-saved registers in play).
//
// The sweep covers 100 seeds by default; the nightly CI workflow
// widens it through IRGEN_ORACLE_SEEDS.
func TestOracleCleanSweep(t *testing.T) {
	n := uint64(100)
	if s := os.Getenv("IRGEN_ORACLE_SEEDS"); s != "" {
		v, err := strconv.ParseUint(s, 10, 32)
		if err != nil || v == 0 {
			t.Fatalf("bad IRGEN_ORACLE_SEEDS=%q: %v", s, err)
		}
		n = v
	}
	interesting := 0
	for seed := uint64(0); seed < n; seed++ {
		prog := Generate(seed, Default())
		r := Check(prog, Options{Args: []int64{int64(seed % 7)}})
		if r.Failed() {
			t.Fatalf("seed %d: %d violations, first: %v", seed, len(r.Violations), r.Violations[0])
		}
		if r.CalleeSavedFuncs > 0 {
			interesting++
		}
	}
	if interesting < int(n)/3 {
		t.Errorf("only %d/%d seeds exercised callee-saved placement; generator too tame", interesting, n)
	}
}

// hotModel inverts the cost scale: hot program points look cheap,
// cold ones expensive. A hierarchical traversal driven by it hoists
// spill code into the hottest locations it can find.
type hotModel struct{}

func (hotModel) LocationCost(k core.CostKind, l core.Location, seed bool) int64 {
	return 1 << 20 / (1 + l.Weight())
}
func (hotModel) Name() string { return "broken-hot" }

// TestOracleCatchesBrokenModel: a deliberately broken cost model must
// surface as an optimality violation on some seed — proof the harness
// can actually fail. (ISSUE 2 acceptance criterion.)
func TestOracleCatchesBrokenModel(t *testing.T) {
	caught := false
	for seed := uint64(0); seed < 40 && !caught; seed++ {
		prog := Generate(seed, Default())
		r := Check(prog, Options{ExecModel: hotModel{}})
		for _, v := range r.Violations {
			if v.Invariant == "exec-optimal" {
				caught = true
			}
		}
	}
	if !caught {
		t.Fatal("oracle never flagged the broken exec cost model across 40 seeds")
	}
}

// TestOracleCatchesBrokenJumpModel: same for the jump-edge model side.
func TestOracleCatchesBrokenJumpModel(t *testing.T) {
	caught := false
	for seed := uint64(0); seed < 60 && !caught; seed++ {
		prog := Generate(seed, Default())
		r := Check(prog, Options{JumpModel: hotModel{}})
		for _, v := range r.Violations {
			// A hot-seeking jump placement loses either in the model
			// comparison against its seed or on the measured run.
			switch v.Invariant {
			case "jump-vs-seed", "jump-vs-shrinkwrap", "jump-vs-baseline":
				caught = true
			}
		}
	}
	if !caught {
		t.Fatal("oracle never flagged the broken jump cost model across 60 seeds")
	}
}

// TestOracleCatchesValueDivergence: corrupting one strategy's placed
// program must show up as a value violation, not pass silently.
func TestOracleValueInvariantWiring(t *testing.T) {
	prog := Generate(3, Default())
	r := Check(prog, Options{})
	if r.Failed() {
		t.Fatalf("baseline check failed: %v", r.Violations)
	}
	if r.Value == 0 && r.Instrs == 0 {
		t.Error("report carries no measurements")
	}
	for _, s := range strategy.All {
		if r.Overhead[strategy.HierarchicalJump] > r.Overhead[s] && s != strategy.HierarchicalExec {
			t.Errorf("hierarchical-jump overhead %d exceeds %v's %d",
				r.Overhead[strategy.HierarchicalJump], s, r.Overhead[s])
		}
	}
}

func TestCheckSourceParseError(t *testing.T) {
	r := CheckSource("func broken {", Options{})
	if !r.Failed() || r.Violations[0].Invariant != "verify-input" {
		t.Fatalf("want verify-input violation, got %v", r.Violations)
	}
}
