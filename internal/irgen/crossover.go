package irgen

import (
	"repro/internal/ir"
)

// Crossover is the machine-crossover configuration: programs where the
// best placement strategy or the best spill choice depends on which
// machine preset is paying for it. The hostile family (hostile.go)
// defeats the static estimator; this family defeats any single cost
// model — register-pressure plateaus whose cheapest spill flips with
// the store:load latency ratio, deep cold diamonds feeding hot back
// edges, and loop nests where the profitable placement splits a
// fall-through. It is the workload family machine-aware allocation
// (regalloc.Options.MachineCosts) and the BENCH_crossover gate are
// evaluated on.
func Crossover() Config {
	c := Default()
	c.PressureProb = 0.50
	c.PressureWidth = 11
	c.ColdDiamondProb = 0.35
	c.FallSplitProb = 0.35
	c.DriverIters = 4
	return c
}

// genPressure emits a register-pressure plateau across a call,
// engineered so exactly one web must spill and the uniform-cheapest
// web differs from the machine-cheapest web whenever spill stores and
// loads have different latencies.
//
// Two candidates with mirrored def/use mixes share the lowest uniform
// cost: y is defined once and used three times, x is defined three
// times (the first two dead) and used once. Both carry weight 4W
// under uniform pricing, and their interference degrees are equal by
// construction, so the allocator's strict-< tie-break spills y (the
// lower-numbered virtual). Under machine pricing the spill bills
// diverge: spilling x executes three stores and one load, spilling y
// one store and three loads — so any preset with StoreCost < LoadCost
// (deep-pipeline's 2:3, slow-memory's 8:10) prefers to spill x, while
// unit-ratio presets reproduce the uniform choice exactly. The
// PressureWidth filler webs (each costing 5W, never cheapest) fill
// the callee-saved file: width 11 + x + y + acc = 14 crossing webs
// against 13 callee-saved registers forces the single spill.
func (g *gen) genPressure() {
	bu := g.bu
	width := g.cfg.PressureWidth
	if width < 1 {
		width = 11
	}
	// y first: the lower virtual number wins the uniform tie-break.
	y := bu.F.NewVirt()
	bu.Mov(y, g.acc)
	x := bu.F.NewVirt()
	bu.Mov(x, g.acc)
	bu.Mov(x, g.acc) // dead redefinition: def weight without use weight
	bu.Mov(x, g.acc)
	fillers := make([]ir.Reg, width)
	for i := range fillers {
		c := bu.Const(int64(i*13 + 7))
		fillers[i] = bu.Bin(ir.OpAdd, g.acc, c)
	}
	lib := g.index
	if lib > libProcs {
		lib = libProcs
	}
	callee := "p" + itoa(g.rng.intn(lib))
	r := bu.F.NewVirt()
	bu.Call(r, callee, g.acc)
	bu.BinInto(ir.OpAdd, g.acc, r, x)
	bu.BinInto(ir.OpAdd, g.acc, g.acc, y)
	bu.BinInto(ir.OpXor, g.acc, g.acc, y)
	bu.BinInto(ir.OpSub, g.acc, g.acc, y)
	for _, fv := range fillers {
		bu.BinInto(ir.OpAdd, g.acc, g.acc, fv)
		bu.BinInto(ir.OpXor, g.acc, g.acc, fv)
		bu.BinInto(ir.OpSub, g.acc, g.acc, fv)
		bu.BinInto(ir.OpAdd, g.acc, g.acc, fv)
	}
}

// genColdDiamondLoop emits a hot counted loop whose body is almost
// entirely a cold-guarded depth-two diamond holding a live-across-call
// web, with the hot path falling straight through to the back edge.
// The callee-saved save/restore wants to sink into the cold region,
// but doing so trades jump blocks on the diamond's edges against
// memory traffic on the hot back edge — which side wins depends on
// the preset's jump-to-memory cost ratio.
func (g *gen) genColdDiamondLoop() {
	bu := g.bu
	trip := int64(8 + g.rng.intn(9))
	iv := bu.F.NewVirt()
	bu.ConstInto(iv, 0)
	header := g.block("xh")
	exit := g.block("xx")
	bu.Jmp(header, 0)
	bu.SetCurrent(header)
	g.inLoop++
	c := g.condition(20) // cold guard: taken ~8% of iterations
	coldB := g.block("xc")
	joinB := g.block("xj")
	bu.Br(c, coldB, joinB, 0, 0)
	bu.SetCurrent(coldB)
	c2 := g.condition(128)
	leftB := g.block("xl")
	rightB := g.block("xr")
	innerJ := g.block("xm")
	bu.Br(c2, leftB, rightB, 0, 0)
	bu.SetCurrent(leftB)
	g.callWithLiveWeb()
	bu.Jmp(innerJ, 0)
	bu.SetCurrent(rightB)
	g.genStraight()
	bu.Jmp(innerJ, 0)
	bu.SetCurrent(innerJ)
	bu.Jmp(joinB, 0)
	bu.SetCurrent(joinB)
	g.genStraight()
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, iv, iv, one)
	tr := bu.Const(trip)
	c3 := bu.Bin(ir.OpCmpLT, iv, tr)
	bu.Br(c3, header, exit, 0, 0)
	g.inLoop--
	bu.SetCurrent(exit)
	bu.BinInto(ir.OpAdd, g.acc, g.acc, iv)
}

// genFallSplitNest emits a two-deep loop nest whose inner body skips
// over its call-carrying work block to the latch on a cold condition.
// The skip makes the condition-to-latch edge a critical jump edge and
// the work-to-latch edge the hot fall-through: a placement that
// shields the work block's callee-saved web must either pay a jump
// block on the cold skip edge or split the hot fall-through, so
// presets that price jumps differently choose different placements.
func (g *gen) genFallSplitNest() {
	bu := g.bu
	oiv := bu.F.NewVirt()
	bu.ConstInto(oiv, 0)
	outerH := g.block("fo")
	outerX := g.block("fq")
	bu.Jmp(outerH, 0)
	bu.SetCurrent(outerH)
	g.inLoop++
	iiv := bu.F.NewVirt()
	bu.ConstInto(iiv, 0)
	innerH := g.block("fi")
	workB := g.block("fw")
	latchB := g.block("fl")
	innerX := g.block("fx")
	bu.Jmp(innerH, 0)
	bu.SetCurrent(innerH)
	g.inLoop++
	c := g.condition(64) // cold skip: ~25% of iterations jump the work
	bu.Br(c, latchB, workB, 0, 0)
	bu.SetCurrent(workB)
	g.callWithLiveWeb()
	bu.Jmp(latchB, 0)
	bu.SetCurrent(latchB)
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, iiv, iiv, one)
	tr := bu.Const(int64(4 + g.rng.intn(5)))
	c2 := bu.Bin(ir.OpCmpLT, iiv, tr)
	bu.Br(c2, innerH, innerX, 0, 0)
	g.inLoop--
	bu.SetCurrent(innerX)
	bu.BinInto(ir.OpAdd, g.acc, g.acc, iiv)
	oneO := bu.Const(1)
	bu.BinInto(ir.OpAdd, oiv, oiv, oneO)
	trO := bu.Const(int64(2 + g.rng.intn(2)))
	c3 := bu.Bin(ir.OpCmpLT, oiv, trO)
	bu.Br(c3, outerH, outerX, 0, 0)
	g.inLoop--
	bu.SetCurrent(outerX)
	bu.BinInto(ir.OpXor, g.acc, g.acc, oiv)
}
