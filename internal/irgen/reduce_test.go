package irgen

import (
	"testing"

	"repro/internal/ir"
)

func progSize(p *ir.Program) int {
	n := 0
	for _, f := range p.FuncsInOrder() {
		n += f.Instrs()
	}
	return n
}

// TestReduceShrinksWhilePreserving: reducing under a predicate that
// demands callee-saved pressure keeps the property and the program
// valid while getting (much) smaller.
func TestReduceShrinksWhilePreserving(t *testing.T) {
	found := 0
	for seed := uint64(0); seed < 20 && found < 3; seed++ {
		prog := Generate(seed, Default())
		keep := func(p *ir.Program) bool {
			r := Check(p, Options{MaxSteps: 1 << 22})
			return !r.Failed() && r.CalleeSavedFuncs > 0
		}
		if !keep(prog) {
			continue
		}
		found++
		before := progSize(prog)
		red := Reduce(prog, keep, 3)
		if err := ir.VerifyProgram(red); err != nil {
			t.Fatalf("seed %d: reduced program invalid: %v", seed, err)
		}
		if !keep(red) {
			t.Fatalf("seed %d: reduction lost the property", seed)
		}
		after := progSize(red)
		if after > before {
			t.Errorf("seed %d: reduction grew the program (%d -> %d)", seed, before, after)
		}
		t.Logf("seed %d: %d -> %d instructions", seed, before, after)
	}
	if found == 0 {
		t.Fatal("no interesting seeds found")
	}
}

// TestReduceToViolation: plant a real defect (a broken cost model),
// then reduce while the same invariant keeps failing — the minimized
// reproducer must still trip the oracle.
func TestReduceToViolation(t *testing.T) {
	opts := Options{ExecModel: hotModel{}, MaxSteps: 1 << 22}
	violated := func(p *ir.Program) bool {
		for _, v := range Check(p, opts).Violations {
			if v.Invariant == "exec-optimal" {
				return true
			}
		}
		return false
	}
	for seed := uint64(0); seed < 40; seed++ {
		prog := Generate(seed, Default())
		if !violated(prog) {
			continue
		}
		before := progSize(prog)
		red := Reduce(prog, violated, 3)
		if !violated(red) {
			t.Fatal("reduction lost the violation")
		}
		after := progSize(red)
		t.Logf("seed %d: reproducer %d -> %d instructions", seed, before, after)
		if after >= before {
			t.Errorf("reducer made no progress (%d -> %d)", before, after)
		}
		return
	}
	t.Fatal("no violating seed found to reduce")
}
