// Package irgen generates arbitrary valid IR programs from a seed and
// checks them with a differential oracle that runs every placement
// strategy from one shared register allocation. The generator covers
// shapes far beyond internal/workload's fixed SPEC stand-ins —
// nested and rotated loops, multi-exit conditionals, diamond chains
// with skip edges, call DAGs with live-across-call webs, cold-guarded
// calls, and multi-return procedures — and every program it emits
// terminates, passes ir.VerifyProgram, and is deterministic in the
// seed, so a failing seed is a complete bug report.
package irgen

import (
	"repro/internal/ir"
)

// Config sets the generator's structural knobs. Probabilities are in
// [0, 1]; the zero value is useless, start from Default or Small.
type Config struct {
	// Procs is the number of procedures besides main ("p0"..).
	Procs int
	// Segments is the number of top-level segments per procedure.
	Segments int
	// MaxDepth bounds structure nesting (loops in loops, diamonds in
	// branches).
	MaxDepth int

	// LoopProb makes a segment a counted loop; RotatedProb emits it
	// top-tested (while-shape, the "rotated" form with the branch in
	// the header) instead of bottom-tested (do-while shape).
	LoopProb    float64
	RotatedProb float64
	// NestedProb makes a loop body contain an inner loop.
	NestedProb float64
	// DiamondProb makes a segment a chain of 1-3 conditional diamonds;
	// SkipProb adds forward edges from a diamond arm straight into the
	// next diamond's join, the irreducible-adjacent shape that stresses
	// cycle equivalence without breaking reducibility or termination.
	DiamondProb float64
	SkipProb    float64

	// CallProb makes a segment call a lower-indexed procedure;
	// ColdCallProb guards the call with a cold branch; VoidCallProb
	// discards the result. InLoopCallFactor scales CallProb inside
	// loop bodies.
	CallProb         float64
	ColdCallProb     float64
	VoidCallProb     float64
	InLoopCallFactor float64
	// DeepCallProb lets at most one call site per procedure target any
	// lower-indexed procedure instead of the leaf library, giving the
	// call graph depth while keeping dynamic cost linear in Procs.
	DeepCallProb float64

	// LiveAcrossProb defines a value before a call and uses it after,
	// forcing the web into a callee-saved register; ExtraLiveProb adds
	// a second interfering value across the same call.
	LiveAcrossProb float64
	ExtraLiveProb  float64

	// EarlyRetProb ends a segment with a cold conditional return,
	// producing multi-exit CFGs and multi-return procedures.
	EarlyRetProb float64
	// MultiParamProb gives a procedure a second parameter.
	MultiParamProb float64

	// MaxTrip bounds loop trip counts (uniform in [2, MaxTrip]).
	MaxTrip int
	// StraightLen is the arithmetic chain length of straight segments.
	StraightLen int
	// DriverIters is the number of main-loop iterations.
	DriverIters int64

	// Estimator-hostile shapes (see hostile.go; all default off, and a
	// zero probability draws no randomness, so configs without them
	// generate byte-identical programs for every existing seed).
	//
	// ConstGuardProb emits a structurally innocent branch that runtime
	// resolves the same way every time, guarding a callee-saved-heavy
	// arm; SkewedLoopProb emits two structurally identical sibling
	// loops whose trip counts differ by an order of magnitude
	// (2 vs SkewedTrip); DataTripProb emits a loop whose trip count is
	// computed from the procedure argument. The static estimator
	// weighs each of these wrongly — 50/50 branch splits and one
	// uniform loop factor — which is exactly what the tiered
	// measured-profile pipeline exists to correct.
	ConstGuardProb float64
	SkewedLoopProb float64
	SkewedTrip     int64
	DataTripProb   float64

	// Crossover shapes (see crossover.go; all default off, same
	// zero-probability-draws-nothing guarantee as the hostile knobs).
	//
	// PressureProb emits a register-pressure plateau across a call:
	// PressureWidth filler webs plus two equal-uniform-cost candidates
	// with mirrored def/use mixes, so which web the allocator spills
	// depends on the machine's store:load latency ratio.
	// ColdDiamondProb emits a hot loop whose body holds a deep cold
	// diamond with a live-across-call web feeding the hot back edge;
	// FallSplitProb emits a loop nest with a cold early-skip to the
	// latch, so the profitable save/restore placement splits a
	// fall-through edge. Together these are the scenario families on
	// which machine presets disagree about the winning strategy or
	// allocation mode.
	PressureProb    float64
	PressureWidth   int
	ColdDiamondProb float64
	FallSplitProb   float64
}

// Default is the spillfuzz sweep configuration: large enough to hit
// every structural trait, small enough that a full differential check
// of one seed stays in the low milliseconds.
func Default() Config {
	return Config{
		Procs:    6,
		Segments: 3,
		MaxDepth: 2,

		LoopProb:    0.40,
		RotatedProb: 0.35,
		NestedProb:  0.35,
		DiamondProb: 0.30,
		SkipProb:    0.30,

		CallProb:         0.55,
		ColdCallProb:     0.45,
		VoidCallProb:     0.15,
		InLoopCallFactor: 0.35,
		DeepCallProb:     0.30,

		LiveAcrossProb: 0.60,
		ExtraLiveProb:  0.25,

		EarlyRetProb:   0.25,
		MultiParamProb: 0.35,

		MaxTrip:     4,
		StraightLen: 3,
		DriverIters: 3,
	}
}

// Small is the fuzzing configuration: tiny programs for high
// executions-per-second under `go test -fuzz`.
func Small() Config {
	c := Default()
	c.Procs = 3
	c.Segments = 2
	c.MaxDepth = 1
	c.DriverIters = 2
	c.MaxTrip = 3
	return c
}

// libProcs is the number of low-index leaf "library" procedures. They
// never call and keep shallow loops, so calls into them from loop
// bodies cannot compound into exponential dynamic cost.
const libProcs = 2

// rng is a splitmix64 generator: full-period, and statistically solid
// even for the sequential seeds 0, 1, 2, ... a sweep feeds it.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
func (r *rng) trip(cfg Config) int64 {
	max := cfg.MaxTrip
	if max < 2 {
		max = 2
	}
	return int64(2 + r.intn(max-1))
}

// Generate builds the program for the seed. Generation keeps all
// state local, so concurrent calls are safe.
func Generate(seed uint64, cfg Config) *ir.Program {
	g := &gen{cfg: cfg, rng: rng(seed), prog: ir.NewProgram()}
	if g.cfg.Procs < 1 {
		g.cfg.Procs = 1
	}
	g.arity = make([]int, g.cfg.Procs)
	for i := 0; i < g.cfg.Procs; i++ {
		g.genProc(i)
	}
	g.genMain()
	g.prog.Main = "main"
	return g.prog
}

type gen struct {
	cfg   Config
	rng   rng
	prog  *ir.Program
	arity []int

	bu       *ir.Builder
	acc      ir.Reg
	index    int
	next     int
	deepUsed bool // one deep call per procedure
	inLoop   int  // loop nesting depth at the emission point
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (g *gen) block(prefix string) *ir.Block {
	g.next++
	return g.bu.F.NewBlock(prefix + itoa(g.next))
}

func (g *gen) isLib() bool { return g.index < libProcs }

// genProc emits procedure i. Procedures may call procedures with
// smaller indices only, so the call graph is a DAG and every program
// terminates.
func (g *gen) genProc(i int) {
	g.index = i
	g.next = 0
	g.deepUsed = false
	nparams := 1
	if !g.isLib() && g.rng.float() < g.cfg.MultiParamProb {
		nparams = 2
	}
	g.arity[i] = nparams
	g.bu = ir.NewBuilder("p"+itoa(i), nparams)
	g.bu.Block("entry")
	g.acc = g.bu.F.NewVirt()
	g.bu.Mov(g.acc, g.bu.F.Params[0])
	if nparams == 2 {
		g.bu.BinInto(ir.OpXor, g.acc, g.acc, g.bu.F.Params[1])
	}

	segments := g.cfg.Segments
	if g.isLib() && segments > 2 {
		segments = 2
	}
	if segments < 1 {
		segments = 1
	}
	for s := 0; s < segments; s++ {
		g.genSegment(0)
	}
	g.bu.Ret(g.acc)
	g.prog.Add(g.bu.Finish())
}

// genSegment emits one structure into the current block chain.
func (g *gen) genSegment(depth int) {
	g.genStructure(depth)
	if !g.isLib() && depth == 0 && g.rng.float() < g.cfg.EarlyRetProb {
		g.genEarlyRet()
	}
}

// genStructure picks and emits the segment's structure. The hostile
// family is drawn first, but only when its knobs are set — a zero
// probability consumes no randomness, keeping every pre-existing
// seed's program byte-identical.
func (g *gen) genStructure(depth int) {
	if !g.isLib() && depth < g.cfg.MaxDepth {
		switch {
		case g.cfg.SkewedLoopProb > 0 && g.rng.float() < g.cfg.SkewedLoopProb:
			g.genSkewedLoops()
			return
		case g.cfg.ConstGuardProb > 0 && g.rng.float() < g.cfg.ConstGuardProb:
			g.genConstGuard()
			return
		case g.cfg.DataTripProb > 0 && g.rng.float() < g.cfg.DataTripProb:
			g.genDataLoop()
			return
		case g.cfg.PressureProb > 0 && g.rng.float() < g.cfg.PressureProb:
			g.genPressure()
			return
		case g.cfg.ColdDiamondProb > 0 && g.rng.float() < g.cfg.ColdDiamondProb:
			g.genColdDiamondLoop()
			return
		case g.cfg.FallSplitProb > 0 && g.rng.float() < g.cfg.FallSplitProb:
			g.genFallSplitNest()
			return
		}
	}
	loopProb, callProb, diamondProb := g.cfg.LoopProb, g.cfg.CallProb, g.cfg.DiamondProb
	if g.isLib() {
		// Leaf library: no calls (their entry counts dwarf everything
		// else, so a callee-saved web here would dominate every
		// measurement), shallower control flow.
		loopProb *= 0.5
		callProb = 0
	}
	if g.inLoop > 0 {
		callProb *= g.cfg.InLoopCallFactor
	}
	r := g.rng.float()
	switch {
	case depth < g.cfg.MaxDepth && r < loopProb:
		g.genLoop(depth)
	case r < loopProb+diamondProb && depth < g.cfg.MaxDepth+1:
		g.genDiamonds(depth)
	case g.index > 0 && g.rng.float() < callProb:
		g.genCall()
	default:
		g.genStraight()
	}
}

// genStraight emits an arithmetic chain mutating acc.
func (g *gen) genStraight() {
	bu := g.bu
	n := g.cfg.StraightLen
	if n < 1 {
		n = 1
	}
	for k := 0; k < n; k++ {
		c := bu.Const(int64(g.rng.intn(97) + 1))
		switch g.rng.intn(7) {
		case 0:
			bu.BinInto(ir.OpAdd, g.acc, g.acc, c)
		case 1:
			bu.BinInto(ir.OpXor, g.acc, g.acc, c)
		case 2:
			bu.BinInto(ir.OpSub, g.acc, g.acc, c)
		case 3:
			t := bu.Bin(ir.OpMul, g.acc, c)
			mask := bu.Const(0xffff)
			bu.BinInto(ir.OpAnd, g.acc, t, mask)
		case 4:
			bu.BinInto(ir.OpOr, g.acc, g.acc, c)
		case 5:
			// The const feeds both operands of the binop — the shape
			// engines fuse with no register operand at all.
			t := bu.Bin(ir.OpMul, c, c)
			bu.BinInto(ir.OpXor, g.acc, g.acc, t)
		default:
			mask := bu.Const(1023)
			t := bu.Bin(ir.OpAnd, g.acc, mask)
			bu.BinInto(ir.OpAdd, g.acc, t, c)
		}
	}
}

// condition emits a branch condition true with probability roughly
// thresh/256, decorrelated by a salt. Occasionally it degenerates to a
// constant self-compare (c = const k; cmp c, c) — the branch that
// follows then fuses into a const+cmp+br superinstruction with no
// register operand, a shape nothing else in the generator produces.
func (g *gen) condition(thresh int64) ir.Reg {
	bu := g.bu
	if g.rng.intn(16) == 0 {
		c := bu.Const(int64(g.rng.intn(251)))
		if g.rng.intn(2) == 0 {
			return bu.Bin(ir.OpCmpLT, c, c) // constant false
		}
		return bu.Bin(ir.OpCmpLE, c, c) // constant true
	}
	salt := bu.Const(int64(g.rng.intn(251)))
	x := bu.Bin(ir.OpAdd, g.acc, salt)
	mask := bu.Const(255)
	m := bu.Bin(ir.OpAnd, x, mask)
	th := bu.Const(thresh)
	return bu.Bin(ir.OpCmpLT, m, th)
}

// genLoop emits a counted loop, bottom-tested (do-while) or rotated
// (top-tested while with the test in the header), with nested
// segments in the body. Trip counts are bounded, so loops always
// terminate.
func (g *gen) genLoop(depth int) {
	bu := g.bu
	trip := g.rng.trip(g.cfg)
	iv := bu.F.NewVirt()
	bu.ConstInto(iv, 0)

	rotated := g.rng.float() < g.cfg.RotatedProb
	g.inLoop++
	if rotated {
		header := g.block("whl")
		body := g.block("wbd")
		exit := g.block("wex")
		bu.Jmp(header, 0)
		bu.SetCurrent(header)
		tr := bu.Const(trip)
		c := bu.Bin(ir.OpCmpLT, iv, tr)
		bu.Br(c, body, exit, 0, 0)
		bu.SetCurrent(body)
		g.loopBody(depth)
		one := bu.Const(1)
		bu.BinInto(ir.OpAdd, iv, iv, one)
		bu.Jmp(header, 0)
		bu.SetCurrent(exit)
	} else {
		header := g.block("lp")
		exit := g.block("dn")
		bu.Jmp(header, 0)
		bu.SetCurrent(header)
		g.loopBody(depth)
		one := bu.Const(1)
		bu.BinInto(ir.OpAdd, iv, iv, one)
		tr := bu.Const(trip)
		c := bu.Bin(ir.OpCmpLT, iv, tr)
		bu.Br(c, header, exit, 0, 0)
		bu.SetCurrent(exit)
	}
	g.inLoop--
	// The induction variable's web often spans the body's calls,
	// feeding it into acc keeps it live to the loop exit.
	bu.BinInto(ir.OpAdd, g.acc, g.acc, iv)
}

// loopBody emits one or two nested segments.
func (g *gen) loopBody(depth int) {
	n := 1 + g.rng.intn(2)
	for k := 0; k < n; k++ {
		if depth+1 < g.cfg.MaxDepth && g.rng.float() < g.cfg.NestedProb {
			g.genLoop(depth + 1)
		} else {
			g.genSegment(depth + 1)
		}
	}
}

// genDiamonds emits a chain of 1-3 conditional diamonds. With
// SkipProb, an arm jumps past its own join straight into the next
// diamond's join — adjacent diamonds then share boundary blocks in
// the way that stresses cycle-equivalence classes.
func (g *gen) genDiamonds(depth int) {
	bu := g.bu
	n := 1 + g.rng.intn(3)
	// Pre-create the join blocks so an arm can target the next join.
	joins := make([]*ir.Block, n)
	for i := range joins {
		joins[i] = g.block("dj")
	}
	for i := 0; i < n; i++ {
		c := g.condition(128)
		left := g.block("dl")
		right := g.block("dr")
		bu.Br(c, left, right, 0, 0)

		bu.SetCurrent(left)
		g.armBody(depth)
		if i+1 < n && g.rng.float() < g.cfg.SkipProb {
			bu.Jmp(joins[i+1], 0)
		} else {
			bu.Jmp(joins[i], 0)
		}

		bu.SetCurrent(right)
		g.armBody(depth)
		bu.Jmp(joins[i], 0)

		bu.SetCurrent(joins[i])
	}
}

// armBody fills a diamond arm: straight code, or a nested structure
// when depth allows.
func (g *gen) armBody(depth int) {
	if depth < g.cfg.MaxDepth && g.rng.float() < 0.25 {
		g.genSegment(depth + 1)
		return
	}
	g.genStraight()
}

// genEarlyRet emits a cold conditional procedure return, so the
// procedure has several exit blocks returning different expressions.
func (g *gen) genEarlyRet() {
	bu := g.bu
	c := g.condition(24)
	retB := g.block("ret")
	contB := g.block("cnt")
	bu.Br(c, retB, contB, 0, 0)
	bu.SetCurrent(retB)
	salt := bu.Const(int64(g.rng.intn(89) + 1))
	r := bu.Bin(ir.OpXor, g.acc, salt)
	bu.Ret(r)
	bu.SetCurrent(contB)
}

// genCall emits a call segment: possibly cold-guarded, possibly void,
// possibly with one or two values live across the call. Callees come
// from the leaf library, except one deep call per procedure that may
// target any lower-indexed procedure.
func (g *gen) genCall() {
	bu := g.bu
	lib := g.index
	if lib > libProcs {
		lib = libProcs
	}
	calleeIdx := g.rng.intn(lib)
	if !g.deepUsed && g.inLoop == 0 && g.index > libProcs && g.rng.float() < g.cfg.DeepCallProb {
		calleeIdx = libProcs + g.rng.intn(g.index-libProcs)
		g.deepUsed = true
	}
	callee := "p" + itoa(calleeIdx)

	cold := g.rng.float() < g.cfg.ColdCallProb
	var joinB *ir.Block
	if cold {
		c := g.condition(26)
		thenB := g.block("cc")
		joinB = g.block("cj")
		bu.Br(c, thenB, joinB, 0, 0)
		bu.SetCurrent(thenB)
	}

	var live, live2 ir.Reg = ir.NoReg, ir.NoReg
	if g.rng.float() < g.cfg.LiveAcrossProb {
		three := bu.Const(3)
		live = bu.Bin(ir.OpMul, g.acc, three)
		if g.rng.float() < g.cfg.ExtraLiveProb {
			five := bu.Const(5)
			live2 = bu.Bin(ir.OpMul, g.acc, five)
		}
	}

	args := []ir.Reg{g.acc}
	if g.arity[calleeIdx] == 2 {
		args = append(args, bu.Const(int64(g.rng.intn(1000))))
	}
	if g.rng.float() < g.cfg.VoidCallProb {
		bu.Call(ir.NoReg, callee, args...)
	} else {
		r := bu.F.NewVirt()
		bu.Call(r, callee, args...)
		salt := bu.Const(int64(g.rng.intn(89) + 1))
		bu.BinInto(ir.OpAdd, g.acc, r, salt)
	}
	if live2 != ir.NoReg {
		bu.BinInto(ir.OpAdd, g.acc, g.acc, live2)
	}
	if live != ir.NoReg {
		bu.BinInto(ir.OpXor, g.acc, g.acc, live)
	}

	if cold {
		bu.Jmp(joinB, 0)
		bu.SetCurrent(joinB)
	}
}

// genMain emits the driver: DriverIters iterations invoking every
// procedure with arguments mixing the iteration count and main's own
// parameter, so different program arguments exercise different paths.
func (g *gen) genMain() {
	iters := g.cfg.DriverIters
	if iters < 1 {
		iters = 1
	}
	bu := ir.NewBuilder("main", 1)
	bu.Block("entry")
	total := bu.F.NewVirt()
	i := bu.F.NewVirt()
	bu.Mov(total, bu.F.Params[0])
	bu.ConstInto(i, 0)
	loop := bu.F.NewBlock("loop")
	exit := bu.F.NewBlock("exit")
	bu.Jmp(loop, 0)
	bu.SetCurrent(loop)
	for pi := 0; pi < g.cfg.Procs; pi++ {
		step := bu.Const(int64(pi)*37 + 11)
		arg := bu.Bin(ir.OpMul, i, step)
		mix := bu.Bin(ir.OpAdd, arg, total)
		args := []ir.Reg{mix}
		if g.arity[pi] == 2 {
			args = append(args, i)
		}
		r := bu.F.NewVirt()
		bu.Call(r, "p"+itoa(pi), args...)
		bu.BinInto(ir.OpAdd, total, total, r)
		mask := bu.Const(0xffffff)
		bu.BinInto(ir.OpAnd, total, total, mask)
	}
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, i, i, one)
	n := bu.Const(iters)
	c := bu.Bin(ir.OpCmpLT, i, n)
	bu.Br(c, loop, exit, 0, 0)
	bu.SetCurrent(exit)
	bu.Ret(total)
	g.prog.Add(bu.Finish())
}
