package irgen

import (
	"repro/internal/ir"
)

// Reduce shrinks prog while keep(candidate) stays true, returning the
// smallest program found. It greedily tries, in order of expected
// payoff: dropping whole uncalled functions, collapsing conditional
// branches to one side (pruning whatever becomes unreachable), and
// deleting single instructions (calls are replaced by a zero
// constant so their result stays defined). Every candidate passes
// ir.VerifyProgram before keep sees it, so keep can assume a valid
// program; keep is responsible for rejecting candidates that fail
// differently from the original (e.g. by comparing the violated
// invariant). maxRounds bounds the fixpoint iteration.
//
// The input program is not mutated.
func Reduce(prog *ir.Program, keep func(*ir.Program) bool, maxRounds int) *ir.Program {
	cur := prog.Clone()
	for round := 0; round < maxRounds; round++ {
		shrunk := false
		names := append([]string(nil), cur.Order...)

		// Drop uncalled functions (main stays).
		for _, name := range names {
			if name == cur.Main || cur.Func(name) == nil || called(cur, name) {
				continue
			}
			cand := withoutFunc(cur, name)
			if cand != nil && keep(cand) {
				cur = cand
				shrunk = true
			}
		}

		// Collapse branches: br -> jmp to one side. Accepting a
		// candidate replaces cur, so the function is re-fetched by name
		// and indices never refer to a stale program.
		for _, name := range names {
			for bi := 0; ; bi++ {
				f := cur.Func(name)
				if f == nil || bi >= len(f.Blocks) {
					break
				}
				t := f.Blocks[bi].Terminator()
				if t == nil || t.Op != ir.OpBr {
					continue
				}
				for side := 0; side < 2; side++ {
					keepThen := side == 0
					cand := mutate(cur, name, func(mf *ir.Func) bool {
						return collapseBranch(mf, bi, keepThen)
					})
					if cand != nil && keep(cand) {
						cur = cand
						shrunk = true
						break
					}
				}
			}
		}

		// Merge a block into its sole-predecessor jmp source, collapsing
		// the straight-line chains that branch collapses leave behind.
		for _, name := range names {
			for bi := 0; ; bi++ {
				f := cur.Func(name)
				if f == nil || bi >= len(f.Blocks) {
					break
				}
				cand := mutate(cur, name, func(mf *ir.Func) bool {
					return mergeIntoPred(mf, bi)
				})
				if cand != nil && keep(cand) {
					cur = cand
					shrunk = true
					bi-- // the layout shifted; revisit this slot
				}
			}
		}

		// Delete single instructions.
		for _, name := range names {
			for bi := 0; ; bi++ {
				f := cur.Func(name)
				if f == nil || bi >= len(f.Blocks) {
					break
				}
				for ii := 0; ii < len(cur.Func(name).Blocks[bi].Instrs); {
					idx := ii
					cand := mutate(cur, name, func(mf *ir.Func) bool {
						return dropInstr(mf, bi, idx)
					})
					if cand != nil && keep(cand) {
						cur = cand
						shrunk = true
						// The deleted slot now holds the next
						// instruction (or a replacement): revisit it.
						continue
					}
					ii++
				}
			}
		}

		if !shrunk {
			break
		}
	}
	return cur
}

// called reports whether any function in prog calls name.
func called(prog *ir.Program, name string) bool {
	for _, f := range prog.FuncsInOrder() {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee == name {
					return true
				}
			}
		}
	}
	return false
}

// withoutFunc returns a clone of prog lacking the named function, or
// nil if the result is invalid.
func withoutFunc(prog *ir.Program, name string) *ir.Program {
	np := ir.NewProgram()
	for _, f := range prog.FuncsInOrder() {
		if f.Name != name {
			np.Add(f.Clone())
		}
	}
	np.Main = prog.Main
	if ir.VerifyProgram(np) != nil {
		return nil
	}
	return np
}

// mutate clones prog, applies fn to the named function's clone, prunes
// unreachable blocks, and returns the candidate — or nil when fn made
// no change or the result is invalid.
func mutate(prog *ir.Program, fname string, fn func(*ir.Func) bool) *ir.Program {
	cand := prog.Clone()
	mf := cand.Func(fname)
	if mf == nil || !fn(mf) {
		return nil
	}
	pruneUnreachable(mf)
	if ir.VerifyProgram(cand) != nil {
		return nil
	}
	return cand
}

// collapseBranch rewrites block bi's br terminator into a jmp to its
// then (or else) target, removing the other edge.
func collapseBranch(f *ir.Func, bi int, keepThen bool) bool {
	if bi >= len(f.Blocks) {
		return false
	}
	b := f.Blocks[bi]
	t := b.Terminator()
	if t == nil || t.Op != ir.OpBr {
		return false
	}
	kept, dropped := t.Then, t.Else
	if !keepThen {
		kept, dropped = t.Else, t.Then
	}
	if e := b.SuccEdge(dropped); e != nil {
		f.RemoveEdge(e)
	}
	t.Op = ir.OpJmp
	t.Src1 = ir.NoReg
	t.Then = kept
	t.Else = nil
	return true
}

// dropInstr removes instruction ii of block bi; a call with a result
// becomes a zero constant so downstream uses stay defined.
func dropInstr(f *ir.Func, bi, ii int) bool {
	if bi >= len(f.Blocks) || ii >= len(f.Blocks[bi].Instrs) {
		return false
	}
	b := f.Blocks[bi]
	in := b.Instrs[ii]
	if in.Op.IsTerminator() {
		return false
	}
	if in.Op == ir.OpCall && in.Dst.IsValid() {
		b.Instrs[ii] = &ir.Instr{Op: ir.OpConst, Dst: in.Dst, Src1: ir.NoReg, Src2: ir.NoReg}
		return true
	}
	b.Instrs = append(b.Instrs[:ii], b.Instrs[ii+1:]...)
	return len(b.Instrs) > 0
}

// mergeIntoPred folds block bi into its single predecessor when that
// predecessor ends in an unconditional jump to it: the jmp is replaced
// by the block's instructions and the block leaves the layout.
func mergeIntoPred(f *ir.Func, bi int) bool {
	if bi >= len(f.Blocks) {
		return false
	}
	c := f.Blocks[bi]
	if c == f.Entry || len(c.Preds) != 1 {
		return false
	}
	b := c.Preds[0].From
	if b == c {
		return false
	}
	t := b.Terminator()
	if t == nil || t.Op != ir.OpJmp || t.Then != c {
		return false
	}
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	b.Instrs = append(b.Instrs, c.Instrs...)
	f.RemoveEdge(c.Preds[0])
	for len(c.Succs) > 0 {
		e := c.Succs[0]
		f.RemoveEdge(e)
		f.AddEdge(b, e.To, e.Kind, e.Weight)
	}
	for i, blk := range f.Blocks {
		if blk == c {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			break
		}
	}
	f.RenumberBlocks()
	f.ClassifyEdges()
	return true
}

// pruneUnreachable removes blocks unreachable from the entry, together
// with their edges, then renumbers and reclassifies.
func pruneUnreachable(f *ir.Func) {
	reached := make(map[*ir.Block]bool, len(f.Blocks))
	stack := []*ir.Block{f.Entry}
	reached[f.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if !reached[e.To] {
				reached[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	var live []*ir.Block
	for _, b := range f.Blocks {
		if reached[b] {
			live = append(live, b)
			continue
		}
		for len(b.Succs) > 0 {
			f.RemoveEdge(b.Succs[0])
		}
		for len(b.Preds) > 0 {
			f.RemoveEdge(b.Preds[0])
		}
	}
	f.Blocks = live
	f.RenumberBlocks()
	f.ClassifyEdges()
}
