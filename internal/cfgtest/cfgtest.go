// Package cfgtest builds ir.Func control flow graphs from compact
// edge-list descriptions. It exists for tests and examples: the spill
// placement analyses only consume CFG shape and edge weights, so test
// graphs don't need meaningful straight-line code.
package cfgtest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Edge describes one weighted control flow edge by block name.
type Edge struct {
	From, To string
	Weight   int64
}

// E is shorthand for constructing an Edge.
func E(from, to string, w int64) Edge { return Edge{From: from, To: to, Weight: w} }

// Build constructs a function whose blocks appear in layout order
// exactly as listed in names, with the given edges. Each block gets a
// placeholder body and a terminator derived from its out-degree:
// 0 -> ret, 1 -> jmp, 2 -> br (first edge listed is the taken target).
// Blocks with more than two successors are rejected. Edge kinds are
// classified from the layout per the paper's jump-edge definition.
func Build(name string, names []string, edges []Edge) (*ir.Func, error) {
	f := ir.NewFunc(name)
	blocks := make(map[string]*ir.Block, len(names))
	for _, n := range names {
		if _, dup := blocks[n]; dup {
			return nil, fmt.Errorf("cfgtest: duplicate block %q", n)
		}
		blocks[n] = f.NewBlock(n)
	}
	succs := make(map[string][]Edge)
	for _, e := range edges {
		if blocks[e.From] == nil || blocks[e.To] == nil {
			return nil, fmt.Errorf("cfgtest: edge %s->%s references unknown block", e.From, e.To)
		}
		succs[e.From] = append(succs[e.From], e)
	}
	cond := f.NewVirt()
	for _, n := range names {
		b := blocks[n]
		out := succs[n]
		// A trivial body so liveness and the VM have something to chew.
		b.Append(&ir.Instr{Op: ir.OpConst, Dst: cond, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 1})
		switch len(out) {
		case 0:
			b.Append(&ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
		case 1:
			b.Append(&ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Then: blocks[out[0].To]})
			f.AddEdge(b, blocks[out[0].To], ir.Jump, out[0].Weight)
		case 2:
			b.Append(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Src1: cond, Src2: ir.NoReg,
				Then: blocks[out[0].To], Else: blocks[out[1].To]})
			f.AddEdge(b, blocks[out[0].To], ir.Jump, out[0].Weight)
			f.AddEdge(b, blocks[out[1].To], ir.Jump, out[1].Weight)
		default:
			return nil, fmt.Errorf("cfgtest: block %q has %d successors, max 2", n, len(out))
		}
	}
	f.RenumberBlocks()
	f.ClassifyEdges()
	f.EntryCount = entryCount(f)
	if err := ir.Verify(f); err != nil {
		return nil, err
	}
	return f, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func MustBuild(name string, names []string, edges []Edge) *ir.Func {
	f, err := Build(name, names, edges)
	if err != nil {
		panic(err)
	}
	return f
}

func entryCount(f *ir.Func) int64 {
	var n int64
	for _, e := range f.Entry.Succs {
		n += e.Weight
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Names returns a sorted list of block names, handy for assertions.
func Names(blocks []*ir.Block) string {
	out := make([]string, len(blocks))
	for i, b := range blocks {
		out[i] = b.Name
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}
