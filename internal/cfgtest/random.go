package cfgtest

import (
	"fmt"

	"repro/internal/ir"
)

// RandomStructured generates a random structured control flow graph
// with flow-consistent edge weights: nested sequences, conditionals
// and bottom-tested loops, the shapes the spill placement analyses
// meet in practice. The same seed always yields the same function.
func RandomStructured(seed uint64, maxDepth int) *ir.Func {
	g := &rgen{
		f:    ir.NewFunc(fmt.Sprintf("rand%x", seed)),
		rng:  seed | 1,
		maxD: maxDepth,
	}
	entry := g.f.NewBlock("entry")
	g.cond = g.f.NewVirt()
	entry.Append(&ir.Instr{Op: ir.OpConst, Dst: g.cond, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 1})
	g.f.EntryCount = 1000
	last := g.seq(entry, 1000, 0)
	last.Append(&ir.Instr{Op: ir.OpRet, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg})
	g.f.RenumberBlocks()
	g.f.ClassifyEdges()
	return g.f
}

type rgen struct {
	f    *ir.Func
	rng  uint64
	cond ir.Reg
	n    int
	maxD int
}

func (g *rgen) next() uint64 {
	x := g.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	g.rng = x
	return x
}

func (g *rgen) intn(n int) int { return int(g.next() % uint64(n)) }

func (g *rgen) block() *ir.Block {
	g.n++
	return g.f.NewBlock(fmt.Sprintf("b%d", g.n))
}

// seq emits 1-3 constructs starting in cur with inflow weight w and
// returns the block where control continues.
func (g *rgen) seq(cur *ir.Block, w int64, depth int) *ir.Block {
	n := 1 + g.intn(3)
	for i := 0; i < n; i++ {
		switch k := g.intn(10); {
		case k < 4 || depth >= g.maxD:
			// Straight-line filler.
			cur.Append(&ir.Instr{Op: ir.OpConst, Dst: g.cond, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 1})
		case k < 8:
			cur = g.branch(cur, w, depth)
		default:
			cur = g.loop(cur, w, depth)
		}
	}
	return cur
}

// branch emits if/else (or if-only) with a random weight split.
func (g *rgen) branch(cur *ir.Block, w int64, depth int) *ir.Block {
	wThen := w * int64(1+g.intn(9)) / 10
	wElse := w - wThen
	thenB := g.block()
	join := g.block()
	if g.intn(2) == 0 {
		// if-then: else edge goes straight to the join.
		cur.Append(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Src1: g.cond, Src2: ir.NoReg,
			Then: thenB, Else: join})
		g.f.AddEdge(cur, thenB, ir.Jump, wThen)
		g.f.AddEdge(cur, join, ir.Jump, wElse)
		end := g.seq(thenB, wThen, depth+1)
		end.Append(&ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Then: join})
		g.f.AddEdge(end, join, ir.Jump, wThen)
	} else {
		elseB := g.block()
		cur.Append(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Src1: g.cond, Src2: ir.NoReg,
			Then: thenB, Else: elseB})
		g.f.AddEdge(cur, thenB, ir.Jump, wThen)
		g.f.AddEdge(cur, elseB, ir.Jump, wElse)
		tEnd := g.seq(thenB, wThen, depth+1)
		tEnd.Append(&ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Then: join})
		g.f.AddEdge(tEnd, join, ir.Jump, wThen)
		eEnd := g.seq(elseB, wElse, depth+1)
		eEnd.Append(&ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Then: join})
		g.f.AddEdge(eEnd, join, ir.Jump, wElse)
	}
	return join
}

// loop emits a bottom-tested loop executing a random multiple of the
// inflow weight.
func (g *rgen) loop(cur *ir.Block, w int64, depth int) *ir.Block {
	trips := int64(2 + g.intn(6))
	header := g.block()
	exit := g.block()
	cur.Append(&ir.Instr{Op: ir.OpJmp, Dst: ir.NoReg, Src1: ir.NoReg, Src2: ir.NoReg, Then: header})
	g.f.AddEdge(cur, header, ir.Jump, w)
	bodyEnd := g.seq(header, w*trips, depth+1)
	bodyEnd.Append(&ir.Instr{Op: ir.OpBr, Dst: ir.NoReg, Src1: g.cond, Src2: ir.NoReg,
		Then: header, Else: exit})
	g.f.AddEdge(bodyEnd, header, ir.Jump, w*(trips-1))
	g.f.AddEdge(bodyEnd, exit, ir.Jump, w)
	return exit
}
