// Package workload provides the control flow graphs used by the
// paper's worked examples (Figures 1-4) and synthetic SPEC CPU2000
// integer benchmark stand-ins for the evaluation (Figure 5, Tables
// 1-2).
package workload

import (
	"repro/internal/cfgtest"
	"repro/internal/ir"
)

// Figure2 is the paper's motivating example (Figures 2, 3 and 4),
// reconstructed from the numeric constraints in the text. The figure
// itself is not machine-readable, so the CFG below is built to satisfy
// every number the paper states:
//
//   - entry/exit placement cost: 200 (entry 100 + exit 100)
//   - Chow's original shrink-wrapping placement cost: 250
//     (saves before C, H, K, N; restores after F, H, K, N)
//   - initial (modified shrink-wrap) save/restore sets:
//     Set 1 = 80, Set 2 = 50, Set 3 = 50, Set 4 = 50
//   - maximal SESE region boundary costs: Region 1 = 100 (around
//     Set 1), Region 2 = 140 (contains Sets 1-2), Region 3 = 60
//     (contains Sets 3-4), Region 4 = 200 (whole procedure)
//   - Set 1's save is at the head of block D (weight 40), one restore
//     at the tail of E (10), and one restore must sit on the D->F
//     jump edge (30), so its jump-edge-model cost is 110
//   - exec-count model result: Sets 1, 2 and a new Set 5 at Region 3's
//     boundaries, total 190
//   - jump-edge model result: everything collapses to procedure
//     entry/exit, total 200
//
// The paper's figure labels the second allocated block G; in this
// reconstruction the corresponding shaded block is H (G is the branch
// block that feeds it), and similarly for interior filler blocks. The
// shaded (callee-saved allocated) blocks are D, E, H, K and N.
type Figure2 struct {
	Func *ir.Func
	// Allocated lists the blocks in which a callee-saved register is
	// allocated (the shaded blocks), keyed by block name.
	Allocated map[string]bool
	// Reg is the callee-saved register allocated in the shaded blocks.
	Reg ir.Reg
}

// NewFigure2 builds the example.
func NewFigure2() *Figure2 {
	e := cfgtest.E
	f := cfgtest.MustBuild("figure2",
		[]string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P"},
		[]cfgtest.Edge{
			// Region 2 (A->B .. I->P) and inside it Region 1 (B->C .. F->G).
			e("A", "B", 70), e("A", "J", 30),
			e("B", "C", 50), e("B", "H", 20),
			e("C", "D", 40), e("C", "F", 10),
			e("D", "E", 10), e("D", "F", 30),
			e("E", "F", 10),
			e("F", "G", 50),
			e("G", "H", 5), e("G", "I", 45),
			e("H", "I", 25),
			e("I", "P", 70),
			// Region 3 (A->J .. O->P).
			e("J", "K", 20), e("J", "L", 10),
			e("L", "K", 5), e("L", "M", 5),
			e("K", "M", 25),
			e("M", "N", 25), e("M", "O", 5),
			e("N", "O", 25),
			e("O", "P", 30),
		})
	f.EntryCount = 100
	reg := ir.Phys(12) // a callee-saved register on the modeled machine
	f.UsedCalleeSaved = []ir.Reg{reg}
	// The allocated (shaded) regions: a two-block web spanning D-E,
	// and single-block webs in H, K and N.
	AllocateGroup(f, reg, "D", "E")
	AllocateGroup(f, reg, "H")
	AllocateGroup(f, reg, "K")
	AllocateGroup(f, reg, "N")
	return &Figure2{
		Func:      f,
		Allocated: map[string]bool{"D": true, "E": true, "H": true, "K": true, "N": true},
		Reg:       reg,
	}
}

// Figure1 is Chow's example from the paper's Figure 1: a procedure
// where two conditionally executed basic blocks have a callee-saved
// register allocated. Shrink-wrapping beats entry/exit placement only
// when the average execution count of the two shaded blocks is below
// the procedure's entry count; the hot/cold parameter selects which.
type Figure1 struct {
	Func      *ir.Func
	Allocated map[string]bool
	Reg       ir.Reg
}

// NewFigure1 builds the example. w1 and w2 are the execution counts of
// the two shaded blocks B and E; the procedure entry count is 100.
func NewFigure1(w1, w2 int64) *Figure1 {
	e := cfgtest.E
	f := cfgtest.MustBuild("figure1",
		[]string{"A", "B", "C", "D", "E", "F", "G"},
		[]cfgtest.Edge{
			e("A", "B", w1), e("A", "C", 100-w1),
			e("B", "D", w1), e("C", "D", 100-w1),
			e("D", "E", w2), e("D", "F", 100-w2),
			e("E", "G", w2), e("F", "G", 100-w2),
		})
	f.EntryCount = 100
	reg := ir.Phys(12)
	f.UsedCalleeSaved = []ir.Reg{reg}
	AllocateGroup(f, reg, "B")
	AllocateGroup(f, reg, "E")
	return &Figure1{
		Func:      f,
		Allocated: map[string]bool{"B": true, "E": true},
		Reg:       reg,
	}
}
