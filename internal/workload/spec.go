package workload

import (
	"repro/internal/ir"
)

// BenchParams parameterizes a synthetic stand-in for one SPEC CPU2000
// integer benchmark. The paper's dynamic spill overhead is a function
// of CFG structure, profile skew, and where values live across calls;
// each parameter steers one of those traits:
//
//   - Procs/Segments: static program size (gcc is by far the largest).
//   - LoopProb/NestedLoopProb/LoopTrip: loop-dominated shapes (gzip,
//     bzip2, twolf) where Chow's loop masking hoists saves to loop
//     boundaries executed as often as — or more often than — entry.
//   - CallProb/ColdCallThresh: calls guarded by cold branches inside
//     hot code (gcc, crafty's goto-heavy procedures) where placement
//     on jump edges wins big.
//   - LiveAcrossProb: how often a value spans a call, forcing the
//     allocator to reach for callee-saved registers at all (mcf's tiny
//     procedures rarely do).
type BenchParams struct {
	Name string
	Seed uint64

	Procs    int // callable procedures besides main
	Segments int // top-level segments per procedure

	LoopProb       float64 // segment is a loop
	NestedLoopProb float64 // loop body contains an inner loop
	LoopTrip       int64   // iterations per loop level

	CallProb       float64 // segment performs a call
	ColdCallProb   float64 // the call is guarded by a cold branch
	ColdCallThresh int64   // cold condition: (x & 255) < thresh
	WarmThresh     int64   // warm condition threshold (of 256)

	LiveAcrossProb float64 // extra value defined before, used after call
	LoopGuardProb  float64 // loop segment wrapped in a warm conditional
	// WebBranchProb makes a live-across value's last use conditional:
	// the web then spans a branch, its restore lands on a jump edge,
	// and Chow's original technique must propagate artificial data
	// flow (growing the region toward procedure scope) while the
	// hierarchical algorithm can pay for the jump block or hoist to
	// the cheapest region boundary. This is the paper's D-E-F pattern.
	WebBranchProb float64
	// OuterLoopProb wraps a procedure's whole body in one outer loop,
	// the dominant shape of loop-driven programs: its induction
	// variable (and the threaded accumulator) live across every call
	// inside, creating one procedure-spanning callee-saved web that
	// merges interior webs under Chow's loop masking — pushing
	// shrink-wrapping's placement to ~entry/exit cost for that
	// register, while other registers' interior webs remain for the
	// hierarchical algorithm to optimize.
	OuterLoopProb float64
	// InLoopCallFactor scales CallProb inside loop bodies. Calls in
	// loops put the loop's induction variable and the accumulator in
	// callee-saved registers with loop-spanning (hot) webs; when such
	// a web shares a register with cheap cold webs, the per-register
	// total exceeds entry/exit cost and the hierarchical algorithm
	// rightly collapses to entry/exit. Branch-heavy programs like gcc
	// and crafty keep their inner loops call-free, leaving the cold
	// webs on registers of their own — the paper's big wins.
	InLoopCallFactor float64
	// ExtraLiveProb adds a second value live across the same call
	// site. The two values interfere, spreading a procedure's cold
	// webs over two callee-saved registers; entry/exit placement pays
	// for both registers on every invocation while the hierarchical
	// algorithm pays only the cold counts (crafty's deep win).
	ExtraLiveProb float64
	StraightLen   int // arithmetic chain length per segment

	DriverIters int64 // main-loop iterations during profiling
}

// SPECInt2000 returns the eleven benchmark stand-ins in the paper's
// order (the C++ benchmark eon was excluded there too).
func SPECInt2000() []BenchParams {
	return []BenchParams{
		// gzip: loop-heavy compressor; calls inside nested loops make
		// shrink-wrapping slightly worse than entry/exit.
		{Name: "gzip", Seed: 214554267157349, Procs: 8, Segments: 4, LoopProb: 0.376, NestedLoopProb: 0.5,
			LoopTrip: 6, CallProb: 0.459, ColdCallProb: 0.356, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.614, LoopGuardProb: 0.431, WebBranchProb: 0.379, OuterLoopProb: 0.753, InLoopCallFactor: 0.5, StraightLen: 4, DriverIters: 40},
		// vpr: placement/routing; moderate structure, little to gain.
		{Name: "vpr", Seed: 47241732837425, Procs: 10, Segments: 3, LoopProb: 0.4, NestedLoopProb: 0.182,
			LoopTrip: 5, CallProb: 0.45, ColdCallProb: 0.15, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.516, LoopGuardProb: 0.15, WebBranchProb: 0.876, OuterLoopProb: 0.65, InLoopCallFactor: 0.224, StraightLen: 5, DriverIters: 40},
		// gcc: the largest program; many unconditional jumps and cold
		// paths — the biggest hierarchical win in the paper.
		{Name: "gcc", Seed: 83294926439557, Procs: 24, Segments: 8, LoopProb: 0.365, NestedLoopProb: 0.215,
			LoopTrip: 5, CallProb: 0.574, ColdCallProb: 0.892, ColdCallThresh: 18, WarmThresh: 128,
			LiveAcrossProb: 0.859, LoopGuardProb: 0.459, WebBranchProb: 0.0, OuterLoopProb: 0.85, InLoopCallFactor: 0.0, ExtraLiveProb: 0.5, StraightLen: 4, DriverIters: 30},
		// mcf: tiny procedures, few callee-saved registers needed.
		{Name: "mcf", Seed: 15604, Procs: 6, Segments: 2, LoopProb: 0.3, NestedLoopProb: 0.0,
			LoopTrip: 4, CallProb: 0.15, ColdCallProb: 0.1, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.1, LoopGuardProb: 0.1, WebBranchProb: 0.0, OuterLoopProb: 0.2, InLoopCallFactor: 0.3, StraightLen: 3, DriverIters: 40},
		// crafty: chess search full of gotos; cold calls inside hot
		// search loops — the paper's other big win.
		{Name: "crafty", Seed: 0x1008, Procs: 12, Segments: 8, LoopProb: 0.39, NestedLoopProb: 0.495,
			LoopTrip: 6, CallProb: 0.61, ColdCallProb: 0.95, ColdCallThresh: 6, WarmThresh: 128,
			LiveAcrossProb: 0.871, LoopGuardProb: 0.348, WebBranchProb: 0.131, OuterLoopProb: 0.92, InLoopCallFactor: 0.073, ExtraLiveProb: 0.9, StraightLen: 4, DriverIters: 30},
		// parser: word parsing; mixed shape.
		{Name: "parser", Seed: 268060587757101, Procs: 12, Segments: 4, LoopProb: 0.408, NestedLoopProb: 0.25,
			LoopTrip: 5, CallProb: 0.397, ColdCallProb: 0.428, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.628, LoopGuardProb: 0.278, WebBranchProb: 0.522, OuterLoopProb: 0.739, InLoopCallFactor: 0.165, StraightLen: 4, DriverIters: 35},
		// perlbmk: interpreter dispatch; moderate win.
		{Name: "perlbmk", Seed: 13960629700995, Procs: 14, Segments: 4, LoopProb: 0.4, NestedLoopProb: 0.252,
			LoopTrip: 5, CallProb: 0.577, ColdCallProb: 0.537, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.579, LoopGuardProb: 0.35, WebBranchProb: 0.5, OuterLoopProb: 0.577, InLoopCallFactor: 0.312, StraightLen: 4, DriverIters: 35},
		// gap: group theory; computation with scattered calls.
		{Name: "gap", Seed: 250842073366055, Procs: 12, Segments: 4, LoopProb: 0.643, NestedLoopProb: 0.394,
			LoopTrip: 5, CallProb: 0.617, ColdCallProb: 0.567, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.318, LoopGuardProb: 0.313, WebBranchProb: 0.56, OuterLoopProb: 0.567, InLoopCallFactor: 0.133, StraightLen: 4, DriverIters: 35},
		// vortex: OO database; call-dense but balanced paths.
		{Name: "vortex", Seed: 49533770589047, Procs: 14, Segments: 3, LoopProb: 0.35, NestedLoopProb: 0.246,
			LoopTrip: 5, CallProb: 0.729, ColdCallProb: 0.02, ColdCallThresh: 26, WarmThresh: 235,
			LiveAcrossProb: 0.589, LoopGuardProb: 0.071, WebBranchProb: 0.675, OuterLoopProb: 0.562, InLoopCallFactor: 0.353, StraightLen: 4, DriverIters: 35},
		// bzip2: like gzip, loop-dominated; shrink-wrap slightly loses.
		{Name: "bzip2", Seed: 161979224943855, Procs: 8, Segments: 4, LoopProb: 0.569, NestedLoopProb: 0.55,
			LoopTrip: 6, CallProb: 0.5, ColdCallProb: 0.15, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.65, LoopGuardProb: 0.399, WebBranchProb: 0.297, OuterLoopProb: 0.476, InLoopCallFactor: 0.525, StraightLen: 4, DriverIters: 40},
		// twolf: place-and-route with hot nested loops; shrink-wrap's
		// worst case in the paper.
		{Name: "twolf", Seed: 109965393325915, Procs: 10, Segments: 4, LoopProb: 0.7, NestedLoopProb: 0.431,
			LoopTrip: 7, CallProb: 0.443, ColdCallProb: 0.469, ColdCallThresh: 26, WarmThresh: 128,
			LiveAcrossProb: 0.713, LoopGuardProb: 0.316, WebBranchProb: 0.466, OuterLoopProb: 0.612, InLoopCallFactor: 0.6, StraightLen: 4, DriverIters: 35},
	}
}

// rng is a deterministic xorshift64* generator.
type rng uint64

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 1
	}
	r := rng(seed)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds the synthetic benchmark program for the parameters.
// The result uses virtual registers and is ready for profiling and
// register allocation. Generation is deterministic in p.Seed and keeps
// all state (including the RNG) local to the call, so concurrent
// Generate calls are safe — the sharded harness relies on this.
func Generate(p BenchParams) *ir.Program {
	g := &generator{p: p, rng: newRng(p.Seed), prog: ir.NewProgram()}
	for i := 0; i < p.Procs; i++ {
		g.genProc(i)
	}
	g.genMain()
	g.prog.Main = "main"
	return g.prog
}

type generator struct {
	p    BenchParams
	rng  *rng
	prog *ir.Program

	bu    *ir.Builder
	acc   ir.Reg // running value threaded through the procedure
	index int    // index of the procedure being generated
	next  int    // fresh block name counter
}

func (g *generator) block(prefix string) *ir.Block {
	g.next++
	return g.bu.F.NewBlock(prefix + itoa(g.next))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// libProcs is the number of low-index "library" procedures. They are
// kept structurally light (shallow loops, few calls) because every
// other procedure calls into them, often from inside loops; heavy
// library routines would compound into exponential dynamic cost.
const libProcs = 5

// genProc emits procedure i, which may call procedures with smaller
// indices.
func (g *generator) genProc(i int) {
	g.index = i
	g.bu = ir.NewBuilder("p"+itoa(i), 1)
	g.bu.Block("entry")
	g.acc = g.bu.F.NewVirt()
	g.bu.Mov(g.acc, g.bu.F.Params[0])

	segments := g.p.Segments
	if i < libProcs && segments > 2 {
		segments = 2
	}

	bu := g.bu
	outer := !g.isLib() && g.rng.float() < g.p.OuterLoopProb
	var header, exitB *ir.Block
	var iv ir.Reg
	if outer {
		iv = bu.F.NewVirt()
		bu.ConstInto(iv, 0)
		header = g.block("outer")
		exitB = g.block("oexit")
		bu.Jmp(header, 0)
		bu.SetCurrent(header)
	}

	for s := 0; s < segments; s++ {
		g.genSegment(0)
	}

	if outer {
		one := bu.Const(1)
		bu.BinInto(ir.OpAdd, iv, iv, one)
		trip := bu.Const(int64(3 + g.rng.intn(2)))
		c := bu.Bin(ir.OpCmpLT, iv, trip)
		bu.Br(c, header, exitB, 0, 0)
		bu.SetCurrent(exitB)
	}
	g.bu.Ret(g.acc)
	g.prog.Add(g.bu.Finish())
}

// isLib reports whether the procedure being generated is a library
// procedure, which gets lighter control flow.
func (g *generator) isLib() bool { return g.index < libProcs }

// genSegment emits one top-level segment into the current block chain.
func (g *generator) genSegment(depth int) {
	loopProb, callProb := g.p.LoopProb, g.p.CallProb
	if g.isLib() {
		// Library procedures are leaf utilities: no calls (their entry
		// counts are orders of magnitude above other procedures, so a
		// callee-saved web here would dominate the whole benchmark's
		// overhead), and shallower loops.
		loopProb *= 0.5
		callProb = 0
	}
	switch {
	case depth < 2 && g.rng.float() < loopProb:
		if !g.isLib() && g.rng.float() < g.p.LoopGuardProb {
			g.genGuarded(func() { g.genLoop(depth) })
		} else {
			g.genLoop(depth)
		}
	case g.index > 0 && g.rng.float() < callProb:
		g.genCall()
	default:
		g.genStraight()
	}
}

// genGuarded wraps a segment in a warm conditional so the guarded code
// runs on only part of the procedure's invocations.
func (g *generator) genGuarded(body func()) {
	bu := g.bu
	c := g.condition(g.p.WarmThresh)
	thenB := g.block("grd")
	joinB := g.block("gjn")
	bu.Br(c, thenB, joinB, 0, 0)
	bu.SetCurrent(thenB)
	body()
	bu.Jmp(joinB, 0)
	bu.SetCurrent(joinB)
}

// genStraight emits an arithmetic chain mutating acc.
func (g *generator) genStraight() {
	bu := g.bu
	for k := 0; k < g.p.StraightLen; k++ {
		c := bu.Const(int64(g.rng.intn(97) + 1))
		switch g.rng.intn(4) {
		case 0:
			bu.BinInto(ir.OpAdd, g.acc, g.acc, c)
		case 1:
			bu.BinInto(ir.OpXor, g.acc, g.acc, c)
		case 2:
			bu.BinInto(ir.OpSub, g.acc, g.acc, c)
		default:
			mask := bu.Const(1023)
			t := bu.Bin(ir.OpAnd, g.acc, mask)
			bu.BinInto(ir.OpAdd, g.acc, t, c)
		}
	}
}

// condition emits a branch condition that is true with probability
// roughly thresh/256, decorrelated by a salt.
func (g *generator) condition(thresh int64) ir.Reg {
	bu := g.bu
	salt := bu.Const(int64(g.rng.intn(251)))
	x := bu.Bin(ir.OpAdd, g.acc, salt)
	mask := bu.Const(255)
	m := bu.Bin(ir.OpAnd, x, mask)
	th := bu.Const(thresh)
	return bu.Bin(ir.OpCmpLT, m, th)
}

// genCall emits a call segment: possibly cold-guarded, possibly with a
// value live across the call. Callees are drawn from the first few
// procedures — a small "library" of cheap leaf-ish routines — which
// keeps dynamic call fanout linear in program size (otherwise calls
// inside nested loops of procedures that themselves call would grow
// the instruction count exponentially).
func (g *generator) genCall() {
	bu := g.bu
	libSize := g.index
	if libSize > 5 {
		libSize = 5
	}
	callee := "p" + itoa(g.rng.intn(libSize))

	cold := g.rng.float() < g.p.ColdCallProb
	var thenB, joinB *ir.Block
	if cold {
		c := g.condition(g.p.ColdCallThresh)
		thenB = g.block("call")
		joinB = g.block("join")
		// Weights are placeholders; profiling overwrites them.
		bu.Br(c, thenB, joinB, 0, 0)
		bu.SetCurrent(thenB)
	}

	// The accumulator is passed as the argument and redefined from the
	// result, so it is NOT live across the call; only when the
	// live-across trait fires does a value span the call (forcing the
	// allocator toward a callee-saved register for it).
	var live, live2 ir.Reg = ir.NoReg, ir.NoReg
	if g.rng.float() < g.p.LiveAcrossProb {
		three := bu.Const(3)
		live = bu.Bin(ir.OpMul, g.acc, three)
		if g.p.ExtraLiveProb > 0 && g.rng.float() < g.p.ExtraLiveProb {
			five := bu.Const(5)
			live2 = bu.Bin(ir.OpMul, g.acc, five)
		}
	}
	r := bu.F.NewVirt()
	bu.Call(r, callee, g.acc)
	salt := bu.Const(int64(g.rng.intn(89) + 1))
	bu.BinInto(ir.OpAdd, g.acc, r, salt)
	if live2 != ir.NoReg {
		bu.BinInto(ir.OpAdd, g.acc, g.acc, live2)
	}
	if live != ir.NoReg {
		if g.rng.float() < g.p.WebBranchProb {
			// Conditional last use: the web spans the branch, so one
			// restore must sit on the jump edge bypassing the use.
			c := g.condition(g.p.WarmThresh)
			useB := g.block("use")
			joinB2 := g.block("ujn")
			bu.Br(c, useB, joinB2, 0, 0)
			bu.SetCurrent(useB)
			bu.BinInto(ir.OpXor, g.acc, g.acc, live)
			bu.Jmp(joinB2, 0)
			bu.SetCurrent(joinB2)
		} else {
			bu.BinInto(ir.OpXor, g.acc, g.acc, live)
		}
	}

	if cold {
		bu.Jmp(joinB, 0)
		bu.SetCurrent(joinB)
	}
}

// genLoop emits a bottom-tested counted loop whose body holds nested
// segments.
func (g *generator) genLoop(depth int) {
	bu := g.bu
	trip := g.p.LoopTrip + int64(g.rng.intn(3))

	i := bu.F.NewVirt()
	bu.ConstInto(i, 0)
	header := g.block("loop")
	exit := g.block("done")
	bu.Jmp(header, 0)
	bu.SetCurrent(header)

	// Body: one or two nested segments. Calls are rarer inside loops:
	// a "cold" block inside a nested loop still executes more often
	// than procedure entry, so in-loop webs cannot be placed better
	// than entry/exit anyway; the interesting cold webs live at
	// shallow depth, as in real code's error paths.
	nestedProb, callProb := g.p.NestedLoopProb, g.p.CallProb*g.p.InLoopCallFactor
	if g.isLib() {
		nestedProb = 0
		callProb = 0
	}
	n := 1 + g.rng.intn(2)
	for k := 0; k < n; k++ {
		if depth < 1 && g.rng.float() < nestedProb {
			g.genLoop(depth + 1)
		} else if g.index > 0 && g.rng.float() < callProb {
			g.genCall()
		} else {
			g.genStraight()
		}
	}

	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, i, i, one)
	tr := bu.Const(trip)
	c := bu.Bin(ir.OpCmpLT, i, tr)
	// Back edge to header; loop exits to the new current block.
	bu.Br(c, header, exit, 0, 0)
	bu.SetCurrent(exit)
}

// genMain emits the profiling driver: it invokes every procedure
// DriverIters times with varying arguments.
func (g *generator) genMain() {
	bu := ir.NewBuilder("main", 1)
	bu.Block("entry")
	total := bu.F.NewVirt()
	i := bu.F.NewVirt()
	bu.ConstInto(total, 0)
	bu.ConstInto(i, 0)
	loop := bu.F.NewBlock("loop")
	exit := bu.F.NewBlock("exit")
	bu.Jmp(loop, 0)
	bu.SetCurrent(loop)
	for pi := 0; pi < g.p.Procs; pi++ {
		step := bu.Const(int64(pi)*37 + 11)
		arg := bu.Bin(ir.OpMul, i, step)
		r := bu.F.NewVirt()
		bu.Call(r, "p"+itoa(pi), arg)
		bu.BinInto(ir.OpAdd, total, total, r)
	}
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, i, i, one)
	n := bu.Const(g.p.DriverIters)
	c := bu.Bin(ir.OpCmpLT, i, n)
	bu.Br(c, loop, exit, 0, 0)
	bu.SetCurrent(exit)
	bu.Ret(total)
	g.prog.Add(bu.Finish())
}
