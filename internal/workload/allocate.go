package workload

import (
	"fmt"

	"repro/internal/ir"
)

// AllocateGroup materializes a callee-saved register allocation over a
// group of blocks: the register is defined (clobbered) in the first
// named block and its value used in the last, making it live across
// the whole group exactly as an allocated variable would be. A group
// of one block defines and uses the register in place.
//
// The instructions are inserted before each block's terminator and
// carry no overhead flags: they model the program's own use of the
// register after allocation.
func AllocateGroup(f *ir.Func, reg ir.Reg, group ...string) {
	if len(group) == 0 {
		panic("workload.AllocateGroup: empty group")
	}
	first := f.BlockByName(group[0])
	last := f.BlockByName(group[len(group)-1])
	if first == nil || last == nil {
		panic(fmt.Sprintf("workload.AllocateGroup: unknown block in %v", group))
	}
	def := &ir.Instr{Op: ir.OpConst, Dst: reg, Src1: ir.NoReg, Src2: ir.NoReg, Imm: 7}
	first.InsertBeforeTerminator(def)
	sink := f.NewVirt()
	use := &ir.Instr{Op: ir.OpMov, Dst: sink, Src1: reg, Src2: ir.NoReg}
	last.InsertBeforeTerminator(use)
}
