package workload

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

func TestGenerateDeterministic(t *testing.T) {
	p := SPECInt2000()[0]
	a, b := Generate(p), Generate(p)
	if a.String() != b.String() {
		t.Error("generator is not deterministic")
	}
}

func TestGenerateAllVerify(t *testing.T) {
	for _, p := range SPECInt2000() {
		prog := Generate(p)
		if err := ir.VerifyProgram(prog); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if prog.Main != "main" {
			t.Errorf("%s: main = %q", p.Name, prog.Main)
		}
		if len(prog.Funcs) != p.Procs+1 {
			t.Errorf("%s: %d funcs, want %d", p.Name, len(prog.Funcs), p.Procs+1)
		}
	}
}

func TestGenerateExecutes(t *testing.T) {
	for _, p := range SPECInt2000() {
		prog := Generate(p)
		m := vm.New(prog, vm.Config{})
		if _, err := m.Run(0); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		// Every procedure is invoked DriverIters times by the driver.
		for i := 0; i < p.Procs; i++ {
			name := "p" + itoa(i)
			if got := m.Stats.Calls[name]; got < p.DriverIters {
				t.Errorf("%s: %s called %d times, want >= %d", p.Name, name, got, p.DriverIters)
			}
		}
	}
}

func TestSuiteHasElevenBenchmarks(t *testing.T) {
	suite := SPECInt2000()
	if len(suite) != 11 {
		t.Fatalf("suite = %d benchmarks, want 11 (eon excluded, as in the paper)", len(suite))
	}
	want := []string{"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
		"perlbmk", "gap", "vortex", "bzip2", "twolf"}
	for i, p := range suite {
		if p.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s (paper order)", i, p.Name, want[i])
		}
	}
	// gcc is the largest program, as in the paper.
	var maxProcs int
	maxName := ""
	for _, p := range suite {
		if p.Procs > maxProcs {
			maxProcs, maxName = p.Procs, p.Name
		}
	}
	if maxName != "gcc" {
		t.Errorf("largest benchmark = %s, want gcc", maxName)
	}
}

func TestFigure2Structure(t *testing.T) {
	fig := NewFigure2()
	f := fig.Func
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 16 {
		t.Errorf("blocks = %d, want 16 (A..P)", len(f.Blocks))
	}
	if f.EntryCount != 100 {
		t.Errorf("entry count = %d, want 100", f.EntryCount)
	}
	// Flow conservation at every interior block.
	for _, b := range f.Blocks {
		if b == f.Entry || b.IsExit() {
			continue
		}
		var in, out int64
		for _, e := range b.Preds {
			in += e.Weight
		}
		for _, e := range b.Succs {
			out += e.Weight
		}
		if in != out {
			t.Errorf("block %s: in %d != out %d", b.Name, in, out)
		}
	}
	// The shaded blocks really clobber the register.
	for name := range fig.Allocated {
		found := false
		for _, in := range f.BlockByName(name).Instrs {
			if in.Def() == fig.Reg {
				found = true
			}
		}
		// E uses (not defines) the register: the web spans D-E.
		if name == "E" {
			continue
		}
		if !found {
			t.Errorf("allocated block %s does not write %v", name, fig.Reg)
		}
	}
	// D->F must be a jump edge (the paper's jump block case).
	df := f.BlockByName("D").SuccEdge(f.BlockByName("F"))
	if df == nil || df.Kind != ir.Jump {
		t.Error("D->F must exist and be a jump edge")
	}
}

func TestFigure1Structure(t *testing.T) {
	fig := NewFigure1(10, 20)
	if err := ir.Verify(fig.Func); err != nil {
		t.Fatal(err)
	}
	if len(fig.Func.Blocks) != 7 {
		t.Errorf("blocks = %d, want 7 (A..G)", len(fig.Func.Blocks))
	}
	b := fig.Func.BlockByName("B")
	if b.ExecCount() != 10 {
		t.Errorf("B executes %d, want 10", b.ExecCount())
	}
	e := fig.Func.BlockByName("E")
	if e.ExecCount() != 20 {
		t.Errorf("E executes %d, want 20", e.ExecCount())
	}
}

func TestAllocateGroupPanics(t *testing.T) {
	fig := NewFigure1(10, 20)
	for _, c := range []func(){
		func() { AllocateGroup(fig.Func, fig.Reg) },
		func() { AllocateGroup(fig.Func, fig.Reg, "nosuch") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c()
		}()
	}
}

func TestRngDistribution(t *testing.T) {
	// The xorshift generator's float() must stay in [0,1) and intn in
	// range; coarse uniformity sanity check.
	r := newRng(12345)
	buckets := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.float()
		if v < 0 || v >= 1 {
			t.Fatalf("float out of range: %v", v)
		}
		buckets[int(v*10)]++
	}
	for i, c := range buckets {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has %d/10000 samples; distribution badly skewed", i, c)
		}
	}
	if newRng(0) == nil {
		t.Error("zero seed must be remapped")
	}
}
