package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Func is a procedure: a CFG of basic blocks in layout order.
type Func struct {
	Name   string
	Params []Reg // parameter registers, virtual before allocation

	// Blocks holds the basic blocks in layout (emission) order. The
	// layout order determines which edges are fall-through edges.
	Blocks []*Block
	Entry  *Block

	// NumVirt is one past the highest virtual register index used.
	NumVirt int

	// SpillSlots is the number of allocator spill slots in the frame.
	SpillSlots int
	// SaveSlots is the number of callee-saved save slots in the frame.
	SaveSlots int

	// EntryCount is the dynamic invocation count of the procedure,
	// recorded by profiling (the weight of the implicit entry edge).
	EntryCount int64

	// UsedCalleeSaved lists the callee-saved physical registers the
	// register allocation writes somewhere in the body; these are the
	// registers spill code placement must save and restore.
	UsedCalleeSaved []Reg

	nextBlockID int
}

// NewFunc returns an empty function with the given name.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewBlock appends a new empty block with the given name to the layout
// and returns it. The first block created becomes the entry.
func (f *Func) NewBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("b%d", f.nextBlockID)
	}
	b := &Block{ID: f.nextBlockID, Name: name, Func: f}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	if f.Entry == nil {
		f.Entry = b
	}
	return b
}

// NewVirt returns a fresh virtual register.
func (f *Func) NewVirt() Reg {
	r := Virt(f.NumVirt)
	f.NumVirt++
	return r
}

// AddEdge creates a control flow edge from->to of the given kind and
// weight and links it into both blocks' edge lists.
func (f *Func) AddEdge(from, to *Block, kind EdgeKind, weight int64) *Edge {
	e := &Edge{From: from, To: to, Kind: kind, Weight: weight}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
	return e
}

// RemoveEdge unlinks e from both endpoint blocks.
func (f *Func) RemoveEdge(e *Edge) {
	e.From.Succs = removeEdge(e.From.Succs, e)
	e.To.Preds = removeEdge(e.To.Preds, e)
}

func removeEdge(list []*Edge, e *Edge) []*Edge {
	for i, x := range list {
		if x == e {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Exits returns the blocks terminated by OpRet, in layout order.
func (f *Func) Exits() []*Block {
	var out []*Block
	for _, b := range f.Blocks {
		if b.IsExit() {
			out = append(out, b)
		}
	}
	return out
}

// Edges returns every control flow edge in a deterministic order
// (source layout position, then successor list position).
func (f *Func) Edges() []*Edge {
	var out []*Edge
	for _, b := range f.Blocks {
		out = append(out, b.Succs...)
	}
	return out
}

// RenumberBlocks reassigns dense block IDs following layout order.
// Passes that insert or delete blocks must call this before running
// analyses that index by block ID.
func (f *Func) RenumberBlocks() {
	for i, b := range f.Blocks {
		b.ID = i
	}
	f.nextBlockID = len(f.Blocks)
}

// BlockByName returns the named block, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// ClassifyEdges sets the Kind of every edge from the block layout,
// per the paper's definition: a jump edge is an edge whose target is
// not the next sequential instruction. So an edge is fall-through
// exactly when its target is the next block in layout order (a branch
// or jump to the next block executes as straight-line code), and a
// jump edge otherwise.
func (f *Func) ClassifyEdges() {
	for i, b := range f.Blocks {
		var next *Block
		if i+1 < len(f.Blocks) {
			next = f.Blocks[i+1]
		}
		for _, e := range b.Succs {
			if e.To == next {
				e.Kind = FallThrough
			} else {
				e.Kind = Jump
			}
		}
	}
}

// MaxFrameSlot returns the highest frame slot (Imm) any instruction
// with one of the two opcodes references, or -1 if none occurs. The
// passes that insert frame traffic use it to keep SpillSlots and
// SaveSlots exact — the VM sizes fixed, pooled frames from those
// counts, so they must cover every reference and carry no dead slots.
func (f *Func) MaxFrameSlot(a, b Op) int {
	maxSlot := -1
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if (in.Op == a || in.Op == b) && int(in.Imm) > maxSlot {
				maxSlot = int(in.Imm)
			}
		}
	}
	return maxSlot
}

// Instrs returns the total static instruction count.
func (f *Func) Instrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Clone returns a deep copy of the function. Instruction successor
// pointers and edges are remapped to the cloned blocks.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:        f.Name,
		Params:      append([]Reg(nil), f.Params...),
		NumVirt:     f.NumVirt,
		SpillSlots:  f.SpillSlots,
		SaveSlots:   f.SaveSlots,
		EntryCount:  f.EntryCount,
		nextBlockID: f.nextBlockID,
	}
	if f.UsedCalleeSaved != nil {
		nf.UsedCalleeSaved = append([]Reg(nil), f.UsedCalleeSaved...)
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name, Func: nf}
		bmap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	nf.Entry = bmap[f.Entry]
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ci := in.Clone()
			if ci.Then != nil {
				ci.Then = bmap[ci.Then]
			}
			if ci.Else != nil {
				ci.Else = bmap[ci.Else]
			}
			nb.Instrs = append(nb.Instrs, ci)
		}
		for _, e := range b.Succs {
			nf.AddEdge(bmap[e.From], bmap[e.To], e.Kind, e.Weight)
		}
	}
	return nf
}

// String renders the function in the textual IR syntax.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk.Name)
		if len(blk.Preds) > 0 {
			names := make([]string, len(blk.Preds))
			for i, e := range blk.Preds {
				names[i] = e.From.Name
			}
			sort.Strings(names)
			fmt.Fprintf(&b, "  ; preds %s", strings.Join(names, " "))
		}
		b.WriteString("\n")
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "\t%s\n", in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Program is a set of functions with a designated entry point.
type Program struct {
	Funcs map[string]*Func
	Order []string // deterministic iteration order
	Main  string
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Funcs: make(map[string]*Func)}
}

// Add registers a function, keeping deterministic order.
func (p *Program) Add(f *Func) {
	if _, ok := p.Funcs[f.Name]; !ok {
		p.Order = append(p.Order, f.Name)
	}
	p.Funcs[f.Name] = f
	if p.Main == "" {
		p.Main = f.Name
	}
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Func { return p.Funcs[name] }

// FuncsInOrder returns the functions in registration order.
func (p *Program) FuncsInOrder() []*Func {
	out := make([]*Func, 0, len(p.Order))
	for _, name := range p.Order {
		out = append(out, p.Funcs[name])
	}
	return out
}

// Clone deep-copies the whole program.
func (p *Program) Clone() *Program {
	np := NewProgram()
	for _, f := range p.FuncsInOrder() {
		np.Add(f.Clone())
	}
	np.Main = p.Main
	return np
}

// String renders all functions.
func (p *Program) String() string {
	var b strings.Builder
	for i, f := range p.FuncsInOrder() {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(f.String())
	}
	return b.String()
}
