package ir

// Op is an instruction opcode.
type Op uint8

// Opcodes. Arithmetic and comparison ops read Src1/Src2 and write Dst.
// Memory ops address a flat per-program heap through a register plus
// immediate offset; spill and save/restore ops address the current
// frame's spill area by slot number.
const (
	OpNop Op = iota

	// OpConst: Dst = Imm.
	OpConst
	// OpMov: Dst = Src1.
	OpMov

	// Binary arithmetic: Dst = Src1 <op> Src2.
	OpAdd
	OpSub
	OpMul
	OpDiv // rounds toward zero; division by zero yields 0
	OpRem // remainder; by zero yields 0
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// Unary: Dst = <op> Src1.
	OpNeg
	OpNot

	// Comparisons: Dst = Src1 <rel> Src2 (0 or 1).
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// OpLoad: Dst = heap[Src1 + Imm].
	OpLoad
	// OpStore: heap[Src1 + Imm] = Src2.
	OpStore

	// OpSpillLoad: Dst = frame.spill[Imm]. Inserted by the register
	// allocator for spilled virtual registers.
	OpSpillLoad
	// OpSpillStore: frame.spill[Imm] = Src1.
	OpSpillStore

	// OpSave: frame.save[Imm] = Src1, where Src1 is a callee-saved
	// physical register. Inserted by spill code placement.
	OpSave
	// OpRestore: Dst = frame.save[Imm], Dst callee-saved physical.
	OpRestore

	// OpCall: call function Callee with Args; result (if any) in Dst.
	OpCall

	// Terminators.
	// OpRet: return Src1 (or nothing when Src1 == NoReg).
	OpRet
	// OpBr: if Src1 != 0 branch to block Then, else to block Else.
	OpBr
	// OpJmp: unconditional transfer to block Then.
	OpJmp

	numOps
)

var opNames = [numOps]string{
	OpNop:        "nop",
	OpConst:      "const",
	OpMov:        "mov",
	OpAdd:        "add",
	OpSub:        "sub",
	OpMul:        "mul",
	OpDiv:        "div",
	OpRem:        "rem",
	OpAnd:        "and",
	OpOr:         "or",
	OpXor:        "xor",
	OpShl:        "shl",
	OpShr:        "shr",
	OpNeg:        "neg",
	OpNot:        "not",
	OpCmpEQ:      "cmpeq",
	OpCmpNE:      "cmpne",
	OpCmpLT:      "cmplt",
	OpCmpLE:      "cmple",
	OpCmpGT:      "cmpgt",
	OpCmpGE:      "cmpge",
	OpLoad:       "load",
	OpStore:      "store",
	OpSpillLoad:  "spill.ld",
	OpSpillStore: "spill.st",
	OpSave:       "save",
	OpRestore:    "restore",
	OpCall:       "call",
	OpRet:        "ret",
	OpBr:         "br",
	OpJmp:        "jmp",
}

// String returns the assembler mnemonic for the opcode.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// Valid reports whether op is one of the defined opcodes. The VM's
// bytecode compiler uses it to turn undefined opcode bytes into traps
// rather than misdecoding them.
func (op Op) Valid() bool { return op < numOps }

// IsTerminator reports whether the opcode ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpRet || op == OpBr || op == OpJmp
}

// IsBinary reports whether the opcode is a two-source ALU operation.
func (op Op) IsBinary() bool {
	return op >= OpAdd && op <= OpCmpGE && op != OpNeg && op != OpNot
}

// IsUnary reports whether the opcode is a one-source ALU operation.
func (op Op) IsUnary() bool { return op == OpNeg || op == OpNot }

// IsCompare reports whether the opcode is a comparison.
func (op Op) IsCompare() bool { return op >= OpCmpEQ && op <= OpCmpGE }

// IsMemLoad reports whether the opcode performs a memory read at run
// time (heap loads, spill reloads, and callee-saved restores).
func (op Op) IsMemLoad() bool {
	return op == OpLoad || op == OpSpillLoad || op == OpRestore
}

// IsMemStore reports whether the opcode performs a memory write at run
// time (heap stores, spill stores, and callee-saved saves).
func (op Op) IsMemStore() bool {
	return op == OpStore || op == OpSpillStore || op == OpSave
}
