package ir

import (
	"fmt"
	"strings"
)

// InstrFlags mark the provenance of an instruction so dynamic overhead
// can be attributed. Original program instructions carry no flags.
type InstrFlags uint8

const (
	// FlagSpill marks allocator-inserted spill code for ordinary
	// (non-callee-saved) virtual registers.
	FlagSpill InstrFlags = 1 << iota
	// FlagSaveRestore marks callee-saved save/restore instructions
	// inserted by a spill code placement strategy.
	FlagSaveRestore
	// FlagJumpBlock marks a jump instruction inserted purely to carry
	// spill code on a jump edge (the jump block's trailing jmp).
	FlagJumpBlock
)

// Instr is a single three-address instruction.
type Instr struct {
	Op   Op
	Dst  Reg   // destination register, NoReg if none
	Src1 Reg   // first source, NoReg if none
	Src2 Reg   // second source, NoReg if none
	Imm  int64 // immediate: constant, address offset, or spill slot

	// Callee and Args are used by OpCall only.
	Callee string
	Args   []Reg

	// Then and Else are the successor blocks of OpBr; Then alone is
	// used by OpJmp. They must agree with the block's edge list.
	Then *Block
	Else *Block

	Flags InstrFlags
}

// NewInstr returns a plain instruction with the given fields.
func NewInstr(op Op, dst, src1, src2 Reg, imm int64) *Instr {
	return &Instr{Op: op, Dst: dst, Src1: src1, Src2: src2, Imm: imm}
}

// Uses appends the registers read by the instruction to buf and
// returns it. The buffer form avoids per-instruction allocation in the
// allocator's hot loops.
func (in *Instr) Uses(buf []Reg) []Reg {
	if in.Src1.IsValid() {
		buf = append(buf, in.Src1)
	}
	if in.Src2.IsValid() {
		buf = append(buf, in.Src2)
	}
	for _, a := range in.Args {
		if a.IsValid() {
			buf = append(buf, a)
		}
	}
	return buf
}

// Def returns the register written by the instruction, or NoReg.
func (in *Instr) Def() Reg { return in.Dst }

// IsOverhead reports whether the instruction is compiler-inserted
// overhead (spill code, callee-saved save/restore, or jump-block jump).
func (in *Instr) IsOverhead() bool { return in.Flags != 0 }

// Clone returns a deep copy of the instruction with the same successor
// block pointers.
func (in *Instr) Clone() *Instr {
	cp := *in
	if in.Args != nil {
		cp.Args = append([]Reg(nil), in.Args...)
	}
	return &cp
}

// String renders the instruction in the textual IR syntax.
func (in *Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpConst:
		return fmt.Sprintf("%v = const %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("%v = mov %v", in.Dst, in.Src1)
	case OpNeg, OpNot:
		return fmt.Sprintf("%v = %v %v", in.Dst, in.Op, in.Src1)
	case OpLoad:
		return fmt.Sprintf("%v = load %v+%d", in.Dst, in.Src1, in.Imm)
	case OpStore:
		return fmt.Sprintf("store %v+%d, %v", in.Src1, in.Imm, in.Src2)
	case OpSpillLoad:
		return fmt.Sprintf("%v = spill.ld %d", in.Dst, in.Imm)
	case OpSpillStore:
		return fmt.Sprintf("spill.st %d, %v", in.Imm, in.Src1)
	case OpSave:
		return fmt.Sprintf("save %d, %v", in.Imm, in.Src1)
	case OpRestore:
		return fmt.Sprintf("%v = restore %d", in.Dst, in.Imm)
	case OpCall:
		var b strings.Builder
		if in.Dst.IsValid() {
			fmt.Fprintf(&b, "%v = ", in.Dst)
		}
		fmt.Fprintf(&b, "call %s(", in.Callee)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
		return b.String()
	case OpRet:
		if in.Src1.IsValid() {
			return fmt.Sprintf("ret %v", in.Src1)
		}
		return "ret"
	case OpBr:
		return fmt.Sprintf("br %v, %s, %s", in.Src1, blockName(in.Then), blockName(in.Else))
	case OpJmp:
		return fmt.Sprintf("jmp %s", blockName(in.Then))
	default:
		return fmt.Sprintf("%v = %v %v, %v", in.Dst, in.Op, in.Src1, in.Src2)
	}
}

func blockName(b *Block) string {
	if b == nil {
		return "?"
	}
	return b.Name
}
