package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural consistency of the function's CFG and
// instruction stream. It returns a joined error describing every
// violation found, or nil.
//
// The invariants checked:
//   - block IDs are dense and match layout positions
//   - every block ends in exactly one terminator and has none earlier
//   - terminator targets agree with the successor edge list
//   - Preds/Succs lists are symmetric
//   - the entry block exists and has no predecessors
//   - every block is reachable from the entry
//   - edge weights are non-negative
//   - every spill/save slot reference fits the declared frame
//     (SpillSlots/SaveSlots), so frames never need to grow mid-run
func Verify(f *Func) error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("ir.Verify(%s): "+format, append([]any{f.Name}, args...)...))
	}

	if f.Entry == nil {
		fail("no entry block")
		return errors.Join(errs...)
	}
	if len(f.Entry.Preds) != 0 {
		fail("entry block %s has predecessors", f.Entry.Name)
	}

	seen := make(map[string]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		if b.ID != i {
			fail("block %s has ID %d at layout position %d (call RenumberBlocks)", b.Name, b.ID, i)
		}
		if b.Func != f {
			fail("block %s belongs to a different function", b.Name)
		}
		if seen[b.Name] {
			fail("duplicate block name %s", b.Name)
		}
		seen[b.Name] = true

		// Terminator discipline.
		if len(b.Instrs) == 0 {
			fail("block %s is empty", b.Name)
			continue
		}
		for j, in := range b.Instrs {
			if in.Op.IsTerminator() && j != len(b.Instrs)-1 {
				fail("block %s has terminator %v at non-final position %d", b.Name, in.Op, j)
			}
			// Frame slot discipline: the VM sizes frames from the
			// declared slot counts once per call, so every reference
			// must fit.
			switch in.Op {
			case OpSpillLoad, OpSpillStore:
				if in.Imm < 0 || in.Imm >= int64(f.SpillSlots) {
					fail("block %s: %v references spill slot %d outside the declared frame (SpillSlots=%d)",
						b.Name, in.Op, in.Imm, f.SpillSlots)
				}
			case OpSave, OpRestore:
				if in.Imm < 0 || in.Imm >= int64(f.SaveSlots) {
					fail("block %s: %v references save slot %d outside the declared frame (SaveSlots=%d)",
						b.Name, in.Op, in.Imm, f.SaveSlots)
				}
			}
		}
		t := b.Terminator()
		if t == nil {
			fail("block %s does not end in a terminator", b.Name)
			continue
		}
		switch t.Op {
		case OpRet:
			if len(b.Succs) != 0 {
				fail("ret block %s has %d successors", b.Name, len(b.Succs))
			}
		case OpJmp:
			if len(b.Succs) != 1 {
				fail("jmp block %s has %d successors, want 1", b.Name, len(b.Succs))
			} else if b.Succs[0].To != t.Then {
				fail("jmp block %s edge targets %s but instruction targets %s",
					b.Name, b.Succs[0].To.Name, blockName(t.Then))
			}
		case OpBr:
			if len(b.Succs) != 2 {
				fail("br block %s has %d successors, want 2", b.Name, len(b.Succs))
			} else {
				if b.SuccEdge(t.Then) == nil {
					fail("br block %s missing edge to then-target %s", b.Name, blockName(t.Then))
				}
				if b.SuccEdge(t.Else) == nil {
					fail("br block %s missing edge to else-target %s", b.Name, blockName(t.Else))
				}
				if t.Then == t.Else {
					fail("br block %s has identical then/else targets", b.Name)
				}
			}
		}

		// Edge symmetry and weights.
		for _, e := range b.Succs {
			if e.From != b {
				fail("edge %v in %s.Succs has From=%s", e, b.Name, e.From.Name)
			}
			if e.Weight < 0 {
				fail("edge %v has negative weight", e)
			}
			if !containsEdge(e.To.Preds, e) {
				fail("edge %v missing from %s.Preds", e, e.To.Name)
			}
		}
		for _, e := range b.Preds {
			if e.To != b {
				fail("edge %v in %s.Preds has To=%s", e, b.Name, e.To.Name)
			}
			if !containsEdge(e.From.Succs, e) {
				fail("edge %v missing from %s.Succs", e, e.From.Name)
			}
		}
	}

	// Reachability.
	reached := make(map[*Block]bool, len(f.Blocks))
	var stack []*Block
	stack = append(stack, f.Entry)
	reached[f.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if !reached[e.To] {
				reached[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for _, b := range f.Blocks {
		if !reached[b] {
			fail("block %s is unreachable from entry", b.Name)
		}
	}

	return errors.Join(errs...)
}

func containsEdge(list []*Edge, e *Edge) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// VerifyProgram verifies every function and checks cross-function
// references: every OpCall names a function defined in the program and
// passes the arity it declares.
func VerifyProgram(p *Program) error {
	var errs []error
	if p.Main == "" || p.Funcs[p.Main] == nil {
		errs = append(errs, fmt.Errorf("ir.VerifyProgram: main function %q not defined", p.Main))
	}
	for _, f := range p.FuncsInOrder() {
		if err := Verify(f); err != nil {
			errs = append(errs, err)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != OpCall {
					continue
				}
				callee := p.Funcs[in.Callee]
				if callee == nil {
					errs = append(errs, fmt.Errorf("ir.VerifyProgram: %s calls undefined %q", f.Name, in.Callee))
					continue
				}
				if len(in.Args) != len(callee.Params) {
					errs = append(errs, fmt.Errorf("ir.VerifyProgram: %s calls %s with %d args, want %d",
						f.Name, in.Callee, len(in.Args), len(callee.Params)))
				}
			}
		}
	}
	return errors.Join(errs...)
}
