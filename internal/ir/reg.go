// Package ir defines a small three-address intermediate representation
// with an explicit weighted control flow graph. It is the substrate on
// which register allocation and post-allocation spill code placement
// operate, standing in for the GCC RTL midend used in the paper.
package ir

import "fmt"

// Reg names a register. Values in [0, VirtBase) are physical machine
// registers; values >= VirtBase are virtual registers assigned by the
// front end and eliminated by register allocation.
type Reg int32

// VirtBase is the first virtual register number. Physical registers
// live below it; no machine modeled here has more than 64 registers.
const VirtBase Reg = 64

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Phys returns the physical register with hardware number n.
func Phys(n int) Reg {
	if n < 0 || Reg(n) >= VirtBase {
		panic(fmt.Sprintf("ir.Phys: register number %d out of range", n))
	}
	return Reg(n)
}

// Virt returns the n'th virtual register.
func Virt(n int) Reg {
	if n < 0 {
		panic(fmt.Sprintf("ir.Virt: negative virtual register %d", n))
	}
	return VirtBase + Reg(n)
}

// IsPhys reports whether r is a physical machine register.
func (r Reg) IsPhys() bool { return r >= 0 && r < VirtBase }

// IsVirt reports whether r is a virtual register.
func (r Reg) IsVirt() bool { return r >= VirtBase }

// IsValid reports whether r names any register at all.
func (r Reg) IsValid() bool { return r >= 0 }

// PhysNum returns the hardware number of a physical register.
func (r Reg) PhysNum() int {
	if !r.IsPhys() {
		panic(fmt.Sprintf("ir.Reg.PhysNum: %v is not physical", r))
	}
	return int(r)
}

// VirtNum returns the index of a virtual register.
func (r Reg) VirtNum() int {
	if !r.IsVirt() {
		panic(fmt.Sprintf("ir.Reg.VirtNum: %v is not virtual", r))
	}
	return int(r - VirtBase)
}

// String renders physical registers as rN and virtual registers as vN.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "_"
	case r.IsPhys():
		return fmt.Sprintf("r%d", int(r))
	default:
		return fmt.Sprintf("v%d", r.VirtNum())
	}
}
