package ir

import (
	"strings"
	"testing"
)

func TestInstrStringAllForms(t *testing.T) {
	b := &Block{Name: "tgt"}
	cases := []struct {
		in   *Instr
		want string
	}{
		{NewInstr(OpNop, NoReg, NoReg, NoReg, 0), "nop"},
		{NewInstr(OpConst, Virt(0), NoReg, NoReg, 7), "v0 = const 7"},
		{NewInstr(OpMov, Virt(1), Virt(0), NoReg, 0), "v1 = mov v0"},
		{NewInstr(OpNeg, Virt(1), Virt(0), NoReg, 0), "v1 = neg v0"},
		{NewInstr(OpNot, Virt(1), Virt(0), NoReg, 0), "v1 = not v0"},
		{NewInstr(OpAdd, Virt(2), Virt(0), Virt(1), 0), "v2 = add v0, v1"},
		{NewInstr(OpCmpGE, Virt(2), Virt(0), Virt(1), 0), "v2 = cmpge v0, v1"},
		{NewInstr(OpLoad, Virt(1), Virt(0), NoReg, 8), "v1 = load v0+8"},
		{NewInstr(OpStore, NoReg, Virt(0), Virt(1), 8), "store v0+8, v1"},
		{NewInstr(OpSpillLoad, Virt(1), NoReg, NoReg, 3), "v1 = spill.ld 3"},
		{NewInstr(OpSpillStore, NoReg, Virt(1), NoReg, 3), "spill.st 3, v1"},
		{NewInstr(OpSave, NoReg, Phys(12), NoReg, 0), "save 0, r12"},
		{NewInstr(OpRestore, Phys(12), NoReg, NoReg, 0), "r12 = restore 0"},
		{NewInstr(OpRet, NoReg, Virt(0), NoReg, 0), "ret v0"},
		{NewInstr(OpRet, NoReg, NoReg, NoReg, 0), "ret"},
		{&Instr{Op: OpJmp, Dst: NoReg, Src1: NoReg, Src2: NoReg, Then: b}, "jmp tgt"},
		{&Instr{Op: OpJmp, Dst: NoReg, Src1: NoReg, Src2: NoReg}, "jmp ?"},
		{&Instr{Op: OpBr, Dst: NoReg, Src1: Virt(0), Src2: NoReg, Then: b, Else: b}, "br v0, tgt, tgt"},
		{&Instr{Op: OpCall, Dst: NoReg, Src1: NoReg, Src2: NoReg, Callee: "g"}, "call g()"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if Op(200).String() != "op?" {
		t.Error("unknown opcode should render as op?")
	}
	if FallThrough.String() != "fall" || Jump.String() != "jump" {
		t.Error("EdgeKind strings wrong")
	}
}

func TestInstrDefAndClone(t *testing.T) {
	in := NewInstr(OpAdd, Virt(2), Virt(0), Virt(1), 0)
	if in.Def() != Virt(2) {
		t.Error("Def wrong")
	}
	call := &Instr{Op: OpCall, Dst: Virt(0), Src1: NoReg, Src2: NoReg,
		Callee: "g", Args: []Reg{Virt(1)}}
	cp := call.Clone()
	cp.Args[0] = Virt(9)
	if call.Args[0] == Virt(9) {
		t.Error("Clone shares Args")
	}
}

func TestBuilderHelpers(t *testing.T) {
	bu := NewBuilder("h", 1)
	bu.Block("entry")
	if bu.Current() == nil || bu.Current().Name != "entry" {
		t.Error("Current wrong")
	}
	v := bu.F.NewVirt()
	bu.ConstInto(v, 5)
	bu.Mov(v, bu.F.Params[0])
	sum := bu.Bin(OpAdd, v, v)
	bu.BinInto(OpSub, v, sum, v)
	addr := bu.Const(64)
	bu.Store(addr, 4, v)
	got := bu.Load(addr, 4)
	bu.Ret(got)
	f := bu.Finish()
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	ops := []Op{OpConst, OpMov, OpAdd, OpSub, OpConst, OpStore, OpLoad, OpRet}
	if len(f.Entry.Instrs) != len(ops) {
		t.Fatalf("instr count = %d, want %d", len(f.Entry.Instrs), len(ops))
	}
	for i, op := range ops {
		if f.Entry.Instrs[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, f.Entry.Instrs[i].Op, op)
		}
	}
	if f.Instrs() != len(ops) {
		t.Errorf("Instrs() = %d", f.Instrs())
	}
	// Block() with an existing name switches to it.
	if bu.Block("entry") != f.Entry {
		t.Error("Block should return the existing block")
	}
}

func TestEdgesAndString(t *testing.T) {
	bu := NewBuilder("e", 0)
	a := bu.Block("A")
	b := bu.F.NewBlock("B")
	c := bu.F.NewBlock("C")
	bu.SetCurrent(a)
	cv := bu.Const(1)
	bu.Br(cv, b, c, 3, 4)
	bu.SetCurrent(b)
	bu.Ret(NoReg)
	bu.SetCurrent(c)
	bu.Ret(NoReg)
	f := bu.Finish()

	es := f.Edges()
	if len(es) != 2 {
		t.Fatalf("Edges = %d, want 2", len(es))
	}
	if es[0].String() == "" {
		t.Error("Edge.String empty")
	}
	s := f.String()
	if !strings.Contains(s, "func e()") || !strings.Contains(s, "preds A") {
		t.Errorf("Func.String missing pieces:\n%s", s)
	}
	if b.PredEdge(a) == nil || b.PredEdge(c) != nil {
		t.Error("PredEdge wrong")
	}
	if b.String() != "B" {
		t.Error("Block.String wrong")
	}
}

func TestVerifyMoreCases(t *testing.T) {
	// jmp whose edge disagrees with the instruction target.
	bu := NewBuilder("bad", 0)
	a := bu.Block("A")
	b := bu.F.NewBlock("B")
	c := bu.F.NewBlock("C")
	bu.SetCurrent(a)
	cv := bu.Const(1)
	bu.Br(cv, b, c, 1, 1)
	bu.SetCurrent(b)
	bu.Jmp(c, 1)
	bu.SetCurrent(c)
	bu.Ret(NoReg)
	f := bu.Finish()
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	// Point the jmp instruction somewhere else without fixing edges.
	b.Terminator().Then = a
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "targets") {
		t.Errorf("mismatched jmp target not caught: %v", err)
	}
	b.Terminator().Then = c

	// Negative edge weight.
	f.Entry.Succs[0].Weight = -1
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative weight not caught: %v", err)
	}
	f.Entry.Succs[0].Weight = 1

	// br with identical targets.
	g := NewFunc("same")
	x := g.NewBlock("X")
	y := g.NewBlock("Y")
	cond := g.NewVirt()
	x.Append(NewInstr(OpConst, cond, NoReg, NoReg, 1))
	x.Append(&Instr{Op: OpBr, Dst: NoReg, Src1: cond, Src2: NoReg, Then: y, Else: y})
	g.AddEdge(x, y, Jump, 1)
	g.AddEdge(x, y, Jump, 1)
	y.Append(NewInstr(OpRet, NoReg, NoReg, NoReg, 0))
	g.RenumberBlocks()
	if err := Verify(g); err == nil {
		t.Error("identical br targets not caught")
	}

	// Arity mismatch in a program.
	p := NewProgram()
	callee := NewBuilder("callee", 2)
	callee.Block("entry")
	callee.Ret(NoReg)
	p.Add(callee.Finish())
	caller := NewBuilder("caller", 0)
	caller.Block("entry")
	caller.Call(NoReg, "callee", Virt(0)) // one arg, want two
	caller.Ret(NoReg)
	p.Add(caller.Finish())
	p.Main = "caller"
	if err := VerifyProgram(p); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("arity mismatch not caught: %v", err)
	}
}

func TestVerifyNoEntry(t *testing.T) {
	f := NewFunc("empty")
	if err := Verify(f); err == nil {
		t.Error("function without entry not caught")
	}
}

func TestNewBlockAutoName(t *testing.T) {
	f := NewFunc("auto")
	b := f.NewBlock("")
	if b.Name != "b0" {
		t.Errorf("auto name = %q, want b0", b.Name)
	}
}
