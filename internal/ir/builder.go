package ir

// Builder provides a convenient way to construct functions block by
// block. It tracks a current block and wires terminators and CFG edges
// together so they cannot disagree.
type Builder struct {
	F   *Func
	cur *Block
}

// NewBuilder returns a builder for a fresh function with the given
// name and parameter count. Parameters are assigned the first virtual
// registers.
func NewBuilder(name string, nparams int) *Builder {
	f := NewFunc(name)
	for i := 0; i < nparams; i++ {
		f.Params = append(f.Params, f.NewVirt())
	}
	return &Builder{F: f}
}

// Block creates (or switches to) the named block and makes it current.
func (bu *Builder) Block(name string) *Block {
	if b := bu.F.BlockByName(name); b != nil {
		bu.cur = b
		return b
	}
	b := bu.F.NewBlock(name)
	bu.cur = b
	return b
}

// Current returns the block under construction.
func (bu *Builder) Current() *Block { return bu.cur }

// SetCurrent switches the builder to b.
func (bu *Builder) SetCurrent(b *Block) { bu.cur = b }

// Emit appends an instruction to the current block.
func (bu *Builder) Emit(in *Instr) *Instr {
	bu.cur.Append(in)
	return in
}

// Const emits dst = const imm into a fresh virtual register.
func (bu *Builder) Const(imm int64) Reg {
	dst := bu.F.NewVirt()
	bu.Emit(&Instr{Op: OpConst, Dst: dst, Src1: NoReg, Src2: NoReg, Imm: imm})
	return dst
}

// ConstInto emits dst = const imm.
func (bu *Builder) ConstInto(dst Reg, imm int64) {
	bu.Emit(&Instr{Op: OpConst, Dst: dst, Src1: NoReg, Src2: NoReg, Imm: imm})
}

// Mov emits dst = mov src.
func (bu *Builder) Mov(dst, src Reg) {
	bu.Emit(&Instr{Op: OpMov, Dst: dst, Src1: src, Src2: NoReg})
}

// Bin emits dst = src1 <op> src2 into a fresh virtual register.
func (bu *Builder) Bin(op Op, src1, src2 Reg) Reg {
	dst := bu.F.NewVirt()
	bu.Emit(&Instr{Op: op, Dst: dst, Src1: src1, Src2: src2})
	return dst
}

// BinInto emits dst = src1 <op> src2.
func (bu *Builder) BinInto(op Op, dst, src1, src2 Reg) {
	bu.Emit(&Instr{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// Load emits dst = heap[addr+off] into a fresh virtual register.
func (bu *Builder) Load(addr Reg, off int64) Reg {
	dst := bu.F.NewVirt()
	bu.Emit(&Instr{Op: OpLoad, Dst: dst, Src1: addr, Src2: NoReg, Imm: off})
	return dst
}

// Store emits heap[addr+off] = val.
func (bu *Builder) Store(addr Reg, off int64, val Reg) {
	bu.Emit(&Instr{Op: OpStore, Dst: NoReg, Src1: addr, Src2: val, Imm: off})
}

// Call emits a call; dst may be NoReg for a void call.
func (bu *Builder) Call(dst Reg, callee string, args ...Reg) {
	bu.Emit(&Instr{Op: OpCall, Dst: dst, Src1: NoReg, Src2: NoReg, Callee: callee, Args: args})
}

// Ret terminates the current block with a return of val (NoReg for a
// void return).
func (bu *Builder) Ret(val Reg) {
	bu.Emit(&Instr{Op: OpRet, Dst: NoReg, Src1: val, Src2: NoReg})
}

// Br terminates the current block with a conditional branch and adds
// both CFG edges with the given profile weights.
func (bu *Builder) Br(cond Reg, then, els *Block, wThen, wEls int64) {
	bu.Emit(&Instr{Op: OpBr, Dst: NoReg, Src1: cond, Src2: NoReg, Then: then, Else: els})
	bu.F.AddEdge(bu.cur, then, Jump, wThen)
	bu.F.AddEdge(bu.cur, els, FallThrough, wEls)
}

// Jmp terminates the current block with an unconditional jump and adds
// the CFG edge.
func (bu *Builder) Jmp(to *Block, w int64) {
	bu.Emit(&Instr{Op: OpJmp, Dst: NoReg, Src1: NoReg, Src2: NoReg, Then: to})
	bu.F.AddEdge(bu.cur, to, Jump, w)
}

// Finish classifies edge kinds from the final layout, renumbers the
// blocks, and returns the function.
func (bu *Builder) Finish() *Func {
	bu.F.RenumberBlocks()
	bu.F.ClassifyEdges()
	return bu.F
}
