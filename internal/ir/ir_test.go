package ir

import (
	"strings"
	"testing"
)

func TestRegEncoding(t *testing.T) {
	r := Phys(5)
	if !r.IsPhys() || r.IsVirt() || r.PhysNum() != 5 {
		t.Errorf("Phys(5) misbehaves: %v", r)
	}
	v := Virt(3)
	if !v.IsVirt() || v.IsPhys() || v.VirtNum() != 3 {
		t.Errorf("Virt(3) misbehaves: %v", v)
	}
	if NoReg.IsValid() {
		t.Error("NoReg should be invalid")
	}
	if r.String() != "r5" || v.String() != "v3" || NoReg.String() != "_" {
		t.Errorf("String: %v %v %v", r, v, NoReg)
	}
}

func TestRegPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("Phys(-1)", func() { Phys(-1) })
	mustPanic("Phys(64)", func() { Phys(64) })
	mustPanic("Virt(-1)", func() { Virt(-1) })
	mustPanic("PhysNum on virt", func() { Virt(0).PhysNum() })
	mustPanic("VirtNum on phys", func() { Phys(0).VirtNum() })
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op         Op
		term, load bool
		store, bin bool
	}{
		{OpRet, true, false, false, false},
		{OpBr, true, false, false, false},
		{OpJmp, true, false, false, false},
		{OpLoad, false, true, false, false},
		{OpSpillLoad, false, true, false, false},
		{OpRestore, false, true, false, false},
		{OpStore, false, false, true, false},
		{OpSpillStore, false, false, true, false},
		{OpSave, false, false, true, false},
		{OpAdd, false, false, false, true},
		{OpCmpLT, false, false, false, true},
		{OpNeg, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsTerminator() != c.term {
			t.Errorf("%v.IsTerminator() = %v", c.op, !c.term)
		}
		if c.op.IsMemLoad() != c.load {
			t.Errorf("%v.IsMemLoad() = %v", c.op, !c.load)
		}
		if c.op.IsMemStore() != c.store {
			t.Errorf("%v.IsMemStore() = %v", c.op, !c.store)
		}
		if c.op.IsBinary() != c.bin {
			t.Errorf("%v.IsBinary() = %v", c.op, !c.bin)
		}
	}
	if !OpNeg.IsUnary() || OpAdd.IsUnary() {
		t.Error("IsUnary misclassifies")
	}
	if !OpCmpEQ.IsCompare() || OpAdd.IsCompare() {
		t.Error("IsCompare misclassifies")
	}
}

// diamond builds:  entry -> (then|else) -> exit
func diamond(t *testing.T) *Func {
	t.Helper()
	bu := NewBuilder("d", 1)
	entry := bu.Block("entry")
	then := bu.F.NewBlock("then")
	els := bu.F.NewBlock("else")
	exit := bu.F.NewBlock("exit")

	bu.SetCurrent(entry)
	c := bu.Const(1)
	bu.Br(c, then, els, 30, 70)

	bu.SetCurrent(then)
	bu.Jmp(exit, 30)

	bu.SetCurrent(els)
	bu.Jmp(exit, 70)

	bu.SetCurrent(exit)
	bu.Ret(NoReg)
	return bu.Finish()
}

func TestBuilderDiamond(t *testing.T) {
	f := diamond(t)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	exit := f.BlockByName("exit")
	if exit.ExecCount() != 100 {
		t.Errorf("exit exec count = %d, want 100", exit.ExecCount())
	}
	if got := len(f.Exits()); got != 1 {
		t.Errorf("exits = %d, want 1", got)
	}
	// else falls through to exit? layout: entry, then, else, exit.
	// then -> exit is a jump (exit not next); else -> exit falls through.
	e1 := f.BlockByName("then").SuccEdge(exit)
	e2 := f.BlockByName("else").SuccEdge(exit)
	if e1.Kind != Jump {
		t.Errorf("then->exit kind = %v, want jump", e1.Kind)
	}
	if e2.Kind != FallThrough {
		t.Errorf("else->exit kind = %v, want fall", e2.Kind)
	}
	// Layout is entry,then,else,exit: entry->then targets the next
	// block (fall-through per the paper's definition), entry->else
	// skips a block (jump edge).
	entry := f.BlockByName("entry")
	if entry.SuccEdge(f.BlockByName("then")).Kind != FallThrough {
		t.Error("entry->then targets next block; should fall through")
	}
	if entry.SuccEdge(f.BlockByName("else")).Kind != Jump {
		t.Error("entry->else skips a block; should be a jump edge")
	}
}

func TestVerifyCatchesBrokenCFG(t *testing.T) {
	f := diamond(t)
	// Break symmetry: remove an edge from Preds only.
	exit := f.BlockByName("exit")
	exit.Preds = exit.Preds[:1]
	if err := Verify(f); err == nil {
		t.Error("Verify should catch asymmetric edges")
	}
}

func TestVerifyCatchesUnreachable(t *testing.T) {
	f := diamond(t)
	orphan := f.NewBlock("orphan")
	orphan.Append(&Instr{Op: OpRet, Src1: NoReg, Src2: NoReg, Dst: NoReg})
	f.RenumberBlocks()
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("Verify should catch unreachable block, got %v", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	f := diamond(t)
	b := f.BlockByName("then")
	b.InsertAtHead(&Instr{Op: OpRet, Src1: NoReg, Src2: NoReg, Dst: NoReg})
	if err := Verify(f); err == nil {
		t.Error("Verify should catch mid-block terminator")
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	bu := NewBuilder("f", 0)
	bu.Block("entry")
	bu.Const(1)
	f := bu.Finish()
	if err := Verify(f); err == nil {
		t.Error("Verify should catch missing terminator")
	}
}

func TestVerifyCatchesFrameSlotOverflow(t *testing.T) {
	cases := []struct {
		name  string
		in    Instr
		grow  func(f *Func)
		wants string
	}{
		{"spill.ld", Instr{Op: OpSpillLoad, Dst: Virt(0), Src1: NoReg, Src2: NoReg, Imm: 2}, func(f *Func) { f.SpillSlots = 3 }, "spill slot"},
		{"spill.st", Instr{Op: OpSpillStore, Dst: NoReg, Src1: Virt(0), Src2: NoReg, Imm: 0}, func(f *Func) { f.SpillSlots = 1 }, "spill slot"},
		{"save", Instr{Op: OpSave, Dst: NoReg, Src1: Phys(11), Src2: NoReg, Imm: 1}, func(f *Func) { f.SaveSlots = 2 }, "save slot"},
		{"restore", Instr{Op: OpRestore, Dst: Phys(11), Src1: NoReg, Src2: NoReg, Imm: 4}, func(f *Func) { f.SaveSlots = 5 }, "save slot"},
	}
	for _, c := range cases {
		bu := NewBuilder("f", 0)
		bu.Block("entry")
		in := c.in
		bu.Emit(&in)
		bu.Ret(NoReg)
		f := bu.Finish()
		// Undeclared frame slots must be flagged...
		if err := Verify(f); err == nil || !strings.Contains(err.Error(), c.wants) {
			t.Errorf("%s: Verify should catch slot outside frame, got %v", c.name, err)
		}
		// ...and a frame that covers them must pass.
		c.grow(f)
		if err := Verify(f); err != nil {
			t.Errorf("%s: Verify rejects in-bounds slot: %v", c.name, err)
		}
	}
}

func TestVerifyCatchesNegativeFrameSlot(t *testing.T) {
	bu := NewBuilder("f", 0)
	bu.Block("entry")
	bu.Emit(&Instr{Op: OpSpillLoad, Dst: Virt(0), Src1: NoReg, Src2: NoReg, Imm: -1})
	bu.Ret(NoReg)
	f := bu.Finish()
	f.SpillSlots = 4
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "spill slot") {
		t.Errorf("Verify should catch negative spill slot, got %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := diamond(t)
	g := f.Clone()
	if err := Verify(g); err != nil {
		t.Fatalf("clone fails Verify: %v", err)
	}
	// Mutating the clone must not affect the original.
	g.BlockByName("then").Instrs[0].Imm = 999
	g.BlockByName("entry").Succs[0].Weight = 123456
	if f.BlockByName("entry").Succs[0].Weight == 123456 {
		t.Error("clone shares edges with original")
	}
	if f.String() == "" || g.String() == "" {
		t.Error("String should render")
	}
	// Clone's terminator targets must point at clone blocks.
	ct := g.BlockByName("entry").Terminator()
	if ct.Then.Func != g || ct.Else.Func != g {
		t.Error("clone terminator targets original blocks")
	}
}

func TestInsertHelpers(t *testing.T) {
	f := diamond(t)
	b := f.BlockByName("then")
	n0 := len(b.Instrs)
	b.InsertAtHead(&Instr{Op: OpNop, Dst: NoReg, Src1: NoReg, Src2: NoReg})
	b.InsertBeforeTerminator(&Instr{Op: OpNop, Dst: NoReg, Src1: NoReg, Src2: NoReg})
	if len(b.Instrs) != n0+2 {
		t.Fatalf("instr count = %d, want %d", len(b.Instrs), n0+2)
	}
	if b.Instrs[0].Op != OpNop {
		t.Error("InsertAtHead misplaced")
	}
	if b.Instrs[len(b.Instrs)-2].Op != OpNop {
		t.Error("InsertBeforeTerminator misplaced")
	}
	if b.Terminator() == nil {
		t.Error("terminator lost")
	}
}

func TestInstrUsesAndString(t *testing.T) {
	in := &Instr{Op: OpAdd, Dst: Virt(2), Src1: Virt(0), Src2: Virt(1)}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != Virt(0) || uses[1] != Virt(1) {
		t.Errorf("Uses = %v", uses)
	}
	call := &Instr{Op: OpCall, Dst: Virt(0), Src1: NoReg, Src2: NoReg,
		Callee: "g", Args: []Reg{Virt(1), Virt(2)}}
	uses = call.Uses(nil)
	if len(uses) != 2 {
		t.Errorf("call Uses = %v", uses)
	}
	if s := call.String(); !strings.Contains(s, "call g(") {
		t.Errorf("call String = %q", s)
	}
	save := &Instr{Op: OpSave, Dst: NoReg, Src1: Phys(12), Src2: NoReg, Imm: 0, Flags: FlagSaveRestore}
	if !save.IsOverhead() {
		t.Error("flagged instruction should be overhead")
	}
	if in.IsOverhead() {
		t.Error("plain instruction should not be overhead")
	}
}

func TestProgramAddAndVerify(t *testing.T) {
	p := NewProgram()
	f := diamond(t)
	p.Add(f)
	if p.Main != "d" {
		t.Errorf("Main = %q, want d", p.Main)
	}
	if err := VerifyProgram(p); err != nil {
		t.Fatalf("VerifyProgram: %v", err)
	}

	// Add a caller with a bad callee reference.
	bu := NewBuilder("caller", 0)
	bu.Block("entry")
	bu.Call(NoReg, "missing")
	bu.Ret(NoReg)
	p.Add(bu.Finish())
	if err := VerifyProgram(p); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("VerifyProgram should catch undefined callee, got %v", err)
	}
}

func TestProgramClone(t *testing.T) {
	p := NewProgram()
	p.Add(diamond(t))
	q := p.Clone()
	if err := VerifyProgram(q); err != nil {
		t.Fatalf("clone VerifyProgram: %v", err)
	}
	q.Func("d").BlockByName("entry").Succs[0].Weight = 777
	if p.Func("d").BlockByName("entry").Succs[0].Weight == 777 {
		t.Error("program clone shares state")
	}
}

func TestEdgeRemoval(t *testing.T) {
	f := diamond(t)
	exit := f.BlockByName("exit")
	then := f.BlockByName("then")
	e := then.SuccEdge(exit)
	f.RemoveEdge(e)
	if then.SuccEdge(exit) != nil {
		t.Error("edge still in Succs")
	}
	if exit.PredEdge(then) != nil {
		t.Error("edge still in Preds")
	}
}

func TestExecCountEntryFallback(t *testing.T) {
	bu := NewBuilder("f", 0)
	bu.Block("entry")
	bu.Ret(NoReg)
	f := bu.Finish()
	f.EntryCount = 42
	if got := f.Entry.ExecCount(); got != 42 {
		t.Errorf("entry ExecCount = %d, want 42 (EntryCount fallback)", got)
	}
}
