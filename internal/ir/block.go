package ir

import "fmt"

// EdgeKind classifies a control flow edge per the paper's definition:
// a jump edge is initiated by a control flow instruction whose target
// is not the next sequential instruction; a fall-through edge reaches
// the next block in layout order.
type EdgeKind uint8

const (
	// FallThrough edges reach the lexically next block; spill code for
	// them can sit at the end of the source or head of the target.
	FallThrough EdgeKind = iota
	// Jump edges require a jump block if spill code must live on them.
	Jump
)

// String returns "fall" or "jump".
func (k EdgeKind) String() string {
	if k == Jump {
		return "jump"
	}
	return "fall"
}

// Edge is a directed control flow edge with a profile weight.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	// Weight is the dynamic execution count of the edge, from profiling.
	Weight int64
}

// String renders the edge as From->To(kind,weight).
func (e *Edge) String() string {
	return fmt.Sprintf("%s->%s(%v,%d)", e.From.Name, e.To.Name, e.Kind, e.Weight)
}

// Block is a basic block: straight-line instructions ending in a
// terminator, plus explicit predecessor and successor edge lists.
type Block struct {
	ID     int    // dense index within Func.Blocks
	Name   string // unique within the function
	Func   *Func
	Instrs []*Instr

	// Succs and Preds share Edge values: the edge From->To appears in
	// From.Succs and To.Preds.
	Succs []*Edge
	Preds []*Edge
}

// Terminator returns the block's final instruction, or nil if the
// block is empty or does not yet end in a terminator.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(in *Instr) { b.Instrs = append(b.Instrs, in) }

// InsertBefore inserts instruction in at index i.
func (b *Block) InsertBefore(i int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// InsertAtHead inserts the instruction as the first in the block.
func (b *Block) InsertAtHead(in *Instr) { b.InsertBefore(0, in) }

// InsertBeforeTerminator inserts the instruction just before the
// block's terminator, or at the end if there is none.
func (b *Block) InsertBeforeTerminator(in *Instr) {
	if t := b.Terminator(); t != nil {
		b.InsertBefore(len(b.Instrs)-1, in)
		return
	}
	b.Append(in)
}

// SuccEdge returns the edge from b to t, or nil.
func (b *Block) SuccEdge(t *Block) *Edge {
	for _, e := range b.Succs {
		if e.To == t {
			return e
		}
	}
	return nil
}

// PredEdge returns the edge from f to b, or nil.
func (b *Block) PredEdge(f *Block) *Edge {
	for _, e := range b.Preds {
		if e.From == f {
			return e
		}
	}
	return nil
}

// ExecCount returns the block's dynamic execution count: the sum of
// incoming edge weights, or of outgoing weights for the entry block.
func (b *Block) ExecCount() int64 {
	if len(b.Preds) == 0 {
		var n int64
		for _, e := range b.Succs {
			n += e.Weight
		}
		if n == 0 && b.Func != nil && b == b.Func.Entry {
			return b.Func.EntryCount
		}
		return n
	}
	var n int64
	for _, e := range b.Preds {
		n += e.Weight
	}
	return n
}

// IsExit reports whether the block ends the procedure.
func (b *Block) IsExit() bool {
	t := b.Terminator()
	return t != nil && t.Op == OpRet
}

// String returns the block name.
func (b *Block) String() string { return b.Name }
