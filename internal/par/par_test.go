package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestLimit(t *testing.T) {
	if got := Limit(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Limit(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Limit(8, 3); got != 3 {
		t.Errorf("Limit(8, 3) = %d, want 3", got)
	}
	if got := Limit(-1, 0); got != 1 {
		t.Errorf("Limit(-1, 0) = %d, want 1", got)
	}
	if got := Limit(2, 100); got != 2 {
		t.Errorf("Limit(2, 100) = %d, want 2", got)
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 100
		var counts [n]atomic.Int64
		if err := Do(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Do(50, workers, func(i int) error {
			if i%10 == 3 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Errorf("workers=%d: err = %v, want fail at 3", workers, err)
		}
	}
}

// TestDoStopsDispatchOnError pins the early-cancel behavior: once an
// index fails, indices not yet claimed must never run. fn(0) fails
// immediately; fn(1) blocks until the failure is recorded, so by the
// time any worker returns to the counter the cancel flag is set and at
// most the two in-flight indices (plus one claim that raced the flag
// per worker) can have executed out of 10000.
func TestDoStopsDispatchOnError(t *testing.T) {
	const n = 10000
	failed := make(chan struct{})
	var executed atomic.Int64
	err := Do(n, 2, func(i int) error {
		executed.Add(1)
		switch i {
		case 0:
			close(failed)
			return errors.New("boom at 0")
		case 1:
			<-failed
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 0" {
		t.Fatalf("err = %v, want boom at 0", err)
	}
	if got := executed.Load(); got > 100 {
		t.Errorf("executed %d indices after early failure, want at most the in-flight handful", got)
	}
}

// TestDoStopsDispatchOnErrorSerial is the same contract on the serial
// path: the loop must return at the first failing index without
// running any later one.
func TestDoStopsDispatchOnErrorSerial(t *testing.T) {
	var executed int
	err := Do(100, 1, func(i int) error {
		executed++
		if i == 7 {
			return errors.New("boom at 7")
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 7" {
		t.Fatalf("err = %v, want boom at 7", err)
	}
	if executed != 8 {
		t.Errorf("executed %d indices, want 8 (0..7)", executed)
	}
}

// TestDoLowestIndexErrorSurvivesCancel forces a higher index to fail
// (and set the cancel flag) while a lower failing index is still in
// flight: the lower index's error must still be the one returned.
func TestDoLowestIndexErrorSurvivesCancel(t *testing.T) {
	sevenDone := make(chan struct{})
	err := Do(8, 2, func(i int) error {
		switch i {
		case 3:
			<-sevenDone // fail only after 7's error set the cancel flag
			return fmt.Errorf("fail at 3")
		case 7:
			defer close(sevenDone)
			return fmt.Errorf("fail at 7")
		}
		return nil
	})
	if err == nil || err.Error() != "fail at 3" {
		t.Errorf("err = %v, want fail at 3 (lowest failed index)", err)
	}
}

func TestDoZeroItems(t *testing.T) {
	if err := Do(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("Do over zero items: %v", err)
	}
}
