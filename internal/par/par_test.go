package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestLimit(t *testing.T) {
	if got := Limit(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Limit(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Limit(8, 3); got != 3 {
		t.Errorf("Limit(8, 3) = %d, want 3", got)
	}
	if got := Limit(-1, 0); got != 1 {
		t.Errorf("Limit(-1, 0) = %d, want 1", got)
	}
	if got := Limit(2, 100); got != 2 {
		t.Errorf("Limit(2, 100) = %d, want 2", got)
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 100
		var counts [n]atomic.Int64
		if err := Do(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := Do(50, workers, func(i int) error {
			if i%10 == 3 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Errorf("workers=%d: err = %v, want fail at 3", workers, err)
		}
	}
}

func TestDoZeroItems(t *testing.T) {
	if err := Do(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("Do over zero items: %v", err)
	}
}
