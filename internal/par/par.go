// Package par provides the bounded worker pool behind every
// concurrent stage of the pipeline: per-function register allocation
// and placement, and per-benchmark sharding in the measurement
// harness. Work items are independent, so the pool only has to bound
// concurrency and keep error reporting deterministic.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Limit resolves a parallelism request against an item count: n <= 0
// means GOMAXPROCS, and the result is clamped to [1, items] (with a
// floor of 1 even for zero items).
func Limit(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Do runs fn(0), ..., fn(n-1) across at most parallelism workers and
// waits for all of them. Workers pull indices from a shared counter,
// so long items do not serialize behind short ones. The returned
// error is the one from the lowest failed index — the same error the
// serial loop would hit first — regardless of scheduling order.
//
// Dispatch stops after the first error: indices not yet claimed when
// a failure is recorded never run (items already in flight finish
// normally). Because workers claim indices in ascending order, every
// index below a failed one was claimed before it, so early
// cancellation cannot skip a failure at a lower index and the
// lowest-failed-index guarantee is unaffected.
func Do(n, parallelism int, fn func(i int) error) error {
	workers := Limit(parallelism, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
