package tier_test

import (
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/tier"
	"repro/internal/vm"
)

// prep generates a hostile program and runs it through estimate +
// allocate — the state tier.Run expects its input in.
func prep(t *testing.T, seed uint64, mach *machine.Desc) *ir.Program {
	t.Helper()
	prog := irgen.Generate(seed, irgen.Hostile())
	profile.EstimateProgramMachine(prog, mach, nil)
	if _, err := regalloc.AllocateProgramParallel(prog, mach, 1); err != nil {
		t.Fatalf("seed %d: allocate: %v", seed, err)
	}
	return prog
}

// placeStatic aligns and places a clone with its current (static)
// weights — the untiered comparison arm.
func placeStatic(t *testing.T, prog *ir.Program, mach *machine.Desc) *ir.Program {
	t.Helper()
	p := prog.Clone()
	for _, f := range p.FuncsInOrder() {
		layout.Align(f)
	}
	if err := strategy.PlaceProgramFor(p, strategy.HierarchicalJump, mach, 1, nil); err != nil {
		t.Fatalf("static place: %v", err)
	}
	return p
}

// TestTieredMatchesUntieredValue: across hostile seeds, the tiered run
// returns exactly the value the untiered statically placed program
// computes, its merged statistics are the exact sum of the per-tier
// counters, and at a boundary tier 0 counted exactly the quantum.
func TestTieredMatchesUntieredValue(t *testing.T) {
	mach := machine.PARISC()
	const quantum = 500
	boundaries := 0
	for seed := uint64(0); seed < 12; seed++ {
		prog := prep(t, seed, mach)
		args := []int64{int64(seed % 7)}

		static := placeStatic(t, prog, mach)
		m := vm.New(static, vm.Config{Machine: mach})
		want, err := m.Run(args...)
		if err != nil {
			t.Fatalf("seed %d: untiered run: %v", seed, err)
		}

		res, err := tier.Run(prog, tier.Config{
			Machine:     mach,
			Strategy:    strategy.HierarchicalJump,
			Quantum:     quantum,
			Parallelism: 1,
			Engine:      vm.EngineRegcode,
		}, args...)
		if err != nil {
			t.Fatalf("seed %d: tiered run: %v", seed, err)
		}
		if res.Value != want {
			t.Errorf("seed %d: tiered value %d, untiered %d", seed, res.Value, want)
		}
		merged := res.Tier0.Snapshot()
		merged.Merge(&res.Tier1)
		if !reflect.DeepEqual(merged, res.Stats) {
			t.Errorf("seed %d: merged stats %+v != reported %+v", seed, merged, res.Stats)
		}
		if res.Boundary {
			boundaries++
			if res.Tier0.Instrs != quantum {
				t.Errorf("seed %d: tier 0 counted %d instrs at the boundary, want exactly %d",
					seed, res.Tier0.Instrs, quantum)
			}
			if res.Replaced == 0 && len(strategy.NeedsPlacement(res.Final)) > 0 {
				t.Errorf("seed %d: boundary hit but nothing re-placed", seed)
			}
		}
	}
	if boundaries < 6 {
		t.Errorf("only %d/12 hostile seeds hit a tier boundary at quantum %d; suite too short", boundaries, quantum)
	}
}

// TestTierStepAccountingAtHalt: a tiered run whose budget runs out
// must report the step-limit error with Stats.Instrs equal to the
// budget exactly — the same contract the untiered VM pins — both when
// tier 1 halts and when the quantum itself consumes the whole budget.
func TestTierStepAccountingAtHalt(t *testing.T) {
	mach := machine.PARISC()
	const quantum, budget = 400, 900
	checked := 0
	for seed := uint64(0); seed < 12 && checked < 4; seed++ {
		prog := prep(t, seed, mach)
		args := []int64{3}

		// Skip programs short enough to finish inside the budget.
		static := placeStatic(t, prog, mach)
		m := vm.New(static, vm.Config{Machine: mach})
		if _, err := m.Run(args...); err != nil || m.Stats.Instrs <= 2*budget {
			continue
		}
		checked++

		res, err := tier.Run(prog.Clone(), tier.Config{
			Machine:     mach,
			Strategy:    strategy.HierarchicalJump,
			Quantum:     quantum,
			MaxSteps:    budget,
			Parallelism: 1,
			Engine:      vm.EngineRegcode,
		}, args...)
		if !vm.IsStepLimit(err) {
			t.Fatalf("seed %d: want step-limit halt, got %v", seed, err)
		}
		if res == nil || res.Stats.Instrs != budget {
			t.Fatalf("seed %d: halted tiered run counted %d instrs, want exactly %d", seed, res.Stats.Instrs, budget)
		}
		if !res.Boundary || res.Tier0.Instrs != quantum || res.Tier1.Instrs != budget-quantum {
			t.Errorf("seed %d: tier split %d/%d, want %d/%d",
				seed, res.Tier0.Instrs, res.Tier1.Instrs, quantum, budget-quantum)
		}

		// Quantum == budget: tier 0 exhausts everything; the boundary
		// still installs the re-placed program, but tier 1 never runs.
		res, err = tier.Run(prog.Clone(), tier.Config{
			Machine:     mach,
			Strategy:    strategy.HierarchicalJump,
			Quantum:     budget,
			MaxSteps:    budget,
			Parallelism: 1,
			Engine:      vm.EngineRegcode,
		}, args...)
		if !vm.IsStepLimit(err) {
			t.Fatalf("seed %d: quantum==budget: want step-limit halt, got %v", seed, err)
		}
		if res == nil || res.Stats.Instrs != budget || res.Tier1.Instrs != 0 {
			t.Fatalf("seed %d: quantum==budget: counted %d (+%d tier-1), want %d (+0)",
				seed, res.Stats.Instrs, res.Tier1.Instrs, budget)
		}
	}
	if checked == 0 {
		t.Fatal("no hostile seed produced a program long enough to halt; lower the budget")
	}
}

// TestTierNoBoundaryIsUntiered: with a quantum the program finishes
// inside, tiering is the identity — same value, and the final program
// is byte-identical to the statically aligned and placed one.
func TestTierNoBoundaryIsUntiered(t *testing.T) {
	mach := machine.PARISC()
	for seed := uint64(0); seed < 6; seed++ {
		prog := prep(t, seed, mach)
		args := []int64{int64(seed % 5)}

		static := placeStatic(t, prog, mach)
		m := vm.New(static, vm.Config{Machine: mach})
		want, err := m.Run(args...)
		if err != nil {
			t.Fatalf("seed %d: untiered run: %v", seed, err)
		}

		res, err := tier.Run(prog, tier.Config{
			Machine:     mach,
			Strategy:    strategy.HierarchicalJump,
			Quantum:     1 << 26,
			Parallelism: 1,
			Engine:      vm.EngineRegcode,
		}, args...)
		if err != nil {
			t.Fatalf("seed %d: tiered run: %v", seed, err)
		}
		if res.Boundary {
			t.Fatalf("seed %d: boundary at quantum 1<<26", seed)
		}
		if res.Value != want {
			t.Errorf("seed %d: value %d, untiered %d", seed, res.Value, want)
		}
		if got, wantText := irtext.Print(res.Final), irtext.Print(static); got != wantText {
			t.Errorf("seed %d: no-boundary final program differs from the static placement", seed)
		}
	}
}

// TestTierEngineParity: the tiered pipeline is engine-invariant — for
// every engine the tiered run agrees with the tree reference on
// values, statistics, boundary counters, and the recompiled tier-1
// program byte for byte, and the tier-1 program itself holds engine
// parity on values, edge counts, and step-limit halts.
func TestTierEngineParity(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		prog := irgen.Generate(seed, irgen.Hostile())
		args := []int64{int64(seed % 7)}
		for _, e := range []vm.Engine{vm.EngineBytecode, vm.EngineRegcode} {
			for _, m := range irgen.TierParitySweep(prog, e, args, 700, 1<<22) {
				t.Errorf("seed %d: %s", seed, m)
			}
		}
	}
}
