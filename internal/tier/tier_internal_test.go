package tier

import (
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
)

// buildTestProgram hand-builds a two-procedure program with a hot
// call-carrying loop and a value live across the call, so allocation
// assigns a callee-saved register and placement has real work.
func buildTestProgram() *ir.Program {
	prog := ir.NewProgram()

	bu := ir.NewBuilder("p0", 1)
	bu.Block("entry")
	acc := bu.F.NewVirt()
	bu.Mov(acc, bu.F.Params[0])
	iv := bu.F.NewVirt()
	bu.ConstInto(iv, 0)
	header := bu.F.NewBlock("lp")
	exit := bu.F.NewBlock("dn")
	bu.Jmp(header, 0)
	bu.SetCurrent(header)
	three := bu.Const(3)
	bu.BinInto(ir.OpAdd, acc, acc, three)
	one := bu.Const(1)
	bu.BinInto(ir.OpAdd, iv, iv, one)
	tr := bu.Const(8)
	c := bu.Bin(ir.OpCmpLT, iv, tr)
	bu.Br(c, header, exit, 0, 0)
	bu.SetCurrent(exit)
	bu.Ret(acc)
	prog.Add(bu.Finish())

	bu = ir.NewBuilder("main", 1)
	bu.Block("entry")
	t := bu.F.NewVirt()
	bu.Mov(t, bu.F.Params[0])
	i := bu.F.NewVirt()
	bu.ConstInto(i, 0)
	loop := bu.F.NewBlock("loop")
	exit = bu.F.NewBlock("exit")
	bu.Jmp(loop, 0)
	bu.SetCurrent(loop)
	five := bu.Const(5)
	live := bu.Bin(ir.OpMul, t, five)
	r := bu.F.NewVirt()
	bu.Call(r, "p0", t)
	bu.BinInto(ir.OpAdd, t, r, live)
	mask := bu.Const(0xffff)
	bu.BinInto(ir.OpAnd, t, t, mask)
	one = bu.Const(1)
	bu.BinInto(ir.OpAdd, i, i, one)
	n := bu.Const(50)
	c = bu.Bin(ir.OpCmpLT, i, n)
	bu.Br(c, loop, exit, 0, 0)
	bu.SetCurrent(exit)
	bu.Ret(t)
	prog.Add(bu.Finish())

	prog.Main = "main"
	return prog
}

// TestStaticEqualProfileIsNoOp: the boundary's weight write-back with
// a profile equal to the static estimate must be the identity — the
// re-aligned, re-placed program is byte-identical to the statically
// aligned and placed one. The test replays the boundary mechanics on
// an unrun tier-0 clone: placement copies each split edge's weight
// onto its replacement edges, so mapping back through the recorded
// splits must reconstruct the original static weights exactly.
//
// testdata/noop.ir (a generator program pinned because its placement
// puts spill code on an edge) makes the edge-split mapping path
// non-vacuous; the hierarchical-exec strategy is the one that chooses
// the edge location under the estimated weights.
func TestStaticEqualProfileIsNoOp(t *testing.T) {
	mach := machine.PARISC()
	cfg := Config{Machine: mach, Strategy: strategy.HierarchicalExec, Parallelism: 1}

	src, err := os.ReadFile("testdata/noop.ir")
	if err != nil {
		t.Fatal(err)
	}
	base, err := irtext.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	profile.EstimateProgramMachine(base, mach, nil)
	if _, err := regalloc.AllocateProgramParallel(base, mach, 1); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	a := base.Clone()
	b := base.Clone()

	// Arm A: tier-0 clone placed exactly as Run places it, weights
	// mapped back without running (i.e. a measured profile that equals
	// the static estimate).
	p0 := a.Clone()
	corr, err := edgeCorrespondence(p0, a)
	if err != nil {
		t.Fatalf("correspondence: %v", err)
	}
	for _, f := range p0.FuncsInOrder() {
		layout.Align(f)
	}
	splitFrom, err := placeWithSplits(p0, cfg, analysis.NewCache())
	if err != nil {
		t.Fatalf("tier-0 placement: %v", err)
	}
	if len(splitFrom) == 0 {
		t.Fatal("placement split no edges; the no-op check is vacuous")
	}
	for e0, e := range corr {
		if fe := splitFrom[e0]; fe != nil {
			e.Weight = fe.Weight
		} else {
			e.Weight = e0.Weight
		}
	}

	// The write-back must have reconstructed the static weights bit
	// for bit before any re-placement happens.
	ae, be := a.FuncsInOrder(), b.FuncsInOrder()
	for i := range ae {
		aEdges, bEdges := ae[i].Edges(), be[i].Edges()
		for j := range aEdges {
			if aEdges[j].Weight != bEdges[j].Weight {
				t.Fatalf("%s edge %d: mapped weight %d != static %d",
					ae[i].Name, j, aEdges[j].Weight, bEdges[j].Weight)
			}
		}
	}

	if err := alignAndPlace(a, cfg, nil); err != nil {
		t.Fatalf("arm A: %v", err)
	}
	if err := alignAndPlace(b, cfg, nil); err != nil {
		t.Fatalf("arm B: %v", err)
	}
	if got, want := irtext.Print(a), irtext.Print(b); got != want {
		t.Errorf("static-equal tiering is not a no-op:\n-- tiered --\n%s\n-- static --\n%s", got, want)
	}
}
