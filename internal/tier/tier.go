// Package tier implements a two-tier, JIT-style execution pipeline
// over the placement stack: tier 0 compiles the program with
// static-estimate edge weights and runs it under lightweight edge
// profiling for a bounded step quantum; at the tier boundary the
// measured edge counts are written back onto the CFG, layout.Align
// re-chains blocks hottest-fall-through, the affected functions are
// re-placed through the delta-aware analysis cache path, and execution
// resumes on the freshly compiled tier-1 program with the remaining
// step budget.
//
// The tier contract:
//
//   - Tier 0 executes at most Quantum steps. If the program finishes
//     inside the quantum there is no boundary: the final program keeps
//     the static placement tier 0 ran, and the result is exactly the
//     untiered result.
//   - At a boundary, tier 1 restarts the re-placed program from the
//     beginning on a fresh VM (programs are deterministic and
//     self-contained, so a restart recomputes the same value; there is
//     no on-stack replacement). Merged statistics are the exact sum of
//     both tiers.
//   - Step budgets carry over exactly: every engine halts with
//     Stats.Instrs == MaxSteps (see vm.ErrStepLimit), so tier 1's
//     budget is MaxSteps - Quantum and a tiered run never executes
//     more than MaxSteps counted steps in total.
package tier

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/strategy"
	"repro/internal/vm"
)

// DefaultQuantum is the tier-0 step budget when Config.Quantum is
// zero: long enough that loop-heavy regions reach their steady-state
// branch behavior, short next to any real execution budget.
const DefaultQuantum int64 = 1 << 16

// Config controls a tiered run.
type Config struct {
	// Machine prices placement and enables the VM's callee-saved
	// convention checking. Nil means the paper's unit-cost machine and
	// no convention enforcement.
	Machine *machine.Desc
	// Strategy is the placement technique both tiers use.
	Strategy strategy.Strategy
	// Quantum is the tier-0 step budget (default DefaultQuantum). It
	// is clamped to MaxSteps.
	Quantum int64
	// MaxSteps is the total execution budget across both tiers (zero
	// means vm.DefaultMaxSteps).
	MaxSteps int64
	// Parallelism bounds the per-function placement worker pool; <= 0
	// means GOMAXPROCS.
	Parallelism int
	// Cache is the shared analysis cache the final program's placement
	// runs through (the delta-aware strategy.PlaceCachedFor path). May
	// be nil. The throwaway tier-0 clone always uses a private cache so
	// its short-lived functions never pin entries in a shared one.
	Cache *analysis.Cache
	// NoAlign disables the layout.Align step. By default both tiers
	// align: tier 0 with the static weights, tier 1 with the measured
	// ones, so a measured-vs-static comparison isolates profile
	// quality rather than alignment itself.
	NoAlign bool
	// Engine selects the VM engine for both tiers. The zero value is
	// the VM default (bytecode); callers wanting the tiered pipeline's
	// native engine pass vm.EngineRegcode, as the facade and CLI do —
	// regcode counts edges in its fast path, so profiling tier 0 costs
	// no fallback to a slower engine.
	Engine vm.Engine
}

// Result reports a tiered execution.
type Result struct {
	// Final is the program that holds after the run: the input program
	// itself, mutated — measured weights on its edges at a boundary,
	// aligned unless NoAlign, and placed.
	Final *ir.Program
	// Value is the program result. Valid only when Run returned nil.
	Value int64
	// Stats is the exact sum of both tiers' counters.
	Stats vm.Stats
	// Tier0 and Tier1 are the per-tier counters (Tier1 is zero when no
	// boundary was hit).
	Tier0, Tier1 vm.Stats
	// Boundary reports whether tier 0 exhausted its quantum and the
	// program was re-placed and re-run.
	Boundary bool
	// Realigned counts functions whose block order changed at the
	// boundary's measured-weight alignment.
	Realigned int
	// Replaced counts functions re-placed at the boundary.
	Replaced int
}

// Run executes prog through the tiered pipeline. prog must be
// allocated but not yet placed, and carry static-estimate edge weights
// (profile.EstimateProgramMachine); Run mutates it into the final
// tier-1 program. On a step-limit halt the returned error wraps
// vm.ErrStepLimit and the Result still carries the exact merged
// statistics (Stats.Instrs equals the total budget).
func Run(prog *ir.Program, cfg Config, args ...int64) (*Result, error) {
	budget := cfg.MaxSteps
	if budget <= 0 {
		budget = vm.DefaultMaxSteps
	}
	quantum := cfg.Quantum
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	if quantum > budget {
		quantum = budget
	}

	// Tier 0 runs a throwaway clone so the input program stays
	// unplaced until the boundary decides its final weights. The edge
	// correspondence is taken before any mutation: Clone preserves
	// block and edge order, so the two Edges() lists pair by index.
	p0 := prog.Clone()
	corr, err := edgeCorrespondence(p0, prog)
	if err != nil {
		return nil, err
	}
	if !cfg.NoAlign {
		for _, f := range p0.FuncsInOrder() {
			layout.Align(f)
		}
	}
	splitFrom, err := placeWithSplits(p0, cfg, analysis.NewCache())
	if err != nil {
		return nil, fmt.Errorf("tier: tier 0 placement: %w", err)
	}

	st0, val, completed, err := profile.CollectPartial(p0, vm.Config{
		Machine:  cfg.Machine,
		MaxSteps: quantum,
		Engine:   cfg.Engine,
	}, args...)
	if err != nil {
		return nil, fmt.Errorf("tier: tier 0 run: %w", err)
	}

	res := &Result{Final: prog, Tier0: st0.Snapshot()}
	res.Stats = st0.Snapshot()

	if completed {
		// No boundary. Give prog the placement tier 0 actually ran —
		// the static one — through the shared cache, so the caller ends
		// in the same state as an untiered pipeline.
		if err := alignAndPlace(prog, cfg, nil); err != nil {
			return nil, err
		}
		res.Value = val
		return res, nil
	}
	res.Boundary = true

	// Boundary: map the measured counts from the placed clone back
	// onto prog's pre-placement edges. A surviving edge carries its
	// count directly; a placement-split edge u->v became u->jb->v, and
	// every traversal of the original edge crossed u->jb, so that
	// edge's count is the original's.
	for e0, e := range corr {
		if fe := splitFrom[e0]; fe != nil {
			e.Weight = fe.Weight
		} else {
			e.Weight = e0.Weight
		}
	}
	for _, f := range prog.FuncsInOrder() {
		f.EntryCount = st0.Calls[f.Name]
	}

	if err := alignAndPlace(prog, cfg, res); err != nil {
		return nil, err
	}
	res.Replaced = len(strategy.NeedsPlacement(prog))

	remaining := budget - st0.Instrs // == budget - quantum: halts count exactly MaxSteps
	if remaining <= 0 {
		// The quantum was the whole budget: the re-placed program is
		// installed but there is nothing left to run it with. Report
		// the halt the way an untiered run at this budget would.
		return res, fmt.Errorf("tier: tier 0 exhausted the budget: %w", vm.ErrStepLimit)
	}

	m := vm.New(prog, vm.Config{Machine: cfg.Machine, MaxSteps: remaining, Engine: cfg.Engine})
	val, err = m.Run(args...)
	res.Tier1 = m.Stats.Snapshot()
	res.Stats.Merge(&res.Tier1)
	if err != nil {
		// Typically the step limit: tier 1 counted exactly `remaining`
		// steps, so the merged Stats.Instrs equals the full budget.
		return res, fmt.Errorf("tier: tier 1: %w", err)
	}
	res.Value = val
	return res, nil
}

// alignAndPlace aligns every function (unless NoAlign), invalidating
// the shared cache for reordered analyses, then places the program
// through the delta-aware shared-cache path. When res is non-nil the
// alignment change count is recorded on it.
func alignAndPlace(prog *ir.Program, cfg Config, res *Result) error {
	if !cfg.NoAlign {
		for _, f := range prog.FuncsInOrder() {
			if alignFunc(f) && res != nil {
				res.Realigned++
			}
			// Align renumbers blocks and reclassifies edge kinds, so
			// any ID-indexed memoized analysis of f is stale.
			cfg.Cache.Invalidate(f)
		}
	}
	if err := strategy.PlaceProgramFor(prog, cfg.Strategy, cfg.Machine, cfg.Parallelism, cfg.Cache); err != nil {
		return fmt.Errorf("tier: placement: %w", err)
	}
	return nil
}

// alignFunc runs layout.Align and reports whether the block order
// actually changed.
func alignFunc(f *ir.Func) bool {
	before := append([]*ir.Block(nil), f.Blocks...)
	layout.Align(f)
	for i, b := range f.Blocks {
		if before[i] != b {
			return true
		}
	}
	return false
}

// edgeCorrespondence pairs src's edges with dst's by function order
// and edge index — valid because ir clones preserve block layout and
// edge order — returning a pointer map that survives any later
// reordering of either program.
func edgeCorrespondence(src, dst *ir.Program) (map[*ir.Edge]*ir.Edge, error) {
	sf, df := src.FuncsInOrder(), dst.FuncsInOrder()
	if len(sf) != len(df) {
		return nil, fmt.Errorf("tier: program shape mismatch: %d vs %d functions", len(sf), len(df))
	}
	m := make(map[*ir.Edge]*ir.Edge)
	for i := range sf {
		se, de := sf[i].Edges(), df[i].Edges()
		if len(se) != len(de) {
			return nil, fmt.Errorf("tier: %s: edge count mismatch: %d vs %d", sf[i].Name, len(se), len(de))
		}
		for j := range se {
			m[se[j]] = de[j]
		}
	}
	return m, nil
}

// placeWithSplits is the tier-0 variant of strategy.PlaceProgramFor:
// the same compute/validate/apply-with-delta pipeline per function,
// but it keeps each delta's edge splits so the boundary can map counts
// measured on the placed clone back onto pre-placement edges.
func placeWithSplits(prog *ir.Program, cfg Config, cache *analysis.Cache) (map[*ir.Edge]*ir.Edge, error) {
	funcs := strategy.NeedsPlacement(prog)
	splits := make([][]core.EdgeSplit, len(funcs))
	err := par.Do(len(funcs), cfg.Parallelism, func(i int) error {
		f := funcs[i]
		info := cache.For(f)
		sets, err := strategy.ComputeCachedFor(f, cfg.Strategy, info, cfg.Machine)
		if err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		if err := core.ValidateSetsLive(f, sets, info.Liveness()); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		delta, err := core.ApplyWithDelta(f, sets)
		info.ApplyDelta(delta)
		if err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
		splits[i] = delta.Splits
		return nil
	})
	if err != nil {
		return nil, err
	}
	splitFrom := make(map[*ir.Edge]*ir.Edge)
	for _, ss := range splits {
		for _, s := range ss {
			splitFrom[s.OldEdge] = s.FromEdge
		}
	}
	return splitFrom, nil
}
