package profile

import (
	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Estimate synthesizes edge weights without running the program, the
// way compilers fall back to static branch prediction when no profile
// exists: the function is entered baseScale times, branches split
// evenly, and each loop level multiplies frequency by loopFactor. The
// paper's central claim is that real profile data is what lets the
// hierarchical algorithm find minimum-cost placements; running the
// pipeline with estimated weights instead quantifies how much of the
// win survives static estimation (see the estimate-vs-profile
// experiment in internal/bench).
func Estimate(f *ir.Func, baseScale, loopFactor int64) {
	EstimateInfo(analysis.For(f), baseScale, loopFactor)
}

// EstimateInfo is Estimate over the shared analysis layer: the
// dominator tree and loop forest come from info instead of being
// rebuilt. Estimation only rewrites edge weights — no memoized
// structural analysis depends on those — so info stays valid.
func EstimateInfo(info *analysis.Info, baseScale, loopFactor int64) {
	f := info.Func()
	dom := info.Dom()
	loops := info.Loops()

	// Block frequency: baseScale * loopFactor^depth.
	freq := make([]int64, len(f.Blocks))
	for _, b := range f.Blocks {
		w := baseScale
		for d := loops.DepthOf[b.ID]; d > 0; d-- {
			w *= loopFactor
		}
		freq[b.ID] = w
	}

	for _, b := range f.Blocks {
		n := len(b.Succs)
		if n == 0 {
			continue
		}
		// Split the block's frequency across successors, biasing back
		// edges so header frequencies stay consistent with the loop
		// multiplier: a back edge keeps (loopFactor-1)/loopFactor of
		// the iterations, the exit edge gets the rest.
		var backs, fwd []*ir.Edge
		for _, e := range b.Succs {
			if dom.Dominates(e.To, b) {
				backs = append(backs, e)
			} else {
				fwd = append(fwd, e)
			}
		}
		w := freq[b.ID]
		if len(backs) > 0 && len(fwd) > 0 {
			backShare := w * (loopFactor - 1) / loopFactor
			for _, e := range backs {
				e.Weight = backShare / int64(len(backs))
			}
			rest := w - backShare
			for _, e := range fwd {
				e.Weight = rest / int64(len(fwd))
			}
			continue
		}
		for _, e := range b.Succs {
			e.Weight = w / int64(n)
		}
	}
	f.EntryCount = baseScale
}

// EstimateMachine is Estimate driven by the machine description's
// static-estimation parameters instead of caller-chosen constants, so
// the estimator reads the same machine model as the placement cost
// models and the VM's weighted accounting (machine.DefaultEstimate
// when the description leaves them unset).
func EstimateMachine(f *ir.Func, d *machine.Desc) {
	p := d.EstimateParams()
	Estimate(f, p.BaseScale, p.LoopFactor)
}

// EstimateProgramMachine is EstimateMachine over a whole program and
// an optional shared analysis cache (nil means no sharing).
func EstimateProgramMachine(p *ir.Program, d *machine.Desc, cache *analysis.Cache) {
	ep := d.EstimateParams()
	EstimateProgramCached(p, ep.BaseScale, ep.LoopFactor, cache)
}

// EstimateProgram applies Estimate to every function, scaling each by
// a uniform invocation count.
func EstimateProgram(p *ir.Program, baseScale, loopFactor int64) {
	EstimateProgramCached(p, baseScale, loopFactor, nil)
}

// EstimateProgramCached is EstimateProgram over a shared analysis
// cache: cache may be nil (no sharing); passing the pipeline's
// analysis.Cache lets later passes reuse the dominator trees and loop
// forests estimation builds. No in-repo caller passes one yet — it is
// the extension point for the ROADMAP's cross-run reuse item.
func EstimateProgramCached(p *ir.Program, baseScale, loopFactor int64, cache *analysis.Cache) {
	for _, f := range p.FuncsInOrder() {
		EstimateInfo(cache.For(f), baseScale, loopFactor)
	}
}
