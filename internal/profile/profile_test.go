package profile

import (
	"testing"

	"repro/internal/ir"
)

// countdown builds main(n): loop calling helper(i) n times; helper
// branches on parity.
func countdown() *ir.Program {
	p := ir.NewProgram()

	hb := ir.NewBuilder("helper", 1)
	entry := hb.Block("entry")
	odd := hb.F.NewBlock("odd")
	even := hb.F.NewBlock("even")
	hb.SetCurrent(entry)
	two := hb.Const(2)
	r := hb.Bin(ir.OpRem, hb.F.Params[0], two)
	hb.Br(r, odd, even, 0, 0)
	hb.SetCurrent(odd)
	one := hb.Const(1)
	v := hb.Bin(ir.OpAdd, hb.F.Params[0], one)
	hb.Ret(v)
	hb.SetCurrent(even)
	hb.Ret(hb.F.Params[0])
	p.Add(hb.Finish())

	mb := ir.NewBuilder("main", 1)
	me := mb.Block("entry")
	loop := mb.F.NewBlock("loop")
	exit := mb.F.NewBlock("exit")
	mb.SetCurrent(me)
	i := mb.F.NewVirt()
	sum := mb.F.NewVirt()
	mb.ConstInto(i, 0)
	mb.ConstInto(sum, 0)
	mb.Jmp(loop, 0)
	mb.SetCurrent(loop)
	h := mb.F.NewVirt()
	mb.Call(h, "helper", i)
	mb.BinInto(ir.OpAdd, sum, sum, h)
	one = mb.Const(1)
	mb.BinInto(ir.OpAdd, i, i, one)
	c := mb.Bin(ir.OpCmpLT, i, mb.F.Params[0])
	mb.Br(c, loop, exit, 0, 0)
	mb.SetCurrent(exit)
	mb.Ret(sum)
	p.Add(mb.Finish())
	p.Main = "main"
	return p
}

func TestCollectAndConsistency(t *testing.T) {
	p := countdown()
	stats, err := Collect(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Calls["helper"] != 10 {
		t.Errorf("helper invocations = %d, want 10", stats.Calls["helper"])
	}
	h := p.Func("helper")
	if h.EntryCount != 10 {
		t.Errorf("helper EntryCount = %d, want 10", h.EntryCount)
	}
	// helper sees i = 0..9: 5 odd, 5 even.
	entry := h.BlockByName("entry")
	oddE := entry.SuccEdge(h.BlockByName("odd"))
	evenE := entry.SuccEdge(h.BlockByName("even"))
	if oddE.Weight != 5 || evenE.Weight != 5 {
		t.Errorf("odd/even weights = %d/%d, want 5/5", oddE.Weight, evenE.Weight)
	}
	// Main's loop executed 10 times.
	m := p.Func("main")
	loop := m.BlockByName("loop")
	if loop.ExecCount() != 10 {
		t.Errorf("loop exec count = %d, want 10", loop.ExecCount())
	}
	if err := Consistent(p); err != nil {
		t.Errorf("profile inconsistent: %v", err)
	}
}

func TestConsistentDetectsCorruption(t *testing.T) {
	p := countdown()
	if _, err := Collect(p, 10); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry edge (a self-edge would stay consistent since
	// it raises in and out counts together).
	m := p.Func("main")
	m.Entry.Succs[0].Weight += 5
	if err := Consistent(p); err == nil {
		t.Error("Consistent should detect flow corruption")
	}
}
