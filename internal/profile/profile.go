// Package profile collects edge profiles by instrumented execution and
// applies them to a program's CFG edge weights, standing in for the
// SPEC profiling runs the paper uses.
package profile

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/vm"
)

// Collect runs the program on the given arguments and writes the
// observed execution counts onto every CFG edge (Edge.Weight) and
// every function's EntryCount. It returns the VM statistics of the
// profiling run.
func Collect(prog *ir.Program, args ...int64) (*vm.Stats, error) {
	return CollectWithConfig(prog, vm.Config{}, args...)
}

// CollectWithConfig is Collect with control over the profiling VM —
// the fuzzing oracle caps MaxSteps so a reduced-but-nonterminating
// candidate is rejected quickly instead of spinning for the default
// step budget. CollectEdges is forced on.
func CollectWithConfig(prog *ir.Program, cfg vm.Config, args ...int64) (*vm.Stats, error) {
	cfg.CollectEdges = true
	m := vm.New(prog, cfg)
	if _, err := m.Run(args...); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	for _, f := range prog.FuncsInOrder() {
		f.EntryCount = m.Stats.Calls[f.Name]
		for _, b := range f.Blocks {
			for _, e := range b.Succs {
				e.Weight = m.EdgeCount[e]
			}
		}
	}
	return &m.Stats, nil
}

// CollectPartial runs the program under edge profiling for at most the
// configured step budget and writes whatever counts were observed onto
// the CFG — even when the run halts at the step limit. It is the
// profiling primitive of the tiered pipeline (internal/tier): tier 0
// runs for a bounded quantum, and the partial counts collected up to
// the halt drive re-layout and re-placement for tier 1.
//
// The returned stats and value describe the (possibly truncated) run;
// completed reports whether the program ran to the end. Unlike
// CollectWithConfig, a step-limit halt is not an error — only other
// execution failures are. A partial profile generally violates flow
// conservation (the halting path's counts are cut mid-flight), so
// callers must not expect Consistent to hold.
func CollectPartial(prog *ir.Program, cfg vm.Config, args ...int64) (stats *vm.Stats, value int64, completed bool, err error) {
	cfg.CollectEdges = true
	m := vm.New(prog, cfg)
	value, err = m.Run(args...)
	switch {
	case err == nil:
		completed = true
	case vm.IsStepLimit(err):
		err = nil
	default:
		return nil, 0, false, fmt.Errorf("profile: %w", err)
	}
	for _, f := range prog.FuncsInOrder() {
		f.EntryCount = m.Stats.Calls[f.Name]
		for _, b := range f.Blocks {
			for _, e := range b.Succs {
				e.Weight = m.EdgeCount[e]
			}
		}
	}
	return &m.Stats, value, completed, nil
}

// Consistent checks flow conservation of the profile on every
// function: for each non-entry, non-exit block the sum of incoming
// edge counts equals the sum of outgoing counts, and the entry block's
// outgoing count equals the function's entry count.
func Consistent(prog *ir.Program) error {
	for _, f := range prog.FuncsInOrder() {
		for _, b := range f.Blocks {
			var in, out int64
			for _, e := range b.Preds {
				in += e.Weight
			}
			for _, e := range b.Succs {
				out += e.Weight
			}
			if b == f.Entry {
				in = f.EntryCount
			}
			if b.IsExit() {
				continue
			}
			if in != out {
				return fmt.Errorf("profile: %s.%s: in %d != out %d", f.Name, b.Name, in, out)
			}
		}
	}
	return nil
}
