package dataflow

import (
	"repro/internal/ir"
)

// PatchApply updates a memoized Liveness in place after a spill-code
// application edit (core.Apply): in-block save/restore insertions into
// the dirty blocks plus edge splits that inserted the newTo blocks
// (each mapping to the successor it jumps to). The edit only touches
// regs, so every other register's bits are carried over unchanged;
// the touched registers' bits are re-solved to the least fixpoint,
// which makes the patched sets bit-for-bit identical to a from-scratch
// ComputeLiveness of the edited function.
//
// oldID maps every pre-existing block to its pre-edit ID (the edit
// renumbers blocks). Reports false — leaving lv unusable — if the
// inputs do not describe lv's function; callers must then rebuild.
func (lv *Liveness) PatchApply(f *ir.Func, oldID map[*ir.Block]int, newTo map[*ir.Block]*ir.Block, dirty []*ir.Block, regs []ir.Reg) bool {
	nb := len(f.Blocks)
	in := make([]*BitSet, nb)
	out := make([]*BitSet, nb)
	use := make([]*BitSet, nb)
	def := make([]*BitSet, nb)

	// Re-index the carried-over sets from old IDs to new IDs.
	for _, b := range f.Blocks {
		if _, isNew := newTo[b]; isNew {
			continue
		}
		id, ok := oldID[b]
		if !ok || id < 0 || id >= len(lv.In) {
			return false
		}
		in[b.ID], out[b.ID] = lv.In[id], lv.Out[id]
		use[b.ID], def[b.ID] = lv.use[id], lv.def[id]
	}
	// A new block nb sits on a split edge From->To: its only successor
	// is To and it defines/uses only the edited registers, so for every
	// untouched register In[nb] = Out[nb] = In[To]. The touched bits
	// are re-solved below.
	for b, to := range newTo {
		src := in[to.ID]
		if src == nil || b.ID < 0 || b.ID >= nb {
			return false
		}
		in[b.ID] = src.Clone()
		out[b.ID] = src.Clone()
	}
	lv.In, lv.Out, lv.use, lv.def = in, out, use, def

	// Instructions changed only in the dirty and the new blocks.
	for _, b := range dirty {
		lv.use[b.ID], lv.def[b.ID] = blockUseDef(b, lv.n)
	}
	for b := range newTo {
		lv.use[b.ID], lv.def[b.ID] = blockUseDef(b, lv.n)
	}

	// Liveness decomposes per register bit, so the touched registers
	// can be re-solved alone: clear their bits everywhere and iterate
	// the backward fixpoint restricted to the mask. Starting those bits
	// from bottom yields the least fixpoint — exactly what a full
	// ComputeLiveness computes — while every other bit keeps its
	// (unchanged) solution.
	mask := NewBitSet(lv.n)
	for _, r := range regs {
		mask.Set(regIndex(r))
	}
	for _, b := range f.Blocks {
		lv.In[b.ID].Subtract(mask)
		lv.Out[b.ID].Subtract(mask)
	}
	post := postorder(f)
	tmp := NewBitSet(lv.n)
	tmp2 := NewBitSet(lv.n)
	changed := true
	for changed {
		changed = false
		for _, b := range post {
			o := lv.Out[b.ID]
			for _, e := range b.Succs {
				tmp.CopyFrom(lv.In[e.To.ID])
				tmp.Intersect(mask)
				if o.Union(tmp) {
					changed = true
				}
			}
			// masked in = (use ∩ mask) ∪ ((out ∩ mask) − def)
			tmp.CopyFrom(o)
			tmp.Intersect(mask)
			tmp.Subtract(lv.def[b.ID])
			tmp2.CopyFrom(lv.use[b.ID])
			tmp2.Intersect(mask)
			tmp.Union(tmp2)
			if lv.In[b.ID].Union(tmp) {
				changed = true
			}
		}
	}
	return true
}
