package dataflow

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Error("Set/Has broken")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Clear broken")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("ForEach = %v", got)
	}
	c := s.Clone()
	if !c.Equal(s) {
		t.Error("Clone not equal")
	}
	c.Set(5)
	if c.Equal(s) {
		t.Error("Clone shares storage")
	}
}

func TestBitSetOps(t *testing.T) {
	a, b := NewBitSet(100), NewBitSet(100)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)
	u := a.Clone()
	if !u.Union(b) {
		t.Error("Union should report change")
	}
	if u.Count() != 3 {
		t.Errorf("union count = %d", u.Count())
	}
	if u.Union(b) {
		t.Error("second Union should be no-op")
	}
	i := a.Clone()
	if !i.Intersect(b) {
		t.Error("Intersect should report change")
	}
	if i.Count() != 1 || !i.Has(2) {
		t.Error("Intersect wrong")
	}
	d := a.Clone()
	d.Subtract(b)
	if d.Count() != 1 || !d.Has(1) {
		t.Error("Subtract wrong")
	}
}

func TestBitSetFill(t *testing.T) {
	s := NewBitSet(70)
	s.Fill()
	if s.Count() != 70 {
		t.Errorf("Fill count = %d, want 70", s.Count())
	}
	s.Reset()
	if s.Count() != 0 {
		t.Error("Reset broken")
	}
}

func TestBitSetProperties(t *testing.T) {
	// Union is idempotent and commutative on Count; Subtract then
	// Union restores a superset relation.
	f := func(xs, ys []uint8) bool {
		a, b := NewBitSet(256), NewBitSet(256)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		u1 := a.Clone()
		u1.Union(b)
		u2 := b.Clone()
		u2.Union(a)
		if !u1.Equal(u2) {
			return false
		}
		// |A ∪ B| + |A ∩ B| == |A| + |B|
		in := a.Clone()
		in.Intersect(b)
		return u1.Count()+in.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildLinear constructs: entry: v0=1; v1=v0+v0; loop: v2=v1+v0;
// br -> loop|exit; exit: ret v2.
func buildLinear() *ir.Func {
	bu := ir.NewBuilder("lv", 0)
	entry := bu.Block("entry")
	loop := bu.F.NewBlock("loop")
	exit := bu.F.NewBlock("exit")

	bu.SetCurrent(entry)
	v0 := bu.Const(1)
	v1 := bu.Bin(ir.OpAdd, v0, v0)
	bu.Jmp(loop, 1)

	bu.SetCurrent(loop)
	v2 := bu.Bin(ir.OpAdd, v1, v0)
	bu.Br(v2, loop, exit, 9, 1)

	bu.SetCurrent(exit)
	bu.Ret(v2)
	return bu.Finish()
}

func TestLiveness(t *testing.T) {
	f := buildLinear()
	lv := ComputeLiveness(f)
	loop := f.BlockByName("loop")
	exit := f.BlockByName("exit")
	v0, v1, v2 := int(ir.VirtBase), int(ir.VirtBase)+1, int(ir.VirtBase)+2

	// v0 and v1 are live into the loop (used there); v2 live into exit.
	if !lv.In[loop.ID].Has(v0) || !lv.In[loop.ID].Has(v1) {
		t.Error("v0,v1 should be live into loop")
	}
	if !lv.In[exit.ID].Has(v2) {
		t.Error("v2 should be live into exit")
	}
	if lv.In[exit.ID].Has(v0) {
		t.Error("v0 should be dead at exit")
	}
	// Loop-carried: v0, v1 live out of loop (back edge) and v2 too.
	if !lv.Out[loop.ID].Has(v0) || !lv.Out[loop.ID].Has(v1) || !lv.Out[loop.ID].Has(v2) {
		t.Error("loop out set wrong")
	}
	// Entry has nothing live in.
	if lv.In[f.Entry.ID].Count() != 0 {
		t.Errorf("entry live-in = %d regs, want 0", lv.In[f.Entry.ID].Count())
	}
}

func TestLiveAt(t *testing.T) {
	f := buildLinear()
	lv := ComputeLiveness(f)
	entry := f.Entry
	at := lv.LiveAt(entry)
	if len(at) != len(entry.Instrs) {
		t.Fatalf("LiveAt length %d, want %d", len(at), len(entry.Instrs))
	}
	v0 := int(ir.VirtBase)
	// Before the first instruction (v0 = const 1), v0 is not live.
	if at[0].Has(v0) {
		t.Error("v0 live before its definition")
	}
	// Before the add (v1 = v0+v0), v0 is live.
	if !at[1].Has(v0) {
		t.Error("v0 should be live before its use")
	}
}

func TestGenericForwardMust(t *testing.T) {
	// Availability-style: a fact set at entry survives along all paths
	// until a block kills it. Graph: A -> B,C -> D; C kills fact 0.
	bu := ir.NewBuilder("avail", 0)
	a := bu.Block("A")
	b := bu.F.NewBlock("B")
	c := bu.F.NewBlock("C")
	d := bu.F.NewBlock("D")
	bu.SetCurrent(a)
	cv := bu.Const(1)
	bu.Br(cv, b, c, 1, 1)
	bu.SetCurrent(b)
	bu.Jmp(d, 1)
	bu.SetCurrent(c)
	bu.Jmp(d, 1)
	bu.SetCurrent(d)
	bu.Ret(ir.NoReg)
	f := bu.Finish()

	sol := Solve(f, &Problem{
		Forward:  true,
		Union:    false,
		Universe: 2,
		Init: func(blk *ir.Block, v *BitSet) {
			if blk == f.Entry {
				v.Set(0)
				v.Set(1)
			}
		},
		Boundary: func(blk *ir.Block, v *BitSet) { v.Set(0); v.Set(1) },
		Transfer: func(blk *ir.Block, v *BitSet) {
			if blk.Name == "C" {
				v.Clear(0)
			}
		},
	})
	if !sol.In[b.ID].Has(0) {
		t.Error("fact 0 available into B")
	}
	if sol.In[d.ID].Has(0) {
		t.Error("fact 0 must not be available into D (killed on C path)")
	}
	if !sol.In[d.ID].Has(1) {
		t.Error("fact 1 available into D on all paths")
	}
}
