// Package dataflow implements the bit-vector dataflow analyses the
// register allocator and both spill placement algorithms rely on:
// a generic iterative solver, liveness, and web construction.
package dataflow

import "math/bits"

// BitSet is a fixed-capacity bit vector.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty set over the universe [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (s *BitSet) Len() int { return s.n }

// Set adds i to the set.
func (s *BitSet) Set(i int) { s.words[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (s *BitSet) Clear(i int) { s.words[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (s *BitSet) Has(i int) bool { return s.words[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of elements.
func (s *BitSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CopyFrom overwrites s with t.
func (s *BitSet) CopyFrom(t *BitSet) { copy(s.words, t.words) }

// Union adds every element of t; reports whether s changed.
func (s *BitSet) Union(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersect keeps only elements also in t; reports whether s changed.
func (s *BitSet) Intersect(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] & w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Subtract removes every element of t.
func (s *BitSet) Subtract(t *BitSet) {
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Equal reports set equality.
func (s *BitSet) Equal(t *BitSet) bool {
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Fill adds every element of the universe.
func (s *BitSet) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Mask tail bits beyond n.
	if rem := s.n % 64; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Reset removes every element.
func (s *BitSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for every element in ascending order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// Clone returns a copy.
func (s *BitSet) Clone() *BitSet {
	c := NewBitSet(s.n)
	copy(c.words, s.words)
	return c
}
