package dataflow

import (
	"repro/internal/ir"
)

// regIndex maps registers (physical and virtual) to dense indices for
// bit vectors: physical registers keep their numbers, virtual register
// k maps to int(ir.VirtBase) + k.
func regIndex(r ir.Reg) int { return int(r) }

// Universe returns the bit-vector universe size for a function: large
// enough for all physical registers and the function's virtuals.
func Universe(f *ir.Func) int { return int(ir.VirtBase) + f.NumVirt }

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	In  []*BitSet // indexed by block ID
	Out []*BitSet
	use []*BitSet
	def []*BitSet
	n   int
}

// ComputeLiveness runs backward liveness over all registers. Calls are
// treated as using their argument registers and defining their result
// register; post-allocation callers should use machine-aware variants
// that add clobbers (see regalloc).
func ComputeLiveness(f *ir.Func) *Liveness {
	n := Universe(f)
	lv := &Liveness{n: n}
	nb := len(f.Blocks)
	lv.In = make([]*BitSet, nb)
	lv.Out = make([]*BitSet, nb)
	lv.use = make([]*BitSet, nb)
	lv.def = make([]*BitSet, nb)
	for _, b := range f.Blocks {
		lv.use[b.ID], lv.def[b.ID] = blockUseDef(b, n)
		lv.In[b.ID] = NewBitSet(n)
		lv.Out[b.ID] = NewBitSet(n)
	}
	// Iterate to fixpoint in postorder (backward problem).
	post := postorder(f)
	changed := true
	tmp := NewBitSet(n)
	for changed {
		changed = false
		for _, b := range post {
			out := lv.Out[b.ID]
			for _, e := range b.Succs {
				if out.Union(lv.In[e.To.ID]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			tmp.CopyFrom(out)
			tmp.Subtract(lv.def[b.ID])
			tmp.Union(lv.use[b.ID])
			if !tmp.Equal(lv.In[b.ID]) {
				lv.In[b.ID].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return lv
}

// blockUseDef computes the upward-exposed uses and the definitions of
// one block over a universe of n registers.
func blockUseDef(b *ir.Block, n int) (use, def *BitSet) {
	use, def = NewBitSet(n), NewBitSet(n)
	var buf []ir.Reg
	for _, in := range b.Instrs {
		buf = in.Uses(buf[:0])
		for _, u := range buf {
			if !def.Has(regIndex(u)) {
				use.Set(regIndex(u))
			}
		}
		if d := in.Def(); d.IsValid() {
			def.Set(regIndex(d))
		}
	}
	return use, def
}

// LiveAt returns the set of registers live immediately before each
// instruction of block b, as a slice parallel to b.Instrs. The slice
// at index i is valid only until the next call reuses buffers; callers
// needing persistence should Clone.
func (lv *Liveness) LiveAt(b *ir.Block) []*BitSet {
	out := make([]*BitSet, len(b.Instrs))
	cur := lv.Out[b.ID].Clone()
	var buf []ir.Reg
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if d := in.Def(); d.IsValid() {
			cur.Clear(regIndex(d))
		}
		buf = in.Uses(buf[:0])
		for _, u := range buf {
			cur.Set(regIndex(u))
		}
		out[i] = cur.Clone()
	}
	return out
}

func postorder(f *ir.Func) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var out []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b.ID] = true
		for _, e := range b.Succs {
			if !seen[e.To.ID] {
				dfs(e.To)
			}
		}
		out = append(out, b)
	}
	dfs(f.Entry)
	return out
}

// Problem describes a generic forward or backward bit-vector dataflow
// problem over blocks. Transfer must compute out from in (forward) or
// in from out (backward) for one block.
type Problem struct {
	// Forward selects the direction.
	Forward bool
	// Union selects the meet: true for may (union), false for must
	// (intersection).
	Union bool
	// Universe is the bit-vector width.
	Universe int
	// Init seeds the block's starting value (both In and Out start as
	// a copy of it). Boundary blocks are typically seeded differently
	// by the caller after Solve via Boundary.
	Init func(b *ir.Block, v *BitSet)
	// Transfer applies the block's effect to v in place.
	Transfer func(b *ir.Block, v *BitSet)
	// Boundary, if non-nil, pins the entry value of boundary blocks
	// (entry for forward problems, exits for backward) before each
	// pass.
	Boundary func(b *ir.Block, v *BitSet)
}

// Solution holds per-block In/Out sets of a solved Problem.
type Solution struct {
	In, Out []*BitSet
}

// Solve iterates the problem to a fixpoint.
func Solve(f *ir.Func, p *Problem) *Solution {
	nb := len(f.Blocks)
	s := &Solution{In: make([]*BitSet, nb), Out: make([]*BitSet, nb)}
	for _, b := range f.Blocks {
		s.In[b.ID] = NewBitSet(p.Universe)
		s.Out[b.ID] = NewBitSet(p.Universe)
		if p.Init != nil {
			p.Init(b, s.In[b.ID])
			s.Out[b.ID].CopyFrom(s.In[b.ID])
		}
	}
	order := postorder(f)
	if p.Forward {
		// reverse postorder
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	tmp := NewBitSet(p.Universe)
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if p.Forward {
				in := s.In[b.ID]
				if len(b.Preds) > 0 {
					first := true
					for _, e := range b.Preds {
						if first {
							in.CopyFrom(s.Out[e.From.ID])
							first = false
						} else if p.Union {
							in.Union(s.Out[e.From.ID])
						} else {
							in.Intersect(s.Out[e.From.ID])
						}
					}
				}
				if p.Boundary != nil && b == f.Entry {
					p.Boundary(b, in)
				}
				tmp.CopyFrom(in)
				p.Transfer(b, tmp)
				if !tmp.Equal(s.Out[b.ID]) {
					s.Out[b.ID].CopyFrom(tmp)
					changed = true
				}
			} else {
				out := s.Out[b.ID]
				if len(b.Succs) > 0 {
					first := true
					for _, e := range b.Succs {
						if first {
							out.CopyFrom(s.In[e.To.ID])
							first = false
						} else if p.Union {
							out.Union(s.In[e.To.ID])
						} else {
							out.Intersect(s.In[e.To.ID])
						}
					}
				}
				if p.Boundary != nil && b.IsExit() {
					p.Boundary(b, out)
				}
				tmp.CopyFrom(out)
				p.Transfer(b, tmp)
				if !tmp.Equal(s.In[b.ID]) {
					s.In[b.ID].CopyFrom(tmp)
					changed = true
				}
			}
		}
	}
	return s
}
