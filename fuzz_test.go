package spillopt

// Native Go fuzz targets. FuzzParse hammers the textual IR frontend
// with arbitrary bytes; FuzzPlacement drives seed-chosen generated
// programs through the full differential oracle; FuzzEngineParity
// cross-checks the regcode engine against the tree interpreter. CI
// runs each with a short budget (-fuzztime=30s); locally, crank them
// up with e.g.
//
//	go test -run=^$ -fuzz=^FuzzPlacement$ -fuzztime=5m .
//
// Minimized corpus seeds live under testdata/fuzz/<target>/.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/vm"
)

// FuzzParse: irtext.Parse must never panic, and any program it
// accepts must print to a parse-print fixpoint (Print(Parse(s)) is
// stable and reparses to the same text).
func FuzzParse(f *testing.F) {
	for _, name := range []string{"gcd.ir", "collatz.ir"} {
		if b, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(string(b))
		}
	}
	f.Add(demoSrc)
	f.Add("main m\n\nfunc m(v0) {\nentry:\n\tret v0\n}")
	f.Add("func f() {\ne:\n\tv0 = const 1\n\tbr v0, a, b ; 2 3\na:\n\tjmp b ; 1\nb:\n\tret\n}")
	f.Add("func s(r3) entry=7 {\ne:\n\tsave 0, r3 !sr\n\tv0 = restore 0 !sr\n\tjmp x ; 0 !jb\nx:\n\tret v0\n}")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := irtext.Parse(src)
		if err != nil {
			return
		}
		s1 := irtext.Print(p)
		p2, err := irtext.Parse(s1)
		if err != nil {
			t.Fatalf("accepted program does not reparse: %v\n%s", err, s1)
		}
		if s2 := irtext.Print(p2); s2 != s1 {
			t.Fatalf("print not a fixpoint:\n-- first --\n%s\n-- second --\n%s", s1, s2)
		}
	})
}

// FuzzPlacement: for any seed, the generated program must pass the
// full differential oracle — identical results across all five
// strategies from one allocation, structural validity and round-trip
// after placement, exec-model optimality, and the jump-model
// measurement bounds.
func FuzzPlacement(f *testing.F) {
	for _, seed := range []uint64{0, 1, 42, 1 << 33, 987654321} {
		f.Add(seed, int64(3))
	}
	f.Fuzz(func(t *testing.T, seed uint64, arg int64) {
		prog := irgen.Generate(seed, irgen.Small())
		r := irgen.Check(prog, irgen.Options{
			Args:     []int64{arg % 1024},
			MaxSteps: 1 << 22,
		})
		for _, v := range r.Violations {
			t.Errorf("seed %d arg %d: %v", seed, arg, v)
		}
		if t.Failed() {
			t.Logf("program:\n%s", irtext.Print(prog))
		}
	})
}

// FuzzEngineParity: for any seed, argument, and step budget, the
// regcode engine must agree with the tree interpreter exactly —
// result value, error text, every statistics counter, and the edge
// profile — on the generated program raw (where an arbitrary budget
// forces mid-quantum step-limit halts), hierarchically placed under
// callee-saved convention checking, and through the full tiered
// pipeline (an arbitrary quantum forces tier boundaries at arbitrary
// points, and the recompiled tier-1 program must agree byte for byte
// and observation for observation).
func FuzzEngineParity(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 1 << 33} {
		f.Add(seed, int64(3), int64(257))
	}
	f.Fuzz(func(t *testing.T, seed uint64, arg, budget int64) {
		budget = budget&(1<<22-1) + 1
		prog := irgen.Generate(seed, irgen.Small())
		for _, m := range irgen.EngineParitySweep(prog, vm.EngineRegcode, []int64{arg & 1023}, []int64{budget}) {
			t.Errorf("seed %d arg %d: %s", seed, arg, m)
		}
		quantum := budget/2 + 1
		for _, m := range irgen.TierParitySweep(prog, vm.EngineRegcode, []int64{arg & 1023}, quantum, budget) {
			t.Errorf("seed %d arg %d: %s", seed, arg, m)
		}
		if t.Failed() {
			t.Logf("program:\n%s", irtext.Print(prog))
		}
	})
}
