// Package spillopt is the public face of a reproduction of "Post
// Register Allocation Spill Code Optimization" (Lupo & Wilken, CGO
// 2006): profile-guided hierarchical placement of callee-saved
// save/restore code over the program structure tree.
//
// The package wraps the full pipeline the paper evaluates:
//
//	prog, _ := spillopt.ParseProgram(src)   // textual IR in
//	prog.Profile()                          // run once, collect edge counts
//	prog.Allocate()                         // Chaitin/Briggs coloring
//	prog.Place(spillopt.HierarchicalJump)   // the paper's algorithm
//	res, _ := prog.Run()                    // measure dynamic overhead
//
// Lower-level building blocks (the IR, PST construction, the cost
// models, Chow's shrink-wrapping) live in internal packages; this
// facade covers the supported use cases: compiling a procedure,
// choosing a placement strategy, inspecting the placement, and
// reproducing the paper's evaluation.
package spillopt

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
	"repro/internal/tier"
	"repro/internal/vm"
)

// Strategy selects a callee-saved spill code placement technique.
type Strategy int

const (
	// EntryExit saves at procedure entry and restores at every exit
	// (the paper's baseline).
	EntryExit Strategy = iota
	// Shrinkwrap is Chow's original technique: artificial data flow
	// keeps spill code out of loops and off jump edges.
	Shrinkwrap
	// ShrinkwrapSeed is the paper's modified shrink-wrapping (no
	// artificial data flow; spill code may sit on jump edges). It is
	// the seed of the hierarchical algorithm, exposed for study.
	ShrinkwrapSeed
	// HierarchicalExec is the paper's algorithm under the execution
	// count cost model (provably optimal, but ignores the jump
	// instructions that jump blocks need).
	HierarchicalExec
	// HierarchicalJump is the paper's algorithm under the jump edge
	// cost model — the configuration evaluated in the paper.
	HierarchicalJump
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case EntryExit:
		return "entry-exit"
	case Shrinkwrap:
		return "shrinkwrap"
	case ShrinkwrapSeed:
		return "shrinkwrap-seed"
	case HierarchicalExec:
		return "hierarchical-exec"
	case HierarchicalJump:
		return "hierarchical-jump"
	}
	return "?"
}

// Strategies lists every strategy name in declaration order.
func Strategies() []string {
	out := make([]string, 0, len(strategy.All))
	for _, s := range strategy.All {
		out = append(out, Strategy(s).String())
	}
	return out
}

// ParseStrategy maps a strategy name (as produced by String) back to
// the Strategy, for tools that take the strategy as text.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range strategy.All {
		if Strategy(s).String() == name {
			return Strategy(s), nil
		}
	}
	return 0, fmt.Errorf("spillopt: unknown strategy %q (have %s)", name, strings.Join(Strategies(), ", "))
}

// Result reports a measured execution.
type Result struct {
	// Value is the program's return value.
	Value int64
	// Instrs is the total dynamic instruction count.
	Instrs int64
	// Overhead is the dynamic spill code overhead: executed spill
	// loads/stores, callee-saved saves/restores, and jump-block jumps.
	Overhead int64
	// Cost is the overhead priced with the machine's cost surface
	// (spill latencies, taken-jump penalty). On the default machine —
	// unit costs, like the paper's — it equals Overhead.
	Cost int64
	// Breakdown of the overhead.
	SpillLoads, SpillStores int64
	Saves, Restores         int64
	JumpBlockJumps          int64
}

// Program is a compiled program moving through the pipeline.
type Program struct {
	prog *ir.Program
	mach *machine.Desc

	// cache shares the per-function analyses (liveness, dominators,
	// loops, PST, shrink-wrap seed) across the pipeline stages and the
	// inspection helpers; mutating stages invalidate it.
	cache *analysis.Cache

	// Parallelism bounds the worker pool used by Allocate and Place
	// for per-function work (functions are independent after parsing).
	// Zero or negative means GOMAXPROCS; 1 forces the serial path.
	// Results are identical for any value.
	Parallelism int

	// UseLegacyVM switches Profile and Run onto the legacy
	// tree-walking interpreter instead of the default bytecode engine.
	// Every measured count is identical either way (the engines are
	// parity-tested); the legacy engine exists as the differential
	// reference and is several times slower. UseEngine, when called,
	// overrides this knob.
	UseLegacyVM bool

	// eng is the engine selected by UseEngine; engSet records that the
	// selection happened, since the zero Engine is the default.
	eng    vm.Engine
	engSet bool

	// MaxSteps bounds every VM execution (Profile and Run). Zero
	// means the VM's default budget; services handling untrusted IR
	// set a tight limit so a runaway program costs bounded CPU.
	MaxSteps int64

	// sharedCache marks a cache injected via UseAnalysisCache and
	// owned by a longer-lived service; Close then drops only this
	// program's entries instead of everything.
	sharedCache bool

	// Tiered pipeline state (UseTiering): the quantum, the strategy
	// Place recorded, whether the tiered Run is still pending, and the
	// last tiered result for TierReport.
	tiering      bool
	tierQuantum  int64
	tierStrategy Strategy
	tierPending  bool
	tierRes      *tier.Result

	// useLayout/aligned: profile-guided block alignment for the
	// untiered pipeline (UseLayout), applied lazily once.
	useLayout bool
	aligned   bool

	// allocMachine prices the allocator's spill choices with the
	// machine's cost surface (UseMachineAllocation).
	allocMachine bool

	profiled  bool
	allocated bool
	placed    bool
}

// ParseProgram reads a program in the textual IR format (see the
// repository README for the syntax).
func ParseProgram(src string) (*Program, error) {
	p, err := irtext.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p, mach: machine.PARISC(), cache: analysis.NewCache()}, nil
}

// Machine returns the target description (PA-RISC-like: 24 allocatable
// registers, 13 callee-saved) and its cost surface.
func (p *Program) Machine() MachineInfo {
	return MachineInfo{
		Name:        p.mach.Name,
		Registers:   p.mach.NumRegs,
		CalleeSaved: p.mach.NumCalleeSaved(),
		Costs:       p.mach.Costs,
	}
}

// MachineInfo describes the modeled target.
type MachineInfo struct {
	Name        string
	Registers   int
	CalleeSaved int
	// Costs prices the target's spill overhead (see internal/machine):
	// the placement cost models optimize it and Result.Cost reports
	// measured overhead priced with it.
	Costs machine.Costs
}

// Machines lists the named machine cost presets UseMachine accepts,
// in report order. Every preset shares the PA-RISC register file and
// differs only in its cost surface.
func Machines() []string { return machine.PresetNames() }

// UseMachine retargets the pipeline to a named machine cost preset
// (see Machines): the hierarchical strategies optimize the preset's
// latencies and Result.Cost prices measured overhead with them. It
// must be called before Allocate so every later stage sees one
// consistent machine.
func (p *Program) UseMachine(name string) error {
	if p.allocated {
		return fmt.Errorf("spillopt: UseMachine must run before Allocate")
	}
	d, err := machine.Preset(name)
	if err != nil {
		return err
	}
	p.mach = d
	return nil
}

// AllocModes lists the allocation modes the alloc option accepts:
// "uniform" is the paper's def+use-count spill heuristic, "machine"
// prices spill candidates with the machine's cost surface.
func AllocModes() []string { return []string{"uniform", "machine"} }

// ParseAllocMode resolves an allocation mode name ("" defaults to
// uniform) to whether machine-priced allocation is requested.
func ParseAllocMode(name string) (bool, error) {
	switch name {
	case "", "uniform":
		return false, nil
	case "machine":
		return true, nil
	}
	return false, fmt.Errorf("spillopt: unknown alloc mode %q (have %s)", name, strings.Join(AllocModes(), ", "))
}

// UseMachineAllocation makes Allocate price each spill candidate with
// the machine's cost surface — StoreCost per profile-weighted def,
// LoadCost per profile-weighted use — instead of the uniform
// def+use count. On the classic (unit-cost) preset the result is
// byte-identical to the uniform allocator; presets whose store and
// load latencies differ may spill different webs. Like UseMachine it
// must be called before Allocate.
func (p *Program) UseMachineAllocation() error {
	if p.allocated {
		return fmt.Errorf("spillopt: UseMachineAllocation must run before Allocate")
	}
	p.allocMachine = true
	return nil
}

// Profile executes the program once with the given arguments and
// records edge execution counts on the CFG, which the allocator's
// spill heuristic and the placement cost models consume.
func (p *Program) Profile(args ...int64) error {
	if p.allocated {
		return fmt.Errorf("spillopt: Profile must run before Allocate")
	}
	if _, err := profile.CollectWithConfig(p.prog, vm.Config{Engine: p.engine(), MaxSteps: p.MaxSteps}, args...); err != nil {
		return err
	}
	if err := profile.Consistent(p.prog); err != nil {
		return err
	}
	p.profiled = true
	return nil
}

// UseTiering enables the two-tier profile-guided pipeline for this
// program: Place records the strategy instead of applying it, and the
// first Run executes tier 0 (static-estimate placement under edge
// profiling, bounded by the quantum), re-aligns and re-places with the
// measured weights at the tier boundary, and finishes on the tier-1
// program — see internal/tier for the contract. quantum <= 0 selects
// tier.DefaultQuantum. Like UseMachine it must be called before
// Allocate, because the static-estimate weights tier 0 compiles
// against also feed the allocator's spill heuristic.
func (p *Program) UseTiering(quantum int64) error {
	if p.allocated {
		return fmt.Errorf("spillopt: UseTiering must run before Allocate")
	}
	p.tiering = true
	p.tierQuantum = quantum
	return nil
}

// UseLayout enables profile-guided jump alignment (layout.Align) in
// the untiered pipeline: before placement every function's blocks are
// re-chained so the hottest edges fall through, and the reclassified
// edge kinds flow into placement and PlacementCost. Under UseTiering
// it is a no-op — the tiered pipeline always aligns, tier 0 with the
// static weights and tier 1 with the measured ones.
func (p *Program) UseLayout() error {
	if p.placed || p.tierPending {
		return fmt.Errorf("spillopt: UseLayout must run before Place")
	}
	p.useLayout = true
	return nil
}

// ensureAligned applies UseLayout's alignment exactly once, as late as
// possible (placement or cost queries), so it sees the weights the
// pipeline ends up with. Alignment renumbers blocks and reclassifies
// edge kinds, so each function's memoized analyses are invalidated.
func (p *Program) ensureAligned() {
	if !p.useLayout || p.aligned || p.tiering {
		return
	}
	for _, f := range p.prog.FuncsInOrder() {
		layout.Align(f)
		p.cache.Invalidate(f)
	}
	p.aligned = true
}

// Allocate runs the Chaitin/Briggs graph-coloring register allocator
// on every procedure. Callee-saved save/restore code is NOT inserted;
// call Place to choose a placement strategy.
func (p *Program) Allocate() error {
	if p.allocated {
		return fmt.Errorf("spillopt: already allocated")
	}
	// Tier 0 compiles against static-estimate weights; synthesizing
	// them here lets the allocator's spill heuristic read the same
	// weights the tier-0 placement optimizes.
	if p.tiering && !p.profiled {
		profile.EstimateProgramMachine(p.prog, p.mach, p.cache)
	}
	if _, err := regalloc.AllocateProgramOpts(p.prog, p.mach, p.Parallelism, regalloc.Options{MachineCosts: p.allocMachine}); err != nil {
		return err
	}
	// Allocation rewrote instructions (spill code, physical registers),
	// so every memoized analysis of this program is stale. Invalidation
	// is per function: on a cache shared with other live programs
	// (UseAnalysisCache), a blanket InvalidateAll would throw away
	// their perfectly valid analyses.
	for _, f := range p.prog.FuncsInOrder() {
		p.cache.Invalidate(f)
	}
	p.allocated = true
	return nil
}

// Place computes and applies the strategy's callee-saved save/restore
// placement to every procedure that needs one. The placement is
// validated structurally before it is applied.
func (p *Program) Place(s Strategy) error {
	if !p.allocated {
		return fmt.Errorf("spillopt: Allocate before Place")
	}
	if p.placed || p.tierPending {
		return fmt.Errorf("spillopt: already placed")
	}
	// Under tiering the placement is deferred: tier 0 places a
	// throwaway clone with the static weights, and the real program is
	// placed at the tier boundary with measured ones. Run drives it.
	if p.tiering {
		p.tierStrategy = s
		p.tierPending = true
		return nil
	}
	p.ensureAligned()
	// Each placement reads and mutates only its own function, so the
	// per-function pipeline (PST build, shrink-wrap seed, hierarchical
	// traversal, validation, apply) fans out across the pool. The
	// machine description carries the cost surface the hierarchical
	// strategies optimize.
	if err := strategy.PlaceProgramFor(p.prog, computeStrategy(s), p.mach, p.Parallelism, p.cache); err != nil {
		return err
	}
	p.placed = true
	return nil
}

// computeStrategy maps the public enum to the shared dispatch in
// internal/strategy. The two enums declare the same values in the same
// order; the tests pin the correspondence.
func computeStrategy(s Strategy) strategy.Strategy { return strategy.Strategy(s) }

// AnalysisStats reports the shared analysis layer's activity: cache
// lookups, per-analysis build counts, and how placement edits were
// absorbed — patched in place from a core.Delta, or by falling back to
// a full invalidation. In a healthy pipeline DeltaFull stays 0: every
// Place edit is a recognized shape the analyses patch incrementally.
type AnalysisStats struct {
	// Hits and Misses count per-function cache lookups (a miss creates
	// the function's analysis handle).
	Hits, Misses int
	// Builds per analysis, summed over all functions. SplitDom counts
	// the PST's internal split-graph dominator-tree computations, the
	// expensive core the builder memoizes across rebuild requests.
	Liveness, Dom, Loops, PST, SplitDom, Seed int
	// DeltaPatched and DeltaFull count placement edits absorbed
	// incrementally vs by full invalidation.
	DeltaPatched, DeltaFull int
}

// UseAnalysisCache points the pipeline at a shared program-level
// analysis cache owned by a long-lived caller (the placement service
// shares one across every request it handles). It must be called
// before Profile/Allocate/Place so every stage sees one cache. The
// caller owns the cache's lifetime: either call Close when done with
// this Program, or run an eviction policy over IRFuncs keys that
// calls the cache's Drop — otherwise the cache pins every program
// ever compiled (the leak Invalidate alone never fixes).
func (p *Program) UseAnalysisCache(c *analysis.Cache) {
	if c == nil {
		return
	}
	p.cache = c
	p.sharedCache = true
}

// Close releases the program's per-function entries from its analysis
// cache so the functions (and everything their analyses pin) can be
// collected. On a program-owned cache it drops everything; on a cache
// injected with UseAnalysisCache it drops only this program's
// functions. Close is idempotent and the Program remains usable — the
// next analysis consumer just rebuilds.
func (p *Program) Close() {
	if !p.sharedCache {
		p.cache.DropAll()
		return
	}
	for _, f := range p.prog.FuncsInOrder() {
		p.cache.Drop(f)
	}
}

// IRFuncs exposes the program's functions (in definition order) to
// in-process services that manage a shared analysis cache's lifetime:
// the returned pointers are exactly the cache keys an eviction policy
// must eventually Drop.
func (p *Program) IRFuncs() []*ir.Func { return p.prog.FuncsInOrder() }

// AnalysisStats returns the pipeline's analysis-layer counters so far.
func (p *Program) AnalysisStats() AnalysisStats {
	hits, misses := p.cache.Stats()
	c := p.cache.Counts()
	return AnalysisStats{
		Hits: hits, Misses: misses,
		Liveness: c.Liveness, Dom: c.Dom, Loops: c.Loops,
		PST: c.PST, SplitDom: c.SplitDom, Seed: c.Seed,
		DeltaPatched: c.DeltaPatched, DeltaFull: c.DeltaFull,
	}
}

// Functions returns the program's function names in definition order.
func (p *Program) Functions() []string {
	return append([]string(nil), p.prog.Order...)
}

// PlacementCost returns, without mutating the program, the modeled
// dynamic overhead of a strategy's placement for one function under
// the machine's jump edge cost model (on the default machine, the
// paper's unit-cost model). Useful for comparing strategies cheaply.
// For a placement with no jump blocks (EntryExit always qualifies)
// the model is exact: summed over all functions it equals the
// save/restore cost a Run with the profiling arguments measures.
func (p *Program) PlacementCost(funcName string, s Strategy) (int64, error) {
	f := p.prog.Func(funcName)
	if f == nil {
		return 0, fmt.Errorf("spillopt: no function %q", funcName)
	}
	if !p.allocated && len(f.UsedCalleeSaved) == 0 {
		return 0, fmt.Errorf("spillopt: %s not allocated", funcName)
	}
	if p.allocated {
		// UseLayout reclassifies edge kinds; the jump edge cost model
		// must price the aligned layout, not the parse-order one.
		p.ensureAligned()
	}
	sets, err := strategy.ComputeCachedFor(f, computeStrategy(s), p.cache.For(f), p.mach)
	if err != nil {
		return 0, err
	}
	return core.TotalCost(core.MachineModel{Desc: p.mach, ChargeJumps: true}, sets), nil
}

// FunctionReport is one function's spill-code cost report: the static
// instruction counts the compiler inserted and the modeled dynamic
// overhead those instructions execute under the recorded profile,
// split by class and priced with the pipeline's machine. For a
// placement without jump blocks the modeled numbers are exact — they
// equal what a Run with the profiling arguments measures.
type FunctionReport struct {
	Function string `json:"function"`

	// Static inserted-instruction counts.
	SaveInstrs      int `json:"save_instrs"`
	RestoreInstrs   int `json:"restore_instrs"`
	SpillInstrs     int `json:"spill_instrs"`
	JumpBlockInstrs int `json:"jump_block_instrs"`

	// Modeled dynamic executions by class.
	Saves       int64 `json:"saves"`
	Restores    int64 `json:"restores"`
	SpillLoads  int64 `json:"spill_loads"`
	SpillStores int64 `json:"spill_stores"`
	JumpJumps   int64 `json:"jump_jumps"`

	// Overhead is the total modeled dynamic overhead executions; Cost
	// prices them with the machine's cost surface (equal on the
	// default unit-cost machine).
	Overhead int64 `json:"overhead"`
	Cost     int64 `json:"cost"`
}

// Report returns one FunctionReport per function in definition order.
// It requires Allocate (spill code exists only after allocation);
// called after Place it includes the placement's save/restore code and
// jump blocks.
func (p *Program) Report() ([]FunctionReport, error) {
	if !p.allocated {
		return nil, fmt.Errorf("spillopt: Allocate before Report")
	}
	out := make([]FunctionReport, 0, len(p.prog.Order))
	for _, f := range p.prog.FuncsInOrder() {
		o := core.Breakdown(f)
		r := FunctionReport{
			Function:    f.Name,
			Saves:       o.Saves,
			Restores:    o.Restores,
			SpillLoads:  o.SpillLoads,
			SpillStores: o.SpillStores,
			JumpJumps:   o.JumpBlockJmps,
			Overhead:    o.Total(),
			Cost:        o.Cost(p.mach.Costs),
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch {
				case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpSave:
					r.SaveInstrs++
				case in.Flags&ir.FlagSaveRestore != 0 && in.Op == ir.OpRestore:
					r.RestoreInstrs++
				case in.Flags&ir.FlagJumpBlock != 0:
					r.JumpBlockInstrs++
				case in.Flags&ir.FlagSpill != 0:
					r.SpillInstrs++
				}
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// Run executes the program under callee-saved convention enforcement
// and returns the measured result. It requires placement to have run
// (or no procedure to use callee-saved registers). Under UseTiering
// the first Run executes the full tiered pipeline and leaves the
// program placed; later Runs execute the tier-1 program directly.
func (p *Program) Run(args ...int64) (*Result, error) {
	if p.tierPending {
		return p.runTiered(args)
	}
	m := vm.New(p.prog, vm.Config{Machine: p.mach, Engine: p.engine(), MaxSteps: p.MaxSteps})
	v, err := m.Run(args...)
	if err != nil {
		return nil, err
	}
	st := m.Stats
	return &Result{
		Value:          v,
		Instrs:         st.Instrs,
		Overhead:       st.Overhead(),
		Cost:           st.WeightedOverhead(p.mach.Costs),
		SpillLoads:     st.SpillLoads,
		SpillStores:    st.SpillStores,
		Saves:          st.Saves,
		Restores:       st.Restores,
		JumpBlockJumps: st.JumpBlockJmps,
	}, nil
}

// runTiered executes the deferred tiered pipeline: tier 0 on a
// statically placed clone under edge profiling, re-align + re-place
// with the measured weights at the boundary, tier 1 on the result with
// the remaining budget. The merged two-tier counters become the
// Result; TierReport exposes the boundary details.
func (p *Program) runTiered(args []int64) (*Result, error) {
	res, err := tier.Run(p.prog, tier.Config{
		Machine:     p.mach,
		Strategy:    computeStrategy(p.tierStrategy),
		Quantum:     p.tierQuantum,
		MaxSteps:    p.MaxSteps,
		Parallelism: p.Parallelism,
		Cache:       p.cache,
		Engine:      p.tierEngine(),
	}, args...)
	if res != nil {
		// Even on a step-limit halt the program was re-placed; the
		// pipeline state must reflect the mutation.
		p.tierRes = res
		p.tierPending = false
		p.placed = true
	}
	if err != nil {
		return nil, err
	}
	st := res.Stats
	return &Result{
		Value:          res.Value,
		Instrs:         st.Instrs,
		Overhead:       st.Overhead(),
		Cost:           st.WeightedOverhead(p.mach.Costs),
		SpillLoads:     st.SpillLoads,
		SpillStores:    st.SpillStores,
		Saves:          st.Saves,
		Restores:       st.Restores,
		JumpBlockJumps: st.JumpBlockJmps,
	}, nil
}

// tierEngine is the engine tiered runs execute on: an explicit
// UseEngine/UseLegacyVM choice wins; otherwise the tiered pipeline's
// native engine, regcode, whose fast path counts edges so tier-0
// profiling costs no engine downgrade.
func (p *Program) tierEngine() vm.Engine {
	if p.engSet {
		return p.eng
	}
	if p.UseLegacyVM {
		return vm.EngineTree
	}
	return vm.EngineRegcode
}

// TierReport describes the last tiered Run: whether the quantum
// expired (a tier boundary happened), how many functions the
// measured-weight alignment reordered, how many were re-placed, and
// the per-tier instruction counts. Nil before the tiered Run.
type TierReport struct {
	Boundary    bool  `json:"boundary"`
	Realigned   int   `json:"realigned"`
	Replaced    int   `json:"replaced"`
	Tier0Instrs int64 `json:"tier0_instrs"`
	Tier1Instrs int64 `json:"tier1_instrs"`
}

// TierReport returns the last tiered Run's boundary details, or nil if
// no tiered Run happened.
func (p *Program) TierReport() *TierReport {
	if p.tierRes == nil {
		return nil
	}
	return &TierReport{
		Boundary:    p.tierRes.Boundary,
		Realigned:   p.tierRes.Realigned,
		Replaced:    p.tierRes.Replaced,
		Tier0Instrs: p.tierRes.Tier0.Instrs,
		Tier1Instrs: p.tierRes.Tier1.Instrs,
	}
}

// Text renders the program in the textual IR format, including any
// inserted spill code and jump blocks.
func (p *Program) Text() string { return irtext.Print(p.prog) }

// DotCFG renders one function's control flow graph in Graphviz DOT
// format, highlighting inserted spill code.
func (p *Program) DotCFG(funcName string) (string, error) {
	f := p.prog.Func(funcName)
	if f == nil {
		return "", fmt.Errorf("spillopt: no function %q", funcName)
	}
	return dot.CFG(f), nil
}

// DotPST renders one function's program structure tree (maximal SESE
// regions with boundary costs) in Graphviz DOT format.
func (p *Program) DotPST(funcName string) (string, error) {
	f := p.prog.Func(funcName)
	if f == nil {
		return "", fmt.Errorf("spillopt: no function %q", funcName)
	}
	t, err := p.cache.For(f).PST()
	if err != nil {
		return "", err
	}
	return dot.PST(f, t), nil
}

// UseEngine selects the VM engine Profile and Run execute on, by name
// ("bytecode", "regcode", or "tree" — see Engines). The engines are
// parity-tested to produce identical results and counts; they differ
// only in speed. An explicit selection overrides UseLegacyVM.
func (p *Program) UseEngine(name string) error {
	e, err := vm.ParseEngine(name)
	if err != nil {
		return err
	}
	p.eng = e
	p.engSet = true
	return nil
}

// Engines lists the VM engine names UseEngine accepts, in sweep order.
func Engines() []string {
	names := make([]string, len(vm.Engines))
	for i, e := range vm.Engines {
		names[i] = e.String()
	}
	return names
}

// engine maps the facade knobs to the VM's engine enum.
func (p *Program) engine() vm.Engine {
	if p.engSet {
		return p.eng
	}
	if p.UseLegacyVM {
		return vm.EngineTree
	}
	return vm.EngineBytecode
}

// Clone deep-copies the program so several strategies can be compared
// from the same allocation.
func (p *Program) Clone() *Program {
	return &Program{
		prog:         p.prog.Clone(),
		mach:         p.mach,
		cache:        analysis.NewCache(),
		Parallelism:  p.Parallelism,
		UseLegacyVM:  p.UseLegacyVM,
		eng:          p.eng,
		engSet:       p.engSet,
		MaxSteps:     p.MaxSteps,
		tiering:      p.tiering,
		tierQuantum:  p.tierQuantum,
		tierStrategy: p.tierStrategy,
		tierPending:  p.tierPending,
		useLayout:    p.useLayout,
		aligned:      p.aligned,
		allocMachine: p.allocMachine,
		profiled:     p.profiled,
		allocated:    p.allocated,
		placed:       p.placed,
	}
}
