package spillopt

// Regression coverage for the shared analysis layer (internal/
// analysis): the cached placement path must be observationally
// identical to the thin uncached path (fresh analyses per call, the
// pre-refactor behavior), and invalidation must prevent any stale
// analysis from being served after a function is mutated — including
// under concurrent sharded placement.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/regalloc"
	"repro/internal/strategy"
)

// allocatedPrograms yields every testdata/*.ir program plus 50 irgen
// seeds, profiled and register-allocated, ready for placement.
func allocatedPrograms(t *testing.T) map[string]*ir.Program {
	t.Helper()
	out := make(map[string]*ir.Program)
	add := func(name string, prog *ir.Program, args []int64) {
		if _, err := profile.Collect(prog, args...); err != nil {
			t.Fatalf("%s: profile: %v", name, err)
		}
		if _, err := regalloc.AllocateProgram(prog, machine.PARISC()); err != nil {
			t.Fatalf("%s: regalloc: %v", name, err)
		}
		out[name] = prog
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.ir"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := irtext.Parse(string(b))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		add(filepath.Base(path), prog, oracleArgs(t, string(b)))
	}
	for seed := uint64(1); seed <= 50; seed++ {
		add(fmt.Sprintf("irgen-%d", seed), irgen.Generate(seed, irgen.Default()), []int64{0})
	}
	return out
}

// placeUncached reproduces the pre-refactor per-call path exactly:
// every analysis is rebuilt from scratch by Compute, and validation
// recomputes its own liveness.
func placeUncached(f *ir.Func, s strategy.Strategy) ([]*core.Set, error) {
	sets, err := strategy.Compute(f, s)
	if err != nil {
		return nil, err
	}
	if err := core.ValidateSets(f, sets); err != nil {
		return nil, err
	}
	return sets, core.Apply(f, sets)
}

func setsText(sets []*core.Set) string {
	out := ""
	for _, s := range sets {
		out += s.String() + "\n"
	}
	return out
}

// TestCachedPlacementByteIdentity: for every checked-in program and 50
// generator seeds, under every strategy, the cached path produces
// save/restore sets and final placed IR text identical to the
// uncached per-call path.
func TestCachedPlacementByteIdentity(t *testing.T) {
	for name, base := range allocatedPrograms(t) {
		for _, s := range strategy.All {
			cached := base.Clone()
			uncached := base.Clone()

			cache := analysis.NewCache()
			for _, f := range strategy.NeedsPlacement(cached) {
				info := cache.For(f)
				csets, err := strategy.ComputeCached(f, s, info)
				if err != nil {
					t.Fatalf("%s/%v/%s: cached compute: %v", name, s, f.Name, err)
				}
				uf := uncached.Func(f.Name)
				usets, err := placeUncached(uf, s)
				if err != nil {
					t.Fatalf("%s/%v/%s: uncached place: %v", name, s, f.Name, err)
				}
				if got, want := setsText(csets), setsText(usets); got != want {
					t.Fatalf("%s/%v/%s: cached sets differ from uncached:\n%s\nwant:\n%s",
						name, s, f.Name, got, want)
				}
				if err := strategy.PlaceCached(f, s, info); err != nil {
					t.Fatalf("%s/%v/%s: cached place: %v", name, s, f.Name, err)
				}
			}
			if got, want := irtext.Print(cached), irtext.Print(uncached); got != want {
				t.Errorf("%s/%v: cached placement IR differs from uncached", name, s)
			}
		}
	}
}

// TestConcurrentCachedPlacementIdentity: sharded placement over a
// shared analysis cache must match the serial uncached placement
// byte-for-byte, and after placement the invalidated cache must serve
// analyses for the mutated shape (run under -race).
func TestConcurrentCachedPlacementIdentity(t *testing.T) {
	// A generated multi-procedure program gives the pool real sharding.
	base := irgen.Generate(7, irgen.Default())
	if _, err := profile.Collect(base, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := regalloc.AllocateProgram(base, machine.PARISC()); err != nil {
		t.Fatal(err)
	}
	for _, s := range strategy.All {
		parallel := base.Clone()
		serial := base.Clone()
		cache := analysis.NewCache()
		if err := strategy.PlaceProgramCached(parallel, s, 8, cache); err != nil {
			t.Fatalf("%v: parallel: %v", s, err)
		}
		for _, f := range strategy.NeedsPlacement(serial) {
			if _, err := placeUncached(f, s); err != nil {
				t.Fatalf("%v/%s: serial: %v", s, f.Name, err)
			}
		}
		if irtext.Print(parallel) != irtext.Print(serial) {
			t.Errorf("%v: parallel cached placement differs from serial uncached", s)
		}
		// PlaceCached invalidated each Info after Apply: the cache must
		// now describe the placed (mutated) functions, not the stale
		// pre-placement shape.
		for _, f := range strategy.NeedsPlacement(parallel) {
			info := cache.For(f)
			if got, want := len(info.Liveness().In), len(f.Blocks); got != want {
				t.Errorf("%v/%s: stale liveness served: covers %d blocks, function has %d",
					s, f.Name, got, want)
			}
			if tree, err := info.PST(); err != nil {
				t.Errorf("%v/%s: PST after placement: %v", s, f.Name, err)
			} else if got, want := len(tree.Root.Blocks), len(f.Blocks); got != want {
				t.Errorf("%v/%s: stale PST served: root covers %d blocks, function has %d",
					s, f.Name, got, want)
			}
		}
	}
}
