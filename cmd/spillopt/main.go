// Command spillopt compiles a textual IR program through the pipeline:
// profile by execution, allocate registers, place callee-saved
// save/restore code with a chosen strategy, and report the measured
// dynamic overhead (optionally printing the transformed program).
//
// Usage:
//
//	spillopt [-strategy hierarchical-jump] [-machine preset] [-alloc-machine] [-layout] [-arg N] [-print] [-compare] prog.ir
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

var strategies = map[string]spillopt.Strategy{
	"entry-exit":        spillopt.EntryExit,
	"shrinkwrap":        spillopt.Shrinkwrap,
	"shrinkwrap-seed":   spillopt.ShrinkwrapSeed,
	"hierarchical-exec": spillopt.HierarchicalExec,
	"hierarchical-jump": spillopt.HierarchicalJump,
}

func main() {
	strategy := flag.String("strategy", "hierarchical-jump",
		"placement strategy: entry-exit, shrinkwrap, shrinkwrap-seed, hierarchical-exec, hierarchical-jump")
	arg := flag.Int64("arg", 100, "argument passed to the program's main")
	show := flag.Bool("print", false, "print the transformed program")
	dotFunc := flag.String("dot", "", "print the named function's CFG in Graphviz DOT format and exit")
	compare := flag.Bool("compare", false, "run every strategy and compare overheads")
	mach := flag.String("machine", "", "machine cost preset the placement optimizes and the cost column prices (e.g. classic, deep-pipeline; default: the paper's unit-cost machine)")
	layoutF := flag.Bool("layout", false, "run profile-guided jump alignment (layout.Align) before placement, so the hottest edges fall through and the reclassified edge kinds feed the placement cost model")
	allocMachine := flag.Bool("alloc-machine", false, "price the allocator's spill choices with the machine's cost surface (UseMachineAllocation) instead of uniform weights")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spillopt [flags] prog.ir")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *compare {
		fmt.Printf("%-18s %10s %10s %8s %8s %8s %8s\n",
			"strategy", "overhead", "cost", "saves", "restores", "spill", "jumps")
		for _, name := range []string{"entry-exit", "shrinkwrap", "shrinkwrap-seed", "hierarchical-exec", "hierarchical-jump"} {
			res, err := runOne(string(src), strategies[name], *arg, *mach, *layoutF, *allocMachine)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
			fmt.Printf("%-18s %10d %10d %8d %8d %8d %8d\n", name, res.Overhead, res.Cost,
				res.Saves, res.Restores, res.SpillLoads+res.SpillStores, res.JumpBlockJumps)
		}
		return
	}

	s, ok := strategies[*strategy]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	prog, err := buildOpts(string(src), s, *arg, *mach, *layoutF, *allocMachine)
	if err != nil {
		fatal(err)
	}
	if *dotFunc != "" {
		d, err := prog.DotCFG(*dotFunc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(d)
		return
	}
	res, err := prog.Run(*arg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result=%d instructions=%d overhead=%d cost=%d (saves=%d restores=%d spill=%d jump=%d)\n",
		res.Value, res.Instrs, res.Overhead, res.Cost, res.Saves, res.Restores,
		res.SpillLoads+res.SpillStores, res.JumpBlockJumps)
	if *show {
		fmt.Print(prog.Text())
	}
}

func buildOpts(src string, s spillopt.Strategy, arg int64, mach string, layout, allocMachine bool) (*spillopt.Program, error) {
	prog, err := spillopt.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if mach != "" {
		if err := prog.UseMachine(mach); err != nil {
			return nil, err
		}
	}
	if allocMachine {
		if err := prog.UseMachineAllocation(); err != nil {
			return nil, err
		}
	}
	if layout {
		if err := prog.UseLayout(); err != nil {
			return nil, err
		}
	}
	if err := prog.Profile(arg); err != nil {
		return nil, err
	}
	if err := prog.Allocate(); err != nil {
		return nil, err
	}
	if err := prog.Place(s); err != nil {
		return nil, err
	}
	return prog, nil
}

func runOne(src string, s spillopt.Strategy, arg int64, mach string, layout, allocMachine bool) (*spillopt.Result, error) {
	prog, err := buildOpts(src, s, arg, mach, layout, allocMachine)
	if err != nil {
		return nil, err
	}
	return prog.Run(arg)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "spillopt: %v\n", err)
	os.Exit(1)
}
