// Command benchdiff is the CI benchmark-regression gate: it re-runs
// the standing benchmarks in-process and compares them against the
// committed trajectory records, failing (exit 1) on a regression.
//
//	benchdiff -vm BENCH_vm.json             # engine throughput gate
//	benchdiff -machines BENCH_machines.json # multi-machine sweep gate
//	benchdiff -analysis BENCH_analysis.json # incremental analysis gate
//	benchdiff -serve BENCH_serve.json       # placement service gate
//	benchdiff -tiered BENCH_tiered.json     # tiered re-placement gate
//	benchdiff -crossover BENCH_crossover.json # machine-crossover gate
//	benchdiff -vm ... -machines ... -threshold 15
//	benchdiff -machines ... -inject 20      # self-test: must fail
//	benchdiff -machines ... -write-fresh DIR  # dump the fresh records
//	                                          # (CI failure artifacts)
//
// The VM gate compares the bytecode-over-tree speedup ratio (host
// speed cancels) and the deterministic per-run instruction counts; the
// machines gate compares the deterministic weighted overheads of every
// (machine preset, strategy) pair and the analysis build counters that
// prove the sweep shares analyses across presets; the analysis gate
// compares the cold-over-incremental re-placement speedup (host speed
// cancels), its absolute 3x floor, and the zero-full-rebuild property
// of the delta patchers; the serve gate re-runs the in-process loadgen
// sweep and compares the cached-over-cold speedup (5x absolute floor),
// the deterministic cache hit counters, and the analysis cache's
// eviction bound; the tiered gate re-runs the static-vs-measured
// re-placement comparison on the hostile suite and compares the
// deterministic per-preset overheads, requiring the best preset's gain
// to clear the absolute floor; the crossover gate re-runs the
// uniform-vs-machine-priced allocation comparison on the crossover
// suite and compares the deterministic per-(benchmark, preset) best
// overheads and winners, requiring at least one benchmark to keep
// flipping its winner across presets. -inject degrades the fresh
// numbers by the given percentage so the CI job can prove the gate
// actually trips; -write-fresh dumps every fresh record (as compared,
// injection included) into a directory for CI failure artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	vmPath := flag.String("vm", "", "committed BENCH_vm.json to gate against")
	machPath := flag.String("machines", "", "committed BENCH_machines.json to gate against")
	analysisPath := flag.String("analysis", "", "committed BENCH_analysis.json to gate against")
	servePath := flag.String("serve", "", "committed BENCH_serve.json to gate against")
	tieredPath := flag.String("tiered", "", "committed BENCH_tiered.json to gate against")
	crossPath := flag.String("crossover", "", "committed BENCH_crossover.json to gate against")
	threshold := flag.Float64("threshold", 15, "allowed regression in percent")
	reps := flag.Int("reps", 1, "VM executions per benchmark per engine for the fresh -vm run")
	jobs := flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS)")
	inject := flag.Float64("inject", 0, "artificially degrade the fresh numbers by this percentage (gate self-test)")
	writeFresh := flag.String("write-fresh", "", "write each gate's fresh record (as compared, -inject included) into this directory, for CI failure artifacts")
	flag.Parse()

	if *vmPath == "" && *machPath == "" && *analysisPath == "" && *servePath == "" && *tieredPath == "" && *crossPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: nothing to compare; pass -vm, -machines, -analysis, -serve, -tiered, and/or -crossover")
		os.Exit(2)
	}
	if *writeFresh != "" {
		if err := os.MkdirAll(*writeFresh, 0o755); err != nil {
			fatal(err)
		}
	}

	var findings []string

	if *vmPath != "" {
		var committed bench.VMBench
		readJSON(*vmPath, &committed)
		fresh, err := bench.BenchVM(workload.SPECInt2000(), *reps)
		if err != nil {
			fatal(err)
		}
		if *inject > 0 {
			bench.InjectVMRegression(fresh, *inject)
		}
		fmt.Printf("vm: committed speedup %.2fx, fresh %.2fx\n", committed.Speedup, fresh.Speedup)
		fmt.Printf("vm: committed regcode speedup %.2fx, fresh %.2fx (floor %.1fx)\n",
			committed.RegcodeSpeedup, fresh.RegcodeSpeedup, bench.RegcodeSpeedupFloor)
		dumpFresh(*writeFresh, "BENCH_vm.fresh.json", fresh)
		findings = append(findings, bench.CompareVM(&committed, fresh, *threshold)...)
	}

	if *machPath != "" {
		var committed bench.SweepRecord
		readJSON(*machPath, &committed)
		fresh, err := bench.SweepSuite(*jobs)
		if err != nil {
			fatal(err)
		}
		if *inject > 0 {
			bench.InjectSweepRegression(fresh, *inject)
		}
		for _, m := range fresh.Machines {
			fmt.Printf("machines: %-14s winner %-14s", m.Name, m.Winner)
			for _, s := range m.Strategies {
				fmt.Printf(" %s=%d", s.Name, s.WeightedOverhead)
			}
			fmt.Println()
		}
		dumpFresh(*writeFresh, "BENCH_machines.fresh.json", fresh)
		findings = append(findings, bench.CompareSweep(&committed, fresh, *threshold)...)
	}

	if *analysisPath != "" {
		var committed bench.AnalysisBench
		readJSON(*analysisPath, &committed)
		fresh, err := bench.BenchAnalysis(workload.SPECInt2000(), *reps)
		if err != nil {
			fatal(err)
		}
		if *inject > 0 {
			bench.InjectAnalysisRegression(fresh, *inject)
		}
		fmt.Printf("analysis: committed incremental speedup %.2fx, fresh %.2fx (shared %.2fx, rebuild fallbacks %d)\n",
			committed.IncrementalSpeedup, fresh.IncrementalSpeedup, fresh.SharedSpeedup, fresh.Rebuilds)
		dumpFresh(*writeFresh, "BENCH_analysis.fresh.json", fresh)
		findings = append(findings, bench.CompareAnalysis(&committed, fresh, *threshold)...)
	}

	if *servePath != "" {
		var committed bench.ServeBench
		readJSON(*servePath, &committed)
		fresh, err := server.Bench(committed.Distinct, committed.Dups, committed.Workers)
		if err != nil {
			fatal(err)
		}
		if *inject > 0 {
			bench.InjectServeRegression(fresh, *inject)
		}
		fmt.Printf("serve: committed cached speedup %.2fx, fresh %.2fx (%d requests, program hits %d, function hits %d, analysis len max %d/%d)\n",
			committed.CachedSpeedup, fresh.CachedSpeedup, fresh.Requests,
			fresh.ProgramHits, fresh.FunctionHits, fresh.AnalysisLenMax, fresh.AnalysisBudget)
		dumpFresh(*writeFresh, "BENCH_serve.fresh.json", fresh)
		findings = append(findings, bench.CompareServe(&committed, fresh, *threshold)...)
	}

	if *tieredPath != "" {
		var committed bench.TieredBench
		readJSON(*tieredPath, &committed)
		// The fresh run must cover the committed record's suite: same
		// seeds (benchmark names carry them) and quantum.
		n := len(committed.Benchmarks)
		var base uint64
		if n > 0 {
			if _, err := fmt.Sscanf(committed.Benchmarks[0], "hostile-%d", &base); err != nil {
				fatal(fmt.Errorf("%s: unrecognized benchmark name %q", *tieredPath, committed.Benchmarks[0]))
			}
		}
		fresh, err := bench.BenchTiered(bench.HostileSuite(base, n), committed.Quantum, *reps)
		if err != nil {
			fatal(err)
		}
		if *inject > 0 {
			bench.InjectTieredRegression(fresh, *inject)
		}
		fmt.Printf("tiered: committed best gain %.3fx, fresh %.3fx (floor %.2fx)\n",
			committed.BestGain, fresh.BestGain, bench.TieredGainFloor)
		for _, m := range fresh.Machines {
			fmt.Printf("tiered: %-14s static=%d tiered=%d gain=%.3fx boundaries=%d\n",
				m.Machine, m.StaticOverhead, m.TieredOverhead, m.Gain, m.Boundaries)
		}
		dumpFresh(*writeFresh, "BENCH_tiered.fresh.json", fresh)
		findings = append(findings, bench.CompareTiered(&committed, fresh, *threshold)...)
	}

	if *crossPath != "" {
		var committed bench.CrossoverRecord
		readJSON(*crossPath, &committed)
		// The fresh run must cover the committed record's suite; the
		// benchmark names carry the seeds.
		n := len(committed.Benchmarks)
		var base uint64
		if n > 0 {
			if _, err := fmt.Sscanf(committed.Benchmarks[0], "crossover-%d", &base); err != nil {
				fatal(fmt.Errorf("%s: unrecognized benchmark name %q", *crossPath, committed.Benchmarks[0]))
			}
		}
		fresh, err := bench.RunCrossover(bench.CrossoverSuite(base, n), nil, bench.Options{Parallelism: *jobs})
		if err != nil {
			fatal(err)
		}
		if *inject > 0 {
			bench.InjectCrossoverRegression(fresh, *inject)
		}
		fmt.Printf("crossover: committed flips %d, fresh %d (of %d benchmarks; at least 1 required)\n",
			committed.Flips, fresh.Flips, len(fresh.Benches))
		for _, b := range fresh.Benches {
			if b.StrategyFlip || b.AllocFlip {
				fmt.Printf("crossover: %-14s flips (strategy=%v alloc=%v)\n", b.Name, b.StrategyFlip, b.AllocFlip)
			}
		}
		dumpFresh(*writeFresh, "BENCH_crossover.fresh.json", fresh)
		findings = append(findings, bench.CompareCrossover(&committed, fresh, *threshold)...)
	}

	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok, no regressions")
}

// dumpFresh writes a fresh record into the -write-fresh directory so a
// failed CI gate can upload exactly what it compared.
func dumpFresh(dir, name string, v any) {
	if dir == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func readJSON(path string, v any) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
