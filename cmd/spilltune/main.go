// Command spilltune calibrates the synthetic SPEC workload parameters:
// for each benchmark it searches random perturbations of the trait
// parameters and reports the setting whose measured overhead ratios
// best match the paper's Table 1. It exists so the workload definition
// in internal/workload can be re-derived rather than hand-tweaked.
//
// Usage: spilltune [-trials N] [-bench name] [-j N]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/bench"
	"repro/internal/par"
	"repro/internal/workload"
)

// target is the paper's Table 1: optimized/baseline and
// shrinkwrap/baseline percentages.
var target = map[string][2]float64{
	"gzip": {83.0, 102.6}, "vpr": {99.5, 100.0}, "gcc": {59.6, 93.9},
	"mcf": {100.0, 100.0}, "crafty": {44.0, 93.3}, "parser": {85.8, 99.0},
	"perlbmk": {89.7, 99.6}, "gap": {88.5, 95.4}, "vortex": {98.8, 100.0},
	"bzip2": {90.2, 100.5}, "twolf": {93.9, 108.0},
}

func main() {
	trials := flag.Int("trials", 60, "perturbations per benchmark")
	only := flag.String("bench", "", "tune a single benchmark")
	seed := flag.Int64("seed", 1, "search RNG seed")
	jobs := flag.Int("j", 0, "benchmarks tuned concurrently (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	type job struct {
		base workload.BenchParams
		pos  int // position in the full suite, not the filtered list
	}
	var jobsList []job
	for pos, base := range workload.SPECInt2000() {
		if *only == "" || base.Name == *only {
			jobsList = append(jobsList, job{base, pos})
		}
	}
	// Each benchmark's hill climb owns a private RNG derived from the
	// seed and the benchmark's position in the full suite, so tuning
	// runs are independent, the output is identical for any -j, and a
	// -bench run reproduces that benchmark's line from a full run.
	lines := make([]string, len(jobsList))
	err := par.Do(len(jobsList), *jobs, func(i int) error {
		base := jobsList[i].base
		rng := rand.New(rand.NewSource(*seed + int64(jobsList[i].pos)))
		// One analysis cache serves every trial of this benchmark's hill
		// climb: within a trial it shares liveness/dom/loops/PST across
		// the five strategies and the validator, and its counters prove
		// the search never rebuilds an analysis it already has.
		cache := analysis.NewCache()
		best, bestScore := tune(base, *trials, rng, cache)
		opt, sw, err := measure(best, cache)
		if err != nil {
			return fmt.Errorf("%s: %w", base.Name, err)
		}
		hits, misses := cache.Stats()
		c := cache.Counts()
		lines[i] = fmt.Sprintf("%-8s score=%6.2f  opt=%6.1f%% (want %5.1f)  sw=%6.1f%% (want %5.1f)\n  %+v\n"+
			"  analysis cache: %d hits / %d misses; builds: liveness=%d dom=%d loops=%d pst=%d seed=%d; delta: patched=%d full=%d\n",
			base.Name, bestScore, opt, target[base.Name][0], sw, target[base.Name][1], best,
			hits, misses, c.Liveness, c.Dom, c.Loops, c.PST, c.Seed, c.DeltaPatched, c.DeltaFull)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spilltune:", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Print(l)
	}
}

func tune(base workload.BenchParams, trials int, rng *rand.Rand, cache *analysis.Cache) (workload.BenchParams, float64) {
	best := base
	bestScore := score(base, cache)
	for i := 0; i < trials; i++ {
		cand := perturb(best, rng)
		if s := score(cand, cache); s < bestScore {
			best, bestScore = cand, s
		}
	}
	return best, bestScore
}

func score(p workload.BenchParams, cache *analysis.Cache) float64 {
	opt, sw, err := measure(p, cache)
	if err != nil {
		return math.Inf(1)
	}
	t := target[p.Name]
	// Optimized ratio matters more (it is the headline result).
	return 1.5*math.Abs(opt-t[0]) + math.Abs(sw-t[1])
}

func measure(p workload.BenchParams, cache *analysis.Cache) (opt, sw float64, err error) {
	r, err := bench.RunWithOptions(p, bench.Options{Cache: cache})
	if err != nil {
		return 0, 0, err
	}
	return r.Ratio(bench.Optimized), r.Ratio(bench.Shrinkwrap), nil
}

func perturb(p workload.BenchParams, rng *rand.Rand) workload.BenchParams {
	q := p
	// Always reroll the seed; structure is highly seed-sensitive.
	q.Seed = rng.Uint64()>>16 | 1
	jitter := func(v *float64, lo, hi float64) {
		if rng.Float64() < 0.4 {
			*v += (rng.Float64() - 0.5) * 0.2
			*v = math.Max(lo, math.Min(hi, *v))
		}
	}
	jitter(&q.LoopProb, 0.1, 0.7)
	jitter(&q.NestedLoopProb, 0, 0.6)
	jitter(&q.CallProb, 0.1, 0.9)
	jitter(&q.ColdCallProb, 0, 0.95)
	jitter(&q.LiveAcrossProb, 0.05, 0.95)
	jitter(&q.LoopGuardProb, 0, 0.6)
	jitter(&q.WebBranchProb, 0, 0.9)
	jitter(&q.OuterLoopProb, 0, 0.9)
	jitter(&q.InLoopCallFactor, 0, 0.6)
	return q
}
